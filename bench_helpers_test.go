package dblayout_test

import (
	"dblayout/internal/benchdb"
	"dblayout/internal/layout"
	"dblayout/internal/replay"
)

// fourDiskSystem builds the paper's homogeneous four-disk system.
func fourDiskSystem(objects []layout.Object) *replay.System {
	return &replay.System{
		Objects: objects,
		Devices: []replay.DeviceSpec{
			replay.Disk15K("disk0"), replay.Disk15K("disk1"),
			replay.Disk15K("disk2"), replay.Disk15K("disk3"),
		},
	}
}

// replayRun replays an OLAP workload and returns the request count.
func replayRun(sys *replay.System, l *layout.Layout, w *benchdb.OLAPWorkload) (int64, error) {
	res, err := replay.RunOLAP(sys, l, w, replay.Options{Seed: 1})
	if err != nil {
		return 0, err
	}
	return res.Requests, nil
}
