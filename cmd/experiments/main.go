// Command experiments reproduces the tables and figures of the paper's
// evaluation (Sec. 6) end-to-end: it traces the SQL workloads under the SEE
// baseline on the simulated storage system, fits workload models, calibrates
// target cost models, runs the layout advisor, and replays the workloads
// under every layout the paper compares.
//
// Usage:
//
//	experiments [-run all|fig8|fig11|fig15|fig17|fig18|fig19|fig20|ablation|degraded|migration|drift|autonomic|chaos|fleet]
//	            [-quick] [-seed N] [-seeds N] [-v | -log-level L] [-trace-out solver.jsonl]
//	            [-metrics-out metrics.prom] [-metrics-flush 5s]
//	            [-listen addr] [-listen-hold 30s]
//	            [-drift-events events.jsonl]
//	            [-cpuprofile f] [-memprofile f]
//
// fig11 also prints the layout figures (1, 12, 14) and utilization-stage
// figure (13) derived from the same runs.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"dblayout/internal/experiments"
	"dblayout/internal/nlp"
	"dblayout/internal/obs"
)

func main() {
	which := flag.String("run", "all", "experiment to run: all, fig8, fig11, fig15, fig17, fig18, fig19, fig20, ablation, degraded, migration, drift, autonomic, chaos, fleet")
	quick := flag.Bool("quick", false, "reduced scale (coarse calibration, fewer queries)")
	seed := flag.Int64("seed", 1, "replay and solver seed")
	seeds := flag.Int("seeds", 0, "chaos campaign scenario count (0 = default 50)")
	workers := flag.Int("workers", 0, "solver restart parallelism (0 = auto, 1 = serial); results are identical at any worker count")
	driftEvents := flag.String("drift-events", "", "write the drift experiment's detection events as JSON lines to this file")
	var cli obs.CLI
	cli.Register(flag.CommandLine)
	flag.Parse()

	sess, err := cli.Start(os.Stderr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
	defer func() {
		if cerr := sess.Close(); cerr != nil {
			fmt.Fprintln(os.Stderr, "experiments: closing observability outputs:", cerr)
		}
	}()

	cfg := experiments.NewConfig()
	if *quick {
		cfg = experiments.NewQuickConfig()
	}
	cfg.Seed = *seed
	cfg.Workers = *workers
	cfg.Logger = sess.Logger
	cfg.Metrics = sess.Registry
	if sess.Trace != nil {
		cfg.Trace = func(ev nlp.TraceEvent) { sess.Trace.Write(ev) }
	}
	if *driftEvents != "" {
		f, err := os.Create(*driftEvents)
		if err != nil {
			fmt.Fprintln(os.Stderr, "experiments:", err)
			os.Exit(1)
		}
		defer f.Close()
		cfg.DriftEvents = f
	}

	run := func(name string, fn func() error) {
		if *which != "all" && *which != name {
			return
		}
		start := time.Now()
		fmt.Printf("=== %s ===\n", strings.ToUpper(name))
		if err := fn(); err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", name, err)
			os.Exit(1)
		}
		fmt.Printf("(%s completed in %v)\n\n", name, time.Since(start).Round(time.Millisecond))
	}

	run("fig8", func() error {
		series, err := experiments.Fig8CostSlice(cfg)
		if err != nil {
			return err
		}
		fmt.Print(experiments.Fig8Table(series))
		return nil
	})

	run("fig11", func() error {
		runs, err := experiments.Homogeneous(cfg)
		if err != nil {
			return err
		}
		fmt.Println("Fig. 11 — workload execution times, homogeneous targets:")
		fmt.Print(experiments.Fig11Table(runs))
		for _, r := range runs {
			fmt.Printf("\nFig. 13 — %s\n%s", r.Workload, experiments.Fig13Table(r))
			fmt.Printf("\nFig. %s — optimized layout (%s), hottest objects:\n%s",
				map[string]string{"OLAP1-63": "1", "OLAP8-63": "12"}[r.Workload],
				r.Workload, experiments.LayoutTable(r.Instance, r.Rec.Final, 8))
			fmt.Printf("\nFig. 14 — solver (non-regular) layout (%s):\n%s",
				r.Workload, experiments.LayoutTable(r.Instance, r.Rec.Solver, 8))
		}
		return nil
	})

	run("fig15", func() error {
		res, err := experiments.Consolidation(cfg)
		if err != nil {
			return err
		}
		fmt.Println("Fig. 15 — consolidation scenario:")
		fmt.Print(res.Fig15Table())
		fmt.Println("\nFig. 16 — consolidated optimized layout, hottest objects:")
		fmt.Print(res.Fig16Table())
		return nil
	})

	run("fig17", func() error {
		rows, err := experiments.Heterogeneous(cfg)
		if err != nil {
			return err
		}
		fmt.Println("Fig. 17 — heterogeneous disk configurations, OLAP8-63:")
		fmt.Print(experiments.Fig17Table(rows))
		return nil
	})

	run("fig18", func() error {
		rows, err := experiments.SSDStudy(cfg)
		if err != nil {
			return err
		}
		fmt.Println("Fig. 18 — four disks plus SSD, OLAP8-63:")
		fmt.Print(experiments.Fig18Table(rows))
		return nil
	})

	run("fig19", func() error {
		rows, err := experiments.Timing(cfg)
		if err != nil {
			return err
		}
		fmt.Println("Fig. 19 — advisor running time vs. problem size:")
		fmt.Print(experiments.Fig19Table(rows))
		return nil
	})

	run("ablation", func() error {
		rows, err := experiments.Ablation(cfg)
		if err != nil {
			return err
		}
		fmt.Println("Ablation — advisor variants on OLAP1-63, four disks:")
		fmt.Print(experiments.AblationTable(rows))
		return nil
	})

	run("degraded", func() error {
		res, err := experiments.Degraded(cfg)
		if err != nil {
			return err
		}
		fmt.Println("Degraded-mode study — RAID5 reconstruction and failure-aware repair:")
		fmt.Print(experiments.DegradedTable(res))
		return nil
	})

	run("migration", func() error {
		res, err := experiments.Migration(cfg)
		if err != nil {
			return err
		}
		fmt.Println("Online-migration study — throttled deployment and failure evacuation:")
		fmt.Print(experiments.MigrationTable(res))
		return nil
	})

	run("drift", func() error {
		res, err := experiments.Drift(cfg)
		if err != nil {
			return err
		}
		fmt.Println("Drift study — diurnal OLTP->OLAP shift, windowed detection:")
		fmt.Print(experiments.DriftTable(res))
		return nil
	})

	run("autonomic", func() error {
		res, err := experiments.Autonomic(cfg)
		if err != nil {
			return err
		}
		fmt.Println("Autonomic control loop — detect, re-advise, migrate, cool down:")
		fmt.Print(experiments.AutonomicTable(res))
		return nil
	})

	run("chaos", func() error {
		rep, err := experiments.Chaos(cfg, *seeds)
		if err != nil {
			return err
		}
		fmt.Println("Chaos campaign — crash-safe controller under fault injection:")
		fmt.Print(experiments.ChaosTable(rep))
		return nil
	})

	run("fleet", func() error {
		rows, err := experiments.Fleet(cfg)
		if err != nil {
			return err
		}
		fmt.Println("Fleet-scale study — sparse pruned transfer vs. hierarchical decomposition:")
		fmt.Print(experiments.FleetTable(rows))
		return nil
	})

	run("fig20", func() error {
		res, err := experiments.AutoAdminStudy(cfg)
		if err != nil {
			return err
		}
		fmt.Println("Fig. 20 / Sec. 6.6 — AutoAdmin comparison:")
		fmt.Print(res.Fig20Table())
		return nil
	})
}
