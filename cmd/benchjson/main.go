// Command benchjson converts `go test -bench` text output into a JSON
// array, one element per benchmark result line, for machine-readable CI
// artifacts (e.g. the solver bench smoke's BENCH_5.json):
//
//	go test -run '^$' -bench . -benchmem ./internal/nlp/ | benchjson -o BENCH_5.json
//
// Lines that are not benchmark results (headers, PASS/ok trailers) are
// ignored. ns/op is always present; B/op and allocs/op appear when the
// benchmark ran with -benchmem or called b.ReportAllocs, and are emitted as
// null otherwise. Custom units published via b.ReportMetric (e.g. "p99-ms",
// "req/s" from the advisord load test's BENCH_10.json) are collected under
// "extra", keyed by unit.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
)

type result struct {
	Name        string             `json:"name"`
	Iterations  int64              `json:"iterations"`
	NsPerOp     float64            `json:"ns_per_op"`
	BytesPerOp  *float64           `json:"bytes_per_op"`
	AllocsPerOp *float64           `json:"allocs_per_op"`
	Extra       map[string]float64 `json:"extra,omitempty"`
}

// parseLine parses one benchmark result line, e.g.
//
//	BenchmarkMoveScoring/incremental-4  2921560  905.1 ns/op  0 B/op  0 allocs/op
//
// returning ok=false for anything else.
func parseLine(line string) (result, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
		return result{}, false
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return result{}, false
	}
	r := result{Name: fields[0], Iterations: iters}
	seen := false
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return result{}, false
		}
		switch fields[i+1] {
		case "ns/op":
			r.NsPerOp = v
			seen = true
		case "B/op":
			b := v
			r.BytesPerOp = &b
		case "allocs/op":
			a := v
			r.AllocsPerOp = &a
		default:
			if r.Extra == nil {
				r.Extra = map[string]float64{}
			}
			r.Extra[fields[i+1]] = v
		}
	}
	if !seen {
		return result{}, false
	}
	return r, true
}

func run(in io.Reader, out io.Writer) error {
	var results []result
	sc := bufio.NewScanner(in)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		if r, ok := parseLine(sc.Text()); ok {
			results = append(results, r)
		}
	}
	if err := sc.Err(); err != nil {
		return err
	}
	if len(results) == 0 {
		return fmt.Errorf("no benchmark result lines found in input")
	}
	enc := json.NewEncoder(out)
	enc.SetIndent("", "  ")
	return enc.Encode(results)
}

func main() {
	outPath := flag.String("o", "", "output file (default stdout)")
	flag.Parse()

	out := io.Writer(os.Stdout)
	if *outPath != "" {
		f, err := os.Create(*outPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer f.Close()
		out = f
	}
	// Echo the input so the human-readable bench output still shows in CI
	// logs while the JSON artifact is written.
	in := io.TeeReader(os.Stdin, os.Stderr)
	if err := run(in, out); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}
