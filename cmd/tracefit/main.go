// Command tracefit fits Rome-style workload descriptions from a block I/O
// trace, playing the role of the Rubicon trace-characterization tool in the
// paper's methodology. The output is a workload set consumable by
// cmd/advisor.
//
// Usage:
//
//	tracefit -trace trace.jsonl -objects "LINEITEM,ORDERS,..." [-active-rates] [-window 1.0]
//
// The trace is JSON lines, one request per line, as written by the storage
// simulator's trace recorder:
//
//	{"t":0.01,"obj":0,"stream":1,"target":"disk0","off":0,"size":131072,"w":false}
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"dblayout"
)

func run() error {
	tracePath := flag.String("trace", "", "trace file, JSON lines (required)")
	objects := flag.String("objects", "", "comma-separated object names in index order (required)")
	activeRates := flag.Bool("active-rates", false, "fit rates over active windows instead of whole-trace")
	window := flag.Float64("window", 1.0, "co-activity window in seconds for overlap estimation")
	flag.Parse()

	if *tracePath == "" || *objects == "" {
		flag.Usage()
		return fmt.Errorf("-trace and -objects are required")
	}
	f, err := os.Open(*tracePath)
	if err != nil {
		return err
	}
	defer f.Close()
	tr, err := dblayout.ReadTrace(f)
	if err != nil {
		return err
	}

	names := strings.Split(*objects, ",")
	for i := range names {
		names[i] = strings.TrimSpace(names[i])
	}
	set, err := dblayout.FitWorkloads(tr, names, dblayout.FitOptions{
		WindowSize:  *window,
		ActiveRates: *activeRates,
	})
	if err != nil {
		return err
	}

	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", " ")
	return enc.Encode(map[string]interface{}{"workloads": set.Workloads})
}

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "tracefit:", err)
		os.Exit(1)
	}
}
