// Command advisor recommends an optimized database storage layout from a
// problem description, acting as the standalone layout advisor the paper
// proposes.
//
// Usage:
//
//	advisor -problem problem.json [-seed N] [-budget 30s] [-workers N]
//	        [-portfolio] [-non-regular] [-utilizations] [-v | -log-level L]
//	        [-trace-out solver.jsonl] [-metrics-out metrics.prom]
//	        [-metrics-flush 5s] [-listen addr] [-listen-hold 30s]
//	        [-cpuprofile f] [-memprofile f]
//	        [-execute] [-journal f] [-copy-rate MiBps] [-queue-share S]
//	        [-scratch-mb N] [-retries N]
//
// With -listen the advisor serves its live metrics over HTTP while it runs:
// /metrics (Prometheus text), /metrics.json, /series (windowed time-series
// data) and /debug/pprof. -listen-hold keeps the endpoint up after the run
// finishes so a scraper can collect the final state.
//
// The problem file describes objects, targets and per-object workloads:
//
//	{
//	  "objects": [
//	    {"name": "ORDERS", "size_mb": 8192, "kind": "table"},
//	    {"name": "ORDERS_PK", "size_mb": 1024, "kind": "index"}
//	  ],
//	  "targets": [
//	    {"name": "disk0", "capacity_mb": 102400, "model": "disk15k"},
//	    {"name": "ssd0", "capacity_mb": 32768, "model": "ssd"}
//	  ],
//	  "workloads": {"workloads": [
//	    {"name": "ORDERS", "read_size": 131072, "read_rate": 300, "run_count": 64},
//	    {"name": "ORDERS_PK", "read_size": 8192, "read_rate": 150, "run_count": 1}
//	  ]}
//	}
//
// A target's "model" is either a built-in device type ("disk15k",
// "disk7200", "ssd"), which is calibrated on first use, or "@file.json", a
// model previously saved by cmd/calibrate.
//
// With -execute the advisor additionally simulates the online migration
// from the current layout (an optional "current" fraction matrix in the
// problem file, one row per object; default SEE) to the recommendation,
// using the crash-safe engine in internal/migrate: moves run in a
// capacity-safe order, cycles are broken through a scratch reservation
// (-scratch-mb, 0 = auto-sized), and the copy stream can be throttled
// (-copy-rate in MiB/s, -queue-share). -journal names a write-ahead journal
// file; re-running with an existing journal resumes an interrupted
// migration instead of restarting it. Built-in device types only: "@file"
// cost models carry no simulator configuration.
//
// -retries N lets -execute recover from migration aborts the way the
// autonomic controller does: when the migration aborts on failed targets (or
// the journal being resumed already records such an abort), the advisor
// re-plans a failure-aware repair evacuating the failed targets and executes
// it, up to N extra attempts. The journal is restarted for each attempt (an
// aborted journal is terminal). Exhausting the budget exits 9.
//
// Exit codes distinguish failure classes so scripts can react:
//
//	0  success (including degraded recommendations, reported on stderr)
//	1  generic error (bad flags, unreadable input, ...)
//	2  infeasible problem (data cannot fit the targets)
//	3  solve budget exhausted before any usable layout was produced
//	4  cost-model failure prevented a recommendation
//	5  interrupted (SIGINT/SIGTERM before a layout was available)
//	6  migration aborted on a device fault (-execute; journal holds the
//	   consistent state, replan with the repair advisor or re-run with
//	   -retries)
//	7  migration deadlocked with insufficient scratch space (-execute;
//	   raise -scratch-mb)
//	8  write-ahead journal corrupt (a resumed -journal file, or a
//	   controller journal, failed CRC or grammar validation; the journal
//	   must not be trusted or appended to)
//	9  retry budget exhausted (-execute -retries; every attempt ended in
//	   an abort or a repair-solve failure)
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"dblayout"
	"dblayout/internal/control"
	"dblayout/internal/costmodel"
	"dblayout/internal/layout"
	"dblayout/internal/migrate"
	"dblayout/internal/obs"
	"dblayout/internal/replay"
	"dblayout/internal/storage"
)

type problemFile struct {
	Objects []struct {
		Name   string `json:"name"`
		SizeMB int64  `json:"size_mb"`
		Kind   string `json:"kind"`
	} `json:"objects"`
	Targets []struct {
		Name       string `json:"name"`
		CapacityMB int64  `json:"capacity_mb"`
		Model      string `json:"model"`
	} `json:"targets"`
	Workloads *dblayout.WorkloadSet `json:"workloads"`
	// Current optionally gives the layout the data occupies today, one
	// row of per-target fractions per object; -execute migrates from it.
	// Absent, the migration starts from SEE (striped over everything).
	Current [][]float64 `json:"current"`
}

func kindOf(s string) (dblayout.ObjectKind, error) {
	switch strings.ToLower(s) {
	case "table", "":
		return dblayout.KindTable, nil
	case "index":
		return dblayout.KindIndex, nil
	case "log":
		return dblayout.KindLog, nil
	case "temp":
		return dblayout.KindTemp, nil
	}
	return 0, fmt.Errorf("unknown object kind %q", s)
}

// modelFor resolves a target's model reference.
func modelFor(ref string, cache map[string]*costmodel.Model) (*costmodel.Model, error) {
	if m, ok := cache[ref]; ok {
		return m, nil
	}
	var m *costmodel.Model
	switch {
	case strings.HasPrefix(ref, "@"):
		f, err := os.Open(ref[1:])
		if err != nil {
			return nil, err
		}
		defer f.Close()
		m, err = costmodel.Load(f)
		if err != nil {
			return nil, err
		}
	case ref == "disk15k" || ref == "":
		fmt.Fprintln(os.Stderr, "calibrating disk15k model (one-time)...")
		m = dblayout.CalibrateDisk()
	case ref == "disk7200":
		fmt.Fprintln(os.Stderr, "calibrating disk7200 model (one-time)...")
		m = costmodel.Calibrate("disk7200", func(e *storage.Engine) storage.Device {
			return storage.NewDisk(e, "disk", storage.Disk7200Config())
		}, costmodel.DefaultGrid())
	case ref == "ssd":
		fmt.Fprintln(os.Stderr, "calibrating ssd model (one-time)...")
		m = dblayout.CalibrateSSD()
	default:
		return nil, fmt.Errorf("unknown model %q (want disk15k, disk7200, ssd, or @file.json)", ref)
	}
	cache[ref] = m
	return m, nil
}

func run() error {
	problemPath := flag.String("problem", "", "problem description JSON (required)")
	seed := flag.Int64("seed", 1, "solver random seed")
	budget := flag.Duration("budget", 0, "solve time budget (0 = unlimited); on exhaustion the best layout found so far is reported")
	workers := flag.Int("workers", 0, "solver restart parallelism (0 = auto, 1 = serial); the layout is identical at any worker count")
	portfolio := flag.Bool("portfolio", false, "race the transfer, anneal and projected-gradient solvers concurrently and keep the best layout")
	nonRegular := flag.Bool("non-regular", false, "skip regularization (solver output may use uneven fractions)")
	showUtils := flag.Bool("utilizations", false, "also print predicted per-target utilizations")
	execute := flag.Bool("execute", false, "simulate the online migration from the current layout to the recommendation")
	journalPath := flag.String("journal", "", "write-ahead journal file for -execute; an existing journal resumes the migration")
	copyRate := flag.Float64("copy-rate", 0, "migration copy throttle in MiB/s for -execute (0 = unthrottled)")
	queueShare := flag.Float64("queue-share", 0.5, "max share of a device queue the migration copy stream may occupy (1 disables yielding)")
	scratchMB := flag.Int64("scratch-mb", 0, "scratch reservation for breaking migration capacity deadlocks (0 = auto-sized)")
	retries := flag.Int("retries", 0, "extra repair attempts after a migration abort for -execute (0 = fail immediately)")
	var cli obs.CLI
	cli.Register(flag.CommandLine)
	flag.Parse()

	if *problemPath == "" {
		flag.Usage()
		return fmt.Errorf("-problem is required")
	}
	// Catch SIGINT/SIGTERM from the start so a signal during model
	// calibration still yields the documented exit code; after the first
	// signal restore default disposition so a second one force-kills.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	go func() {
		<-ctx.Done()
		stop()
	}()
	sess, err := cli.Start(os.Stderr)
	if err != nil {
		return err
	}
	defer func() {
		if cerr := sess.Close(); cerr != nil {
			fmt.Fprintln(os.Stderr, "advisor: closing observability outputs:", cerr)
		}
	}()
	data, err := os.ReadFile(*problemPath)
	if err != nil {
		return err
	}
	var pf problemFile
	if err := json.Unmarshal(data, &pf); err != nil {
		return fmt.Errorf("parsing %s: %w", *problemPath, err)
	}

	p := dblayout.Problem{Workloads: pf.Workloads}
	for _, o := range pf.Objects {
		kind, err := kindOf(o.Kind)
		if err != nil {
			return err
		}
		p.Objects = append(p.Objects, dblayout.Object{Name: o.Name, Size: o.SizeMB << 20, Kind: kind})
	}
	cache := map[string]*costmodel.Model{}
	for _, t := range pf.Targets {
		m, err := modelFor(t.Model, cache)
		if err != nil {
			return err
		}
		p.Targets = append(p.Targets, &layout.Target{Name: t.Name, Capacity: t.CapacityMB << 20, Model: m})
	}

	opt := dblayout.Options{
		Seed:               *seed,
		SolveBudget:        *budget,
		Workers:            *workers,
		Portfolio:          *portfolio,
		SkipRegularization: *nonRegular,
		Logger:             sess.Logger,
	}
	if sess.Trace != nil {
		opt.Trace = func(ev dblayout.TraceEvent) { sess.Trace.Write(ev) }
	}
	start := time.Now()
	rec, err := dblayout.RecommendContext(ctx, p, opt)
	elapsed := time.Since(start)
	if err != nil {
		if rec != nil && (errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)) {
			// Interrupted mid-solve with a usable layout in hand: report it,
			// flagged degraded below, rather than throwing the work away.
			fmt.Fprintln(os.Stderr, "advisor: interrupted, reporting best layout found so far")
		} else {
			return err
		}
	}
	if rec.Degraded {
		fmt.Fprintln(os.Stderr, "advisor: WARNING: recommendation is degraded:", rec.Degradation)
	}
	if reg := sess.Registry; reg != nil {
		reg.Counter("solver_iters_total").Add(int64(rec.SolverIters))
		reg.Counter("solver_evals_total").Add(int64(rec.SolverEvals))
		reg.Gauge("advisor_final_objective").Set(rec.FinalObjective)
		reg.Gauge("advisor_solver_objective").Set(rec.SolverObjective)
		reg.Gauge("solver_restarts").Set(float64(rec.SolverRestarts))
		reg.Gauge("solver_workers").Set(float64(rec.SolverWorkers))
		reg.Gauge("advisor_solve_seconds").Set(rec.SolveTime.Seconds())
		reg.Gauge("advisor_regularize_seconds").Set(rec.RegularizeTime.Seconds())
		reg.Gauge("advisor_elapsed_seconds").Set(elapsed.Seconds())
	}

	fmt.Printf("recommended layout (predicted max utilization %.1f%%, SEE %.1f%%):\n\n",
		100*rec.FinalObjective, 100*seeObjective(p))
	fmt.Print(dblayout.FormatLayout(p, rec.Final))
	fmt.Printf("\nsolver time %v, regularization time %v\n", rec.SolveTime, rec.RegularizeTime)

	if *showUtils {
		utils, err := dblayout.Utilizations(p, rec.Final)
		if err != nil {
			return err
		}
		fmt.Println("\npredicted target utilizations:")
		for j, u := range utils {
			fmt.Printf("  %-12s %6.1f%%\n", p.Targets[j].Name, 100*u)
		}
		fmt.Printf("\nsolver effort: %d iterations, %d objective evaluations, %v total\n",
			rec.SolverIters, rec.SolverEvals, elapsed.Round(time.Millisecond))
	}
	if *execute {
		return executeMigration(&pf, p, rec.Final, executeOptions{
			journalPath: *journalPath,
			copyRate:    *copyRate,
			queueShare:  *queueShare,
			scratchMB:   *scratchMB,
			retries:     *retries,
			seed:        *seed,
			metrics:     sess.Registry,
		})
	}
	return nil
}

type executeOptions struct {
	journalPath string
	copyRate    float64
	queueShare  float64
	scratchMB   int64
	retries     int
	seed        int64
	metrics     *obs.Registry
}

// deviceFor maps a problem target onto a simulator device spec. Only
// built-in device types can be simulated; calibrated "@file" models carry a
// cost table but no simulator configuration.
func deviceFor(name, model string, capacity int64) (replay.DeviceSpec, error) {
	switch model {
	case "disk15k", "":
		cfg := storage.Disk15KConfig()
		cfg.CapacityBytes = capacity
		return replay.DeviceSpec{Name: name, Disk: &cfg}, nil
	case "disk7200":
		cfg := storage.Disk7200Config()
		cfg.CapacityBytes = capacity
		return replay.DeviceSpec{Name: name, Disk: &cfg}, nil
	case "ssd":
		cfg := storage.SSD32Config()
		cfg.CapacityBytes = capacity
		return replay.DeviceSpec{Name: name, SSD: &cfg}, nil
	}
	return replay.DeviceSpec{}, fmt.Errorf("cannot simulate model %q for target %q: -execute needs a built-in device type (disk15k, disk7200, ssd)", model, name)
}

// currentLayout resolves the migration's starting layout: the problem
// file's "current" matrix when present, SEE otherwise.
func currentLayout(pf *problemFile, n, m int) (*layout.Layout, error) {
	if pf.Current == nil {
		return layout.SEE(n, m), nil
	}
	if len(pf.Current) != n {
		return nil, fmt.Errorf("\"current\" has %d rows for %d objects", len(pf.Current), n)
	}
	l := layout.New(n, m)
	for i, row := range pf.Current {
		if len(row) != m {
			return nil, fmt.Errorf("\"current\" row %d has %d fractions for %d targets", i, len(row), m)
		}
		l.SetRow(i, row)
	}
	if err := l.CheckIntegrity(); err != nil {
		return nil, fmt.Errorf("\"current\" layout: %w", err)
	}
	return l, nil
}

// executeMigration simulates the online migration from the current layout
// to the recommended one against an idle system, journaling every move so
// an interrupted run resumes from its checkpoint.
func executeMigration(pf *problemFile, p dblayout.Problem, target *dblayout.Layout, opt executeOptions) error {
	sys := &replay.System{Objects: p.Objects, StripeSize: p.StripeSize}
	sizes := make([]int64, len(p.Objects))
	for i, o := range p.Objects {
		sizes[i] = o.Size
	}
	caps := make([]int64, len(pf.Targets))
	for j, t := range pf.Targets {
		spec, err := deviceFor(t.Name, t.Model, t.CapacityMB<<20)
		if err != nil {
			return err
		}
		sys.Devices = append(sys.Devices, spec)
		caps[j] = t.CapacityMB << 20
	}
	current, err := currentLayout(pf, len(p.Objects), len(pf.Targets))
	if err != nil {
		return err
	}

	var journal io.Writer
	var jf *os.File
	var resume []byte
	if opt.journalPath != "" {
		data, err := os.ReadFile(opt.journalPath)
		if err != nil && !os.IsNotExist(err) {
			return err
		}
		resume = migrate.TruncateTorn(data)
		if len(resume) < len(data) {
			// Drop a torn final line before appending to the file.
			if err := os.Truncate(opt.journalPath, int64(len(resume))); err != nil {
				return err
			}
		}
		jf, err = os.OpenFile(opt.journalPath, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			return err
		}
		defer jf.Close()
		journal = jf
		if len(resume) > 0 {
			fmt.Fprintf(os.Stderr, "advisor: resuming migration from journal %s\n", opt.journalPath)
		}
	}

	// The attempt loop mirrors the autonomic controller's retry policy: an
	// abort folds the journal's consistent state (base plus committed steps)
	// into the next attempt, which evacuates the failed targets through the
	// failure-aware repair advisor. An aborted journal is terminal, so each
	// repair attempt restarts the journal file.
	cur, tgt := current, target
	var failed []int
	for attempt := 1; ; attempt++ {
		scratchCaps := caps
		if len(failed) > 0 {
			scratchCaps = append([]int64(nil), caps...)
			for _, j := range failed {
				if j >= 0 && j < len(scratchCaps) {
					scratchCaps[j] = 0
				}
			}
		}
		scratch := migrate.AutoScratch(cur, tgt, sizes, scratchCaps)
		if opt.scratchMB > 0 {
			scratch.Bytes = opt.scratchMB << 20
		}
		// Neither an aborted mid-migration layout nor its repair needs to
		// be regular, and the LVM mapper only implements regular layouts;
		// the run is idle, so any regular stand-in validates.
		mapper := cur
		if !mapper.IsRegular() {
			mapper = layout.SEE(len(p.Objects), len(caps))
		}

		res, err := migrate.Execute(sys, cur, tgt, nil, replay.Options{Seed: 1, Metrics: opt.metrics}, migrate.Options{
			BytesPerSec:   opt.copyRate * (1 << 20),
			MaxQueueShare: opt.queueShare,
			Scratch:       scratch,
			Journal:       journal,
			Resume:        resume,
			FailedSources: failed,
			MapperLayout:  mapper,
			Metrics:       opt.metrics,
		})
		if err == nil {
			reportMigration(pf, opt, res, scratch, attempt)
			return nil
		}
		if !errors.Is(err, migrate.ErrMigrationAborted) || opt.retries <= 0 {
			return fmt.Errorf("executing migration: %w", err)
		}
		if attempt > opt.retries {
			return &control.RetryError{Attempts: attempt, Cause: err, Reason: "abort"}
		}

		// Fold the abort's consistent state into the next attempt.
		if res != nil && res.Migration != nil && res.Migration.Aborted {
			cur = res.Migration.Layout.Clone()
			failed = mergeFailed(failed, res.Migration.FailedTargets)
		} else {
			// The resumed journal already recorded the abort; recover its
			// state directly.
			records, derr := migrate.DecodeJournal(resume)
			if derr != nil {
				return derr
			}
			ck, rerr := migrate.Recover(records)
			if rerr != nil {
				return rerr
			}
			cur = cur.Clone()
			ck.ApplyCommitted(cur)
			failed = mergeFailed(failed, ck.Failed)
		}
		fmt.Fprintf(os.Stderr, "advisor: migration aborted, targets %v failed; replanning repair (attempt %d of %d)\n",
			failed, attempt+1, opt.retries+1)

		rep, rerr := dblayout.RecommendRepair(context.Background(), p, cur, failed, dblayout.Options{Seed: opt.seed})
		if rerr != nil {
			return &control.RetryError{Attempts: attempt, Cause: rerr, Reason: "advise"}
		}
		tgt = rep.Layout
		resume = nil
		if jf != nil {
			// The terminal journal cannot be appended to; start a fresh one
			// for the repair (O_APPEND writes land at the new end).
			if err := jf.Truncate(0); err != nil {
				return err
			}
		}
	}
}

// mergeFailed merges failed-target sets, preserving order of first sighting.
func mergeFailed(a, b []int) []int {
	out := append([]int(nil), a...)
	for _, x := range b {
		seen := false
		for _, y := range out {
			if x == y {
				seen = true
				break
			}
		}
		if !seen {
			out = append(out, x)
		}
	}
	return out
}

// reportMigration prints the -execute summary.
func reportMigration(pf *problemFile, opt executeOptions, res *migrate.ExecuteResult, scratch migrate.ScratchSpec, attempt int) {
	m := res.Migration
	staged := 0
	for _, s := range res.Script {
		if s.Kind == migrate.StepStageIn {
			staged++
		}
	}
	fmt.Printf("\nonline migration: %d moves (%d staged through %s scratch), %.1f MiB copied\n",
		len(res.Plan), staged, pf.Targets[scratch.Target].Name, float64(m.CommittedBytes)/(1<<20))
	if attempt > 1 {
		fmt.Printf("completed on attempt %d after evacuating failed targets\n", attempt)
	}
	if m.Elapsed > 0 {
		fmt.Printf("simulated duration %.2fs (%.1f MiB/s effective)\n",
			m.Elapsed, float64(m.CommittedBytes)/(1<<20)/m.Elapsed)
	} else {
		fmt.Println("nothing left to copy (layouts already agree, or the journal records completion)")
	}
	if opt.journalPath != "" {
		fmt.Printf("journal: %s (%d records appended)\n", opt.journalPath, m.JournalRecords)
	}
}

func seeObjective(p dblayout.Problem) float64 {
	utils, err := dblayout.Utilizations(p, dblayout.SEE(len(p.Objects), len(p.Targets)))
	if err != nil {
		return 0
	}
	max := 0.0
	for _, u := range utils {
		if u > max {
			max = u
		}
	}
	return max
}

// exitCode maps failure classes to distinct exit codes (documented in the
// package comment) so callers can distinguish "won't ever work" (infeasible)
// from "needs more time" (budget) from "model is broken" (model failure).
func exitCode(err error) int {
	switch {
	case errors.Is(err, dblayout.ErrInfeasible):
		return 2
	case errors.Is(err, dblayout.ErrBudgetExceeded):
		return 3
	case errors.Is(err, dblayout.ErrModelFailure):
		return 4
	case errors.Is(err, context.Canceled), errors.Is(err, context.DeadlineExceeded):
		return 5
	case errors.Is(err, migrate.ErrMigrationAborted):
		return 6
	case errors.Is(err, migrate.ErrScratchExhausted):
		return 7
	case errors.Is(err, migrate.ErrJournalCorrupt), errors.Is(err, control.ErrControllerCorrupt):
		return 8
	case errors.Is(err, control.ErrRetriesExhausted):
		return 9
	}
	return 1
}

func main() {
	if err := run(); err != nil {
		switch code := exitCode(err); code {
		case 2:
			fmt.Fprintln(os.Stderr, "advisor: infeasible problem:", err)
			os.Exit(code)
		case 3:
			fmt.Fprintln(os.Stderr, "advisor: solve budget exhausted:", err)
			os.Exit(code)
		case 4:
			fmt.Fprintln(os.Stderr, "advisor: cost model failure:", err)
			os.Exit(code)
		case 5:
			fmt.Fprintln(os.Stderr, "advisor: interrupted:", err)
			os.Exit(code)
		case 6:
			fmt.Fprintln(os.Stderr, "advisor: migration aborted:", err)
			os.Exit(code)
		case 7:
			fmt.Fprintln(os.Stderr, "advisor: migration scratch space exhausted:", err)
			os.Exit(code)
		case 8:
			fmt.Fprintln(os.Stderr, "advisor: journal corrupt:", err)
			os.Exit(code)
		case 9:
			fmt.Fprintln(os.Stderr, "advisor: retry budget exhausted:", err)
			os.Exit(code)
		default:
			fmt.Fprintln(os.Stderr, "advisor:", err)
			os.Exit(code)
		}
	}
}
