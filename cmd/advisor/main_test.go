package main

import (
	"context"
	"errors"
	"fmt"
	"testing"

	"dblayout"
	"dblayout/internal/control"
	"dblayout/internal/migrate"
)

// TestExitCodes pins the documented exit-code table: every failure class maps
// to its own code, wrapped or not, and the retry-exhausted wrapper does not
// leak its cause's class.
func TestExitCodes(t *testing.T) {
	cases := []struct {
		err  error
		want int
	}{
		{errors.New("anything else"), 1},
		{dblayout.ErrInfeasible, 2},
		{fmt.Errorf("solving: %w", dblayout.ErrBudgetExceeded), 3},
		{dblayout.ErrModelFailure, 4},
		{context.Canceled, 5},
		{context.DeadlineExceeded, 5},
		{&migrate.AbortError{Failed: []int{2}, Reason: "write failed"}, 6},
		{fmt.Errorf("executing migration: %w", migrate.ErrScratchExhausted), 7},
		{&migrate.CorruptError{Record: 3, Reason: "bad frame"}, 8},
		{fmt.Errorf("resuming: %w", migrate.ErrJournalCorrupt), 8},
		{&control.CorruptError{Record: 1, Reason: "impossible epoch"}, 8},
		{control.ErrControllerCorrupt, 8},
		{&control.RetryError{Attempts: 3, Cause: &migrate.AbortError{}, Reason: "abort"}, 9},
		{control.ErrRetriesExhausted, 9},
	}
	for _, tc := range cases {
		if got := exitCode(tc.err); got != tc.want {
			t.Errorf("exitCode(%v) = %d, want %d", tc.err, got, tc.want)
		}
	}
	// A retry chain that died on an abort is reported as exhaustion (9),
	// never as the abort (6) the caller was told would be retried.
	rerr := &control.RetryError{Attempts: 2, Cause: migrate.ErrMigrationAborted, Reason: "abort"}
	if errors.Is(rerr, migrate.ErrMigrationAborted) {
		t.Error("RetryError must not unwrap to its cause")
	}
}

func TestMergeFailed(t *testing.T) {
	got := mergeFailed([]int{2, 0}, []int{0, 3, 2, 1})
	want := []int{2, 0, 3, 1}
	if len(got) != len(want) {
		t.Fatalf("mergeFailed = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("mergeFailed = %v, want %v", got, want)
		}
	}
}
