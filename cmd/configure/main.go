// Command configure recommends a storage *configuration* in addition to a
// layout (the paper's Sec. 8 direction toward Minerva/DAD): given a pool of
// unconfigured disks, it enumerates the ways of grouping them into RAID0
// targets, runs the layout advisor against each, and prints the candidates
// ranked by predicted maximum utilization.
//
// Usage:
//
//	configure -disks 4 [-max-group 3] [-ssd-gb 32] [-workload olap8-63|olap1-63|oltp] [-fast]
//
// The workload is estimated from the built-in TPC-H/TPC-C specifications
// with the storage workload estimator (no tracing required).
package main

import (
	"flag"
	"fmt"
	"os"

	"dblayout/internal/benchdb"
	"dblayout/internal/configure"
	"dblayout/internal/costmodel"
	"dblayout/internal/estimator"
	"dblayout/internal/layout"
	"dblayout/internal/replay"
	"dblayout/internal/rome"
)

func run() error {
	disks := flag.Int("disks", 4, "number of unconfigured disks in the pool")
	maxGroup := flag.Int("max-group", 0, "maximum RAID0 group size (0 = unbounded)")
	ssdGB := flag.Int("ssd-gb", 0, "optionally add an SSD of this capacity to every configuration")
	workload := flag.String("workload", "olap8-63", "workload to configure for: olap1-63, olap8-63, oltp")
	fast := flag.Bool("fast", false, "coarse calibration grid")
	seed := flag.Int64("seed", 1, "solver seed")
	flag.Parse()

	var objects []layout.Object
	var workloads *rome.Set
	var err error
	switch *workload {
	case "olap1-63":
		w := benchdb.OLAP163()
		objects = w.Catalog.Objects
		workloads, err = estimator.EstimateOLAP(w, estimator.DefaultAssumptions(*disks))
	case "olap8-63":
		w := benchdb.OLAP863()
		objects = w.Catalog.Objects
		workloads, err = estimator.EstimateOLAP(w, estimator.DefaultAssumptions(*disks))
	case "oltp":
		w := benchdb.OLTP()
		objects = w.Catalog.Objects
		workloads, err = estimator.EstimateOLTP(w, estimator.DefaultAssumptions(*disks))
	default:
		return fmt.Errorf("unknown workload %q", *workload)
	}
	if err != nil {
		return err
	}

	pool := configure.Pool{Disks: *disks, MaxGroup: *maxGroup}
	if *ssdGB > 0 {
		pool.Fixed = append(pool.Fixed, replay.SSD("ssd", int64(*ssdGB)<<30))
	}
	grid := costmodel.DefaultGrid()
	if *fast {
		grid = costmodel.FastGrid()
	}

	fmt.Fprintf(os.Stderr, "evaluating configurations of %d disks (this calibrates each group size once)...\n", *disks)
	cands, err := configure.Best(pool, configure.Options{
		Objects:   objects,
		Workloads: workloads,
		Grid:      grid,
		Seed:      *seed,
	})
	if err != nil {
		return err
	}

	fmt.Printf("%-14s %22s %12s\n", "Grouping", "Predicted max util", "Targets")
	for _, c := range cands {
		fmt.Printf("%-14s %21.1f%% %12d\n", fmt.Sprint(c.Grouping), 100*c.Rec.FinalObjective, len(c.Devices))
	}
	best := cands[0]
	fmt.Printf("\nbest configuration %v; recommended layout of the hottest objects:\n", best.Grouping)
	names := make([]string, len(best.Devices))
	for j, d := range best.Devices {
		names[j] = d.Name
	}
	printTop(objects, workloads, names, best.Rec.Final, 8)
	return nil
}

// printTop prints the hottest objects' rows.
func printTop(objects []layout.Object, ws *rome.Set, targets []string, l *layout.Layout, top int) {
	order := make([]int, len(objects))
	for i := range order {
		order[i] = i
	}
	for a := 0; a < len(order); a++ {
		for b := a + 1; b < len(order); b++ {
			if ws.Workloads[order[b]].TotalRate() > ws.Workloads[order[a]].TotalRate() {
				order[a], order[b] = order[b], order[a]
			}
		}
	}
	if top < len(order) {
		order = order[:top]
	}
	fmt.Printf("%-18s", "Object")
	for _, t := range targets {
		fmt.Printf(" %11s", t)
	}
	fmt.Println()
	for _, i := range order {
		fmt.Printf("%-18s", objects[i].Name)
		for j := range targets {
			if v := l.At(i, j); v > layout.Epsilon {
				fmt.Printf(" %10.1f%%", 100*v)
			} else {
				fmt.Printf(" %11s", ".")
			}
		}
		fmt.Println()
	}
}

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "configure:", err)
		os.Exit(1)
	}
}
