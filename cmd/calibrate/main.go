// Command calibrate builds a black-box cost model for one of the built-in
// simulated device types by running the paper's calibration procedure
// (Sec. 5.2.2): controlled workloads sweeping request size, run count and
// contention, tabulating the measured per-request service costs.
//
// Usage:
//
//	calibrate -device disk15k|disk7200|ssd|raid0xN [-o model.json] [-fast]
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"dblayout/internal/costmodel"
	"dblayout/internal/storage"
)

func factoryFor(device string) (costmodel.TargetFactory, error) {
	switch {
	case device == "disk15k":
		return func(e *storage.Engine) storage.Device {
			return storage.NewDisk(e, "disk", storage.Disk15KConfig())
		}, nil
	case device == "disk7200":
		return func(e *storage.Engine) storage.Device {
			return storage.NewDisk(e, "disk", storage.Disk7200Config())
		}, nil
	case device == "ssd":
		return func(e *storage.Engine) storage.Device {
			return storage.NewSSD(e, "ssd", storage.SSD32Config())
		}, nil
	case strings.HasPrefix(device, "raid0x"):
		n, err := strconv.Atoi(device[len("raid0x"):])
		if err != nil || n < 1 {
			return nil, fmt.Errorf("bad RAID member count in %q", device)
		}
		return func(e *storage.Engine) storage.Device {
			members := make([]storage.Device, n)
			for i := range members {
				members[i] = storage.NewDisk(e, fmt.Sprintf("m%d", i), storage.Disk15KConfig())
			}
			return storage.NewRAID0(e, "raid", storage.DefaultStripeUnit, members...)
		}, nil
	}
	return nil, fmt.Errorf("unknown device %q (want disk15k, disk7200, ssd, raid0xN)", device)
}

func run() error {
	device := flag.String("device", "disk15k", "device type to calibrate")
	out := flag.String("o", "", "output file (default stdout)")
	fast := flag.Bool("fast", false, "coarse calibration grid")
	flag.Parse()

	factory, err := factoryFor(*device)
	if err != nil {
		return err
	}
	grid := costmodel.DefaultGrid()
	if *fast {
		grid = costmodel.FastGrid()
	}

	fmt.Fprintf(os.Stderr, "calibrating %s (%d sizes x %d run counts x %d contention levels)...\n",
		*device, len(grid.Sizes), len(grid.RunCounts), len(grid.Competitors))
	m := costmodel.Calibrate(*device, factory, grid)

	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	return m.Save(w)
}

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "calibrate:", err)
		os.Exit(1)
	}
}
