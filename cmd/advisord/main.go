// Command advisord serves the layout advisor as a long-running multi-tenant
// HTTP daemon: clients upload a problem document per tenant, then request
// layout recommendations, failure repairs and simulated journaled migrations
// over a REST-ish API. See internal/server and the "Advisor as a service"
// section of README.md for the API and DESIGN.md for the service contract.
//
// Usage:
//
//	advisord -addr :8080 [-data DIR] [-solver-workers N] [-queue N]
//	         [-budget 30s] [-full-calibration]
//	         [-v | -log-level L] [-metrics-out f] [-listen addr] ...
//
// Endpoints:
//
//	PUT    /v1/tenants/{id}            upload/replace the problem document
//	GET    /v1/tenants/{id}            tenant state summary
//	DELETE /v1/tenants/{id}            remove the tenant (and its journal)
//	POST   /v1/tenants/{id}/workloads  replace the workload set
//	POST   /v1/tenants/{id}/trace      fit workloads from a JSONL block trace
//	POST   /v1/tenants/{id}/advise     recommend a layout (cached per state)
//	POST   /v1/tenants/{id}/repair     replan around failed targets
//	POST   /v1/tenants/{id}/migrate    start a journaled simulated migration
//	GET    /v1/tenants/{id}/migration  migration progress
//	GET    /healthz                    liveness
//	GET    /metrics, /metrics.json, /series, /debug/pprof/
//
// With -data the daemon persists problem documents and migration journals;
// a restart restores every tenant and resumes in-flight migrations
// exactly-once from their write-ahead journals. Without -data everything is
// in-memory and migration endpoints return 503.
//
// The daemon shuts down gracefully on SIGINT/SIGTERM: the listener drains
// in-flight requests, running migrations stop at a journal record boundary
// (to be resumed on the next start), and metrics files are flushed.
package main

import (
	"flag"
	"fmt"
	"net"
	"os"
	"os/signal"
	"syscall"
	"time"

	"dblayout/internal/obs"
	"dblayout/internal/server"
)

func run() error {
	addr := flag.String("addr", ":8080", "HTTP listen address for the advisor API")
	dataDir := flag.String("data", "", "directory for tenant documents and migration journals (empty = in-memory, no migrations)")
	workers := flag.Int("solver-workers", 0, "max concurrent solver-bound requests (0 = GOMAXPROCS/2)")
	queue := flag.Int("queue", 0, "max requests waiting for a solver slot beyond the pool (0 = 4x workers)")
	budget := flag.Duration("budget", 30*time.Second, "default and maximum per-request solve budget")
	fullCal := flag.Bool("full-calibration", false, "calibrate built-in device models on the full grid (minutes per device type; default uses the fast grid)")
	var cli obs.CLI
	cli.Register(flag.CommandLine)
	flag.Parse()

	sess, err := cli.Start(os.Stderr)
	if err != nil {
		return err
	}
	defer func() {
		if cerr := sess.Close(); cerr != nil {
			fmt.Fprintln(os.Stderr, "advisord: closing observability outputs:", cerr)
		}
	}()

	reg := sess.Registry
	if reg == nil {
		reg = obs.NewRegistry()
	}
	srv, err := server.New(server.Options{
		DataDir:         *dataDir,
		Workers:         *workers,
		QueueDepth:      *queue,
		SolveBudget:     *budget,
		FastCalibration: !*fullCal,
		Logger:          sess.Logger,
		Registry:        reg,
	})
	if err != nil {
		return err
	}
	defer srv.Close()

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	httpSrv := obs.NewServer(srv.Handler())
	errc := make(chan error, 1)
	go func() { errc <- httpSrv.Serve(ln) }()
	fmt.Printf("advisord listening on %s\n", ln.Addr())

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case got := <-sig:
		fmt.Fprintf(os.Stderr, "advisord: %v, shutting down\n", got)
		signal.Stop(sig)
		if err := obs.Shutdown(httpSrv, 5*time.Second); err != nil {
			fmt.Fprintln(os.Stderr, "advisord: draining listener:", err)
		}
		srv.Close()
		return nil
	case err := <-errc:
		return err
	}
}

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "advisord:", err)
		os.Exit(1)
	}
}
