module dblayout

go 1.22
