package dblayout_test

import (
	"testing"

	"dblayout"
)

// TestCalibrateBuiltinDevices exercises the public calibration entry points
// (full grid, so skipped in -short runs) and checks the resulting models
// have the Fig. 8 qualitative shape.
func TestCalibrateBuiltinDevices(t *testing.T) {
	if testing.Short() {
		t.Skip("full-grid calibration")
	}
	disk := dblayout.CalibrateDisk()
	if err := disk.Valid(); err != nil {
		t.Fatalf("disk model invalid: %v", err)
	}
	seq := disk.Cost(false, 8192, 64, 0)
	rnd := disk.Cost(false, 8192, 1, 0)
	if seq >= rnd/4 {
		t.Errorf("disk: sequential %.3gms not ≪ random %.3gms", seq*1e3, rnd*1e3)
	}
	if collapsed := disk.Cost(false, 8192, 64, 4); collapsed < 3*seq {
		t.Errorf("disk: no interference collapse (%.3gms -> %.3gms)", seq*1e3, collapsed*1e3)
	}

	ssd := dblayout.CalibrateSSD()
	if err := ssd.Valid(); err != nil {
		t.Fatalf("ssd model invalid: %v", err)
	}
	if s, r := ssd.Cost(false, 8192, 64, 0), ssd.Cost(false, 8192, 1, 0); s < r*0.8 || s > r*1.2 {
		t.Errorf("ssd: sequentiality should not matter (%.3g vs %.3g)", s, r)
	}
}
