package dblayout_test

import (
	"bytes"
	"strings"
	"testing"

	"dblayout"
	"dblayout/internal/layouttest"
)

// testProblem builds a small public-API problem using the shared test
// models.
func testProblem() dblayout.Problem {
	inst := layouttest.Instance(4)
	return dblayout.Problem{
		Objects:   inst.Objects,
		Targets:   inst.Targets,
		Workloads: inst.Workloads,
	}
}

func TestRecommendEndToEnd(t *testing.T) {
	p := testProblem()
	rec, err := dblayout.Recommend(p, dblayout.Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if rec.Final == nil || !rec.Final.IsRegular() {
		t.Fatal("expected a regular final layout")
	}
	// The recommendation must beat SEE on this interference-heavy
	// problem, by the model's own metric.
	seeUtils, err := dblayout.Utilizations(p, dblayout.SEE(len(p.Objects), len(p.Targets)))
	if err != nil {
		t.Fatal(err)
	}
	maxSee := 0.0
	for _, u := range seeUtils {
		if u > maxSee {
			maxSee = u
		}
	}
	if rec.FinalObjective >= maxSee {
		t.Fatalf("recommendation %.4f did not beat SEE %.4f", rec.FinalObjective, maxSee)
	}
}

func TestRecommendSkipRegularization(t *testing.T) {
	p := testProblem()
	rec, err := dblayout.Recommend(p, dblayout.Options{Seed: 1, SkipRegularization: true})
	if err != nil {
		t.Fatal(err)
	}
	if rec.Final != rec.Solver {
		t.Fatal("expected the solver layout when regularization is skipped")
	}
}

func TestRecommendValidatesProblem(t *testing.T) {
	p := testProblem()
	p.Workloads = nil
	if _, err := dblayout.Recommend(p); err == nil {
		t.Fatal("problem without workloads accepted")
	}
}

func TestUtilizationsValidatesLayout(t *testing.T) {
	p := testProblem()
	bad := dblayout.SEE(len(p.Objects), len(p.Targets))
	bad.Set(0, 0, 0.9) // break integrity
	if _, err := dblayout.Utilizations(p, bad); err == nil {
		t.Fatal("invalid layout accepted")
	}
}

func TestFitWorkloadsFromTrace(t *testing.T) {
	tr := &dblayout.Trace{}
	for i := 0; i < 200; i++ {
		tr.Record(dblayout.TraceRecord{
			Time: float64(i) * 0.01, Object: 0, Target: "d",
			Offset: int64(i) * 8192, Size: 8192,
		})
	}
	set, err := dblayout.FitWorkloads(tr, []string{"A", "B"}, dblayout.FitOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if set.Workloads[0].ReadRate <= 0 || set.Workloads[0].RunCount < 10 {
		t.Fatalf("fit lost the sequential stream: %v", set.Workloads[0])
	}
	if !set.Workloads[1].Idle() {
		t.Fatal("untouched object should fit as idle")
	}
}

func TestModelRoundTrip(t *testing.T) {
	m := layouttest.DiskModel()
	var buf bytes.Buffer
	if err := dblayout.SaveModel(&buf, m); err != nil {
		t.Fatal(err)
	}
	m2, err := dblayout.LoadModel(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if m2.Target != m.Target {
		t.Fatalf("round trip changed target: %q", m2.Target)
	}
}

func TestFormatLayout(t *testing.T) {
	p := testProblem()
	s := dblayout.FormatLayout(p, dblayout.SEE(len(p.Objects), len(p.Targets)))
	if !strings.Contains(s, "T1") || !strings.Contains(s, "25.0%") {
		t.Fatalf("unexpected format:\n%s", s)
	}
}

func TestPublicMigrationAndIncremental(t *testing.T) {
	p := testProblem()
	see := dblayout.SEE(len(p.Objects), len(p.Targets))
	rec, err := dblayout.Recommend(p, dblayout.Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	plan, err := dblayout.MigrationPlan(p, see, rec.Final)
	if err != nil {
		t.Fatal(err)
	}
	if dblayout.PlanBytes(plan) <= 0 {
		t.Fatal("migration from SEE to the recommendation should move data")
	}
	// Incremental placement of the cold object into the recommendation.
	inc, err := dblayout.PlaceIncremental(p, rec.Final, []int{3}, 1)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		for j := 0; j < len(p.Targets); j++ {
			if inc.At(i, j) != rec.Final.At(i, j) {
				t.Fatalf("incremental placement moved existing object %d", i)
			}
		}
	}
}

func TestPublicConstraints(t *testing.T) {
	p := testProblem()
	p.Constraints = &dblayout.Constraints{
		Deny:     map[int][]int{0: {0, 1}},
		Separate: [][2]int{{0, 1}},
	}
	rec, err := dblayout.Recommend(p, dblayout.Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if rec.Final.At(0, 0) > 1e-9 || rec.Final.At(0, 1) > 1e-9 {
		t.Fatalf("denied placement used: %v", rec.Final.Row(0))
	}
	for j := 0; j < len(p.Targets); j++ {
		if rec.Final.At(0, j) > 1e-9 && rec.Final.At(1, j) > 1e-9 {
			t.Fatalf("separated objects share target %d", j)
		}
	}
}
