package core

import (
	"fmt"
	"sort"

	"dblayout/internal/layout"
)

// Regularize converts the solver's (possibly non-regular) layout into a
// regular one using the post-processing algorithm of paper Sec. 4.3.
//
// Objects are regularized one at a time in decreasing order of the total
// storage system load they impose (sum over targets of mu_ij), so that load
// imbalances introduced early can be corrected by later objects. For each
// object, two classes of regular candidate rows are generated:
//
//   - consistent candidates: the top-k targets of the object's solver row,
//     ranked by assigned fraction (ties broken by target index), each
//     holding 1/k — the only regular layouts that preserve the solver's
//     ordering of fractions;
//   - balancing candidates: the k least-utilized targets under the current
//     partially-regularized layout, each holding 1/k.
//
// Candidates violating the capacity constraint are discarded; among the rest
// the one minimizing the maximum target utilization wins. If every candidate
// for some object is invalid, Regularize fails (the paper notes manual
// intervention would then be required).
func Regularize(ev *layout.Evaluator, inst *layout.Instance, solved *layout.Layout) (*layout.Layout, error) {
	n, m := solved.N, solved.M
	l := solved.Clone()
	sizes := inst.Sizes()
	caps := inst.Capacities()

	// Regularization order: decreasing total imposed load. The loads are
	// precomputed in one batch pass (bit-identical to per-object
	// ev.ObjectLoad calls, which would cost O(N) target sweeps each), so
	// the ordering step is the O(N log N) sort, not an O(N^2) scan.
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	loads := ev.ObjectLoads(solved)
	sort.SliceStable(order, func(a, b int) bool { return loads[order[a]] > loads[order[b]] })

	// On fleet-scale problems generating all M stripe widths per object
	// would reintroduce an O(N*M^2) term; bound the widths considered, the
	// same way the transfer search bounds its candidate scans. Paper-scale
	// problems stay below the threshold and keep the exhaustive scan, so
	// their output is unchanged.
	maxWidth := m
	if n*m >= regularizeAutoPairs && maxWidth > regularizeMaxWidth {
		maxWidth = regularizeMaxWidth
	}

	// A candidate row changes only the targets whose own cell changes, so
	// the incremental kernel prices each candidate in O(changed targets *
	// active objects) against the current partially-regularized layout.
	inc := ev.NewIncremental(l)
	utils := inc.Utilizations(nil)

	for _, i := range order {
		if l.RowRegular(i) {
			continue
		}
		oldRow := l.Row(i)

		var candidates [][]float64
		candidates = append(candidates, consistentCandidates(oldRow, maxWidth)...)
		candidates = append(candidates, balancingCandidates(utils, maxWidth)...)

		bestObj := -1.0
		var bestRow []float64
		var bestUtils []float64
		for _, cand := range candidates {
			if !capacityOK(l, i, cand, sizes, caps) || !constraintsOK(inst, l, i, cand) {
				continue
			}
			newUtils, obj := evalCandidate(inc, utils, i, oldRow, cand)
			if bestObj < 0 || obj < bestObj {
				bestObj = obj
				bestRow = cand
				bestUtils = newUtils
			}
		}
		if bestRow == nil {
			return nil, fmt.Errorf("no valid regular layout for object %q: space constraints too tight",
				inst.Objects[i].Name)
		}
		inc.SetObjectRow(i, bestRow)
		utils = bestUtils
	}
	if !l.IsRegular() {
		return nil, fmt.Errorf("internal error: result not regular")
	}
	if err := inst.ValidateLayout(l); err != nil {
		return nil, fmt.Errorf("internal error: regularized layout invalid: %w", err)
	}
	return l, nil
}

// Fleet-scale candidate bound: when a problem reaches this many
// object-target pairs (the same threshold at which the transfer search's
// candidate pruning auto-engages; the paper's largest study, 160 x 40,
// stays three orders of magnitude below it), candidate stripe widths are
// capped at regularizeMaxWidth instead of ranging over all M targets.
const (
	regularizeAutoPairs = 1 << 18
	regularizeMaxWidth  = 64
)

// consistentCandidates returns the regular rows consistent with the
// solver's row: for k = 1..maxWidth, the k targets with the largest
// fractions (ties broken by index, as footnote 1 of the paper prescribes)
// receive 1/k each.
func consistentCandidates(row []float64, maxWidth int) [][]float64 {
	m := len(row)
	idx := make([]int, m)
	for j := range idx {
		idx[j] = j
	}
	sort.SliceStable(idx, func(a, b int) bool { return row[idx[a]] > row[idx[b]] })

	out := make([][]float64, 0, maxWidth)
	for k := 1; k <= maxWidth; k++ {
		out = append(out, layout.RegularRow(m, idx[:k]))
	}
	return out
}

// balancingCandidates returns the regular rows that place the object on
// the k least-utilized targets, for k = 1..maxWidth.
func balancingCandidates(utils []float64, maxWidth int) [][]float64 {
	m := len(utils)
	idx := make([]int, m)
	for j := range idx {
		idx[j] = j
	}
	sort.SliceStable(idx, func(a, b int) bool { return utils[idx[a]] < utils[idx[b]] })

	out := make([][]float64, 0, maxWidth)
	for k := 1; k <= maxWidth; k++ {
		out = append(out, layout.RegularRow(m, idx[:k]))
	}
	return out
}

// constraintsOK checks whether replacing object i's row with cand respects
// the instance's administrative constraints against the current layout.
func constraintsOK(inst *layout.Instance, l *layout.Layout, i int, cand []float64) bool {
	c := inst.Constraints
	if c == nil {
		return true
	}
	partners := c.SeparatedFrom(i)
	for j, v := range cand {
		if v <= layout.Epsilon {
			continue
		}
		if !c.Permits(i, j) {
			return false
		}
		for _, k := range partners {
			if l.At(k, j) > layout.Epsilon {
				return false
			}
		}
	}
	return true
}

// capacityOK checks whether replacing object i's row with cand keeps every
// target within capacity.
func capacityOK(l *layout.Layout, i int, cand []float64, sizes, caps []int64) bool {
	size := float64(sizes[i])
	for j := range cand {
		delta := (cand[j] - l.At(i, j)) * size
		if delta <= 0 {
			continue
		}
		if l.TargetBytes(j, sizes)+delta > float64(caps[j])*(1+1e-12) {
			return false
		}
	}
	return true
}

// evalCandidate computes the utilizations and max-utilization objective that
// would result from replacing object i's row with cand, delta-scoring only
// the targets whose workload set changes — no mutate-evaluate-revert round
// trip on the layout.
func evalCandidate(inc *layout.IncrementalEvaluator, utils []float64, i int, oldRow, cand []float64) ([]float64, float64) {
	newUtils := append([]float64(nil), utils...)
	for j := range cand {
		if oldRow[j] != cand[j] {
			newUtils[j] = inc.ScoreObjectFrac(j, i, cand[j])
		}
	}

	obj := 0.0
	for _, u := range newUtils {
		if u > obj {
			obj = u
		}
	}
	return newUtils, obj
}
