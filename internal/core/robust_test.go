package core

import (
	"context"
	"errors"
	"math"
	"sync"
	"testing"
	"time"

	"dblayout/internal/layout"
	"dblayout/internal/layouttest"
	"dblayout/internal/nlp"
)

// endlessNLP keeps the solver searching far longer than any test timeout, so
// only cancellation or the budget can stop it.
func endlessNLP(seed int64) nlp.Options {
	return nlp.Options{Seed: seed, MaxIters: 1 << 30, Restarts: 1 << 20}
}

// panicModel is a cost model that panics on every evaluation.
type panicModel struct{}

func (panicModel) Cost(write bool, size, runCount, chi float64) float64 {
	panic("panicModel: deliberately broken")
}

// nanModel is a cost model that returns NaN on every evaluation.
type nanModel struct{}

func (nanModel) Cost(write bool, size, runCount, chi float64) float64 {
	return math.NaN()
}

func brokenInstance(m int, model layout.CostModel) *layout.Instance {
	inst := layouttest.Instance(m)
	for _, t := range inst.Targets {
		t.Model = model
	}
	return inst
}

func TestRecommendContextPreCancelled(t *testing.T) {
	adv, err := New(layouttest.Instance(4), Options{NLP: nlp.Options{Seed: 1}})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	start := time.Now()
	rec, err := adv.RecommendContext(ctx)
	if rec != nil {
		t.Fatal("pre-cancelled context returned a recommendation")
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if elapsed := time.Since(start); elapsed > 100*time.Millisecond {
		t.Fatalf("pre-cancelled return took %v: it solved anyway", elapsed)
	}
}

func TestRecommendContextCancelMidSolve(t *testing.T) {
	inst := layouttest.Instance(4)
	adv, err := New(inst, Options{NLP: endlessNLP(1)})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	type out struct {
		rec *Recommendation
		err error
	}
	done := make(chan out, 1)
	go func() {
		rec, err := adv.RecommendContext(ctx)
		done <- out{rec, err}
	}()
	time.Sleep(20 * time.Millisecond)
	cancelled := time.Now()
	cancel()
	o := <-done
	promptness := time.Since(cancelled)

	if !errors.Is(o.err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", o.err)
	}
	if o.rec == nil {
		t.Fatal("no best-so-far recommendation alongside the context error")
	}
	if !o.rec.Degraded || o.rec.Degradation == nil {
		t.Fatal("cancelled recommendation not marked Degraded")
	}
	if !errors.Is(o.rec.Degradation, context.Canceled) {
		t.Fatalf("degradation cause = %v, want context.Canceled", o.rec.Degradation.Cause)
	}
	if err := inst.ValidateLayout(o.rec.Final); err != nil {
		t.Fatalf("best-so-far layout invalid: %v", err)
	}
	// The solvers poll every few milliseconds; anything under 100ms is
	// prompt next to the unbounded solve this run was configured for.
	if promptness > 100*time.Millisecond {
		t.Fatalf("cancellation took %v", promptness)
	}
}

// TestRecommendContextBudget is the acceptance check: a 50ms budget on a
// larger instance completes with a valid (degraded) layout within 2x the
// budget plus the cheap model-free phases.
func TestRecommendContextBudget(t *testing.T) {
	inst := layouttest.Replicated(4, 8)
	const budget = 50 * time.Millisecond
	adv, err := New(inst, Options{NLP: endlessNLP(1), SolveBudget: budget})
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	rec, err := adv.RecommendContext(context.Background())
	elapsed := time.Since(start)
	if err != nil {
		t.Fatal(err)
	}
	if err := inst.ValidateLayout(rec.Final); err != nil {
		t.Fatalf("layout invalid: %v", err)
	}
	if !rec.Degraded || !errors.Is(rec.Degradation, ErrBudgetExceeded) {
		t.Fatalf("truncated solve not marked Degraded(ErrBudgetExceeded): %v", rec.Degradation)
	}
	if elapsed > 2*budget {
		t.Fatalf("took %v with a %v budget", elapsed, budget)
	}
}

func TestRecommendContextPanickingModel(t *testing.T) {
	inst := brokenInstance(4, panicModel{})
	adv, err := New(inst, Options{NLP: nlp.Options{Seed: 1}})
	if err != nil {
		t.Fatal(err)
	}
	rec, err := adv.RecommendContext(context.Background())
	if err != nil {
		t.Fatalf("panicking model escalated to an error: %v", err)
	}
	if !rec.Degraded || !errors.Is(rec.Degradation, ErrModelFailure) {
		t.Fatalf("not Degraded(ErrModelFailure): %v", rec.Degradation)
	}
	if err := inst.ValidateLayout(rec.Final); err != nil {
		t.Fatalf("fallback layout invalid: %v", err)
	}
}

func TestRecommendContextNaNModel(t *testing.T) {
	inst := brokenInstance(4, nanModel{})
	adv, err := New(inst, Options{NLP: nlp.Options{Seed: 1}})
	if err != nil {
		t.Fatal(err)
	}
	rec, err := adv.RecommendContext(context.Background())
	if err != nil {
		t.Fatalf("NaN model escalated to an error: %v", err)
	}
	if !rec.Degraded || !errors.Is(rec.Degradation, ErrModelFailure) {
		t.Fatalf("not Degraded(ErrModelFailure): %v", rec.Degradation)
	}
	if err := inst.ValidateLayout(rec.Final); err != nil {
		t.Fatalf("fallback layout invalid: %v", err)
	}
}

// TestRecommendContextConcurrent exercises one Advisor from several
// goroutines; run with -race it proves RecommendContext keeps its per-call
// state off the shared Advisor.
func TestRecommendContextConcurrent(t *testing.T) {
	inst := layouttest.Instance(4)
	adv, err := New(inst, Options{NLP: nlp.Options{Seed: 1}})
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	errs := make([]error, 8)
	for g := range errs {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rec, err := adv.RecommendContext(context.Background())
			if err == nil {
				err = inst.ValidateLayout(rec.Final)
			}
			errs[g] = err
		}(g)
	}
	wg.Wait()
	for g, err := range errs {
		if err != nil {
			t.Fatalf("goroutine %d: %v", g, err)
		}
	}
}

func TestRecommendRepair(t *testing.T) {
	inst := layouttest.Instance(4)
	current, err := layout.InitialLayout(inst)
	if err != nil {
		t.Fatal(err)
	}
	// Fail the target holding the most bytes so the repair must move data.
	sizes := inst.Sizes()
	failed, most := 0, -1.0
	for j := 0; j < inst.M(); j++ {
		if b := current.TargetBytes(j, sizes); b > most {
			failed, most = j, b
		}
	}
	rep, err := RecommendRepair(context.Background(), inst, current, []int{failed}, Options{NLP: nlp.Options{Seed: 1}})
	if err != nil {
		t.Fatal(err)
	}
	if err := rep.Instance.ValidateLayout(rep.Layout); err != nil {
		t.Fatalf("repaired layout invalid: %v", err)
	}
	for i := 0; i < rep.Layout.N; i++ {
		if rep.Layout.At(i, failed) != 0 {
			t.Fatalf("object %d still places %g on failed target %d", i, rep.Layout.At(i, failed), failed)
		}
	}
	if len(rep.Plan) == 0 || rep.PlanBytes <= 0 {
		t.Fatal("repair of a loaded target produced an empty migration plan")
	}
	if rep.PlanNeedsStaging {
		t.Fatal("repair with ample free capacity should not need scratch staging")
	}
	if len(rep.PlanOrdered) != len(rep.Plan) {
		t.Fatalf("PlanOrdered has %d moves, Plan has %d", len(rep.PlanOrdered), len(rep.Plan))
	}
	if err := layout.CheckPlanOrder(current, rep.PlanOrdered, inst.Sizes(), inst.Capacities()); err != nil {
		t.Fatalf("PlanOrdered is not capacity-safe: %v", err)
	}
	if rep.Degraded {
		t.Fatalf("healthy repair marked degraded: %v", rep.Degradation)
	}
	if math.IsNaN(rep.Objective) || rep.Objective <= 0 {
		t.Fatalf("objective = %g", rep.Objective)
	}
	// Unaffected objects must not move.
	affected := make(map[int]bool)
	for _, i := range rep.Affected {
		affected[i] = true
	}
	for i := 0; i < current.N; i++ {
		if affected[i] {
			continue
		}
		for j := 0; j < current.M; j++ {
			if rep.Layout.At(i, j) != current.At(i, j) {
				t.Fatalf("unaffected object %d moved on target %d", i, j)
			}
		}
	}
}

func TestRecommendRepairAllFailed(t *testing.T) {
	inst := layouttest.Instance(2)
	current, err := layout.InitialLayout(inst)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := RecommendRepair(context.Background(), inst, current, []int{0, 1}, Options{}); !errors.Is(err, ErrInfeasible) {
		t.Fatalf("err = %v, want ErrInfeasible", err)
	}
}

func TestRecommendRepairCapacityInfeasible(t *testing.T) {
	// 8 GB of objects on two 5 GB targets: feasible together, infeasible
	// once either fails.
	inst := layouttest.Instance(2)
	inst.Targets[0].Capacity = 5 << 30
	inst.Targets[1].Capacity = 5 << 30
	if err := inst.Validate(); err != nil {
		t.Fatal(err)
	}
	l := layout.New(4, 2)
	for i := 0; i < 4; i++ {
		l.SetRow(i, []float64{0.5, 0.5})
	}
	if err := inst.ValidateLayout(l); err != nil {
		t.Fatal(err)
	}
	if _, err := RecommendRepair(context.Background(), inst, l, []int{1}, Options{}); !errors.Is(err, ErrInfeasible) {
		t.Fatalf("err = %v, want ErrInfeasible", err)
	}
}

func TestRecommendRepairNothingAffected(t *testing.T) {
	inst := layouttest.Instance(4)
	// Everything lives on targets 0 and 1; target 3 is empty.
	l := layout.New(4, 4)
	for i := 0; i < 4; i++ {
		l.SetRow(i, []float64{0.5, 0.5, 0, 0})
	}
	if err := inst.ValidateLayout(l); err != nil {
		t.Fatal(err)
	}
	rep, err := RecommendRepair(context.Background(), inst, l, []int{3}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Affected) != 0 || len(rep.Plan) != 0 || rep.PlanBytes != 0 {
		t.Fatalf("empty target's failure moved data: affected %v, %d moves", rep.Affected, len(rep.Plan))
	}
	for i := 0; i < l.N; i++ {
		for j := 0; j < l.M; j++ {
			if rep.Layout.At(i, j) != l.At(i, j) {
				t.Fatal("layout changed although nothing was affected")
			}
		}
	}
}

// TestRecommendRepairBrokenModel: the evacuation seeding is model-free, so a
// repair still succeeds — degraded — when every cost model panics.
func TestRecommendRepairBrokenModel(t *testing.T) {
	inst := brokenInstance(4, panicModel{})
	// A model-free current layout (InitialLayout never consults models).
	current, err := layout.InitialLayout(inst)
	if err != nil {
		t.Fatal(err)
	}
	sizes := inst.Sizes()
	failed, most := 0, -1.0
	for j := 0; j < inst.M(); j++ {
		if b := current.TargetBytes(j, sizes); b > most {
			failed, most = j, b
		}
	}
	rep, err := RecommendRepair(context.Background(), inst, current, []int{failed}, Options{NLP: nlp.Options{Seed: 1}})
	if err != nil {
		t.Fatalf("broken model escalated to an error: %v", err)
	}
	if !rep.Degraded || !errors.Is(rep.Degradation, ErrModelFailure) {
		t.Fatalf("not Degraded(ErrModelFailure): %v", rep.Degradation)
	}
	if err := rep.Instance.ValidateLayout(rep.Layout); err != nil {
		t.Fatalf("degraded repair layout invalid: %v", err)
	}
	for i := 0; i < rep.Layout.N; i++ {
		if rep.Layout.At(i, failed) != 0 {
			t.Fatalf("object %d still on failed target", i)
		}
	}
	if !math.IsNaN(rep.Objective) {
		t.Fatalf("objective = %g, want NaN under a broken model", rep.Objective)
	}
}

func TestRecommendRepairPreCancelled(t *testing.T) {
	inst := layouttest.Instance(4)
	current, err := layout.InitialLayout(inst)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if rep, err := RecommendRepair(ctx, inst, current, []int{0}, Options{}); rep != nil || !errors.Is(err, context.Canceled) {
		t.Fatalf("rep = %v, err = %v; want nil, context.Canceled", rep, err)
	}
}

func TestPlaceIncrementalPreCancelled(t *testing.T) {
	inst := layouttest.Instance(4)
	current, err := layout.InitialLayout(inst)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if l, err := PlaceIncrementalContext(ctx, inst, current, []int{3}, nlp.Options{}); l != nil || !errors.Is(err, context.Canceled) {
		t.Fatalf("l = %v, err = %v; want nil, context.Canceled", l, err)
	}
}
