package core

import (
	"math"
	"testing"
	"testing/quick"

	"dblayout/internal/layout"
	"dblayout/internal/layouttest"
	"dblayout/internal/nlp"
)

func TestAdvisorPipeline(t *testing.T) {
	inst := layouttest.Instance(4)
	adv, err := New(inst, Options{NLP: nlp.Options{Seed: 1}})
	if err != nil {
		t.Fatal(err)
	}
	rec, err := adv.Recommend()
	if err != nil {
		t.Fatal(err)
	}
	if rec.Initial == nil || rec.Solver == nil || rec.Final == nil {
		t.Fatal("missing pipeline stages")
	}
	if err := inst.ValidateLayout(rec.Final); err != nil {
		t.Fatalf("final layout invalid: %v", err)
	}
	if !rec.Final.IsRegular() {
		t.Fatal("final layout not regular")
	}
	if rec.SolverObjective > rec.InitialObjective*(1+1e-9) {
		t.Fatalf("solver worsened objective: %g -> %g", rec.InitialObjective, rec.SolverObjective)
	}
	// The recommended layout should beat SEE on this interference-heavy
	// instance.
	see := adv.Evaluator().MaxUtilization(layout.SEE(inst.N(), inst.M()))
	if rec.FinalObjective >= see {
		t.Fatalf("final %.4f did not beat SEE %.4f", rec.FinalObjective, see)
	}
}

func TestAdvisorSkipRegularization(t *testing.T) {
	inst := layouttest.Instance(4)
	adv, err := New(inst, Options{SkipRegularization: true, NLP: nlp.Options{Seed: 1}})
	if err != nil {
		t.Fatal(err)
	}
	rec, err := adv.Recommend()
	if err != nil {
		t.Fatal(err)
	}
	if rec.Final != rec.Solver {
		t.Fatal("final should be the solver layout when regularization is skipped")
	}
	if rec.RegularizeTime != 0 {
		t.Fatal("regularization time should be zero")
	}
}

func TestAdvisorMultiStart(t *testing.T) {
	inst := layouttest.Instance(4)
	see := layout.SEE(inst.N(), inst.M())
	heuristic, err := layout.InitialLayout(inst)
	if err != nil {
		t.Fatal(err)
	}
	adv, err := New(inst, Options{
		InitialLayouts: []*layout.Layout{see, heuristic},
		NLP:            nlp.Options{Seed: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	rec, err := adv.Recommend()
	if err != nil {
		t.Fatal(err)
	}
	// The multi-start result must be at least as good as the single-start
	// run from either initial layout alone.
	single, err := New(inst, Options{
		InitialLayouts: []*layout.Layout{heuristic},
		NLP:            nlp.Options{Seed: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	srec, err := single.Recommend()
	if err != nil {
		t.Fatal(err)
	}
	if rec.FinalObjective > srec.FinalObjective*(1+1e-9) {
		t.Fatalf("multi-start %.4f worse than single-start %.4f", rec.FinalObjective, srec.FinalObjective)
	}
}

func TestAdvisorSolverVariants(t *testing.T) {
	inst := layouttest.Instance(4)
	for _, solver := range []Solver{SolverTransfer, SolverProjectedGradient, SolverAnneal} {
		adv, err := New(inst, Options{Solver: solver, NLP: nlp.Options{Seed: 2, MaxIters: 500}})
		if err != nil {
			t.Fatal(err)
		}
		rec, err := adv.Recommend()
		if err != nil {
			t.Fatalf("%v: %v", solver, err)
		}
		if err := inst.ValidateLayout(rec.Final); err != nil {
			t.Fatalf("%v: invalid layout: %v", solver, err)
		}
		if !rec.Final.IsRegular() {
			t.Fatalf("%v: not regular", solver)
		}
		if rec.FinalObjective > rec.InitialObjective*1.2 {
			t.Fatalf("%v: objective %g much worse than initial %g", solver, rec.FinalObjective, rec.InitialObjective)
		}
	}
}

func TestAdvisorRejectsInvalidInstance(t *testing.T) {
	inst := layouttest.Instance(2)
	inst.Targets[0].Model = nil
	if _, err := New(inst, Options{}); err == nil {
		t.Fatal("invalid instance accepted")
	}
}

func TestConsistentCandidates(t *testing.T) {
	// The paper's example: (47%, 35%, 18%) admits exactly (100,0,0),
	// (50,50,0), (33,33,33).
	cands := consistentCandidates([]float64{0.47, 0.35, 0.18}, 3)
	want := [][]float64{
		{1, 0, 0},
		{0.5, 0.5, 0},
		{1.0 / 3, 1.0 / 3, 1.0 / 3},
	}
	if len(cands) != len(want) {
		t.Fatalf("%d candidates, want %d", len(cands), len(want))
	}
	for c := range want {
		for j := range want[c] {
			if math.Abs(cands[c][j]-want[c][j]) > 1e-9 {
				t.Fatalf("candidate %d = %v, want %v", c, cands[c], want[c])
			}
		}
	}
}

func TestConsistentCandidatesTieBreak(t *testing.T) {
	// Equal fractions tie-break by target index (footnote 1).
	cands := consistentCandidates([]float64{0.5, 0.5}, 2)
	if cands[0][0] != 1 || cands[0][1] != 0 {
		t.Fatalf("tie not broken by index: %v", cands[0])
	}
}

func TestBalancingCandidates(t *testing.T) {
	cands := balancingCandidates([]float64{0.9, 0.1, 0.5}, 3)
	// k=1: least-loaded target (1) gets 100%.
	if cands[0][1] != 1 {
		t.Fatalf("k=1 candidate = %v", cands[0])
	}
	// k=2: targets 1 and 2 get 50%.
	if cands[1][1] != 0.5 || cands[1][2] != 0.5 || cands[1][0] != 0 {
		t.Fatalf("k=2 candidate = %v", cands[1])
	}
}

func TestRegularizePreservesValidRegular(t *testing.T) {
	inst := layouttest.Instance(4)
	ev := layout.NewEvaluator(inst)
	// An already-regular layout passes through with rows untouched.
	l, err := layout.InitialLayout(inst)
	if err != nil {
		t.Fatal(err)
	}
	reg, err := Regularize(ev, inst, l)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < l.N; i++ {
		for j := 0; j < l.M; j++ {
			if reg.At(i, j) != l.At(i, j) {
				t.Fatalf("regular input modified at (%d,%d)", i, j)
			}
		}
	}
}

func TestRegularizeProducesRegularValid(t *testing.T) {
	inst := layouttest.Instance(4)
	ev := layout.NewEvaluator(inst)
	// Build a deliberately non-regular valid layout.
	l := layout.New(4, 4)
	l.SetRow(0, []float64{0.47, 0.35, 0.18, 0})
	l.SetRow(1, []float64{0, 0.6, 0.4, 0})
	l.SetRow(2, []float64{0.25, 0.25, 0.25, 0.25})
	l.SetRow(3, []float64{0, 0, 0.1, 0.9})
	if err := inst.ValidateLayout(l); err != nil {
		t.Fatal(err)
	}
	reg, err := Regularize(ev, inst, l)
	if err != nil {
		t.Fatal(err)
	}
	if !reg.IsRegular() {
		t.Fatal("not regular")
	}
	if err := inst.ValidateLayout(reg); err != nil {
		t.Fatal(err)
	}
}

func TestRegularizeTightCapacity(t *testing.T) {
	// With barely enough room, regularization must still find valid rows
	// (balancing candidates include spreading across all targets).
	inst := layouttest.Instance(2)
	inst.Targets[0].Capacity = 5 << 30
	inst.Targets[1].Capacity = 5 << 30 // total 10 GB for 8 GB of objects
	ev := layout.NewEvaluator(inst)
	l := layout.New(4, 2)
	l.SetRow(0, []float64{0.6, 0.4})
	l.SetRow(1, []float64{0.3, 0.7})
	l.SetRow(2, []float64{0.5, 0.5})
	l.SetRow(3, []float64{0.2, 0.8})
	if err := inst.ValidateLayout(l); err != nil {
		t.Fatal(err)
	}
	reg, err := Regularize(ev, inst, l)
	if err != nil {
		t.Fatal(err)
	}
	if err := inst.ValidateLayout(reg); err != nil {
		t.Fatal(err)
	}
}

func TestRegularizeFleetScaleBoundedWidths(t *testing.T) {
	if testing.Short() {
		t.Skip("fleet-scale regularization")
	}
	// n*m == 1<<18: exactly the threshold at which the candidate-width cap
	// engages. Below it (every paper-scale problem) the exhaustive
	// all-widths scan still runs, so output there is unchanged.
	n, m := 512, 512
	inst := layouttest.Fleet(n, m)
	for _, tgt := range inst.Targets {
		tgt.Capacity *= 4 // headroom: the test layout is deliberately lopsided
	}
	ev := layout.NewEvaluator(inst)
	l := layout.New(n, m)
	for i := 0; i < n; i++ {
		row := make([]float64, m)
		for k, f := range []float64{0.4, 0.3, 0.2, 0.1} {
			row[(i+k)%m] = f
		}
		l.SetRow(i, row)
	}
	if err := inst.ValidateLayout(l); err != nil {
		t.Fatal(err)
	}
	// The batch load pass must be bit-identical to the per-object path it
	// replaced (sampled: the per-object path is the O(N^2) scan).
	loads := ev.ObjectLoads(l)
	for i := 0; i < n; i += 67 {
		if want := ev.ObjectLoad(l, i); loads[i] != want {
			t.Fatalf("ObjectLoads[%d] = %v, ObjectLoad = %v (not bit-identical)", i, loads[i], want)
		}
	}
	reg, err := Regularize(ev, inst, l)
	if err != nil {
		t.Fatal(err)
	}
	if !reg.IsRegular() {
		t.Fatal("result not regular")
	}
	if err := inst.ValidateLayout(reg); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		width := 0
		for j := 0; j < m; j++ {
			if reg.At(i, j) > layout.Epsilon {
				width++
			}
		}
		if width > 64 {
			t.Fatalf("object %d striped across %d targets; candidate width cap not applied", i, width)
		}
	}
}

func TestRegularizeImpossible(t *testing.T) {
	// Objects bigger than any single target and capacity so tight that
	// no regular candidate fits -> failure, as Sec. 4.3 allows.
	inst := layouttest.Instance(2)
	inst.Objects[0].Size = 7 << 30
	inst.Objects[1].Size = 7 << 30
	inst.Objects[2].Size = 7 << 30
	inst.Objects[3].Size = 7 << 30
	inst.Targets[0].Capacity = 14 << 30
	inst.Targets[1].Capacity = 14 << 30
	if err := inst.Validate(); err != nil {
		t.Fatal(err)
	}
	ev := layout.NewEvaluator(inst)
	// Non-regular valid layout: each target holds exactly 14 GB.
	l := layout.New(4, 2)
	l.SetRow(0, []float64{0.9, 0.1})
	l.SetRow(1, []float64{0.1, 0.9})
	l.SetRow(2, []float64{0.6, 0.4})
	l.SetRow(3, []float64{0.4, 0.6})
	if err := inst.ValidateLayout(l); err != nil {
		t.Fatal(err)
	}
	// Regular candidates per object: (100,0), (0,100) or (50,50). Any
	// 100% placement puts 7 GB on one target; feasibility depends on the
	// order — the point is Regularize either succeeds with a valid
	// regular layout or reports an error, never returns garbage.
	reg, err := Regularize(ev, inst, l)
	if err != nil {
		return // acceptable: paper allows failure under tight space
	}
	if !reg.IsRegular() {
		t.Fatal("claimed success with non-regular layout")
	}
	if err := inst.ValidateLayout(reg); err != nil {
		t.Fatalf("claimed success with invalid layout: %v", err)
	}
}

// Property: regularizing any valid random layout yields a regular valid
// layout (or a clean error under capacity pressure).
func TestRegularizeProperty(t *testing.T) {
	inst := layouttest.Instance(4)
	ev := layout.NewEvaluator(inst)
	f := func(seed uint32) bool {
		l := layout.New(4, 4)
		s := seed
		next := func() float64 {
			s = s*1664525 + 1013904223
			return float64(s%1000) / 1000
		}
		for i := 0; i < 4; i++ {
			row := []float64{next(), next(), next(), next()}
			var sum float64
			for _, v := range row {
				sum += v
			}
			if sum == 0 {
				row[0] = 1
				sum = 1
			}
			for j := range row {
				row[j] /= sum
			}
			l.SetRow(i, row)
		}
		if err := inst.ValidateLayout(l); err != nil {
			return true // capacity-violating random draw; skip
		}
		reg, err := Regularize(ev, inst, l)
		if err != nil {
			return false // plenty of capacity: must succeed
		}
		return reg.IsRegular() && inst.ValidateLayout(reg) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Regularization should not blow up the objective: the paper observes the
// regularized layout is close to the solver's.
func TestRegularizeObjectiveClose(t *testing.T) {
	inst := layouttest.Instance(4)
	adv, err := New(inst, Options{NLP: nlp.Options{Seed: 1}})
	if err != nil {
		t.Fatal(err)
	}
	rec, err := adv.Recommend()
	if err != nil {
		t.Fatal(err)
	}
	if rec.FinalObjective > 1.5*rec.SolverObjective+0.05 {
		t.Fatalf("regularization cost too much: solver %.4f -> regular %.4f",
			rec.SolverObjective, rec.FinalObjective)
	}
}
