// Package core implements the paper's layout advisor — its primary
// contribution. Given a layout problem instance (objects, targets with
// calibrated cost models, and Rome-style workload descriptions), the advisor
// follows the algorithm of paper Fig. 4:
//
//  1. build a valid initial layout with the load-based heuristic (Sec. 4.2),
//  2. run an NLP solver to locally minimize the maximum predicted target
//     utilization (Sec. 4.1),
//  3. optionally regularize the solver's layout so every object is spread
//     evenly over a subset of targets (Sec. 4.3), and
//  4. optionally repeat from additional initial layouts, keeping the best.
package core

import (
	"context"
	"errors"
	"fmt"
	"log/slog"
	"time"

	"dblayout/internal/layout"
	"dblayout/internal/nlp"
)

// Solver selects the optimization strategy standing in for the paper's
// MINOS solver.
type Solver int

// Available solvers.
const (
	// SolverTransfer is the default scalable mass-transfer local search.
	SolverTransfer Solver = iota
	// SolverProjectedGradient is finite-difference projected gradient
	// descent; a cross-check for small instances.
	SolverProjectedGradient
	// SolverAnneal is simulated annealing over transfer moves.
	SolverAnneal
	// SolverPortfolio races the transfer, anneal and (when the instance
	// has no administrative constraints) projected-gradient solvers
	// concurrently from the same initial layout and keeps the best
	// result. Ties on the objective break toward the earlier solver in
	// that fixed order, so the outcome is deterministic.
	SolverPortfolio
	// SolverHierarchical decomposes fleet-scale problems (tens of
	// thousands of objects) along their co-access structure: cluster
	// objects, partition targets among the clusters, solve each
	// subproblem independently with the transfer search, then reconcile
	// globally with a bounded pruned pass. Problems the decomposition
	// cannot handle (administrative constraints, a single cluster, an
	// infeasible target split) fall back to the flat transfer search.
	// See Options.Hierarchical.
	SolverHierarchical
)

// String names the solver.
func (s Solver) String() string {
	switch s {
	case SolverTransfer:
		return "transfer"
	case SolverProjectedGradient:
		return "projected-gradient"
	case SolverAnneal:
		return "anneal"
	case SolverPortfolio:
		return "portfolio"
	case SolverHierarchical:
		return "hierarchical"
	}
	return fmt.Sprintf("solver(%d)", int(s))
}

// Options configures the advisor. The zero value requests the defaults used
// throughout the paper's evaluation: transfer search from the heuristic
// initial layout, with regularization.
type Options struct {
	// Solver selects the optimization strategy.
	Solver Solver
	// NLP tunes the chosen solver.
	NLP nlp.Options
	// Anneal tunes SolverAnneal (ignored otherwise).
	Anneal nlp.AnnealOptions
	// Hierarchical tunes SolverHierarchical (ignored otherwise).
	Hierarchical HierarchicalOptions
	// SkipRegularization leaves the solver's (possibly non-regular)
	// layout as the final recommendation, for layout mechanisms that can
	// implement arbitrary fractions.
	SkipRegularization bool
	// InitialLayouts supplies explicit starting points (e.g. expert
	// guesses, or SEE for the ablation study). When empty, the Sec. 4.2
	// heuristic initial layout is used. With several entries the whole
	// optimize(+regularize) pass runs from each and the best final layout
	// wins — the "repeat?" loop of Fig. 4.
	InitialLayouts []*layout.Layout
	// Rounds is the number of solve->regularize rounds per initial
	// layout: after the first round, the regularized layout is fed back
	// to the solver, which often recovers quality lost to
	// regularization. Zero selects 2. This is the inner "repeat?" arrow
	// of Fig. 4.
	Rounds int
	// SkipPolish disables the regular-to-regular polish pass that runs
	// after regularization (an extension beyond the paper; see
	// PolishRegular). Exposed for ablation.
	SkipPolish bool
	// SolveBudget caps the wall-clock time the advisor spends in solver
	// phases, summed across every multi-start and solve/regularize round.
	// When it runs out mid-solve, the solver stops at its next periodic
	// check, remaining solves are skipped, and the advisor completes with
	// the best layout found so far — marked Degraded with cause
	// ErrBudgetExceeded. Zero means unbounded.
	SolveBudget time.Duration
	// Logger, when non-nil, receives a span per advisor phase
	// (seed -> solve -> regularize -> validate) with durations and
	// objective deltas. Nil disables logging entirely (zero overhead:
	// no handler is ever consulted).
	Logger *slog.Logger
}

// Recommendation is the advisor's output, retaining the intermediate layouts
// the paper's Fig. 13 reports on (initial, solver, regularized).
type Recommendation struct {
	// Initial is the starting layout handed to the solver.
	Initial *layout.Layout
	// Solver is the optimized, possibly non-regular layout.
	Solver *layout.Layout
	// Final is the recommended layout: the regularized solver layout, or
	// the solver layout itself when regularization is skipped.
	Final *layout.Layout

	// InitialObjective, SolverObjective and FinalObjective are the
	// predicted max target utilizations of the respective layouts.
	InitialObjective float64
	SolverObjective  float64
	FinalObjective   float64

	// SolveTime and RegularizeTime break down where the advisor spent
	// its time (paper Fig. 19). RegularizeTime includes PolishTime.
	SolveTime      time.Duration
	RegularizeTime time.Duration
	// InitialTime is the time spent constructing the heuristic initial
	// layout (zero when explicit initial layouts were supplied).
	InitialTime time.Duration
	// PolishTime is the share of RegularizeTime spent in the
	// regular-to-regular polish pass.
	PolishTime time.Duration
	// SolverIters and SolverEvals report solver effort.
	SolverIters, SolverEvals int
	// SolverRestarts counts the multi-start restart rounds the winning
	// solve performed; SolverWorkers is the worker-pool width it used.
	SolverRestarts, SolverWorkers int
	// Trajectory is the winning solver run's bounded objective-sample
	// series, for convergence plots (see nlp.Result.Trajectory).
	Trajectory []nlp.TrajPoint

	// Degraded reports that the advisor could not run the full pipeline at
	// full fidelity — a solve was truncated by the budget or a
	// cancellation, or a phase failed and a fallback layout stands in. The
	// recommendation is still a valid layout for the instance.
	Degraded bool
	// Degradation holds the structured reason when Degraded is set: the
	// phase that fell short, the fallback used, and the classified cause.
	Degradation *Degradation
}

// Advisor recommends optimized layouts for one problem instance.
type Advisor struct {
	inst *layout.Instance
	ev   *layout.Evaluator
	opt  Options
}

// New validates the instance and constructs an advisor.
func New(inst *layout.Instance, opt Options) (*Advisor, error) {
	if err := inst.Validate(); err != nil {
		return nil, err
	}
	return &Advisor{inst: inst, ev: layout.NewEvaluator(inst), opt: opt}, nil
}

// Evaluator exposes the advisor's utilization model, for reporting.
func (a *Advisor) Evaluator() *layout.Evaluator { return a.ev }

// Instance returns the problem instance.
func (a *Advisor) Instance() *layout.Instance { return a.inst }

// log emits a phase span when a logger is configured. The guard keeps the
// disabled path free of any slog machinery.
func (a *Advisor) log(phase string, args ...interface{}) {
	if a.opt.Logger == nil {
		return
	}
	a.opt.Logger.Info("advisor phase", append([]interface{}{"phase", phase}, args...)...)
}

// Recommend runs the full pipeline of Fig. 4 and returns the recommendation.
// It is RecommendContext with a background context.
func (a *Advisor) Recommend() (*Recommendation, error) {
	return a.RecommendContext(context.Background())
}

// RecommendContext runs the full pipeline of Fig. 4 under ctx.
//
// Cancellation is honoured promptly: the solvers poll the context every few
// milliseconds. An already-cancelled context returns (nil, ctx.Err()) without
// solving; a cancellation mid-run returns the best valid layout found so far
// (marked Degraded) *alongside* ctx.Err(), so callers that can use a partial
// answer have one and callers that cannot see the error.
//
// All other failures degrade rather than fail whenever a valid layout can
// still be produced: when Options.SolveBudget runs out, remaining solver work
// is skipped and the best layout so far is returned with a nil error and
// Degraded set (cause ErrBudgetExceeded); when a cost model panics or
// returns a non-finite cost, the advisor falls back to the heuristic initial
// layout — and, if even constructing that fails, to SEE — with cause
// ErrModelFailure. Hard errors (nil, err) are reserved for invalid inputs,
// solver misconfiguration, and genuinely infeasible problems (ErrInfeasible).
func (a *Advisor) RecommendContext(ctx context.Context) (*Recommendation, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	r := a.newRun(ctx)

	inits := a.opt.InitialLayouts
	var seedTime time.Duration
	if len(inits) == 0 {
		start := time.Now()
		init, err := layout.InitialLayout(a.inst)
		if err != nil {
			// The greedy heuristic can fail on instances that are
			// feasible but tight; SEE (spread everything everywhere)
			// is the ladder's last rung when it happens to be valid.
			see := layout.SEE(a.inst.N(), a.inst.M())
			if a.inst.ValidateLayout(see) != nil {
				return nil, fmt.Errorf("core: initial layout: %w", err)
			}
			r.note("seed", "see", err)
			init = see
		}
		seedTime = time.Since(start)
		if a.opt.Logger != nil {
			obj, _ := a.safeObjective(init)
			a.log("seed", "duration", seedTime, "objective", obj)
		}
		inits = []*layout.Layout{init}
	} else if a.opt.Logger != nil {
		// Explicit starting points (multi-start): report each one.
		for k, init := range inits {
			obj, _ := a.safeObjective(init)
			a.log("seed", "start", k, "provided", true, "objective", obj)
		}
	}

	var best *Recommendation
	var ctxErr error
	for k, init := range inits {
		if err := a.inst.ValidateLayout(init); err != nil {
			return nil, fmt.Errorf("core: initial layout %d invalid: %w", k, err)
		}
		rec, err := a.recommendFrom(r, init, k)
		if rec != nil {
			rec.InitialTime = seedTime
			best = better(best, rec)
		}
		if err != nil {
			if rec == nil || isContextErr(err) {
				// Cancellation (or a hard error before any layout
				// was produced): stop the multi-start immediately.
				ctxErr = err
				break
			}
			return nil, err
		}
	}
	if best == nil {
		if ctxErr != nil {
			return nil, ctxErr
		}
		return nil, fmt.Errorf("core: no recommendation produced")
	}
	if r.degr != nil {
		best.Degraded = true
		best.Degradation = r.degr
	}

	// Final validation: the recommendation must be a valid layout for the
	// instance's capacities and constraints, whatever path produced it.
	start := time.Now()
	if err := a.inst.ValidateLayout(best.Final); err != nil {
		return nil, fmt.Errorf("core: recommended layout invalid: %w", err)
	}
	a.log("validate", "duration", time.Since(start),
		"objective", best.FinalObjective,
		"delta", best.InitialObjective-best.FinalObjective)
	return best, ctxErr
}

// isContextErr reports whether err stems from context cancellation.
func isContextErr(err error) bool {
	return errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)
}

// recommendFrom runs the solve->regularize rounds from starting layout
// number `startIdx`. A non-nil error is a cancellation (returned with the
// best-so-far recommendation) or a hard configuration error (returned with a
// nil one).
func (a *Advisor) recommendFrom(r *run, init *layout.Layout, startIdx int) (*Recommendation, error) {
	rounds := a.opt.Rounds
	if rounds <= 0 {
		rounds = 2
	}
	if a.opt.SkipRegularization {
		rounds = 1 // nothing to feed back without the regular layout
	}
	var best *Recommendation
	start := init
	for round := 0; round < rounds; round++ {
		rec, err := a.oneRound(r, start, startIdx, round)
		best = better(best, rec)
		if err != nil {
			return best, err
		}
		if rec == nil || rec.Final == nil || r.exhausted() {
			break
		}
		start = rec.Final
	}
	return best, nil
}

// oneRound performs one solve(+regularize) pass. Cost-model failures and
// budget truncation are absorbed into the recommendation (fallback layouts,
// degradation notes on r); the returned error is either a context error —
// accompanied by a best-so-far recommendation — or a hard configuration
// error with a nil recommendation.
func (a *Advisor) oneRound(r *run, init *layout.Layout, startIdx, round int) (*Recommendation, error) {
	rec := &Recommendation{Initial: init.Clone()}
	rec.InitialObjective, _ = a.safeObjective(init)

	start := time.Now()
	res, err := a.safeSolve(r, init, startIdx, round)
	rec.SolveTime = time.Since(start)
	if err != nil {
		if !errors.Is(err, ErrModelFailure) {
			return nil, err // solver misconfiguration: a hard error
		}
		// The cost model failed inside the solver. The initial layout
		// is valid (validated on entry), so it stands in for the
		// solve's output — the ladder's "heuristic initial layout"
		// rung.
		r.note("solve", "initial", err)
		rec.Final = init.Clone()
		rec.FinalObjective = rec.InitialObjective
		return rec, nil
	}
	rec.Solver = res.Layout
	rec.SolverObjective = res.Objective
	rec.SolverIters = res.Iters
	rec.SolverEvals = res.Evals
	rec.SolverRestarts = res.Restarts
	rec.SolverWorkers = res.Workers
	rec.Trajectory = res.Trajectory
	a.log("solve", "solver", a.opt.Solver.String(), "duration", rec.SolveTime,
		"objective", rec.SolverObjective,
		"delta", rec.InitialObjective-rec.SolverObjective,
		"iters", res.Iters, "evals", res.Evals)

	if res.Stop != nil {
		if isContextErr(res.Stop) {
			// Cancelled mid-solve: the solver's best-so-far layout
			// is valid by construction; skip regularization and
			// unwind with the context error.
			r.note("solve", "best-so-far", res.Stop)
			rec.Final = res.Layout
			rec.FinalObjective = res.Objective
			return rec, res.Stop
		}
		// Budget exhausted: keep the best-so-far layout and finish the
		// round (regularization is cheap and restores implementability).
		r.note("solve", "best-so-far", res.Stop)
	}

	if a.opt.SkipRegularization {
		rec.Final = rec.Solver
		rec.FinalObjective = rec.SolverObjective
		return rec, nil
	}

	start = time.Now()
	reg, err := a.safeRegularize(rec, res.Layout)
	rec.RegularizeTime = time.Since(start)
	if err != nil {
		// Regularization failed (or the model failed inside it). The
		// solver layout may be non-regular, so fall back to the
		// initial layout, which is both valid and as regular as the
		// caller's starting point.
		r.note("regularize", "initial", err)
		rec.Final = init.Clone()
		rec.FinalObjective = rec.InitialObjective
		return rec, nil
	}
	rec.Final = reg
	if rec.FinalObjective, err = a.safeObjective(reg); err != nil {
		r.note("regularize", "initial", err)
		rec.Final = init.Clone()
		rec.FinalObjective = rec.InitialObjective
		return rec, nil
	}
	a.log("regularize", "duration", rec.RegularizeTime, "polish", rec.PolishTime,
		"objective", rec.FinalObjective,
		"delta", rec.SolverObjective-rec.FinalObjective)
	return rec, nil
}

// safeSolve dispatches to the configured solver with the remaining solve
// budget, converting cost-model panics into ErrModelFailure-classified
// errors (including panics raised on solver worker goroutines, which the
// nlp worker pool re-raises on this goroutine). Solver misconfiguration
// (unknown solver, invalid annealing schedule, unsupported constraints)
// comes back as ordinary errors.
func (a *Advisor) safeSolve(r *run, init *layout.Layout, startIdx, round int) (res nlp.Result, err error) {
	defer func() {
		if p := recover(); p != nil {
			err = layout.AsModelFailure(p)
		}
	}()
	nopt := a.opt.NLP
	// Each (initial layout, round) solve gets its own seed stream; the
	// solvers further derive per-restart streams below it, so no two
	// perturbation sequences in one recommendation can collide.
	nopt.Seed = nlp.SubSeed(a.opt.NLP.Seed, nlp.StreamAdvisor, int64(startIdx), int64(round))
	if !r.deadline.IsZero() {
		left := time.Until(r.deadline)
		if left <= 0 {
			// Budget already gone: skip the solve entirely and hand
			// back the starting layout as the "best so far".
			obj, oerr := a.safeObjective(init)
			if oerr != nil {
				return nlp.Result{}, oerr
			}
			return nlp.Result{Layout: init.Clone(), Objective: obj, Stop: nlp.ErrBudgetExceeded}, nil
		}
		nopt.Budget = left
	}
	switch a.opt.Solver {
	case SolverTransfer:
		res = nlp.TransferSearch(r.ctx, a.ev, a.inst, init, nopt)
	case SolverProjectedGradient:
		if a.inst.Constraints != nil {
			return res, fmt.Errorf("core: the projected-gradient solver does not support administrative constraints; use the transfer solver")
		}
		res = nlp.ProjectedGradient(r.ctx, a.ev, a.inst, init, nopt)
	case SolverAnneal:
		res, err = nlp.Anneal(r.ctx, a.ev, a.inst, init, a.annealOptions(nopt))
		if err != nil {
			return res, fmt.Errorf("core: anneal: %w", err)
		}
	case SolverPortfolio:
		res, err = a.portfolioSolve(r, init, nopt)
		if err != nil {
			return res, err
		}
	case SolverHierarchical:
		res, err = a.hierarchicalSolve(r, init, nopt)
		if err != nil {
			return res, err
		}
	default:
		return res, fmt.Errorf("core: unknown solver %v", a.opt.Solver)
	}
	return res, nil
}

// annealOptions merges the advisor's anneal tuning with the per-solve nlp
// options. A custom schedule (Anneal.MaxIters set) keeps its own iteration
// and restart tuning but still inherits the derived seed, remaining budget,
// worker width, and trace hook from the solve at hand.
func (a *Advisor) annealOptions(nopt nlp.Options) nlp.AnnealOptions {
	aopt := a.opt.Anneal
	if aopt.MaxIters == 0 {
		aopt.Options = nopt
		return aopt
	}
	aopt.Seed = nopt.Seed
	aopt.Budget = nopt.Budget
	aopt.Workers = nopt.Workers
	aopt.Trace = nopt.Trace
	return aopt
}

// safeRegularize regularizes (and optionally polishes) the solver layout,
// converting cost-model panics into ErrModelFailure-classified errors.
func (a *Advisor) safeRegularize(rec *Recommendation, solved *layout.Layout) (reg *layout.Layout, err error) {
	defer func() {
		if p := recover(); p != nil {
			reg, err = nil, layout.AsModelFailure(p)
		}
	}()
	reg, err = Regularize(a.ev, a.inst, solved)
	if err != nil {
		return nil, fmt.Errorf("core: regularization: %w", err)
	}
	if !a.opt.SkipPolish {
		polishStart := time.Now()
		reg = PolishRegular(a.ev, a.inst, reg)
		rec.PolishTime = time.Since(polishStart)
	}
	return reg, nil
}
