// Package core implements the paper's layout advisor — its primary
// contribution. Given a layout problem instance (objects, targets with
// calibrated cost models, and Rome-style workload descriptions), the advisor
// follows the algorithm of paper Fig. 4:
//
//  1. build a valid initial layout with the load-based heuristic (Sec. 4.2),
//  2. run an NLP solver to locally minimize the maximum predicted target
//     utilization (Sec. 4.1),
//  3. optionally regularize the solver's layout so every object is spread
//     evenly over a subset of targets (Sec. 4.3), and
//  4. optionally repeat from additional initial layouts, keeping the best.
package core

import (
	"fmt"
	"log/slog"
	"time"

	"dblayout/internal/layout"
	"dblayout/internal/nlp"
)

// Solver selects the optimization strategy standing in for the paper's
// MINOS solver.
type Solver int

// Available solvers.
const (
	// SolverTransfer is the default scalable mass-transfer local search.
	SolverTransfer Solver = iota
	// SolverProjectedGradient is finite-difference projected gradient
	// descent; a cross-check for small instances.
	SolverProjectedGradient
	// SolverAnneal is simulated annealing over transfer moves.
	SolverAnneal
)

// String names the solver.
func (s Solver) String() string {
	switch s {
	case SolverTransfer:
		return "transfer"
	case SolverProjectedGradient:
		return "projected-gradient"
	case SolverAnneal:
		return "anneal"
	}
	return fmt.Sprintf("solver(%d)", int(s))
}

// Options configures the advisor. The zero value requests the defaults used
// throughout the paper's evaluation: transfer search from the heuristic
// initial layout, with regularization.
type Options struct {
	// Solver selects the optimization strategy.
	Solver Solver
	// NLP tunes the chosen solver.
	NLP nlp.Options
	// Anneal tunes SolverAnneal (ignored otherwise).
	Anneal nlp.AnnealOptions
	// SkipRegularization leaves the solver's (possibly non-regular)
	// layout as the final recommendation, for layout mechanisms that can
	// implement arbitrary fractions.
	SkipRegularization bool
	// InitialLayouts supplies explicit starting points (e.g. expert
	// guesses, or SEE for the ablation study). When empty, the Sec. 4.2
	// heuristic initial layout is used. With several entries the whole
	// optimize(+regularize) pass runs from each and the best final layout
	// wins — the "repeat?" loop of Fig. 4.
	InitialLayouts []*layout.Layout
	// Rounds is the number of solve->regularize rounds per initial
	// layout: after the first round, the regularized layout is fed back
	// to the solver, which often recovers quality lost to
	// regularization. Zero selects 2. This is the inner "repeat?" arrow
	// of Fig. 4.
	Rounds int
	// SkipPolish disables the regular-to-regular polish pass that runs
	// after regularization (an extension beyond the paper; see
	// PolishRegular). Exposed for ablation.
	SkipPolish bool
	// Logger, when non-nil, receives a span per advisor phase
	// (seed -> solve -> regularize -> validate) with durations and
	// objective deltas. Nil disables logging entirely (zero overhead:
	// no handler is ever consulted).
	Logger *slog.Logger
}

// Recommendation is the advisor's output, retaining the intermediate layouts
// the paper's Fig. 13 reports on (initial, solver, regularized).
type Recommendation struct {
	// Initial is the starting layout handed to the solver.
	Initial *layout.Layout
	// Solver is the optimized, possibly non-regular layout.
	Solver *layout.Layout
	// Final is the recommended layout: the regularized solver layout, or
	// the solver layout itself when regularization is skipped.
	Final *layout.Layout

	// InitialObjective, SolverObjective and FinalObjective are the
	// predicted max target utilizations of the respective layouts.
	InitialObjective float64
	SolverObjective  float64
	FinalObjective   float64

	// SolveTime and RegularizeTime break down where the advisor spent
	// its time (paper Fig. 19). RegularizeTime includes PolishTime.
	SolveTime      time.Duration
	RegularizeTime time.Duration
	// InitialTime is the time spent constructing the heuristic initial
	// layout (zero when explicit initial layouts were supplied).
	InitialTime time.Duration
	// PolishTime is the share of RegularizeTime spent in the
	// regular-to-regular polish pass.
	PolishTime time.Duration
	// SolverIters and SolverEvals report solver effort.
	SolverIters, SolverEvals int
	// Trajectory is the winning solver run's bounded objective-sample
	// series, for convergence plots (see nlp.Result.Trajectory).
	Trajectory []nlp.TrajPoint
}

// Advisor recommends optimized layouts for one problem instance.
type Advisor struct {
	inst *layout.Instance
	ev   *layout.Evaluator
	opt  Options
}

// New validates the instance and constructs an advisor.
func New(inst *layout.Instance, opt Options) (*Advisor, error) {
	if err := inst.Validate(); err != nil {
		return nil, err
	}
	return &Advisor{inst: inst, ev: layout.NewEvaluator(inst), opt: opt}, nil
}

// Evaluator exposes the advisor's utilization model, for reporting.
func (a *Advisor) Evaluator() *layout.Evaluator { return a.ev }

// Instance returns the problem instance.
func (a *Advisor) Instance() *layout.Instance { return a.inst }

// log emits a phase span when a logger is configured. The guard keeps the
// disabled path free of any slog machinery.
func (a *Advisor) log(phase string, args ...interface{}) {
	if a.opt.Logger == nil {
		return
	}
	a.opt.Logger.Info("advisor phase", append([]interface{}{"phase", phase}, args...)...)
}

// Recommend runs the full pipeline of Fig. 4 and returns the recommendation.
func (a *Advisor) Recommend() (*Recommendation, error) {
	inits := a.opt.InitialLayouts
	var seedTime time.Duration
	if len(inits) == 0 {
		start := time.Now()
		init, err := layout.InitialLayout(a.inst)
		if err != nil {
			return nil, fmt.Errorf("core: initial layout: %w", err)
		}
		seedTime = time.Since(start)
		a.log("seed", "duration", seedTime, "objective", a.ev.MaxUtilization(init))
		inits = []*layout.Layout{init}
	} else if a.opt.Logger != nil {
		// Explicit starting points (multi-start): report each one.
		for k, init := range inits {
			a.log("seed", "start", k, "provided", true,
				"objective", a.ev.MaxUtilization(init))
		}
	}

	var best *Recommendation
	for k, init := range inits {
		if err := a.inst.ValidateLayout(init); err != nil {
			return nil, fmt.Errorf("core: initial layout %d invalid: %w", k, err)
		}
		rec, err := a.recommendFrom(init, int64(k))
		if err != nil {
			return nil, err
		}
		rec.InitialTime = seedTime
		if best == nil || rec.FinalObjective < best.FinalObjective {
			best = rec
		}
	}

	// Final validation: the recommendation must be a valid layout for the
	// instance's capacities and constraints, whatever path produced it.
	start := time.Now()
	if err := a.inst.ValidateLayout(best.Final); err != nil {
		return nil, fmt.Errorf("core: recommended layout invalid: %w", err)
	}
	a.log("validate", "duration", time.Since(start),
		"objective", best.FinalObjective,
		"delta", best.InitialObjective-best.FinalObjective)
	return best, nil
}

func (a *Advisor) recommendFrom(init *layout.Layout, seedShift int64) (*Recommendation, error) {
	rounds := a.opt.Rounds
	if rounds <= 0 {
		rounds = 2
	}
	if a.opt.SkipRegularization {
		rounds = 1 // nothing to feed back without the regular layout
	}
	var best *Recommendation
	start := init
	for round := 0; round < rounds; round++ {
		rec, err := a.oneRound(start, seedShift+int64(round)*101)
		if err != nil {
			return nil, err
		}
		if best == nil || rec.FinalObjective < best.FinalObjective {
			best = rec
		}
		start = rec.Final
	}
	return best, nil
}

func (a *Advisor) oneRound(init *layout.Layout, seedShift int64) (*Recommendation, error) {
	rec := &Recommendation{
		Initial:          init.Clone(),
		InitialObjective: a.ev.MaxUtilization(init),
	}

	start := time.Now()
	var res nlp.Result
	switch a.opt.Solver {
	case SolverTransfer:
		opt := a.opt.NLP
		opt.Seed += seedShift
		res = nlp.TransferSearch(a.ev, a.inst, init, opt)
	case SolverProjectedGradient:
		if a.inst.Constraints != nil {
			return nil, fmt.Errorf("core: the projected-gradient solver does not support administrative constraints; use the transfer solver")
		}
		res = nlp.ProjectedGradient(a.ev, a.inst, init, a.opt.NLP)
	case SolverAnneal:
		opt := a.opt.Anneal
		if opt.MaxIters == 0 {
			opt.Options = a.opt.NLP
		}
		opt.Seed += seedShift
		var err error
		res, err = nlp.Anneal(a.ev, a.inst, init, opt)
		if err != nil {
			return nil, fmt.Errorf("core: anneal: %w", err)
		}
	default:
		return nil, fmt.Errorf("core: unknown solver %v", a.opt.Solver)
	}
	rec.SolveTime = time.Since(start)
	rec.Solver = res.Layout
	rec.SolverObjective = res.Objective
	rec.SolverIters = res.Iters
	rec.SolverEvals = res.Evals
	rec.Trajectory = res.Trajectory
	a.log("solve", "solver", a.opt.Solver.String(), "duration", rec.SolveTime,
		"objective", rec.SolverObjective,
		"delta", rec.InitialObjective-rec.SolverObjective,
		"iters", res.Iters, "evals", res.Evals)

	if a.opt.SkipRegularization {
		rec.Final = rec.Solver
		rec.FinalObjective = rec.SolverObjective
		return rec, nil
	}

	start = time.Now()
	reg, err := Regularize(a.ev, a.inst, rec.Solver)
	if err != nil {
		rec.RegularizeTime = time.Since(start)
		return nil, fmt.Errorf("core: regularization: %w", err)
	}
	if !a.opt.SkipPolish {
		polishStart := time.Now()
		reg = PolishRegular(a.ev, a.inst, reg)
		rec.PolishTime = time.Since(polishStart)
	}
	rec.RegularizeTime = time.Since(start)
	rec.Final = reg
	rec.FinalObjective = a.ev.MaxUtilization(reg)
	a.log("regularize", "duration", rec.RegularizeTime, "polish", rec.PolishTime,
		"objective", rec.FinalObjective,
		"delta", rec.SolverObjective-rec.FinalObjective)
	return rec, nil
}
