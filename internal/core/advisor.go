// Package core implements the paper's layout advisor — its primary
// contribution. Given a layout problem instance (objects, targets with
// calibrated cost models, and Rome-style workload descriptions), the advisor
// follows the algorithm of paper Fig. 4:
//
//  1. build a valid initial layout with the load-based heuristic (Sec. 4.2),
//  2. run an NLP solver to locally minimize the maximum predicted target
//     utilization (Sec. 4.1),
//  3. optionally regularize the solver's layout so every object is spread
//     evenly over a subset of targets (Sec. 4.3), and
//  4. optionally repeat from additional initial layouts, keeping the best.
package core

import (
	"fmt"
	"time"

	"dblayout/internal/layout"
	"dblayout/internal/nlp"
)

// Solver selects the optimization strategy standing in for the paper's
// MINOS solver.
type Solver int

// Available solvers.
const (
	// SolverTransfer is the default scalable mass-transfer local search.
	SolverTransfer Solver = iota
	// SolverProjectedGradient is finite-difference projected gradient
	// descent; a cross-check for small instances.
	SolverProjectedGradient
	// SolverAnneal is simulated annealing over transfer moves.
	SolverAnneal
)

// String names the solver.
func (s Solver) String() string {
	switch s {
	case SolverTransfer:
		return "transfer"
	case SolverProjectedGradient:
		return "projected-gradient"
	case SolverAnneal:
		return "anneal"
	}
	return fmt.Sprintf("solver(%d)", int(s))
}

// Options configures the advisor. The zero value requests the defaults used
// throughout the paper's evaluation: transfer search from the heuristic
// initial layout, with regularization.
type Options struct {
	// Solver selects the optimization strategy.
	Solver Solver
	// NLP tunes the chosen solver.
	NLP nlp.Options
	// Anneal tunes SolverAnneal (ignored otherwise).
	Anneal nlp.AnnealOptions
	// SkipRegularization leaves the solver's (possibly non-regular)
	// layout as the final recommendation, for layout mechanisms that can
	// implement arbitrary fractions.
	SkipRegularization bool
	// InitialLayouts supplies explicit starting points (e.g. expert
	// guesses, or SEE for the ablation study). When empty, the Sec. 4.2
	// heuristic initial layout is used. With several entries the whole
	// optimize(+regularize) pass runs from each and the best final layout
	// wins — the "repeat?" loop of Fig. 4.
	InitialLayouts []*layout.Layout
	// Rounds is the number of solve->regularize rounds per initial
	// layout: after the first round, the regularized layout is fed back
	// to the solver, which often recovers quality lost to
	// regularization. Zero selects 2. This is the inner "repeat?" arrow
	// of Fig. 4.
	Rounds int
	// SkipPolish disables the regular-to-regular polish pass that runs
	// after regularization (an extension beyond the paper; see
	// PolishRegular). Exposed for ablation.
	SkipPolish bool
}

// Recommendation is the advisor's output, retaining the intermediate layouts
// the paper's Fig. 13 reports on (initial, solver, regularized).
type Recommendation struct {
	// Initial is the starting layout handed to the solver.
	Initial *layout.Layout
	// Solver is the optimized, possibly non-regular layout.
	Solver *layout.Layout
	// Final is the recommended layout: the regularized solver layout, or
	// the solver layout itself when regularization is skipped.
	Final *layout.Layout

	// InitialObjective, SolverObjective and FinalObjective are the
	// predicted max target utilizations of the respective layouts.
	InitialObjective float64
	SolverObjective  float64
	FinalObjective   float64

	// SolveTime and RegularizeTime break down where the advisor spent
	// its time (paper Fig. 19).
	SolveTime      time.Duration
	RegularizeTime time.Duration
	// SolverIters and SolverEvals report solver effort.
	SolverIters, SolverEvals int
}

// Advisor recommends optimized layouts for one problem instance.
type Advisor struct {
	inst *layout.Instance
	ev   *layout.Evaluator
	opt  Options
}

// New validates the instance and constructs an advisor.
func New(inst *layout.Instance, opt Options) (*Advisor, error) {
	if err := inst.Validate(); err != nil {
		return nil, err
	}
	return &Advisor{inst: inst, ev: layout.NewEvaluator(inst), opt: opt}, nil
}

// Evaluator exposes the advisor's utilization model, for reporting.
func (a *Advisor) Evaluator() *layout.Evaluator { return a.ev }

// Instance returns the problem instance.
func (a *Advisor) Instance() *layout.Instance { return a.inst }

// Recommend runs the full pipeline of Fig. 4 and returns the recommendation.
func (a *Advisor) Recommend() (*Recommendation, error) {
	inits := a.opt.InitialLayouts
	if len(inits) == 0 {
		init, err := layout.InitialLayout(a.inst)
		if err != nil {
			return nil, fmt.Errorf("core: initial layout: %w", err)
		}
		inits = []*layout.Layout{init}
	}

	var best *Recommendation
	for k, init := range inits {
		if err := a.inst.ValidateLayout(init); err != nil {
			return nil, fmt.Errorf("core: initial layout %d invalid: %w", k, err)
		}
		rec, err := a.recommendFrom(init, int64(k))
		if err != nil {
			return nil, err
		}
		if best == nil || rec.FinalObjective < best.FinalObjective {
			best = rec
		}
	}
	return best, nil
}

func (a *Advisor) recommendFrom(init *layout.Layout, seedShift int64) (*Recommendation, error) {
	rounds := a.opt.Rounds
	if rounds <= 0 {
		rounds = 2
	}
	if a.opt.SkipRegularization {
		rounds = 1 // nothing to feed back without the regular layout
	}
	var best *Recommendation
	start := init
	for round := 0; round < rounds; round++ {
		rec, err := a.oneRound(start, seedShift+int64(round)*101)
		if err != nil {
			return nil, err
		}
		if best == nil || rec.FinalObjective < best.FinalObjective {
			best = rec
		}
		start = rec.Final
	}
	return best, nil
}

func (a *Advisor) oneRound(init *layout.Layout, seedShift int64) (*Recommendation, error) {
	rec := &Recommendation{
		Initial:          init.Clone(),
		InitialObjective: a.ev.MaxUtilization(init),
	}

	start := time.Now()
	var res nlp.Result
	switch a.opt.Solver {
	case SolverTransfer:
		opt := a.opt.NLP
		opt.Seed += seedShift
		res = nlp.TransferSearch(a.ev, a.inst, init, opt)
	case SolverProjectedGradient:
		if a.inst.Constraints != nil {
			return nil, fmt.Errorf("core: the projected-gradient solver does not support administrative constraints; use the transfer solver")
		}
		res = nlp.ProjectedGradient(a.ev, a.inst, init, a.opt.NLP)
	case SolverAnneal:
		opt := a.opt.Anneal
		if opt.MaxIters == 0 {
			opt.Options = a.opt.NLP
		}
		opt.Seed += seedShift
		res = nlp.Anneal(a.ev, a.inst, init, opt)
	default:
		return nil, fmt.Errorf("core: unknown solver %v", a.opt.Solver)
	}
	rec.SolveTime = time.Since(start)
	rec.Solver = res.Layout
	rec.SolverObjective = res.Objective
	rec.SolverIters = res.Iters
	rec.SolverEvals = res.Evals

	if a.opt.SkipRegularization {
		rec.Final = rec.Solver
		rec.FinalObjective = rec.SolverObjective
		return rec, nil
	}

	start = time.Now()
	reg, err := Regularize(a.ev, a.inst, rec.Solver)
	if err != nil {
		rec.RegularizeTime = time.Since(start)
		return nil, fmt.Errorf("core: regularization: %w", err)
	}
	if !a.opt.SkipPolish {
		reg = PolishRegular(a.ev, a.inst, reg)
	}
	rec.RegularizeTime = time.Since(start)
	rec.Final = reg
	rec.FinalObjective = a.ev.MaxUtilization(reg)
	return rec, nil
}
