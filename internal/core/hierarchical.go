package core

import (
	"sync"
	"sync/atomic"
	"time"

	"dblayout/internal/autoadmin"
	"dblayout/internal/layout"
	"dblayout/internal/nlp"
	"dblayout/internal/rome"
)

// HierarchicalOptions tunes SolverHierarchical.
type HierarchicalOptions struct {
	// MaxClusterObjects caps the intended subproblem size: the solver
	// asks for ceil(N / MaxClusterObjects) co-access clusters. Zero
	// selects 256 — large enough that the paper-scale problems (N<=160)
	// collapse to a single cluster and fall back to the flat solver.
	MaxClusterObjects int
	// ReconcileIters bounds the global transfer-search pass that runs on
	// the merged per-cluster layouts (restarts disabled, candidate
	// pruning engaged by the problem size). Zero selects 256.
	ReconcileIters int
}

func (o HierarchicalOptions) withDefaults() HierarchicalOptions {
	if o.MaxClusterObjects <= 0 {
		o.MaxClusterObjects = 256
	}
	if o.ReconcileIters <= 0 {
		o.ReconcileIters = 256
	}
	return o
}

// subProblem is one cluster's slice of the global instance: objs and tgts
// map local indices back to global object and target ids (both ascending).
type subProblem struct {
	objs []int
	tgts []int
	inst *layout.Instance
}

// hierarchicalSolve decomposes a fleet-scale problem along its co-access
// structure and solves the pieces independently:
//
//  1. cluster objects with autoadmin.CoAccessClusters (edge weight =
//     temporal overlap x the smaller of the two request rates), asking for
//     ceil(N / MaxClusterObjects) clusters;
//  2. partition the targets among the clusters in proportion to byte
//     demand;
//  3. build one sub-instance per cluster — cross-cluster overlaps are
//     dropped, which is exactly the approximation the clustering minimizes
//     — and solve each with TransferSearch from its own heuristic initial
//     layout on a pool of Options.Workers goroutines;
//  4. merge the per-cluster layouts and run a bounded global
//     reconciliation pass (ReconcileIters, no restarts) that repairs
//     cross-cluster imbalance with the pruned candidate scan.
//
// Every sub-solve runs with Workers=1 on a seed derived from
// (Seed, StreamHierarchy, cluster), and the merge visits clusters in a
// fixed order, so the result is bit-identical at any worker count. The
// caller's initial layout only feeds the flat fallback, which handles
// problems the decomposition does not: administrative constraints, a
// single cluster, or a target split with insufficient capacity.
func (a *Advisor) hierarchicalSolve(r *run, init *layout.Layout, nopt nlp.Options) (nlp.Result, error) {
	start := time.Now()
	h := a.opt.Hierarchical.withDefaults()
	n, m := a.inst.N(), a.inst.M()
	k := (n + h.MaxClusterObjects - 1) / h.MaxClusterObjects

	flat := func() (nlp.Result, error) {
		return nlp.TransferSearch(r.ctx, a.ev, a.inst, init, nopt), nil
	}
	if a.inst.Constraints != nil || k <= 1 || m < 2*k {
		return flat()
	}

	clusters := a.coAccessClusters(k)
	if len(clusters) <= 1 {
		return flat()
	}
	subs, ok := a.buildSubProblems(clusters)
	if !ok {
		return flat()
	}

	results := make([]nlp.Result, len(subs))
	errs := make([]error, len(subs))
	if !a.solveSubProblems(r, subs, results, errs, nopt) {
		return flat() // a sub-solve failed (e.g. infeasible initial layout)
	}

	merged := layout.New(n, m)
	for c, sub := range subs {
		sl := results[c].Layout
		for li, gi := range sub.objs {
			for _, lj := range sl.Targets(li) {
				merged.Set(gi, sub.tgts[lj], sl.At(li, lj))
			}
		}
	}

	ropt := nopt
	ropt.Restarts = nlp.NoRestarts
	ropt.MaxIters = h.ReconcileIters
	ropt.Seed = nlp.SubSeed(nopt.Seed, nlp.StreamHierarchy, -1)
	res := nlp.TransferSearch(r.ctx, a.ev, a.inst, merged, ropt)

	for c := range results {
		res.Iters += results[c].Iters
		res.Evals += results[c].Evals
		res.Restarts += results[c].Restarts
		if res.Stop == nil {
			res.Stop = results[c].Stop
		}
	}
	res.Elapsed = time.Since(start)
	return res, nil
}

// coAccessClusters groups the instance's objects by co-access affinity and
// returns the non-empty clusters, each an ascending list of object ids, in
// cluster-id order.
func (a *Advisor) coAccessClusters(k int) [][]int {
	set := a.inst.Workloads
	n := set.Len()
	weight := make([]float64, n)
	for i, w := range set.Workloads {
		weight[i] = w.TotalRate()
	}
	assign := autoadmin.CoAccessClusters(n, k, weight,
		func(i int, f func(k int, w float64)) {
			wi := weight[i]
			set.ForEachOverlap(i, func(j int, v float64) {
				wj := weight[j]
				if wj < wi {
					f(j, v*wj)
				} else {
					f(j, v*wi)
				}
			})
		}, 0)
	clusters := make([][]int, k)
	for i, c := range assign {
		clusters[c] = append(clusters[c], i)
	}
	out := clusters[:0]
	for _, c := range clusters {
		if len(c) > 0 {
			out = append(out, c)
		}
	}
	return out
}

// buildSubProblems partitions the targets among the clusters by byte demand
// and materializes one sub-instance per cluster. It reports false when the
// split is infeasible (some cluster's targets cannot hold its objects), in
// which case the caller falls back to the flat solver.
func (a *Advisor) buildSubProblems(clusters [][]int) ([]subProblem, bool) {
	inst := a.inst
	m := inst.M()

	// Greedy proportional target split: each target, in ascending id
	// order, goes to the cluster with the largest remaining capacity
	// deficit (demand x 1.25 slack, ties toward the lower cluster id).
	demand := make([]float64, len(clusters))
	for c, objs := range clusters {
		for _, i := range objs {
			demand[c] += float64(inst.Objects[i].Size)
		}
	}
	got := make([]float64, len(clusters))
	tgts := make([][]int, len(clusters))
	for j := 0; j < m; j++ {
		best, bestDef := -1, 0.0
		for c := range clusters {
			def := demand[c]*1.25 - got[c]
			if best < 0 || def > bestDef {
				best, bestDef = c, def
			}
		}
		tgts[best] = append(tgts[best], j)
		got[best] += float64(inst.Targets[j].Capacity)
	}
	for c := range clusters {
		if len(tgts[c]) == 0 || got[c] < demand[c] {
			return nil, false
		}
	}

	local := make([]int, inst.N())
	for i := range local {
		local[i] = -1
	}
	subs := make([]subProblem, len(clusters))
	for c, objs := range clusters {
		for li, gi := range objs {
			local[gi] = li
		}
		ws := make([]*rome.Workload, len(objs))
		sobjs := make([]layout.Object, len(objs))
		for li, gi := range objs {
			w := inst.Workloads.Workloads[gi].Clone()
			// Remap overlaps to local ids; cross-cluster entries are
			// dropped. ForEachOverlap visits partners in ascending
			// global order and objs is ascending, so the sparse rows
			// come out sorted.
			var sp []rome.OverlapEntry
			inst.Workloads.ForEachOverlap(gi, func(gk int, v float64) {
				if lk := local[gk]; lk >= 0 {
					sp = append(sp, rome.OverlapEntry{Index: lk, Value: v})
				}
			})
			w.Overlap, w.SparseOverlap = nil, sp
			ws[li] = w
			sobjs[li] = inst.Objects[gi]
		}
		for _, gi := range objs {
			local[gi] = -1 // reset the scratch for the next cluster
		}
		set, err := rome.NewSet(ws...)
		if err != nil {
			return nil, false
		}
		stgts := make([]*layout.Target, len(tgts[c]))
		for lj, gj := range tgts[c] {
			stgts[lj] = inst.Targets[gj]
		}
		subs[c] = subProblem{
			objs: objs,
			tgts: tgts[c],
			inst: &layout.Instance{
				Objects:    sobjs,
				Targets:    stgts,
				Workloads:  set,
				StripeSize: inst.StripeSize,
			},
		}
	}
	return subs, true
}

// solveSubProblems runs one TransferSearch per cluster on a bounded worker
// pool. Each sub-solve is single-threaded with its own derived seed, so the
// pool width affects wall-clock time only. Panics on workers (cost-model
// failures) are re-raised here for safeSolve's classification. Returns
// false when any sub-solve could not run.
func (a *Advisor) solveSubProblems(r *run, subs []subProblem, results []nlp.Result, errs []error, nopt nlp.Options) bool {
	workers := nopt.Workers
	if workers <= 0 || workers > len(subs) {
		workers = len(subs)
	}
	var (
		next     atomic.Int64
		wg       sync.WaitGroup
		panicMu  sync.Mutex
		panicVal interface{}
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer func() {
				if p := recover(); p != nil {
					panicMu.Lock()
					if panicVal == nil {
						panicVal = p
					}
					panicMu.Unlock()
				}
			}()
			for {
				c := int(next.Add(1)) - 1
				if c >= len(subs) {
					return
				}
				sub := subs[c]
				sinit, err := layout.InitialLayout(sub.inst)
				if err != nil {
					errs[c] = err
					continue
				}
				sopt := nopt
				sopt.Workers = 1
				sopt.Trace = nil
				sopt.Seed = nlp.SubSeed(nopt.Seed, nlp.StreamHierarchy, int64(c))
				results[c] = nlp.TransferSearch(r.ctx, layout.NewEvaluator(sub.inst), sub.inst, sinit, sopt)
			}
		}()
	}
	wg.Wait()
	if panicVal != nil {
		panic(panicVal)
	}
	for c := range errs {
		if errs[c] != nil || results[c].Layout == nil {
			return false
		}
	}
	return true
}
