package core

import (
	"context"
	"fmt"
	"math"
	"time"

	"dblayout/internal/layout"
	"dblayout/internal/nlp"
)

// Sentinel errors surfaced by the advisor, re-exported so callers can match
// with errors.Is without importing the internal layers that originate them.
var (
	// ErrInfeasible reports a problem with no valid layout: objects exceed
	// the surviving capacity, or constraints leave an object with no
	// permitted target.
	ErrInfeasible = layout.ErrInfeasible
	// ErrModelFailure reports that a cost model panicked or returned a
	// non-finite or negative cost during evaluation.
	ErrModelFailure = layout.ErrModelFailure
	// ErrBudgetExceeded reports that Options.SolveBudget ran out before the
	// full pipeline completed.
	ErrBudgetExceeded = nlp.ErrBudgetExceeded
)

// Degradation records why a recommendation came from a fallback path rather
// than the full-fidelity pipeline. The advisor degrades instead of failing
// whenever a valid layout can still be produced: a truncated solve keeps its
// best-so-far layout, a failing cost model falls back to the heuristic
// initial layout, a failing heuristic falls back to SEE (spread everything
// everywhere).
type Degradation struct {
	// Phase is the advisor phase that could not complete normally:
	// "seed", "solve", or "regularize".
	Phase string
	// Fallback names what stood in for the phase's normal output:
	// "best-so-far", "initial", or "see".
	Fallback string
	// Cause classifies the failure; errors.Is-comparable against
	// ErrBudgetExceeded, ErrModelFailure, context.Canceled, or
	// context.DeadlineExceeded.
	Cause error
}

// Error makes a Degradation usable as an error value.
func (d *Degradation) Error() string {
	return fmt.Sprintf("advisor degraded at %s (fallback %s): %v", d.Phase, d.Fallback, d.Cause)
}

// Unwrap exposes the cause to errors.Is/errors.As.
func (d *Degradation) Unwrap() error { return d.Cause }

// run carries the per-call state of one RecommendContext invocation. It lives
// on the stack of the call rather than on the Advisor so that concurrent
// recommendations on one Advisor stay race-free.
type run struct {
	a        *Advisor
	ctx      context.Context
	deadline time.Time // zero = no solve budget
	degr     *Degradation
}

func (a *Advisor) newRun(ctx context.Context) *run {
	r := &run{a: a, ctx: ctx}
	if a.opt.SolveBudget > 0 {
		r.deadline = time.Now().Add(a.opt.SolveBudget)
	}
	return r
}

// exhausted reports whether the solve budget has run out.
func (r *run) exhausted() bool {
	return !r.deadline.IsZero() && !time.Now().Before(r.deadline)
}

// note records a degradation. The first cause is kept as the recommendation's
// structured reason (it is the root of any cascade); every one is logged.
func (r *run) note(phase, fallback string, cause error) {
	r.a.log("degrade", "phase", phase, "fallback", fallback, "cause", cause)
	if r.degr == nil {
		r.degr = &Degradation{Phase: phase, Fallback: fallback, Cause: cause}
	}
}

// safeObjective evaluates the max utilization of l, converting cost-model
// panics into an ErrModelFailure-classified error and a NaN objective.
func (a *Advisor) safeObjective(l *layout.Layout) (obj float64, err error) {
	defer func() {
		if p := recover(); p != nil {
			obj, err = math.NaN(), layout.AsModelFailure(p)
		}
	}()
	return a.ev.MaxUtilization(l), nil
}

// better picks the recommendation with the lower final objective, treating
// NaN (a model-failure fallback) as worse than any finite value.
func better(best, cand *Recommendation) *Recommendation {
	switch {
	case cand == nil:
		return best
	case best == nil, math.IsNaN(best.FinalObjective) && !math.IsNaN(cand.FinalObjective):
		return cand
	case cand.FinalObjective < best.FinalObjective:
		return cand
	}
	return best
}
