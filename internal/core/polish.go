package core

import "dblayout/internal/layout"

// PolishRegular improves a regular layout by local search over regular rows:
// each pass re-places every object on the best of its candidate regular rows
// (the same consistent + balancing classes the Sec. 4.3 regularizer uses,
// evaluated against the *current* layout), until no object moves.
//
// This is an extension beyond the paper: its regularizer is one-shot greedy,
// and on strongly heterogeneous targets (e.g. a small SSD beside disks) a
// one-shot pass can lose much of the solver's gain because early objects are
// placed before the eventual shape of the layout is known. The polish pass
// recovers most of that loss while keeping the result regular and valid. It
// is enabled by default and can be disabled for ablation via
// Options.SkipPolish.
func PolishRegular(ev *layout.Evaluator, inst *layout.Instance, l *layout.Layout) *layout.Layout {
	cur := l.Clone()
	sizes := inst.Sizes()
	caps := inst.Capacities()
	inc := ev.NewIncremental(cur)
	utils := inc.Utilizations(nil)

	// Same fleet-scale candidate bound as Regularize: paper-scale problems
	// keep the exhaustive all-widths scan.
	maxWidth := cur.M
	if cur.N*cur.M >= regularizeAutoPairs && maxWidth > regularizeMaxWidth {
		maxWidth = regularizeMaxWidth
	}

	const maxPasses = 8
	for pass := 0; pass < maxPasses; pass++ {
		improved := false
		for i := 0; i < cur.N; i++ {
			oldRow := cur.Row(i)
			curObj, curSum := pairOf(utils)

			var candidates [][]float64
			candidates = append(candidates, consistentCandidates(oldRow, maxWidth)...)
			candidates = append(candidates, balancingCandidates(utils, maxWidth)...)

			bestMax, bestSum := curObj, curSum
			var bestRow []float64
			var bestUtils []float64
			for _, cand := range candidates {
				if sameRow(cand, oldRow) || !capacityOK(cur, i, cand, sizes, caps) ||
					!constraintsOK(inst, cur, i, cand) {
					continue
				}
				newUtils, obj := evalCandidate(inc, utils, i, oldRow, cand)
				sum := sumOf(newUtils)
				if obj < bestMax-1e-12 || (obj < bestMax+1e-12 && sum < bestSum-1e-9) {
					bestMax, bestSum = obj, sum
					bestRow = cand
					bestUtils = newUtils
				}
			}
			if bestRow != nil {
				inc.SetObjectRow(i, bestRow)
				utils = bestUtils
				improved = true
			}
		}
		if !improved {
			break
		}
	}
	return cur
}

func pairOf(utils []float64) (max, sum float64) {
	for _, u := range utils {
		sum += u
		if u > max {
			max = u
		}
	}
	return max, sum
}

func sumOf(utils []float64) float64 {
	var s float64
	for _, u := range utils {
		s += u
	}
	return s
}

func sameRow(a, b []float64) bool {
	for j := range a {
		if a[j] != b[j] {
			return false
		}
	}
	return true
}
