package core

import (
	"fmt"
	"sync"

	"dblayout/internal/layout"
	"dblayout/internal/nlp"
)

// portfolioRacers returns the solvers SolverPortfolio races, in the fixed
// order that breaks objective ties. Projected gradient joins only when the
// instance has no administrative constraints (it cannot honour them).
func (a *Advisor) portfolioRacers() []Solver {
	racers := []Solver{SolverTransfer, SolverAnneal}
	if a.inst.Constraints == nil {
		racers = append(racers, SolverProjectedGradient)
	}
	return racers
}

// racerOutcome is one portfolio member's finished solve, plus the trace
// events it buffered when a user hook is installed (racers never call the
// user hook directly — it is not safe for concurrent use).
type racerOutcome struct {
	res    nlp.Result
	err    error
	events []nlp.TraceEvent
}

// portfolioSolve races the portfolio's solvers concurrently from the same
// initial layout and merges their results deterministically:
//
//   - the layout with the strictly lowest objective wins; ties keep the
//     earlier racer in portfolioRacers order, so the choice never depends
//     on scheduling;
//   - Iters and Evals sum the whole portfolio's effort, while Restarts,
//     Workers and Trajectory describe the winning racer's run;
//   - buffered trace events are delivered after the race in racer order,
//     with globally renumbered Iter, monotone Best, and cumulative Evals —
//     the same stream on every run;
//   - Stop is the context error if any racer saw one, ErrBudgetExceeded if
//     every racer was truncated by the budget, and nil otherwise.
//
// Each racer draws from its own seed stream (the solvers key their RNGs on
// distinct stream constants under the shared derived seed), so the race is
// reproducible from the seed alone. Cost-model panics on racer goroutines
// are captured and re-raised here so safeSolve's recover classifies them as
// ErrModelFailure exactly as in a serial solve.
func (a *Advisor) portfolioSolve(r *run, init *layout.Layout, nopt nlp.Options) (nlp.Result, error) {
	racers := a.portfolioRacers()
	userTrace := nopt.Trace
	outs := make([]racerOutcome, len(racers))

	var (
		wg       sync.WaitGroup
		panicMu  sync.Mutex
		panicVal interface{}
	)
	for i, s := range racers {
		wg.Add(1)
		go func(i int, s Solver) {
			defer wg.Done()
			defer func() {
				if p := recover(); p != nil {
					panicMu.Lock()
					if panicVal == nil {
						panicVal = p
					}
					panicMu.Unlock()
				}
			}()
			opt := nopt
			if userTrace != nil {
				out := &outs[i]
				opt.Trace = func(ev nlp.TraceEvent) { out.events = append(out.events, ev) }
			}
			switch s {
			case SolverTransfer:
				outs[i].res = nlp.TransferSearch(r.ctx, a.ev, a.inst, init, opt)
			case SolverProjectedGradient:
				outs[i].res = nlp.ProjectedGradient(r.ctx, a.ev, a.inst, init, opt)
			case SolverAnneal:
				outs[i].res, outs[i].err = nlp.Anneal(r.ctx, a.ev, a.inst, init, a.annealOptions(opt))
			}
		}(i, s)
	}
	wg.Wait()
	if panicVal != nil {
		panic(panicVal)
	}
	for i, o := range outs {
		if o.err != nil {
			return nlp.Result{}, fmt.Errorf("core: portfolio %v: %w", racers[i], o.err)
		}
	}
	return mergeRace(racers, outs, userTrace), nil
}

// mergeRace folds the racers' outcomes into one Result and replays buffered
// trace events as a single well-formed stream. Racer order is fixed, so the
// merge is deterministic.
func mergeRace(racers []Solver, outs []racerOutcome, userTrace func(nlp.TraceEvent)) nlp.Result {
	win := 0
	for i := 1; i < len(outs); i++ {
		if outs[i].res.Objective < outs[win].res.Objective {
			win = i
		}
	}
	res := outs[win].res
	res.Iters, res.Evals = 0, 0

	iter, evals := 0, 0
	best := outs[0].res.Trajectory[0].Best // every racer starts from the same layout
	budgetStops := 0
	var ctxStop error
	for i := range outs {
		o := &outs[i]
		if userTrace != nil {
			for _, ev := range o.events {
				iter++
				if ev.Objective < best {
					best = ev.Objective
				}
				ev.Iter = iter
				ev.Best = best
				ev.Evals += evals
				userTrace(ev)
			}
		}
		res.Iters += o.res.Iters
		evals += o.res.Evals
		if o.res.Elapsed > res.Elapsed {
			res.Elapsed = o.res.Elapsed
		}
		switch {
		case o.res.Stop == nil:
		case isContextErr(o.res.Stop):
			ctxStop = o.res.Stop
		default:
			budgetStops++
		}
	}
	res.Evals = evals
	switch {
	case ctxStop != nil:
		res.Stop = ctxStop
	case budgetStops == len(outs):
		res.Stop = nlp.ErrBudgetExceeded
	default:
		res.Stop = nil
	}
	return res
}
