package core

import (
	"context"
	"errors"
	"math"
	"testing"
	"time"

	"dblayout/internal/layout"
	"dblayout/internal/layouttest"
	"dblayout/internal/nlp"
)

// sameLayout compares two layouts for bit-exact equality.
func sameLayout(a, b *layout.Layout) bool {
	if a.N != b.N || a.M != b.M {
		return false
	}
	for i := 0; i < a.N; i++ {
		for j := 0; j < a.M; j++ {
			if a.At(i, j) != b.At(i, j) {
				return false
			}
		}
	}
	return true
}

// TestAdvisorDeterministicAcrossWorkers runs the full pipeline serially and
// with a wide worker pool and requires bit-identical recommendations: the
// advisor inherits the nlp layer's determinism contract end to end.
func TestAdvisorDeterministicAcrossWorkers(t *testing.T) {
	inst := layouttest.Instance(4)
	run := func(workers int) *Recommendation {
		adv, err := New(inst, Options{NLP: nlp.Options{Seed: 5, Restarts: 4, Workers: workers}})
		if err != nil {
			t.Fatal(err)
		}
		rec, err := adv.Recommend()
		if err != nil {
			t.Fatal(err)
		}
		return rec
	}
	serial, wide := run(1), run(8)
	if !sameLayout(serial.Final, wide.Final) {
		t.Error("final layouts differ between workers=1 and workers=8")
	}
	if serial.FinalObjective != wide.FinalObjective {
		t.Errorf("final objective %v (serial) != %v (parallel)", serial.FinalObjective, wide.FinalObjective)
	}
	if serial.SolverIters != wide.SolverIters || serial.SolverEvals != wide.SolverEvals {
		t.Errorf("solver effort differs: serial %d/%d, parallel %d/%d",
			serial.SolverIters, serial.SolverEvals, wide.SolverIters, wide.SolverEvals)
	}
	if serial.SolverRestarts != 4 || wide.SolverRestarts != 4 {
		t.Errorf("SolverRestarts = %d (serial), %d (parallel), want 4", serial.SolverRestarts, wide.SolverRestarts)
	}
}

// TestPortfolioSolve runs the racing portfolio end to end: the result must
// be valid, at least as good as the best individual racer would make it, and
// the merged trace stream must satisfy the usual invariants (consecutive
// Iter, monotone Best) even though three solvers produced it concurrently.
func TestPortfolioSolve(t *testing.T) {
	inst := layouttest.Instance(4)
	var events []nlp.TraceEvent
	adv, err := New(inst, Options{
		Solver: SolverPortfolio,
		NLP: nlp.Options{Seed: 1, Restarts: 2,
			Trace: func(e nlp.TraceEvent) { events = append(events, e) }},
	})
	if err != nil {
		t.Fatal(err)
	}
	rec, err := adv.Recommend()
	if err != nil {
		t.Fatal(err)
	}
	if err := inst.ValidateLayout(rec.Final); err != nil {
		t.Fatalf("portfolio layout invalid: %v", err)
	}
	if rec.SolverObjective > rec.InitialObjective*(1+1e-9) {
		t.Fatalf("portfolio worsened objective: %g -> %g", rec.InitialObjective, rec.SolverObjective)
	}
	if len(events) == 0 {
		t.Fatal("portfolio delivered no trace events")
	}
	// The advisor traces one stream per solve round; within each segment
	// Iter must be consecutive from 1 and Best monotone non-increasing.
	solvers := map[string]bool{}
	runMin := math.Inf(1)
	next := 1
	for i, ev := range events {
		solvers[ev.Solver] = true
		if ev.Iter == 1 && next != 1 {
			next = 1 // a new solve round begins
			runMin = math.Inf(1)
		}
		if ev.Iter != next {
			t.Fatalf("event %d has Iter %d, want %d", i, ev.Iter, next)
		}
		next++
		if ev.Objective < runMin {
			runMin = ev.Objective
		}
		if ev.Best > runMin+1e-15 {
			t.Fatalf("iter %d: best %g above running min %g", ev.Iter, ev.Best, runMin)
		}
		if ev.Iter > 1 && ev.Best > events[i-1].Best {
			t.Fatalf("best increased at iter %d", ev.Iter)
		}
	}
	// The unconstrained test instance races all three solvers.
	for _, want := range []string{"transfer", "anneal", "projected-gradient"} {
		if !solvers[want] {
			t.Errorf("no trace events from the %s racer (saw %v)", want, solvers)
		}
	}
}

// TestPortfolioDeterministic pins the race's merge rule: the fixed racer
// order breaks ties, so repeated runs and different worker widths agree.
func TestPortfolioDeterministic(t *testing.T) {
	inst := layouttest.Instance(4)
	run := func(workers int) *Recommendation {
		adv, err := New(inst, Options{
			Solver: SolverPortfolio,
			NLP:    nlp.Options{Seed: 9, Restarts: 3, Workers: workers},
		})
		if err != nil {
			t.Fatal(err)
		}
		rec, err := adv.Recommend()
		if err != nil {
			t.Fatal(err)
		}
		return rec
	}
	a, b, c := run(1), run(1), run(8)
	if !sameLayout(a.Final, b.Final) {
		t.Error("portfolio not reproducible across identical runs")
	}
	if !sameLayout(a.Final, c.Final) {
		t.Error("portfolio layout depends on the worker count")
	}
	if a.SolverIters != c.SolverIters || a.SolverEvals != c.SolverEvals {
		t.Errorf("portfolio effort differs across worker counts: %d/%d vs %d/%d",
			a.SolverIters, a.SolverEvals, c.SolverIters, c.SolverEvals)
	}
}

// TestPortfolioCancelMidSolve cancels a portfolio race mid-run; every racer
// must stop promptly and the advisor must still hand back a valid, degraded
// best-so-far recommendation. Under -race this exercises the concurrent
// racers plus the trace buffering for data races.
func TestPortfolioCancelMidSolve(t *testing.T) {
	inst := layouttest.Instance(4)
	var events []nlp.TraceEvent
	nopt := endlessNLP(1)
	nopt.Workers = 4
	nopt.Trace = func(e nlp.TraceEvent) { events = append(events, e) }
	adv, err := New(inst, Options{Solver: SolverPortfolio, NLP: nopt})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	type out struct {
		rec *Recommendation
		err error
	}
	done := make(chan out, 1)
	go func() {
		rec, err := adv.RecommendContext(ctx)
		done <- out{rec, err}
	}()
	time.Sleep(20 * time.Millisecond)
	cancelled := time.Now()
	cancel()
	o := <-done
	promptness := time.Since(cancelled)

	if !errors.Is(o.err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", o.err)
	}
	if o.rec == nil {
		t.Fatal("no best-so-far recommendation alongside the context error")
	}
	if !o.rec.Degraded || !errors.Is(o.rec.Degradation, context.Canceled) {
		t.Fatalf("recommendation not degraded by cancellation: %+v", o.rec.Degradation)
	}
	if err := inst.ValidateLayout(o.rec.Final); err != nil {
		t.Fatalf("best-so-far layout invalid: %v", err)
	}
	if promptness > 100*time.Millisecond {
		t.Fatalf("portfolio cancellation took %v", promptness)
	}
}

// TestPortfolioSkipsProjGradWithConstraints verifies the portfolio drops the
// constraint-blind projected-gradient racer instead of erroring out when the
// instance carries administrative constraints.
func TestPortfolioSkipsProjGradWithConstraints(t *testing.T) {
	inst := layouttest.Instance(4)
	inst.Constraints = &layout.Constraints{Deny: map[int][]int{0: {1}}}
	var events []nlp.TraceEvent
	adv, err := New(inst, Options{
		Solver: SolverPortfolio,
		NLP: nlp.Options{Seed: 1, Restarts: 1,
			Trace: func(e nlp.TraceEvent) { events = append(events, e) }},
	})
	if err != nil {
		t.Fatal(err)
	}
	rec, err := adv.Recommend()
	if err != nil {
		t.Fatal(err)
	}
	if err := inst.ValidateLayout(rec.Final); err != nil {
		t.Fatalf("portfolio layout invalid under constraints: %v", err)
	}
	for _, ev := range events {
		if ev.Solver == "projected-gradient" {
			t.Fatal("projected-gradient raced despite administrative constraints")
		}
	}
}
