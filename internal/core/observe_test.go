package core

import (
	"bytes"
	"log/slog"
	"strings"
	"testing"

	"dblayout/internal/layouttest"
	"dblayout/internal/nlp"
)

// TestAdvisorPhaseSpans checks that a configured logger sees every advisor
// phase and that the per-phase timing breakdown is populated.
func TestAdvisorPhaseSpans(t *testing.T) {
	inst := layouttest.Instance(4)
	var buf bytes.Buffer
	logger := slog.New(slog.NewTextHandler(&buf, &slog.HandlerOptions{Level: slog.LevelDebug}))
	adv, err := New(inst, Options{NLP: nlp.Options{Seed: 1}, Logger: logger})
	if err != nil {
		t.Fatal(err)
	}
	rec, err := adv.Recommend()
	if err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, phase := range []string{"phase=seed", "phase=solve", "phase=regularize", "phase=validate"} {
		if !strings.Contains(out, phase) {
			t.Fatalf("log output missing %s:\n%s", phase, out)
		}
	}
	if rec.InitialTime <= 0 || rec.SolveTime <= 0 {
		t.Fatalf("phase timings not recorded: initial %v solve %v", rec.InitialTime, rec.SolveTime)
	}
	if rec.PolishTime > rec.RegularizeTime {
		t.Fatalf("polish %v exceeds regularize total %v", rec.PolishTime, rec.RegularizeTime)
	}
	if len(rec.Trajectory) == 0 {
		t.Fatal("recommendation carries no solver trajectory")
	}
}

// TestAdvisorTraceHook checks the nlp trace hook reaches the solver through
// core.Options and observes a monotone non-increasing best objective.
func TestAdvisorTraceHook(t *testing.T) {
	inst := layouttest.Instance(4)
	var events []nlp.TraceEvent
	adv, err := New(inst, Options{NLP: nlp.Options{Seed: 1,
		Trace: func(e nlp.TraceEvent) { events = append(events, e) }}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := adv.Recommend(); err != nil {
		t.Fatal(err)
	}
	if len(events) == 0 {
		t.Fatal("trace hook never fired")
	}
	// Each solver invocation (rounds x initial layouts) restarts the
	// best-so-far sequence; within an invocation (Iter resets to 1),
	// Best must be non-increasing.
	for i := 1; i < len(events); i++ {
		if events[i].Iter == 1 {
			continue
		}
		if events[i].Best > events[i-1].Best+1e-15 {
			t.Fatalf("best increased mid-run at event %d: %g -> %g",
				i, events[i-1].Best, events[i].Best)
		}
	}
}

// TestAnnealOptionErrorsSurface checks invalid anneal schedules surface as
// errors from the advisor rather than being silently clamped.
func TestAnnealOptionErrorsSurface(t *testing.T) {
	inst := layouttest.Instance(3)
	adv, err := New(inst, Options{Solver: SolverAnneal,
		Anneal: nlp.AnnealOptions{Options: nlp.Options{MaxIters: 10}, Cooling: 1.5}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := adv.Recommend(); err == nil {
		t.Fatal("invalid anneal cooling accepted")
	}
}
