package core

import (
	"testing"

	"dblayout/internal/layout"
	"dblayout/internal/layouttest"
	"dblayout/internal/nlp"
)

// hierFixture is a mid-size fleet instance that decomposes into ~10
// clusters: big enough to exercise the whole cluster -> split -> solve ->
// reconcile pipeline, small enough for the race detector.
func hierFixture() (*layout.Instance, Options) {
	inst := layouttest.Fleet(400, 20)
	opt := Options{
		Solver:             SolverHierarchical,
		SkipRegularization: true,
		Rounds:             1,
		Hierarchical:       HierarchicalOptions{MaxClusterObjects: 48},
		NLP:                nlp.Options{Seed: 3, Restarts: nlp.NoRestarts, MaxIters: 400},
	}
	return inst, opt
}

// TestHierarchicalDeterminismAcrossWorkers pins the decomposition's
// workers-independence contract: every sub-solve is single-threaded on a
// per-cluster derived seed and the merge order is fixed, so the pool width
// must change wall-clock time only.
func TestHierarchicalDeterminismAcrossWorkers(t *testing.T) {
	inst, opt := hierFixture()
	solve := func(workers int) *Recommendation {
		o := opt
		o.NLP.Workers = workers
		adv, err := New(inst, o)
		if err != nil {
			t.Fatal(err)
		}
		rec, err := adv.Recommend()
		if err != nil {
			t.Fatal(err)
		}
		return rec
	}
	r1, r8 := solve(1), solve(8)
	if r1.FinalObjective != r8.FinalObjective {
		t.Fatalf("objective differs across workers: %v vs %v", r1.FinalObjective, r8.FinalObjective)
	}
	if !sameLayout(r1.Final, r8.Final) {
		t.Fatal("layout differs between workers 1 and 8")
	}
}

// TestHierarchicalImprovesAndValidates checks the decomposed solve end to
// end: the recommendation must be a valid layout that improves on the
// heuristic initial layout and lands within striking distance of the flat
// transfer solve on the same instance.
func TestHierarchicalImprovesAndValidates(t *testing.T) {
	inst, opt := hierFixture()
	adv, err := New(inst, opt)
	if err != nil {
		t.Fatal(err)
	}
	rec, err := adv.Recommend()
	if err != nil {
		t.Fatal(err)
	}
	if err := inst.ValidateLayout(rec.Final); err != nil {
		t.Fatalf("hierarchical recommendation invalid: %v", err)
	}
	if rec.FinalObjective > rec.InitialObjective {
		t.Fatalf("hierarchical solve regressed: initial %v -> final %v",
			rec.InitialObjective, rec.FinalObjective)
	}

	flatOpt := opt
	flatOpt.Solver = SolverTransfer
	fadv, err := New(inst, flatOpt)
	if err != nil {
		t.Fatal(err)
	}
	frec, err := fadv.Recommend()
	if err != nil {
		t.Fatal(err)
	}
	if rec.FinalObjective > 1.5*frec.FinalObjective {
		t.Fatalf("hierarchical objective %v much worse than flat %v",
			rec.FinalObjective, frec.FinalObjective)
	}
}

// TestHierarchicalFallsBackAtPaperScale pins the acceptance criterion that
// paper-scale solve quality is untouched: with the default cluster size the
// paper's largest problem is a single cluster, so SolverHierarchical must
// produce the exact layout SolverTransfer does.
func TestHierarchicalFallsBackAtPaperScale(t *testing.T) {
	inst := layouttest.Replicated(40, 40)
	base := Options{
		SkipRegularization: true,
		Rounds:             1,
		NLP:                nlp.Options{Seed: 9, Restarts: nlp.NoRestarts, MaxIters: 40},
	}
	recs := make(map[Solver]*Recommendation)
	for _, s := range []Solver{SolverTransfer, SolverHierarchical} {
		o := base
		o.Solver = s
		adv, err := New(inst, o)
		if err != nil {
			t.Fatal(err)
		}
		rec, err := adv.Recommend()
		if err != nil {
			t.Fatal(err)
		}
		recs[s] = rec
	}
	if a, b := recs[SolverTransfer].FinalObjective, recs[SolverHierarchical].FinalObjective; a != b {
		t.Fatalf("paper-scale objective differs: transfer %v, hierarchical %v", a, b)
	}
	if !sameLayout(recs[SolverTransfer].Final, recs[SolverHierarchical].Final) {
		t.Fatal("hierarchical fallback layout differs from the flat transfer solve")
	}
}

// TestHierarchicalFallsBackOnConstraints: administrative constraints are
// outside the decomposition's scope and must route to the flat solver.
func TestHierarchicalFallsBackOnConstraints(t *testing.T) {
	inst, opt := hierFixture()
	inst.Constraints = &layout.Constraints{Deny: map[int][]int{0: {0}}}
	defer func() { inst.Constraints = nil }()
	adv, err := New(inst, opt)
	if err != nil {
		t.Fatal(err)
	}
	rec, err := adv.Recommend()
	if err != nil {
		t.Fatal(err)
	}
	if err := inst.ValidateLayout(rec.Final); err != nil {
		t.Fatalf("constrained fallback invalid: %v", err)
	}
	if rec.Final.At(0, 0) > layout.Epsilon {
		t.Fatal("denied placement present in fallback recommendation")
	}
}

// BenchmarkHierarchicalFleetScale is the decomposed counterpart of the nlp
// package's BenchmarkSolveFleetScale: the full advisor pipeline (seeding,
// per-cluster solves, pruned reconciliation) at N=10000 x M=1000. Run with
// -benchtime=1x for a smoke reading.
func BenchmarkHierarchicalFleetScale(b *testing.B) {
	inst := layouttest.Fleet(10000, 1000)
	adv, err := New(inst, Options{
		Solver:             SolverHierarchical,
		SkipRegularization: true,
		Rounds:             1,
		NLP:                nlp.Options{Seed: 1, Restarts: nlp.NoRestarts, MaxIters: 256},
	})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rec, err := adv.Recommend()
		if err != nil {
			b.Fatal(err)
		}
		if rec.Final == nil {
			b.Fatal("no layout")
		}
	}
}
