package core

import (
	"testing"

	"dblayout/internal/layout"
	"dblayout/internal/layouttest"
	"dblayout/internal/nlp"
)

func TestPlaceIncrementalKeepsExistingRows(t *testing.T) {
	inst := layouttest.Instance(4)
	// Existing layout for objects 0..2 (leaving COLD=3 "new").
	current := layout.New(4, 4)
	current.SetRow(0, []float64{0.5, 0.5, 0, 0})
	current.SetRow(1, []float64{0, 0, 1, 0})
	current.SetRow(2, []float64{0, 0, 0, 1})
	current.SetRow(3, []float64{1, 0, 0, 0}) // ignored: object 3 is the new one

	got, err := PlaceIncremental(inst, current, []int{3}, nlp.Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		for j := 0; j < 4; j++ {
			if got.At(i, j) != current.At(i, j) {
				t.Fatalf("existing object %d moved: %v", i, got.Row(i))
			}
		}
	}
	if err := inst.ValidateLayout(got); err != nil {
		t.Fatal(err)
	}
	if !got.IsRegular() {
		t.Fatal("incremental placement broke regularity")
	}
	if len(got.Targets(3)) == 0 {
		t.Fatal("new object not placed")
	}
}

func TestPlaceIncrementalAvoidsHotTarget(t *testing.T) {
	inst := layouttest.Instance(2)
	// Both hot tables on target 0; target 1 nearly idle. A new random
	// object should land on target 1.
	current := layout.New(4, 2)
	current.SetRow(0, []float64{1, 0})
	current.SetRow(1, []float64{1, 0})
	current.SetRow(2, []float64{0, 1}) // IX is the "new" object
	current.SetRow(3, []float64{0, 1})

	got, err := PlaceIncremental(inst, current, []int{2}, nlp.Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if got.At(2, 1) < 0.99 {
		t.Fatalf("new object placed on the hot target: %v", got.Row(2))
	}
}

func TestPlaceIncrementalHonorsConstraints(t *testing.T) {
	inst := layouttest.Instance(4)
	inst.Constraints = &layout.Constraints{
		Deny:     map[int][]int{3: {0, 1}},
		Separate: [][2]int{{3, 1}},
	}
	current := layout.New(4, 4)
	current.SetRow(0, []float64{1, 0, 0, 0})
	current.SetRow(1, []float64{0, 0, 1, 0}) // T2 on target 2
	current.SetRow(2, []float64{0, 1, 0, 0})
	current.SetRow(3, []float64{0, 0, 0, 1})

	got, err := PlaceIncremental(inst, current, []int{3}, nlp.Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	// Denied targets 0,1 and separated-partner target 2 leave only 3.
	if got.At(3, 3) < 0.99 {
		t.Fatalf("constrained placement wrong: %v", got.Row(3))
	}
}

func TestPlaceIncrementalCapacityExhausted(t *testing.T) {
	inst := layouttest.Instance(2)
	inst.Targets[0].Capacity = 6 << 30
	inst.Targets[1].Capacity = 6 << 30
	// Existing objects nearly fill both targets; the 4 GB table can't fit
	// anywhere without moving data.
	current := layout.New(4, 2)
	current.SetRow(0, []float64{1, 0}) // 4 GB on target 0 -> 2 GB free
	current.SetRow(1, []float64{0, 1}) // 2 GB on target 1
	current.SetRow(2, []float64{0, 1}) // +1 GB -> 3 GB free... then:
	current.SetRow(3, []float64{0, 1}) // ignored; object 3 is new (1 GB fits!)
	// Make the new object too big instead.
	inst.Objects[3].Size = 5 << 30
	if err := inst.Validate(); err != nil {
		t.Fatal(err)
	}
	if _, err := PlaceIncremental(inst, current, []int{3}, nlp.Options{Seed: 1}); err == nil {
		t.Fatal("impossible incremental placement accepted")
	}
}

func TestPlaceIncrementalErrors(t *testing.T) {
	inst := layouttest.Instance(4)
	current := layout.SEE(4, 4)
	if _, err := PlaceIncremental(inst, current, nil, nlp.Options{}); err == nil {
		t.Error("empty object list accepted")
	}
	if _, err := PlaceIncremental(inst, current, []int{9}, nlp.Options{}); err == nil {
		t.Error("out-of-range object accepted")
	}
	if _, err := PlaceIncremental(inst, layout.New(2, 2), []int{0}, nlp.Options{}); err == nil {
		t.Error("mismatched layout accepted")
	}
}

func TestMigrationPlanRoundTrip(t *testing.T) {
	inst := layouttest.Instance(4)
	from := layout.SEE(4, 4)
	to := layout.New(4, 4)
	to.SetRow(0, []float64{0.5, 0.5, 0, 0})
	to.SetRow(1, []float64{0, 0, 1, 0})
	to.SetRow(2, []float64{0.25, 0.25, 0.25, 0.25})
	to.SetRow(3, []float64{0, 0, 0, 1})

	plan, err := layout.MigrationPlan(from, to, inst.Sizes())
	if err != nil {
		t.Fatal(err)
	}
	// Object 2 unchanged: no moves for it.
	for _, m := range plan {
		if m.Object == 2 {
			t.Fatalf("unchanged object scheduled for movement: %+v", m)
		}
		if m.Fraction <= 0 || m.Bytes < 0 || m.From == m.To {
			t.Fatalf("malformed move: %+v", m)
		}
	}
	// Applying the plan to `from` must yield `to`.
	applied := from.Clone()
	for _, m := range plan {
		applied.Set(m.Object, m.From, applied.At(m.Object, m.From)-m.Fraction)
		applied.Set(m.Object, m.To, applied.At(m.Object, m.To)+m.Fraction)
	}
	for i := 0; i < 4; i++ {
		for j := 0; j < 4; j++ {
			if d := applied.At(i, j) - to.At(i, j); d > 1e-9 || d < -1e-9 {
				t.Fatalf("plan does not reach target at (%d,%d): %g vs %g", i, j, applied.At(i, j), to.At(i, j))
			}
		}
	}
	if layout.PlanBytes(plan) <= 0 {
		t.Fatal("plan moves no bytes")
	}
	if s := layout.FormatPlan(inst, plan); s == "" {
		t.Fatal("empty plan rendering")
	}
	// Identity migration: empty plan.
	empty, err := layout.MigrationPlan(from, from, inst.Sizes())
	if err != nil {
		t.Fatal(err)
	}
	if len(empty) != 0 {
		t.Fatalf("identity migration has %d moves", len(empty))
	}
	// Dimension mismatch.
	if _, err := layout.MigrationPlan(from, layout.New(2, 2), inst.Sizes()); err == nil {
		t.Fatal("dimension mismatch accepted")
	}
}
