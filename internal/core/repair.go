package core

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sort"
	"time"

	"dblayout/internal/layout"
	"dblayout/internal/nlp"
)

// Repair is the output of RecommendRepair: a failure-aware re-layout that
// evacuates the failed targets while pinning every unaffected object in
// place.
type Repair struct {
	// Layout is the repaired layout; it places nothing on failed targets.
	Layout *layout.Layout
	// Instance is the repaired problem: the original instance with Deny
	// constraints excluding every failed target, so Layout validates
	// against it and follow-up advising honours the failure.
	Instance *layout.Instance
	// Failed is the normalized (sorted, deduplicated) list of failed
	// target indices.
	Failed []int
	// Affected lists the objects that had fractions on failed targets —
	// the only objects the repair was allowed to move.
	Affected []int
	// Objective is the predicted max utilization of Layout over the
	// surviving targets (NaN when the cost model failed; see Degraded).
	Objective float64
	// Plan is the migration plan from the pre-failure layout to Layout,
	// and PlanBytes the data volume it moves. Failed targets appear as
	// move sources: executing such moves means reconstructing that data
	// from redundancy or backup rather than reading it.
	Plan      []layout.Move
	PlanBytes int64
	// PlanOrdered is Plan in a capacity-safe execution order (see
	// layout.OrderPlan); executors should run this order. It is nil when
	// no safe order exists without scratch-space staging, in which case
	// PlanNeedsStaging is set and package migrate's BuildScript must
	// stage the plan through a scratch reservation.
	PlanOrdered      []layout.Move
	PlanNeedsStaging bool
	// SolveTime is the wall-clock time spent re-solving.
	SolveTime time.Duration
	// Degraded and Degradation mirror Recommendation: when set, Layout is
	// a valid evacuation but came from a fallback path (budget truncation,
	// cost-model failure, or failed regularization — the last may leave
	// Layout non-regular).
	Degraded    bool
	Degradation *Degradation
}

// RecommendRepair re-solves the layout after storage targets fail: it
// excludes the failed targets via Deny constraints, pins every fraction that
// does not reside on a failed target, redistributes the displaced fractions
// (proportionally over each object's surviving targets, spilling greedily by
// free capacity), locally re-optimizes only the affected objects, and emits
// the migration plan from current to the repaired layout.
//
// The seeding is deliberately model-free, so a repair succeeds — degraded —
// even when every cost model is broken: the solver rung of the ladder is
// skipped and the proportional redistribution stands. ErrInfeasible is
// returned when the surviving targets cannot hold the data at all.
//
// Cancellation and budgets follow RecommendContext's contract: an
// already-cancelled ctx returns (nil, ctx.Err()); cancellation mid-solve
// returns the best valid repair so far alongside ctx.Err(); an exhausted
// opt.SolveBudget degrades instead of failing. The re-solve always uses the
// transfer search (the only solver that honours pinned objects with
// constraints), so opt.Solver is ignored.
func RecommendRepair(ctx context.Context, inst *layout.Instance, current *layout.Layout, failed []int, opt Options) (*Repair, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if err := inst.Validate(); err != nil {
		return nil, err
	}
	if err := inst.ValidateLayout(current); err != nil {
		return nil, fmt.Errorf("core: pre-failure layout invalid: %w", err)
	}

	failed = normalizeFailed(failed)
	if len(failed) == 0 {
		return nil, fmt.Errorf("core: no failed targets given")
	}
	isFailed := make(map[int]bool, len(failed))
	for _, j := range failed {
		if j < 0 || j >= inst.M() {
			return nil, fmt.Errorf("core: failed target index %d outside [0,%d)", j, inst.M())
		}
		isFailed[j] = true
	}
	if len(failed) >= inst.M() {
		return nil, fmt.Errorf("core: all %d targets failed: %w", inst.M(), ErrInfeasible)
	}

	// Surviving capacity must hold everything; Instance.Validate cannot
	// catch this because the failed targets still exist in the instance.
	var need, have int64
	for _, o := range inst.Objects {
		need += o.Size
	}
	for j, t := range inst.Targets {
		if !isFailed[j] {
			have += t.Capacity
		}
	}
	if need > have {
		return nil, fmt.Errorf("core: objects need %d bytes but surviving targets provide %d: %w", need, have, ErrInfeasible)
	}

	rinst, err := denyTargets(inst, failed)
	if err != nil {
		return nil, err
	}

	rep := &Repair{Instance: rinst, Failed: failed}
	for i := 0; i < current.N; i++ {
		for _, j := range failed {
			if current.At(i, j) > layout.Epsilon {
				rep.Affected = append(rep.Affected, i)
				break
			}
		}
	}
	if len(rep.Affected) == 0 {
		// Nothing resided on the failed targets: the current layout is
		// already a valid repair and no data moves.
		rep.Layout = current.Clone()
		ev := layout.NewEvaluator(rinst)
		rep.Objective, _ = safeEvalMax(ev, rep.Layout)
		return rep, nil
	}

	seed, err := evacuate(rinst, current, rep.Affected, isFailed)
	if err != nil {
		return nil, err
	}
	if err := rinst.ValidateLayout(seed); err != nil {
		return nil, fmt.Errorf("core: repair seeding produced an invalid layout: %w: %w", ErrInfeasible, err)
	}

	note := func(phase, fallback string, cause error) {
		if opt.Logger != nil {
			opt.Logger.Info("advisor phase", "phase", "degrade",
				"repair", true, "stage", phase, "fallback", fallback, "cause", cause)
		}
		if rep.Degradation == nil {
			rep.Degraded = true
			rep.Degradation = &Degradation{Phase: phase, Fallback: fallback, Cause: cause}
		}
	}

	// Re-solve over the affected objects only, under the remaining budget.
	ev := layout.NewEvaluator(rinst)
	nopt := opt.NLP
	nopt.MovableObjects = rep.Affected
	nopt.Budget = opt.SolveBudget
	// Repair solves draw from their own seed stream so a repair after a
	// recommendation (same base seed) never replays the advisor's
	// perturbation sequence.
	nopt.Seed = nlp.SubSeed(opt.NLP.Seed, nlp.StreamRepair)
	start := time.Now()
	final, stop, serr := repairSolve(ctx, ev, rinst, seed, nopt)
	rep.SolveTime = time.Since(start)
	var ctxErr error
	switch {
	case serr != nil:
		// Cost model failed inside the solver; the model-free seed
		// stands (the "heuristic layout" rung of the ladder).
		note("solve", "seed", serr)
		final = seed
	case isContextErr(stop):
		note("solve", "best-so-far", stop)
		ctxErr = stop
	case stop != nil:
		note("solve", "best-so-far", stop)
	}

	// Restore regularity for the affected rows when the pre-failure layout
	// was regular, so the repair stays implementable by the same striping
	// mechanism. Skipped once the model has already failed or the caller
	// cancelled — Regularize consults the evaluator.
	if serr == nil && ctxErr == nil && current.IsRegular() && !final.IsRegular() {
		reg, rerr := repairRegularize(ev, rinst, final)
		if rerr != nil {
			note("regularize", "solver-layout", rerr)
		} else {
			if unaffectedMoved(current, reg, rep.Affected) {
				return nil, fmt.Errorf("core: internal error: repair moved an unaffected object")
			}
			final = reg
		}
	}

	if err := rinst.ValidateLayout(final); err != nil {
		return nil, fmt.Errorf("core: repaired layout invalid: %w", err)
	}
	if unaffectedMoved(current, final, rep.Affected) {
		return nil, fmt.Errorf("core: internal error: repair moved an unaffected object")
	}
	rep.Layout = final
	rep.Objective, _ = safeEvalMax(ev, final)
	rep.Plan, err = layout.MigrationPlan(current, final, rinst.Sizes())
	if err != nil {
		return nil, err
	}
	rep.PlanBytes = layout.PlanBytes(rep.Plan)
	rep.PlanOrdered, err = layout.OrderPlan(current, rep.Plan, rinst.Sizes(), rinst.Capacities())
	if err != nil {
		var cyc *layout.CycleError
		if !errors.As(err, &cyc) {
			return nil, err
		}
		rep.PlanNeedsStaging = true
	}
	return rep, ctxErr
}

// normalizeFailed sorts and deduplicates the failed target list.
func normalizeFailed(failed []int) []int {
	out := append([]int(nil), failed...)
	sort.Ints(out)
	dst := 0
	for i, j := range out {
		if i == 0 || j != out[dst-1] {
			out[dst] = j
			dst++
		}
	}
	return out[:dst]
}

// denyTargets clones the instance with Deny constraints barring every object
// from the failed targets. The original instance and its constraint maps are
// not mutated.
func denyTargets(inst *layout.Instance, failed []int) (*layout.Instance, error) {
	rinst := *inst
	c := &layout.Constraints{}
	if old := inst.Constraints; old != nil {
		c.Allow = make(map[int][]int, len(old.Allow))
		for i, ts := range old.Allow {
			c.Allow[i] = append([]int(nil), ts...)
		}
		c.Deny = make(map[int][]int, len(old.Deny))
		for i, ts := range old.Deny {
			c.Deny[i] = append([]int(nil), ts...)
		}
		c.Separate = append([][2]int(nil), old.Separate...)
	}
	if c.Deny == nil {
		c.Deny = make(map[int][]int, inst.N())
	}
	for i := 0; i < inst.N(); i++ {
		c.Deny[i] = append(c.Deny[i], failed...)
	}
	rinst.Constraints = c
	if err := c.Validate(inst.N(), inst.M()); err != nil {
		// An Allow set contained within the failed targets leaves the
		// object with nowhere to go.
		return nil, fmt.Errorf("core: repair: %w", err)
	}
	return &rinst, nil
}

// evacuate builds the model-free repair seed: failed fractions of each
// affected object are redistributed proportionally over the object's
// surviving targets, spilling to the permitted target with the most free
// capacity when a proportional share does not fit or the object lived
// entirely on failed targets.
func evacuate(rinst *layout.Instance, current *layout.Layout, affected []int, isFailed map[int]bool) (*layout.Layout, error) {
	l := current.Clone()
	sizes := rinst.Sizes()
	caps := rinst.Capacities()
	bytes := make([]float64, l.M)
	for j := 0; j < l.M; j++ {
		bytes[j] = l.TargetBytes(j, sizes)
	}

	fits := func(i, j int, frac float64) bool {
		if isFailed[j] || !rinst.Constraints.Permits(i, j) {
			return false
		}
		if bytes[j]+frac*float64(sizes[i]) > float64(caps[j])*(1+1e-12) {
			return false
		}
		return !sharesSeparatedRow(rinst.Constraints, l, i, j)
	}
	place := func(i, j int, frac float64) {
		l.Set(i, j, l.At(i, j)+frac)
		bytes[j] += frac * float64(sizes[i])
	}
	// spill places frac of object i wherever the most free capacity is.
	spill := func(i int, frac float64) error {
		for frac > layout.Epsilon {
			best, bestFree := -1, 0.0
			for j := 0; j < l.M; j++ {
				if !fits(i, j, 0) {
					continue
				}
				if free := float64(caps[j]) - bytes[j]; best < 0 || free > bestFree {
					best, bestFree = j, free
				}
			}
			if best < 0 || bestFree <= 0 {
				return fmt.Errorf("core: no surviving target can absorb object %q: %w",
					rinst.Objects[i].Name, ErrInfeasible)
			}
			take := frac
			if room := bestFree / float64(sizes[i]); take > room {
				take = room
			}
			place(i, best, take)
			frac -= take
		}
		return nil
	}

	for _, i := range affected {
		deficit := 0.0
		healthy := 0.0
		for j := 0; j < l.M; j++ {
			f := l.At(i, j)
			if f <= layout.Epsilon {
				continue
			}
			if isFailed[j] {
				deficit += f
				bytes[j] -= f * float64(sizes[i])
				l.Set(i, j, 0)
			} else {
				healthy += f
			}
		}
		if healthy > layout.Epsilon {
			// Proportional top-up of the surviving fractions.
			rest := deficit
			for j := 0; j < l.M && rest > layout.Epsilon; j++ {
				f := l.At(i, j)
				if f <= layout.Epsilon || isFailed[j] {
					continue
				}
				share := deficit * f / healthy
				if share > rest {
					share = rest
				}
				if free := (float64(caps[j]) - bytes[j]) / float64(sizes[i]); share > free {
					share = free
				}
				if share > layout.Epsilon {
					place(i, j, share)
					rest -= share
				}
			}
			deficit = rest
		}
		if deficit > layout.Epsilon {
			if err := spill(i, deficit); err != nil {
				return nil, err
			}
		}
	}
	return l, nil
}

// repairSolve runs the transfer search with panics from the cost model
// converted into an ErrModelFailure-classified error.
func repairSolve(ctx context.Context, ev *layout.Evaluator, rinst *layout.Instance, seed *layout.Layout, opt nlp.Options) (l *layout.Layout, stop error, err error) {
	defer func() {
		if p := recover(); p != nil {
			l, stop, err = nil, nil, layout.AsModelFailure(p)
		}
	}()
	res := nlp.TransferSearch(ctx, ev, rinst, seed, opt)
	return res.Layout, res.Stop, nil
}

// repairRegularize regularizes with the same panic conversion.
func repairRegularize(ev *layout.Evaluator, rinst *layout.Instance, l *layout.Layout) (reg *layout.Layout, err error) {
	defer func() {
		if p := recover(); p != nil {
			reg, err = nil, layout.AsModelFailure(p)
		}
	}()
	return Regularize(ev, rinst, l)
}

// safeEvalMax evaluates max utilization with panic conversion.
func safeEvalMax(ev *layout.Evaluator, l *layout.Layout) (obj float64, err error) {
	defer func() {
		if p := recover(); p != nil {
			obj, err = math.NaN(), layout.AsModelFailure(p)
		}
	}()
	return ev.MaxUtilization(l), nil
}

// unaffectedMoved reports whether any row outside the affected set differs
// between the two layouts.
func unaffectedMoved(before, after *layout.Layout, affected []int) bool {
	moved := make(map[int]bool, len(affected))
	for _, i := range affected {
		moved[i] = true
	}
	for i := 0; i < before.N; i++ {
		if moved[i] {
			continue
		}
		for j := 0; j < before.M; j++ {
			if before.At(i, j) != after.At(i, j) {
				return true
			}
		}
	}
	return false
}
