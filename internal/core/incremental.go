package core

import (
	"context"
	"fmt"

	"dblayout/internal/layout"
	"dblayout/internal/nlp"
)

// PlaceIncremental places the listed objects into an existing layout without
// moving any other object's data — the dynamic-allocation mode the paper's
// conclusion sketches for NetApp FlexVol-style systems, where capacity is
// assigned as volumes grow rather than in an up-front configuration step.
//
// The instance must describe all objects (existing and new); current must be
// a valid layout of the existing objects whose rows for the new objects are
// ignored. The returned layout keeps every existing row bit-identical,
// places the new objects greedily (least utilized permitted target first)
// and then locally optimizes only the new rows with the transfer search.
// The result is regular if `current` is regular.
func PlaceIncremental(inst *layout.Instance, current *layout.Layout, newObjects []int, opt nlp.Options) (*layout.Layout, error) {
	return PlaceIncrementalContext(context.Background(), inst, current, newObjects, opt)
}

// PlaceIncrementalContext is PlaceIncremental under a context. An
// already-cancelled context returns ctx.Err() without placing anything; a
// cancellation mid-optimization returns (nil, ctx.Err()). When opt.Budget is
// set and runs out, the local optimization stops early and the best-effort
// placement found so far is returned with a nil error — the greedy seeding
// already guarantees a valid layout. Cost-model panics and non-finite costs
// surface as an error wrapping ErrModelFailure.
func PlaceIncrementalContext(ctx context.Context, inst *layout.Instance, current *layout.Layout, newObjects []int, opt nlp.Options) (final *layout.Layout, err error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	// The evaluator is the only black-box code on this path; a broken cost
	// model must come back as a classified error, not a process panic.
	defer func() {
		if p := recover(); p != nil {
			final, err = nil, layout.AsModelFailure(p)
		}
	}()
	if err := inst.Validate(); err != nil {
		return nil, err
	}
	if current.N != inst.N() || current.M != inst.M() {
		return nil, fmt.Errorf("core: %dx%d layout for a %dx%d instance", current.N, current.M, inst.N(), inst.M())
	}
	if len(newObjects) == 0 {
		return nil, fmt.Errorf("core: no objects to place")
	}
	isNew := make(map[int]bool, len(newObjects))
	for _, i := range newObjects {
		if i < 0 || i >= inst.N() {
			return nil, fmt.Errorf("core: object index %d outside [0,%d)", i, inst.N())
		}
		isNew[i] = true
	}

	ev := layout.NewEvaluator(inst)
	l := current.Clone()
	for i := range isNew {
		l.SetRow(i, make([]float64, l.M))
	}

	// Greedy seeding: hottest new object first, onto the least-utilized
	// permitted target with room.
	order := append([]int(nil), newObjects...)
	ws := inst.Workloads.Workloads
	for a := 0; a < len(order); a++ {
		for b := a + 1; b < len(order); b++ {
			if ws[order[b]].TotalRate() > ws[order[a]].TotalRate() {
				order[a], order[b] = order[b], order[a]
			}
		}
	}
	sizes := inst.Sizes()
	caps := inst.Capacities()
	// One incremental kernel prices the whole greedy pass: each placement
	// reads cached utilizations and updates only the receiving target,
	// instead of re-evaluating every target per object.
	inc := ev.NewIncremental(l)
	for _, i := range order {
		best := -1
		for j := 0; j < l.M; j++ {
			if !inst.Constraints.Permits(i, j) {
				continue
			}
			if l.TargetBytes(j, sizes)+float64(sizes[i]) > float64(caps[j]) {
				continue
			}
			if sharesSeparatedRow(inst.Constraints, l, i, j) {
				continue
			}
			if best < 0 || inc.Utilization(j) < inc.Utilization(best) {
				best = j
			}
		}
		if best < 0 {
			return nil, fmt.Errorf("core: no target can accept new object %q without moving existing data",
				inst.Objects[i].Name)
		}
		row := make([]float64, l.M)
		row[best] = 1
		inc.SetObjectRow(i, row)
	}

	// Local optimization over the new rows only.
	opt.MovableObjects = newObjects
	res := nlp.TransferSearch(ctx, ev, inst, l, opt)
	if isContextErr(res.Stop) {
		return nil, res.Stop
	}

	// The transfer search may leave non-regular rows; restore regularity
	// for the new objects if the base layout was regular.
	final = res.Layout
	if current.IsRegular() && !final.IsRegular() {
		reg, err := Regularize(ev, inst, final)
		if err != nil {
			return nil, err
		}
		// Regularization must not have touched existing rows (they
		// were already regular, so it skips them), but verify.
		for i := 0; i < final.N; i++ {
			if isNew[i] {
				continue
			}
			for j := 0; j < final.M; j++ {
				if reg.At(i, j) != current.At(i, j) {
					return nil, fmt.Errorf("core: internal error: incremental placement moved existing object %d", i)
				}
			}
		}
		final = reg
	}
	if err := inst.ValidateLayout(final); err != nil {
		return nil, err
	}
	return final, nil
}

// sharesSeparatedRow reports whether target j already holds an object that
// must be separated from i.
func sharesSeparatedRow(c *layout.Constraints, l *layout.Layout, i, j int) bool {
	for _, k := range c.SeparatedFrom(i) {
		if l.At(k, j) > layout.Epsilon {
			return true
		}
	}
	return false
}
