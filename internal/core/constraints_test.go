package core

import (
	"testing"

	"dblayout/internal/layout"
	"dblayout/internal/layouttest"
	"dblayout/internal/nlp"
)

// constrainedInstance pins the hot table to targets {0,1}, bans the index
// from target 0, and keeps the two hot tables separated.
func constrainedInstance() *layout.Instance {
	inst := layouttest.Instance(4)
	inst.Constraints = &layout.Constraints{
		Allow:    map[int][]int{0: {0, 1}},
		Deny:     map[int][]int{2: {0}},
		Separate: [][2]int{{0, 1}},
	}
	return inst
}

func TestAdvisorHonorsConstraints(t *testing.T) {
	inst := constrainedInstance()
	adv, err := New(inst, Options{NLP: nlp.Options{Seed: 1}})
	if err != nil {
		t.Fatal(err)
	}
	rec, err := adv.Recommend()
	if err != nil {
		t.Fatal(err)
	}
	if err := inst.ValidateLayout(rec.Final); err != nil {
		t.Fatalf("final layout violates constraints: %v", err)
	}
	// Pin respected: T1 only on targets 0/1.
	if rec.Final.At(0, 2) > layout.Epsilon || rec.Final.At(0, 3) > layout.Epsilon {
		t.Errorf("pinned object escaped: %v", rec.Final.Row(0))
	}
	// Deny respected.
	if rec.Final.At(2, 0) > layout.Epsilon {
		t.Errorf("denied placement used: %v", rec.Final.Row(2))
	}
	// Separation respected.
	for j := 0; j < 4; j++ {
		if rec.Final.At(0, j) > layout.Epsilon && rec.Final.At(1, j) > layout.Epsilon {
			t.Errorf("separated objects share target %d", j)
		}
	}
	// The solver's intermediate layout also satisfies the constraints
	// (they are enforced during the search, not as a post-filter).
	if err := inst.Constraints.Check(rec.Solver); err != nil {
		t.Errorf("solver layout violates constraints: %v", err)
	}
}

func TestAdvisorConstraintsWithAnneal(t *testing.T) {
	inst := constrainedInstance()
	adv, err := New(inst, Options{Solver: SolverAnneal, NLP: nlp.Options{Seed: 2, MaxIters: 2000}})
	if err != nil {
		t.Fatal(err)
	}
	rec, err := adv.Recommend()
	if err != nil {
		t.Fatal(err)
	}
	if err := inst.ValidateLayout(rec.Final); err != nil {
		t.Fatalf("anneal final layout violates constraints: %v", err)
	}
}

func TestProjectedGradientRejectsConstraints(t *testing.T) {
	inst := constrainedInstance()
	adv, err := New(inst, Options{Solver: SolverProjectedGradient})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := adv.Recommend(); err == nil {
		t.Fatal("projected gradient should reject constrained instances")
	}
}

func TestRegularizeHonorsConstraints(t *testing.T) {
	inst := constrainedInstance()
	ev := layout.NewEvaluator(inst)
	// Non-regular but constraint-satisfying layout.
	l := layout.New(4, 4)
	l.SetRow(0, []float64{0.7, 0.3, 0, 0})
	l.SetRow(1, []float64{0, 0, 0.6, 0.4})
	l.SetRow(2, []float64{0, 0.5, 0.25, 0.25})
	l.SetRow(3, []float64{0.25, 0.25, 0.25, 0.25})
	if err := inst.ValidateLayout(l); err != nil {
		t.Fatal(err)
	}
	reg, err := Regularize(ev, inst, l)
	if err != nil {
		t.Fatal(err)
	}
	if err := inst.ValidateLayout(reg); err != nil {
		t.Fatalf("regularized layout violates constraints: %v", err)
	}
	polished := PolishRegular(ev, inst, reg)
	if err := inst.ValidateLayout(polished); err != nil {
		t.Fatalf("polished layout violates constraints: %v", err)
	}
}

func TestUnsatisfiableConstraints(t *testing.T) {
	inst := layouttest.Instance(2)
	// Hot tables must be separated AND both pinned to target 0: the
	// instance itself validates (each object has a permitted target) but
	// no layout can satisfy it; the initial-layout heuristic must fail
	// cleanly.
	inst.Constraints = &layout.Constraints{
		Allow:    map[int][]int{0: {0}, 1: {0}},
		Separate: [][2]int{{0, 1}},
	}
	if err := inst.Validate(); err != nil {
		t.Fatal(err)
	}
	if _, err := layout.InitialLayout(inst); err == nil {
		t.Fatal("unsatisfiable constraints produced an initial layout")
	}
}
