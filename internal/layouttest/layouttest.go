// Package layouttest provides hand-authored cost models and layout problem
// instances shared by the tests of the solver and advisor packages. The
// models are analytic stand-ins with the same qualitative shape as
// calibrated ones (cheap sequential access collapsing under contention,
// expensive flat random access), which keeps solver tests fast and their
// expected outcomes easy to reason about.
package layouttest

import (
	"fmt"
	"math/rand"

	"dblayout/internal/costmodel"
	"dblayout/internal/layout"
	"dblayout/internal/rome"
)

// DiskModel returns a disk-like cost model: random requests cost ~5 ms,
// sequential ~0.3 ms with the advantage collapsing around contention 2.
func DiskModel() *costmodel.Model {
	sizes := []float64{4096, 131072}
	runs := []float64{1, 64}
	mk := func(scale float64) costmodel.Table {
		t := costmodel.Table{Sizes: sizes, RunCounts: runs}
		t.Curves = make([][]costmodel.Curve, len(sizes))
		for si := range sizes {
			t.Curves[si] = make([]costmodel.Curve, len(runs))
			xfer := scale * sizes[si] / 65536
			for ri := range runs {
				if ri == 0 {
					t.Curves[si][ri] = costmodel.Curve{
						Contention: []float64{0, 2, 8},
						Cost:       []float64{5e-3 + xfer, 4.6e-3 + xfer, 4.2e-3 + xfer},
					}
				} else {
					t.Curves[si][ri] = costmodel.Curve{
						Contention: []float64{0, 1, 2, 8},
						Cost:       []float64{0.3e-3 + xfer, 1.5e-3 + xfer, 4.5e-3 + xfer, 4.8e-3 + xfer},
					}
				}
			}
		}
		return t
	}
	return &costmodel.Model{Target: "test-disk", Read: mk(0.9e-3), Write: mk(1.1e-3)}
}

// SSDModel returns a flat fast model (no positioning cost, no interference
// sensitivity).
func SSDModel() *costmodel.Model {
	sizes := []float64{4096, 131072}
	runs := []float64{1, 64}
	mk := func(lat float64) costmodel.Table {
		t := costmodel.Table{Sizes: sizes, RunCounts: runs}
		t.Curves = make([][]costmodel.Curve, len(sizes))
		for si := range sizes {
			t.Curves[si] = make([]costmodel.Curve, len(runs))
			cost := lat + 0.4e-3*sizes[si]/65536
			for ri := range runs {
				t.Curves[si][ri] = costmodel.Curve{
					Contention: []float64{0, 8},
					Cost:       []float64{cost, cost},
				}
			}
		}
		return t
	}
	return &costmodel.Model{Target: "test-ssd", Read: mk(0.2e-3), Write: mk(0.4e-3)}
}

// Targets builds m identical disk targets with the given capacity.
func Targets(m int, capacity int64) []*layout.Target {
	model := DiskModel()
	ts := make([]*layout.Target, m)
	for j := range ts {
		ts[j] = &layout.Target{Name: fmt.Sprintf("disk%d", j), Capacity: capacity, Model: model}
	}
	return ts
}

// Instance builds the standard small test problem: two hot, heavily
// overlapping sequential tables, a warm random index, and a cold object, on
// m identical 20 GB disk targets.
func Instance(m int) *layout.Instance {
	ws := []*rome.Workload{
		{Name: "T1", ReadSize: 131072, ReadRate: 300, RunCount: 64, Overlap: []float64{1, 0.9, 0.5, 0.1}},
		{Name: "T2", ReadSize: 131072, ReadRate: 200, RunCount: 64, Overlap: []float64{0.9, 1, 0.5, 0.1}},
		{Name: "IX", ReadSize: 8192, ReadRate: 120, WriteSize: 8192, WriteRate: 30, RunCount: 1, Overlap: []float64{0.5, 0.5, 1, 0.1}},
		{Name: "COLD", ReadSize: 8192, ReadRate: 2, RunCount: 1, Overlap: []float64{0.1, 0.1, 0.1, 1}},
	}
	set, err := rome.NewSet(ws...)
	if err != nil {
		panic(err)
	}
	inst := &layout.Instance{
		Objects: []layout.Object{
			{Name: "T1", Size: 4 << 30, Kind: layout.KindTable},
			{Name: "T2", Size: 2 << 30, Kind: layout.KindTable},
			{Name: "IX", Size: 1 << 30, Kind: layout.KindIndex},
			{Name: "COLD", Size: 1 << 30, Kind: layout.KindTable},
		},
		Targets:   Targets(m, 20<<30),
		Workloads: set,
	}
	if err := inst.Validate(); err != nil {
		panic(err)
	}
	return inst
}

// Fleet builds a deterministic fleet-scale instance: n objects in co-access
// clusters of about ten (one "database" each — only intra-cluster overlaps
// are non-zero, carried sparsely so the instance never materializes an n x n
// matrix), with a skewed hot/warm/cold rate mix, on m alternating disk and
// SSD targets whose capacities leave roughly 60% slack in aggregate. It is
// the fixture behind BenchmarkSolveFleetScale (n=10000, m=1000) and the
// fleet experiments; the same (n, m) always yields the same instance.
func Fleet(n, m int) *layout.Instance {
	const span = 10
	rng := rand.New(rand.NewSource(7))
	ws := make([]*rome.Workload, n)
	objs := make([]layout.Object, n)
	var total int64
	for i := 0; i < n; i++ {
		w := &rome.Workload{
			Name:     fmt.Sprintf("O%d", i),
			ReadSize: 131072, WriteSize: 8192,
			RunCount: float64(1 + rng.Intn(64)),
		}
		switch rng.Intn(10) {
		case 0: // hot
			w.ReadRate = 100 + 400*rng.Float64()
			w.WriteRate = 50 * rng.Float64()
		case 1, 2, 3: // warm
			w.ReadRate = 5 + 50*rng.Float64()
		default: // cold
			w.ReadRate = 2 * rng.Float64()
		}
		ws[i] = w
		size := int64(64+rng.Intn(1984)) << 20
		objs[i] = layout.Object{Name: w.Name, Size: size, Kind: layout.KindTable}
		total += size
	}
	for lo := 0; lo < n; lo += span {
		hi := lo + span
		if hi > n {
			hi = n
		}
		for i := lo; i < hi; i++ {
			for k := i + 1; k < hi; k++ {
				if rng.Intn(5) == 0 {
					continue // not every pair in a database co-runs
				}
				v := 0.05 + 0.9*rng.Float64()
				ws[i].SparseOverlap = append(ws[i].SparseOverlap, rome.OverlapEntry{Index: k, Value: v})
				ws[k].SparseOverlap = append(ws[k].SparseOverlap, rome.OverlapEntry{Index: i, Value: v})
			}
		}
	}
	set, err := rome.NewSet(ws...)
	if err != nil {
		panic(err)
	}
	disk, ssd := DiskModel(), SSDModel()
	capacity := (total*8/5)/int64(m) + 1
	targets := make([]*layout.Target, m)
	for j := range targets {
		model, kind := disk, "disk"
		if j%2 == 1 {
			model, kind = ssd, "ssd"
		}
		targets[j] = &layout.Target{Name: fmt.Sprintf("%s%d", kind, j), Capacity: capacity, Model: model}
	}
	inst := &layout.Instance{Objects: objs, Targets: targets, Workloads: set}
	if err := inst.Validate(); err != nil {
		panic(err)
	}
	return inst
}

// Replicated builds a larger instance by replicating the standard problem's
// workloads r times across m targets, for solver scaling tests.
func Replicated(r, m int) *layout.Instance {
	base := Instance(4)
	set := base.Workloads.Replicate(r)
	objs := make([]layout.Object, 0, len(base.Objects)*r)
	for rep := 0; rep < r; rep++ {
		for _, o := range base.Objects {
			c := o
			if rep > 0 {
				c.Name = fmt.Sprintf("%s#%d", o.Name, rep+1)
			}
			objs = append(objs, c)
		}
	}
	inst := &layout.Instance{
		Objects:   objs,
		Targets:   Targets(m, 1<<40),
		Workloads: set,
	}
	if err := inst.Validate(); err != nil {
		panic(err)
	}
	return inst
}
