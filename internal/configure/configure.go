// Package configure extends the layout advisor to recommend storage
// *configurations* in addition to layouts — the direction the paper's
// conclusion sketches toward Minerva and the Disk Array Designer: "instead
// of taking a set of storage targets as input, the advisor would take a
// description of the available unconfigured storage resources [and]
// recommend how to configure specific storage targets, e.g., RAID groups,
// from the available resources, as well as how to lay out objects onto the
// targets."
//
// Given a pool of identical disks (plus optional pre-configured devices such
// as SSDs), the configurator enumerates the ways of grouping the disks into
// RAID0 targets, runs the layout advisor against each candidate
// configuration, and returns the configuration + layout with the lowest
// predicted maximum utilization.
package configure

import (
	"fmt"
	"sort"

	"dblayout/internal/core"
	"dblayout/internal/costmodel"
	"dblayout/internal/layout"
	"dblayout/internal/nlp"
	"dblayout/internal/replay"
	"dblayout/internal/rome"
)

// Pool describes the unconfigured storage resources.
type Pool struct {
	// Disks is the number of identical disks available for grouping.
	Disks int
	// Fixed are devices used as-is in every candidate configuration
	// (e.g. an SSD, or an existing RAID group).
	Fixed []replay.DeviceSpec
	// MaxGroup bounds the RAID0 group size (0 = no bound).
	MaxGroup int
}

// Candidate is one evaluated configuration.
type Candidate struct {
	// Grouping is the disk partition, e.g. [3 1] = one 3-disk RAID0
	// group plus one standalone disk.
	Grouping []int
	// Devices are the concrete targets of the configuration.
	Devices []replay.DeviceSpec
	// Rec is the advisor's recommendation for the configuration.
	Rec *core.Recommendation
}

// Options bundles the advisor inputs that are independent of the
// configuration choice.
type Options struct {
	Objects   []layout.Object
	Workloads *rome.Set
	Cache     *costmodel.Cache
	Grid      costmodel.Grid
	Seed      int64
}

// partitions enumerates the integer partitions of n (descending parts),
// bounding parts by maxPart.
func partitions(n, maxPart int) [][]int {
	if maxPart <= 0 || maxPart > n {
		maxPart = n
	}
	var out [][]int
	var rec func(remaining, limit int, cur []int)
	rec = func(remaining, limit int, cur []int) {
		if remaining == 0 {
			out = append(out, append([]int(nil), cur...))
			return
		}
		for p := min(limit, remaining); p >= 1; p-- {
			rec(remaining-p, p, append(cur, p))
		}
	}
	rec(n, maxPart, nil)
	return out
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// Enumerate lists the candidate device configurations for the pool.
func Enumerate(pool Pool) ([][]replay.DeviceSpec, [][]int, error) {
	if pool.Disks < 0 || (pool.Disks == 0 && len(pool.Fixed) == 0) {
		return nil, nil, fmt.Errorf("configure: empty resource pool")
	}
	var configs [][]replay.DeviceSpec
	var groupings [][]int
	if pool.Disks == 0 {
		return [][]replay.DeviceSpec{pool.Fixed}, [][]int{nil}, nil
	}
	for _, part := range partitions(pool.Disks, pool.MaxGroup) {
		devices := append([]replay.DeviceSpec(nil), pool.Fixed...)
		for gi, size := range part {
			name := fmt.Sprintf("raid0x%d.%d", size, gi)
			if size == 1 {
				name = fmt.Sprintf("disk.%d", gi)
				devices = append(devices, replay.Disk15K(name))
			} else {
				devices = append(devices, replay.RAID0Disks(name, size))
			}
		}
		configs = append(configs, devices)
		groupings = append(groupings, part)
	}
	return configs, groupings, nil
}

// Best evaluates every candidate configuration with the layout advisor and
// returns them sorted by predicted objective (best first).
func Best(pool Pool, opt Options) ([]*Candidate, error) {
	if opt.Workloads == nil || len(opt.Objects) == 0 {
		return nil, fmt.Errorf("configure: objects and workloads are required")
	}
	if opt.Cache == nil {
		opt.Cache = costmodel.NewCache()
	}
	if len(opt.Grid.Sizes) == 0 {
		opt.Grid = costmodel.DefaultGrid()
	}
	configs, groupings, err := Enumerate(pool)
	if err != nil {
		return nil, err
	}

	var out []*Candidate
	for ci, devices := range configs {
		sys := &replay.System{Objects: opt.Objects, Devices: devices}
		inst := &layout.Instance{
			Objects:   opt.Objects,
			Targets:   sys.Targets(opt.Cache, opt.Grid),
			Workloads: opt.Workloads,
		}
		if err := inst.Validate(); err != nil {
			// A configuration whose total capacity cannot hold the
			// database is simply not a candidate.
			continue
		}
		heuristic, err := layout.InitialLayout(inst)
		if err != nil {
			continue
		}
		adv, err := core.New(inst, core.Options{
			NLP:            nlp.Options{Seed: opt.Seed},
			InitialLayouts: []*layout.Layout{heuristic, layout.SEE(inst.N(), inst.M())},
		})
		if err != nil {
			return nil, err
		}
		rec, err := adv.Recommend()
		if err != nil {
			return nil, fmt.Errorf("configure: grouping %v: %w", groupings[ci], err)
		}
		out = append(out, &Candidate{
			Grouping: groupings[ci],
			Devices:  devices,
			Rec:      rec,
		})
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("configure: no feasible configuration for the pool")
	}
	sort.SliceStable(out, func(a, b int) bool {
		return out[a].Rec.FinalObjective < out[b].Rec.FinalObjective
	})
	return out, nil
}
