package configure

import (
	"testing"

	"dblayout/internal/benchdb"
	"dblayout/internal/costmodel"
	"dblayout/internal/estimator"
	"dblayout/internal/replay"
)

func TestPartitions(t *testing.T) {
	got := partitions(4, 0)
	want := [][]int{{4}, {3, 1}, {2, 2}, {2, 1, 1}, {1, 1, 1, 1}}
	if len(got) != len(want) {
		t.Fatalf("partitions(4) = %v, want %v", got, want)
	}
	for i := range want {
		if len(got[i]) != len(want[i]) {
			t.Fatalf("partition %d = %v, want %v", i, got[i], want[i])
		}
		for k := range want[i] {
			if got[i][k] != want[i][k] {
				t.Fatalf("partition %d = %v, want %v", i, got[i], want[i])
			}
		}
	}
	// Bounded group size.
	for _, p := range partitions(4, 2) {
		for _, part := range p {
			if part > 2 {
				t.Fatalf("partition %v exceeds bound", p)
			}
		}
	}
}

func TestEnumerate(t *testing.T) {
	configs, groupings, err := Enumerate(Pool{Disks: 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(configs) != 5 {
		t.Fatalf("got %d configurations for 4 disks, want 5", len(configs))
	}
	// The "3-1" and "2-1-1" configurations of the paper's Fig. 17 must be
	// among them.
	found31, found211 := false, false
	for _, g := range groupings {
		if len(g) == 2 && g[0] == 3 && g[1] == 1 {
			found31 = true
		}
		if len(g) == 3 && g[0] == 2 {
			found211 = true
		}
	}
	if !found31 || !found211 {
		t.Fatalf("paper configurations missing from %v", groupings)
	}
	// Fixed devices appear in every configuration.
	configs, _, err = Enumerate(Pool{Disks: 2, Fixed: []replay.DeviceSpec{replay.SSD("ssd", 8<<30)}})
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range configs {
		if c[0].Name != "ssd" {
			t.Fatalf("fixed device missing: %v", c)
		}
	}
	if _, _, err := Enumerate(Pool{}); err == nil {
		t.Fatal("empty pool accepted")
	}
}

// TestBestPrefersGroupingForSequentialLoad runs the configurator on the
// TPC-H workload estimate over four disks: all candidate groupings are
// evaluated and the winner's recommendation must be at least as good as
// every other candidate's.
func TestBestPrefersGoodConfiguration(t *testing.T) {
	w := benchdb.OLAP863()
	est, err := estimator.EstimateOLAP(w, estimator.DefaultAssumptions(4))
	if err != nil {
		t.Fatal(err)
	}
	cands, err := Best(Pool{Disks: 4}, Options{
		Objects:   w.Catalog.Objects,
		Workloads: est,
		Grid:      costmodel.FastGrid(),
		Seed:      1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(cands) != 5 {
		t.Fatalf("evaluated %d candidates, want 5", len(cands))
	}
	for i := 1; i < len(cands); i++ {
		if cands[i].Rec.FinalObjective < cands[0].Rec.FinalObjective-1e-9 {
			t.Fatalf("candidates not sorted: %v=%.3f before %v=%.3f",
				cands[0].Grouping, cands[0].Rec.FinalObjective,
				cands[i].Grouping, cands[i].Rec.FinalObjective)
		}
	}
	t.Logf("best grouping %v (objective %.3f), worst %v (%.3f)",
		cands[0].Grouping, cands[0].Rec.FinalObjective,
		cands[len(cands)-1].Grouping, cands[len(cands)-1].Rec.FinalObjective)
}

func TestBestSkipsInfeasible(t *testing.T) {
	// One disk (18.4 GB) cannot hold the 9.4 GB database twice over; with
	// a huge object the whole pool is infeasible.
	w := benchdb.OLAP121()
	est, err := estimator.EstimateOLAP(w, estimator.DefaultAssumptions(1))
	if err != nil {
		t.Fatal(err)
	}
	objs := w.Catalog.Objects
	objs[0].Size = 200 << 30 // larger than any configuration
	if _, err := Best(Pool{Disks: 2}, Options{
		Objects:   objs,
		Workloads: est,
		Grid:      costmodel.FastGrid(),
	}); err == nil {
		t.Fatal("infeasible pool accepted")
	}
}

func TestBestValidatesInput(t *testing.T) {
	if _, err := Best(Pool{Disks: 2}, Options{}); err == nil {
		t.Fatal("missing workloads accepted")
	}
}
