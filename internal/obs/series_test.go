package obs

import (
	"bytes"
	"encoding/json"
	"math"
	"testing"
)

func TestSeriesRingEviction(t *testing.T) {
	s := NewSeries(4)
	for i := 0; i < 10; i++ {
		s.Record(float64(i), float64(i*i))
	}
	if got := s.Len(); got != 4 {
		t.Fatalf("len = %d, want 4", got)
	}
	snap := s.Snapshot()
	if snap.Count != 10 {
		t.Fatalf("count = %d, want 10", snap.Count)
	}
	// The retained window is the last four samples, chronological.
	wantT := []float64{6, 7, 8, 9}
	for i, sm := range snap.Samples {
		if sm.T != wantT[i] || sm.V != wantT[i]*wantT[i] {
			t.Fatalf("sample %d = %+v, want t=%g v=%g", i, sm, wantT[i], wantT[i]*wantT[i])
		}
	}
	if snap.First.T != 6 || snap.Last.T != 9 {
		t.Fatalf("first/last = %+v/%+v", snap.First, snap.Last)
	}
	if snap.Min != 36 || snap.Max != 81 {
		t.Fatalf("min/max = %g/%g", snap.Min, snap.Max)
	}
	wantMean := (36.0 + 49 + 64 + 81) / 4
	if math.Abs(snap.Mean-wantMean) > 1e-12 {
		t.Fatalf("mean = %g, want %g", snap.Mean, wantMean)
	}
	// Rate over the window: (81-36)/(9-6) = 15.
	if math.Abs(snap.Rate-15) > 1e-12 {
		t.Fatalf("rate = %g, want 15", snap.Rate)
	}
	if got := s.Rate(); math.Abs(got-15) > 1e-12 {
		t.Fatalf("Rate() = %g, want 15", got)
	}
}

func TestSeriesEWMA(t *testing.T) {
	s := NewSeries(8)
	s.Record(0, 10)
	if got := s.EWMA(); got != 10 {
		t.Fatalf("ewma after first sample = %g, want 10 (seeded, not decayed from 0)", got)
	}
	s.Record(1, 20)
	want := 10 + ewmaAlpha*(20-10)
	if got := s.EWMA(); math.Abs(got-want) > 1e-12 {
		t.Fatalf("ewma = %g, want %g", got, want)
	}
}

func TestSeriesEdgeCases(t *testing.T) {
	var nilS *Series
	nilS.Record(1, 2) // must not panic
	if nilS.Len() != 0 || nilS.EWMA() != 0 || nilS.Rate() != 0 {
		t.Fatal("nil series returned non-zero reductions")
	}
	if _, ok := nilS.Last(); ok {
		t.Fatal("nil series has a last sample")
	}
	if snap := nilS.Snapshot(); snap.Count != 0 || snap.Samples != nil {
		t.Fatalf("nil snapshot = %+v", snap)
	}

	empty := NewSeries(0) // default capacity
	if snap := empty.Snapshot(); snap.Count != 0 {
		t.Fatalf("empty snapshot = %+v", snap)
	}
	if empty.Rate() != 0 {
		t.Fatal("empty series rate != 0")
	}

	one := NewSeries(2)
	one.Record(5, 3)
	if one.Rate() != 0 {
		t.Fatal("single-sample rate != 0")
	}
	// Two samples at the same timestamp: zero span, rate stays 0.
	one.Record(5, 9)
	if one.Rate() != 0 {
		t.Fatal("zero-span rate != 0")
	}
}

func TestRegistrySeriesExposition(t *testing.T) {
	r := NewRegistry()
	s := r.Series(Name("copied_bytes", "device", "disk0"), 8)
	s.Record(1, 100)
	s.Record(2, 300)

	var prom bytes.Buffer
	if err := r.WriteProm(&prom); err != nil {
		t.Fatal(err)
	}
	want := "# TYPE copied_bytes gauge\ncopied_bytes{device=\"disk0\"} 300\n"
	if prom.String() != want {
		t.Fatalf("prom output = %q, want %q", prom.String(), want)
	}

	var js bytes.Buffer
	if err := r.WriteJSON(&js); err != nil {
		t.Fatal(err)
	}
	var out map[string]SeriesSnapshot
	if err := json.Unmarshal(js.Bytes(), &out); err != nil {
		t.Fatal(err)
	}
	sum := out[`copied_bytes{device="disk0"}`]
	if sum.Count != 2 || sum.Last.V != 300 || sum.Samples != nil {
		t.Fatalf("WriteJSON summary = %+v (samples must be omitted)", sum)
	}

	var sj bytes.Buffer
	if err := r.WriteSeriesJSON(&sj); err != nil {
		t.Fatal(err)
	}
	out = map[string]SeriesSnapshot{}
	if err := json.Unmarshal(sj.Bytes(), &out); err != nil {
		t.Fatal(err)
	}
	full := out[`copied_bytes{device="disk0"}`]
	if len(full.Samples) != 2 || full.Rate != 200 {
		t.Fatalf("WriteSeriesJSON snapshot = %+v", full)
	}

	// Nil registry: accessor returns a usable no-op series, exposition is
	// an empty object.
	var nilR *Registry
	nilR.Series("x", 4).Record(1, 2)
	sj.Reset()
	if err := nilR.WriteSeriesJSON(&sj); err != nil {
		t.Fatal(err)
	}
	if got := string(bytes.TrimSpace(sj.Bytes())); got != "{}" {
		t.Fatalf("nil WriteSeriesJSON = %q", got)
	}
}
