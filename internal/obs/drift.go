package obs

import (
	"log/slog"
	"sync"
)

// DriftConfig tunes a Detector. The zero value is not usable: Threshold must
// be positive.
type DriftConfig struct {
	// Threshold marks a window as drifted when |value| >= Threshold.
	Threshold float64
	// Trigger is the number of consecutive drifted windows a signal must
	// accumulate before an event fires — the hysteresis that keeps one
	// noisy window from raising an alarm. Values below 1 select the
	// default of 2.
	Trigger int
	// Clear is the number of consecutive calm windows after a fired event
	// before the signal re-arms and may fire again. Values below 1 select
	// Trigger.
	Clear int
	// MinInterval rate-limits events: after a signal fires, it stays
	// silent for at least this many time units even if it re-arms sooner.
	// It also provides the second re-arm path: sustained drift (which
	// never accumulates Clear calm windows) re-arms the signal once
	// MinInterval has elapsed, so persistent drift fires at the
	// MinInterval cadence rather than going silent after the first event.
	// Zero disables the limit, leaving calm-window re-arming only.
	MinInterval float64
}

func (c DriftConfig) withDefaults() DriftConfig {
	if c.Trigger < 1 {
		c.Trigger = 2
	}
	if c.Clear < 1 {
		c.Clear = c.Trigger
	}
	return c
}

// DriftEvent is one fired drift detection.
type DriftEvent struct {
	// Time is the observation timestamp that completed the trigger run.
	Time float64 `json:"t"`
	// Signal names the watched series (e.g. a per-device prediction-error
	// signal, or "overlap_distance").
	Signal string `json:"signal"`
	// Value is the observation that fired the event.
	Value float64 `json:"value"`
	// Threshold echoes the configured threshold.
	Threshold float64 `json:"threshold"`
	// Window is the caller's window index for the firing observation.
	Window int64 `json:"window"`
	// Consecutive is the length of the drifted-window run at fire time.
	Consecutive int `json:"consecutive"`
}

// driftState is the per-signal hysteresis state machine.
type driftState struct {
	above     int  // consecutive drifted windows
	below     int  // consecutive calm windows
	armed     bool // may fire
	fired     bool // has ever fired (gates MinInterval)
	lastFired float64
}

// Detector watches named drift signals — per-window scalar observations such
// as a device's utilization prediction error or the overlap-matrix distance
// between workload refits — and fires structured, rate-limited events when a
// signal stays beyond the threshold for Trigger consecutive windows.
//
// Fired events go to every configured sink: a *slog.Logger (warn records), a
// JSONL event stream, and a metrics registry (a global drift_detected_total
// counter plus one per signal). All sinks are optional. A nil *Detector
// ignores all observations, preserving the package's zero-overhead-when-
// disabled contract; a non-nil Detector is safe for concurrent use.
type Detector struct {
	mu      sync.Mutex
	cfg     DriftConfig
	logger  *slog.Logger
	events  *JSONL
	total   *Counter
	reg     *Registry
	signals map[string]*driftState
	fired   []DriftEvent
}

// NewDetector builds a detector with the given hysteresis configuration and
// optional sinks (any of logger, events, metrics may be nil).
func NewDetector(cfg DriftConfig, logger *slog.Logger, events *JSONL, metrics *Registry) *Detector {
	return &Detector{
		cfg:     cfg.withDefaults(),
		logger:  logger,
		events:  events,
		total:   metrics.Counter("drift_detected_total"),
		reg:     metrics,
		signals: map[string]*driftState{},
	}
}

// Observe feeds one windowed observation of a signal: window is the caller's
// window index, t the window's timestamp, value the signal value (compared to
// the threshold by absolute value). It returns the fired event, or nil when
// the observation did not fire. No-op on a nil detector.
func (d *Detector) Observe(signal string, window int64, t, value float64) *DriftEvent {
	if d == nil {
		return nil
	}
	d.mu.Lock()
	st, ok := d.signals[signal]
	if !ok {
		st = &driftState{armed: true}
		d.signals[signal] = st
	}
	abs := value
	if abs < 0 {
		abs = -abs
	}
	var ev *DriftEvent
	if abs >= d.cfg.Threshold {
		st.above++
		st.below = 0
		rateOK := !st.fired || d.cfg.MinInterval <= 0 || t-st.lastFired >= d.cfg.MinInterval
		// With a rate limit configured, sustained drift re-arms the signal
		// once the limit has elapsed: drift that persists (or returns before
		// Clear calm windows ever accumulate) keeps firing at the MinInterval
		// cadence instead of going silent forever after the first event.
		// Without a rate limit the signal re-arms only via Clear calm
		// windows, the original pure-hysteresis contract.
		if !st.armed && st.fired && d.cfg.MinInterval > 0 && rateOK {
			st.armed = true
		}
		if st.armed && st.above >= d.cfg.Trigger && rateOK {
			st.armed = false
			st.fired = true
			st.lastFired = t
			ev = &DriftEvent{
				Time:        t,
				Signal:      signal,
				Value:       value,
				Threshold:   d.cfg.Threshold,
				Window:      window,
				Consecutive: st.above,
			}
			d.fired = append(d.fired, *ev)
		}
	} else {
		st.below++
		st.above = 0
		if !st.armed && st.below >= d.cfg.Clear {
			st.armed = true
		}
	}
	d.mu.Unlock()

	if ev != nil {
		d.total.Inc()
		d.reg.Counter(Name("drift_detected_total", "signal", signal)).Inc()
		if d.logger != nil {
			d.logger.Warn("drift detected",
				"signal", signal, "value", ev.Value, "threshold", ev.Threshold,
				"window", ev.Window, "consecutive", ev.Consecutive, "t", ev.Time)
		}
		if d.events != nil {
			_ = d.events.Write(ev)
		}
	}
	return ev
}

// Events returns a copy of every event fired so far, in firing order. Nil
// detectors return nil.
func (d *Detector) Events() []DriftEvent {
	if d == nil {
		return nil
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	return append([]DriftEvent(nil), d.fired...)
}
