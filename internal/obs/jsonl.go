package obs

import (
	"encoding/json"
	"io"
	"sync"
)

// JSONL writes a stream of JSON-encoded events, one per line — the format
// cmd/advisor's --trace-out emits. It is safe for concurrent use and sticky
// on error: after the first failed write, subsequent writes are dropped and
// Err reports the failure. A nil *JSONL discards all events.
type JSONL struct {
	mu  sync.Mutex
	enc *json.Encoder
	err error
}

// NewJSONL returns a JSONL writer over w.
func NewJSONL(w io.Writer) *JSONL {
	return &JSONL{enc: json.NewEncoder(w)}
}

// Write appends one event as a JSON line.
func (j *JSONL) Write(v interface{}) error {
	if j == nil {
		return nil
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.err != nil {
		return j.err
	}
	j.err = j.enc.Encode(v)
	return j.err
}

// Err returns the first write error, if any.
func (j *JSONL) Err() error {
	if j == nil {
		return nil
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.err
}
