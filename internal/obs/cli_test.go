package obs

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestCLISessionOutputs(t *testing.T) {
	dir := t.TempDir()
	tracePath := filepath.Join(dir, "trace.jsonl")
	metricsPath := filepath.Join(dir, "metrics.prom")

	fs := flag.NewFlagSet("test", flag.ContinueOnError)
	var cli CLI
	cli.Register(fs)
	if err := fs.Parse([]string{
		"-log-level", "info",
		"-trace-out", tracePath,
		"-metrics-out", metricsPath,
	}); err != nil {
		t.Fatal(err)
	}

	var logBuf bytes.Buffer
	sess, err := cli.Start(&logBuf)
	if err != nil {
		t.Fatal(err)
	}
	if sess.Logger == nil || sess.Registry == nil || sess.Trace == nil {
		t.Fatal("session outputs not all enabled")
	}
	sess.Logger.Info("hello")
	sess.Registry.Counter("x_total").Inc()
	if err := sess.Trace.Write(map[string]int{"iter": 1}); err != nil {
		t.Fatal(err)
	}
	if err := sess.Close(); err != nil {
		t.Fatal(err)
	}

	if !strings.Contains(logBuf.String(), "hello") {
		t.Error("log line not written")
	}
	trace, err := os.ReadFile(tracePath)
	if err != nil {
		t.Fatal(err)
	}
	if strings.TrimSpace(string(trace)) != `{"iter":1}` {
		t.Errorf("trace file content %q", trace)
	}
	metrics, err := os.ReadFile(metricsPath)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(metrics), "x_total 1") {
		t.Errorf("metrics file content %q", metrics)
	}
}

func TestCLIVerboseImpliesDebug(t *testing.T) {
	fs := flag.NewFlagSet("test", flag.ContinueOnError)
	var cli CLI
	cli.Register(fs)
	if err := fs.Parse([]string{"-v"}); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	sess, err := cli.Start(&buf)
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()
	sess.Logger.Debug("dbg")
	if !strings.Contains(buf.String(), "dbg") {
		t.Error("-v did not enable debug logging")
	}
}

func TestCLIBadLogLevel(t *testing.T) {
	fs := flag.NewFlagSet("test", flag.ContinueOnError)
	var cli CLI
	cli.Register(fs)
	if err := fs.Parse([]string{"-log-level", "nope"}); err != nil {
		t.Fatal(err)
	}
	if _, err := cli.Start(&bytes.Buffer{}); err == nil {
		t.Fatal("bad log level accepted")
	}
}
