package obs

import (
	"bytes"
	"flag"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

func TestCLISessionOutputs(t *testing.T) {
	dir := t.TempDir()
	tracePath := filepath.Join(dir, "trace.jsonl")
	metricsPath := filepath.Join(dir, "metrics.prom")

	fs := flag.NewFlagSet("test", flag.ContinueOnError)
	var cli CLI
	cli.Register(fs)
	if err := fs.Parse([]string{
		"-log-level", "info",
		"-trace-out", tracePath,
		"-metrics-out", metricsPath,
	}); err != nil {
		t.Fatal(err)
	}

	var logBuf bytes.Buffer
	sess, err := cli.Start(&logBuf)
	if err != nil {
		t.Fatal(err)
	}
	if sess.Logger == nil || sess.Registry == nil || sess.Trace == nil {
		t.Fatal("session outputs not all enabled")
	}
	sess.Logger.Info("hello")
	sess.Registry.Counter("x_total").Inc()
	if err := sess.Trace.Write(map[string]int{"iter": 1}); err != nil {
		t.Fatal(err)
	}
	if err := sess.Close(); err != nil {
		t.Fatal(err)
	}

	if !strings.Contains(logBuf.String(), "hello") {
		t.Error("log line not written")
	}
	trace, err := os.ReadFile(tracePath)
	if err != nil {
		t.Fatal(err)
	}
	if strings.TrimSpace(string(trace)) != `{"iter":1}` {
		t.Errorf("trace file content %q", trace)
	}
	metrics, err := os.ReadFile(metricsPath)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(metrics), "x_total 1") {
		t.Errorf("metrics file content %q", metrics)
	}
}

// TestCLIPeriodicFlush verifies -metrics-flush rewrites the metrics file
// while the command is still running, so a killed run leaves a usable file.
func TestCLIPeriodicFlush(t *testing.T) {
	metricsPath := filepath.Join(t.TempDir(), "metrics.prom")
	fs := flag.NewFlagSet("test", flag.ContinueOnError)
	var cli CLI
	cli.Register(fs)
	if err := fs.Parse([]string{"-metrics-out", metricsPath, "-metrics-flush", "5ms"}); err != nil {
		t.Fatal(err)
	}
	sess, err := cli.Start(&bytes.Buffer{})
	if err != nil {
		t.Fatal(err)
	}
	sess.Registry.Counter("live_total").Inc()
	deadline := time.Now().Add(5 * time.Second)
	for {
		if b, err := os.ReadFile(metricsPath); err == nil && strings.Contains(string(b), "live_total 1") {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("metrics file not flushed before Close")
		}
		time.Sleep(2 * time.Millisecond)
	}
	if err := sess.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(metricsPath + ".tmp"); !os.IsNotExist(err) {
		t.Errorf("temp flush file left behind: %v", err)
	}
}

// TestCLIListen verifies -listen alone creates a registry and serves it.
func TestCLIListen(t *testing.T) {
	fs := flag.NewFlagSet("test", flag.ContinueOnError)
	var cli CLI
	cli.Register(fs)
	if err := fs.Parse([]string{"-listen", "127.0.0.1:0"}); err != nil {
		t.Fatal(err)
	}
	sess, err := cli.Start(&bytes.Buffer{})
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()
	if sess.Registry == nil {
		t.Fatal("-listen did not create a registry")
	}
	sess.Registry.Counter("served_total").Inc()
	resp, err := http.Get("http://" + sess.Addr + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if !strings.Contains(string(body), "served_total 1") {
		t.Errorf("served metrics = %q", body)
	}
}

func TestCLIVerboseImpliesDebug(t *testing.T) {
	fs := flag.NewFlagSet("test", flag.ContinueOnError)
	var cli CLI
	cli.Register(fs)
	if err := fs.Parse([]string{"-v"}); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	sess, err := cli.Start(&buf)
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()
	sess.Logger.Debug("dbg")
	if !strings.Contains(buf.String(), "dbg") {
		t.Error("-v did not enable debug logging")
	}
}

func TestCLIBadLogLevel(t *testing.T) {
	fs := flag.NewFlagSet("test", flag.ContinueOnError)
	var cli CLI
	cli.Register(fs)
	if err := fs.Parse([]string{"-log-level", "nope"}); err != nil {
		t.Fatal(err)
	}
	if _, err := cli.Start(&bytes.Buffer{}); err == nil {
		t.Fatal("bad log level accepted")
	}
}
