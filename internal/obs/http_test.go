package obs

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

func get(t *testing.T, srv *httptest.Server, path string) (string, string) {
	t.Helper()
	resp, err := srv.Client().Get(srv.URL + path)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: status %d", path, resp.StatusCode)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(body), resp.Header.Get("Content-Type")
}

func TestHandlerEndpoints(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("hits_total").Add(3)
	reg.Series("util", 8).Record(1, 0.5)
	srv := httptest.NewServer(NewHandler(reg))
	defer srv.Close()

	body, ct := get(t, srv, "/metrics")
	if !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Errorf("/metrics content type %q", ct)
	}
	if !strings.Contains(body, "hits_total 3") || !strings.Contains(body, "util 0.5") {
		t.Errorf("/metrics body:\n%s", body)
	}

	body, ct = get(t, srv, "/metrics.json")
	if ct != "application/json" {
		t.Errorf("/metrics.json content type %q", ct)
	}
	var m map[string]json.RawMessage
	if err := json.Unmarshal([]byte(body), &m); err != nil {
		t.Fatalf("/metrics.json invalid: %v", err)
	}
	if _, ok := m["hits_total"]; !ok {
		t.Errorf("/metrics.json missing hits_total: %s", body)
	}

	body, _ = get(t, srv, "/series")
	var series map[string]SeriesSnapshot
	if err := json.Unmarshal([]byte(body), &series); err != nil {
		t.Fatalf("/series invalid: %v", err)
	}
	if len(series["util"].Samples) != 1 {
		t.Errorf("/series missing util samples: %s", body)
	}

	if body, _ = get(t, srv, "/debug/pprof/cmdline"); body == "" {
		t.Error("/debug/pprof/cmdline empty")
	}
}

func TestHandlerNilRegistry(t *testing.T) {
	srv := httptest.NewServer(NewHandler(nil))
	defer srv.Close()
	if body, _ := get(t, srv, "/metrics"); body != "" {
		t.Errorf("nil registry /metrics = %q", body)
	}
	if body, _ := get(t, srv, "/metrics.json"); strings.TrimSpace(body) != "{}" {
		t.Errorf("nil registry /metrics.json = %q", body)
	}
}

// TestServeHasTimeouts pins the slow-client protection: a Serve'd server
// must carry the standard timeouts (a zero ReadHeaderTimeout would let one
// client trickling header bytes pin a connection forever), and Shutdown
// must drain it so new connections are refused.
func TestServeHasTimeouts(t *testing.T) {
	srv, addr, err := Serve("127.0.0.1:0", nil)
	if err != nil {
		t.Fatal(err)
	}
	if srv.ReadHeaderTimeout != ReadHeaderTimeout {
		t.Errorf("ReadHeaderTimeout = %v, want %v", srv.ReadHeaderTimeout, ReadHeaderTimeout)
	}
	if srv.ReadTimeout != ReadTimeout {
		t.Errorf("ReadTimeout = %v, want %v", srv.ReadTimeout, ReadTimeout)
	}
	if srv.IdleTimeout != IdleTimeout {
		t.Errorf("IdleTimeout = %v, want %v", srv.IdleTimeout, IdleTimeout)
	}
	if err := Shutdown(srv, time.Second); err != nil {
		t.Fatal(err)
	}
	if _, err := http.Get("http://" + addr + "/metrics"); err == nil {
		t.Error("listener still accepting after Shutdown")
	}
	if err := Shutdown(nil, time.Second); err != nil {
		t.Errorf("nil Shutdown: %v", err)
	}
}

func TestServeEphemeralPort(t *testing.T) {
	reg := NewRegistry()
	reg.Gauge("g").Set(1)
	srv, addr, err := Serve("127.0.0.1:0", reg)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	if strings.HasSuffix(addr, ":0") {
		t.Fatalf("bound address %q still has port 0", addr)
	}
	resp, err := http.Get("http://" + addr + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if !strings.Contains(string(body), "g 1") {
		t.Errorf("metrics over Serve = %q", body)
	}
}
