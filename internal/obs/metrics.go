// Package obs is the repository's dependency-free observability layer:
// a metrics registry (counters, gauges, fixed-bucket histograms), and a
// JSON-lines event writer for solver traces. It is built entirely on the
// standard library and is designed around two invariants:
//
//   - Zero overhead when disabled. Every accessor on a nil *Registry
//     returns a nil metric, and every method on a nil metric is a no-op,
//     so instrumented code paths can call Inc/Observe unconditionally.
//   - Safe under concurrency. All metric updates are atomic; the registry
//     itself is mutex-protected and may be read (WriteProm/WriteJSON)
//     while writers are active.
//
// Metric names follow the Prometheus convention (`snake_case`, `_total`
// suffix on counters) and may carry a label set baked into the name via
// Name, e.g. `replay_device_busy_seconds{device="disk0"}`. Registry.WriteProm
// renders the Prometheus text exposition format; Registry.WriteJSON renders
// the same data as a single JSON object for programmatic consumption.
package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Name composes a metric name with a label set: Name("x_total", "dev", "a")
// returns `x_total{dev="a"}`. Label pairs must come in key, value order;
// values are quoted and escaped for the Prometheus text format.
func Name(family string, labelPairs ...string) string {
	if len(labelPairs) == 0 {
		return family
	}
	if len(labelPairs)%2 != 0 {
		panic("obs: Name requires key/value label pairs")
	}
	var b strings.Builder
	b.WriteString(family)
	b.WriteByte('{')
	for i := 0; i < len(labelPairs); i += 2 {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(labelPairs[i])
		b.WriteString(`="`)
		b.WriteString(EscapeLabelValue(labelPairs[i+1]))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

// EscapeLabelValue escapes a label value exactly as the Prometheus text
// exposition format (version 0.0.4) specifies: backslash, double-quote and
// line feed become `\\`, `\"` and `\n`; every other byte passes through
// unchanged. Go's %q verb is not a substitute — it emits escapes the format
// does not define (`\t`, `\xNN`, `ሴ`), which scrapers reject.
func EscapeLabelValue(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	var b strings.Builder
	b.Grow(len(v) + 2)
	for i := 0; i < len(v); i++ {
		switch v[i] {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteByte(v[i])
		}
	}
	return b.String()
}

// family splits a composed metric name into its family (the part before any
// label set).
func family(name string) string {
	if i := strings.IndexByte(name, '{'); i >= 0 {
		return name[:i]
	}
	return name
}

// Counter is a monotonically increasing integer metric.
type Counter struct{ v atomic.Int64 }

// Inc adds one. No-op on a nil counter.
func (c *Counter) Inc() { c.Add(1) }

// Add adds n. No-op on a nil counter.
func (c *Counter) Add(n int64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Value returns the current count (0 on a nil counter).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a float metric that can move in either direction.
type Gauge struct{ bits atomic.Uint64 }

// Set stores v. No-op on a nil gauge.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.bits.Store(math.Float64bits(v))
}

// Add adds v atomically. No-op on a nil gauge.
func (g *Gauge) Add(v float64) {
	if g == nil {
		return
	}
	for {
		old := g.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if g.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Value returns the current value (0 on a nil gauge).
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// Histogram is a fixed-bucket histogram. An observation lands in the first
// bucket whose upper bound is >= the value (Prometheus `le` semantics); a
// value above every bound is counted only in the implicit +Inf bucket.
type Histogram struct {
	bounds  []float64 // sorted upper bounds, exclusive of +Inf
	counts  []atomic.Int64
	inf     atomic.Int64
	count   atomic.Int64
	sumBits atomic.Uint64
}

// NewHistogram builds a histogram with the given upper bucket bounds, which
// must be strictly increasing. An implicit +Inf bucket is always appended.
func NewHistogram(bounds []float64) *Histogram {
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic(fmt.Sprintf("obs: histogram bounds not increasing at %d: %v", i, bounds))
		}
	}
	b := make([]float64, len(bounds))
	copy(b, bounds)
	return &Histogram{bounds: b, counts: make([]atomic.Int64, len(b))}
}

// LatencyBuckets returns exponential bounds suited to simulated I/O latency
// in seconds: 50 µs to ~105 ms doubling, a good match for the disk and SSD
// models' service-time range.
func LatencyBuckets() []float64 {
	bounds := make([]float64, 12)
	v := 50e-6
	for i := range bounds {
		bounds[i] = v
		v *= 2
	}
	return bounds
}

// ByteBuckets returns exponential bounds suited to data-movement sizes:
// 64 KiB to 4 GiB, quadrupling — matching the range from a single migration
// chunk up to a whole-object move.
func ByteBuckets() []float64 {
	bounds := make([]float64, 9)
	v := float64(64 << 10)
	for i := range bounds {
		bounds[i] = v
		v *= 4
	}
	return bounds
}

// Observe records one value. No-op on a nil histogram.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	i := sort.SearchFloat64s(h.bounds, v)
	if i < len(h.bounds) {
		h.counts[i].Add(1)
	} else {
		h.inf.Add(1)
	}
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Bucket is one histogram bucket in a snapshot: the count of observations at
// or below the upper bound (non-cumulative).
type Bucket struct {
	UpperBound float64 `json:"le"`
	Count      int64   `json:"count"`
}

// MarshalJSON renders the bucket, spelling the +Inf overflow bound as the
// string "+Inf" (JSON has no infinity literal).
func (b Bucket) MarshalJSON() ([]byte, error) {
	if math.IsInf(b.UpperBound, 1) {
		return json.Marshal(struct {
			Le    string `json:"le"`
			Count int64  `json:"count"`
		}{"+Inf", b.Count})
	}
	return json.Marshal(struct {
		Le    float64 `json:"le"`
		Count int64   `json:"count"`
	}{b.UpperBound, b.Count})
}

// HistogramSnapshot is a point-in-time copy of a histogram's state.
type HistogramSnapshot struct {
	Buckets []Bucket `json:"buckets"` // per-bucket (non-cumulative) counts; last bound is +Inf
	Count   int64    `json:"n"`
	Sum     float64  `json:"sum"`
}

// Mean returns the mean observation, or 0 with no observations.
func (s HistogramSnapshot) Mean() float64 {
	if s.Count == 0 {
		return 0
	}
	return s.Sum / float64(s.Count)
}

// Quantile returns an upper-bound estimate of the q-quantile (0 <= q <= 1):
// the bound of the bucket containing it. Returns +Inf when the quantile
// falls in the overflow bucket, 0 with no observations.
func (s HistogramSnapshot) Quantile(q float64) float64 {
	if s.Count == 0 {
		return 0
	}
	rank := int64(math.Ceil(q * float64(s.Count)))
	if rank < 1 {
		rank = 1
	}
	var acc int64
	for _, b := range s.Buckets {
		acc += b.Count
		if acc >= rank {
			return b.UpperBound
		}
	}
	return math.Inf(1)
}

// Snapshot copies the histogram's current state. On a nil histogram it
// returns a zero snapshot.
func (h *Histogram) Snapshot() HistogramSnapshot {
	if h == nil {
		return HistogramSnapshot{}
	}
	s := HistogramSnapshot{
		Buckets: make([]Bucket, len(h.bounds)+1),
		Count:   h.count.Load(),
		Sum:     math.Float64frombits(h.sumBits.Load()),
	}
	for i, b := range h.bounds {
		s.Buckets[i] = Bucket{UpperBound: b, Count: h.counts[i].Load()}
	}
	s.Buckets[len(h.bounds)] = Bucket{UpperBound: math.Inf(1), Count: h.inf.Load()}
	return s
}

// Registry is a named collection of metrics. The zero value is not usable;
// construct with NewRegistry. A nil *Registry is valid everywhere and
// disables collection: its accessors return nil metrics whose methods are
// no-ops.
type Registry struct {
	mu    sync.Mutex
	names []string // insertion order
	m     map[string]interface{}
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{m: map[string]interface{}{}}
}

// lookup returns the existing metric under name or registers the one built
// by mk.
func (r *Registry) lookup(name string, mk func() interface{}) interface{} {
	r.mu.Lock()
	defer r.mu.Unlock()
	if v, ok := r.m[name]; ok {
		return v
	}
	v := mk()
	r.m[name] = v
	r.names = append(r.names, name)
	return v
}

// Counter returns the counter registered under name, creating it on first
// use. Returns nil (a no-op counter) on a nil registry. Panics if the name
// is already registered as a different metric type.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	return r.lookup(name, func() interface{} { return &Counter{} }).(*Counter)
}

// Gauge returns the gauge registered under name, creating it on first use.
// Returns nil (a no-op gauge) on a nil registry.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	return r.lookup(name, func() interface{} { return &Gauge{} }).(*Gauge)
}

// Histogram returns the histogram registered under name, creating it with
// the given bounds on first use (later bounds are ignored). Returns nil (a
// no-op histogram) on a nil registry.
func (r *Registry) Histogram(name string, bounds []float64) *Histogram {
	if r == nil {
		return nil
	}
	return r.lookup(name, func() interface{} { return NewHistogram(bounds) }).(*Histogram)
}

// snapshot returns the registered names (sorted for stable output) and a
// copy of the metric map.
func (r *Registry) snapshot() ([]string, map[string]interface{}) {
	r.mu.Lock()
	defer r.mu.Unlock()
	names := make([]string, len(r.names))
	copy(names, r.names)
	sort.Strings(names)
	m := make(map[string]interface{}, len(r.m))
	for k, v := range r.m {
		m[k] = v
	}
	return names, m
}

// WriteProm renders the registry in the Prometheus text exposition format
// (version 0.0.4): a `# TYPE` line per metric family followed by its
// samples. Histograms emit cumulative `_bucket{le=...}` samples plus `_sum`
// and `_count`. A nil registry writes nothing.
func (r *Registry) WriteProm(w io.Writer) error {
	if r == nil {
		return nil
	}
	names, m := r.snapshot()
	typed := map[string]bool{} // families that already got a TYPE line
	for _, name := range names {
		fam := family(name)
		switch v := m[name].(type) {
		case *Counter:
			if !typed[fam] {
				typed[fam] = true
				if _, err := fmt.Fprintf(w, "# TYPE %s counter\n", fam); err != nil {
					return err
				}
			}
			if _, err := fmt.Fprintf(w, "%s %d\n", name, v.Value()); err != nil {
				return err
			}
		case *Gauge:
			if !typed[fam] {
				typed[fam] = true
				if _, err := fmt.Fprintf(w, "# TYPE %s gauge\n", fam); err != nil {
					return err
				}
			}
			if _, err := fmt.Fprintf(w, "%s %g\n", name, v.Value()); err != nil {
				return err
			}
		case *Histogram:
			if !typed[fam] {
				typed[fam] = true
				if _, err := fmt.Fprintf(w, "# TYPE %s histogram\n", fam); err != nil {
					return err
				}
			}
			if err := writePromHistogram(w, name, v.Snapshot()); err != nil {
				return err
			}
		case *Series:
			// A series exposes its most recent value as a gauge sample;
			// the sample history is served by WriteSeriesJSON (/series).
			if !typed[fam] {
				typed[fam] = true
				if _, err := fmt.Fprintf(w, "# TYPE %s gauge\n", fam); err != nil {
					return err
				}
			}
			last, _ := v.Last()
			if _, err := fmt.Fprintf(w, "%s %g\n", name, last.V); err != nil {
				return err
			}
		}
	}
	return nil
}

// writePromHistogram renders one histogram's samples. The le label is
// appended to any labels already baked into the name.
func writePromHistogram(w io.Writer, name string, s HistogramSnapshot) error {
	fam, labels := family(name), ""
	if i := strings.IndexByte(name, '{'); i >= 0 {
		labels = strings.TrimSuffix(name[i+1:], "}") + ","
	}
	var cum int64
	for _, b := range s.Buckets {
		cum += b.Count
		le := "+Inf"
		if !math.IsInf(b.UpperBound, 1) {
			le = formatFloat(b.UpperBound)
		}
		if _, err := fmt.Fprintf(w, "%s_bucket{%sle=%q} %d\n", fam, labels, le, cum); err != nil {
			return err
		}
	}
	suffix := ""
	if labels != "" {
		suffix = "{" + strings.TrimSuffix(labels, ",") + "}"
	}
	if _, err := fmt.Fprintf(w, "%s_sum%s %g\n", fam, suffix, s.Sum); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "%s_count%s %d\n", fam, suffix, s.Count)
	return err
}

func formatFloat(v float64) string { return fmt.Sprintf("%g", v) }

// WriteJSON renders the registry as one JSON object mapping metric names to
// values (counters and gauges) or histogram snapshots. A nil registry
// writes an empty object.
func (r *Registry) WriteJSON(w io.Writer) error {
	out := map[string]interface{}{}
	if r != nil {
		names, m := r.snapshot()
		for _, name := range names {
			switch v := m[name].(type) {
			case *Counter:
				out[name] = v.Value()
			case *Gauge:
				out[name] = v.Value()
			case *Histogram:
				out[name] = v.Snapshot()
			case *Series:
				out[name] = v.summary()
			}
		}
	}
	enc := json.NewEncoder(w)
	return enc.Encode(out)
}

// WriteSeriesJSON renders every registered series as one JSON object mapping
// series names to full snapshots including the retained sample windows —
// the payload behind the /series HTTP endpoint. A nil registry writes an
// empty object.
func (r *Registry) WriteSeriesJSON(w io.Writer) error {
	out := map[string]SeriesSnapshot{}
	if r != nil {
		names, m := r.snapshot()
		for _, name := range names {
			if s, ok := m[name].(*Series); ok {
				out[name] = s.Snapshot()
			}
		}
	}
	enc := json.NewEncoder(w)
	return enc.Encode(out)
}
