package obs

import (
	"math"
	"sync"
)

// DefaultSeriesCapacity is the ring capacity a Series gets when the caller
// passes a non-positive capacity: enough window for rate and EWMA reductions
// over the recent past without unbounded growth on long runs.
const DefaultSeriesCapacity = 256

// ewmaAlpha is the smoothing factor of the exponentially-weighted moving
// average every Series maintains: each new sample contributes a quarter of
// the updated average, so the EWMA tracks roughly the last ~8 samples.
const ewmaAlpha = 0.25

// Sample is one timestamped observation of a Series. T is in the recording
// clock's units (simulated seconds for replay series, wall seconds
// otherwise); V is the observed value.
type Sample struct {
	T float64 `json:"t"`
	V float64 `json:"v"`
}

// Series is a fixed-capacity windowed time series: a ring buffer of
// timestamped samples plus streaming reductions (EWMA, total count). Once
// the ring is full the oldest sample is dropped, so a Series holds a sliding
// window over the most recent observations — the raw material for the
// rate/min/max/mean reductions its Snapshot exposes.
//
// A Series follows the package's nil contract: every method on a nil *Series
// is a no-op (or returns a zero value), so instrumented code records
// unconditionally. All methods are safe for concurrent use.
type Series struct {
	mu      sync.Mutex
	samples []Sample // ring storage
	head    int      // index of the oldest sample
	n       int      // live samples in the ring
	count   int64    // samples ever recorded
	ewma    float64
}

// NewSeries returns an empty series retaining up to capacity samples
// (DefaultSeriesCapacity when capacity <= 0).
func NewSeries(capacity int) *Series {
	if capacity <= 0 {
		capacity = DefaultSeriesCapacity
	}
	return &Series{samples: make([]Sample, capacity)}
}

// Record appends one observation. Timestamps are expected to be
// non-decreasing; the series stores what it is given and the window
// reductions assume monotone time. No-op on a nil series.
func (s *Series) Record(t, v float64) {
	if s == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	i := (s.head + s.n) % len(s.samples)
	s.samples[i] = Sample{T: t, V: v}
	if s.n < len(s.samples) {
		s.n++
	} else {
		s.head = (s.head + 1) % len(s.samples)
	}
	if s.count == 0 {
		s.ewma = v
	} else {
		s.ewma += ewmaAlpha * (v - s.ewma)
	}
	s.count++
}

// Len returns the number of samples currently retained (0 on nil).
func (s *Series) Len() int {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.n
}

// Last returns the most recent sample, reporting ok=false when the series is
// empty or nil.
func (s *Series) Last() (Sample, bool) {
	if s == nil {
		return Sample{}, false
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.n == 0 {
		return Sample{}, false
	}
	return s.samples[(s.head+s.n-1)%len(s.samples)], true
}

// EWMA returns the exponentially-weighted moving average of all recorded
// values (0 on an empty or nil series).
func (s *Series) EWMA() float64 {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.ewma
}

// Rate returns the average change per time unit across the retained window:
// (last.V - first.V) / (last.T - first.T). For a series recording a
// cumulative quantity (bytes copied, requests issued) this is the recent
// throughput. It returns 0 with fewer than two samples or a zero time span.
func (s *Series) Rate() float64 {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return rate(s.windowLocked())
}

// windowLocked returns the oldest and newest samples. Callers hold s.mu and
// have checked nothing when n == 0 (both returns are zero samples).
func (s *Series) windowLocked() (first, last Sample) {
	if s.n == 0 {
		return Sample{}, Sample{}
	}
	first = s.samples[s.head]
	last = s.samples[(s.head+s.n-1)%len(s.samples)]
	return first, last
}

func rate(first, last Sample) float64 {
	if dt := last.T - first.T; dt > 0 {
		return (last.V - first.V) / dt
	}
	return 0
}

// SeriesSnapshot is a point-in-time copy of a series: the retained samples
// (omitted from the compact summaries WriteJSON emits) plus the window
// reductions.
type SeriesSnapshot struct {
	Samples []Sample `json:"samples,omitempty"`
	Count   int64    `json:"count"` // samples ever recorded
	First   Sample   `json:"first"`
	Last    Sample   `json:"last"`
	Min     float64  `json:"min"`
	Max     float64  `json:"max"`
	Mean    float64  `json:"mean"`
	Rate    float64  `json:"rate"` // (last-first)/(lastT-firstT) over the window
	EWMA    float64  `json:"ewma"`
}

// Snapshot copies the series state, including the retained samples in
// chronological order. On a nil or empty series it returns a zero snapshot.
func (s *Series) Snapshot() SeriesSnapshot {
	if s == nil {
		return SeriesSnapshot{}
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.n == 0 {
		return SeriesSnapshot{}
	}
	out := SeriesSnapshot{
		Samples: make([]Sample, s.n),
		Count:   s.count,
		Min:     math.Inf(1),
		Max:     math.Inf(-1),
		EWMA:    s.ewma,
	}
	var sum float64
	for i := 0; i < s.n; i++ {
		sm := s.samples[(s.head+i)%len(s.samples)]
		out.Samples[i] = sm
		sum += sm.V
		if sm.V < out.Min {
			out.Min = sm.V
		}
		if sm.V > out.Max {
			out.Max = sm.V
		}
	}
	out.First, out.Last = out.Samples[0], out.Samples[s.n-1]
	out.Mean = sum / float64(s.n)
	out.Rate = rate(out.First, out.Last)
	return out
}

// summary returns the snapshot without the sample payload, the form
// WriteJSON embeds.
func (s *Series) summary() SeriesSnapshot {
	snap := s.Snapshot()
	snap.Samples = nil
	return snap
}

// Series returns the series registered under name, creating it with the
// given ring capacity on first use (later capacities are ignored;
// non-positive selects DefaultSeriesCapacity). Returns nil (a no-op series)
// on a nil registry. Series render as gauges of their last value in the
// Prometheus exposition, as reduction summaries in WriteJSON, and with full
// sample payloads in WriteSeriesJSON (the /series endpoint).
func (r *Registry) Series(name string, capacity int) *Series {
	if r == nil {
		return nil
	}
	return r.lookup(name, func() interface{} { return NewSeries(capacity) }).(*Series)
}
