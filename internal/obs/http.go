package obs

import (
	"net"
	"net/http"
	"net/http/pprof"
)

// NewHandler returns an http.Handler exposing the registry:
//
//	/metrics       Prometheus text exposition (version 0.0.4)
//	/metrics.json  the same data as a single JSON object
//	/series        every registered series with its full sample window
//	/debug/pprof/  the standard runtime profiles
//
// The handler is safe under concurrent scrapes while the process is actively
// recording: registry reads snapshot under the registry mutex and metric
// reads are atomic. A nil registry serves empty expositions, so the endpoint
// can be mounted unconditionally.
func NewHandler(reg *Registry) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = reg.WriteProm(w)
	})
	mux.HandleFunc("/metrics.json", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		_ = reg.WriteJSON(w)
	})
	mux.HandleFunc("/series", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		_ = reg.WriteSeriesJSON(w)
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// Serve starts the exposition endpoint on addr (e.g. "localhost:0") in a
// background goroutine and returns the server plus the bound address —
// useful when addr requests an ephemeral port. The caller owns shutdown
// (srv.Shutdown or srv.Close).
func Serve(addr string, reg *Registry) (*http.Server, string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, "", err
	}
	srv := &http.Server{Handler: NewHandler(reg)}
	go func() { _ = srv.Serve(ln) }()
	return srv, ln.Addr().String(), nil
}
