package obs

import (
	"context"
	"net"
	"net/http"
	"net/http/pprof"
	"time"
)

// NewHandler returns an http.Handler exposing the registry:
//
//	/metrics       Prometheus text exposition (version 0.0.4)
//	/metrics.json  the same data as a single JSON object
//	/series        every registered series with its full sample window
//	/debug/pprof/  the standard runtime profiles
//
// The handler is safe under concurrent scrapes while the process is actively
// recording: registry reads snapshot under the registry mutex and metric
// reads are atomic. A nil registry serves empty expositions, so the endpoint
// can be mounted unconditionally.
func NewHandler(reg *Registry) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = reg.WriteProm(w)
	})
	mux.HandleFunc("/metrics.json", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		_ = reg.WriteJSON(w)
	})
	mux.HandleFunc("/series", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		_ = reg.WriteSeriesJSON(w)
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// Server timeout policy shared by every HTTP endpoint in the repo (the obs
// exposition and advisord). ReadHeaderTimeout alone is what protects the
// listener from slow-loris clients; without it one client trickling header
// bytes pins a connection (and its goroutine) forever. The profiling
// endpoints stream for up to 30s (?seconds=N), so there is deliberately no
// WriteTimeout here — a scrape that hangs on write is bounded by
// IdleTimeout once the kernel buffer fills.
const (
	ReadHeaderTimeout = 5 * time.Second
	ReadTimeout       = 30 * time.Second
	IdleTimeout       = 2 * time.Minute
)

// NewServer wraps h in an http.Server carrying the repo's standard
// timeouts.
func NewServer(h http.Handler) *http.Server {
	return &http.Server{
		Handler:           h,
		ReadHeaderTimeout: ReadHeaderTimeout,
		ReadTimeout:       ReadTimeout,
		IdleTimeout:       IdleTimeout,
	}
}

// Serve starts the exposition endpoint on addr (e.g. "localhost:0") in a
// background goroutine and returns the server plus the bound address —
// useful when addr requests an ephemeral port. The caller owns shutdown
// (srv.Shutdown or srv.Close).
func Serve(addr string, reg *Registry) (*http.Server, string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, "", err
	}
	srv := NewServer(NewHandler(reg))
	go func() { _ = srv.Serve(ln) }()
	return srv, ln.Addr().String(), nil
}

// Shutdown gracefully drains srv, falling back to a hard Close when in-
// flight requests do not finish within the grace period. Nil-safe.
func Shutdown(srv *http.Server, grace time.Duration) error {
	if srv == nil {
		return nil
	}
	ctx, cancel := context.WithTimeout(context.Background(), grace)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		return srv.Close()
	}
	return nil
}
