package obs

import (
	"flag"
	"fmt"
	"io"
	"log/slog"
	"os"
	"runtime"
	"runtime/pprof"
)

// CLI bundles the standard observability command-line flags shared by the
// repo's commands: logging verbosity, solver trace output, metrics output,
// and CPU/heap profiles. Register the flags, parse, then Start a Session.
type CLI struct {
	Verbose    bool
	LogLevel   string
	TraceOut   string
	MetricsOut string
	CPUProfile string
	MemProfile string
}

// Register declares the flags on fs (use flag.CommandLine for a command).
func (c *CLI) Register(fs *flag.FlagSet) {
	fs.BoolVar(&c.Verbose, "v", false, "verbose logging (shorthand for -log-level debug)")
	fs.StringVar(&c.LogLevel, "log-level", "", "log level: debug, info, warn, error (default: logging off)")
	fs.StringVar(&c.TraceOut, "trace-out", "", "write per-iteration solver trace as JSON lines to this file")
	fs.StringVar(&c.MetricsOut, "metrics-out", "", "write collected metrics in Prometheus text format to this file")
	fs.StringVar(&c.CPUProfile, "cpuprofile", "", "write a CPU profile to this file")
	fs.StringVar(&c.MemProfile, "memprofile", "", "write a heap profile to this file at exit")
}

// Session is the running observability state behind a CLI's flags. Zero-value
// fields mean the corresponding flag was not set; Logger and Trace are nil
// (disabled) unless requested, so the instrumented code's no-op paths apply.
type Session struct {
	// Logger is non-nil when -v or -log-level was given.
	Logger *slog.Logger
	// Registry is non-nil when -metrics-out was given.
	Registry *Registry
	// Trace is non-nil when -trace-out was given; it streams one JSON
	// object per call to the trace file.
	Trace *JSONL

	cli       *CLI
	traceFile *os.File
	cpuFile   *os.File
}

// Start opens the outputs the flags request. Call Close when the command is
// done (it writes the metrics and heap-profile files).
func (c *CLI) Start(logDst io.Writer) (*Session, error) {
	s := &Session{cli: c, Registry: nil}
	level := c.LogLevel
	if c.Verbose && level == "" {
		level = "debug"
	}
	if level != "" {
		var lv slog.Level
		if err := lv.UnmarshalText([]byte(level)); err != nil {
			return nil, fmt.Errorf("bad -log-level %q: %w", level, err)
		}
		s.Logger = slog.New(slog.NewTextHandler(logDst, &slog.HandlerOptions{Level: lv}))
	}
	if c.MetricsOut != "" {
		s.Registry = NewRegistry()
	}
	if c.TraceOut != "" {
		f, err := os.Create(c.TraceOut)
		if err != nil {
			return nil, err
		}
		s.traceFile = f
		s.Trace = NewJSONL(f)
	}
	if c.CPUProfile != "" {
		f, err := os.Create(c.CPUProfile)
		if err != nil {
			s.Close()
			return nil, err
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			s.Close()
			return nil, err
		}
		s.cpuFile = f
	}
	return s, nil
}

// Close flushes and closes every output the session opened: it stops the CPU
// profile, writes the heap profile and the metrics file, and closes the trace
// stream. The first error encountered is returned.
func (s *Session) Close() error {
	var first error
	keep := func(err error) {
		if err != nil && first == nil {
			first = err
		}
	}
	if s.cpuFile != nil {
		pprof.StopCPUProfile()
		keep(s.cpuFile.Close())
		s.cpuFile = nil
	}
	if s.cli.MemProfile != "" {
		f, err := os.Create(s.cli.MemProfile)
		if err != nil {
			keep(err)
		} else {
			runtime.GC()
			keep(pprof.WriteHeapProfile(f))
			keep(f.Close())
		}
		s.cli.MemProfile = ""
	}
	if s.Registry != nil && s.cli.MetricsOut != "" {
		f, err := os.Create(s.cli.MetricsOut)
		if err != nil {
			keep(err)
		} else {
			keep(s.Registry.WriteProm(f))
			keep(f.Close())
		}
		s.cli.MetricsOut = ""
	}
	if s.traceFile != nil {
		keep(s.Trace.Err())
		keep(s.traceFile.Close())
		s.traceFile = nil
	}
	return first
}
