package obs

import (
	"flag"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"runtime/pprof"
	"syscall"
	"time"
)

// CLI bundles the standard observability command-line flags shared by the
// repo's commands: logging verbosity, solver trace output, metrics output,
// the live exposition endpoint, and CPU/heap profiles. Register the flags,
// parse, then Start a Session.
type CLI struct {
	Verbose      bool
	LogLevel     string
	TraceOut     string
	MetricsOut   string
	MetricsFlush time.Duration
	Listen       string
	ListenHold   time.Duration
	CPUProfile   string
	MemProfile   string
}

// Register declares the flags on fs (use flag.CommandLine for a command).
func (c *CLI) Register(fs *flag.FlagSet) {
	fs.BoolVar(&c.Verbose, "v", false, "verbose logging (shorthand for -log-level debug)")
	fs.StringVar(&c.LogLevel, "log-level", "", "log level: debug, info, warn, error (default: logging off)")
	fs.StringVar(&c.TraceOut, "trace-out", "", "write per-iteration solver trace as JSON lines to this file")
	fs.StringVar(&c.MetricsOut, "metrics-out", "", "write collected metrics in Prometheus text format to this file")
	fs.DurationVar(&c.MetricsFlush, "metrics-flush", 0, "also rewrite -metrics-out at this interval (default: only at exit)")
	fs.StringVar(&c.Listen, "listen", "", "serve /metrics, /metrics.json, /series and /debug/pprof on this address (e.g. localhost:6060)")
	fs.DurationVar(&c.ListenHold, "listen-hold", 0, "keep the -listen endpoint up this long after the command finishes")
	fs.StringVar(&c.CPUProfile, "cpuprofile", "", "write a CPU profile to this file")
	fs.StringVar(&c.MemProfile, "memprofile", "", "write a heap profile to this file at exit")
}

// Session is the running observability state behind a CLI's flags. Zero-value
// fields mean the corresponding flag was not set; Logger and Trace are nil
// (disabled) unless requested, so the instrumented code's no-op paths apply.
type Session struct {
	// Logger is non-nil when -v or -log-level was given.
	Logger *slog.Logger
	// Registry is non-nil when -metrics-out or -listen was given.
	Registry *Registry
	// Trace is non-nil when -trace-out was given; it streams one JSON
	// object per call to the trace file.
	Trace *JSONL
	// Addr is the bound address of the -listen endpoint ("" when not
	// listening); it differs from the flag when an ephemeral port (":0")
	// was requested.
	Addr string

	cli       *CLI
	traceFile *os.File
	cpuFile   *os.File
	server    *http.Server
	sig       chan os.Signal
	flushStop chan struct{}
	flushDone chan struct{}
}

// Start opens the outputs the flags request. Call Close when the command is
// done (it writes the metrics and heap-profile files).
func (c *CLI) Start(logDst io.Writer) (*Session, error) {
	s := &Session{cli: c}
	level := c.LogLevel
	if c.Verbose && level == "" {
		level = "debug"
	}
	if level != "" {
		var lv slog.Level
		if err := lv.UnmarshalText([]byte(level)); err != nil {
			return nil, fmt.Errorf("bad -log-level %q: %w", level, err)
		}
		s.Logger = slog.New(slog.NewTextHandler(logDst, &slog.HandlerOptions{Level: lv}))
	}
	if c.MetricsOut != "" || c.Listen != "" {
		s.Registry = NewRegistry()
	}
	if c.TraceOut != "" {
		f, err := os.Create(c.TraceOut)
		if err != nil {
			return nil, err
		}
		s.traceFile = f
		s.Trace = NewJSONL(f)
	}
	if c.Listen != "" {
		srv, addr, err := Serve(c.Listen, s.Registry)
		if err != nil {
			s.Close()
			return nil, fmt.Errorf("-listen %s: %w", c.Listen, err)
		}
		s.server, s.Addr = srv, addr
		if s.Logger != nil {
			s.Logger.Info("serving metrics", "addr", s.Addr)
		}
	}
	if c.MetricsOut != "" || c.Listen != "" {
		// A killed run should still leave a usable metrics file and not
		// sever in-flight scrapes: flush and gracefully drain the listener
		// on SIGINT/SIGTERM, then restore the default disposition and
		// re-deliver the signal so the process dies as it would have.
		// The goroutines capture the channels and server locally: Close
		// nils the Session fields, and the fields must not be read
		// concurrently.
		sig := make(chan os.Signal, 1)
		s.sig = sig
		srv := s.server
		signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
		go func() {
			got, ok := <-sig
			if !ok {
				return
			}
			s.flushMetrics()
			_ = Shutdown(srv, 2*time.Second)
			signal.Stop(sig)
			if p, err := os.FindProcess(os.Getpid()); err == nil {
				_ = p.Signal(got)
			}
		}()
	}
	if c.MetricsOut != "" {
		if c.MetricsFlush > 0 {
			stop, done := make(chan struct{}), make(chan struct{})
			s.flushStop, s.flushDone = stop, done
			go func() {
				defer close(done)
				t := time.NewTicker(c.MetricsFlush)
				defer t.Stop()
				for {
					select {
					case <-t.C:
						s.flushMetrics()
					case <-stop:
						return
					}
				}
			}()
		}
	}
	if c.CPUProfile != "" {
		f, err := os.Create(c.CPUProfile)
		if err != nil {
			s.Close()
			return nil, err
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			s.Close()
			return nil, err
		}
		s.cpuFile = f
	}
	return s, nil
}

// flushMetrics atomically rewrites the -metrics-out file: the exposition is
// written to a sibling temp file and renamed into place, so a reader (or a
// kill arriving mid-write) never sees a torn file. Safe to call concurrently
// from the ticker, the signal handler, and Close — the registry serializes
// reads and rename is atomic.
func (s *Session) flushMetrics() error {
	out := s.cli.MetricsOut
	if s.Registry == nil || out == "" {
		return nil
	}
	tmp := out + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	err = s.Registry.WriteProm(f)
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		os.Remove(tmp)
		return err
	}
	return os.Rename(tmp, out)
}

// Close flushes and closes every output the session opened: it stops the CPU
// profile, writes the heap profile and the metrics file, holds the -listen
// endpoint open for -listen-hold, and closes the trace stream. The first
// error encountered is returned.
func (s *Session) Close() error {
	var first error
	keep := func(err error) {
		if err != nil && first == nil {
			first = err
		}
	}
	if s.cpuFile != nil {
		pprof.StopCPUProfile()
		keep(s.cpuFile.Close())
		s.cpuFile = nil
	}
	if s.flushStop != nil {
		close(s.flushStop)
		<-s.flushDone
		s.flushStop = nil
	}
	if s.sig != nil {
		signal.Stop(s.sig)
		close(s.sig)
		s.sig = nil
	}
	if s.cli.MemProfile != "" {
		f, err := os.Create(s.cli.MemProfile)
		if err != nil {
			keep(err)
		} else {
			runtime.GC()
			keep(pprof.WriteHeapProfile(f))
			keep(f.Close())
		}
		s.cli.MemProfile = ""
	}
	// flushMetrics is idempotent, so a double Close just rewrites the same
	// file; the path is never cleared because the signal goroutine may
	// still be reading it.
	keep(s.flushMetrics())
	if s.server != nil {
		if s.cli.ListenHold > 0 {
			time.Sleep(s.cli.ListenHold)
		}
		keep(Shutdown(s.server, 2*time.Second))
		s.server = nil
	}
	if s.traceFile != nil {
		keep(s.Trace.Err())
		keep(s.traceFile.Close())
		s.traceFile = nil
	}
	return first
}
