package obs

import (
	"bytes"
	"encoding/json"
	"math"
	"strings"
	"sync"
	"testing"
)

func TestHistogramBucketEdges(t *testing.T) {
	h := NewHistogram([]float64{1, 2, 4})
	// le semantics: a value exactly on a bound belongs to that bucket.
	h.Observe(1)   // bucket le=1
	h.Observe(1.5) // bucket le=2
	h.Observe(2)   // bucket le=2
	h.Observe(4)   // bucket le=4
	h.Observe(4.1) // +Inf
	s := h.Snapshot()
	want := []int64{1, 2, 1, 1}
	for i, b := range s.Buckets {
		if b.Count != want[i] {
			t.Fatalf("bucket %d (le=%g) count = %d, want %d", i, b.UpperBound, b.Count, want[i])
		}
	}
	if s.Count != 5 {
		t.Fatalf("count = %d, want 5", s.Count)
	}
	if got := s.Sum; math.Abs(got-12.6) > 1e-9 {
		t.Fatalf("sum = %g, want 12.6", got)
	}
	if !math.IsInf(s.Buckets[3].UpperBound, 1) {
		t.Fatal("last bucket bound is not +Inf")
	}
	if got := s.Mean(); math.Abs(got-12.6/5) > 1e-9 {
		t.Fatalf("mean = %g", got)
	}
	if q := s.Quantile(0.5); q != 2 {
		t.Fatalf("p50 = %g, want 2", q)
	}
	if q := s.Quantile(1); !math.IsInf(q, 1) {
		t.Fatalf("p100 = %g, want +Inf", q)
	}
}

func TestHistogramBadBoundsPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("non-increasing bounds accepted")
		}
	}()
	NewHistogram([]float64{1, 1})
}

// TestWritePromGolden pins the exact Prometheus text exposition output.
func TestWritePromGolden(t *testing.T) {
	r := NewRegistry()
	r.Counter("solver_iters_total").Add(42)
	r.Gauge(Name("device_utilization", "device", "disk0")).Set(0.75)
	r.Gauge(Name("device_utilization", "device", "ssd0")).Set(0.25)
	h := r.Histogram(Name("latency_seconds", "object", "ORDERS"), []float64{0.001, 0.01})
	h.Observe(0.0005)
	h.Observe(0.005)
	h.Observe(5)

	var buf bytes.Buffer
	if err := r.WriteProm(&buf); err != nil {
		t.Fatal(err)
	}
	want := `# TYPE device_utilization gauge
device_utilization{device="disk0"} 0.75
device_utilization{device="ssd0"} 0.25
# TYPE latency_seconds histogram
latency_seconds_bucket{object="ORDERS",le="0.001"} 1
latency_seconds_bucket{object="ORDERS",le="0.01"} 2
latency_seconds_bucket{object="ORDERS",le="+Inf"} 3
latency_seconds_sum{object="ORDERS"} 5.0055
latency_seconds_count{object="ORDERS"} 3
# TYPE solver_iters_total counter
solver_iters_total 42
`
	if got := buf.String(); got != want {
		t.Fatalf("Prometheus output mismatch:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

func TestWriteJSONRoundTrip(t *testing.T) {
	r := NewRegistry()
	r.Counter("a_total").Add(7)
	r.Gauge("b").Set(1.5)
	r.Histogram("c", []float64{1}).Observe(0.5)

	var buf bytes.Buffer
	if err := r.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var out map[string]json.RawMessage
	if err := json.Unmarshal(buf.Bytes(), &out); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, buf.String())
	}
	for _, k := range []string{"a_total", "b", "c"} {
		if _, ok := out[k]; !ok {
			t.Fatalf("missing key %q in %s", k, buf.String())
		}
	}
}

func TestConcurrentCounters(t *testing.T) {
	r := NewRegistry()
	const workers, perWorker = 8, 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c := r.Counter("hits_total")
			g := r.Gauge("level")
			h := r.Histogram("lat", LatencyBuckets())
			for i := 0; i < perWorker; i++ {
				c.Inc()
				g.Add(1)
				h.Observe(1e-4)
			}
		}()
	}
	wg.Wait()
	if got := r.Counter("hits_total").Value(); got != workers*perWorker {
		t.Fatalf("counter = %d, want %d", got, workers*perWorker)
	}
	if got := r.Gauge("level").Value(); got != workers*perWorker {
		t.Fatalf("gauge = %g, want %d", got, workers*perWorker)
	}
	if got := r.Histogram("lat", nil).Snapshot().Count; got != workers*perWorker {
		t.Fatalf("histogram count = %d, want %d", got, workers*perWorker)
	}
}

// TestNilRegistryNoOps verifies the zero-overhead-when-disabled contract:
// every path through a nil registry and nil metrics must be safe.
func TestNilRegistryNoOps(t *testing.T) {
	var r *Registry
	r.Counter("x").Inc()
	r.Counter("x").Add(5)
	r.Gauge("y").Set(1)
	r.Gauge("y").Add(1)
	r.Histogram("z", []float64{1}).Observe(2)
	if r.Counter("x").Value() != 0 || r.Gauge("y").Value() != 0 {
		t.Fatal("nil metrics returned non-zero values")
	}
	if s := r.Histogram("z", nil).Snapshot(); s.Count != 0 {
		t.Fatal("nil histogram snapshot non-empty")
	}
	var buf bytes.Buffer
	if err := r.WriteProm(&buf); err != nil || buf.Len() != 0 {
		t.Fatalf("nil WriteProm: err=%v out=%q", err, buf.String())
	}
	if err := r.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var j *JSONL
	if err := j.Write(map[string]int{"a": 1}); err != nil {
		t.Fatal(err)
	}
	if err := j.Err(); err != nil {
		t.Fatal(err)
	}
}

func TestJSONLLines(t *testing.T) {
	var buf bytes.Buffer
	j := NewJSONL(&buf)
	for i := 0; i < 3; i++ {
		if err := j.Write(map[string]int{"iter": i}); err != nil {
			t.Fatal(err)
		}
	}
	lines := strings.Split(strings.TrimRight(buf.String(), "\n"), "\n")
	if len(lines) != 3 {
		t.Fatalf("got %d lines, want 3", len(lines))
	}
	for i, line := range lines {
		var v map[string]int
		if err := json.Unmarshal([]byte(line), &v); err != nil {
			t.Fatalf("line %d not valid JSON: %v", i, err)
		}
		if v["iter"] != i {
			t.Fatalf("line %d = %v", i, v)
		}
	}
}

func TestNameComposition(t *testing.T) {
	if got := Name("m_total"); got != "m_total" {
		t.Fatalf("Name no labels = %q", got)
	}
	if got := Name("m_total", "a", "1", "b", "x\ny"); got != `m_total{a="1",b="x\ny"}` {
		t.Fatalf("Name = %q", got)
	}
}

// TestEscapeLabelValue pins the Prometheus text-format escaping rules: only
// backslash, double quote and newline are escaped, and nothing else — %q-style
// escapes (\t, \xNN, ሴ) are format violations scrapers reject.
func TestEscapeLabelValue(t *testing.T) {
	cases := map[string]string{
		"plain":        "plain",
		`disk\0`:       `disk\\0`,
		`say "hi"`:     `say \"hi\"`,
		"two\nlines":   `two\nlines`,
		"tab\tstays":   "tab\tstays",
		"utf8 διπλό":   "utf8 διπλό",
		`a\"b` + "\nc": `a\\\"b\nc`,
	}
	for in, want := range cases {
		if got := EscapeLabelValue(in); got != want {
			t.Errorf("EscapeLabelValue(%q) = %q, want %q", in, got, want)
		}
	}
	// End-to-end through Name: a hostile device name yields a valid
	// exposition line.
	name := Name("m_total", "device", "disk\"0\\a\nb")
	if want := `m_total{device="disk\"0\\a\nb"}`; name != want {
		t.Errorf("Name = %q, want %q", name, want)
	}
}

// TestQuantileMeanEdgeCases covers the histogram snapshot reductions at the
// boundaries: no data, one bucket, all mass in overflow, and q=0/q=1.
func TestQuantileMeanEdgeCases(t *testing.T) {
	empty := NewHistogram([]float64{1, 2}).Snapshot()
	if got := empty.Mean(); got != 0 {
		t.Errorf("empty mean = %g, want 0", got)
	}
	for _, q := range []float64{0, 0.5, 1} {
		if got := empty.Quantile(q); got != 0 {
			t.Errorf("empty q%g = %g, want 0", q, got)
		}
	}

	single := NewHistogram([]float64{10})
	single.Observe(3)
	single.Observe(7)
	s := single.Snapshot()
	if got := s.Mean(); got != 5 {
		t.Errorf("single-bucket mean = %g, want 5", got)
	}
	// Every quantile of a single-bucket histogram is that bucket's bound;
	// q=0 clamps its rank to the first observation rather than 0.
	for _, q := range []float64{0, 0.5, 1} {
		if got := s.Quantile(q); got != 10 {
			t.Errorf("single-bucket q%g = %g, want 10", q, got)
		}
	}

	over := NewHistogram([]float64{1})
	over.Observe(5)
	over.Observe(9)
	s = over.Snapshot()
	if got := s.Mean(); got != 7 {
		t.Errorf("overflow mean = %g, want 7", got)
	}
	for _, q := range []float64{0, 0.5, 1} {
		if got := s.Quantile(q); !math.IsInf(got, 1) {
			t.Errorf("all-overflow q%g = %g, want +Inf", q, got)
		}
	}

	mixed := NewHistogram([]float64{1, 2})
	mixed.Observe(0.5) // le=1
	mixed.Observe(1.5) // le=2
	mixed.Observe(1.7) // le=2
	mixed.Observe(9)   // +Inf
	s = mixed.Snapshot()
	if got := s.Quantile(0); got != 1 {
		t.Errorf("q0 = %g, want 1 (first bucket)", got)
	}
	if got := s.Quantile(1); !math.IsInf(got, 1) {
		t.Errorf("q1 = %g, want +Inf (last observation)", got)
	}
	if got := s.Quantile(0.75); got != 2 {
		t.Errorf("q0.75 = %g, want 2", got)
	}
}

func TestBucketHelpersAreValidBounds(t *testing.T) {
	for name, bounds := range map[string][]float64{
		"latency": LatencyBuckets(),
		"bytes":   ByteBuckets(),
	} {
		if len(bounds) == 0 {
			t.Fatalf("%s buckets empty", name)
		}
		// NewHistogram panics on non-increasing bounds; surviving this
		// call is the contract.
		h := NewHistogram(bounds)
		h.Observe(bounds[0])
		h.Observe(2 * bounds[len(bounds)-1])
		if got := h.Snapshot().Count; got != 2 {
			t.Fatalf("%s: count = %d, want 2", name, got)
		}
	}
}
