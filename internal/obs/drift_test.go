package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

func observeN(d *Detector, signal string, start int64, t0 float64, values ...float64) []*DriftEvent {
	var fired []*DriftEvent
	for i, v := range values {
		if ev := d.Observe(signal, start+int64(i), t0+float64(i), v); ev != nil {
			fired = append(fired, ev)
		}
	}
	return fired
}

func TestDetectorHysteresis(t *testing.T) {
	d := NewDetector(DriftConfig{Threshold: 0.5, Trigger: 2, Clear: 2}, nil, nil, nil)

	// One noisy window must not fire.
	if ev := d.Observe("s", 0, 0, 0.9); ev != nil {
		t.Fatalf("fired after a single drifted window: %+v", ev)
	}
	// Back to calm resets the run.
	d.Observe("s", 1, 1, 0.1)
	d.Observe("s", 2, 2, 0.9)
	if ev := d.Observe("s", 3, 3, -0.8); ev == nil {
		t.Fatal("two consecutive drifted windows did not fire")
	} else if ev.Window != 3 || ev.Consecutive != 2 || ev.Value != -0.8 {
		t.Fatalf("event = %+v", ev)
	}
	// Fired and disarmed: further drifted windows stay silent.
	if fired := observeN(d, "s", 4, 4, 0.9, 0.9, 0.9); len(fired) != 0 {
		t.Fatalf("disarmed detector fired %d more times", len(fired))
	}
	// Clear consecutive calm windows re-arm it.
	d.Observe("s", 7, 7, 0.1)
	d.Observe("s", 8, 8, 0.1)
	if fired := observeN(d, "s", 9, 9, 0.9, 0.9); len(fired) != 1 {
		t.Fatalf("re-armed detector fired %d times, want 1", len(fired))
	}
	if got := len(d.Events()); got != 2 {
		t.Fatalf("total events = %d, want 2", got)
	}
}

func TestDetectorMinInterval(t *testing.T) {
	d := NewDetector(DriftConfig{Threshold: 0.5, Trigger: 1, Clear: 1, MinInterval: 10}, nil, nil, nil)
	if ev := d.Observe("s", 0, 0, 1); ev == nil {
		t.Fatal("trigger=1 did not fire on the first drifted window")
	}
	// Re-armed by a calm window, but still inside the rate-limit interval.
	d.Observe("s", 1, 1, 0)
	if ev := d.Observe("s", 2, 2, 1); ev != nil {
		t.Fatalf("fired inside MinInterval: %+v", ev)
	}
	d.Observe("s", 3, 5, 0)
	if ev := d.Observe("s", 4, 11, 1); ev == nil {
		t.Fatal("did not fire after MinInterval elapsed")
	}
}

// TestDetectorSustainedDriftRefires pins the re-arm/MinInterval interaction:
// drift that never goes calm cannot accumulate Clear calm windows, so with a
// rate limit configured the signal must re-arm on the limit alone and keep
// firing at the MinInterval cadence. (Before the fix, a fired signal under
// sustained drift went silent forever and MinInterval was unreachable.)
func TestDetectorSustainedDriftRefires(t *testing.T) {
	d := NewDetector(DriftConfig{Threshold: 0.5, Trigger: 2, Clear: 2, MinInterval: 5}, nil, nil, nil)
	fired := observeN(d, "s", 0, 0, 0.9, 0.9, 0.9, 0.9, 0.9, 0.9, 0.9, 0.9, 0.9, 0.9, 0.9, 0.9)
	if len(fired) != 3 {
		t.Fatalf("sustained drift over 12 windows fired %d times, want 3 (t=1, 6, 11)", len(fired))
	}
	for i, want := range []float64{1, 6, 11} {
		if fired[i].Time != want {
			t.Fatalf("event %d fired at t=%g, want %g", i, fired[i].Time, want)
		}
	}
}

// TestDetectorRefireAfterPartialCalm: drift returning mid-way through the
// calm-window countdown resets the countdown; with a rate limit the signal
// still re-fires once the interval elapses, with fresh Trigger hysteresis.
func TestDetectorRefireAfterPartialCalm(t *testing.T) {
	d := NewDetector(DriftConfig{Threshold: 0.5, Trigger: 2, Clear: 3, MinInterval: 4}, nil, nil, nil)
	if fired := observeN(d, "s", 0, 0, 0.9, 0.9); len(fired) != 1 {
		t.Fatalf("initial drift fired %d times", len(fired))
	}
	// One calm window (countdown 1 of 3), then drift returns: the calm
	// countdown resets and never completes, so only the rate limit can
	// re-arm. It elapses at t=5 (lastFired=1 + MinInterval 4) with the new
	// drift run already past Trigger → exactly one refire, at t=5.
	d.Observe("s", 2, 2, 0.1)
	fired := observeN(d, "s", 3, 3, 0.9, 0.9, 0.9, 0.9)
	if len(fired) != 1 {
		t.Fatalf("drift during calm countdown refired %d times, want 1", len(fired))
	}
	if ev := fired[0]; ev.Time != 5 || ev.Consecutive != 3 {
		t.Fatalf("refire event = %+v, want t=5 with 3 consecutive", ev)
	}
}

// TestDetectorNoRateLimitKeepsPureHysteresis: with MinInterval zero the
// original contract stands — once fired, only Clear calm windows re-arm.
func TestDetectorNoRateLimitKeepsPureHysteresis(t *testing.T) {
	d := NewDetector(DriftConfig{Threshold: 0.5, Trigger: 1, Clear: 2}, nil, nil, nil)
	if ev := d.Observe("s", 0, 0, 0.9); ev == nil {
		t.Fatal("did not fire")
	}
	if fired := observeN(d, "s", 1, 1, 0.9, 0.9, 0.9, 0.9, 0.9, 0.9); len(fired) != 0 {
		t.Fatalf("sustained drift refired %d times without a rate limit", len(fired))
	}
}

func TestDetectorSignalsIndependent(t *testing.T) {
	d := NewDetector(DriftConfig{Threshold: 0.5, Trigger: 2}, nil, nil, nil)
	d.Observe("a", 0, 0, 0.9)
	// b's first drifted window must not inherit a's run.
	if ev := d.Observe("b", 0, 0, 0.9); ev != nil {
		t.Fatalf("signal b fired off signal a's run: %+v", ev)
	}
	if ev := d.Observe("a", 1, 1, 0.9); ev == nil {
		t.Fatal("signal a did not fire")
	}
}

func TestDetectorSinks(t *testing.T) {
	var events bytes.Buffer
	reg := NewRegistry()
	d := NewDetector(DriftConfig{Threshold: 0.5, Trigger: 1}, nil, NewJSONL(&events), reg)
	d.Observe("util", 7, 42.5, 0.8)

	if got := reg.Counter("drift_detected_total").Value(); got != 1 {
		t.Fatalf("drift_detected_total = %d, want 1", got)
	}
	if got := reg.Counter(Name("drift_detected_total", "signal", "util")).Value(); got != 1 {
		t.Fatalf("per-signal counter = %d, want 1", got)
	}
	var ev DriftEvent
	if err := json.Unmarshal(bytes.TrimSpace(events.Bytes()), &ev); err != nil {
		t.Fatalf("event stream not one JSON object: %v (%q)", err, events.String())
	}
	if ev.Signal != "util" || ev.Window != 7 || ev.Time != 42.5 || ev.Threshold != 0.5 {
		t.Fatalf("event = %+v", ev)
	}
	if !strings.Contains(events.String(), `"signal":"util"`) {
		t.Fatalf("event JSON missing signal field: %q", events.String())
	}
}

func TestDetectorNilSafe(t *testing.T) {
	var d *Detector
	if ev := d.Observe("s", 0, 0, 99); ev != nil {
		t.Fatal("nil detector fired")
	}
	if d.Events() != nil {
		t.Fatal("nil detector has events")
	}
	// A detector with every sink nil must still work.
	live := NewDetector(DriftConfig{Threshold: 1, Trigger: 1}, nil, nil, nil)
	if ev := live.Observe("s", 0, 0, 2); ev == nil {
		t.Fatal("sink-less detector did not fire")
	}
}
