package storage

// SSDConfig parametrizes the flash solid-state drive model.
type SSDConfig struct {
	// CapacityBytes is the usable capacity.
	CapacityBytes int64
	// ReadLatency and WriteLatency are fixed per-request costs.
	ReadLatency  float64
	WriteLatency float64
	// ReadRate and WriteRate are the streaming transfer rates in bytes/s.
	ReadRate  float64
	WriteRate float64
}

// SSD32Config returns parameters modelled on the paper's 32 GB SATA-II SSD
// (2008-era): fast flat random reads, slower writes, and streaming rates
// competitive with — but not far above — a 15K disk, so large sequential
// scans do not automatically belong on flash.
func SSD32Config() SSDConfig {
	return SSDConfig{
		CapacityBytes: 32 << 30,
		ReadLatency:   0.18e-3,
		WriteLatency:  0.40e-3,
		ReadRate:      150 << 20,
		WriteRate:     85 << 20,
	}
}

// SSD is a flash solid-state drive. Access cost is position-independent:
// there is no seek and no rotational latency, so random and sequential
// requests cost the same and interference between streams has no positioning
// penalty (queueing delay is still modelled by the shared queue skeleton).
type SSD struct {
	queueDevice
	cfg SSDConfig
}

// NewSSD attaches a new SSD with the given configuration to the engine.
func NewSSD(e *Engine, name string, cfg SSDConfig) *SSD {
	s := &SSD{cfg: cfg}
	s.queueDevice = queueDevice{engine: e, name: name, cap: cfg.CapacityBytes, service: s.serviceTime}
	e.register(s)
	return s
}

// Config returns the SSD's configuration.
func (s *SSD) Config() SSDConfig { return s.cfg }

// WithCapacity returns a copy of the configuration with a different capacity,
// used by the paper's SSD capacity sweep (Fig. 18).
func (c SSDConfig) WithCapacity(bytes int64) SSDConfig {
	c.CapacityBytes = bytes
	return c
}

func (s *SSD) serviceTime(r *Request, queueDepth int) float64 {
	if r.Write {
		return s.cfg.WriteLatency + float64(r.Size)/s.cfg.WriteRate
	}
	return s.cfg.ReadLatency + float64(r.Size)/s.cfg.ReadRate
}
