package storage

import (
	"bytes"
	"math/rand"
	"testing"
)

// newTestRand returns a deterministic RNG for tests.
func newTestRand(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }

func TestTraceRoundTrip(t *testing.T) {
	in := &Trace{Records: []TraceRecord{
		{Time: 0.5, Object: 1, Stream: 7, Target: "d0", Offset: 4096, Size: 8192, Write: false},
		{Time: 0.9, Object: 2, Stream: 8, Target: "d1", Offset: 0, Size: 131072, Write: true},
	}}
	var buf bytes.Buffer
	if _, err := in.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	out, err := ReadTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Records) != len(in.Records) {
		t.Fatalf("got %d records, want %d", len(out.Records), len(in.Records))
	}
	for i := range in.Records {
		if in.Records[i] != out.Records[i] {
			t.Fatalf("record %d: got %+v, want %+v", i, out.Records[i], in.Records[i])
		}
	}
}

func TestTraceFilterObject(t *testing.T) {
	tr := &Trace{Records: []TraceRecord{
		{Object: 1}, {Object: 2}, {Object: 1}, {Object: 3},
	}}
	f := tr.FilterObject(1)
	if f.Len() != 2 {
		t.Fatalf("filtered %d records, want 2", f.Len())
	}
}

func TestTraceDuration(t *testing.T) {
	tr := &Trace{Records: []TraceRecord{{Time: 1.0}, {Time: 2.5}, {Time: 4.0}}}
	if d := tr.Duration(); d != 3.0 {
		t.Fatalf("duration = %g, want 3.0", d)
	}
	if d := (&Trace{}).Duration(); d != 0 {
		t.Fatalf("empty trace duration = %g, want 0", d)
	}
}

func TestMultiTracer(t *testing.T) {
	a, b := &Trace{}, &Trace{}
	m := MultiTracer(a, nil, b)
	m.Record(TraceRecord{Object: 1})
	if a.Len() != 1 || b.Len() != 1 {
		t.Fatalf("fan-out failed: %d, %d", a.Len(), b.Len())
	}
	if MultiTracer(nil, nil) != nil {
		t.Fatal("MultiTracer of nils should be nil")
	}
	if got := MultiTracer(a); got != Tracer(a) {
		t.Fatal("single tracer should be returned unwrapped")
	}
}

func TestRunPatternScanCoversExtent(t *testing.T) {
	p := ScanPattern(1000, 10*512, 512, false)
	var want int64 = 1000
	for {
		off, size, write, ok := p.Next()
		if !ok {
			break
		}
		if write {
			t.Fatal("read scan produced a write")
		}
		if off != want || size != 512 {
			t.Fatalf("offset %d, want %d", off, want)
		}
		want += 512
	}
	if want != 1000+10*512 {
		t.Fatalf("scan stopped at %d, want %d", want, 1000+10*512)
	}
}

func TestRunPatternRunLengths(t *testing.T) {
	p := &RunPattern{Rng: newTestRand(3), Extent: 1 << 30, Size: 4096, RunLen: 5, Count: 50}
	var offs []int64
	for {
		off, _, _, ok := p.Next()
		if !ok {
			break
		}
		offs = append(offs, off)
	}
	if len(offs) != 50 {
		t.Fatalf("issued %d, want 50", len(offs))
	}
	// Within a run, offsets advance by Size.
	for i := 0; i < 50; i += 5 {
		for j := 1; j < 5; j++ {
			if offs[i+j] != offs[i+j-1]+4096 {
				t.Fatalf("run broken at %d", i+j)
			}
		}
	}
}

func TestRunPatternWriteFraction(t *testing.T) {
	p := &RunPattern{Rng: newTestRand(5), Extent: 1 << 30, Size: 4096, RunLen: 1, Count: 2000, WriteFrac: 0.3}
	writes := 0
	for {
		_, _, w, ok := p.Next()
		if !ok {
			break
		}
		if w {
			writes++
		}
	}
	frac := float64(writes) / 2000
	if frac < 0.25 || frac > 0.35 {
		t.Fatalf("write fraction %.3f, want ~0.3", frac)
	}
}
