package storage

import "fmt"

// RAID0 is a striped group of member devices presented as a single storage
// target, as created by the paper's Dell PERC controller for the "3-1" and
// "2-1-1" heterogeneous configurations.
//
// Logical offsets are divided into fixed-size stripe units distributed
// round-robin over the members. A request spanning several units is split
// into per-member child requests; the parent completes when the last child
// does. Consecutive units on one member are laid out contiguously, so a long
// sequential logical stream appears to each member as a sequential stream of
// its own — the same property the paper's LVM layout model relies on.
type RAID0 struct {
	engine  *Engine
	name    string
	members []Device
	unit    int64
	stats   DeviceStats
}

// DefaultStripeUnit is the RAID0 stripe unit size (64 KiB, the PERC default).
const DefaultStripeUnit = 64 << 10

// NewRAID0 builds a striped group over the given members. The stripe unit
// must be positive; members must be non-empty.
func NewRAID0(e *Engine, name string, unit int64, members ...Device) *RAID0 {
	if len(members) == 0 {
		panic("storage: RAID0 with no members")
	}
	if unit <= 0 {
		panic("storage: RAID0 with non-positive stripe unit")
	}
	g := &RAID0{engine: e, name: name, members: members, unit: unit}
	e.register(g)
	return g
}

// Name identifies the group.
func (g *RAID0) Name() string { return g.name }

// Members returns the member devices.
func (g *RAID0) Members() []Device { return g.members }

// Capacity is the smallest member capacity times the member count (striping
// is limited by the smallest member).
func (g *RAID0) Capacity() int64 {
	min := g.members[0].Capacity()
	for _, m := range g.members[1:] {
		if c := m.Capacity(); c < min {
			min = c
		}
	}
	return min * int64(len(g.members))
}

// Stats aggregates member counters. BusyTime and DepthIntegral are per-member
// means, which keeps Utilization and MeanQueueDepth comparable with
// single-device targets; SeqHits, read-ahead counters and byte counts are
// summed; MaxQueueDepth is the deepest any member got.
func (g *RAID0) Stats() DeviceStats {
	var s DeviceStats
	s.Requests = g.stats.Requests
	s.Bytes = g.stats.Bytes
	s.BytesRead = g.stats.BytesRead
	s.BytesWritten = g.stats.BytesWritten
	s.FailedRequests = g.stats.FailedRequests
	for _, m := range g.members {
		ms := m.Stats()
		s.BusyTime += ms.BusyTime
		s.FaultDelay += ms.FaultDelay
		s.SeqHits += ms.SeqHits
		s.RAEvictions += ms.RAEvictions
		s.RACollapses += ms.RACollapses
		s.QueueDepth += ms.QueueDepth
		s.DepthIntegral += ms.DepthIntegral
		if ms.MaxQueueDepth > s.MaxQueueDepth {
			s.MaxQueueDepth = ms.MaxQueueDepth
		}
	}
	s.BusyTime /= float64(len(g.members))
	s.FaultDelay /= float64(len(g.members))
	s.DepthIntegral /= float64(len(g.members))
	return s
}

// Submit splits the request across members and completes it when every
// child request has completed.
func (g *RAID0) Submit(r *Request) {
	r.issued = g.engine.Now()
	n := int64(len(g.members))
	remaining := r.Size
	off := r.Offset
	if remaining <= 0 {
		panic(fmt.Sprintf("storage: RAID0 %q: non-positive request size %d", g.name, r.Size))
	}

	// Count the children first so the join counter is exact.
	children := 0
	for o, left := off, remaining; left > 0; {
		inUnit := g.unit - o%g.unit
		if inUnit > left {
			inUnit = left
		}
		o += inUnit
		left -= inUnit
		children++
	}

	pending := children
	perMember := 1 / float64(n)
	done := func(c *Request) {
		r.service += c.service * perMember
		if c.Failed {
			// RAID0 has no redundancy: one failed child fails the
			// whole logical request.
			r.Failed = true
		}
		pending--
		if pending == 0 {
			g.stats.Requests++
			if r.Failed {
				g.stats.FailedRequests++
			} else {
				g.stats.Bytes += r.Size
				if r.Write {
					g.stats.BytesWritten += r.Size
				} else {
					g.stats.BytesRead += r.Size
				}
			}
			r.complete = g.engine.Now()
			if r.Done != nil {
				r.Done(r)
			}
		}
	}

	for remaining > 0 {
		inUnit := g.unit - off%g.unit
		if inUnit > remaining {
			inUnit = remaining
		}
		stripe := off / g.unit
		member := g.members[stripe%n]
		memberOff := (stripe/n)*g.unit + off%g.unit
		child := &Request{
			Object: r.Object,
			Stream: r.Stream,
			Offset: memberOff,
			Size:   inUnit,
			Write:  r.Write,
			Done:   done,
		}
		child.issued = g.engine.Now()
		member.Submit(child)
		off += inUnit
		remaining -= inUnit
	}
}
