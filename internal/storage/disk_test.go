package storage

import "testing"

// seqRequest builds a contiguous request for a stream at the given offset.
func seqRequest(stream uint64, off, size int64) *Request {
	return &Request{Stream: stream, Offset: off, Size: size}
}

// TestDiskThreeRegimes exercises the segmented read-ahead model directly:
// undisturbed streaming, tracked interleave (reposition once per window),
// and eviction collapse (positioning every request).
func TestDiskThreeRegimes(t *testing.T) {
	e := NewEngine()
	d := NewDisk(e, "d", Disk15KConfig())
	cfg := d.Config()
	transfer := 8192.0 / cfg.TransferRate
	streaming := cfg.SeqOverhead + transfer

	// Regime 1: a single stream with no interference streams after its
	// first (positioning) request.
	off := int64(0)
	if st := d.serviceTime(seqRequest(1, off, 8192), 0); st < cfg.HalfRotation {
		t.Fatalf("first request should pay positioning, got %.3gms", st*1e3)
	}
	for k := 0; k < 10; k++ {
		off += 8192
		if st := d.serviceTime(seqRequest(1, off, 8192), 0); st > streaming*1.01 {
			t.Fatalf("undisturbed request %d cost %.3gms, want streaming %.3gms", k, st*1e3, streaming*1e3)
		}
	}

	// Regime 2: one interleaved competitor (2 streams <= RASegments).
	// The tracked stream pays one reposition per RAWindow, and cache
	// hits inside the window despite the interleave.
	var repositions, hits int
	compOff := int64(4 << 30)
	for k := 0; k < 64; k++ {
		off += 8192
		st := d.serviceTime(seqRequest(1, off, 8192), 0)
		if st > streaming*1.01 {
			repositions++
		} else {
			hits++
		}
		compOff += 8192
		d.serviceTime(seqRequest(2, compOff, 8192), 0) // sequential competitor
	}
	if hits == 0 {
		t.Fatal("tracked interleave produced no window hits")
	}
	if repositions == 0 {
		t.Fatal("tracked interleave never repositioned")
	}
	// Window = 64 KiB = 8 requests of 8 KiB: about 1 reposition per 8.
	if repositions > hits {
		t.Fatalf("repositions %d > hits %d: window amortization broken", repositions, hits)
	}

	// Regime 3: three interleaved streams exceed the two cache segments:
	// every request of stream 1 pays positioning.
	evicted := 0
	c2, c3 := int64(6<<30), int64(8<<30)
	for k := 0; k < 16; k++ {
		off += 8192
		if st := d.serviceTime(seqRequest(1, off, 8192), 0); st > streaming*1.5 {
			evicted++
		}
		c2 += 8192
		d.serviceTime(seqRequest(2, c2, 8192), 0)
		c3 += 8192
		d.serviceTime(seqRequest(3, c3, 8192), 0)
	}
	if evicted < 14 {
		t.Fatalf("only %d/16 requests collapsed with 3 interleaved streams", evicted)
	}
}

func TestDiskWriteSettle(t *testing.T) {
	e := NewEngine()
	d := NewDisk(e, "d", Disk15KConfig())
	r := d.serviceTime(&Request{Stream: 1, Offset: 1 << 30, Size: 8192}, 0)
	w := d.serviceTime(&Request{Stream: 2, Offset: 2 << 30, Size: 8192, Write: true}, 0)
	if w <= r {
		t.Fatalf("random write %.3gms not slower than read %.3gms", w*1e3, r*1e3)
	}
}

func TestDiskStreamTableEviction(t *testing.T) {
	cfg := Disk15KConfig()
	cfg.StreamTableSize = 4
	e := NewEngine()
	d := NewDisk(e, "d", cfg)
	// Touch 8 distinct streams; the table must stay bounded.
	for s := uint64(1); s <= 8; s++ {
		d.serviceTime(&Request{Stream: s, Offset: int64(s) << 24, Size: 8192}, 0)
	}
	if len(d.streams) > 4 {
		t.Fatalf("stream table grew to %d entries, cap 4", len(d.streams))
	}
	// The most recent stream is still tracked and continues sequentially
	// (it is also still cached, as the last-touched segment).
	st := d.serviceTime(&Request{Stream: 8, Offset: (8 << 24) + 8192, Size: 8192}, 0)
	streaming := cfg.SeqOverhead + 8192/cfg.TransferRate
	if st > 3*streaming {
		t.Fatalf("recently tracked stream lost: %.3gms", st*1e3)
	}
}

func TestDiskQueueDepthDiscountOnlyForRandom(t *testing.T) {
	e := NewEngine()
	d := NewDisk(e, "d", Disk15KConfig())
	shallow := d.serviceTime(&Request{Stream: 1, Offset: 1 << 30, Size: 8192}, 0)
	deep := d.serviceTime(&Request{Stream: 2, Offset: 2 << 30, Size: 8192}, 16)
	if deep >= shallow {
		t.Fatalf("no scheduling discount: %.3g vs %.3g", deep*1e3, shallow*1e3)
	}
	if deep < d.Config().MinSeek+d.Config().HalfRotation {
		t.Fatalf("discount below physical floor: %.3gms", deep*1e3)
	}
}

func TestDisk7200SlowerThan15K(t *testing.T) {
	e := NewEngine()
	fast := NewDisk(e, "f", Disk15KConfig())
	slow := NewDisk(e, "s", Disk7200Config())
	rf := fast.serviceTime(&Request{Stream: 1, Offset: 1 << 30, Size: 8192}, 0)
	rs := slow.serviceTime(&Request{Stream: 1, Offset: 1 << 30, Size: 8192}, 0)
	if rs <= rf {
		t.Fatalf("7200 RPM random %.3gms not slower than 15K %.3gms", rs*1e3, rf*1e3)
	}
}
