package storage

import (
	"math"
	"strings"
	"testing"
)

func TestFaultScheduleValidate(t *testing.T) {
	bad := []FaultSchedule{
		{Stalls: []Stall{{Start: -1, Duration: 1, Delay: 0.01}}},
		{Stalls: []Stall{{Start: 0, Duration: math.NaN(), Delay: 0.01}}},
		{Stalls: []Stall{{Start: 0, Duration: 1, Delay: math.Inf(1)}}},
		{Slow: &SlowFault{At: 0, Factor: 0.5}},
		{Slow: &SlowFault{At: math.NaN(), Factor: 2}},
		{Slow: &SlowFault{At: 0, Factor: math.Inf(1)}},
		{Fail: &FailFault{At: -3}},
		{Fail: &FailFault{At: math.NaN()}},
	}
	for i, f := range bad {
		if err := f.Validate(); err == nil {
			t.Errorf("schedule %d accepted: %+v", i, f)
		}
	}
	good := FaultSchedule{
		Stalls: []Stall{{Start: 1, Duration: 2, Delay: 0.05}},
		Slow:   &SlowFault{At: 5, Factor: 3},
		Fail:   &FailFault{At: 100},
	}
	if err := good.Validate(); err != nil {
		t.Errorf("valid schedule rejected: %v", err)
	}
	var zero *FaultSchedule
	if err := zero.Validate(); err != nil {
		t.Errorf("nil schedule rejected: %v", err)
	}
}

func TestDiskFailFault(t *testing.T) {
	e := NewEngine()
	d := NewDisk(e, "d", Disk15KConfig())
	if err := d.InjectFaults(FaultSchedule{Fail: &FailFault{At: 0}}); err != nil {
		t.Fatal(err)
	}
	var got *Request
	r := &Request{Stream: 1, Offset: 0, Size: 8192, Done: func(r *Request) { got = r }}
	e.Submit(d, r)
	e.Run(0)
	if got == nil {
		t.Fatal("request never completed")
	}
	if !got.Failed {
		t.Fatal("request on a failed device did not fail")
	}
	s := d.Stats()
	if s.FailedRequests != 1 || s.Requests != 1 {
		t.Fatalf("FailedRequests = %d, Requests = %d", s.FailedRequests, s.Requests)
	}
	if s.Bytes != 0 || s.BytesRead != 0 {
		t.Fatalf("failed request transferred bytes: %+v", s)
	}
	if math.Abs(s.BusyTime-failLatency) > 1e-12 {
		t.Fatalf("BusyTime = %g, want fail latency %g", s.BusyTime, failLatency)
	}
	// Fail-fast accounting must preserve the engine invariant.
	if math.Abs(e.ServiceTime()-s.BusyTime) > 1e-12 {
		t.Fatalf("engine service %g != device busy %g", e.ServiceTime(), s.BusyTime)
	}
}

func TestDiskFailFaultOnset(t *testing.T) {
	e := NewEngine()
	d := NewDisk(e, "d", Disk15KConfig())
	if err := d.InjectFaults(FaultSchedule{Fail: &FailFault{At: 1.0}}); err != nil {
		t.Fatal(err)
	}
	var before, after *Request
	e.Submit(d, &Request{Stream: 1, Size: 8192, Done: func(r *Request) { before = r }})
	e.Run(0)
	e.Schedule(2.0, func() {
		e.Submit(d, &Request{Stream: 1, Offset: 8192, Size: 8192, Done: func(r *Request) { after = r }})
	})
	e.Run(0)
	if before == nil || before.Failed {
		t.Fatal("request before onset failed")
	}
	if after == nil || !after.Failed {
		t.Fatal("request after onset succeeded")
	}
}

func TestDiskSlowFault(t *testing.T) {
	run := func(f *FaultSchedule) DeviceStats {
		e := NewEngine()
		d := NewDisk(e, "d", Disk15KConfig())
		if f != nil {
			if err := d.InjectFaults(*f); err != nil {
				t.Fatal(err)
			}
		}
		for i := 0; i < 16; i++ {
			e.Submit(d, &Request{Stream: 1, Offset: int64(i) * 1 << 20, Size: 8192})
		}
		e.Run(0)
		return d.Stats()
	}
	healthy := run(nil)
	slowed := run(&FaultSchedule{Slow: &SlowFault{At: 0, Factor: 2}})
	if slowed.FaultDelay <= 0 {
		t.Fatal("slow fault injected no delay")
	}
	want := 2 * healthy.BusyTime
	if math.Abs(slowed.BusyTime-want) > 1e-9*want {
		t.Fatalf("slowed BusyTime = %g, want 2x healthy = %g", slowed.BusyTime, want)
	}
	if math.Abs(slowed.FaultDelay-healthy.BusyTime) > 1e-9*want {
		t.Fatalf("FaultDelay = %g, want the extra %g", slowed.FaultDelay, healthy.BusyTime)
	}
}

func TestDiskStallFault(t *testing.T) {
	const delay = 0.25
	run := func(f *FaultSchedule) DeviceStats {
		e := NewEngine()
		d := NewDisk(e, "d", Disk15KConfig())
		if f != nil {
			if err := d.InjectFaults(*f); err != nil {
				t.Fatal(err)
			}
		}
		e.Submit(d, &Request{Stream: 1, Size: 8192})
		e.Run(0)
		return d.Stats()
	}
	healthy := run(nil)
	// The request dispatches at t=0, inside the stall window.
	stalled := run(&FaultSchedule{Stalls: []Stall{{Start: 0, Duration: 1, Delay: delay}}})
	if math.Abs(stalled.BusyTime-(healthy.BusyTime+delay)) > 1e-9 {
		t.Fatalf("stalled BusyTime = %g, want healthy %g + delay %g", stalled.BusyTime, healthy.BusyTime, delay)
	}
	if math.Abs(stalled.FaultDelay-delay) > 1e-9 {
		t.Fatalf("FaultDelay = %g, want %g", stalled.FaultDelay, delay)
	}
	// A stall window entirely in the past injects nothing.
	missed := run(&FaultSchedule{Stalls: []Stall{{Start: 10, Duration: 1, Delay: delay}}})
	if missed.FaultDelay != 0 {
		t.Fatalf("out-of-window stall injected %g", missed.FaultDelay)
	}
}

func TestRAID0MemberFailurePropagates(t *testing.T) {
	e := NewEngine()
	m0 := NewDisk(e, "m0", Disk15KConfig())
	m1 := NewDisk(e, "m1", Disk15KConfig())
	if err := m0.InjectFaults(FaultSchedule{Fail: &FailFault{At: 0}}); err != nil {
		t.Fatal(err)
	}
	g := NewRAID0(e, "g", DefaultStripeUnit, m0, m1)
	var onFailed, onHealthy *Request
	// Unit 0 -> member 0 (failed), unit 1 -> member 1 (healthy).
	e.Submit(g, &Request{Stream: 1, Offset: 0, Size: 4096, Done: func(r *Request) { onFailed = r }})
	e.Submit(g, &Request{Stream: 2, Offset: DefaultStripeUnit, Size: 4096, Done: func(r *Request) { onHealthy = r }})
	e.Run(0)
	if onFailed == nil || !onFailed.Failed {
		t.Fatal("striping over a failed member did not fail the logical request")
	}
	if onHealthy == nil || onHealthy.Failed {
		t.Fatal("request on the healthy member failed")
	}
	if s := g.Stats(); s.FailedRequests != 1 {
		t.Fatalf("group FailedRequests = %d, want 1", s.FailedRequests)
	}
}

// degraded3 builds a 3-member RAID5 group with the given members failed from
// the start. With 3 members, stripe row 0 has parity on member 0 and data
// units 0 and 1 on members 1 and 2.
func degraded3(t *testing.T, failed ...int) (*Engine, *RAID5) {
	t.Helper()
	e := NewEngine()
	members := make([]Device, 3)
	for i := range members {
		d := NewDisk(e, "m", Disk15KConfig())
		members[i] = d
		for _, f := range failed {
			if f == i {
				if err := d.InjectFaults(FaultSchedule{Fail: &FailFault{At: 0}}); err != nil {
					t.Fatal(err)
				}
			}
		}
	}
	return e, NewRAID5(e, "g", DefaultStripeUnit, members...)
}

func TestRAID5HealthyRead(t *testing.T) {
	e, g := degraded3(t)
	var done *Request
	e.Submit(g, &Request{Stream: 1, Offset: 0, Size: 4096, Done: func(r *Request) { done = r }})
	e.Run(0)
	if done == nil || done.Failed {
		t.Fatal("healthy read failed")
	}
	s := g.Stats()
	if s.ReconstructReads != 0 {
		t.Fatalf("healthy read issued %d reconstruction reads", s.ReconstructReads)
	}
	if s.Requests != 1 || s.BytesRead != 4096 {
		t.Fatalf("stats: %+v", s)
	}
}

func TestRAID5DegradedReadReconstructs(t *testing.T) {
	// Member 1 holds data unit 0; fail it and read that unit.
	e, g := degraded3(t, 1)
	var done *Request
	e.Submit(g, &Request{Stream: 1, Offset: 0, Size: 4096, Done: func(r *Request) { done = r }})
	e.Run(0)
	if done == nil {
		t.Fatal("request never completed")
	}
	if done.Failed {
		t.Fatal("single-member failure failed the read despite parity")
	}
	s := g.Stats()
	if want := int64(2); s.ReconstructReads != want {
		t.Fatalf("ReconstructReads = %d, want %d (both survivors)", s.ReconstructReads, want)
	}
	if s.FailedRequests != 0 {
		t.Fatalf("logical request counted as failed: %+v", s)
	}
}

func TestRAID5DoubleFailureFailsRead(t *testing.T) {
	e, g := degraded3(t, 1, 2)
	var done *Request
	e.Submit(g, &Request{Stream: 1, Offset: 0, Size: 4096, Done: func(r *Request) { done = r }})
	e.Run(0)
	if done == nil || !done.Failed {
		t.Fatal("read with two failed members did not fail")
	}
	if s := g.Stats(); s.FailedRequests != 1 {
		t.Fatalf("FailedRequests = %d, want 1", s.FailedRequests)
	}
}

func TestRAID5DegradedWrite(t *testing.T) {
	// Data member 1 failed: the old-data read is replaced by reads of the
	// row's other data units (1 extra read with 3 members), and the write
	// survives through parity.
	e, g := degraded3(t, 1)
	var done *Request
	e.Submit(g, &Request{Stream: 1, Offset: 0, Size: 4096, Write: true, Done: func(r *Request) { done = r }})
	e.Run(0)
	if done == nil || done.Failed {
		t.Fatal("degraded write failed despite parity")
	}
	s := g.Stats()
	if want := int64(1); s.ReconstructReads != want {
		t.Fatalf("ReconstructReads = %d, want %d", s.ReconstructReads, want)
	}
	if s.BytesWritten != 4096 {
		t.Fatalf("BytesWritten = %d", s.BytesWritten)
	}
}

func TestRAID5Capacity(t *testing.T) {
	e := NewEngine()
	cfg := Disk15KConfig()
	g := NewRAID5(e, "g", DefaultStripeUnit,
		NewDisk(e, "m0", cfg), NewDisk(e, "m1", cfg), NewDisk(e, "m2", cfg))
	if want := 2 * cfg.CapacityBytes; g.Capacity() != want {
		t.Fatalf("capacity = %d, want %d (one member's worth is parity)", g.Capacity(), want)
	}
}

func TestRAID5SpansUnits(t *testing.T) {
	// A request spanning two units touches two data members; both succeed.
	e, g := degraded3(t)
	var done *Request
	e.Submit(g, &Request{Stream: 1, Offset: DefaultStripeUnit - 2048, Size: 4096, Done: func(r *Request) { done = r }})
	e.Run(0)
	if done == nil || done.Failed {
		t.Fatal("unit-spanning read failed")
	}
	if s := g.Stats(); s.BytesRead != 4096 {
		t.Fatalf("BytesRead = %d, want 4096", s.BytesRead)
	}
}

func TestReadTraceReportsLineNumbers(t *testing.T) {
	cases := []struct {
		name, input, wantLine string
	}{
		{"malformed json", "{\"t\":0,\"size\":4096}\nnot json\n", "line 2"},
		{"invalid size", "{\"t\":0,\"size\":4096}\n\n{\"t\":1,\"size\":-1}\n", "line 3"},
		{"negative time", "{\"t\":-1,\"size\":4096}\n", "line 1"},
		{"negative offset", "{\"t\":0,\"off\":-5,\"size\":4096}\n", "line 1"},
	}
	for _, tc := range cases {
		_, err := ReadTrace(strings.NewReader(tc.input))
		if err == nil {
			t.Errorf("%s: accepted", tc.name)
			continue
		}
		if !strings.Contains(err.Error(), tc.wantLine) {
			t.Errorf("%s: error %q does not name %s", tc.name, err, tc.wantLine)
		}
	}
	// Blank lines are skipped, not counted as errors.
	tr, err := ReadTrace(strings.NewReader("\n{\"t\":0,\"size\":4096}\n\n{\"t\":1,\"size\":8192}\n"))
	if err != nil {
		t.Fatal(err)
	}
	if tr.Len() != 2 {
		t.Fatalf("parsed %d records, want 2", tr.Len())
	}
}
