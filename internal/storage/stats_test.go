package storage

import (
	"math"
	"testing"
)

// TestBusyTimeMatchesEngineServiceTime pins the accounting invariant: the
// sum of every device's BusyTime equals the engine's accumulated service
// time, and both equal the sum of per-request service times.
func TestBusyTimeMatchesEngineServiceTime(t *testing.T) {
	e := NewEngine()
	disk := NewDisk(e, "d0", Disk15KConfig())
	ssd := NewSSD(e, "s0", SSD32Config())

	var perRequest float64
	done := func(r *Request) { perRequest += r.ServiceTime() }
	for i := 0; i < 64; i++ {
		e.Submit(disk, &Request{Stream: uint64(i % 4), Offset: int64(i) * 1 << 20, Size: 8192, Done: done})
		e.Submit(ssd, &Request{Stream: uint64(i % 4), Offset: int64(i) * 1 << 20, Size: 8192, Write: i%2 == 0, Done: done})
	}
	e.Run(0)

	devTotal := disk.Stats().BusyTime + ssd.Stats().BusyTime
	if math.Abs(devTotal-e.ServiceTime()) > 1e-12 {
		t.Fatalf("device busy time %g != engine service time %g", devTotal, e.ServiceTime())
	}
	if math.Abs(perRequest-e.ServiceTime()) > 1e-12 {
		t.Fatalf("per-request service sum %g != engine service time %g", perRequest, e.ServiceTime())
	}
	if e.ServiceTime() <= 0 {
		t.Fatal("no service time accumulated")
	}
}

func TestDeviceReadWriteByteSplit(t *testing.T) {
	e := NewEngine()
	ssd := NewSSD(e, "s0", SSD32Config())
	e.Submit(ssd, &Request{Offset: 0, Size: 4096})
	e.Submit(ssd, &Request{Offset: 8192, Size: 8192, Write: true})
	e.Run(0)
	s := ssd.Stats()
	if s.BytesRead != 4096 || s.BytesWritten != 8192 || s.Bytes != 4096+8192 {
		t.Fatalf("byte split wrong: %+v", s)
	}
}

// TestQueueDepthAccounting submits a burst at time zero and checks the
// max and time-averaged wait-queue depths.
func TestQueueDepthAccounting(t *testing.T) {
	e := NewEngine()
	d := NewDisk(e, "d0", Disk15KConfig())
	const n = 10
	for i := 0; i < n; i++ {
		e.Submit(d, &Request{Stream: uint64(i), Offset: int64(i) * 10 << 20, Size: 8192})
	}
	s := d.Stats()
	// One request went straight into service; the rest wait.
	if s.QueueDepth != n-1 || s.MaxQueueDepth != n-1 {
		t.Fatalf("depth = %d, max = %d, want %d", s.QueueDepth, s.MaxQueueDepth, n-1)
	}
	end := e.Run(0)
	s = d.Stats()
	if s.QueueDepth != 0 {
		t.Fatalf("queue not drained: %d", s.QueueDepth)
	}
	mean := s.MeanQueueDepth(end)
	// The burst drains linearly from n-1 waiting to 0, so the mean depth
	// over the run is about (n-1)/2; accept a generous band (service
	// times vary with queue-depth-dependent scheduling gains).
	if mean < 1 || mean > float64(n-1) {
		t.Fatalf("mean queue depth %g outside (1, %d)", mean, n-1)
	}
	if s.DepthIntegral <= 0 {
		t.Fatal("depth integral not accumulated")
	}
}

// TestReadAheadEvictionAndCollapse drives more interleaved sequential
// streams than the drive has read-ahead segments and checks the Fig. 8
// collapse is visible in the counters.
func TestReadAheadEvictionAndCollapse(t *testing.T) {
	cfg := Disk15KConfig()
	cfg.RASegments = 2
	run := func(nStreams int) DeviceStats {
		e := NewEngine()
		d := NewDisk(e, "d0", cfg)
		offs := make([]int64, nStreams)
		for i := range offs {
			offs[i] = int64(i) * 4 << 30 // far-apart zones
		}
		const reqSize = 64 << 10
		var step func(round int)
		step = func(round int) {
			if round >= 64 {
				return
			}
			pending := nStreams
			for s := 0; s < nStreams; s++ {
				s := s
				e.Submit(d, &Request{Stream: uint64(s + 1), Offset: offs[s], Size: reqSize, Done: func(*Request) {
					pending--
					if pending == 0 {
						step(round + 1)
					}
				}})
				offs[s] += reqSize
			}
		}
		step(0)
		e.Run(0)
		return d.Stats()
	}

	within := run(2) // at the segment budget: no evictions
	if within.RAEvictions != 0 || within.RACollapses != 0 {
		t.Fatalf("2 streams on 2 segments evicted: %+v", within)
	}
	if within.SeqHits == 0 {
		t.Fatal("interleaved tracked streams got no sequential hits")
	}
	over := run(3) // one stream over budget: constant recycling
	if over.RAEvictions == 0 {
		t.Fatalf("3 streams on 2 segments never evicted: %+v", over)
	}
	if over.RACollapses == 0 {
		t.Fatalf("no read-ahead collapses recorded: %+v", over)
	}
}

func TestRAID0StatsByteSplitAndMeans(t *testing.T) {
	e := NewEngine()
	m0 := NewDisk(e, "g.m0", Disk15KConfig())
	m1 := NewDisk(e, "g.m1", Disk15KConfig())
	g := NewRAID0(e, "g", 64<<10, m0, m1)
	// One request spanning both members, plus a read.
	e.Submit(g, &Request{Stream: 1, Offset: 0, Size: 128 << 10, Write: true})
	e.Submit(g, &Request{Stream: 2, Offset: 1 << 20, Size: 64 << 10})
	e.Run(0)
	s := g.Stats()
	if s.Requests != 2 {
		t.Fatalf("group requests = %d", s.Requests)
	}
	if s.BytesWritten != 128<<10 || s.BytesRead != 64<<10 {
		t.Fatalf("group byte split: %+v", s)
	}
	memberBusy := (m0.Stats().BusyTime + m1.Stats().BusyTime) / 2
	if math.Abs(s.BusyTime-memberBusy) > 1e-12 {
		t.Fatalf("group busy %g != member mean %g", s.BusyTime, memberBusy)
	}
}
