package storage

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math"
)

// TraceRecord describes one block I/O request as captured at submission,
// equivalent to the records the paper obtained from its instrumented kernel.
type TraceRecord struct {
	Time   float64 `json:"t"`      // submission time, simulated seconds
	Object int     `json:"obj"`    // database object index
	Stream uint64  `json:"stream"` // logical stream identifier
	Target string  `json:"target"` // device name
	Offset int64   `json:"off"`    // byte offset on the target
	Size   int64   `json:"size"`   // bytes
	Write  bool    `json:"w"`      // false = read
}

// Tracer receives a record for every request submitted through the engine.
type Tracer interface {
	Record(rec TraceRecord)
}

// Trace is an in-memory trace, in submission order.
type Trace struct {
	Records []TraceRecord
}

// Record appends rec to the trace. Trace implements Tracer.
func (t *Trace) Record(rec TraceRecord) { t.Records = append(t.Records, rec) }

// Len returns the number of records.
func (t *Trace) Len() int { return len(t.Records) }

// Duration returns the span from the first to the last record.
func (t *Trace) Duration() float64 {
	if len(t.Records) < 2 {
		return 0
	}
	return t.Records[len(t.Records)-1].Time - t.Records[0].Time
}

// FilterObject returns a new trace containing only requests for the given
// object, preserving order.
func (t *Trace) FilterObject(obj int) *Trace {
	out := &Trace{}
	for _, r := range t.Records {
		if r.Object == obj {
			out.Records = append(out.Records, r)
		}
	}
	return out
}

// WriteTo streams the trace as JSON lines. It implements io.WriterTo.
func (t *Trace) WriteTo(w io.Writer) (int64, error) {
	bw := bufio.NewWriter(w)
	var n int64
	enc := json.NewEncoder(bw)
	for i := range t.Records {
		if err := enc.Encode(&t.Records[i]); err != nil {
			return n, fmt.Errorf("storage: encoding trace record %d: %w", i, err)
		}
	}
	if err := bw.Flush(); err != nil {
		return n, err
	}
	return n, nil
}

// Validate rejects records no simulation could have produced: non-finite or
// negative times, negative offsets, and non-positive sizes. Replaying such a
// record would corrupt device state (or panic deep inside a RAID group), so
// they are refused at the parsing boundary instead.
func (rec *TraceRecord) Validate() error {
	switch {
	case math.IsNaN(rec.Time) || math.IsInf(rec.Time, 0) || rec.Time < 0:
		return fmt.Errorf("storage: invalid time %g", rec.Time)
	case rec.Offset < 0:
		return fmt.Errorf("storage: negative offset %d", rec.Offset)
	case rec.Size <= 0:
		return fmt.Errorf("storage: non-positive size %d", rec.Size)
	}
	return nil
}

// ReadTrace parses a JSON-lines trace produced by WriteTo. Blank lines are
// skipped; a malformed or invalid record is reported with its 1-based line
// number so multi-gigabyte trace files can be repaired without bisection.
func ReadTrace(r io.Reader) (*Trace, error) {
	t := &Trace{}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64<<10), 8<<20)
	line := 0
	for sc.Scan() {
		line++
		b := bytes.TrimSpace(sc.Bytes())
		if len(b) == 0 {
			continue
		}
		var rec TraceRecord
		if err := json.Unmarshal(b, &rec); err != nil {
			return nil, fmt.Errorf("storage: trace line %d: %w", line, err)
		}
		if err := rec.Validate(); err != nil {
			return nil, fmt.Errorf("storage: trace line %d: %w", line, err)
		}
		t.Records = append(t.Records, rec)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("storage: trace line %d: %w", line+1, err)
	}
	return t, nil
}

// multiTracer fans records out to several tracers.
type multiTracer []Tracer

func (m multiTracer) Record(rec TraceRecord) {
	for _, t := range m {
		t.Record(rec)
	}
}

// MultiTracer combines tracers; nil entries are dropped. It returns nil when
// no tracer remains.
func MultiTracer(ts ...Tracer) Tracer {
	var out multiTracer
	for _, t := range ts {
		if t != nil {
			out = append(out, t)
		}
	}
	if len(out) == 0 {
		return nil
	}
	if len(out) == 1 {
		return out[0]
	}
	return out
}
