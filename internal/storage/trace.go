package storage

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
)

// TraceRecord describes one block I/O request as captured at submission,
// equivalent to the records the paper obtained from its instrumented kernel.
type TraceRecord struct {
	Time   float64 `json:"t"`      // submission time, simulated seconds
	Object int     `json:"obj"`    // database object index
	Stream uint64  `json:"stream"` // logical stream identifier
	Target string  `json:"target"` // device name
	Offset int64   `json:"off"`    // byte offset on the target
	Size   int64   `json:"size"`   // bytes
	Write  bool    `json:"w"`      // false = read
}

// Tracer receives a record for every request submitted through the engine.
type Tracer interface {
	Record(rec TraceRecord)
}

// Trace is an in-memory trace, in submission order.
type Trace struct {
	Records []TraceRecord
}

// Record appends rec to the trace. Trace implements Tracer.
func (t *Trace) Record(rec TraceRecord) { t.Records = append(t.Records, rec) }

// Len returns the number of records.
func (t *Trace) Len() int { return len(t.Records) }

// Duration returns the span from the first to the last record.
func (t *Trace) Duration() float64 {
	if len(t.Records) < 2 {
		return 0
	}
	return t.Records[len(t.Records)-1].Time - t.Records[0].Time
}

// FilterObject returns a new trace containing only requests for the given
// object, preserving order.
func (t *Trace) FilterObject(obj int) *Trace {
	out := &Trace{}
	for _, r := range t.Records {
		if r.Object == obj {
			out.Records = append(out.Records, r)
		}
	}
	return out
}

// WriteTo streams the trace as JSON lines. It implements io.WriterTo.
func (t *Trace) WriteTo(w io.Writer) (int64, error) {
	bw := bufio.NewWriter(w)
	var n int64
	enc := json.NewEncoder(bw)
	for i := range t.Records {
		if err := enc.Encode(&t.Records[i]); err != nil {
			return n, fmt.Errorf("storage: encoding trace record %d: %w", i, err)
		}
	}
	if err := bw.Flush(); err != nil {
		return n, err
	}
	return n, nil
}

// ReadTrace parses a JSON-lines trace produced by WriteTo.
func ReadTrace(r io.Reader) (*Trace, error) {
	t := &Trace{}
	dec := json.NewDecoder(bufio.NewReader(r))
	for i := 0; ; i++ {
		var rec TraceRecord
		if err := dec.Decode(&rec); err != nil {
			if err == io.EOF {
				return t, nil
			}
			return nil, fmt.Errorf("storage: decoding trace record %d: %w", i, err)
		}
		t.Records = append(t.Records, rec)
	}
}

// multiTracer fans records out to several tracers.
type multiTracer []Tracer

func (m multiTracer) Record(rec TraceRecord) {
	for _, t := range m {
		t.Record(rec)
	}
}

// MultiTracer combines tracers; nil entries are dropped. It returns nil when
// no tracer remains.
func MultiTracer(ts ...Tracer) Tracer {
	var out multiTracer
	for _, t := range ts {
		if t != nil {
			out = append(out, t)
		}
	}
	if len(out) == 0 {
		return nil
	}
	if len(out) == 1 {
		return out[0]
	}
	return out
}
