package storage

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzReadTrace feeds arbitrary bytes through the JSONL trace parser. The
// parser must reject or accept cleanly — never panic — and anything it
// accepts must survive a write/re-read round trip: every record it lets
// through is one the replay engine will feed to devices that panic on
// impossible geometry.
func FuzzReadTrace(f *testing.F) {
	f.Add([]byte(`{"t":0,"obj":1,"stream":2,"target":"d0","off":4096,"size":8192,"w":false}`))
	f.Add([]byte("{\"t\":0,\"size\":4096}\n\n{\"t\":1.5,\"size\":8192,\"w\":true}\n"))
	f.Add([]byte(`{"t":-1,"size":4096}`))
	f.Add([]byte(`{"t":0,"size":-1}`))
	f.Add([]byte(`{"t":1e999,"size":4096}`))
	f.Add([]byte("not json at all"))
	f.Add([]byte(""))
	f.Fuzz(func(t *testing.T, data []byte) {
		tr, err := ReadTrace(bytes.NewReader(data))
		if err != nil {
			if !strings.Contains(err.Error(), "line ") {
				t.Fatalf("error without a line number: %v", err)
			}
			return
		}
		for i := range tr.Records {
			if verr := tr.Records[i].Validate(); verr != nil {
				t.Fatalf("accepted invalid record %d: %v", i, verr)
			}
		}
		var buf bytes.Buffer
		if _, err := tr.WriteTo(&buf); err != nil {
			t.Fatalf("re-encoding accepted trace: %v", err)
		}
		back, err := ReadTrace(&buf)
		if err != nil {
			t.Fatalf("re-reading own output: %v", err)
		}
		if back.Len() != tr.Len() {
			t.Fatalf("round trip lost records: %d -> %d", tr.Len(), back.Len())
		}
	})
}
