package storage

import (
	"fmt"
	"math"
	"testing"
)

func TestEngineOrdering(t *testing.T) {
	e := NewEngine()
	var order []int
	e.Schedule(2.0, func() { order = append(order, 2) })
	e.Schedule(1.0, func() { order = append(order, 1) })
	e.Schedule(3.0, func() { order = append(order, 3) })
	e.Run(0)
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Fatalf("events out of order: %v", order)
	}
	if e.Now() != 3.0 {
		t.Fatalf("final time = %g, want 3.0", e.Now())
	}
}

func TestEngineTieBreakFIFO(t *testing.T) {
	e := NewEngine()
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		e.Schedule(1.0, func() { order = append(order, i) })
	}
	e.Run(0)
	for i, v := range order {
		if v != i {
			t.Fatalf("same-time events not FIFO: %v", order)
		}
	}
}

func TestEngineRunLimit(t *testing.T) {
	e := NewEngine()
	fired := false
	e.Schedule(5.0, func() { fired = true })
	e.Run(2.0)
	if fired {
		t.Fatal("event beyond limit fired")
	}
	if e.Now() != 2.0 {
		t.Fatalf("clock = %g, want 2.0 (limit)", e.Now())
	}
	if e.Pending() != 1 {
		t.Fatalf("pending = %d, want 1", e.Pending())
	}
}

func TestEngineSchedulePastPanics(t *testing.T) {
	e := NewEngine()
	e.Schedule(1.0, func() {
		defer func() {
			if recover() == nil {
				t.Error("scheduling in the past did not panic")
			}
		}()
		e.Schedule(0.5, func() {})
	})
	e.Run(0)
}

func TestEngineAfterCascade(t *testing.T) {
	e := NewEngine()
	var times []float64
	var step func()
	step = func() {
		times = append(times, e.Now())
		if len(times) < 4 {
			e.After(0.25, step)
		}
	}
	e.After(0.25, step)
	e.Run(0)
	want := []float64{0.25, 0.5, 0.75, 1.0}
	for i := range want {
		if math.Abs(times[i]-want[i]) > 1e-12 {
			t.Fatalf("times = %v, want %v", times, want)
		}
	}
}

func TestDiskSequentialVsRandom(t *testing.T) {
	e := NewEngine()
	d := NewDisk(e, "d0", Disk15KConfig())

	// One purely sequential stream.
	var seqTimes []float64
	var last float64
	n := int64(100)
	src := &ClosedSource{
		Engine:  e,
		Device:  d,
		Stream:  1,
		Pattern: ScanPattern(0, n*8192, 8192, false),
		OnDone:  func(at float64) { last = at },
	}
	src.Start()
	e.Run(0)
	seqPerReq := last / float64(n)
	seqTimes = append(seqTimes, seqPerReq)

	// A purely random stream of the same size and count.
	e2 := NewEngine()
	d2 := NewDisk(e2, "d1", Disk15KConfig())
	var last2 float64
	src2 := &ClosedSource{
		Engine:  e2,
		Device:  d2,
		Stream:  1,
		Pattern: &RunPattern{Rng: newTestRand(1), Extent: 8 << 30, Size: 8192, RunLen: 1, Count: n},
		OnDone:  func(at float64) { last2 = at },
	}
	src2.Start()
	e2.Run(0)
	randPerReq := last2 / float64(n)

	if seqPerReq >= randPerReq/10 {
		t.Fatalf("sequential %.3gms not ≫ faster than random %.3gms", seqPerReq*1e3, randPerReq*1e3)
	}
	_ = seqTimes
	if hits := d.Stats().SeqHits; hits < n-2 {
		t.Fatalf("sequential stream got %d seq hits, want >= %d", hits, n-2)
	}
	if hits := d2.Stats().SeqHits; hits != 0 {
		t.Fatalf("random stream got %d seq hits, want 0", hits)
	}
}

// TestDiskInterferenceCollapse reproduces the core Fig. 8 effect: a
// sequential stream keeps its advantage against light interference but
// collapses to positioning-dominated service when enough temporally
// correlated foreign requests interleave.
func TestDiskInterferenceCollapse(t *testing.T) {
	perReq := func(nCompetitors int) float64 {
		e := NewEngine()
		d := NewDisk(e, "d", Disk15KConfig())
		n := int64(400)
		var doneAt float64
		main := &ClosedSource{
			Engine:  e,
			Device:  d,
			Stream:  1,
			Pattern: &RunPattern{Rng: newTestRand(7), Extent: 4 << 30, Size: 8192, RunLen: 64, Count: n},
			OnDone:  func(at float64) { doneAt = at },
		}
		main.Start()
		for c := 0; c < nCompetitors; c++ {
			comp := &ClosedSource{
				Engine:  e,
				Device:  d,
				Stream:  uint64(100 + c),
				Pattern: &RunPattern{Rng: newTestRand(int64(50 + c)), Extent: 4 << 30, Size: 8192, RunLen: 1, Count: -1},
			}
			comp.Start()
		}
		e.Run(600)
		if doneAt == 0 {
			t.Fatalf("main stream did not finish with %d competitors", nCompetitors)
		}
		return doneAt / float64(n)
	}

	alone := perReq(0)
	heavy := perReq(6)
	if heavy < 8*alone {
		t.Fatalf("interference collapse too weak: alone %.3gms, heavy %.3gms", alone*1e3, heavy*1e3)
	}
}

func TestDiskQueueSchedulingGain(t *testing.T) {
	// Random request service should be cheaper at high queue depth.
	cost := func(depth int) float64 {
		e := NewEngine()
		d := NewDisk(e, "d", Disk15KConfig())
		r := &Request{Stream: 1, Offset: 1 << 30, Size: 8192}
		return d.serviceTime(r, depth)
	}
	if c0, c16 := cost(0), cost(16); c16 >= c0 {
		t.Fatalf("no scheduling gain: depth 0 %.3gms, depth 16 %.3gms", c0*1e3, c16*1e3)
	}
}

func TestSSDFlatAccess(t *testing.T) {
	e := NewEngine()
	s := NewSSD(e, "ssd", SSD32Config())
	seq := s.serviceTime(&Request{Stream: 1, Offset: 0, Size: 8192}, 0)
	rnd := s.serviceTime(&Request{Stream: 1, Offset: 4 << 30, Size: 8192}, 0)
	if seq != rnd {
		t.Fatalf("SSD random %.3gms != sequential %.3gms", rnd*1e3, seq*1e3)
	}
	w := s.serviceTime(&Request{Stream: 1, Offset: 0, Size: 8192, Write: true}, 0)
	if w <= seq {
		t.Fatalf("SSD write %.3gms not slower than read %.3gms", w*1e3, seq*1e3)
	}
}

func TestSSDFasterThanDiskForRandom(t *testing.T) {
	e := NewEngine()
	d := NewDisk(e, "d", Disk15KConfig())
	s := NewSSD(e, "s", SSD32Config())
	dr := d.serviceTime(&Request{Stream: 9, Offset: 1 << 30, Size: 8192}, 0)
	sr := s.serviceTime(&Request{Stream: 9, Offset: 1 << 30, Size: 8192}, 0)
	if sr >= dr/5 {
		t.Fatalf("SSD random read %.3gms not ≫ faster than disk %.3gms", sr*1e3, dr*1e3)
	}
}

func TestRAID0SplitAndJoin(t *testing.T) {
	e := NewEngine()
	m0 := NewDisk(e, "m0", Disk15KConfig())
	m1 := NewDisk(e, "m1", Disk15KConfig())
	g := NewRAID0(e, "g", 64<<10, m0, m1)

	var completed bool
	req := &Request{Stream: 1, Offset: 0, Size: 256 << 10, Done: func(_ *Request) { completed = true }}
	e.Submit(g, req)
	e.Run(0)
	if !completed {
		t.Fatal("RAID0 request did not complete")
	}
	s0, s1 := m0.Stats(), m1.Stats()
	if s0.Bytes != 128<<10 || s1.Bytes != 128<<10 {
		t.Fatalf("bytes split %d/%d, want 131072/131072", s0.Bytes, s1.Bytes)
	}
	if s0.Requests != 2 || s1.Requests != 2 {
		t.Fatalf("requests split %d/%d, want 2/2", s0.Requests, s1.Requests)
	}
}

func TestRAID0SequentialScanStaysSequentialPerMember(t *testing.T) {
	e := NewEngine()
	m0 := NewDisk(e, "m0", Disk15KConfig())
	m1 := NewDisk(e, "m1", Disk15KConfig())
	m2 := NewDisk(e, "m2", Disk15KConfig())
	g := NewRAID0(e, "g", 64<<10, m0, m1, m2)

	var doneAt float64
	src := &ClosedSource{
		Engine:  e,
		Device:  g,
		Stream:  1,
		Pattern: ScanPattern(0, 512<<20, 128<<10, false),
		OnDone:  func(at float64) { doneAt = at },
	}
	src.Start()
	e.Run(0)

	total := m0.Stats().Requests + m1.Stats().Requests + m2.Stats().Requests
	hits := m0.Stats().SeqHits + m1.Stats().SeqHits + m2.Stats().SeqHits
	if float64(hits) < 0.95*float64(total) {
		t.Fatalf("only %d/%d member requests were sequential", hits, total)
	}
	// Aggregate bandwidth should beat a single disk's streaming rate.
	bw := float64(512<<20) / doneAt
	single := Disk15KConfig().TransferRate
	if bw < 1.5*single {
		t.Fatalf("RAID0 bandwidth %.1f MB/s not > 1.5x single disk %.1f MB/s", bw/(1<<20), single/(1<<20))
	}
}

func TestRAID0CapacityIsMinMemberTimesCount(t *testing.T) {
	e := NewEngine()
	small := Disk15KConfig()
	small.CapacityBytes = 10 << 30
	m0 := NewDisk(e, "m0", small)
	m1 := NewDisk(e, "m1", Disk15KConfig())
	g := NewRAID0(e, "g", 64<<10, m0, m1)
	if got, want := g.Capacity(), int64(20<<30); got != want {
		t.Fatalf("capacity = %d, want %d", got, want)
	}
}

func TestTraceRecording(t *testing.T) {
	e := NewEngine()
	tr := &Trace{}
	e.SetTracer(tr)
	d := NewDisk(e, "d", Disk15KConfig())
	src := &ClosedSource{Engine: e, Device: d, Object: 3, Stream: 1,
		Pattern: ScanPattern(0, 10*8192, 8192, false)}
	src.Start()
	e.Run(0)
	if tr.Len() != 10 {
		t.Fatalf("trace has %d records, want 10", tr.Len())
	}
	for i, rec := range tr.Records {
		if rec.Object != 3 || rec.Target != "d" || rec.Size != 8192 {
			t.Fatalf("record %d = %+v", i, rec)
		}
		if i > 0 && rec.Time < tr.Records[i-1].Time {
			t.Fatalf("trace times not monotone at %d", i)
		}
	}
}

func TestDeterminism(t *testing.T) {
	run := func() float64 {
		e := NewEngine()
		d := NewDisk(e, "d", Disk15KConfig())
		var doneAt float64
		src := &ClosedSource{Engine: e, Device: d, Stream: 1,
			Pattern: &RunPattern{Rng: newTestRand(42), Extent: 1 << 30, Size: 8192, RunLen: 8, Count: 500},
			OnDone:  func(at float64) { doneAt = at }}
		src.Start()
		comp := &OpenSource{Engine: e, Device: d, Stream: 2,
			Pattern: &RunPattern{Rng: newTestRand(43), Extent: 1 << 30, Size: 8192, RunLen: 1, Count: -1},
			Rate:    50, Rng: newTestRand(44)}
		comp.Start()
		e.Run(300)
		return doneAt
	}
	if a, b := run(), run(); a != b {
		t.Fatalf("simulation not deterministic: %g vs %g", a, b)
	}
}

// TestEngineDaemonTicks verifies daemon events interleave with real events in
// time order but never extend the run: the daemon below self-reschedules
// forever, yet the run still ends at the last real event.
func TestEngineDaemonTicks(t *testing.T) {
	e := NewEngine()
	var order []string
	e.Schedule(1.0, func() { order = append(order, "real@1") })
	e.Schedule(3.0, func() { order = append(order, "real@3") })
	var tick func()
	tick = func() {
		order = append(order, fmt.Sprintf("tick@%g", e.Now()))
		e.ScheduleDaemon(e.Now()+0.5, tick)
	}
	e.ScheduleDaemon(0.5, tick)
	if got := e.Run(0); got != 3.0 {
		t.Fatalf("final time = %g, want 3.0 (daemon must not extend run)", got)
	}
	// A daemon due exactly at a real event's time runs before it.
	want := []string{"tick@0.5", "tick@1", "real@1", "tick@1.5", "tick@2", "tick@2.5", "tick@3", "real@3"}
	if len(order) != len(want) {
		t.Fatalf("order = %v, want %v", order, want)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
	// The still-pending daemon does not count as a pending real event.
	if e.Pending() != 0 {
		t.Fatalf("pending = %d, want 0", e.Pending())
	}
}

// TestEngineDaemonSchedulesRealEvent pins that a daemon may inject real
// events: the loop re-reads the calendar head, so the injected event runs at
// its own time, not after the next pre-existing real event.
func TestEngineDaemonSchedulesRealEvent(t *testing.T) {
	e := NewEngine()
	var order []string
	e.Schedule(10, func() { order = append(order, "real@10") })
	e.ScheduleDaemon(1, func() {
		order = append(order, "tick@1")
		e.Schedule(2, func() { order = append(order, "injected@2") })
	})
	e.Run(0)
	want := []string{"tick@1", "injected@2", "real@10"}
	for i := range want {
		if i >= len(order) || order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

// TestEngineDaemonNeedsRealEvents: with nothing but daemons on the calendar,
// the engine does not run them — bookkeeping has nothing to observe.
func TestEngineDaemonNeedsRealEvents(t *testing.T) {
	e := NewEngine()
	fired := false
	e.ScheduleDaemon(1, func() { fired = true })
	if got := e.Run(0); got != 0 {
		t.Fatalf("final time = %g, want 0", got)
	}
	if fired {
		t.Fatal("daemon fired with no real events on the calendar")
	}
}

func TestEngineScheduleDaemonPastPanics(t *testing.T) {
	e := NewEngine()
	e.Schedule(1.0, func() {
		defer func() {
			if recover() == nil {
				t.Error("scheduling a daemon in the past did not panic")
			}
		}()
		e.ScheduleDaemon(0.5, func() {})
	})
	e.Run(0)
}
