// Package storage implements a discrete-event storage system simulator.
//
// The simulator substitutes for the physical testbed used in the paper's
// evaluation (four 15K RPM SCSI disks behind a RAID controller plus a SATA
// SSD). It models the device behaviours that the paper's workload and target
// models are designed to capture:
//
//   - seek + rotational positioning vs. streaming transfer on disk drives,
//   - per-device read-ahead that can track a small number of concurrent
//     sequential streams and collapses when interleaved foreign requests
//     exceed its tolerance (the effect shown in the paper's Fig. 8),
//   - queue-depth-dependent scheduling gains for random requests,
//   - RAID0 striping across member disks, and
//   - a flash SSD with flat, fast random access.
//
// Time is simulated seconds (float64); sizes and offsets are bytes.
package storage

import (
	"container/heap"
	"fmt"
	"math"
)

// Request is a single block I/O request submitted to a Device.
//
// Stream identifies the logical sequential stream the request belongs to;
// devices use it to detect sequential continuation. Object identifies the
// database object for trace purposes.
type Request struct {
	Object int              // database object index (trace annotation)
	Stream uint64           // logical stream identifier (sequentiality tracking)
	Offset int64            // byte offset on the device
	Size   int64            // bytes
	Write  bool             // false = read
	Done   func(r *Request) // invoked at completion (may be nil)
	// Failed reports that the request completed with an error instead of
	// transferring data — the device (or, for RAID groups, enough of the
	// members) had failed per its fault schedule by dispatch time.
	Failed bool

	issued   float64 // simulation time of submission
	complete float64 // simulation time of completion
	service  float64 // device busy time consumed by this request
}

// Issued returns the simulation time at which the request was submitted.
func (r *Request) Issued() float64 { return r.issued }

// Completed returns the simulation time at which the request finished.
func (r *Request) Completed() float64 { return r.complete }

// ServiceTime returns the device busy time the request consumed, excluding
// queueing delay. For RAID groups it is the mean per-member busy time, which
// keeps utilization accounting comparable across target types.
func (r *Request) ServiceTime() float64 { return r.service }

// event is a scheduled callback in the simulation calendar.
type event struct {
	at  float64
	seq uint64 // tie-break for deterministic ordering
	fn  func()
}

// eventHeap is a min-heap of events ordered by (time, sequence).
type eventHeap []event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x interface{}) { *h = append(*h, x.(event)) }
func (h *eventHeap) Pop() interface{} {
	old := *h
	n := len(old)
	e := old[n-1]
	*h = old[:n-1]
	return e
}

// Engine is the discrete-event simulation core: a clock, an event calendar,
// and an optional trace recorder through which all submissions pass.
//
// The zero value is not usable; construct with NewEngine.
type Engine struct {
	now       float64
	seq       uint64
	events    eventHeap
	daemons   eventHeap
	tracer    Tracer
	devices   []Device
	submitted int64
	service   float64
}

// NewEngine returns a ready-to-run simulation engine at time zero.
func NewEngine() *Engine {
	return &Engine{}
}

// Now returns the current simulation time in seconds.
func (e *Engine) Now() float64 { return e.now }

// SetTracer installs a trace recorder. Pass nil to disable tracing.
func (e *Engine) SetTracer(t Tracer) { e.tracer = t }

// Schedule registers fn to run at simulation time at. Scheduling in the past
// panics: it indicates a model bug rather than a recoverable condition.
func (e *Engine) Schedule(at float64, fn func()) {
	if at < e.now || math.IsNaN(at) {
		panic(fmt.Sprintf("storage: schedule at %g before now %g", at, e.now))
	}
	e.seq++
	heap.Push(&e.events, event{at: at, seq: e.seq, fn: fn})
}

// After schedules fn to run delay seconds from now.
func (e *Engine) After(delay float64, fn func()) {
	e.Schedule(e.now+delay, fn)
}

// ScheduleDaemon registers fn to run at simulation time at, but only while
// real events remain on the calendar. Daemon events carry periodic
// bookkeeping — window observers, progress samplers — that must tick during
// a run yet must never keep the simulation alive: a daemon that reschedules
// itself does not extend the run, and pending daemons are dropped when the
// calendar drains. Like Schedule, scheduling in the past panics.
func (e *Engine) ScheduleDaemon(at float64, fn func()) {
	if at < e.now || math.IsNaN(at) {
		panic(fmt.Sprintf("storage: schedule daemon at %g before now %g", at, e.now))
	}
	e.seq++
	heap.Push(&e.daemons, event{at: at, seq: e.seq, fn: fn})
}

// register attaches a device to the engine for stats reporting.
func (e *Engine) register(d Device) { e.devices = append(e.devices, d) }

// Devices returns all devices registered with the engine, including RAID
// members, in registration order.
func (e *Engine) Devices() []Device { return e.devices }

// Submit routes a request to the device, recording it in the trace.
func (e *Engine) Submit(d Device, r *Request) {
	r.issued = e.now
	e.submitted++
	if e.tracer != nil {
		e.tracer.Record(TraceRecord{
			Time:   e.now,
			Object: r.Object,
			Stream: r.Stream,
			Target: d.Name(),
			Offset: r.Offset,
			Size:   r.Size,
			Write:  r.Write,
		})
	}
	d.Submit(r)
}

// Submitted returns the total number of requests submitted via the engine.
func (e *Engine) Submitted() int64 { return e.submitted }

// noteService accumulates device service time as it is scheduled.
func (e *Engine) noteService(st float64) { e.service += st }

// ServiceTime returns the total device service time scheduled so far, summed
// over all devices. By construction it equals the sum of the devices'
// DeviceStats.BusyTime — the invariant the instrumentation tests pin.
func (e *Engine) ServiceTime() float64 { return e.service }

// Step executes the next pending event and returns false when the calendar
// is empty. Daemon events due at or before the next real event run first (in
// time order), so periodic observers see the clock advance even through long
// gaps between real events; a daemon may schedule real events, which the
// loop condition re-reads.
func (e *Engine) Step() bool {
	if len(e.events) == 0 {
		return false
	}
	for len(e.daemons) > 0 && e.daemons[0].at <= e.events[0].at {
		d := heap.Pop(&e.daemons).(event)
		if d.at > e.now {
			e.now = d.at
		}
		d.fn()
	}
	ev := heap.Pop(&e.events).(event)
	e.now = ev.at
	ev.fn()
	return true
}

// Run processes events until the calendar drains or the clock passes limit
// (limit <= 0 means no limit). It returns the final simulation time.
func (e *Engine) Run(limit float64) float64 {
	for len(e.events) > 0 {
		if limit > 0 && e.events[0].at > limit {
			e.now = limit
			break
		}
		e.Step()
	}
	return e.now
}

// Pending returns the number of events still on the calendar.
func (e *Engine) Pending() int { return len(e.events) }
