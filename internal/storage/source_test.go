package storage

import "testing"

func TestOpenSourceCompletesPattern(t *testing.T) {
	e := NewEngine()
	d := NewDisk(e, "d", Disk15KConfig())
	done := false
	src := &OpenSource{
		Engine:  e,
		Device:  d,
		Stream:  1,
		Pattern: &RunPattern{Rng: newTestRand(1), Extent: 1 << 30, Size: 8192, RunLen: 1, Count: 50},
		Rate:    200,
		Rng:     newTestRand(2),
		OnDone:  func(float64) { done = true },
	}
	src.Start()
	e.Run(0)
	if !done {
		t.Fatal("open source never finished")
	}
	if got := d.Stats().Requests; got != 50 {
		t.Fatalf("completed %d requests, want 50", got)
	}
}

func TestOpenSourceRequiresRate(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("zero-rate open source did not panic")
		}
	}()
	(&OpenSource{Engine: NewEngine(), Rate: 0}).Start()
}

func TestClosedSourceThinkTime(t *testing.T) {
	e := NewEngine()
	d := NewSSD(e, "s", SSD32Config())
	var doneAt float64
	src := &ClosedSource{
		Engine:  e,
		Device:  d,
		Stream:  1,
		Pattern: ScanPattern(0, 10*8192, 8192, false),
		Think:   0.1,
		OnDone:  func(at float64) { doneAt = at },
	}
	src.Start()
	e.Run(0)
	// 10 requests with 0.1 s think after each completion: at least 0.9 s
	// of think time in the span.
	if doneAt < 0.9 {
		t.Fatalf("finished at %.3f s, think time not applied", doneAt)
	}
}

func TestClosedSourceEmptyPattern(t *testing.T) {
	e := NewEngine()
	d := NewSSD(e, "s", SSD32Config())
	done := false
	src := &ClosedSource{
		Engine:  e,
		Device:  d,
		Pattern: &RunPattern{Count: 0},
		OnDone:  func(float64) { done = true },
	}
	src.Start()
	if !done {
		t.Fatal("exhausted pattern should complete immediately")
	}
}

func TestRAID0StatsAggregation(t *testing.T) {
	e := NewEngine()
	m0 := NewDisk(e, "m0", Disk15KConfig())
	m1 := NewDisk(e, "m1", Disk15KConfig())
	g := NewRAID0(e, "g", 64<<10, m0, m1)
	src := &ClosedSource{Engine: e, Device: g, Stream: 1,
		Pattern: ScanPattern(0, 64*128<<10, 128<<10, false)}
	src.Start()
	e.Run(0)
	s := g.Stats()
	if s.Requests != 64 {
		t.Fatalf("group completed %d parent requests, want 64", s.Requests)
	}
	if s.Bytes != 64*128<<10 {
		t.Fatalf("group bytes %d", s.Bytes)
	}
	// Mean member busy time keeps utilization comparable to single
	// devices: it must be at most the max member busy time.
	if s.BusyTime > m0.Stats().BusyTime+m1.Stats().BusyTime {
		t.Fatal("group busy time exceeds the sum of members")
	}
	if s.BusyTime <= 0 {
		t.Fatal("group busy time not aggregated")
	}
}

func TestSSDConfigWithCapacity(t *testing.T) {
	cfg := SSD32Config().WithCapacity(6 << 30)
	if cfg.CapacityBytes != 6<<30 {
		t.Fatalf("capacity override failed: %d", cfg.CapacityBytes)
	}
	if base := SSD32Config(); base.CapacityBytes == cfg.CapacityBytes {
		t.Fatal("WithCapacity mutated the base config")
	}
}

func TestEngineDeviceRegistry(t *testing.T) {
	e := NewEngine()
	NewDisk(e, "a", Disk15KConfig())
	m0 := NewDisk(e, "m0", Disk15KConfig())
	NewRAID0(e, "g", 64<<10, m0)
	// Registry includes RAID members and the group itself.
	if got := len(e.Devices()); got != 3 {
		t.Fatalf("registered %d devices, want 3", got)
	}
}

func TestRequestServiceTimeAccessors(t *testing.T) {
	e := NewEngine()
	d := NewSSD(e, "s", SSD32Config())
	var req *Request
	src := &ClosedSource{Engine: e, Device: d, Stream: 1,
		Pattern:    ScanPattern(0, 8192, 8192, false),
		OnComplete: func(r *Request) { req = r }}
	src.Start()
	e.Run(0)
	if req == nil {
		t.Fatal("no completion observed")
	}
	if req.ServiceTime() <= 0 {
		t.Fatal("service time not recorded")
	}
	if req.Completed() < req.Issued() {
		t.Fatal("completion precedes issue")
	}
}
