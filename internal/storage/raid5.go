package storage

import "fmt"

// RAID5 is a rotating-parity group of member devices presented as a single
// storage target. It extends the simulator beyond the paper's RAID0 testbed
// so that degraded-mode behaviour — the scenario the fault-tolerant advisor
// repairs — can be replayed:
//
//   - Logical stripe units are distributed round-robin over the n-1 data
//     positions of each stripe row; the parity unit rotates across members.
//   - Writes pay the small-write penalty: read old data and old parity,
//     write new data and new parity (modelled as four concurrent member
//     requests per touched unit).
//   - When a member has failed (per its FaultSchedule), reads of its units
//     are reconstructed by reading the same stripe row from every surviving
//     member; the extra reads are counted in DeviceStats.ReconstructReads.
//     Writes survive a single failed member through parity alone.
//
// Reconstruction is driven by observed child-request failures rather than by
// inspecting members' fault schedules, so any member device — disk, SSD, or
// a custom implementation — participates correctly. A logical request fails
// only when redundancy is exhausted (two or more members failed).
type RAID5 struct {
	engine  *Engine
	name    string
	members []Device
	unit    int64
	stats   DeviceStats
}

// NewRAID5 builds a rotating-parity group over the given members. The stripe
// unit must be positive; at least three members are required.
func NewRAID5(e *Engine, name string, unit int64, members ...Device) *RAID5 {
	if len(members) < 3 {
		panic("storage: RAID5 needs at least 3 members")
	}
	if unit <= 0 {
		panic("storage: RAID5 with non-positive stripe unit")
	}
	g := &RAID5{engine: e, name: name, members: members, unit: unit}
	e.register(g)
	return g
}

// Name identifies the group.
func (g *RAID5) Name() string { return g.name }

// Members returns the member devices.
func (g *RAID5) Members() []Device { return g.members }

// Capacity is the smallest member capacity times the data-member count (one
// member's worth of every stripe row holds parity).
func (g *RAID5) Capacity() int64 {
	min := g.members[0].Capacity()
	for _, m := range g.members[1:] {
		if c := m.Capacity(); c < min {
			min = c
		}
	}
	return min * int64(len(g.members)-1)
}

// Stats aggregates member counters the same way RAID0 does: BusyTime,
// FaultDelay and DepthIntegral are per-member means, byte and read-ahead
// counters are summed. Requests, FailedRequests and ReconstructReads are
// group-level: logical requests, logical failures, and extra member reads
// issued for degraded-mode reconstruction.
func (g *RAID5) Stats() DeviceStats {
	s := DeviceStats{
		Requests:         g.stats.Requests,
		Bytes:            g.stats.Bytes,
		BytesRead:        g.stats.BytesRead,
		BytesWritten:     g.stats.BytesWritten,
		FailedRequests:   g.stats.FailedRequests,
		ReconstructReads: g.stats.ReconstructReads,
	}
	for _, m := range g.members {
		ms := m.Stats()
		s.BusyTime += ms.BusyTime
		s.FaultDelay += ms.FaultDelay
		s.SeqHits += ms.SeqHits
		s.RAEvictions += ms.RAEvictions
		s.RACollapses += ms.RACollapses
		s.QueueDepth += ms.QueueDepth
		s.DepthIntegral += ms.DepthIntegral
		if ms.MaxQueueDepth > s.MaxQueueDepth {
			s.MaxQueueDepth = ms.MaxQueueDepth
		}
	}
	s.BusyTime /= float64(len(g.members))
	s.FaultDelay /= float64(len(g.members))
	s.DepthIntegral /= float64(len(g.members))
	return s
}

// r5join tracks the completion of all member requests spawned by one logical
// request, including reconstruction reads issued after a child fails. The
// simulator is single-threaded, so plain counters suffice; children cannot
// complete before Submit returns because their completions are future events.
type r5join struct {
	g       *RAID5
	r       *Request
	pending int
	failed  bool
}

// childDone folds one member completion into the join and finishes the
// logical request when the last child completes.
func (j *r5join) childDone(c *Request) {
	j.r.service += c.service / float64(len(j.g.members))
	j.pending--
	if j.pending > 0 {
		return
	}
	g := j.g
	r := j.r
	g.stats.Requests++
	if j.failed {
		r.Failed = true
		g.stats.FailedRequests++
	} else {
		g.stats.Bytes += r.Size
		if r.Write {
			g.stats.BytesWritten += r.Size
		} else {
			g.stats.BytesRead += r.Size
		}
	}
	r.complete = g.engine.Now()
	if r.Done != nil {
		r.Done(r)
	}
}

// geometry of one logical chunk: the stripe row, the data member holding it,
// the parity member of the row, and the member-local byte range.
type r5loc struct {
	row          int64
	dataMember   int
	parityMember int
	memberOff    int64
	size         int64
}

// locate maps a unit-bounded logical byte range to its stripe location.
func (g *RAID5) locate(off, size int64) r5loc {
	n := int64(len(g.members))
	u := off / g.unit
	row := u / (n - 1)
	pos := int(u % (n - 1))
	parity := int(row % n)
	member := pos
	if member >= parity {
		member++
	}
	return r5loc{
		row:          row,
		dataMember:   member,
		parityMember: parity,
		memberOff:    row*g.unit + off%g.unit,
		size:         size,
	}
}

// Submit decomposes the logical request into per-unit member requests and
// completes it when every member request — including any reconstruction
// reads — has completed.
func (g *RAID5) Submit(r *Request) {
	r.issued = g.engine.Now()
	if r.Size <= 0 {
		panic(fmt.Sprintf("storage: RAID5 %q: non-positive request size %d", g.name, r.Size))
	}

	var locs []r5loc
	for off, left := r.Offset, r.Size; left > 0; {
		inUnit := g.unit - off%g.unit
		if inUnit > left {
			inUnit = left
		}
		locs = append(locs, g.locate(off, inUnit))
		off += inUnit
		left -= inUnit
	}

	j := &r5join{g: g, r: r}
	if r.Write {
		j.pending = 4 * len(locs)
	} else {
		j.pending = len(locs)
	}
	for _, loc := range locs {
		if r.Write {
			g.submitWrite(j, loc)
		} else {
			g.submitRead(j, loc)
		}
	}
}

// submitRead issues the data-unit read; if the member has failed, the failure
// triggers reconstruction from the surviving members.
func (g *RAID5) submitRead(j *r5join, loc r5loc) {
	child := &Request{
		Object: j.r.Object,
		Stream: j.r.Stream,
		Offset: loc.memberOff,
		Size:   loc.size,
		Done: func(c *Request) {
			if c.Failed {
				g.reconstruct(j, loc)
			}
			j.childDone(c)
		},
	}
	child.issued = g.engine.Now()
	g.members[loc.dataMember].Submit(child)
}

// reconstruct reads the stripe row from every surviving member to rebuild the
// unit that resided on the failed data member. A failed reconstruction read
// means a second member is down, which exhausts the redundancy and fails the
// logical request.
func (g *RAID5) reconstruct(j *r5join, loc r5loc) {
	n := len(g.members)
	j.pending += n - 1
	g.stats.ReconstructReads += int64(n - 1)
	for m := 0; m < n; m++ {
		if m == loc.dataMember {
			continue
		}
		child := &Request{
			Object: j.r.Object,
			Stream: j.r.Stream,
			Offset: loc.memberOff,
			Size:   loc.size,
			Done: func(c *Request) {
				if c.Failed {
					j.failed = true
				}
				j.childDone(c)
			},
		}
		child.issued = g.engine.Now()
		g.members[m].Submit(child)
	}
}

// submitWrite issues the small-write sequence for one unit: read old data,
// read old parity, write new data, write new parity. The four member
// requests run concurrently — the queueing model cares about load, not the
// strict read-modify-write ordering. Degraded cases:
//
//   - old-data read fails: the new parity must instead be computed from the
//     other data units of the row, so the surviving data members are read
//     (counted as reconstruction reads);
//   - data write fails but the parity write succeeds (or vice versa): the
//     stripe still encodes the data, the logical write succeeds;
//   - both the data and parity writes fail: redundancy is exhausted and the
//     logical request fails.
func (g *RAID5) submitWrite(j *r5join, loc r5loc) {
	var dataFailed, parityFailed bool
	check := func() {
		if dataFailed && parityFailed {
			j.failed = true
		}
	}
	submit := func(member int, write bool, done func(c *Request)) {
		child := &Request{
			Object: j.r.Object,
			Stream: j.r.Stream,
			Offset: loc.memberOff,
			Size:   loc.size,
			Write:  write,
			Done:   done,
		}
		child.issued = g.engine.Now()
		g.members[member].Submit(child)
	}
	// Read old data; on failure, read the row's other data units instead.
	submit(loc.dataMember, false, func(c *Request) {
		if c.Failed {
			g.reconstructForWrite(j, loc)
		}
		j.childDone(c)
	})
	// Read old parity; a failed parity member costs nothing extra.
	submit(loc.parityMember, false, func(c *Request) {
		j.childDone(c)
	})
	// Write new data.
	submit(loc.dataMember, true, func(c *Request) {
		if c.Failed {
			dataFailed = true
			check()
		}
		j.childDone(c)
	})
	// Write new parity.
	submit(loc.parityMember, true, func(c *Request) {
		if c.Failed {
			parityFailed = true
			check()
		}
		j.childDone(c)
	})
}

// reconstructForWrite reads the stripe row's other data units (everything but
// the failed data member and the parity member) so parity can be recomputed
// without the old data.
func (g *RAID5) reconstructForWrite(j *r5join, loc r5loc) {
	n := len(g.members)
	j.pending += n - 2
	g.stats.ReconstructReads += int64(n - 2)
	for m := 0; m < n; m++ {
		if m == loc.dataMember || m == loc.parityMember {
			continue
		}
		child := &Request{
			Object: j.r.Object,
			Stream: j.r.Stream,
			Offset: loc.memberOff,
			Size:   loc.size,
			Done: func(c *Request) {
				j.childDone(c)
			},
		}
		child.issued = g.engine.Now()
		g.members[m].Submit(child)
	}
}
