package storage

// Device is a storage target that services block I/O requests.
//
// Devices are attached to an Engine at construction time and schedule their
// own completion events on it. All submissions should go through
// Engine.Submit so they are captured by the trace recorder.
type Device interface {
	// Name identifies the device in traces and reports.
	Name() string
	// Capacity returns the device capacity in bytes.
	Capacity() int64
	// Submit enqueues a request for service.
	Submit(r *Request)
	// Stats returns a snapshot of the device's counters.
	Stats() DeviceStats
}

// DeviceStats is a snapshot of a device's activity counters.
type DeviceStats struct {
	Requests     int64   // requests completed
	Bytes        int64   // bytes transferred (reads + writes)
	BytesRead    int64   // bytes read
	BytesWritten int64   // bytes written
	BusyTime     float64 // seconds spent servicing requests
	SeqHits      int64   // requests serviced via the sequential fast path
	// RAEvictions counts read-ahead cache segments recycled to admit a
	// new stream: each one is a tracked sequential stream pushed off the
	// drive's fast path by interleaving competitors.
	RAEvictions int64
	// RACollapses counts stream-continuing (contiguous) requests that
	// nonetheless paid full positioning because their segment had been
	// evicted — the per-request signature of the paper's Fig. 8
	// interference collapse.
	RACollapses int64
	QueueDepth  int // requests currently waiting (excluding in service)
	// MaxQueueDepth is the deepest the wait queue ever got.
	MaxQueueDepth int
	// DepthIntegral is the time integral of the wait-queue depth
	// (request-seconds); divide by elapsed time for the mean depth.
	DepthIntegral float64

	// FailedRequests counts requests that completed with Request.Failed
	// set (the device had failed per its fault schedule). Failed requests
	// are included in Requests but transfer no bytes.
	FailedRequests int64
	// FaultDelay is the extra service time (seconds) injected by stall and
	// slow-disk faults; it is included in BusyTime.
	FaultDelay float64
	// ReconstructReads counts the extra member reads a degraded RAID group
	// issued to rebuild data that resided on a failed member.
	ReconstructReads int64
}

// Utilization returns the fraction of the elapsed time the device was busy.
func (s DeviceStats) Utilization(elapsed float64) float64 {
	if elapsed <= 0 {
		return 0
	}
	return s.BusyTime / elapsed
}

// MeanQueueDepth returns the time-averaged wait-queue depth over the given
// elapsed simulation time.
func (s DeviceStats) MeanQueueDepth(elapsed float64) float64 {
	if elapsed <= 0 {
		return 0
	}
	return s.DepthIntegral / elapsed
}

// queueDevice implements the single-server queueing skeleton shared by the
// disk and SSD models. The embedding model supplies the service-time
// function; the skeleton handles FIFO queueing, busy bookkeeping, and
// completion callbacks.
type queueDevice struct {
	engine *Engine
	name   string
	cap    int64

	queue     []*Request
	busy      bool
	stats     DeviceStats
	depthMark float64 // last time the depth integral was advanced
	service   func(r *Request, queueDepth int) float64
	faults    *FaultSchedule
}

// InjectFaults installs a deterministic fault schedule on the device. Disk
// and SSD inherit it; calling it again replaces the schedule. Requests
// already in service are unaffected.
func (d *queueDevice) InjectFaults(f FaultSchedule) error {
	if err := f.Validate(); err != nil {
		return err
	}
	d.faults = &f
	return nil
}

// noteDepth advances the queue-depth time integral up to now; call before
// any change to the queue length.
func (d *queueDevice) noteDepth() {
	now := d.engine.Now()
	d.stats.DepthIntegral += float64(len(d.queue)) * (now - d.depthMark)
	d.depthMark = now
}

func (d *queueDevice) Name() string    { return d.name }
func (d *queueDevice) Capacity() int64 { return d.cap }

func (d *queueDevice) Stats() DeviceStats {
	s := d.stats
	s.QueueDepth = len(d.queue)
	return s
}

func (d *queueDevice) Submit(r *Request) {
	d.noteDepth()
	d.queue = append(d.queue, r)
	if !d.busy {
		d.dispatch()
	}
	// Measured after the idle-dispatch so it matches QueueDepth's
	// "waiting, excluding in service" semantics.
	if n := len(d.queue); n > d.stats.MaxQueueDepth {
		d.stats.MaxQueueDepth = n
	}
}

// dispatch starts service on the request at the head of the queue, applying
// the fault schedule: a failed device completes the request quickly with
// Request.Failed set; stall and slow faults inflate the service time. Either
// way the time counts as busy, preserving the engine's service-time
// invariant.
func (d *queueDevice) dispatch() {
	d.noteDepth()
	r := d.queue[0]
	d.queue = d.queue[1:]
	d.busy = true
	now := d.engine.Now()
	var st float64
	if d.faults.failedAt(now) {
		r.Failed = true
		d.stats.FailedRequests++
		st = failLatency
	} else {
		st = d.service(r, len(d.queue))
		if penalized := d.faults.penalize(now, st); penalized != st {
			d.stats.FaultDelay += penalized - st
			st = penalized
		}
	}
	r.service = st
	d.stats.BusyTime += st
	d.engine.noteService(st)
	d.engine.After(st, func() { d.finish(r) })
}

func (d *queueDevice) finish(r *Request) {
	d.stats.Requests++
	if !r.Failed {
		d.stats.Bytes += r.Size
		if r.Write {
			d.stats.BytesWritten += r.Size
		} else {
			d.stats.BytesRead += r.Size
		}
	}
	r.complete = d.engine.Now()
	d.busy = false
	if len(d.queue) > 0 {
		d.dispatch()
	}
	if r.Done != nil {
		r.Done(r)
	}
}
