package storage

// Device is a storage target that services block I/O requests.
//
// Devices are attached to an Engine at construction time and schedule their
// own completion events on it. All submissions should go through
// Engine.Submit so they are captured by the trace recorder.
type Device interface {
	// Name identifies the device in traces and reports.
	Name() string
	// Capacity returns the device capacity in bytes.
	Capacity() int64
	// Submit enqueues a request for service.
	Submit(r *Request)
	// Stats returns a snapshot of the device's counters.
	Stats() DeviceStats
}

// DeviceStats is a snapshot of a device's activity counters.
type DeviceStats struct {
	Requests   int64   // requests completed
	Bytes      int64   // bytes transferred
	BusyTime   float64 // seconds spent servicing requests
	SeqHits    int64   // requests serviced via the sequential fast path
	QueueDepth int     // requests currently waiting (excluding in service)
}

// Utilization returns the fraction of the elapsed time the device was busy.
func (s DeviceStats) Utilization(elapsed float64) float64 {
	if elapsed <= 0 {
		return 0
	}
	return s.BusyTime / elapsed
}

// queueDevice implements the single-server queueing skeleton shared by the
// disk and SSD models. The embedding model supplies the service-time
// function; the skeleton handles FIFO queueing, busy bookkeeping, and
// completion callbacks.
type queueDevice struct {
	engine *Engine
	name   string
	cap    int64

	queue   []*Request
	busy    bool
	stats   DeviceStats
	service func(r *Request, queueDepth int) float64
}

func (d *queueDevice) Name() string    { return d.name }
func (d *queueDevice) Capacity() int64 { return d.cap }

func (d *queueDevice) Stats() DeviceStats {
	s := d.stats
	s.QueueDepth = len(d.queue)
	return s
}

func (d *queueDevice) Submit(r *Request) {
	d.queue = append(d.queue, r)
	if !d.busy {
		d.dispatch()
	}
}

// dispatch starts service on the request at the head of the queue.
func (d *queueDevice) dispatch() {
	r := d.queue[0]
	d.queue = d.queue[1:]
	d.busy = true
	st := d.service(r, len(d.queue))
	r.service = st
	d.stats.BusyTime += st
	d.engine.After(st, func() { d.finish(r) })
}

func (d *queueDevice) finish(r *Request) {
	d.stats.Requests++
	d.stats.Bytes += r.Size
	r.complete = d.engine.Now()
	d.busy = false
	if len(d.queue) > 0 {
		d.dispatch()
	}
	if r.Done != nil {
		r.Done(r)
	}
}
