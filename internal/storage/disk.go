package storage

import "fmt"

// DiskConfig parametrizes the mechanical disk model.
type DiskConfig struct {
	// CapacityBytes is the usable capacity.
	CapacityBytes int64
	// AvgSeek is the average random seek time in seconds.
	AvgSeek float64
	// MinSeek is the floor on the scheduled seek time in seconds.
	MinSeek float64
	// HalfRotation is the average rotational latency (half a revolution).
	HalfRotation float64
	// TransferRate is the media streaming rate in bytes/second.
	TransferRate float64
	// SeqOverhead is the fixed per-request cost on the sequential fast
	// path (command processing, cache-hit service).
	SeqOverhead float64
	// WriteSettle is the extra per-request cost of a non-sequential write.
	WriteSettle float64
	// SchedGain controls how quickly scheduling (elevator / C-LOOK)
	// shortens seeks as the queue grows: effective seek falls as
	// 1/(1+SchedGain*queueDepth) toward MinSeek.
	SchedGain float64
	// RASegments is the number of cache segments the drive's read-ahead
	// logic maintains: it can keep this many concurrently interleaved
	// streams on the fast path. With 2 segments, the sequential advantage
	// survives one temporally-correlated competitor and collapses when
	// the contention factor reaches 2 — the paper's Fig. 8 behaviour.
	RASegments int
	// RAWindow is the number of bytes the drive prefetches when it
	// (re)positions onto a tracked stream; interleaved streams pay one
	// positioning per window rather than per request.
	RAWindow int64
	// StreamTableSize bounds the per-drive stream tracking table (LRU).
	StreamTableSize int
}

// Disk15KConfig returns parameters modelled on the paper's 18.4 GB 15K RPM
// SCSI drives: ~3.5 ms average seek, 2 ms average rotational latency
// (15,000 RPM = 4 ms/rev), and ~72 MB/s streaming transfer.
func Disk15KConfig() DiskConfig {
	return DiskConfig{
		CapacityBytes:   18<<30 + 410<<20, // 18.4 GB
		AvgSeek:         3.5e-3,
		MinSeek:         0.5e-3,
		HalfRotation:    2.0e-3,
		TransferRate:    72 << 20,
		SeqOverhead:     0.10e-3,
		WriteSettle:     0.25e-3,
		SchedGain:       0.30,
		RASegments:      2,
		RAWindow:        64 << 10,
		StreamTableSize: 64,
	}
}

// Disk7200Config returns parameters modelled on a cost-effective nearline
// 7200 RPM SATA drive: slower positioning, comparable streaming rate. Used
// by the heterogeneity examples.
func Disk7200Config() DiskConfig {
	return DiskConfig{
		CapacityBytes:   250 << 30,
		AvgSeek:         8.0e-3,
		MinSeek:         1.0e-3,
		HalfRotation:    4.16e-3,
		TransferRate:    64 << 20,
		SeqOverhead:     0.12e-3,
		WriteSettle:     0.30e-3,
		SchedGain:       0.30,
		RASegments:      2,
		RAWindow:        64 << 10,
		StreamTableSize: 64,
	}
}

// streamEntry tracks one stream's sequential state on a drive.
type streamEntry struct {
	stream   uint64
	nextOff  int64 // offset the stream's next sequential request would have
	lastTick int64 // drive request counter at the stream's last access
	graceEnd int64 // end of the currently prefetched read-ahead window
}

// Disk is a single mechanical disk drive.
//
// The service-time model distinguishes three regimes for contiguous
// (stream-continuing) requests, governed by the drive's segmented read-ahead
// cache:
//
//   - undisturbed streaming: no foreign request intervened — media-rate
//     transfer plus fixed overhead;
//   - tracked interleave: the stream still owns a cache segment (at most
//     RASegments streams interleave). Requests inside the prefetched window
//     are cache hits; on window exhaustion the drive repositions once and
//     prefetches the next RAWindow bytes, so the positioning cost is
//     amortized over the window;
//   - evicted: more than RASegments streams interleave, the segment is
//     recycled before the stream returns, and every request pays full
//     positioning — the Fig. 8 interference collapse.
//
// Non-contiguous requests always pay positioning (seek + rotational
// latency + transfer), with scheduling gains shortening seeks as the queue
// deepens (the gently decreasing random-request cost in Fig. 8).
type Disk struct {
	queueDevice
	cfg     DiskConfig
	tick    int64 // request counter, advances on every serviced request
	streams []streamEntry
	// segments is the LRU list of stream ids currently owning a
	// read-ahead cache segment (most recent first).
	segments []uint64
}

// NewDisk attaches a new disk with the given configuration to the engine.
func NewDisk(e *Engine, name string, cfg DiskConfig) *Disk {
	if cfg.TransferRate <= 0 {
		panic(fmt.Sprintf("storage: disk %q: non-positive transfer rate", name))
	}
	d := &Disk{cfg: cfg}
	d.queueDevice = queueDevice{engine: e, name: name, cap: cfg.CapacityBytes, service: d.serviceTime}
	e.register(d)
	return d
}

// Config returns the disk's configuration.
func (d *Disk) Config() DiskConfig { return d.cfg }

// lookupStream finds the tracking entry for a stream, or nil.
func (d *Disk) lookupStream(id uint64) *streamEntry {
	for i := range d.streams {
		if d.streams[i].stream == id {
			return &d.streams[i]
		}
	}
	return nil
}

// noteStream records the stream's position after servicing a request.
func (d *Disk) noteStream(id uint64, nextOff, graceEnd int64) {
	if e := d.lookupStream(id); e != nil {
		e.nextOff = nextOff
		e.lastTick = d.tick
		e.graceEnd = graceEnd
		return
	}
	ent := streamEntry{stream: id, nextOff: nextOff, lastTick: d.tick, graceEnd: graceEnd}
	if len(d.streams) >= d.cfg.StreamTableSize && d.cfg.StreamTableSize > 0 {
		lru := 0
		for i := range d.streams {
			if d.streams[i].lastTick < d.streams[lru].lastTick {
				lru = i
			}
		}
		d.streams[lru] = ent
		return
	}
	d.streams = append(d.streams, ent)
}

// touchSegment marks the stream as owning a cache segment and reports
// whether it already owned one.
func (d *Disk) touchSegment(id uint64) bool {
	for i, s := range d.segments {
		if s == id {
			copy(d.segments[1:i+1], d.segments[:i])
			d.segments[0] = id
			return true
		}
	}
	n := d.cfg.RASegments
	if n < 1 {
		n = 1
	}
	if len(d.segments) >= n {
		// Recycling the LRU segment: its stream loses the fast path.
		d.segments = d.segments[:n-1]
		d.stats.RAEvictions++
	}
	d.segments = append([]uint64{id}, d.segments...)
	return false
}

// positioning returns the seek + rotation cost at the given queue depth.
func (d *Disk) positioning(queueDepth int) float64 {
	seek := d.cfg.MinSeek + (d.cfg.AvgSeek-d.cfg.MinSeek)/(1+d.cfg.SchedGain*float64(queueDepth))
	return seek + d.cfg.HalfRotation
}

// serviceTime computes the time to service r given the current queue depth.
func (d *Disk) serviceTime(r *Request, queueDepth int) float64 {
	d.tick++
	transfer := float64(r.Size) / d.cfg.TransferRate

	e := d.lookupStream(r.Stream)
	contiguous := e != nil && e.nextOff == r.Offset
	cached := d.touchSegment(r.Stream)

	if contiguous && cached {
		undisturbed := d.tick-e.lastTick == 1
		switch {
		case undisturbed:
			// Pure streaming.
			d.stats.SeqHits++
			d.noteStream(r.Stream, r.Offset+r.Size, r.Offset+r.Size+d.cfg.RAWindow)
			return d.cfg.SeqOverhead + transfer
		case r.Offset+r.Size <= e.graceEnd:
			// Interleaved, but the data was fully prefetched into
			// the stream's cache segment on the last (re)position.
			d.stats.SeqHits++
			grace := e.graceEnd
			d.noteStream(r.Stream, r.Offset+r.Size, grace)
			return d.cfg.SeqOverhead + transfer
		default:
			// Window exhausted: reposition once and prefetch the
			// next window. Resuming a stream means travelling back
			// to its zone from wherever the interleaved streams
			// left the head — a full-cost reposition that queue
			// scheduling cannot shorten.
			d.noteStream(r.Stream, r.Offset+r.Size, r.Offset+r.Size+d.cfg.RAWindow)
			return d.cfg.AvgSeek + d.cfg.HalfRotation + transfer
		}
	}

	// Random access, a brand-new stream, or a stream whose cache segment
	// was recycled: full positioning.
	if contiguous && !cached {
		d.stats.RACollapses++
	}
	d.noteStream(r.Stream, r.Offset+r.Size, 0)
	st := d.positioning(queueDepth) + transfer
	if r.Write {
		st += d.cfg.WriteSettle
	}
	return st
}
