package storage

import (
	"fmt"
	"math"
)

// failLatency is the time a failed device takes to complete a request with an
// error (500 microseconds — a controller timeout/abort, not a full service).
const failLatency = 500e-6

// Stall is a transient fault window: every request dispatched during
// [Start, Start+Duration) pays an extra Delay seconds of service time, the
// signature of controller retries or internal cache flushes.
type Stall struct {
	Start    float64 `json:"start"`
	Duration float64 `json:"duration"`
	Delay    float64 `json:"delay"`
}

// SlowFault is sustained degradation: from time At onward every service time
// is multiplied by Factor (>= 1) — a remapped-sector-ridden disk or a
// throttled, overheating drive.
type SlowFault struct {
	At     float64 `json:"at"`
	Factor float64 `json:"factor"`
}

// FailFault is a full device failure: from time At onward every request
// completes quickly with Request.Failed set and no data transferred.
type FailFault struct {
	At float64 `json:"at"`
}

// FaultSchedule is a deterministic per-device fault plan in simulated time.
// The zero value injects nothing. Schedules compose: a device may stall,
// then slow down, then fail outright.
type FaultSchedule struct {
	Stalls []Stall    `json:"stalls,omitempty"`
	Slow   *SlowFault `json:"slow,omitempty"`
	Fail   *FailFault `json:"fail,omitempty"`
}

// Validate rejects non-finite or negative times, delays below zero, and slow
// factors below 1.
func (f *FaultSchedule) Validate() error {
	if f == nil {
		return nil
	}
	bad := func(v float64) bool { return math.IsNaN(v) || math.IsInf(v, 0) || v < 0 }
	for i, s := range f.Stalls {
		if bad(s.Start) || bad(s.Duration) || bad(s.Delay) {
			return fmt.Errorf("storage: stall %d has invalid start=%g duration=%g delay=%g", i, s.Start, s.Duration, s.Delay)
		}
	}
	if f.Slow != nil {
		if bad(f.Slow.At) || math.IsNaN(f.Slow.Factor) || f.Slow.Factor < 1 || math.IsInf(f.Slow.Factor, 0) {
			return fmt.Errorf("storage: slow fault has invalid at=%g factor=%g (factor must be >= 1)", f.Slow.At, f.Slow.Factor)
		}
	}
	if f.Fail != nil && bad(f.Fail.At) {
		return fmt.Errorf("storage: fail fault has invalid at=%g", f.Fail.At)
	}
	return nil
}

// failedAt reports whether the device has failed by time now.
func (f *FaultSchedule) failedAt(now float64) bool {
	return f != nil && f.Fail != nil && now >= f.Fail.At
}

// penalize maps a base service time to the degraded service time at now.
func (f *FaultSchedule) penalize(now, base float64) float64 {
	if f == nil {
		return base
	}
	st := base
	if f.Slow != nil && now >= f.Slow.At {
		st *= f.Slow.Factor
	}
	for _, s := range f.Stalls {
		if now >= s.Start && now < s.Start+s.Duration {
			st += s.Delay
		}
	}
	return st
}

// FaultInjector is implemented by devices that accept a fault schedule. Disk
// and SSD implement it; RAID groups do not — inject into their members
// instead, which is what real controllers observe.
type FaultInjector interface {
	InjectFaults(f FaultSchedule) error
}
