package storage

import "math/rand"

// AccessPattern produces the successive requests of one I/O stream.
// Implementations must be deterministic given their own RNG so that
// simulations are reproducible.
type AccessPattern interface {
	// Next returns the next request's placement, or ok=false when the
	// stream is exhausted.
	Next() (offset, size int64, write bool, ok bool)
}

// RunPattern generates runs of sequential requests separated by random
// jumps — the access shape the Rome run-count parameter describes. RunLen=1
// yields a purely random pattern; a RunLen covering the whole extent yields
// one long scan.
type RunPattern struct {
	Rng       *rand.Rand // randomness source (required unless fully sequential)
	Base      int64      // first addressable byte
	Extent    int64      // addressable bytes after Base
	Size      int64      // request size in bytes
	RunLen    int64      // requests per sequential run (>= 1)
	Count     int64      // total requests to produce; < 0 means unbounded
	WriteFrac float64    // probability a run is a run of writes

	issued  int64
	inRun   int64
	off     int64
	writing bool
	started bool
}

// Next implements AccessPattern.
func (p *RunPattern) Next() (int64, int64, bool, bool) {
	if p.Count >= 0 && p.issued >= p.Count {
		return 0, 0, false, false
	}
	if p.RunLen < 1 {
		p.RunLen = 1
	}
	if !p.started || p.inRun >= p.RunLen || p.off+p.Size > p.Base+p.Extent {
		// Start a new run at a random aligned position.
		p.started = true
		p.inRun = 0
		slots := p.Extent / p.Size
		if slots < 1 {
			slots = 1
		}
		var slot int64
		if p.Rng != nil {
			slot = p.Rng.Int63n(slots)
		}
		p.off = p.Base + slot*p.Size
		p.writing = p.WriteFrac > 0 && (p.WriteFrac >= 1 || (p.Rng != nil && p.Rng.Float64() < p.WriteFrac))
	}
	off := p.off
	p.off += p.Size
	p.inRun++
	p.issued++
	return off, p.Size, p.writing, true
}

// ScanPattern returns a pattern that reads (or writes) the extent
// [base, base+extent) once, sequentially, in size-byte requests.
func ScanPattern(base, extent, size int64, write bool) *RunPattern {
	count := extent / size
	if count < 1 {
		count = 1
	}
	wf := 0.0
	if write {
		wf = 1.0
	}
	return &RunPattern{Base: base, Extent: extent, Size: size, RunLen: count, Count: count, WriteFrac: wf}
}

// ClosedSource drives an AccessPattern against a device in a closed loop:
// the next request is issued Think seconds after the previous one completes.
// This models a synchronous I/O path such as a database scan.
type ClosedSource struct {
	Engine  *Engine
	Device  Device
	Object  int
	Stream  uint64
	Pattern AccessPattern
	Think   float64          // delay between completion and next issue
	OnDone  func(at float64) // invoked when the pattern is exhausted
	// OnComplete, when non-nil, observes every completed request (used by
	// the cost-model calibration harness to measure service times).
	OnComplete func(r *Request)

	inflight bool
}

// Start issues the stream's first request. It is a no-op on an exhausted
// pattern (OnDone fires immediately).
func (s *ClosedSource) Start() { s.issueNext() }

func (s *ClosedSource) issueNext() {
	off, size, write, ok := s.Pattern.Next()
	if !ok {
		if s.OnDone != nil {
			s.OnDone(s.Engine.Now())
		}
		return
	}
	s.inflight = true
	req := &Request{
		Object: s.Object,
		Stream: s.Stream,
		Offset: off,
		Size:   size,
		Write:  write,
		Done: func(r *Request) {
			s.inflight = false
			if s.OnComplete != nil {
				s.OnComplete(r)
			}
			if s.Think > 0 {
				s.Engine.After(s.Think, s.issueNext)
			} else {
				s.issueNext()
			}
		},
	}
	s.Engine.Submit(s.Device, req)
}

// OpenSource drives an AccessPattern against a device in an open loop:
// requests arrive as a Poisson process at the configured rate regardless of
// completions. It models background load with a known request rate, as the
// calibration harness requires.
type OpenSource struct {
	Engine  *Engine
	Device  Device
	Object  int
	Stream  uint64
	Pattern AccessPattern
	Rate    float64 // arrivals per second (> 0)
	Rng     *rand.Rand
	OnDone  func(at float64)

	outstanding int64
	exhausted   bool
}

// Start schedules the first arrival.
func (s *OpenSource) Start() {
	if s.Rate <= 0 {
		panic("storage: OpenSource with non-positive rate")
	}
	s.scheduleArrival()
}

func (s *OpenSource) scheduleArrival() {
	delay := s.Rng.ExpFloat64() / s.Rate
	s.Engine.After(delay, s.arrive)
}

func (s *OpenSource) arrive() {
	off, size, write, ok := s.Pattern.Next()
	if !ok {
		s.exhausted = true
		s.maybeDone()
		return
	}
	s.outstanding++
	req := &Request{
		Object: s.Object,
		Stream: s.Stream,
		Offset: off,
		Size:   size,
		Write:  write,
		Done: func(_ *Request) {
			s.outstanding--
			s.maybeDone()
		},
	}
	s.Engine.Submit(s.Device, req)
	s.scheduleArrival()
}

func (s *OpenSource) maybeDone() {
	if s.exhausted && s.outstanding == 0 && s.OnDone != nil {
		s.OnDone(s.Engine.Now())
		s.OnDone = nil
	}
}
