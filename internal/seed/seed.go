// Package seed centralizes pseudo-random stream derivation. Every random
// stream in the repository is derived from a caller-provided base seed plus
// a structured stream identity (which subsystem, which restart, which
// calibration cell, ...). Before this helper existed each call site invented
// its own offset arithmetic (Seed+1, Seed+2, Seed*7919+run*13, ...), which
// made collisions between streams — two different consumers unknowingly
// drawing the same sequence — easy to introduce and hard to notice. Sub
// centralizes the derivation behind a 64-bit mixing function so that
// distinct identity paths yield statistically independent streams for every
// base seed, including 0.
//
// The package has no dependencies so every layer (costmodel, replay, nlp,
// core) can use it without import cycles. Solver-facing code usually goes
// through the nlp package's aliases (nlp.SubSeed, nlp.StreamTransfer, ...).
package seed

// Stream identities for Sub's first path element. New consumers must add a
// constant here rather than passing ad-hoc literals, so this registry stays
// the single place where stream separation is audited.
const (
	// StreamTransfer feeds TransferSearch's per-restart perturbations.
	StreamTransfer int64 = iota + 1
	// StreamAnneal feeds Anneal's per-restart move/acceptance randomness.
	StreamAnneal
	// StreamProjGrad feeds ProjectedGradient's per-restart perturbations.
	StreamProjGrad
	// StreamAdvisor derives the per-(initial layout, round) solver seeds
	// inside core.Advisor's multi-start loop.
	StreamAdvisor
	// StreamReplay feeds the replay engine's query permutation and random
	// access patterns.
	StreamReplay
	// StreamCalibrate derives the per-cell seeds of cost-model calibration
	// sweeps.
	StreamCalibrate
	// StreamRepair derives the solver seed of failure-aware repair solves.
	StreamRepair
	// StreamControl derives the autonomic controller's per-(epoch, attempt)
	// streams: re-advise solver seeds and retry-backoff jitter.
	StreamControl
	// StreamChaos derives the per-scenario streams of the controller chaos
	// campaign (workload synthesis, fault schedules, crash points).
	StreamChaos
	// StreamHierarchy derives the per-cluster solver seeds of the
	// hierarchical fleet-scale decomposition (element -1 seeds the global
	// reconciliation pass).
	StreamHierarchy
)

// Sub derives the seed of an independent pseudo-random stream from a base
// seed and a stream identity path. The first path element should be one of
// the Stream* constants; further elements identify the instance of the
// stream (restart index, round, cell coordinates, ...). Two calls with the
// same arguments always return the same value; calls whose paths differ in
// any element return unrelated values. The zero base seed is a valid
// deterministic default, never a request for entropy.
func Sub(base int64, path ...int64) int64 {
	x := mix64(uint64(base))
	for _, p := range path {
		// Fold each path element in with a round of mixing so that
		// (a, b) and (a', b') paths with a+b == a'+b' still diverge.
		x = mix64(x ^ mix64(uint64(p)+0x9e3779b97f4a7c15))
	}
	return int64(x)
}

// mix64 is the SplitMix64 finalizer (Steele, Lea, Flood: "Fast Splittable
// Pseudorandom Number Generators"), a bijective avalanche mix: every input
// bit affects every output bit with probability ~1/2.
func mix64(z uint64) uint64 {
	z += 0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}
