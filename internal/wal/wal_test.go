package wal

import (
	"bytes"
	"errors"
	"fmt"
	"hash/crc32"
	"testing"
)

func mustAppend(t *testing.T, w *bytes.Buffer, body string) {
	t.Helper()
	if err := Append(w, []byte(body)); err != nil {
		t.Fatalf("Append(%q): %v", body, err)
	}
}

func TestRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	bodies := []string{`{"t":"plan"}`, `{"t":"state","step":0}`, ``, `plain text`}
	for _, b := range bodies {
		mustAppend(t, &buf, b)
	}
	frames, err := Frames(buf.Bytes())
	if err != nil {
		t.Fatalf("Frames: %v", err)
	}
	if len(frames) != len(bodies) {
		t.Fatalf("decoded %d frames, want %d", len(frames), len(bodies))
	}
	for i, b := range bodies {
		if string(frames[i]) != b {
			t.Errorf("frame %d = %q, want %q", i, frames[i], b)
		}
	}
}

func TestAppendRejectsNewline(t *testing.T) {
	var buf bytes.Buffer
	if err := Append(&buf, []byte("two\nlines")); err == nil {
		t.Fatal("Append accepted a body with an embedded newline")
	}
	if buf.Len() != 0 {
		t.Fatalf("rejected append still wrote %d bytes", buf.Len())
	}
}

func TestTornTailIgnored(t *testing.T) {
	var buf bytes.Buffer
	mustAppend(t, &buf, "alpha")
	mustAppend(t, &buf, "beta")
	full := append([]byte(nil), buf.Bytes()...)
	// Tear the journal at every possible byte offset into the final line.
	last := bytes.LastIndexByte(full[:len(full)-1], '\n') + 1
	for cut := last; cut < len(full); cut++ {
		frames, err := Frames(full[:cut])
		if err != nil {
			t.Fatalf("cut %d: Frames: %v", cut, err)
		}
		if len(frames) != 1 || string(frames[0]) != "alpha" {
			t.Fatalf("cut %d: frames = %q, want [alpha]", cut, frames)
		}
		trunc := TruncateTorn(full[:cut])
		if !bytes.Equal(trunc, full[:last]) {
			t.Fatalf("cut %d: TruncateTorn = %q, want %q", cut, trunc, full[:last])
		}
	}
}

func TestTruncateTornNoNewline(t *testing.T) {
	if got := TruncateTorn([]byte("no newline at all")); got != nil {
		t.Fatalf("TruncateTorn with no newline = %q, want nil", got)
	}
	if got := TruncateTorn(nil); got != nil {
		t.Fatalf("TruncateTorn(nil) = %q, want nil", got)
	}
}

func TestCorruptionDetected(t *testing.T) {
	body := []byte("payload")
	good := fmt.Sprintf("%08x %s\n", crc32.ChecksumIEEE(body), body)
	cases := []struct {
		name string
		data string
	}{
		{"short line", "abc\n"},
		{"missing space", "0123456789\n"},
		{"bad checksum field", "zzzzzzzz payload\n"},
		{"checksum mismatch", "00000000 payload\n"},
		{"flipped body bit", good[:9] + "Payload\n"},
		{"corrupt middle frame", "short\n" + good},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := Frames([]byte(tc.data))
			var fe *FrameError
			if !errors.As(err, &fe) {
				t.Fatalf("Frames(%q) err = %v, want *FrameError", tc.data, err)
			}
		})
	}
}

func TestFrameErrorIndex(t *testing.T) {
	var buf bytes.Buffer
	mustAppend(t, &buf, "one")
	mustAppend(t, &buf, "two")
	buf.WriteString("corrupt line\n")
	_, err := Frames(buf.Bytes())
	var fe *FrameError
	if !errors.As(err, &fe) {
		t.Fatalf("err = %v, want *FrameError", err)
	}
	if fe.Index != 2 {
		t.Fatalf("FrameError.Index = %d, want 2", fe.Index)
	}
}

func TestNeverPanics(t *testing.T) {
	inputs := [][]byte{
		nil,
		[]byte("\n"),
		[]byte("\n\n\n"),
		[]byte("00000000 \n"),
		bytes.Repeat([]byte{0}, 64),
		[]byte("ffffffff" + string(rune(0)) + "x\n"),
	}
	for _, in := range inputs {
		// Corruption errors are fine; panics are not.
		Frames(in)
		TruncateTorn(in)
	}
}
