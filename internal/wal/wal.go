// Package wal implements the CRC-framed line protocol shared by every
// write-ahead journal in the repository (the migration engine's step journal
// and the autonomic controller's decision journal). A journal is a sequence
// of lines, each "%08x %s\n": the IEEE CRC32 of the record body followed by
// the body itself. A record is durable only once its newline is written, so
// a torn final line — the signature of a crash mid-write — is recoverable by
// truncation, while corruption anywhere else is detected by the checksum and
// surfaced as an error.
//
// The package deliberately knows nothing about record contents: bodies are
// opaque byte slices (in practice single-line JSON). Each journal layers its
// own record schema and state-machine validation on top.
package wal

import (
	"bytes"
	"fmt"
	"hash/crc32"
	"io"
	"strconv"
)

// FrameError pinpoints a malformed or corrupt frame. Journals wrap it in
// their own corruption sentinels.
type FrameError struct {
	Index  int    // zero-based index of the bad frame
	Reason string // what was wrong with it
}

func (e *FrameError) Error() string {
	return fmt.Sprintf("wal: frame %d: %s", e.Index, e.Reason)
}

// Append writes one framed record to w. The body must be newline-free (a
// newline would terminate the frame early and corrupt the journal); embedded
// newlines are rejected rather than silently split. Any write error —
// including a short write, which leaves a torn line — is a crash from the
// journal owner's point of view.
func Append(w io.Writer, body []byte) error {
	if bytes.IndexByte(body, '\n') >= 0 {
		return fmt.Errorf("wal: record body contains a newline")
	}
	_, err := fmt.Fprintf(w, "%08x %s\n", crc32.ChecksumIEEE(body), body)
	return err
}

// Syncer is the optional durability surface of a journal sink. *os.File
// implements it; in-memory buffers and test fakes may or may not.
type Syncer interface {
	Sync() error
}

// Sync flushes w to stable storage if it is sync-capable, and is a no-op
// otherwise. Journal owners call it after appending a record whose
// durability the protocol depends on ("journal before transition"): without
// the fsync, a power loss can lose a record the OS had only buffered, even
// though the append call succeeded.
func Sync(w io.Writer) error {
	if s, ok := w.(Syncer); ok {
		return s.Sync()
	}
	return nil
}

// Frames parses journal bytes into the sequence of record bodies. A torn
// final line (no trailing newline) is ignored; any other malformation —
// a bad checksum field, a checksum mismatch, a line too short to carry a
// frame — returns a *FrameError. It never panics, regardless of input.
//
// The returned bodies alias data; callers that mutate data must copy first.
func Frames(data []byte) ([][]byte, error) {
	var out [][]byte
	for len(data) > 0 {
		nl := bytes.IndexByte(data, '\n')
		if nl < 0 {
			break // torn tail
		}
		line := data[:nl]
		data = data[nl+1:]
		body, err := DecodeFrame(line, len(out))
		if err != nil {
			return nil, err
		}
		out = append(out, body)
	}
	return out, nil
}

// DecodeFrame validates one newline-less frame line and returns its body.
// idx is the frame's position, used only for error reporting.
func DecodeFrame(line []byte, idx int) ([]byte, error) {
	corrupt := func(format string, args ...interface{}) ([]byte, error) {
		return nil, &FrameError{Index: idx, Reason: fmt.Sprintf(format, args...)}
	}
	if len(line) < 9 || line[8] != ' ' {
		return corrupt("malformed line %q", Truncate(line))
	}
	sum, err := strconv.ParseUint(string(line[:8]), 16, 32)
	if err != nil {
		return corrupt("bad checksum field %q", string(line[:8]))
	}
	body := line[9:]
	if got := crc32.ChecksumIEEE(body); got != uint32(sum) {
		return corrupt("checksum mismatch: have %08x, body sums to %08x", uint32(sum), got)
	}
	return body, nil
}

// TruncateTorn returns the journal prefix ending at the last newline — the
// durable records — discarding a torn final line left by a crash mid-write.
// Resuming callers truncate the journal file likewise before appending, so
// new records are never glued onto a torn line.
func TruncateTorn(data []byte) []byte {
	if i := bytes.LastIndexByte(data, '\n'); i >= 0 {
		return data[:i+1]
	}
	return nil
}

// Truncate renders a byte slice for error messages, bounding its length.
func Truncate(b []byte) string {
	const max = 40
	if len(b) > max {
		return string(b[:max]) + "..."
	}
	return string(b)
}
