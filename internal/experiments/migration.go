package experiments

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"strings"
	"time"

	"dblayout/internal/benchdb"
	"dblayout/internal/core"
	"dblayout/internal/layout"
	"dblayout/internal/migrate"
	"dblayout/internal/nlp"
	"dblayout/internal/replay"
	"dblayout/internal/storage"
)

// MigrationScenario is one online-migration run at a given copy throttle,
// interleaved with the OLAP1-63 foreground workload.
type MigrationScenario struct {
	// Name labels the throttle setting.
	Name string
	// RateMiB is the copy throttle in MiB/s (0 = unthrottled).
	RateMiB float64
	// Elapsed is the total simulated time until both the foreground
	// workload and the migration finished.
	Elapsed float64
	// MigrationElapsed is the simulated time the copy stream took.
	MigrationElapsed float64
	// CopiedMiB is the committed payload volume.
	CopiedMiB float64
	// EffectiveMiB is CopiedMiB / MigrationElapsed — the achieved copy
	// rate after throttling and queue-yielding to foreground traffic.
	EffectiveMiB float64
	// JournalRecords counts the write-ahead records the run produced.
	JournalRecords int
}

// MigrationResult reports the online-migration study: deploying the
// advisor's recommendation on a live system with the crash-safe engine, at
// several throttle settings, plus a destination-failure scenario that
// aborts, replans around the dead disk, and evacuates it in reconstruction
// mode.
type MigrationResult struct {
	// Moves / Steps / Staged describe the SEE -> optimized migration:
	// plan moves, executable script steps, and how many moves had to be
	// staged through scratch space to break capacity cycles.
	Moves, Steps, Staged int
	// ScratchTarget and ScratchMiB describe the scratch reservation.
	ScratchTarget string
	ScratchMiB    float64
	// PlanMiB is the payload volume the plan moves.
	PlanMiB float64
	// BaselineElapsed is the OLAP run under SEE with no migration.
	BaselineElapsed float64
	// PostElapsed is the OLAP run under the optimized layout after the
	// migration completed.
	PostElapsed float64
	// Scenarios are the throttled online runs.
	Scenarios []MigrationScenario

	// FaultTarget is the destination disk failed mid-copy, at simulated
	// time FaultAt.
	FaultTarget string
	FaultAt     float64
	// FaultCommitted counts the script steps that had committed before
	// the abort (of FaultSteps total).
	FaultCommitted, FaultSteps int
	// RepairMoves and RepairMiB describe the replanned evacuation.
	RepairMoves int
	RepairMiB   float64
	// ReconstructedMiB is the volume written in reconstruction mode (the
	// dead disk could not be read).
	ReconstructedMiB float64
	// RepairElapsed is the simulated time of the evacuation run.
	RepairElapsed float64
	// RepairTime is the wall-clock time the replanning took.
	RepairTime time.Duration
}

// migrationRates are the studied copy throttles in MiB/s (0 = unthrottled).
var migrationRates = []float64{0, 32, 8}

// Migration runs the online-migration study on the four-disk system under
// OLAP1-63:
//
//  1. trace + fit + advise (the normal pipeline) to get the optimized
//     layout, with SEE as the layout the data occupies today;
//  2. execute the SEE -> optimized migration online while the workload
//     replays, at each throttle in migrationRates, journaling every move;
//  3. fail the destination disk of the final script step mid-copy: the
//     engine rolls back the in-flight move, aborts into a consistent
//     layout, RecommendRepair replans around the dead disk, and a
//     reconstruction-mode execution evacuates it.
func Migration(cfg *Config) (*MigrationResult, error) {
	w := cfg.trimOLAP(benchdb.OLAP163())
	objects := w.Catalog.Objects
	sys := fourDisks(objects)
	see := layout.SEE(len(objects), len(sys.Devices))

	base, inst, err := cfg.traceAndFit(sys, see, w)
	if err != nil {
		return nil, fmt.Errorf("experiments: migration trace: %w", err)
	}
	rec, err := cfg.advise(inst)
	if err != nil {
		return nil, fmt.Errorf("experiments: migration advise: %w", err)
	}
	sizes, capacities := inst.Sizes(), inst.Capacities()
	scratch := migrate.AutoScratch(see, rec.Final, sizes, capacities)

	out := &MigrationResult{BaselineElapsed: base.Elapsed}
	if scratch.Bytes > 0 {
		out.ScratchTarget = inst.Targets[scratch.Target].Name
		out.ScratchMiB = float64(scratch.Bytes) / (1 << 20)
	}

	// Online migration under foreground OLAP traffic at each throttle.
	var script []migrate.Step
	for _, rate := range migrationRates {
		name := "unthrottled"
		if rate > 0 {
			name = fmt.Sprintf("%.0f MiB/s", rate)
		}
		var journal bytes.Buffer
		eres, err := migrate.Execute(fourDisks(objects), see, rec.Final, w,
			replay.Options{Seed: cfg.Seed, Metrics: cfg.Metrics, Logger: cfg.Logger},
			migrate.Options{
				BytesPerSec: rate * (1 << 20),
				Scratch:     scratch,
				Journal:     &journal,
				Metrics:     cfg.Metrics,
			})
		if err != nil {
			return nil, fmt.Errorf("experiments: migration (%s): %w", name, err)
		}
		m := eres.Migration
		if !m.Done {
			return nil, fmt.Errorf("experiments: migration (%s) did not finish", name)
		}
		if script == nil {
			script = eres.Script
			out.Moves, out.Steps = len(eres.Plan), len(eres.Script)
			for _, s := range eres.Script {
				if s.Kind == migrate.StepStageIn {
					out.Staged++
				}
			}
			out.PlanMiB = float64(layout.PlanBytes(eres.Plan)) / (1 << 20)
		}
		sc := MigrationScenario{
			Name:             name,
			RateMiB:          rate,
			Elapsed:          eres.Replay.Elapsed,
			MigrationElapsed: m.Elapsed,
			CopiedMiB:        float64(m.CommittedBytes) / (1 << 20),
			JournalRecords:   m.JournalRecords,
		}
		if m.Elapsed > 0 {
			sc.EffectiveMiB = sc.CopiedMiB / m.Elapsed
		}
		out.Scenarios = append(out.Scenarios, sc)
	}
	if len(script) == 0 {
		return nil, fmt.Errorf("experiments: recommendation equals SEE; nothing to migrate")
	}

	// The optimized layout after migration, with the system to itself.
	post, err := replayOLAP(fourDisks(objects), rec.Final, w, cfg)
	if err != nil {
		return nil, err
	}
	out.PostElapsed = post.Elapsed

	// Destination-failure scenario: kill the destination of the final
	// script step partway through the unthrottled copy, so at least that
	// step is still uncommitted when the fault hits.
	fault := script[len(script)-1].Move.To
	out.FaultTarget = inst.Targets[fault].Name
	out.FaultAt = 0.4 * out.Scenarios[0].MigrationElapsed
	fsys := fourDisks(objects)
	fsys.Devices[fault].Faults = &storage.FaultSchedule{Fail: &storage.FailFault{At: out.FaultAt}}
	var fjournal bytes.Buffer
	fres, err := migrate.Execute(fsys, see, rec.Final, w,
		replay.Options{Seed: cfg.Seed, Logger: cfg.Logger},
		migrate.Options{Scratch: scratch, Journal: &fjournal})
	if !errors.Is(err, migrate.ErrMigrationAborted) {
		return nil, fmt.Errorf("experiments: fault scenario: got %v, want migration abort", err)
	}
	m := fres.Migration
	out.FaultCommitted, out.FaultSteps = m.Committed, len(fres.Script)

	// Replan around the dead disk and evacuate it in reconstruction mode.
	start := time.Now()
	rep, _, err := migrate.Replan(context.Background(), inst, m,
		core.Options{NLP: nlp.Options{Seed: cfg.Seed, Trace: cfg.Trace, Workers: cfg.Workers}, Logger: cfg.Logger},
		repairScratch(m.Layout, sizes, capacities, m.FailedTargets))
	if err != nil {
		return nil, fmt.Errorf("experiments: migration replan: %w", err)
	}
	out.RepairTime = time.Since(start)
	out.RepairMoves = len(rep.Plan)
	out.RepairMiB = float64(rep.PlanBytes) / (1 << 20)

	rsys := fourDisks(objects)
	rsys.Devices[fault].Faults = &storage.FaultSchedule{Fail: &storage.FailFault{At: 0}}
	// Neither the aborted mid-migration layout nor a repair of it needs to
	// be regular, and the LVM mapper only implements regular layouts. The
	// evacuation runs idle — no foreground I/O consults the mapper — so any
	// regular stand-in validates the run.
	mapper := rep.Layout
	if !mapper.IsRegular() {
		mapper = see
	}
	var rjournal bytes.Buffer
	rres, err := migrate.Execute(rsys, m.Layout, rep.Layout, nil,
		replay.Options{Seed: cfg.Seed, Logger: cfg.Logger},
		migrate.Options{
			Scratch:       repairScratch(m.Layout, sizes, capacities, m.FailedTargets),
			Journal:       &rjournal,
			FailedSources: m.FailedTargets,
			MapperLayout:  mapper,
		})
	if err != nil {
		return nil, fmt.Errorf("experiments: evacuation: %w", err)
	}
	if !rres.Migration.Done {
		return nil, fmt.Errorf("experiments: evacuation did not finish")
	}
	out.ReconstructedMiB = float64(rres.Migration.ReconstructedBytes) / (1 << 20)
	out.RepairElapsed = rres.Migration.Elapsed
	return out, nil
}

// repairScratch picks a scratch reservation for an evacuation like
// migrate.AutoScratch, but never on a failed target: half the largest
// headroom under the current layout among the survivors.
func repairScratch(current *layout.Layout, sizes, capacities []int64, failed []int) migrate.ScratchSpec {
	dead := make(map[int]bool, len(failed))
	for _, j := range failed {
		dead[j] = true
	}
	best, bestBytes := -1, int64(0)
	for j := 0; j < len(capacities); j++ {
		if dead[j] {
			continue
		}
		if b := int64(float64(capacities[j]) - current.TargetBytes(j, sizes)); b > bestBytes {
			best, bestBytes = j, b
		}
	}
	if best < 0 {
		return migrate.ScratchSpec{}
	}
	return migrate.ScratchSpec{Target: best, Bytes: bestBytes / 2}
}

// MigrationTable renders the online-migration study.
func MigrationTable(r *MigrationResult) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "migration: %d moves -> %d steps (%d staged", r.Moves, r.Steps, r.Staged)
	if r.ScratchTarget != "" {
		fmt.Fprintf(&sb, " through %.0f MiB scratch on %s", r.ScratchMiB, r.ScratchTarget)
	}
	fmt.Fprintf(&sb, "), %.0f MiB payload\n\n", r.PlanMiB)

	fmt.Fprintf(&sb, "%-14s %12s %12s %12s %10s %9s\n",
		"Copy throttle", "Total(s)", "Copy(s)", "Copied(MiB)", "Eff(MiB/s)", "Journal")
	fmt.Fprintf(&sb, "%-14s %12.0f %12s %12s %10s %9s\n",
		"none (SEE)", r.BaselineElapsed, "-", "-", "-", "-")
	for _, s := range r.Scenarios {
		fmt.Fprintf(&sb, "%-14s %12.0f %12.0f %12.0f %10.1f %9d\n",
			s.Name, s.Elapsed, s.MigrationElapsed, s.CopiedMiB, s.EffectiveMiB, s.JournalRecords)
	}
	fmt.Fprintf(&sb, "%-14s %12.0f %12s %12s %10s %9s\n",
		"done (opt)", r.PostElapsed, "-", "-", "-", "-")

	fmt.Fprintf(&sb, "\nfault: %s failed at t=%.0fs with %d/%d steps committed;\n",
		r.FaultTarget, r.FaultAt, r.FaultCommitted, r.FaultSteps)
	fmt.Fprintf(&sb, "repair replanned %d moves (%.0f MiB) in %v, evacuated in %.0f simulated s\n",
		r.RepairMoves, r.RepairMiB, r.RepairTime.Round(time.Millisecond), r.RepairElapsed)
	fmt.Fprintf(&sb, "reconstruction-mode writes: %.0f MiB (dead disk unreadable)\n", r.ReconstructedMiB)
	return sb.String()
}
