package experiments

import (
	"fmt"
	"strings"

	"dblayout/internal/benchdb"
	"dblayout/internal/core"
	"dblayout/internal/layout"
	"dblayout/internal/nlp"
)

// AblationRow reports one advisor variant on the same fitted instance.
type AblationRow struct {
	Variant string
	// Predicted is the model objective (max utilization) of the final
	// layout; Replayed is the measured workload elapsed time under it.
	Predicted float64
	Replayed  float64
}

// Ablation evaluates the design choices DESIGN.md stars, on the OLAP1-63
// homogeneous instance: solver strategy, initial layout, and the
// regularization/polish pipeline. Every variant is both predicted (model
// objective) and replayed (measured elapsed seconds).
func Ablation(cfg *Config) ([]AblationRow, error) {
	w := cfg.trimOLAP(benchdb.OLAP163())
	sys := fourDisks(w.Catalog.Objects)
	see := layout.SEE(len(sys.Objects), len(sys.Devices))
	_, inst, err := cfg.traceAndFit(sys, see, w)
	if err != nil {
		return nil, err
	}
	heuristic, err := layout.InitialLayout(inst)
	if err != nil {
		return nil, err
	}

	variants := []struct {
		name string
		opt  core.Options
	}{
		{"transfer+multistart (default)", core.Options{
			NLP:            nlp.Options{Seed: cfg.Seed, Workers: cfg.Workers},
			InitialLayouts: []*layout.Layout{heuristic, see},
		}},
		{"transfer, heuristic init only", core.Options{
			NLP:            nlp.Options{Seed: cfg.Seed, Workers: cfg.Workers},
			InitialLayouts: []*layout.Layout{heuristic},
		}},
		{"transfer, SEE init only", core.Options{
			NLP:            nlp.Options{Seed: cfg.Seed, Workers: cfg.Workers},
			InitialLayouts: []*layout.Layout{see},
		}},
		{"anneal", core.Options{
			Solver:         core.SolverAnneal,
			NLP:            nlp.Options{Seed: cfg.Seed, MaxIters: 20000, Workers: cfg.Workers},
			InitialLayouts: []*layout.Layout{heuristic},
		}},
		{"solver portfolio", core.Options{
			Solver:         core.SolverPortfolio,
			NLP:            nlp.Options{Seed: cfg.Seed, Workers: cfg.Workers},
			InitialLayouts: []*layout.Layout{heuristic},
		}},
		{"no polish, single round", core.Options{
			NLP:            nlp.Options{Seed: cfg.Seed, Workers: cfg.Workers},
			InitialLayouts: []*layout.Layout{heuristic, see},
			SkipPolish:     true,
			Rounds:         1,
		}},
	}

	ev := layout.NewEvaluator(inst)
	rows := []AblationRow{{
		Variant:   "SEE baseline",
		Predicted: ev.MaxUtilization(see),
	}}
	if res, err := replayOLAP(sys, see, w, cfg); err == nil {
		rows[0].Replayed = res.Elapsed
	}

	for _, v := range variants {
		adv, err := core.New(inst, v.opt)
		if err != nil {
			return nil, err
		}
		rec, err := adv.Recommend()
		if err != nil {
			return nil, fmt.Errorf("experiments: ablation %q: %w", v.name, err)
		}
		row := AblationRow{Variant: v.name, Predicted: rec.FinalObjective}
		res, err := replayOLAP(sys, rec.Final, w, cfg)
		if err != nil {
			return nil, err
		}
		row.Replayed = res.Elapsed
		rows = append(rows, row)
	}
	return rows, nil
}

// AblationTable renders the ablation rows.
func AblationTable(rows []AblationRow) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-32s %16s %14s\n", "Variant", "Predicted util", "Replayed (s)")
	for _, r := range rows {
		fmt.Fprintf(&sb, "%-32s %15.1f%% %14.0f\n", r.Variant, 100*r.Predicted, r.Replayed)
	}
	return sb.String()
}
