package experiments

import (
	"fmt"
	"math"
	"strings"

	"dblayout/internal/benchdb"
	"dblayout/internal/layout"
	"dblayout/internal/obs"
	"dblayout/internal/replay"
	"dblayout/internal/rubicon"
	"dblayout/internal/storage"
)

// DriftResult reports the diurnal-drift detection study: an OLTP-style
// steady state that abruptly shifts to OLAP scans, watched online by the
// windowed model-validation instrumentation and the drift detector.
type DriftResult struct {
	// WindowSize is the utilization observation window (simulated s);
	// RefitSize is the coarser rubicon refit window.
	WindowSize, RefitSize float64
	// Devices names the targets, in order.
	Devices []string
	// Predicted are the cost model's raw per-device utilization
	// predictions for the steady-state workload; Calibrated are the same
	// predictions after removing the measured steady-state bias (the
	// values the detector validates against — the detector watches
	// *changes* in model error, and the calibration run already knows the
	// static bias).
	Predicted, Calibrated []float64
	// SteadyBias is the largest |observed − predicted| gap during steady
	// state; Threshold is the calibrated prediction-error trigger level
	// and OverlapThreshold the overlap-distance trigger level.
	SteadyBias, Threshold, OverlapThreshold float64
	// ShiftTime is when the workload shifted (the steady-state prefix's
	// full duration, simulated s); ShiftWindow is the same in windows.
	ShiftTime   float64
	ShiftWindow int64
	// Elapsed is the monitored run's total duration.
	Elapsed float64
	// SteadyEvents counts detector events before the shift (must be 0).
	SteadyEvents int
	// Detected reports whether the prediction-error detector fired after
	// the shift; DetectionWindow/DetectionLatency locate the first event
	// (latency in windows after the shift).
	Detected         bool
	DetectionWindow  int64
	DetectionLatency int64
	// OverlapDetected reports whether the overlap-distance detector saw
	// the workload composition change, at OverlapDistance.
	OverlapDetected bool
	OverlapDistance float64
	// Events are all fired events, both signals, in firing order.
	Events []obs.DriftEvent
}

// driftScenario bundles the diurnal workload: a daytime OLTP phase (paced
// random page reads on orders+stock) that abruptly gives way to a nightly
// reporting phase (sequential scans of orders+history). The phase boundary
// is the drift the detector must find.
type driftScenario struct {
	catalog *benchdb.Catalog
	// prefix is the steady-state phase alone; full is steady state
	// followed by the shift. Both replay phase one identically under the
	// same seed, so the prefix run's elapsed time IS the full run's shift
	// time.
	prefix, full *benchdb.OLAPWorkload
	window       float64 // utilization window (simulated s)
	refit        float64 // rubicon refit window (simulated s)
}

func newDriftScenario(quick bool) *driftScenario {
	objects := []layout.Object{
		{Name: "orders", Size: 1 << 30, Kind: layout.KindTable},
		{Name: "stock", Size: 1 << 30, Kind: layout.KindTable},
		{Name: "history", Size: 1 << 30, Kind: layout.KindTable},
	}
	catalog := &benchdb.Catalog{Name: "diurnal", Objects: objects}
	pagesA, scanB, window := int64(3000), int64(2<<30), 1.0
	if quick {
		pagesA, scanB, window = 900, 768<<20, 0.5
	}
	oltp := benchdb.Phase{Streams: []benchdb.Stream{
		{Object: "orders", Bytes: pagesA * benchdb.PageSize, ThinkPerReq: 4e-3},
		{Object: "stock", Bytes: pagesA * benchdb.PageSize, ThinkPerReq: 4e-3},
	}}
	// The nightly scans run with read-ahead depth, drawing bandwidth from
	// every stripe at once — the utilization jump the detector must see.
	olap := benchdb.Phase{Streams: []benchdb.Stream{
		{Object: "orders", Bytes: scanB, Sequential: true, Depth: 8},
		{Object: "history", Bytes: scanB, Sequential: true, Depth: 8},
	}}
	mk := func(name string, phases ...benchdb.Phase) *benchdb.OLAPWorkload {
		return &benchdb.OLAPWorkload{
			Name:    name,
			Catalog: catalog,
			Queries: []benchdb.Query{{Name: name, Phases: phases}},
		}
	}
	return &driftScenario{
		catalog: catalog,
		prefix:  mk("diurnal-prefix", oltp),
		full:    mk("diurnal", oltp, olap),
		window:  window,
		refit:   4 * window,
	}
}

// Drift runs the diurnal OLTP→OLAP drift study:
//
//  1. replay the steady-state prefix alone, fitting the workload model and
//     recording per-window observed utilizations — the calibration run. Its
//     elapsed time is, by replay determinism, the shift time of the full
//     run, and its window errors set the detection thresholds;
//  2. replay the full diurnal workload with the windowed model-validation
//     observer and two drift detectors attached — prediction error per
//     device, and overlap-matrix distance between successive rubicon refit
//     windows;
//  3. report detection latency in windows after the shift, and verify no
//     event fired during the steady-state prefix.
func Drift(cfg *Config) (*DriftResult, error) {
	sc := newDriftScenario(cfg.Quick)
	sys := fourDisks(sc.catalog.Objects)
	see := layout.SEE(len(sc.catalog.Objects), len(sys.Devices))

	// 1. Calibration: fit the steady-state model and measure its per-window
	// validation error under the steady workload.
	fitter := rubicon.NewFitter(names(sys), rubicon.Options{ActiveRates: true})
	wfitCal := rubicon.NewWindowed(names(sys), sc.refit, rubicon.Options{ActiveRates: true})
	calReg := obs.NewRegistry()
	pre, err := replay.RunOLAP(sys, see, sc.prefix, replay.Options{
		Seed:    cfg.Seed,
		Tracer:  storage.MultiTracer(fitter, wfitCal),
		Metrics: calReg,
		Logger:  cfg.Logger,
		Windows: &replay.WindowConfig{Size: sc.window},
	})
	if err != nil {
		return nil, fmt.Errorf("experiments: drift calibration: %w", err)
	}
	set, err := fitter.Fit()
	if err != nil {
		return nil, fmt.Errorf("experiments: drift fit: %w", err)
	}
	inst := &layout.Instance{
		Objects:   sc.catalog.Objects,
		Targets:   sys.Targets(cfg.Cache, cfg.Grid),
		Workloads: set,
	}
	if err := inst.Validate(); err != nil {
		return nil, err
	}
	predicted := layout.NewEvaluator(inst).Utilizations(see)

	out := &DriftResult{
		WindowSize: sc.window,
		RefitSize:  sc.refit,
		Predicted:  predicted,
		ShiftTime:  pre.Elapsed,
	}
	for _, d := range sys.Devices {
		out.Devices = append(out.Devices, d.Name)
	}

	// Bias-correct the predictions against the observed steady state and
	// set the trigger threshold from the residual window noise: the
	// detector should fire on a change in model error, not on the static
	// calibration gap it was just shown.
	out.Calibrated = make([]float64, len(predicted))
	var maxResid float64
	for j, d := range sys.Devices {
		snap := calReg.Series(obs.Name("replay_device_window_utilization", "device", d.Name), 0).Snapshot()
		if snap.Count == 0 {
			return nil, fmt.Errorf("experiments: drift calibration recorded no windows for %s", d.Name)
		}
		out.Calibrated[j] = snap.Mean
		if bias := math.Abs(snap.Mean - predicted[j]); bias > out.SteadyBias {
			out.SteadyBias = bias
		}
		for _, s := range snap.Samples {
			if r := math.Abs(s.V - snap.Mean); r > maxResid {
				maxResid = r
			}
		}
	}
	out.Threshold = 3 * maxResid
	if out.Threshold < 0.08 {
		out.Threshold = 0.08
	}
	calFits, err := wfitCal.Flush()
	if err != nil {
		return nil, fmt.Errorf("experiments: drift calibration refits: %w", err)
	}
	var maxOv float64
	for _, f := range calFits[1:] {
		if f.OverlapDistance > maxOv {
			maxOv = f.OverlapDistance
		}
	}
	out.OverlapThreshold = 3 * maxOv
	if out.OverlapThreshold < 0.1 {
		out.OverlapThreshold = 0.1
	}

	// 2. The monitored run: full diurnal workload, detectors armed.
	reg := cfg.Metrics
	if reg == nil {
		reg = obs.NewRegistry()
	}
	var events *obs.JSONL
	if cfg.DriftEvents != nil {
		events = obs.NewJSONL(cfg.DriftEvents)
	}
	det := obs.NewDetector(obs.DriftConfig{
		Threshold:   out.Threshold,
		Trigger:     2,
		MinInterval: 5 * sc.window,
	}, cfg.Logger, events, reg)
	ovDet := obs.NewDetector(obs.DriftConfig{
		Threshold:   out.OverlapThreshold,
		Trigger:     1,
		MinInterval: 2 * sc.refit,
	}, cfg.Logger, events, reg)

	ovSeries := reg.Series("rubicon_overlap_distance", 0)
	wfit := rubicon.NewWindowed(names(sys), sc.refit, rubicon.Options{ActiveRates: true})
	wfit.OnFit = func(f rubicon.WindowFit) {
		ovSeries.Record(f.End, f.OverlapDistance)
		if f.Window > 0 {
			ovDet.Observe("overlap_distance", f.Window, f.End, f.OverlapDistance)
		}
	}
	res, err := replay.RunOLAP(sys, see, sc.full, replay.Options{
		Seed:    cfg.Seed,
		Tracer:  wfit,
		Metrics: reg,
		Logger:  cfg.Logger,
		Windows: &replay.WindowConfig{
			Size:      sc.window,
			Predicted: out.Calibrated,
			Detector:  det,
		},
	})
	if err != nil {
		return nil, fmt.Errorf("experiments: drift replay: %w", err)
	}
	if _, err := wfit.Flush(); err != nil {
		return nil, fmt.Errorf("experiments: drift refits: %w", err)
	}
	if events != nil {
		if err := events.Err(); err != nil {
			return nil, fmt.Errorf("experiments: drift event stream: %w", err)
		}
	}

	// 3. Score detection against the known shift time.
	out.Elapsed = res.Elapsed
	out.ShiftWindow = int64(out.ShiftTime / sc.window)
	for _, ev := range det.Events() {
		if ev.Window < out.ShiftWindow {
			out.SteadyEvents++
			continue
		}
		if !out.Detected {
			out.Detected = true
			out.DetectionWindow = ev.Window
			out.DetectionLatency = ev.Window - out.ShiftWindow
		}
	}
	for _, ev := range ovDet.Events() {
		if !out.OverlapDetected {
			out.OverlapDetected = true
			out.OverlapDistance = ev.Value
		}
	}
	out.Events = append(det.Events(), ovDet.Events()...)
	return out, nil
}

// DriftTable renders the drift study.
func DriftTable(r *DriftResult) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "drift: diurnal OLTP->OLAP shift at t=%.1fs (window %d of %.2gs windows)\n",
		r.ShiftTime, r.ShiftWindow, r.WindowSize)
	fmt.Fprintf(&sb, "model validation: steady bias %.3f, error threshold %.3f, overlap threshold %.3f\n\n",
		r.SteadyBias, r.Threshold, r.OverlapThreshold)
	fmt.Fprintf(&sb, "%-8s %12s %12s\n", "Device", "Predicted", "Calibrated")
	for j, name := range r.Devices {
		fmt.Fprintf(&sb, "%-8s %12.3f %12.3f\n", name, r.Predicted[j], r.Calibrated[j])
	}
	fmt.Fprintf(&sb, "\nsteady-state events: %d (want 0)\n", r.SteadyEvents)
	if r.Detected {
		fmt.Fprintf(&sb, "prediction-error drift detected in window %d: %d windows (%.1fs) after the shift\n",
			r.DetectionWindow, r.DetectionLatency, float64(r.DetectionLatency)*r.WindowSize)
	} else {
		fmt.Fprintf(&sb, "prediction-error drift NOT detected\n")
	}
	if r.OverlapDetected {
		fmt.Fprintf(&sb, "overlap-matrix drift detected: distance %.3f across a %.2gs refit window\n",
			r.OverlapDistance, r.RefitSize)
	} else {
		fmt.Fprintf(&sb, "overlap-matrix drift NOT detected\n")
	}
	return sb.String()
}
