package experiments

import (
	"context"
	"fmt"
	"strings"
	"time"

	"dblayout/internal/benchdb"
	"dblayout/internal/core"
	"dblayout/internal/layout"
	"dblayout/internal/nlp"
	"dblayout/internal/replay"
	"dblayout/internal/storage"
)

// DegradedResult reports the degraded-mode study: how the optimized layout
// behaves when storage fails underneath it, and what the failure-aware
// repair recovers.
type DegradedResult struct {
	// Healthy is the elapsed time of the optimized layout with all
	// devices healthy.
	Healthy float64
	// DegradedMember is the elapsed time of the same layout after one
	// RAID5 member dies at t=0: every read of its units pays
	// reconstruction reads on the surviving members.
	DegradedMember float64
	// ReconstructReads counts the extra member reads the degraded RAID5
	// group issued during that replay.
	ReconstructReads int64

	// FailedTarget is the whole storage target subsequently failed for
	// the repair study (the target holding the most bytes, so the repair
	// is forced to move data).
	FailedTarget string
	// Repair is the failure-aware re-recommendation: a layout over the
	// surviving targets plus the migration plan to reach it.
	Repair *core.Repair
	// RepairTime is the wall-clock time RecommendRepair took.
	RepairTime time.Duration
	// Repaired is the elapsed time of the repaired layout replayed on the
	// system with the failed target dead — it must match a healthy replay
	// because the repaired layout never touches the dead device.
	Repaired float64
}

// Degraded runs the failure study on a 3-disk RAID5 group plus two
// standalone disks under OLAP1-63:
//
//  1. trace + fit + advise on the healthy system (the normal pipeline);
//  2. replay the optimized layout healthy, then with one RAID5 member
//     failed from the start, counting reconstruction reads;
//  3. fail the most-loaded storage target outright, run RecommendRepair,
//     and replay the repaired layout on the degraded system.
func Degraded(cfg *Config) (*DegradedResult, error) {
	w := cfg.trimOLAP(benchdb.OLAP163())
	objects := w.Catalog.Objects
	devices := func() []replay.DeviceSpec {
		return []replay.DeviceSpec{
			replay.RAID5Disks("raid5", 3),
			replay.Disk15K("disk3"),
			replay.Disk15K("disk4"),
		}
	}
	sys := &replay.System{Objects: objects, Devices: devices()}

	see := layout.SEE(len(objects), len(sys.Devices))
	_, inst, err := cfg.traceAndFit(sys, see, w)
	if err != nil {
		return nil, fmt.Errorf("experiments: degraded trace: %w", err)
	}
	rec, err := cfg.advise(inst)
	if err != nil {
		return nil, fmt.Errorf("experiments: degraded advise: %w", err)
	}

	out := &DegradedResult{}
	healthy, err := replayOLAP(sys, rec.Final, w, cfg)
	if err != nil {
		return nil, err
	}
	out.Healthy = healthy.Elapsed

	// Replay the same layout with RAID5 member 0 dead from the start.
	degSys := &replay.System{Objects: objects, Devices: devices()}
	degSys.Devices[0].RAID.MemberFaults = map[int]storage.FaultSchedule{
		0: {Fail: &storage.FailFault{At: 0}},
	}
	degRes, err := replayOLAP(degSys, rec.Final, w, cfg)
	if err != nil {
		return nil, err
	}
	out.DegradedMember = degRes.Elapsed
	out.ReconstructReads = degRes.DeviceStats[0].ReconstructReads

	// Fail the target carrying the most data and re-solve around it.
	sizes := inst.Sizes()
	failed, most := 0, -1.0
	for j := range inst.Targets {
		if b := rec.Final.TargetBytes(j, sizes); b > most {
			failed, most = j, b
		}
	}
	out.FailedTarget = inst.Targets[failed].Name
	start := time.Now()
	rep, err := core.RecommendRepair(context.Background(), inst, rec.Final, []int{failed},
		core.Options{NLP: nlp.Options{Seed: cfg.Seed, Trace: cfg.Trace, Workers: cfg.Workers}, Logger: cfg.Logger})
	if err != nil {
		return nil, fmt.Errorf("experiments: repair: %w", err)
	}
	out.RepairTime = time.Since(start)
	out.Repair = rep

	// Replay the repaired layout with the failed target actually dead:
	// nothing may touch it.
	repSys := &replay.System{Objects: objects, Devices: devices()}
	if r := repSys.Devices[failed].RAID; r != nil {
		r.MemberFaults = map[int]storage.FaultSchedule{}
		for i := 0; i < r.Members; i++ {
			r.MemberFaults[i] = storage.FaultSchedule{Fail: &storage.FailFault{At: 0}}
		}
	} else {
		repSys.Devices[failed].Faults = &storage.FaultSchedule{Fail: &storage.FailFault{At: 0}}
	}
	repRes, err := replayOLAP(repSys, rep.Layout, w, cfg)
	if err != nil {
		return nil, err
	}
	out.Repaired = repRes.Elapsed
	return out, nil
}

// DegradedTable renders the degraded-mode study.
func DegradedTable(r *DegradedResult) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-34s %10s\n", "Scenario", "Elapsed(s)")
	fmt.Fprintf(&sb, "%-34s %10.0f\n", "optimized, healthy", r.Healthy)
	fmt.Fprintf(&sb, "%-34s %10.0f   (%d reconstruction reads)\n",
		"optimized, RAID5 member dead", r.DegradedMember, r.ReconstructReads)
	fmt.Fprintf(&sb, "%-34s %10.0f\n",
		fmt.Sprintf("repaired, %s failed", r.FailedTarget), r.Repaired)
	fmt.Fprintf(&sb, "\nrepair: %d objects moved, %d-step plan, %.1f MB migrated, objective %.3f, in %v\n",
		len(r.Repair.Affected), len(r.Repair.Plan), float64(r.Repair.PlanBytes)/(1<<20),
		r.Repair.Objective, r.RepairTime.Round(time.Millisecond))
	if r.Repair.Degraded {
		fmt.Fprintf(&sb, "repair degraded: %v\n", r.Repair.Degradation)
	}
	return sb.String()
}
