package experiments

import (
	"fmt"
	"math"
	"strings"

	"dblayout/internal/benchdb"
	"dblayout/internal/layout"
	"dblayout/internal/replay"
)

// HeteroRow is one storage-target configuration of paper Fig. 17, with the
// elapsed OLAP8-63 times of every applicable layout.
type HeteroRow struct {
	Config string
	// SEE is the stripe-everything-everywhere baseline.
	SEE float64
	// IsolateTables places the TPC-H tables on the large target and the
	// rest on the small one (3-1 config only; NaN otherwise).
	IsolateTables float64
	// IsolateTablesIndexes isolates tables on the large target, indexes
	// and temp space on the two small ones (2-1-1 only; NaN otherwise).
	IsolateTablesIndexes float64
	// Optimized is the advisor's layout.
	Optimized float64
}

// Heterogeneous runs the Sec. 6.4 disk-only heterogeneity study: the four
// 18.4 GB disks regrouped by the RAID controller into "3-1" and "2-1-1"
// configurations, plus the homogeneous "1-1-1-1" reference, all under
// OLAP8-63.
func Heterogeneous(cfg *Config) ([]HeteroRow, error) {
	w := cfg.trimOLAP(benchdb.OLAP863())
	objects := w.Catalog.Objects

	configs := []struct {
		name    string
		devices []replay.DeviceSpec
	}{
		{"3-1", []replay.DeviceSpec{replay.RAID0Disks("raid3", 3), replay.Disk15K("disk3")}},
		{"2-1-1", []replay.DeviceSpec{replay.RAID0Disks("raid2", 2), replay.Disk15K("disk2"), replay.Disk15K("disk3")}},
		{"1-1-1-1", []replay.DeviceSpec{replay.Disk15K("disk0"), replay.Disk15K("disk1"), replay.Disk15K("disk2"), replay.Disk15K("disk3")}},
	}

	var rows []HeteroRow
	for _, c := range configs {
		sys := &replay.System{Objects: objects, Devices: c.devices}
		row := HeteroRow{Config: c.name, IsolateTables: math.NaN(), IsolateTablesIndexes: math.NaN()}

		see := layout.SEE(len(objects), len(c.devices))
		seeRes, inst, err := cfg.traceAndFit(sys, see, w)
		if err != nil {
			return nil, fmt.Errorf("experiments: %s SEE: %w", c.name, err)
		}
		row.SEE = seeRes.Elapsed

		switch c.name {
		case "3-1":
			// Tables on the 3-disk RAID0, everything else on the
			// remaining disk.
			iso, err := layout.ByKind(inst, layout.KindAssignment{
				ByKind:  map[layout.ObjectKind][]int{layout.KindTable: {0}},
				Default: []int{1},
			})
			if err != nil {
				return nil, err
			}
			res, err := replayOLAP(sys, iso, w, cfg)
			if err != nil {
				return nil, err
			}
			row.IsolateTables = res.Elapsed
		case "2-1-1":
			// Tables on the 2-disk RAID0, indexes on one single
			// disk, temporary space on the other.
			iso, err := layout.ByKind(inst, layout.KindAssignment{
				ByKind: map[layout.ObjectKind][]int{
					layout.KindTable: {0},
					layout.KindIndex: {1},
					layout.KindTemp:  {2},
				},
				Default: []int{2},
			})
			if err != nil {
				return nil, err
			}
			res, err := replayOLAP(sys, iso, w, cfg)
			if err != nil {
				return nil, err
			}
			row.IsolateTablesIndexes = res.Elapsed
		}

		rec, err := cfg.advise(inst)
		if err != nil {
			return nil, fmt.Errorf("experiments: %s advise: %w", c.name, err)
		}
		optRes, err := replayOLAP(sys, rec.Final, w, cfg)
		if err != nil {
			return nil, err
		}
		row.Optimized = optRes.Elapsed
		rows = append(rows, row)
	}
	return rows, nil
}

// Fig17Table renders the paper's Fig. 17 rows.
func Fig17Table(rows []HeteroRow) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-8s %10s %14s %20s %10s %9s\n",
		"Config", "SEE (s)", "iso tables", "iso tables+idx", "Opt (s)", "Speedup")
	na := func(v float64) string {
		if math.IsNaN(v) {
			return "n/a"
		}
		return fmt.Sprintf("%.0f", v)
	}
	for _, r := range rows {
		fmt.Fprintf(&sb, "%-8s %10.0f %14s %20s %10.0f %9s\n",
			r.Config, r.SEE, na(r.IsolateTables), na(r.IsolateTablesIndexes),
			r.Optimized, speedup(r.SEE, r.Optimized))
	}
	return sb.String()
}
