package experiments

import (
	"fmt"
	"math"
	"strings"

	"dblayout/internal/benchdb"
	"dblayout/internal/layout"
	"dblayout/internal/replay"
)

// SSDRow is one SSD-capacity configuration of paper Fig. 18, under OLAP8-63
// on four disks plus an SSD of the given capacity.
type SSDRow struct {
	CapacityGB int
	// SEE stripes everything over the four disks and the SSD.
	SEE float64
	// AllOnSSD places every object on the SSD (only when it fits, as in
	// the paper's table; NaN otherwise).
	AllOnSSD float64
	// Optimized is the advisor's layout.
	Optimized float64
}

// SSDCapacitiesGB are the paper's Fig. 18 SSD capacity points.
var SSDCapacitiesGB = []int{32, 10, 6, 4}

// SSDStudy runs the Sec. 6.4 disk+SSD heterogeneity study.
func SSDStudy(cfg *Config) ([]SSDRow, error) {
	w := cfg.trimOLAP(benchdb.OLAP863())
	objects := w.Catalog.Objects

	var rows []SSDRow
	for _, capGB := range SSDCapacitiesGB {
		devices := []replay.DeviceSpec{
			replay.Disk15K("disk0"), replay.Disk15K("disk1"),
			replay.Disk15K("disk2"), replay.Disk15K("disk3"),
			replay.SSD("ssd", int64(capGB)<<30),
		}
		sys := &replay.System{Objects: objects, Devices: devices}
		row := SSDRow{CapacityGB: capGB, AllOnSSD: math.NaN()}

		see := layout.SEE(len(objects), len(devices))
		seeRes, inst, err := cfg.traceAndFit(sys, see, w)
		if err != nil {
			return nil, fmt.Errorf("experiments: ssd %dGB SEE: %w", capGB, err)
		}
		row.SEE = seeRes.Elapsed

		// All-objects-on-SSD baseline, where capacity permits (the
		// paper reports it for the 32 GB configuration only).
		if capGB == 32 {
			all := layout.AllOnOne(len(objects), len(devices), 4)
			res, err := replayOLAP(sys, all, w, cfg)
			if err != nil {
				return nil, err
			}
			row.AllOnSSD = res.Elapsed
		}

		rec, err := cfg.advise(inst)
		if err != nil {
			return nil, fmt.Errorf("experiments: ssd %dGB advise: %w", capGB, err)
		}
		optRes, err := replayOLAP(sys, rec.Final, w, cfg)
		if err != nil {
			return nil, err
		}
		row.Optimized = optRes.Elapsed
		rows = append(rows, row)
	}
	return rows, nil
}

// Fig18Table renders the paper's Fig. 18 rows.
func Fig18Table(rows []SSDRow) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-8s %10s %14s %12s %9s\n", "SSD Cap", "SEE (s)", "All on SSD", "Opt (s)", "Speedup")
	for _, r := range rows {
		all := "n/a"
		if !math.IsNaN(r.AllOnSSD) {
			all = fmt.Sprintf("%.0f", r.AllOnSSD)
		}
		fmt.Fprintf(&sb, "%4d GB  %10.0f %14s %12.0f %9s\n",
			r.CapacityGB, r.SEE, all, r.Optimized, speedup(r.SEE, r.Optimized))
	}
	return sb.String()
}
