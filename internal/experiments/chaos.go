package experiments

import (
	"fmt"
	"strings"

	"dblayout/internal/control"
)

// Chaos runs the controller chaos campaign: scenarios seeded fault-injection
// runs (crash-at-every-record schedules, torn writes, corrupt journal tails,
// device faults mid-migration, drift during cooldown), each checked against
// the loop's invariants — the layout always validates, bytes are conserved,
// at most one migration is ever in flight, and the controller re-reaches
// steady state. Any violation surfaces as an error; a nil error IS the
// result's meaning. scenarios <= 0 selects the default campaign size (50).
func Chaos(cfg *Config, scenarios int) (*control.ChaosCampaignReport, error) {
	return control.RunChaosCampaign(control.ChaosCampaignConfig{
		Scenarios: scenarios,
		BaseSeed:  cfg.Seed,
	})
}

// ChaosTable renders the campaign report.
func ChaosTable(rep *control.ChaosCampaignReport) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "chaos campaign: %d scenarios, all invariants held\n", len(rep.Scenarios))
	fmt.Fprintf(&sb, "totals: %d sessions, %d crashes survived, %d migration epochs, %d aborts, %d give-ups\n\n",
		rep.Sessions, rep.Crashes, rep.Epochs, rep.Aborts, rep.GiveUps)
	fmt.Fprintf(&sb, "%-4s %8s %8s %8s %7s %7s %8s %8s %9s %8s %7s\n",
		"#", "sessions", "crashes", "windows", "epochs", "aborts", "retries", "corrupt", "journalB", "repair", "steady")
	for i, r := range rep.Scenarios {
		fmt.Fprintf(&sb, "%-4d %8d %8d %8d %7d %7d %8d %8d %9d %8v %7v\n",
			i, r.Sessions, r.Crashes, r.Windows, r.Epochs, r.Aborts, r.Retries,
			r.CorruptionsCaught, r.JournalBytes, r.FinalLayoutIsRepair, r.ReachedSteadyState)
	}
	return sb.String()
}
