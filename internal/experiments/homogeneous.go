package experiments

import (
	"fmt"
	"sort"
	"strings"

	"dblayout/internal/benchdb"
	"dblayout/internal/core"
	"dblayout/internal/layout"
)

// WorkloadRun holds everything the homogeneous-target study produces for one
// workload: it backs paper Figs. 1, 11, 12, 13 and 14.
type WorkloadRun struct {
	Workload string
	// SEEElapsed and OptElapsed are replay completion times (Fig. 11).
	SEEElapsed float64
	OptElapsed float64
	// Rec is the advisor's recommendation (solver and regular layouts,
	// Figs. 1/12/14, and timings).
	Rec *core.Recommendation
	// SEEUtil, InitUtil, SolverUtil, RegularUtil are the predicted
	// per-target utilizations at each advisor stage (Fig. 13).
	SEEUtil, InitUtil, SolverUtil, RegularUtil []float64
	// Instance is the advisor's problem instance (fitted workloads).
	Instance *layout.Instance
}

// Homogeneous runs the paper's Sec. 6.2 study: OLAP1-63 and OLAP8-63 on four
// identical disks, SEE baseline vs. advisor-recommended layout.
func Homogeneous(cfg *Config) ([]*WorkloadRun, error) {
	var out []*WorkloadRun
	for _, w := range []*benchdb.OLAPWorkload{benchdb.OLAP163(), benchdb.OLAP863()} {
		w = cfg.trimOLAP(w)
		run, err := homogeneousOne(cfg, w)
		if err != nil {
			return nil, fmt.Errorf("experiments: %s: %w", w.Name, err)
		}
		out = append(out, run)
	}
	return out, nil
}

func homogeneousOne(cfg *Config, w *benchdb.OLAPWorkload) (*WorkloadRun, error) {
	sys := fourDisks(w.Catalog.Objects)
	see := layout.SEE(len(sys.Objects), len(sys.Devices))

	seeRes, inst, err := cfg.traceAndFit(sys, see, w)
	if err != nil {
		return nil, err
	}
	rec, err := cfg.advise(inst)
	if err != nil {
		return nil, err
	}
	optRes, err := replayOLAP(sys, rec.Final, w, cfg)
	if err != nil {
		return nil, err
	}

	ev := layout.NewEvaluator(inst)
	return &WorkloadRun{
		Workload:    w.Name,
		SEEElapsed:  seeRes.Elapsed,
		OptElapsed:  optRes.Elapsed,
		Rec:         rec,
		SEEUtil:     ev.Utilizations(see),
		InitUtil:    ev.Utilizations(rec.Initial),
		SolverUtil:  ev.Utilizations(rec.Solver),
		RegularUtil: ev.Utilizations(rec.Final),
		Instance:    inst,
	}, nil
}

// Fig11Table renders the paper's Fig. 11 rows.
func Fig11Table(runs []*WorkloadRun) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-10s %18s %18s %9s\n", "Workload", "Baseline (SEE) s", "Optimized s", "Speedup")
	for _, r := range runs {
		fmt.Fprintf(&sb, "%-10s %18.0f %18.0f %9s\n",
			r.Workload, r.SEEElapsed, r.OptElapsed, speedup(r.SEEElapsed, r.OptElapsed))
	}
	return sb.String()
}

// Fig13Table renders the per-stage predicted utilizations (paper Fig. 13).
func Fig13Table(r *WorkloadRun) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%s: estimated target utilizations (%%)\n", r.Workload)
	fmt.Fprintf(&sb, "%-8s %8s %8s %8s %8s\n", "Target", "SEE", "Initial", "Solver", "Regular")
	for j := range r.SEEUtil {
		fmt.Fprintf(&sb, "%-8s %8.1f %8.1f %8.1f %8.1f\n",
			r.Instance.Targets[j].Name,
			100*r.SEEUtil[j], 100*r.InitUtil[j], 100*r.SolverUtil[j], 100*r.RegularUtil[j])
	}
	return sb.String()
}

// LayoutTable renders a layout for the paper's layout figures (Figs. 1, 12,
// 14, 16, 20): objects in decreasing request-rate order, the hottest `top`
// of them, with the percentage of each object on each target.
func LayoutTable(inst *layout.Instance, l *layout.Layout, top int) string {
	order := make([]int, inst.N())
	for i := range order {
		order[i] = i
	}
	ws := inst.Workloads.Workloads
	sort.SliceStable(order, func(a, b int) bool {
		return ws[order[a]].TotalRate() > ws[order[b]].TotalRate()
	})
	if top > 0 && top < len(order) {
		order = order[:top]
	}

	var sb strings.Builder
	fmt.Fprintf(&sb, "%-18s", "Object")
	for _, t := range inst.Targets {
		fmt.Fprintf(&sb, " %9s", t.Name)
	}
	sb.WriteByte('\n')
	for _, i := range order {
		fmt.Fprintf(&sb, "%-18s", inst.Objects[i].Name)
		for j := 0; j < l.M; j++ {
			if v := l.At(i, j); v > layout.Epsilon {
				fmt.Fprintf(&sb, " %8.1f%%", 100*v)
			} else {
				fmt.Fprintf(&sb, " %9s", ".")
			}
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}
