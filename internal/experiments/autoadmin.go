package experiments

import (
	"fmt"
	"strings"
	"time"

	"dblayout/internal/autoadmin"
	"dblayout/internal/benchdb"
	"dblayout/internal/layout"
	"dblayout/internal/replay"
)

// AutoAdminResult backs the Sec. 6.6 comparison (paper Fig. 20 and the
// surrounding discussion): the AutoAdmin layout technique vs. this paper's
// advisor on OLAP1-63 and OLAP8-63 over four identical disks.
type AutoAdminResult struct {
	// AALayout is the AutoAdmin-recommended layout. AutoAdmin consumes
	// the SQL workload, which is identical for OLAP1-63 and OLAP8-63, so
	// a single layout serves both — the concurrency-obliviousness the
	// paper calls out.
	AALayout *layout.Layout
	// Instance163/Instance863 are the advisor instances (fitted
	// workloads) used for reporting.
	Instance163 *layout.Instance
	// Elapsed[workload][layout] in seconds.
	SEE163, AA163, Ours163 float64
	SEE863, AA863, Ours863 float64
	// AATime and OursTime compare advisor running times.
	AATime, OursTime time.Duration
}

// AutoAdminStudy reproduces the Sec. 6.6 comparison. The cardinality
// estimation error the paper observed (PostgreSQL misestimating Q18's
// intermediate result sizes by orders of magnitude) is injected as a volume
// multiplier on the temporary tablespace.
func AutoAdminStudy(cfg *Config) (*AutoAdminResult, error) {
	w163 := cfg.trimOLAP(benchdb.OLAP163())
	w863 := cfg.trimOLAP(benchdb.OLAP863())
	catalog := w163.Catalog
	sys := fourDisks(catalog.Objects)
	res := &AutoAdminResult{}

	// AutoAdmin input: the SQL statements with optimizer-estimated I/O
	// volumes. Each distinct query appears once (frequency is uniform).
	queries, err := benchdb.AutoAdminQueries(catalog, benchdb.TPCHQueries(), 0)
	if err != nil {
		return nil, err
	}
	mult := make([]float64, len(catalog.Objects))
	for i := range mult {
		mult[i] = 1
	}
	if ti := catalog.Index(benchdb.TempSpace); ti >= 0 {
		mult[ti] = 25 // Q18 cardinality misestimate: temp volume inflated
	}
	start := time.Now()
	aa, err := autoadmin.Recommend(queries, len(catalog.Objects), len(sys.Devices), autoadmin.Config{
		Sizes:             instSizes(catalog.Objects),
		Capacities:        sysCapacities(sys.Devices),
		VolumeMultipliers: mult,
	})
	res.AATime = time.Since(start)
	if err != nil {
		return nil, fmt.Errorf("experiments: autoadmin: %w", err)
	}
	res.AALayout = aa

	// OLAP1-63: SEE (traced for fitting), AutoAdmin, ours.
	see := layout.SEE(len(catalog.Objects), len(sys.Devices))
	see163, inst163, err := cfg.traceAndFit(sys, see, w163)
	if err != nil {
		return nil, err
	}
	res.SEE163 = see163.Elapsed
	res.Instance163 = inst163
	aa163, err := replayOLAP(sys, aa, w163, cfg)
	if err != nil {
		return nil, err
	}
	res.AA163 = aa163.Elapsed
	start = time.Now()
	rec163, err := cfg.advise(inst163)
	res.OursTime = time.Since(start)
	if err != nil {
		return nil, err
	}
	ours163, err := replayOLAP(sys, rec163.Final, w163, cfg)
	if err != nil {
		return nil, err
	}
	res.Ours163 = ours163.Elapsed

	// OLAP8-63: AutoAdmin reuses the same layout (same SQL, different
	// concurrency); our advisor refits from the concurrent trace.
	see863, inst863, err := cfg.traceAndFit(sys, see, w863)
	if err != nil {
		return nil, err
	}
	res.SEE863 = see863.Elapsed
	aa863, err := replayOLAP(sys, aa, w863, cfg)
	if err != nil {
		return nil, err
	}
	res.AA863 = aa863.Elapsed
	rec863, err := cfg.advise(inst863)
	if err != nil {
		return nil, err
	}
	ours863, err := replayOLAP(sys, rec863.Final, w863, cfg)
	if err != nil {
		return nil, err
	}
	res.Ours863 = ours863.Elapsed

	return res, nil
}

// instSizes extracts object sizes.
func instSizes(objs []layout.Object) []int64 {
	out := make([]int64, len(objs))
	for i, o := range objs {
		out[i] = o.Size
	}
	return out
}

// sysCapacities extracts device capacities from specs.
func sysCapacities(devs []replay.DeviceSpec) []int64 {
	out := make([]int64, len(devs))
	for j, d := range devs {
		out[j] = d.Capacity()
	}
	return out
}

// Fig20Table renders the comparison (layout plus elapsed times).
func (r *AutoAdminResult) Fig20Table() string {
	var sb strings.Builder
	sb.WriteString("AutoAdmin layout (OLAP1-63 and OLAP8-63):\n")
	sb.WriteString(LayoutTable(r.Instance163, r.AALayout, 8))
	fmt.Fprintf(&sb, "\n%-10s %10s %12s %12s\n", "Workload", "SEE (s)", "AutoAdmin", "This paper")
	fmt.Fprintf(&sb, "%-10s %10.0f %12.0f %12.0f\n", "OLAP1-63", r.SEE163, r.AA163, r.Ours163)
	fmt.Fprintf(&sb, "%-10s %10.0f %12.0f %12.0f\n", "OLAP8-63", r.SEE863, r.AA863, r.Ours863)
	fmt.Fprintf(&sb, "\nadvisor time: AutoAdmin %.2fs, this paper %.2fs\n",
		r.AATime.Seconds(), r.OursTime.Seconds())
	return sb.String()
}
