package experiments

import (
	"fmt"
	"strings"

	"dblayout/internal/benchdb"
	"dblayout/internal/core"
	"dblayout/internal/layout"
	"dblayout/internal/replay"
	"dblayout/internal/rubicon"
)

// ConsolidationResult backs paper Figs. 15 and 16: two database instances
// (TPC-H running OLAP1-21 and TPC-C running the OLTP workload) consolidated
// onto the same four disks.
type ConsolidationResult struct {
	// SEEOLAP/OptOLAP are OLAP1-21 completion times (seconds).
	SEEOLAP, OptOLAP float64
	// SEETpmC/OptTpmC are the TPC-C New-Order rates.
	SEETpmC, OptTpmC float64
	Rec              *core.Recommendation
	Instance         *layout.Instance
}

// consolidatedWarmup is the tpmC warm-up exclusion (the paper used 1600 s on
// its much slower testbed; scaled to this simulator's run lengths).
const consolidatedWarmup = 120.0

// Consolidation runs the Sec. 6.3 consolidation study: 40 objects from two
// databases laid out together on four identical disks.
func Consolidation(cfg *Config) (*ConsolidationResult, error) {
	olap := cfg.trimOLAP(benchdb.OLAP121())
	oltp := benchdb.OLTP()
	objects := append(append([]layout.Object{}, olap.Catalog.Objects...), oltp.Catalog.Objects...)
	sys := fourDisks(objects)
	see := layout.SEE(len(objects), len(sys.Devices))

	// Whole-trace rates: the OLTP side runs continuously, so unlike the
	// pure-OLAP studies there is no burst structure to recover, and
	// active-window rates would overweight the OLAP phases against the
	// steady transaction load.
	fitter := rubicon.NewFitter(names(sys), rubicon.Options{})
	seeOLAP, seeOLTP, err := replay.RunConsolidated(sys, see, olap, oltp, consolidatedWarmup,
		replay.Options{Seed: cfg.Seed, Tracer: fitter})
	if err != nil {
		return nil, fmt.Errorf("experiments: consolidation SEE: %w", err)
	}
	set, err := fitter.Fit()
	if err != nil {
		return nil, err
	}
	inst := &layout.Instance{
		Objects:   objects,
		Targets:   sys.Targets(cfg.Cache, cfg.Grid),
		Workloads: set,
	}
	if err := inst.Validate(); err != nil {
		return nil, err
	}
	rec, err := cfg.advise(inst)
	if err != nil {
		return nil, err
	}
	optOLAP, optOLTP, err := replay.RunConsolidated(sys, rec.Final, olap, oltp, consolidatedWarmup,
		replay.Options{Seed: cfg.Seed})
	if err != nil {
		return nil, fmt.Errorf("experiments: consolidation optimized: %w", err)
	}

	return &ConsolidationResult{
		SEEOLAP:  seeOLAP.Elapsed,
		OptOLAP:  optOLAP.Elapsed,
		SEETpmC:  seeOLTP.TpmC,
		OptTpmC:  optOLTP.TpmC,
		Rec:      rec,
		Instance: inst,
	}, nil
}

// Fig15Table renders the paper's Fig. 15 rows.
func (r *ConsolidationResult) Fig15Table() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-10s %16s %16s %14s\n", "Workload", "SEE Baseline", "Optimized", "Improvement")
	fmt.Fprintf(&sb, "%-10s %11.0f sec. %11.0f sec. %14s\n", "OLAP1-21", r.SEEOLAP, r.OptOLAP, speedup(r.SEEOLAP, r.OptOLAP))
	fmt.Fprintf(&sb, "%-10s %11.0f tpmC %11.0f tpmC %14s\n", "OLTP", r.SEETpmC, r.OptTpmC, speedup(r.OptTpmC, r.SEETpmC))
	return sb.String()
}

// Fig16Table renders the recommended consolidated layout for the 12 most
// heavily requested objects (paper Fig. 16).
func (r *ConsolidationResult) Fig16Table() string {
	return LayoutTable(r.Instance, r.Rec.Final, 12)
}
