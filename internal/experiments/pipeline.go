// Package experiments reproduces every table and figure of the paper's
// evaluation (Sec. 6). Each experiment follows the paper's methodology
// end-to-end:
//
//  1. run the SQL workload under the SEE baseline layout on the simulated
//     storage system, capturing the block I/O trace;
//  2. fit Rome-style workload descriptions per object from the trace
//     (Rubicon's role);
//  3. calibrate black-box cost models for each storage target type;
//  4. run the layout advisor (initial layout -> NLP solve -> regularize);
//  5. replay the workload under the recommended layout and the baselines,
//     reporting the paper's metrics (elapsed seconds, tpmC, predicted
//     utilizations, advisor running time).
package experiments

import (
	"fmt"
	"io"
	"log/slog"

	"dblayout/internal/benchdb"
	"dblayout/internal/core"
	"dblayout/internal/costmodel"
	"dblayout/internal/layout"
	"dblayout/internal/nlp"
	"dblayout/internal/obs"
	"dblayout/internal/replay"
	"dblayout/internal/rubicon"
)

// Config bundles the shared experiment settings. The zero value is NOT
// usable; construct with NewConfig.
type Config struct {
	// Cache memoizes cost-model calibrations across experiments.
	Cache *costmodel.Cache
	// Grid is the calibration sweep.
	Grid costmodel.Grid
	// Seed drives replays and the solver.
	Seed int64
	// Quick shrinks workloads (fewer queries) for use in tests; the
	// paper-scale runs leave it false.
	Quick bool
	// Workers bounds solver restart parallelism for every advisor run in
	// the experiments (0 = auto, 1 = serial). Results are identical at any
	// worker count; only wall-clock time changes.
	Workers int
	// Logger, when non-nil, receives advisor phase spans and replay
	// summaries. Nil disables logging.
	Logger *slog.Logger
	// Trace, when non-nil, observes every solver iteration of every
	// advisor run in the experiments. Nil disables tracing.
	Trace func(nlp.TraceEvent)
	// Metrics, when non-nil, accumulates replay counters and solver
	// effort across the experiments. Nil disables collection.
	Metrics *obs.Registry
	// DriftEvents, when non-nil, receives the drift experiment's fired
	// detection events as JSON lines. Nil disables the stream.
	DriftEvents io.Writer
}

// NewConfig returns the standard experiment configuration.
func NewConfig() *Config {
	return &Config{
		Cache: costmodel.NewCache(),
		Grid:  costmodel.DefaultGrid(),
		Seed:  1,
	}
}

// NewQuickConfig returns a reduced configuration for tests: coarse
// calibration and truncated workloads.
func NewQuickConfig() *Config {
	return &Config{
		Cache: costmodel.NewCache(),
		Grid:  costmodel.FastGrid(),
		Seed:  1,
		Quick: true,
	}
}

// trimOLAP shortens a workload in Quick mode.
func (c *Config) trimOLAP(w *benchdb.OLAPWorkload) *benchdb.OLAPWorkload {
	if !c.Quick || len(w.Queries) <= 12 {
		return w
	}
	out := *w
	out.Queries = w.Queries[:12]
	return &out
}

// fourDisks builds the homogeneous 1-1-1-1 system of the paper's Sec. 6.2.
func fourDisks(objects []layout.Object) *replay.System {
	return &replay.System{
		Objects: objects,
		Devices: []replay.DeviceSpec{
			replay.Disk15K("disk0"), replay.Disk15K("disk1"),
			replay.Disk15K("disk2"), replay.Disk15K("disk3"),
		},
	}
}

// names extracts the object names of a system.
func names(sys *replay.System) []string {
	out := make([]string, len(sys.Objects))
	for i, o := range sys.Objects {
		out[i] = o.Name
	}
	return out
}

// advise runs the full advisor pipeline on an instance, multi-starting from
// both the Sec. 4.2 heuristic initial layout and SEE (the "repeat?" loop of
// Fig. 4) and keeping the better final layout.
func (c *Config) advise(inst *layout.Instance) (*core.Recommendation, error) {
	heuristic, err := layout.InitialLayout(inst)
	if err != nil {
		return nil, err
	}
	adv, err := core.New(inst, core.Options{
		NLP:            nlp.Options{Seed: c.Seed, Trace: c.Trace, Workers: c.Workers},
		InitialLayouts: []*layout.Layout{heuristic, layout.SEE(inst.N(), inst.M())},
		Logger:         c.Logger,
	})
	if err != nil {
		return nil, err
	}
	rec, err := adv.Recommend()
	if err == nil && c.Metrics != nil {
		c.Metrics.Counter("solver_iters_total").Add(int64(rec.SolverIters))
		c.Metrics.Counter("solver_evals_total").Add(int64(rec.SolverEvals))
	}
	return rec, err
}

// traceAndFit replays the workload under the given layout with an online
// workload fitter attached (the streaming equivalent of tracing plus
// Rubicon analysis) and returns the replay result plus the advisor's
// problem instance.
func (c *Config) traceAndFit(sys *replay.System, l *layout.Layout, w *benchdb.OLAPWorkload) (*replay.OLAPResult, *layout.Instance, error) {
	// Rates are fitted over each object's *active* windows rather than the
	// whole trace: OLAP phases are bursts, and burst-rate contention is
	// what the interference model needs to see.
	fitter := rubicon.NewFitter(names(sys), rubicon.Options{ActiveRates: true})
	res, err := replay.RunOLAP(sys, l, w, replay.Options{
		Seed: c.Seed, Tracer: fitter, Metrics: c.Metrics, Logger: c.Logger})
	if err != nil {
		return nil, nil, err
	}
	set, err := fitter.Fit()
	if err != nil {
		return nil, nil, err
	}
	inst := &layout.Instance{
		Objects:   sys.Objects,
		Targets:   sys.Targets(c.Cache, c.Grid),
		Workloads: set,
	}
	if err := inst.Validate(); err != nil {
		return nil, nil, err
	}
	return res, inst, nil
}

// replayOLAP replays a workload under a layout without tracing.
func replayOLAP(sys *replay.System, l *layout.Layout, w *benchdb.OLAPWorkload, cfg *Config) (*replay.OLAPResult, error) {
	return replay.RunOLAP(sys, l, w, replay.Options{
		Seed: cfg.Seed, Metrics: cfg.Metrics, Logger: cfg.Logger})
}

// speedup formats a paper-style speedup factor.
func speedup(base, opt float64) string {
	if opt <= 0 {
		return "n/a"
	}
	return fmt.Sprintf("%.2fx", base/opt)
}
