package experiments

import (
	"fmt"
	"strings"

	"dblayout/internal/costmodel"
	"dblayout/internal/replay"
)

// CostSliceSeries is one run-count curve of the paper's Fig. 8: the measured
// per-request cost of 8 KB reads on the 15K disk as a function of the
// contention factor.
type CostSliceSeries struct {
	RunCount   float64
	Contention []float64
	CostMs     []float64
}

// Fig8CostSlice calibrates the disk cost model and extracts the 8 KB read
// slice, one series per calibrated run count.
func Fig8CostSlice(cfg *Config) ([]CostSliceSeries, error) {
	spec := replay.Disk15K("fig8")
	model := cfg.Cache.Get(spec.ModelKey(), spec.Factory(), cfg.Grid)

	si := -1
	for i, s := range model.Read.Sizes {
		if s == 8192 {
			si = i
			break
		}
	}
	if si < 0 {
		return nil, fmt.Errorf("experiments: calibration grid has no 8 KB size point")
	}
	var out []CostSliceSeries
	for ri, rc := range model.Read.RunCounts {
		curve := model.Read.Curves[si][ri]
		s := CostSliceSeries{RunCount: rc}
		for k := range curve.Contention {
			s.Contention = append(s.Contention, curve.Contention[k])
			s.CostMs = append(s.CostMs, curve.Cost[k]*1e3)
		}
		out = append(out, s)
	}
	return out, nil
}

// Fig8Table renders the cost-model slice as a contention x run-count table.
func Fig8Table(series []CostSliceSeries) string {
	var sb strings.Builder
	sb.WriteString("8 KB read request cost (ms) vs. contention factor, per run count:\n")
	fmt.Fprintf(&sb, "%-12s", "chi \\ run")
	for _, s := range series {
		fmt.Fprintf(&sb, " %8.0f", s.RunCount)
	}
	sb.WriteByte('\n')
	if len(series) == 0 {
		return sb.String()
	}
	for k := range series[0].Contention {
		fmt.Fprintf(&sb, "%-12.2f", series[0].Contention[k])
		for _, s := range series {
			if k < len(s.CostMs) {
				fmt.Fprintf(&sb, " %8.3f", s.CostMs[k])
			}
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}

// Fig8CostSliceModel returns the calibrated disk model behind the Fig. 8
// slice, for shape checks.
func Fig8CostSliceModel(cfg *Config) *costmodel.Model {
	spec := replay.Disk15K("fig8")
	return cfg.Cache.Get(spec.ModelKey(), spec.Factory(), cfg.Grid)
}

// Fig8Check verifies the qualitative Fig. 8 properties on a calibrated
// model: sequential requests are much cheaper than random at low contention,
// the advantage collapses as contention grows, and random cost does not grow
// with contention (disk scheduling). It returns a descriptive error when a
// property fails, for use by tests and the verification harness.
func Fig8Check(m *costmodel.Model) error {
	seqLow := m.Cost(false, 8192, 64, 0)
	rndLow := m.Cost(false, 8192, 1, 0)
	if seqLow >= rndLow/4 {
		return fmt.Errorf("sequential %0.3gms not ≪ random %0.3gms at low contention", seqLow*1e3, rndLow*1e3)
	}
	seqHigh := m.Cost(false, 8192, 64, 6)
	if seqHigh < 3*seqLow {
		return fmt.Errorf("no interference collapse: %0.3gms -> %0.3gms", seqLow*1e3, seqHigh*1e3)
	}
	rndHigh := m.Cost(false, 8192, 1, 6)
	if rndHigh > rndLow*1.1 {
		return fmt.Errorf("random cost grows with contention: %0.3gms -> %0.3gms", rndLow*1e3, rndHigh*1e3)
	}
	return nil
}
