package experiments

import (
	"bytes"
	"errors"
	"fmt"
	"math"
	"strings"

	"dblayout/internal/control"
	"dblayout/internal/core"
	"dblayout/internal/layout"
	"dblayout/internal/migrate"
	"dblayout/internal/nlp"
	"dblayout/internal/obs"
	"dblayout/internal/replay"
	"dblayout/internal/rubicon"
)

// AutonomicResult reports the end-to-end autonomic control-loop study: the
// diurnal drift scenario of the drift experiment, but closed-loop — the
// controller watches the window fits, detects the OLTP→OLAP shift, re-advises
// a layout for the night workload, migrates to it online, and settles back
// into steady observation. A second controller replays the steady prefix
// alone and must take zero actions.
type AutonomicResult struct {
	// WindowSize is the utilization window; RefitSize the rubicon refit
	// window the controller observes (both simulated s).
	WindowSize, RefitSize float64
	// ShiftTime is when the workload shifted (simulated s).
	ShiftTime float64
	// SteadyUtil / DriftUtil are the initial layout's max predicted
	// utilization under the steady and drifted window fits — the
	// separation the UtilThreshold midpoint is calibrated into.
	SteadyUtil, DriftUtil           float64
	UtilThreshold, OverlapThreshold float64
	// Fits is the monitored run's refit-window count; SteadyFits the
	// steady prefix's.
	Fits, SteadyFits int
	// SteadyActions counts controller actions during the steady-prefix
	// replay (must be 0: a quiet workload provokes nothing).
	SteadyActions int
	// Detected reports the monitored controller saw the shift;
	// DetectWindow/DetectSignal locate the first detection.
	Detected     bool
	DetectWindow int64
	DetectSignal string
	// Epochs counts completed migrations; the times trace the loop:
	// detect → migrate-start → migrate-done → cooldown-end.
	Epochs                                         int
	MigrateStartTime, MigrateDoneTime, CooldownEnd float64
	// Gain is the predicted max-utilization gain the controller migrated
	// for; MigratedBytes what the plan moved.
	Gain          float64
	MigratedBytes int64
	// Skips counts gated detections (re-advises that did not migrate).
	Skips int
	// ExtensionWindows is how many synthetic post-trace windows were fed
	// before the loop returned to observing (migration + cooldown time).
	ExtensionWindows int
	// InitialDriftUtil / FinalDriftUtil are the predicted max utilization
	// of the pre-migration and post-migration layouts under the last
	// drifted fit — the realized benefit.
	InitialDriftUtil, FinalDriftUtil float64
	// FinalPhase is the controller's phase after the run ("observing" on
	// success); JournalBytes the write-ahead journal's size.
	FinalPhase   string
	JournalBytes int
	// JournalConsistent reports that recovering the journal from scratch
	// reproduces the live controller's epoch count and current layout —
	// the crash-safety contract checked on the experiment's own run.
	JournalConsistent bool
	// Actions is the monitored controller's full action log.
	Actions []control.Action
}

// Autonomic runs the autonomic control-loop study:
//
//  1. trace the steady OLTP prefix under SEE, fit the steady workload model,
//     and advise the layout the system starts on;
//  2. replay the prefix under that layout to calibrate: its elapsed time is
//     the full run's shift time (replay determinism), its refit windows set
//     the overlap threshold and the steady utilization level;
//  3. replay the full diurnal workload under the same layout, collecting the
//     refit-window fits the controller will observe; the utilization
//     threshold is the midpoint between the initial layout's steady and
//     drifted predicted utilizations;
//  4. feed the fits to a controller driving a simulated I/O surface: it must
//     detect the shift, re-advise, migrate online, cool down, and return to
//     observing (synthetic trailing windows cover migration time beyond the
//     trace);
//  5. feed the steady prefix's fits alone to a fresh controller: zero actions;
//  6. recover the journal from scratch and check it reproduces the live
//     controller's state.
func Autonomic(cfg *Config) (*AutonomicResult, error) {
	sc := newDriftScenario(cfg.Quick)
	sys := fourDisks(sc.catalog.Objects)
	see := layout.SEE(len(sc.catalog.Objects), len(sys.Devices))

	// 1. Steady-state model and the layout the controller starts on.
	_, inst, err := cfg.traceAndFit(sys, see, sc.prefix)
	if err != nil {
		return nil, fmt.Errorf("experiments: autonomic steady trace: %w", err)
	}
	rec, err := cfg.advise(inst)
	if err != nil {
		return nil, fmt.Errorf("experiments: autonomic initial advise: %w", err)
	}
	initial := rec.Final

	// 2. Calibration replay of the prefix under the initial layout.
	wfitCal := rubicon.NewWindowed(names(sys), sc.refit, rubicon.Options{ActiveRates: true})
	pre, err := replay.RunOLAP(sys, initial, sc.prefix, replay.Options{
		Seed: cfg.Seed, Tracer: wfitCal, Metrics: cfg.Metrics, Logger: cfg.Logger})
	if err != nil {
		return nil, fmt.Errorf("experiments: autonomic calibration: %w", err)
	}
	calFits, err := wfitCal.Flush()
	if err != nil {
		return nil, fmt.Errorf("experiments: autonomic calibration refits: %w", err)
	}
	if len(calFits) == 0 {
		return nil, fmt.Errorf("experiments: autonomic calibration produced no refit windows")
	}

	// 3. The monitored trace: full diurnal run under the initial layout.
	wfit := rubicon.NewWindowed(names(sys), sc.refit, rubicon.Options{ActiveRates: true})
	if _, err := replay.RunOLAP(sys, initial, sc.full, replay.Options{
		Seed: cfg.Seed, Tracer: wfit, Metrics: cfg.Metrics, Logger: cfg.Logger}); err != nil {
		return nil, fmt.Errorf("experiments: autonomic monitored replay: %w", err)
	}
	fits, err := wfit.Flush()
	if err != nil {
		return nil, fmt.Errorf("experiments: autonomic monitored refits: %w", err)
	}

	out := &AutonomicResult{
		WindowSize: sc.window,
		RefitSize:  sc.refit,
		ShiftTime:  pre.Elapsed,
		Fits:       len(fits),
		SteadyFits: len(calFits),
	}

	// Calibrate the utilization threshold: midpoint between the initial
	// layout's predicted utilization under steady fits and under drifted
	// ones, mirroring the chaos harness. Fits straddling the shift count as
	// drifted — their scans already load the layout.
	util := func(f rubicon.WindowFit, l *layout.Layout) float64 {
		in := *inst
		in.Workloads = f.Set
		return layout.NewEvaluator(&in).MaxUtilization(l)
	}
	var lastDrifted *rubicon.WindowFit
	for i := range fits {
		f := fits[i]
		u := util(f, initial)
		if f.End <= out.ShiftTime {
			if u > out.SteadyUtil {
				out.SteadyUtil = u
			}
			continue
		}
		if u > out.DriftUtil {
			out.DriftUtil = u
		}
		lastDrifted = &fits[i]
	}
	for _, f := range calFits {
		if u := util(f, initial); u > out.SteadyUtil {
			out.SteadyUtil = u
		}
	}
	if lastDrifted == nil {
		return nil, fmt.Errorf("experiments: autonomic run has no post-shift refit windows")
	}
	if out.DriftUtil <= out.SteadyUtil {
		return nil, fmt.Errorf("experiments: autonomic shift raised no utilization (steady %.3f, drifted %.3f)",
			out.SteadyUtil, out.DriftUtil)
	}
	out.UtilThreshold = (out.SteadyUtil + out.DriftUtil) / 2
	var maxOv float64
	for _, f := range calFits[1:] {
		if f.OverlapDistance > maxOv {
			maxOv = f.OverlapDistance
		}
	}
	out.OverlapThreshold = 3 * maxOv
	if out.OverlapThreshold < 0.1 {
		out.OverlapThreshold = 0.1
	}
	out.InitialDriftUtil = util(*lastDrifted, initial)

	// 4. The controller, driving a simulated I/O surface built from the
	// instance's targets.
	controller := func(journal *bytes.Buffer) (*control.Controller, *control.SimIO, error) {
		caps := inst.Capacities()
		devs := make([]control.SimDevice, inst.M())
		for j := range devs {
			devs[j] = control.SimDevice{
				Name:        inst.Targets[j].Name,
				Capacity:    caps[j],
				BytesPerSec: 64 << 20,
				FailAt:      -1,
			}
		}
		sim := control.NewSimIO(devs, 0)
		ctl, err := control.New(control.Config{
			Instance: inst,
			Current:  initial,
			IO:       sim,
			Journal:  journal,
			Seed:     cfg.Seed,
			Advisor: core.Options{
				NLP:    nlp.Options{Workers: cfg.Workers, Trace: cfg.Trace},
				Logger: cfg.Logger,
			},
			Drift:            obs.DriftConfig{Trigger: 1, Clear: 2, MinInterval: 2 * sc.refit},
			UtilThreshold:    out.UtilThreshold,
			OverlapThreshold: out.OverlapThreshold,
			HorizonSeconds:   1e6,
			CooldownWindows:  3,
			Migration: migrate.Options{
				BytesPerSec:     64 << 20,
				ChunkBytes:      4 << 20,
				CheckpointBytes: 64 << 20,
				MaxQueueShare:   1,
			},
			Logger:  cfg.Logger,
			Metrics: cfg.Metrics,
		})
		return ctl, sim, err
	}
	feed := func(ctl *control.Controller, sim *control.SimIO, f rubicon.WindowFit) error {
		if dt := f.End - sim.Now(); dt > 0 {
			sim.Advance(dt)
		}
		if err := ctl.ObserveFit(f); err != nil && !errors.Is(err, control.ErrRetriesExhausted) {
			return err
		}
		return nil
	}

	var journal bytes.Buffer
	ctl, sim, err := controller(&journal)
	if err != nil {
		return nil, fmt.Errorf("experiments: autonomic controller: %w", err)
	}
	for _, f := range fits {
		if err := feed(ctl, sim, f); err != nil {
			return nil, fmt.Errorf("experiments: autonomic controller crashed: %w", err)
		}
	}
	// The trace ended, but a migration started near its end is still in
	// flight (plus cooldown). Keep the loop breathing on synthetic windows
	// repeating the last drifted fit until it returns to observing.
	ext := *lastDrifted
	for ctl.Status().Phase != control.PhaseObserving && out.ExtensionWindows < 200 {
		out.ExtensionWindows++
		ext.Window++
		ext.Start, ext.End = ext.End, ext.End+sc.refit
		ext.OverlapDistance = 0
		if err := feed(ctl, sim, ext); err != nil {
			return nil, fmt.Errorf("experiments: autonomic controller crashed: %w", err)
		}
	}

	out.Actions = ctl.Actions()
	for _, a := range out.Actions {
		switch a.Kind {
		case "detect":
			if !out.Detected {
				out.Detected = true
				out.DetectWindow = a.Window
				out.DetectSignal = a.Signal
			}
		case "migrate-start":
			if out.Epochs == 0 {
				out.MigrateStartTime = a.Time
				out.Gain = a.Gain
				var steps int
				fmt.Sscanf(a.Detail, "%d steps, %d bytes", &steps, &out.MigratedBytes)
			}
		case "migrate-done":
			out.Epochs++
			out.MigrateDoneTime = a.Time
		case "cooldown-end":
			out.CooldownEnd = a.Time
		case "skip":
			out.Skips++
		}
	}
	out.FinalPhase = ctl.Status().Phase.String()
	out.FinalDriftUtil = util(*lastDrifted, ctl.CurrentLayout())
	out.JournalBytes = journal.Len()

	// 5. The steady prefix alone must provoke nothing.
	var steadyJournal bytes.Buffer
	sctl, ssim, err := controller(&steadyJournal)
	if err != nil {
		return nil, fmt.Errorf("experiments: autonomic steady controller: %w", err)
	}
	for _, f := range calFits {
		if err := feed(sctl, ssim, f); err != nil {
			return nil, fmt.Errorf("experiments: autonomic steady controller crashed: %w", err)
		}
	}
	out.SteadyActions = len(sctl.Actions())

	// 6. The journal, recovered from scratch, must reproduce the live state.
	ck, err := control.Recover(journal.Bytes())
	out.JournalConsistent = err == nil &&
		ck.Epoch == ctl.Status().Epoch &&
		layoutsClose(ck.Current, ctl.CurrentLayout())
	return out, nil
}

// layoutsClose reports whether two layouts agree within numerical noise.
func layoutsClose(a, b *layout.Layout) bool {
	if a == nil || b == nil || a.N != b.N || a.M != b.M {
		return false
	}
	for i := 0; i < a.N; i++ {
		for j := 0; j < a.M; j++ {
			if math.Abs(a.At(i, j)-b.At(i, j)) > 1e-9 {
				return false
			}
		}
	}
	return true
}

// AutonomicTable renders the autonomic control-loop study.
func AutonomicTable(r *AutonomicResult) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "autonomic loop: diurnal shift at t=%.1fs (%d refit windows of %.2gs)\n",
		r.ShiftTime, r.Fits, r.RefitSize)
	fmt.Fprintf(&sb, "calibration: steady util %.3f, drifted util %.3f -> threshold %.3f; overlap threshold %.3f\n",
		r.SteadyUtil, r.DriftUtil, r.UtilThreshold, r.OverlapThreshold)
	fmt.Fprintf(&sb, "steady replay: %d fits, %d controller actions (want 0)\n\n",
		r.SteadyFits, r.SteadyActions)
	if r.Detected {
		fmt.Fprintf(&sb, "detected in refit window %d (signal %s)\n", r.DetectWindow, r.DetectSignal)
	} else {
		fmt.Fprintf(&sb, "drift NOT detected\n")
	}
	if r.Epochs > 0 {
		fmt.Fprintf(&sb, "migrated %d bytes at t=%.1fs for predicted gain %.3f; done t=%.1fs, cooldown over t=%.1fs\n",
			r.MigratedBytes, r.MigrateStartTime, r.Gain, r.MigrateDoneTime, r.CooldownEnd)
	} else {
		fmt.Fprintf(&sb, "no migration ran (%d gated detections)\n", r.Skips)
	}
	fmt.Fprintf(&sb, "predicted util under the night workload: %.3f before -> %.3f after\n",
		r.InitialDriftUtil, r.FinalDriftUtil)
	fmt.Fprintf(&sb, "loop: %d epochs, %d skips, %d trailing windows to steady state, final phase %s\n",
		r.Epochs, r.Skips, r.ExtensionWindows, r.FinalPhase)
	fmt.Fprintf(&sb, "journal: %d bytes, recovery %s\n",
		r.JournalBytes, map[bool]string{true: "consistent with live state", false: "INCONSISTENT"}[r.JournalConsistent])
	fmt.Fprintf(&sb, "\nactions:\n")
	for _, a := range r.Actions {
		fmt.Fprintf(&sb, "  t=%8.1f  %-13s", a.Time, a.Kind)
		if a.Epoch > 0 {
			fmt.Fprintf(&sb, " epoch %d", a.Epoch)
		}
		if a.Signal != "" {
			fmt.Fprintf(&sb, " [%s]", a.Signal)
		}
		if a.Detail != "" {
			fmt.Fprintf(&sb, " %s", a.Detail)
		}
		fmt.Fprintln(&sb)
	}
	return sb.String()
}
