package experiments

import (
	"fmt"
	"strings"
	"time"

	"dblayout/internal/core"
	"dblayout/internal/layouttest"
	"dblayout/internal/nlp"
)

// FleetRow is one solver's line of the fleet-scale study.
type FleetRow struct {
	Solver string
	N, M   int
	// Initial and Final are the predicted max target utilizations of the
	// heuristic initial layout and the recommendation.
	Initial, Final float64
	// Elapsed is the advisor's solve time; Iters and Evals its effort.
	Elapsed      time.Duration
	Iters, Evals int
}

// Fleet runs the fleet-scale study, an extension beyond the paper's largest
// problems (N=160 x M=40): the pruned flat transfer search and the
// hierarchical cluster decomposition solve the same block-sparse
// layouttest.Fleet instance — N=10000 objects on M=1000 targets at full
// scale, N=800 x M=64 in Quick mode. Regularization runs (its object-load
// ordering is a single batch pass plus an O(N log N) sort, with candidate
// stripe widths bounded at fleet scale) and candidate pruning is forced on
// the flat solve so the quick gate exercises the same code paths the full
// run does.
func Fleet(cfg *Config) ([]FleetRow, error) {
	n, m := 10000, 1000
	if cfg.Quick {
		n, m = 800, 64
	}
	inst := layouttest.Fleet(n, m)

	cases := []struct {
		name string
		opt  core.Options
	}{
		{"transfer+prune", core.Options{
			Solver: core.SolverTransfer,
			NLP:    nlp.Options{PruneObjects: 64, PruneTargets: 16},
		}},
		{"hierarchical", core.Options{
			Solver: core.SolverHierarchical,
		}},
	}
	var out []FleetRow
	for _, c := range cases {
		opt := c.opt
		opt.Rounds = 1
		// The one-shot Sec. 4.3 regularizer runs (bounded candidate
		// widths keep it near-linear); the multi-pass polish extension
		// is still skipped at this scale — its 8 re-placement sweeps
		// would dominate the whole solve.
		opt.SkipPolish = true
		opt.Logger = cfg.Logger
		opt.NLP.Seed = cfg.Seed
		opt.NLP.Workers = cfg.Workers
		opt.NLP.Trace = cfg.Trace
		opt.NLP.Restarts = nlp.NoRestarts
		opt.NLP.MaxIters = 256
		adv, err := core.New(inst, opt)
		if err != nil {
			return nil, fmt.Errorf("experiments: fleet %s: %w", c.name, err)
		}
		start := time.Now()
		rec, err := adv.Recommend()
		if err != nil {
			return nil, fmt.Errorf("experiments: fleet %s: %w", c.name, err)
		}
		out = append(out, FleetRow{
			Solver:  c.name,
			N:       n,
			M:       m,
			Initial: rec.InitialObjective,
			Final:   rec.FinalObjective,
			Elapsed: time.Since(start),
			Iters:   rec.SolverIters,
			Evals:   rec.SolverEvals,
		})
	}
	return out, nil
}

// FleetTable renders the fleet-scale study rows.
func FleetTable(rows []FleetRow) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-16s %6s %6s %10s %10s %10s %9s %12s\n",
		"Solver", "N", "M", "Initial", "Final", "Elapsed", "Iters", "Evals")
	for _, r := range rows {
		fmt.Fprintf(&sb, "%-16s %6d %6d %10.3f %10.3f %10s %9d %12d\n",
			r.Solver, r.N, r.M, r.Initial, r.Final,
			r.Elapsed.Round(time.Millisecond), r.Iters, r.Evals)
	}
	return sb.String()
}
