package experiments

import "testing"

// These tests run the paper-scale experiments and log the reproduced tables.
// They are skipped with -short; the quick variants in experiments_test.go
// cover the same code paths at reduced scale.

func TestFullHeterogeneous(t *testing.T) {
	if testing.Short() {
		t.Skip("paper-scale experiment")
	}
	rows, err := Heterogeneous(NewConfig())
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("\n%s", Fig17Table(rows))
}

func TestFullSSD(t *testing.T) {
	if testing.Short() {
		t.Skip("paper-scale experiment")
	}
	rows, err := SSDStudy(NewConfig())
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("\n%s", Fig18Table(rows))
}

func TestFullConsolidation(t *testing.T) {
	if testing.Short() {
		t.Skip("paper-scale experiment")
	}
	res, err := Consolidation(NewConfig())
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("\n%s\n%s", res.Fig15Table(), res.Fig16Table())
}

func TestFullAutoAdmin(t *testing.T) {
	if testing.Short() {
		t.Skip("paper-scale experiment")
	}
	res, err := AutoAdminStudy(NewConfig())
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("\n%s", res.Fig20Table())
}

func TestFullTiming(t *testing.T) {
	if testing.Short() {
		t.Skip("paper-scale experiment")
	}
	rows, err := Timing(NewConfig())
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("\n%s", Fig19Table(rows))
}

func TestFullFig8(t *testing.T) {
	if testing.Short() {
		t.Skip("paper-scale experiment")
	}
	cfg := NewConfig()
	series, err := Fig8CostSlice(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("\n%s", Fig8Table(series))
}
