package experiments

import (
	"bytes"
	"math"
	"strings"
	"testing"
)

// The quick tests exercise every experiment's full pipeline (trace, fit,
// calibrate, advise, replay) at reduced scale so the suite stays fast. The
// paper-scale runs live in full_test.go and are skipped with -short.

func TestQuickHomogeneous(t *testing.T) {
	cfg := NewQuickConfig()
	runs, err := Homogeneous(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(runs) != 2 {
		t.Fatalf("got %d workload runs, want 2", len(runs))
	}
	for _, r := range runs {
		if r.SEEElapsed <= 0 || r.OptElapsed <= 0 {
			t.Fatalf("%s: degenerate elapsed times %g/%g", r.Workload, r.SEEElapsed, r.OptElapsed)
		}
		// The advisor must never produce a layout predicted worse than
		// its own starting points, and the replayed recommendation
		// should not catastrophically regress against SEE.
		if r.OptElapsed > 1.15*r.SEEElapsed {
			t.Errorf("%s: optimized %.0f s ≫ SEE %.0f s", r.Workload, r.OptElapsed, r.SEEElapsed)
		}
		if !r.Rec.Final.IsRegular() {
			t.Errorf("%s: final layout not regular", r.Workload)
		}
		if len(r.SEEUtil) != 4 || len(r.RegularUtil) != 4 {
			t.Errorf("%s: wrong utilization vector lengths", r.Workload)
		}
	}
	tbl := Fig11Table(runs)
	if !strings.Contains(tbl, "OLAP1-63") || !strings.Contains(tbl, "Speedup") {
		t.Errorf("Fig11Table missing content:\n%s", tbl)
	}
	if s := Fig13Table(runs[0]); !strings.Contains(s, "Solver") {
		t.Errorf("Fig13Table missing content:\n%s", s)
	}
	if s := LayoutTable(runs[0].Instance, runs[0].Rec.Final, 5); !strings.Contains(s, "%") {
		t.Errorf("LayoutTable missing content:\n%s", s)
	}
}

func TestQuickConsolidation(t *testing.T) {
	cfg := NewQuickConfig()
	res, err := Consolidation(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.SEEOLAP <= 0 || res.SEETpmC <= 0 {
		t.Fatalf("degenerate SEE results: %+v", res)
	}
	if res.OptOLAP <= 0 || res.OptTpmC <= 0 {
		t.Fatalf("degenerate optimized results: %+v", res)
	}
	if !strings.Contains(res.Fig15Table(), "tpmC") {
		t.Error("Fig15Table missing tpmC row")
	}
	if !strings.Contains(res.Fig16Table(), "STOCK") {
		t.Error("Fig16Table missing TPC-C objects")
	}
}

func TestQuickHeterogeneous(t *testing.T) {
	cfg := NewQuickConfig()
	rows, err := Heterogeneous(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("got %d configs, want 3", len(rows))
	}
	byName := map[string]HeteroRow{}
	for _, r := range rows {
		byName[r.Config] = r
		if r.SEE <= 0 || r.Optimized <= 0 {
			t.Fatalf("%s: degenerate times", r.Config)
		}
	}
	if math.IsNaN(byName["3-1"].IsolateTables) {
		t.Error("3-1 missing isolate-tables baseline")
	}
	if math.IsNaN(byName["2-1-1"].IsolateTablesIndexes) {
		t.Error("2-1-1 missing isolate-tables+indexes baseline")
	}
	if !math.IsNaN(byName["1-1-1-1"].IsolateTables) {
		t.Error("1-1-1-1 should not have an isolate baseline")
	}
	if !strings.Contains(Fig17Table(rows), "n/a") {
		t.Error("Fig17Table should render n/a entries")
	}
}

func TestQuickSSD(t *testing.T) {
	cfg := NewQuickConfig()
	rows, err := SSDStudy(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != len(SSDCapacitiesGB) {
		t.Fatalf("got %d rows, want %d", len(rows), len(SSDCapacitiesGB))
	}
	for _, r := range rows {
		if r.SEE <= 0 || r.Optimized <= 0 {
			t.Fatalf("%d GB: degenerate times", r.CapacityGB)
		}
		if r.CapacityGB == 32 && math.IsNaN(r.AllOnSSD) {
			t.Error("32 GB row should have the all-on-SSD baseline")
		}
		if r.CapacityGB == 4 && !math.IsNaN(r.AllOnSSD) {
			t.Error("4 GB row cannot hold all objects on the SSD")
		}
	}
	// The SSD helps: at 32 GB the optimized layout must beat disk-only
	// style SEE striping clearly even at quick scale.
	if rows[0].Optimized >= rows[0].SEE {
		t.Errorf("32 GB: optimized %.0f not better than SEE %.0f", rows[0].Optimized, rows[0].SEE)
	}
}

func TestQuickTiming(t *testing.T) {
	cfg := NewQuickConfig()
	rows, err := Timing(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) < 2 {
		t.Fatalf("got %d timing rows", len(rows))
	}
	if rows[0].N != 20 || rows[0].M != 4 {
		t.Errorf("first row should be OLAP8-63 N=20 M=4, got N=%d M=%d", rows[0].N, rows[0].M)
	}
	for _, r := range rows {
		if r.Total < r.Solve || r.Total < r.Regular {
			t.Errorf("%s: inconsistent timing decomposition", r.Workload)
		}
	}
	if !strings.Contains(Fig19Table(rows), "consolidation") {
		t.Error("Fig19Table missing consolidation rows")
	}
}

func TestQuickAutoAdmin(t *testing.T) {
	cfg := NewQuickConfig()
	res, err := AutoAdminStudy(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.AALayout == nil || !res.AALayout.IsRegular() {
		t.Fatal("AutoAdmin layout missing or non-regular")
	}
	for _, v := range []float64{res.SEE163, res.AA163, res.Ours163, res.SEE863, res.AA863, res.Ours863} {
		if v <= 0 {
			t.Fatalf("degenerate elapsed times: %+v", res)
		}
	}
	if !strings.Contains(res.Fig20Table(), "AutoAdmin") {
		t.Error("Fig20Table missing content")
	}
}

func TestQuickMigration(t *testing.T) {
	cfg := NewQuickConfig()
	res, err := Migration(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Moves <= 0 || res.Steps < res.Moves {
		t.Fatalf("degenerate script: %d moves, %d steps", res.Moves, res.Steps)
	}
	if len(res.Scenarios) != len(migrationRates) {
		t.Fatalf("got %d scenarios, want %d", len(res.Scenarios), len(migrationRates))
	}
	copied := res.Scenarios[0].CopiedMiB
	for _, s := range res.Scenarios {
		if s.Elapsed <= 0 || s.MigrationElapsed <= 0 {
			t.Fatalf("%s: degenerate times %+v", s.Name, s)
		}
		if s.CopiedMiB != copied {
			t.Errorf("%s: copied %.1f MiB, others copied %.1f (throttle must not change the payload)",
				s.Name, s.CopiedMiB, copied)
		}
		if s.RateMiB > 0 && s.EffectiveMiB > s.RateMiB*1.05 {
			t.Errorf("%s: effective rate %.1f MiB/s exceeds the throttle", s.Name, s.EffectiveMiB)
		}
	}
	// A tighter throttle must stretch the copy.
	last := res.Scenarios[len(res.Scenarios)-1]
	if last.MigrationElapsed <= res.Scenarios[0].MigrationElapsed {
		t.Errorf("throttled copy (%.0fs) not slower than unthrottled (%.0fs)",
			last.MigrationElapsed, res.Scenarios[0].MigrationElapsed)
	}
	// The fault scenario must have aborted partway and evacuated the
	// dead disk by reconstruction.
	if res.FaultCommitted >= res.FaultSteps {
		t.Errorf("fault came too late: %d/%d steps committed", res.FaultCommitted, res.FaultSteps)
	}
	if res.RepairMoves == 0 || res.ReconstructedMiB <= 0 {
		t.Errorf("evacuation did not reconstruct: %d moves, %.1f MiB", res.RepairMoves, res.ReconstructedMiB)
	}
	if !strings.Contains(MigrationTable(res), "reconstruction") {
		t.Error("MigrationTable missing content")
	}
}

func TestQuickFig8(t *testing.T) {
	cfg := NewQuickConfig()
	series, err := Fig8CostSlice(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(series) == 0 {
		t.Fatal("no cost-slice series")
	}
	// Qualitative Fig. 8 shape on the calibrated model.
	spec := Fig8CostSliceModel(cfg)
	if err := Fig8Check(spec); err != nil {
		t.Errorf("Fig. 8 shape violated: %v", err)
	}
	if !strings.Contains(Fig8Table(series), "chi") {
		t.Error("Fig8Table missing header")
	}
}

func TestQuickAblation(t *testing.T) {
	cfg := NewQuickConfig()
	rows, err := Ablation(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) < 5 {
		t.Fatalf("got %d ablation rows", len(rows))
	}
	if rows[0].Variant != "SEE baseline" {
		t.Fatalf("first row %q", rows[0].Variant)
	}
	for _, r := range rows {
		if r.Predicted <= 0 || r.Replayed <= 0 {
			t.Fatalf("degenerate row %+v", r)
		}
	}
	// The default variant must be at least as good (predicted) as the
	// SEE-only start.
	var def, seeOnly float64
	for _, r := range rows {
		switch r.Variant {
		case "transfer+multistart (default)":
			def = r.Predicted
		case "transfer, SEE init only":
			seeOnly = r.Predicted
		}
	}
	if def > seeOnly*(1+1e-9) {
		t.Errorf("default %.4f worse than SEE-only start %.4f", def, seeOnly)
	}
	if !strings.Contains(AblationTable(rows), "Variant") {
		t.Error("AblationTable missing header")
	}
}

func TestQuickDrift(t *testing.T) {
	cfg := NewQuickConfig()
	var events bytes.Buffer
	cfg.DriftEvents = &events
	res, err := Drift(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.SteadyEvents != 0 {
		t.Errorf("detector fired %d times during steady state, want 0", res.SteadyEvents)
	}
	if !res.Detected {
		t.Fatal("prediction-error drift not detected after the shift")
	}
	// The hysteresis needs Trigger=2 drifted windows, so latency is at
	// least 1; anything beyond a handful of windows means the signal is
	// too weak to be useful.
	if res.DetectionLatency < 1 || res.DetectionLatency > 6 {
		t.Errorf("detection latency %d windows, want 1..6", res.DetectionLatency)
	}
	if !res.OverlapDetected {
		t.Error("overlap-matrix drift not detected")
	}
	if res.OverlapDistance <= res.OverlapThreshold {
		t.Errorf("overlap distance %.3f not above threshold %.3f",
			res.OverlapDistance, res.OverlapThreshold)
	}
	if res.ShiftTime <= 0 || res.Elapsed <= res.ShiftTime {
		t.Errorf("degenerate times: shift %.2f, elapsed %.2f", res.ShiftTime, res.Elapsed)
	}
	if len(res.Events) == 0 {
		t.Error("no events recorded")
	}
	// Every fired event also landed on the JSONL stream.
	lines := strings.Count(strings.TrimRight(events.String(), "\n"), "\n") + 1
	if events.Len() == 0 || lines != len(res.Events) {
		t.Errorf("event stream has %d lines, want %d", lines, len(res.Events))
	}
	tbl := DriftTable(res)
	for _, want := range []string{"drift: diurnal OLTP->OLAP shift", "steady-state events: 0",
		"prediction-error drift detected", "overlap-matrix drift detected"} {
		if !strings.Contains(tbl, want) {
			t.Errorf("DriftTable missing %q:\n%s", want, tbl)
		}
	}
}

func TestQuickAutonomic(t *testing.T) {
	cfg := NewQuickConfig()
	res, err := Autonomic(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.SteadyActions != 0 {
		t.Errorf("steady replay provoked %d controller actions, want 0", res.SteadyActions)
	}
	if !res.Detected {
		t.Fatal("controller never detected the shift")
	}
	if res.Epochs != 1 {
		t.Fatalf("controller completed %d migration epochs, want 1:\n%s", res.Epochs, AutonomicTable(res))
	}
	if res.MigratedBytes <= 0 || res.Gain <= 0 {
		t.Errorf("degenerate migration: %d bytes for gain %.4f", res.MigratedBytes, res.Gain)
	}
	if res.MigrateDoneTime <= res.MigrateStartTime || res.CooldownEnd <= res.MigrateDoneTime {
		t.Errorf("loop times out of order: start %.1f, done %.1f, cooldown end %.1f",
			res.MigrateStartTime, res.MigrateDoneTime, res.CooldownEnd)
	}
	if res.FinalDriftUtil >= res.InitialDriftUtil {
		t.Errorf("migration did not improve the night workload: %.3f -> %.3f",
			res.InitialDriftUtil, res.FinalDriftUtil)
	}
	if res.FinalPhase != "observing" {
		t.Errorf("controller ended in phase %s, want observing", res.FinalPhase)
	}
	if !res.JournalConsistent {
		t.Error("recovered journal does not reproduce the live controller state")
	}
	tbl := AutonomicTable(res)
	for _, want := range []string{"autonomic loop:", "detected in refit window",
		"recovery consistent with live state"} {
		if !strings.Contains(tbl, want) {
			t.Errorf("AutonomicTable missing %q:\n%s", want, tbl)
		}
	}
}

func TestQuickChaos(t *testing.T) {
	cfg := NewQuickConfig()
	rep, err := Chaos(cfg, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Scenarios) != 4 {
		t.Fatalf("campaign ran %d scenarios, want 4", len(rep.Scenarios))
	}
	if rep.Crashes == 0 || rep.Epochs == 0 {
		t.Errorf("campaign too tame: %d crashes, %d epochs", rep.Crashes, rep.Epochs)
	}
	if !strings.Contains(ChaosTable(rep), "all invariants held") {
		t.Error("ChaosTable missing summary line")
	}
}

func TestQuickFleet(t *testing.T) {
	cfg := NewQuickConfig()
	rows, err := Fleet(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("got %d fleet rows, want 2", len(rows))
	}
	for _, r := range rows {
		if r.N != 800 || r.M != 64 {
			t.Errorf("%s: quick mode ran %dx%d, want 800x64", r.Solver, r.N, r.M)
		}
		if r.Final <= 0 || r.Final > r.Initial {
			t.Errorf("%s: solve did not improve: initial %.3f -> final %.3f",
				r.Solver, r.Initial, r.Final)
		}
		if r.Iters == 0 || r.Evals == 0 {
			t.Errorf("%s: no solver effort reported (%d iters, %d evals)", r.Solver, r.Iters, r.Evals)
		}
	}
	tbl := FleetTable(rows)
	for _, want := range []string{"transfer+prune", "hierarchical"} {
		if !strings.Contains(tbl, want) {
			t.Errorf("FleetTable missing %q:\n%s", want, tbl)
		}
	}
}
