package experiments

import (
	"fmt"
	"strings"
	"time"

	"dblayout/internal/benchdb"
	"dblayout/internal/layout"
	"dblayout/internal/replay"
	"dblayout/internal/rome"
	"dblayout/internal/rubicon"
)

// TimingRow is one problem-size point of paper Fig. 19: advisor running time
// split into solver and regularization.
type TimingRow struct {
	Workload string
	N, M     int
	Solve    time.Duration
	Regular  time.Duration
	Total    time.Duration
}

// Timing measures the layout advisor's running time across the paper's
// Fig. 19 problem sizes: OLAP8-63 (N=20, M=4), the consolidation workload
// (N=40, M=4..40), and replicated consolidation workloads (N=80..160,
// M=10).
func Timing(cfg *Config) ([]TimingRow, error) {
	olapInst, err := fittedOLAP863(cfg)
	if err != nil {
		return nil, err
	}
	consSet, consObjects, err := fittedConsolidation(cfg)
	if err != nil {
		return nil, err
	}

	type point struct {
		name string
		set  *rome.Set
		objs []layout.Object
		m    int
	}
	points := []point{
		{"OLAP8-63", olapInst.Workloads, olapInst.Objects, 4},
		{"consolidation", consSet, consObjects, 4},
		{"consolidation", consSet, consObjects, 10},
		{"consolidation", consSet, consObjects, 20},
		{"consolidation", consSet, consObjects, 40},
		{"2xconsolidation", consSet.Replicate(2), replicateObjects(consObjects, 2), 10},
		{"3xconsolidation", consSet.Replicate(3), replicateObjects(consObjects, 3), 10},
		{"4xconsolidation", consSet.Replicate(4), replicateObjects(consObjects, 4), 10},
	}
	if cfg.Quick {
		points = points[:3]
	}

	diskModel := cfg.Cache.Get(replay.Disk15K("d").ModelKey(), replay.Disk15K("d").Factory(), cfg.Grid)

	var rows []TimingRow
	for _, p := range points {
		targets := make([]*layout.Target, p.m)
		for j := range targets {
			targets[j] = &layout.Target{
				Name: fmt.Sprintf("disk%d", j),
				// Plain 18.4 GB disks hold the base problems; the
				// replicated ones need roomier (but identically
				// modelled) targets, as the paper's synthetic
				// scaling implies.
				Capacity: 64 << 30,
				Model:    diskModel,
			}
		}
		inst := &layout.Instance{Objects: p.objs, Targets: targets, Workloads: p.set}
		if err := inst.Validate(); err != nil {
			return nil, err
		}
		rec, err := cfg.advise(inst)
		if err != nil {
			return nil, fmt.Errorf("experiments: timing %s N=%d M=%d: %w", p.name, len(p.objs), p.m, err)
		}
		rows = append(rows, TimingRow{
			Workload: p.name,
			N:        len(p.objs),
			M:        p.m,
			Solve:    rec.SolveTime,
			Regular:  rec.RegularizeTime,
			Total:    rec.SolveTime + rec.RegularizeTime,
		})
	}
	return rows, nil
}

// fittedOLAP863 produces the advisor instance for OLAP8-63 on four disks.
func fittedOLAP863(cfg *Config) (*layout.Instance, error) {
	w := cfg.trimOLAP(benchdb.OLAP863())
	sys := fourDisks(w.Catalog.Objects)
	see := layout.SEE(len(sys.Objects), len(sys.Devices))
	_, inst, err := cfg.traceAndFit(sys, see, w)
	return inst, err
}

// fittedConsolidation produces the fitted 40-object consolidation workload.
func fittedConsolidation(cfg *Config) (*rome.Set, []layout.Object, error) {
	olap := cfg.trimOLAP(benchdb.OLAP121())
	oltp := benchdb.OLTP()
	objects := append(append([]layout.Object{}, olap.Catalog.Objects...), oltp.Catalog.Objects...)
	sys := fourDisks(objects)
	see := layout.SEE(len(objects), len(sys.Devices))
	// Whole-trace rates: the OLTP side runs continuously, so unlike the
	// pure-OLAP studies there is no burst structure to recover, and
	// active-window rates would overweight the OLAP phases against the
	// steady transaction load.
	fitter := rubicon.NewFitter(names(sys), rubicon.Options{})
	if _, _, err := replay.RunConsolidated(sys, see, olap, oltp, consolidatedWarmup,
		replay.Options{Seed: cfg.Seed, Tracer: fitter}); err != nil {
		return nil, nil, err
	}
	set, err := fitter.Fit()
	if err != nil {
		return nil, nil, err
	}
	return set, objects, nil
}

// replicateObjects mirrors rome.Set.Replicate's naming for object lists.
func replicateObjects(objs []layout.Object, n int) []layout.Object {
	out := make([]layout.Object, 0, len(objs)*n)
	for rep := 0; rep < n; rep++ {
		for _, o := range objs {
			c := o
			if rep > 0 {
				c.Name = fmt.Sprintf("%s#%d", o.Name, rep+1)
			}
			out = append(out, c)
		}
	}
	return out
}

// Fig19Table renders the paper's Fig. 19 rows.
func Fig19Table(rows []TimingRow) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-16s %5s %5s %10s %14s %10s\n", "Workload", "N", "M", "Solver", "Regularization", "TOTAL")
	for _, r := range rows {
		fmt.Fprintf(&sb, "%-16s %5d %5d %9.2fs %13.2fs %9.2fs\n",
			r.Workload, r.N, r.M, r.Solve.Seconds(), r.Regular.Seconds(), r.Total.Seconds())
	}
	return sb.String()
}
