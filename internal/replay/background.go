package replay

import (
	"fmt"

	"dblayout/internal/layout"
	"dblayout/internal/storage"
)

// BackgroundIO gives a background driver (the online-migration engine in
// package migrate) direct access to the running simulation: it can inspect
// device queues, schedule simulated-time callbacks, and submit block I/O
// that contends with the foreground replay traffic on the same devices.
//
// Requests submitted with a valid object index are recorded in that object's
// latency histogram alongside foreground requests, so background-copy cost
// shows up in per-object latency distributions.
type BackgroundIO struct {
	r *runner
}

// Now returns the current simulation time in seconds.
func (b *BackgroundIO) Now() float64 { return b.r.eng.Now() }

// After schedules fn to run delay simulated seconds from now.
func (b *BackgroundIO) After(delay float64, fn func()) { b.r.eng.After(delay, fn) }

// Devices returns the number of storage targets.
func (b *BackgroundIO) Devices() int { return len(b.r.devices) }

// DeviceName returns the name of target j.
func (b *BackgroundIO) DeviceName(j int) string { return b.r.devices[j].Name() }

// Capacity returns the capacity of target j in bytes.
func (b *BackgroundIO) Capacity(j int) int64 { return b.r.devices[j].Capacity() }

// QueueDepth returns the number of requests currently waiting on target j
// (excluding the one in service) — the signal throttles use to yield to
// foreground traffic.
func (b *BackgroundIO) QueueDepth(j int) int { return b.r.devices[j].Stats().QueueDepth }

// NewStream allocates a fresh logical stream identifier, letting sequential
// background copies benefit from (and compete for) device read-ahead like
// any other stream.
func (b *BackgroundIO) NewStream() uint64 { return b.r.nextStreamID() }

// Submit issues one block request against target dev. obj attributes the
// request to a database object's latency histogram (pass a negative index
// for unattributed I/O). done receives true when the request failed because
// the device had failed per its fault schedule.
func (b *BackgroundIO) Submit(dev, obj int, stream uint64, off, size int64, write bool, done func(failed bool)) {
	if dev < 0 || dev >= len(b.r.devices) {
		panic(fmt.Sprintf("replay: background submit to device %d of %d", dev, len(b.r.devices)))
	}
	req := &storage.Request{
		Object: obj,
		Stream: stream,
		Offset: off,
		Size:   size,
		Write:  write,
	}
	if done != nil {
		req.Done = func(q *storage.Request) { done(q.Failed) }
	}
	b.r.submit(b.r.devices[dev], req)
}

// startBackground invokes the configured background driver, if any.
func (r *runner) startBackground() {
	if r.opt.Background != nil {
		r.opt.Background(&BackgroundIO{r: r})
	}
}

// RunIdle runs a system with no foreground workload: only the background
// driver (Options.Background) generates I/O. It is how migrations execute
// against an otherwise quiescent system; the layout must be the regular
// layout currently implemented by the LVM, as in RunOLAP. The result's
// Queries count is zero and Elapsed is the time the background work took.
func RunIdle(sys *System, l *layout.Layout, opt Options) (*OLAPResult, error) {
	opt = opt.withDefaults()
	if opt.Background == nil {
		return nil, fmt.Errorf("replay: RunIdle needs Options.Background")
	}
	r, tr, err := newRunner(sys, l, opt)
	if err != nil {
		return nil, err
	}
	r.startBackground()
	elapsed := r.eng.Run(opt.MaxSimTime)
	if r.eng.Pending() > 0 {
		return nil, fmt.Errorf("replay: background work did not finish within %g simulated seconds", opt.MaxSimTime)
	}
	res := &OLAPResult{
		Elapsed:  elapsed,
		Requests: r.eng.Submitted(),
		Trace:    tr,
	}
	res.Utilizations, res.DeviceStats, res.ObjectLatency = r.observe(elapsed)
	return res, nil
}
