package replay

import (
	"testing"

	"dblayout/internal/layout"
	"dblayout/internal/storage"
)

func backgroundTestSystem() (*System, *layout.Layout) {
	cfg := storage.Disk15KConfig()
	cfg.CapacityBytes = 64 << 20
	sys := &System{
		Objects: []layout.Object{
			{Name: "A", Size: 8 << 20},
			{Name: "B", Size: 8 << 20},
		},
		Devices: []DeviceSpec{
			{Name: "d0", Disk: &cfg},
			{Name: "d1", Disk: &cfg},
		},
	}
	l := layout.New(2, 2)
	l.Set(0, 0, 1)
	l.Set(1, 1, 1)
	return sys, l
}

// TestRunIdleBackground drives a plain sequential background copy (read from
// d0, write to d1) and checks the I/O lands on the devices and in the
// attributed object's latency histogram.
func TestRunIdleBackground(t *testing.T) {
	sys, l := backgroundTestSystem()
	const chunk = 128 << 10
	const chunks = 16
	issued := 0
	opt := Options{
		Seed: 1,
		Background: func(io *BackgroundIO) {
			if io.Devices() != 2 {
				t.Errorf("Devices() = %d, want 2", io.Devices())
			}
			if io.DeviceName(0) != "d0" || io.Capacity(1) != 64<<20 {
				t.Errorf("device metadata wrong: %q cap %d", io.DeviceName(0), io.Capacity(1))
			}
			rs, ws := io.NewStream(), io.NewStream()
			var copyChunk func()
			copyChunk = func() {
				if issued >= chunks {
					return
				}
				off := int64(issued) * chunk
				issued++
				io.Submit(0, 0, rs, off, chunk, false, func(failed bool) {
					if failed {
						t.Error("unexpected read failure")
					}
					io.Submit(1, 0, ws, off, chunk, true, func(failed bool) {
						if failed {
							t.Error("unexpected write failure")
						}
						copyChunk()
					})
				})
			}
			copyChunk()
		},
	}
	res, err := RunIdle(sys, l, opt)
	if err != nil {
		t.Fatal(err)
	}
	if issued != chunks {
		t.Fatalf("issued %d chunks, want %d", issued, chunks)
	}
	if res.Requests != 2*chunks {
		t.Errorf("submitted %d requests, want %d", res.Requests, 2*chunks)
	}
	if got := res.DeviceStats[0].BytesRead; got != chunks*chunk {
		t.Errorf("d0 read %d bytes, want %d", got, chunks*chunk)
	}
	if got := res.DeviceStats[1].BytesWritten; got != chunks*chunk {
		t.Errorf("d1 wrote %d bytes, want %d", got, chunks*chunk)
	}
	// All requests were attributed to object 0.
	if n := res.ObjectLatency[0].Count; n != 2*chunks {
		t.Errorf("object 0 latency histogram has %d observations, want %d", n, 2*chunks)
	}
	if n := res.ObjectLatency[1].Count; n != 0 {
		t.Errorf("object 1 latency histogram has %d observations, want 0", n)
	}
	if res.Elapsed <= 0 {
		t.Error("no simulated time elapsed")
	}
}

// TestBackgroundSeesFaults checks a background request against a failed
// device reports failure through the done callback.
func TestBackgroundSeesFaults(t *testing.T) {
	sys, l := backgroundTestSystem()
	sys.Devices[1].Faults = &storage.FaultSchedule{Fail: &storage.FailFault{At: 0}}
	var sawFail bool
	opt := Options{
		Seed: 1,
		Background: func(io *BackgroundIO) {
			s := io.NewStream()
			io.Submit(1, -1, s, 0, 128<<10, true, func(failed bool) {
				sawFail = failed
			})
		},
	}
	if _, err := RunIdle(sys, l, opt); err != nil {
		t.Fatal(err)
	}
	if !sawFail {
		t.Error("write to failed device did not report failure")
	}
}

func TestRunIdleRequiresBackground(t *testing.T) {
	sys, l := backgroundTestSystem()
	if _, err := RunIdle(sys, l, Options{Seed: 1}); err == nil {
		t.Error("RunIdle without a background driver should error")
	}
}
