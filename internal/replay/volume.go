package replay

import (
	"fmt"

	"dblayout/internal/layout"
	"dblayout/internal/storage"
)

// volume implements the logical-volume striping the paper's LVM performs:
// each object's logical address space is divided into stripes distributed
// round-robin over the targets holding a non-zero (and, by regularity,
// equal) fraction of the object. Consecutive stripes landing on one target
// are physically contiguous there, which is what lets per-target sub-streams
// of a sequential scan remain sequential.
type volume struct {
	targets []int   // device indices holding the object
	bases   []int64 // physical base on each target, parallel to targets
	stripe  int64
}

// mapper holds the volumes of all objects plus the instantiated devices.
type mapper struct {
	devices []storage.Device
	volumes []volume
}

// newMapper allocates physical extents for every object per the (regular)
// layout. Allocation is first-fit by bump pointer per target.
func newMapper(sys *System, l *layout.Layout, devices []storage.Device) (*mapper, error) {
	if l.N != len(sys.Objects) || l.M != len(sys.Devices) {
		return nil, fmt.Errorf("replay: %dx%d layout for %d objects on %d devices",
			l.N, l.M, len(sys.Objects), len(sys.Devices))
	}
	if !l.IsRegular() {
		return nil, fmt.Errorf("replay: the LVM layout mechanism requires a regular layout")
	}
	if err := l.CheckIntegrity(); err != nil {
		return nil, err
	}
	stripe := sys.stripeSize()

	m := &mapper{devices: devices, volumes: make([]volume, l.N)}
	alloc := make([]int64, l.M)
	for i := 0; i < l.N; i++ {
		ts := l.Targets(i)
		if len(ts) == 0 {
			return nil, fmt.Errorf("replay: object %q assigned to no target", sys.Objects[i].Name)
		}
		share := (sys.Objects[i].Size + int64(len(ts)) - 1) / int64(len(ts))
		// Round the share up to whole stripes so stripe arithmetic
		// stays aligned.
		share = (share + stripe - 1) / stripe * stripe
		v := volume{targets: ts, bases: make([]int64, len(ts)), stripe: stripe}
		for k, j := range ts {
			if alloc[j]+share > devices[j].Capacity() {
				return nil, fmt.Errorf("replay: target %q overflows allocating %q",
					sys.Devices[j].Name, sys.Objects[i].Name)
			}
			v.bases[k] = alloc[j]
			alloc[j] += share
		}
		m.volumes[i] = v
	}
	return m, nil
}

// locate maps an object-relative offset to (device, physical offset, bytes
// remaining in this stripe).
func (m *mapper) locate(obj int, off int64) (storage.Device, int64, int64) {
	v := &m.volumes[obj]
	stripeIdx := off / v.stripe
	within := off % v.stripe
	k := int(stripeIdx % int64(len(v.targets)))
	phys := v.bases[k] + (stripeIdx/int64(len(v.targets)))*v.stripe + within
	return m.devices[v.targets[k]], phys, v.stripe - within
}
