package replay

import (
	"testing"

	"dblayout/internal/benchdb"
	"dblayout/internal/layout"
	"dblayout/internal/storage"
)

func TestDeviceSpecValidate(t *testing.T) {
	if err := Disk15K("d").Validate(); err != nil {
		t.Fatal(err)
	}
	if err := (DeviceSpec{Name: "x"}).Validate(); err == nil {
		t.Fatal("empty spec accepted")
	}
	disk := storage.Disk15KConfig()
	ssd := storage.SSD32Config()
	if err := (DeviceSpec{Name: "x", Disk: &disk, SSD: &ssd}).Validate(); err == nil {
		t.Fatal("double spec accepted")
	}
	if err := (DeviceSpec{Name: "x", RAID: &RAIDSpec{Members: 0}}).Validate(); err == nil {
		t.Fatal("zero-member RAID accepted")
	}
}

func TestDeviceSpecCapacityAndKeys(t *testing.T) {
	if got := RAID0Disks("g", 3).Capacity(); got != 3*storage.Disk15KConfig().CapacityBytes {
		t.Fatalf("RAID capacity = %d", got)
	}
	if SSD("s", 6<<30).Capacity() != 6<<30 {
		t.Fatal("SSD capacity override failed")
	}
	// Same type same key; different types different keys.
	if Disk15K("a").ModelKey() != Disk15K("b").ModelKey() {
		t.Fatal("identical disks have different model keys")
	}
	keys := map[string]bool{
		Disk15K("a").ModelKey():       true,
		SSD("s", 0).ModelKey():        true,
		RAID0Disks("g", 2).ModelKey(): true,
		RAID0Disks("h", 3).ModelKey(): true,
	}
	if len(keys) != 4 {
		t.Fatalf("model keys collide: %v", keys)
	}
}

func TestMapperRequiresRegular(t *testing.T) {
	w := benchdb.OLAP121()
	sys := fourDisks(w.Catalog)
	l := layout.SEE(len(sys.Objects), 4)
	l.SetRow(0, []float64{0.6, 0.4, 0, 0})
	if _, err := RunOLAP(sys, l, w, Options{}); err == nil {
		t.Fatal("non-regular layout accepted")
	}
}

func TestMapperStripesRoundRobin(t *testing.T) {
	sys := &System{
		Objects: []layout.Object{{Name: "A", Size: 4 << 20}},
		Devices: []DeviceSpec{Disk15K("d0"), Disk15K("d1")},
	}
	e := storage.NewEngine()
	devs := []storage.Device{sys.Devices[0].Build(e), sys.Devices[1].Build(e)}
	l := layout.New(1, 2)
	l.SetRow(0, []float64{0.5, 0.5})
	m, err := newMapper(sys, l, devs)
	if err != nil {
		t.Fatal(err)
	}
	stripe := sys.stripeSize()
	// Stripe 0 -> d0 at base, stripe 1 -> d1 at base, stripe 2 -> d0 at
	// base+stripe.
	d, off, rem := m.locate(0, 0)
	if d != devs[0] || off != 0 || rem != stripe {
		t.Fatalf("stripe 0: %v %d %d", d.Name(), off, rem)
	}
	if d, _, _ := m.locate(0, stripe); d != devs[1] {
		t.Fatal("stripe 1 not on d1")
	}
	if d, off, _ := m.locate(0, 2*stripe); d != devs[0] || off != stripe {
		t.Fatalf("stripe 2: %s %d", d.Name(), off)
	}
	// Mid-stripe offsets stay within the stripe.
	if _, off, rem := m.locate(0, stripe+4096); off != 4096 || rem != stripe-4096 {
		t.Fatalf("mid-stripe: %d %d", off, rem)
	}
}

func TestMapperCapacityOverflow(t *testing.T) {
	sys := &System{
		Objects: []layout.Object{{Name: "A", Size: 40 << 30}},
		Devices: []DeviceSpec{Disk15K("d0")},
	}
	e := storage.NewEngine()
	devs := []storage.Device{sys.Devices[0].Build(e)}
	l := layout.New(1, 1)
	l.Set(0, 0, 1)
	if _, err := newMapper(sys, l, devs); err == nil {
		t.Fatal("40 GB object on an 18.4 GB disk accepted")
	}
}

// TestIsolationBeatsSEEInReplay is the end-to-end shape check behind the
// paper's Fig. 11: a layout that separates the hot sequential objects from
// each other completes the OLAP workload faster than
// stripe-everything-everywhere on identical disks.
func TestIsolationBeatsSEEInReplay(t *testing.T) {
	w := benchdb.OLAP163()
	sys := fourDisks(w.Catalog)
	n := len(sys.Objects)
	c := w.Catalog

	see := layout.SEE(n, 4)
	seeRes, err := RunOLAP(sys, see, w, Options{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}

	// Hand-built isolation layout in the spirit of paper Fig. 1:
	// LINEITEM isolated on disks 0-1 (PARTSUPP joins disk 0 — the two are
	// never scanned in the same phase), ORDERS, CUSTOMER and the indexes
	// on disk 2, TEMP SPACE and PART on disk 3, so that no phase's
	// streams collide.
	iso := layout.New(n, 4)
	for i := 0; i < n; i++ {
		switch c.Objects[i].Name {
		case benchdb.Lineitem:
			iso.SetRow(i, []float64{0.5, 0.5, 0, 0})
		case benchdb.Partsupp:
			iso.SetRow(i, []float64{1, 0, 0, 0})
		case benchdb.TempSpace, benchdb.Part:
			iso.SetRow(i, []float64{0, 0, 0, 1})
		default: // ORDERS, CUSTOMER, indexes, small objects
			iso.SetRow(i, []float64{0, 0, 1, 0})
		}
	}
	isoRes, err := RunOLAP(sys, iso, w, Options{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}

	t.Logf("SEE %.0f s vs isolation %.0f s (%.2fx)", seeRes.Elapsed, isoRes.Elapsed, seeRes.Elapsed/isoRes.Elapsed)
	if isoRes.Elapsed >= seeRes.Elapsed {
		t.Fatalf("isolation (%.0f s) did not beat SEE (%.0f s)", isoRes.Elapsed, seeRes.Elapsed)
	}
}

func TestReplayDeterminism(t *testing.T) {
	w := benchdb.OLAP121()
	sys := fourDisks(w.Catalog)
	see := layout.SEE(len(sys.Objects), 4)
	a, err := RunOLAP(sys, see, w, Options{Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunOLAP(sys, see, w, Options{Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if a.Elapsed != b.Elapsed || a.Requests != b.Requests {
		t.Fatalf("replay not deterministic: %g/%d vs %g/%d", a.Elapsed, a.Requests, b.Elapsed, b.Requests)
	}
	c, err := RunOLAP(sys, see, w, Options{Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	if c.Elapsed == a.Elapsed {
		t.Log("warning: different seeds gave identical elapsed times")
	}
}

func TestReplayTraceCapture(t *testing.T) {
	w := benchdb.OLAP121()
	w.Queries = w.Queries[:3]
	sys := fourDisks(w.Catalog)
	see := layout.SEE(len(sys.Objects), 4)
	res, err := RunOLAP(sys, see, w, Options{Seed: 1, RecordTrace: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Trace == nil || int64(res.Trace.Len()) != res.Requests {
		t.Fatalf("trace missing or incomplete: %v vs %d requests", res.Trace.Len(), res.Requests)
	}
	for _, rec := range res.Trace.Records[:100] {
		if rec.Object < 0 || rec.Object >= len(sys.Objects) {
			t.Fatalf("bad object index in trace: %+v", rec)
		}
	}
}

func TestOLAPConcurrencySpeedsUpWallClock(t *testing.T) {
	w1 := benchdb.OLAP163()
	w8 := benchdb.OLAP863()
	sys := fourDisks(w1.Catalog)
	see := layout.SEE(len(sys.Objects), 4)
	r1, err := RunOLAP(sys, see, w1, Options{Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	r8, err := RunOLAP(sys, see, w8, Options{Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	// Concurrency overlaps CPU and I/O: the paper sees 40927 -> 16201 s.
	if r8.Elapsed >= r1.Elapsed {
		t.Fatalf("concurrency 8 (%.0f s) not faster than serial (%.0f s)", r8.Elapsed, r1.Elapsed)
	}
}

func TestRunOLTPAlone(t *testing.T) {
	w := benchdb.OLTP()
	sys := &System{
		Objects: w.Catalog.Objects,
		Devices: []DeviceSpec{Disk15K("d0"), Disk15K("d1"), Disk15K("d2"), Disk15K("d3")},
	}
	see := layout.SEE(len(sys.Objects), 4)
	res, err := RunOLTP(sys, see, w, 600, 60, Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("OLTP SEE: %.0f tpmC, completed %v", res.TpmC, res.Completed)
	if res.TpmC <= 0 {
		t.Fatal("no New-Order transactions completed")
	}
	// The mix must roughly respect the configured weights.
	total := 0
	for _, n := range res.Completed {
		total += n
	}
	noFrac := float64(res.Completed["NewOrder"]) / float64(total)
	if noFrac < 0.35 || noFrac > 0.55 {
		t.Errorf("NewOrder fraction %.2f, want ~0.45", noFrac)
	}
}

func TestRunConsolidated(t *testing.T) {
	olap := benchdb.OLAP121()
	olap.Queries = olap.Queries[:6] // keep the test quick
	oltp := benchdb.OLTP()
	objects := append(append([]layout.Object{}, olap.Catalog.Objects...), oltp.Catalog.Objects...)
	sys := &System{
		Objects: objects,
		Devices: []DeviceSpec{Disk15K("d0"), Disk15K("d1"), Disk15K("d2"), Disk15K("d3")},
	}
	see := layout.SEE(len(objects), 4)
	olapRes, oltpRes, err := RunConsolidated(sys, see, olap, oltp, 30, Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("consolidated: OLAP %.0f s, OLTP %.0f tpmC", olapRes.Elapsed, oltpRes.TpmC)
	if olapRes.Elapsed <= 0 || oltpRes.TpmC <= 0 {
		t.Fatalf("degenerate consolidation result: %+v %+v", olapRes, oltpRes)
	}
	if oltpRes.Elapsed >= olapRes.Elapsed {
		t.Fatal("OLTP measurement window should exclude warm-up")
	}
}

func TestHeterogeneousRAIDSystem(t *testing.T) {
	w := benchdb.OLAP121()
	w.Queries = w.Queries[:5]
	sys := &System{
		Objects: w.Catalog.Objects,
		Devices: []DeviceSpec{RAID0Disks("g0", 3), Disk15K("d3")},
	}
	see := layout.SEE(len(sys.Objects), 2)
	res, err := RunOLAP(sys, see, w, Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Elapsed <= 0 {
		t.Fatal("no progress on RAID system")
	}
	if len(res.Utilizations) != 2 {
		t.Fatalf("got %d utilizations, want 2", len(res.Utilizations))
	}
}

func TestRunOLAPUnknownObject(t *testing.T) {
	w := benchdb.OLAP121()
	sys := fourDisks(w.Catalog)
	sys.Objects = sys.Objects[:5] // drop most objects
	see := layout.SEE(5, 4)
	if _, err := RunOLAP(sys, see, w, Options{}); err == nil {
		t.Fatal("workload referencing missing objects accepted")
	}
}
