package replay

import (
	"testing"

	"dblayout/internal/benchdb"
	"dblayout/internal/layout"
)

// fourDisks builds the paper's homogeneous 1-1-1-1 system for the TPC-H
// catalog.
func fourDisks(c *benchdb.Catalog) *System {
	return &System{
		Objects: c.Objects,
		Devices: []DeviceSpec{Disk15K("d0"), Disk15K("d1"), Disk15K("d2"), Disk15K("d3")},
	}
}

func TestSmokeOLAP121SEE(t *testing.T) {
	w := benchdb.OLAP121()
	sys := fourDisks(w.Catalog)
	see := layout.SEE(len(sys.Objects), len(sys.Devices))
	res, err := RunOLAP(sys, see, w, Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("OLAP1-21 SEE: elapsed %.0f s, %d requests, utils %v",
		res.Elapsed, res.Requests, res.Utilizations)
	if res.Elapsed <= 0 || res.Queries != 21 {
		t.Fatalf("bad result: %+v", res)
	}
}
