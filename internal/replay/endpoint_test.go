// Endpoint concurrency lives in an external test package: the scenario
// drives migrate.Execute, and migrate itself imports replay.
package replay_test

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"dblayout/internal/benchdb"
	"dblayout/internal/layout"
	"dblayout/internal/migrate"
	"dblayout/internal/obs"
	"dblayout/internal/replay"
	"dblayout/internal/storage"
)

// TestConcurrentScrapesDuringReplayMigration hammers the exposition endpoint
// from several goroutines while a foreground replay and an online migration
// publish into the same registry. Run under -race, this is the "safe under
// concurrent scrapes" contract of the HTTP layer.
func TestConcurrentScrapesDuringReplayMigration(t *testing.T) {
	cfg := storage.Disk15KConfig()
	cfg.CapacityBytes = 64 << 20
	cat := &benchdb.Catalog{Name: "tiny", Objects: []layout.Object{
		{Name: "A", Size: 8 << 20},
		{Name: "B", Size: 8 << 20},
	}}
	sys := &replay.System{
		Objects: cat.Objects,
		Devices: []replay.DeviceSpec{
			{Name: "d0", Disk: &cfg},
			{Name: "d1", Disk: &cfg},
		},
	}
	current := layout.New(2, 2)
	current.Set(0, 0, 1)
	current.Set(1, 1, 1)
	target := layout.New(2, 2) // swap the two objects
	target.Set(0, 1, 1)
	target.Set(1, 0, 1)
	w := &benchdb.OLAPWorkload{
		Name:    "tiny",
		Catalog: cat,
		Queries: []benchdb.Query{{Name: "q", Phases: []benchdb.Phase{{Streams: []benchdb.Stream{
			{Object: "A", Bytes: 4 << 20},
			{Object: "B", Bytes: 4 << 20},
		}}}}},
	}

	reg := obs.NewRegistry()
	srv := httptest.NewServer(obs.NewHandler(reg))
	defer srv.Close()

	done := make(chan struct{})
	var scrapes atomic.Int64
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			paths := []string{"/metrics", "/metrics.json", "/series"}
			for i := 0; ; i++ {
				select {
				case <-done:
					return
				default:
				}
				path := paths[i%len(paths)]
				resp, err := srv.Client().Get(srv.URL + path)
				if err != nil {
					t.Errorf("GET %s: %v", path, err)
					return
				}
				body, err := io.ReadAll(resp.Body)
				resp.Body.Close()
				if err != nil || resp.StatusCode != http.StatusOK {
					t.Errorf("GET %s: status %d err %v", path, resp.StatusCode, err)
					return
				}
				if strings.HasSuffix(path, ".json") || path == "/series" {
					var m map[string]json.RawMessage
					if err := json.Unmarshal(body, &m); err != nil {
						t.Errorf("GET %s: torn JSON under concurrency: %v", path, err)
						return
					}
				}
				scrapes.Add(1)
			}
		}()
	}

	res, err := migrate.Execute(sys, current, target, w,
		replay.Options{Seed: 1, Metrics: reg, Windows: &replay.WindowConfig{Size: 0.05}},
		migrate.Options{Metrics: reg, ChunkBytes: 256 << 10})
	// The simulated run can outpace real HTTP round-trips; keep the
	// scrapers going until each has covered every path at least once, so
	// the test asserts successful scrapes rather than a wall-clock race.
	for scrapes.Load() < 12 && !t.Failed() {
		time.Sleep(time.Millisecond)
	}
	close(done)
	wg.Wait()
	if err != nil {
		t.Fatal(err)
	}
	if !res.Migration.Done {
		t.Fatal("migration did not finish")
	}

	// The final exposition reflects both publishers.
	resp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	for _, want := range []string{"replay_requests_total", "migration_state 2", "migration_copied_bytes"} {
		if !strings.Contains(string(body), want) {
			t.Errorf("final /metrics missing %q", want)
		}
	}
}
