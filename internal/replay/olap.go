package replay

import (
	"fmt"
	"log/slog"
	"math/rand"

	"dblayout/internal/benchdb"
	"dblayout/internal/layout"
	"dblayout/internal/obs"
	"dblayout/internal/seed"
	"dblayout/internal/storage"
)

// Options controls a replay run.
type Options struct {
	// Seed drives query permutation and random access patterns.
	Seed int64
	// RecordTrace captures the block I/O trace of the run (the input to
	// workload fitting, as in the paper's methodology).
	RecordTrace bool
	// Tracer, when non-nil, additionally observes every request online —
	// e.g. a rubicon.Fitter, which fits workload models without storing
	// the trace.
	Tracer storage.Tracer
	// MaxSimTime aborts runaway simulations (default 2e6 seconds).
	MaxSimTime float64
	// PrefetchDepth is the number of outstanding requests a sequential
	// stream keeps in flight, modelling OS read-ahead; it is what lets a
	// striped scan draw bandwidth from several targets at once. Random
	// streams are always synchronous. Default 1: the synchronous scan
	// behaviour of the paper's PostgreSQL-era Linux, whose small
	// read-ahead window never spanned multiple LVM stripes.
	PrefetchDepth int
	// Metrics, when non-nil, receives the run's aggregated counters and
	// per-object latency histograms (metric families replay_* with
	// device/object labels). Runs sharing a registry accumulate into the
	// same counters. Nil disables registry publication; per-object
	// latency histograms in the results are collected either way.
	Metrics *obs.Registry
	// Logger, when non-nil, receives a run-completion summary. Nil
	// disables logging.
	Logger *slog.Logger
	// Background, when non-nil, is invoked once the system is built and
	// the foreground workload (if any) is scheduled, handing the driver a
	// BackgroundIO through which it injects its own I/O — e.g. an online
	// migration's throttled copy stream — into the same simulation.
	// Honoured by RunOLAP and RunIdle (RunOLTP and RunConsolidated run to
	// a fixed horizon and would truncate background work arbitrarily).
	Background func(*BackgroundIO)
	// Windows, when non-nil, enables windowed model-validation
	// instrumentation: per-device observed-utilization series, prediction
	// error against the supplied model predictions, and optional drift
	// detection. See WindowConfig.
	Windows *WindowConfig
}

func (o Options) withDefaults() Options {
	if o.MaxSimTime <= 0 {
		o.MaxSimTime = 2e6
	}
	if o.PrefetchDepth <= 0 {
		o.PrefetchDepth = 1
	}
	return o
}

// OLAPResult reports an OLAP replay.
type OLAPResult struct {
	// Elapsed is the wall-clock completion time of the whole query
	// sequence in simulated seconds — the paper's primary metric.
	Elapsed float64
	// Queries is the number of queries executed.
	Queries int
	// Requests is the number of block I/O requests issued.
	Requests int64
	// Utilizations are the measured per-target busy fractions.
	Utilizations []float64
	// DeviceStats are the per-target simulator counters at the end of the
	// run (same order as the system's devices): queue depths, sequential
	// hits, read-ahead evictions/collapses, byte splits.
	DeviceStats []storage.DeviceStats
	// ObjectLatency holds one request-latency histogram snapshot per
	// database object (same order as the system's objects), in seconds.
	ObjectLatency []obs.HistogramSnapshot
	// Trace is the captured block trace (nil unless requested).
	Trace *storage.Trace
}

// runner holds the shared machinery of a replay run.
type runner struct {
	sys      *System
	eng      *storage.Engine
	devices  []storage.Device
	m        *mapper
	objIdx   map[string]int
	rng      *rand.Rand
	streamID uint64
	prefetch int
	opt      Options
	// latency holds one histogram per object, fed by submit. When a
	// metrics registry is configured the histograms live in it (and so
	// appear in its Prometheus/JSON output); otherwise they are private
	// to the run and only surface as result snapshots.
	latency []*obs.Histogram
	// windows is the per-window utilization observer (nil unless
	// Options.Windows was set).
	windows *windowObserver
}

func newRunner(sys *System, l *layout.Layout, opt Options) (*runner, *storage.Trace, error) {
	if err := sys.Validate(); err != nil {
		return nil, nil, err
	}
	eng := storage.NewEngine()
	var tr *storage.Trace
	var tracers []storage.Tracer
	if opt.RecordTrace {
		tr = &storage.Trace{}
		tracers = append(tracers, tr)
	}
	if opt.Tracer != nil {
		tracers = append(tracers, opt.Tracer)
	}
	eng.SetTracer(storage.MultiTracer(tracers...))
	devices := make([]storage.Device, len(sys.Devices))
	for j, d := range sys.Devices {
		devices[j] = d.Build(eng)
	}
	m, err := newMapper(sys, l, devices)
	if err != nil {
		return nil, nil, err
	}
	latency := make([]*obs.Histogram, len(sys.Objects))
	for i, o := range sys.Objects {
		if opt.Metrics != nil {
			latency[i] = opt.Metrics.Histogram(
				obs.Name("replay_object_latency_seconds", "object", o.Name),
				obs.LatencyBuckets())
		} else {
			latency[i] = obs.NewHistogram(obs.LatencyBuckets())
		}
	}
	r := &runner{
		sys:      sys,
		eng:      eng,
		devices:  devices,
		m:        m,
		objIdx:   sys.objectIndex(),
		rng:      rand.New(rand.NewSource(seed.Sub(opt.Seed, seed.StreamReplay))),
		prefetch: opt.PrefetchDepth,
		opt:      opt,
		latency:  latency,
	}
	if opt.Windows != nil {
		names := make([]string, len(devices))
		for j, d := range devices {
			names[j] = d.Name()
		}
		r.windows, err = newWindowObserver(eng, devices, names, opt.Metrics, *opt.Windows)
		if err != nil {
			return nil, nil, err
		}
	}
	return r, tr, nil
}

// submit routes a request through the engine, recording its completion
// latency in the object's histogram.
func (r *runner) submit(dev storage.Device, req *storage.Request) {
	if req.Object >= 0 && req.Object < len(r.latency) {
		h := r.latency[req.Object]
		inner := req.Done
		req.Done = func(q *storage.Request) {
			h.Observe(q.Completed() - q.Issued())
			if inner != nil {
				inner(q)
			}
		}
	}
	r.eng.Submit(dev, req)
}

// observe snapshots the run's instrumentation at the end of a replay: the
// measured per-target utilizations, device counters, and per-object latency
// histograms. When a metrics registry is configured the aggregates are also
// published there, and a configured logger receives a summary record.
func (r *runner) observe(elapsed float64) ([]float64, []storage.DeviceStats, []obs.HistogramSnapshot) {
	r.windows.finish(elapsed)
	utils := make([]float64, len(r.devices))
	stats := make([]storage.DeviceStats, len(r.devices))
	for j, d := range r.devices {
		stats[j] = d.Stats()
		utils[j] = stats[j].Utilization(elapsed)
	}
	lats := make([]obs.HistogramSnapshot, len(r.latency))
	for i, h := range r.latency {
		lats[i] = h.Snapshot()
	}
	if reg := r.opt.Metrics; reg != nil {
		reg.Gauge("replay_elapsed_seconds").Set(elapsed)
		reg.Counter("replay_requests_total").Add(r.eng.Submitted())
		for j, d := range r.devices {
			name, s := d.Name(), stats[j]
			reg.Counter(obs.Name("replay_device_requests_total", "device", name)).Add(s.Requests)
			reg.Counter(obs.Name("replay_device_read_bytes_total", "device", name)).Add(s.BytesRead)
			reg.Counter(obs.Name("replay_device_written_bytes_total", "device", name)).Add(s.BytesWritten)
			reg.Counter(obs.Name("replay_device_seq_hits_total", "device", name)).Add(s.SeqHits)
			reg.Counter(obs.Name("replay_device_ra_evictions_total", "device", name)).Add(s.RAEvictions)
			reg.Counter(obs.Name("replay_device_ra_collapses_total", "device", name)).Add(s.RACollapses)
			reg.Counter(obs.Name("replay_device_failed_requests_total", "device", name)).Add(s.FailedRequests)
			reg.Counter(obs.Name("replay_device_reconstruct_reads_total", "device", name)).Add(s.ReconstructReads)
			reg.Gauge(obs.Name("replay_device_fault_delay_seconds", "device", name)).Set(s.FaultDelay)
			reg.Gauge(obs.Name("replay_device_busy_seconds", "device", name)).Set(s.BusyTime)
			reg.Gauge(obs.Name("replay_device_utilization", "device", name)).Set(utils[j])
			reg.Gauge(obs.Name("replay_device_mean_queue_depth", "device", name)).Set(s.MeanQueueDepth(elapsed))
			reg.Gauge(obs.Name("replay_device_max_queue_depth", "device", name)).Set(float64(s.MaxQueueDepth))
		}
	}
	if lg := r.opt.Logger; lg != nil {
		lg.Info("replay complete",
			"elapsed", elapsed, "requests", r.eng.Submitted(), "targets", len(r.devices))
	}
	return utils, stats, lats
}

func (r *runner) nextStreamID() uint64 {
	r.streamID++
	return r.streamID
}

// resolve maps an object name to its global index.
func (r *runner) resolve(name string) (int, error) {
	i, ok := r.objIdx[name]
	if !ok {
		return 0, fmt.Errorf("replay: workload references object %q not in the system", name)
	}
	return i, nil
}

// stream drives one benchdb.Stream through the LVM mapper in a closed loop,
// keeping up to depth requests in flight. Paced streams (depth > 1 with a
// think interval, i.e. asynchronously-flushed spill writes) issue at most
// one request per pacing tick, modelling production-rate-limited output.
type stream struct {
	r       *runner
	obj     int
	id      uint64
	pattern *storage.RunPattern
	think   float64
	depth   int
	onDone  func()

	outstanding int
	exhausted   bool
	paced       bool
	tokens      int
}

// startStream validates and launches a stream; onDone fires at exhaustion.
func (r *runner) startStream(s benchdb.Stream, onDone func()) error {
	obj, err := r.resolve(s.Object)
	if err != nil {
		return err
	}
	size := s.ReqSize
	if size <= 0 {
		if s.Sequential {
			size = benchdb.ScanSize
		} else {
			size = benchdb.PageSize
		}
	}
	if stripe := r.sys.stripeSize(); stripe%size != 0 {
		return fmt.Errorf("replay: request size %d does not divide stripe size %d", size, stripe)
	}
	extent := r.sys.Objects[obj].Size / size * size
	if extent < size {
		extent = size
	}
	count := s.Bytes / size
	if count < 1 {
		count = 1
	}
	p := &storage.RunPattern{
		Rng:    rand.New(rand.NewSource(r.rng.Int63())),
		Base:   0,
		Extent: extent,
		Size:   size,
		Count:  count,
	}
	if s.Sequential {
		p.RunLen = count // one long run; wraps within the extent if needed
	} else {
		p.RunLen = 1
	}
	if s.Write {
		p.WriteFrac = 1
	}
	depth := s.Depth
	if depth <= 0 {
		depth = 1
		if s.Sequential && s.ThinkPerReq == 0 {
			depth = r.prefetch
		}
	}
	st := &stream{r: r, obj: obj, id: r.nextStreamID(), pattern: p,
		think: s.ThinkPerReq, depth: depth, onDone: onDone}
	if depth > 1 && st.think > 0 {
		st.paced = true
		st.produce()
	} else {
		st.fill()
	}
	return nil
}

// produce grants the paced stream one issue token per pacing interval.
func (st *stream) produce() {
	if st.exhausted {
		return
	}
	st.tokens++
	st.fill()
	if !st.exhausted {
		st.r.eng.After(st.think, st.produce)
	}
}

// fill tops the stream's in-flight window up to its depth (and, for paced
// streams, its token budget).
func (st *stream) fill() {
	for !st.exhausted && st.outstanding < st.depth {
		if st.paced {
			if st.tokens <= 0 {
				break
			}
			st.tokens--
		}
		off, size, write, ok := st.pattern.Next()
		if !ok {
			st.exhausted = true
			break
		}
		dev, phys, remain := st.r.m.locate(st.obj, off)
		if size > remain {
			size = remain // defensive: never cross a stripe boundary
		}
		st.outstanding++
		req := &storage.Request{
			Object: st.obj,
			Stream: st.id,
			Offset: phys,
			Size:   size,
			Write:  write,
			Done: func(*storage.Request) {
				st.outstanding--
				if !st.paced && st.think > 0 {
					st.r.eng.After(st.think, st.fill)
				} else {
					st.fill()
				}
			},
		}
		st.r.submit(dev, req)
	}
	if st.exhausted && st.outstanding == 0 && st.onDone != nil {
		done := st.onDone
		st.onDone = nil
		done()
	}
}

// runQuery executes a query's phases in order, then its CPU tail, then calls
// done.
func (r *runner) runQuery(q *benchdb.Query, done func()) error {
	var runPhase func(pi int)
	fail := func(err error) error { return err }
	var firstErr error

	runPhase = func(pi int) {
		if pi >= len(q.Phases) {
			if q.CPUSeconds > 0 {
				r.eng.After(q.CPUSeconds, done)
			} else {
				done()
			}
			return
		}
		remaining := len(q.Phases[pi].Streams)
		for _, s := range q.Phases[pi].Streams {
			err := r.startStream(s, func() {
				remaining--
				if remaining == 0 {
					runPhase(pi + 1)
				}
			})
			if err != nil && firstErr == nil {
				firstErr = err
			}
		}
	}
	runPhase(0)
	if firstErr != nil {
		return fail(firstErr)
	}
	return nil
}

// RunOLAP replays an OLAP workload: the query mix is randomly permuted
// (Sec. 6.1) and executed by Concurrency parallel sessions, each starting
// the next pending query as soon as its previous one finishes.
func RunOLAP(sys *System, l *layout.Layout, w *benchdb.OLAPWorkload, opt Options) (*OLAPResult, error) {
	opt = opt.withDefaults()
	r, tr, err := newRunner(sys, l, opt)
	if err != nil {
		return nil, err
	}
	if err := benchdb.ValidateQueries(w.Catalog, w.Queries); err != nil {
		return nil, err
	}

	queries := make([]*benchdb.Query, len(w.Queries))
	for i := range w.Queries {
		queries[i] = &w.Queries[i]
	}
	r.rng.Shuffle(len(queries), func(i, j int) { queries[i], queries[j] = queries[j], queries[i] })

	next := 0
	active := 0
	var qerr error
	var sessionLoop func()
	sessionLoop = func() {
		if next >= len(queries) {
			return
		}
		q := queries[next]
		next++
		active++
		if err := r.runQuery(q, func() {
			active--
			sessionLoop()
		}); err != nil && qerr == nil {
			qerr = err
		}
	}
	conc := w.Concurrency
	if conc < 1 {
		conc = 1
	}
	for s := 0; s < conc && s < len(queries); s++ {
		sessionLoop()
	}
	if qerr != nil {
		return nil, qerr
	}
	r.startBackground()

	elapsed := r.eng.Run(opt.MaxSimTime)
	if next < len(queries) || active > 0 {
		return nil, fmt.Errorf("replay: workload did not finish within %g simulated seconds", opt.MaxSimTime)
	}

	res := &OLAPResult{
		Elapsed:  elapsed,
		Queries:  len(queries),
		Requests: r.eng.Submitted(),
		Trace:    tr,
	}
	res.Utilizations, res.DeviceStats, res.ObjectLatency = r.observe(elapsed)
	return res, nil
}
