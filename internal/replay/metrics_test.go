package replay

import (
	"bytes"
	"log/slog"
	"strings"
	"testing"

	"dblayout/internal/benchdb"
	"dblayout/internal/layout"
	"dblayout/internal/obs"
)

// TestReplayMetricsPublished runs a small OLAP replay with a metrics registry
// attached and checks the replay_* families, device stats, and per-object
// latency histograms come out populated and mutually consistent.
func TestReplayMetricsPublished(t *testing.T) {
	w := benchdb.OLAP121()
	w.Queries = w.Queries[:3]
	sys := fourDisks(w.Catalog)
	see := layout.SEE(len(sys.Objects), len(sys.Devices))

	reg := obs.NewRegistry()
	var logBuf bytes.Buffer
	res, err := RunOLAP(sys, see, w, Options{
		Seed:    1,
		Metrics: reg,
		Logger:  slog.New(slog.NewTextHandler(&logBuf, nil)),
	})
	if err != nil {
		t.Fatal(err)
	}

	if len(res.DeviceStats) != len(sys.Devices) {
		t.Fatalf("got %d device stats, want %d", len(res.DeviceStats), len(sys.Devices))
	}
	var devRequests int64
	for j, s := range res.DeviceStats {
		if s.Requests == 0 {
			t.Errorf("device %d saw no requests", j)
		}
		if s.BusyTime <= 0 {
			t.Errorf("device %d has no busy time", j)
		}
		devRequests += s.Requests
	}
	if devRequests != res.Requests {
		t.Fatalf("device request sum %d != engine submitted %d", devRequests, res.Requests)
	}

	if len(res.ObjectLatency) != len(sys.Objects) {
		t.Fatalf("got %d latency snapshots, want %d", len(res.ObjectLatency), len(sys.Objects))
	}
	var latCount int64
	for _, l := range res.ObjectLatency {
		latCount += l.Count
	}
	if latCount == 0 {
		t.Fatal("no latencies observed")
	}
	if latCount > res.Requests {
		t.Fatalf("latency observations %d exceed submitted requests %d", latCount, res.Requests)
	}

	var prom bytes.Buffer
	if err := reg.WriteProm(&prom); err != nil {
		t.Fatal(err)
	}
	out := prom.String()
	for _, want := range []string{
		"replay_requests_total",
		`replay_device_requests_total{device="d0"}`,
		`replay_device_utilization{device="d3"}`,
		`replay_device_busy_seconds{device="d1"}`,
		`replay_object_latency_seconds_bucket{object=`,
		"replay_elapsed_seconds",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("prometheus output missing %q", want)
		}
	}
	if !strings.Contains(logBuf.String(), "replay complete") {
		t.Errorf("logger did not receive run summary: %q", logBuf.String())
	}
}

// TestReplayMetricsAccumulate checks that two runs sharing one registry add
// their counters, which is the documented contract of Options.Metrics.
func TestReplayMetricsAccumulate(t *testing.T) {
	w := benchdb.OLAP121()
	w.Queries = w.Queries[:2]
	sys := fourDisks(w.Catalog)
	see := layout.SEE(len(sys.Objects), len(sys.Devices))

	reg := obs.NewRegistry()
	a, err := RunOLAP(sys, see, w, Options{Seed: 1, Metrics: reg})
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunOLAP(sys, see, w, Options{Seed: 2, Metrics: reg})
	if err != nil {
		t.Fatal(err)
	}
	total := reg.Counter("replay_requests_total").Value()
	if total != a.Requests+b.Requests {
		t.Fatalf("accumulated requests = %d, want %d+%d", total, a.Requests, b.Requests)
	}
}

// TestReplayMetricsNilRegistry checks the no-registry path still collects
// per-object latency snapshots in the result.
func TestReplayMetricsNilRegistry(t *testing.T) {
	w := benchdb.OLAP121()
	w.Queries = w.Queries[:2]
	sys := fourDisks(w.Catalog)
	see := layout.SEE(len(sys.Objects), len(sys.Devices))
	res, err := RunOLAP(sys, see, w, Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	var latCount int64
	for _, l := range res.ObjectLatency {
		latCount += l.Count
	}
	if latCount == 0 {
		t.Fatal("no latencies observed without a registry")
	}
}

// TestConsolidatedMetricsSingleObservation checks the consolidated scenario
// publishes its shared instrumentation exactly once and mirrors it into both
// results.
func TestConsolidatedMetricsSingleObservation(t *testing.T) {
	olap := benchdb.OLAP121()
	olap.Queries = olap.Queries[:4]
	oltp := benchdb.OLTP()
	objects := append(append([]layout.Object{}, olap.Catalog.Objects...), oltp.Catalog.Objects...)
	sys := &System{
		Objects: objects,
		Devices: []DeviceSpec{Disk15K("d0"), Disk15K("d1"), Disk15K("d2"), Disk15K("d3")},
	}
	see := layout.SEE(len(sys.Objects), len(sys.Devices))

	reg := obs.NewRegistry()
	olapRes, oltpRes, err := RunConsolidated(sys, see, olap, oltp, 5, Options{Seed: 3, Metrics: reg})
	if err != nil {
		t.Fatal(err)
	}
	if reg.Counter("replay_requests_total").Value() != olapRes.Requests {
		t.Fatalf("published requests %d != run requests %d",
			reg.Counter("replay_requests_total").Value(), olapRes.Requests)
	}
	if len(oltpRes.DeviceStats) != len(sys.Devices) || len(olapRes.DeviceStats) != len(sys.Devices) {
		t.Fatal("device stats not mirrored into both results")
	}
	var devRequests int64
	for _, s := range oltpRes.DeviceStats {
		devRequests += s.Requests
	}
	if devRequests != olapRes.Requests {
		t.Fatalf("device request sum %d != submitted %d", devRequests, olapRes.Requests)
	}
}
