package replay

import (
	"testing"

	"dblayout/internal/benchdb"
	"dblayout/internal/layout"
)

// TestDebugPerQueryTiming prints per-query elapsed times under SEE and the
// isolation layout, for model debugging.
func TestDebugPerQueryTiming(t *testing.T) {
	if testing.Short() {
		t.Skip("debug diagnostics")
	}
	c := benchdb.TPCH()
	sys := fourDisks(c)
	n := len(sys.Objects)

	see := layout.SEE(n, 4)
	iso := layout.New(n, 4)
	for i := 0; i < n; i++ {
		switch c.Objects[i].Name {
		case benchdb.Lineitem:
			iso.SetRow(i, []float64{0.5, 0.5, 0, 0})
		case benchdb.Partsupp:
			iso.SetRow(i, []float64{1, 0, 0, 0})
		case benchdb.TempSpace, benchdb.Part:
			iso.SetRow(i, []float64{0, 0, 0, 1})
		default:
			iso.SetRow(i, []float64{0, 0, 1, 0})
		}
	}

	for _, q := range benchdb.TPCHQueries() {
		w := &benchdb.OLAPWorkload{Name: q.Name, Catalog: c, Queries: []benchdb.Query{q}, Concurrency: 1}
		rs, err := RunOLAP(sys, see, w, Options{Seed: 1})
		if err != nil {
			t.Fatal(err)
		}
		ri, err := RunOLAP(sys, iso, w, Options{Seed: 1})
		if err != nil {
			t.Fatal(err)
		}
		t.Logf("%-4s cpu %3.0fs  SEE %7.1fs  iso %7.1fs  (%.2fx)",
			q.Name, q.CPUSeconds, rs.Elapsed, ri.Elapsed, rs.Elapsed/ri.Elapsed)
	}
}
