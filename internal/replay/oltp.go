package replay

import (
	"fmt"
	"math/rand"

	"dblayout/internal/benchdb"
	"dblayout/internal/layout"
	"dblayout/internal/obs"
	"dblayout/internal/storage"
)

// OLTPResult reports an OLTP replay.
type OLTPResult struct {
	// TpmC is the New-Order completion rate per minute, measured after
	// the warm-up period — the paper's OLTP metric.
	TpmC float64
	// NewOrders counts New-Order transactions completed after warm-up.
	NewOrders int
	// Completed counts all completed transactions by type.
	Completed map[string]int
	// Elapsed is the measured interval (excluding warm-up) in seconds.
	Elapsed float64
	// Utilizations are the measured per-target busy fractions.
	Utilizations []float64
	// DeviceStats are the per-target simulator counters at the end of
	// the run (same order as the system's devices).
	DeviceStats []storage.DeviceStats
	// ObjectLatency holds one request-latency histogram snapshot per
	// database object, in seconds (whole run, including warm-up).
	ObjectLatency []obs.HistogramSnapshot
}

// oltpDriver runs terminals against a runner until stop() returns true.
type oltpDriver struct {
	r       *runner
	w       *benchdb.OLTPWorkload
	logIdx  int
	logOff  int64
	logSize int64
	rng     *rand.Rand

	warmup    float64
	stopped   func() bool
	completed map[string]int
	newOrders int
}

func newOLTPDriver(r *runner, w *benchdb.OLTPWorkload, warmup float64, stopped func() bool) (*oltpDriver, error) {
	logIdx, err := r.resolve(w.LogObject)
	if err != nil {
		return nil, err
	}
	var total float64
	for _, t := range w.Transactions {
		total += t.Weight
	}
	if total <= 0 {
		return nil, fmt.Errorf("replay: OLTP mix has zero total weight")
	}
	return &oltpDriver{
		r:         r,
		w:         w,
		logIdx:    logIdx,
		logSize:   r.sys.Objects[logIdx].Size,
		rng:       rand.New(rand.NewSource(r.rng.Int63())),
		warmup:    warmup,
		stopped:   stopped,
		completed: map[string]int{},
	}, nil
}

// pick draws a transaction type from the mix.
func (d *oltpDriver) pick() *benchdb.Transaction {
	x := d.rng.Float64()
	var acc float64
	for i := range d.w.Transactions {
		acc += d.w.Transactions[i].Weight
		if x <= acc {
			return &d.w.Transactions[i]
		}
	}
	return &d.w.Transactions[len(d.w.Transactions)-1]
}

// pageOp is one dependent page access of a transaction.
type pageOp struct {
	obj   int
	write bool
	log   bool
	size  int64
}

// startTerminal runs one closed-loop terminal with no think time.
func (d *oltpDriver) startTerminal(id int) {
	streamID := d.r.nextStreamID()
	logStream := d.r.nextStreamID()

	var runTxn func()
	runTxn = func() {
		if d.stopped() {
			return
		}
		txn := d.pick()
		ops := d.buildOps(txn)
		i := 0
		var step func()
		step = func() {
			if i >= len(ops) {
				finish := func() {
					if d.r.eng.Now() >= d.warmup {
						d.completed[txn.Name]++
						if txn.Name == "NewOrder" {
							d.newOrders++
						}
					}
					runTxn()
				}
				if txn.CPUSeconds > 0 {
					d.r.eng.After(txn.CPUSeconds, finish)
				} else {
					finish()
				}
				return
			}
			op := ops[i]
			i++
			var off int64
			sid := streamID
			if op.log {
				// The log is an append-only sequential stream
				// shared by the whole system.
				off = d.logOff % (d.logSize / op.size * op.size)
				d.logOff = off + op.size
				sid = logStream
			} else {
				extent := d.r.sys.Objects[op.obj].Size / op.size
				if extent < 1 {
					extent = 1
				}
				off = d.rng.Int63n(extent) * op.size
			}
			dev, phys, remain := d.r.m.locate(op.obj, off)
			size := op.size
			if size > remain {
				size = remain
			}
			d.r.submit(dev, &storage.Request{
				Object: op.obj,
				Stream: sid,
				Offset: phys,
				Size:   size,
				Write:  op.write,
				Done:   func(*storage.Request) { step() },
			})
		}
		step()
	}
	_ = id
	runTxn()
}

// buildOps expands a transaction into its dependent page accesses.
func (d *oltpDriver) buildOps(txn *benchdb.Transaction) []pageOp {
	var ops []pageOp
	add := func(accs []benchdb.TxnAccess, write bool) {
		for _, a := range accs {
			obj, err := d.r.resolve(a.Object)
			if err != nil {
				continue // validated at workload construction
			}
			for p := 0; p < a.Pages; p++ {
				ops = append(ops, pageOp{obj: obj, write: write, size: benchdb.PageSize})
			}
		}
	}
	add(txn.Reads, false)
	add(txn.Writes, true)
	if txn.LogBytes > 0 {
		ops = append(ops, pageOp{obj: d.logIdx, write: true, log: true, size: txn.LogBytes})
	}
	return ops
}

// result assembles the OLTP metrics for the measured window. Utilizations
// and instrumentation snapshots are filled in by the caller (they are shared
// with the OLAP result in the consolidated scenario).
func (d *oltpDriver) result(end float64) *OLTPResult {
	window := end - d.warmup
	res := &OLTPResult{
		NewOrders: d.newOrders,
		Completed: d.completed,
		Elapsed:   window,
	}
	if window > 0 {
		res.TpmC = float64(d.newOrders) / (window / 60)
	}
	return res
}

// RunOLTP replays the OLTP workload alone for the given duration (simulated
// seconds) and reports tpmC measured after warmup.
func RunOLTP(sys *System, l *layout.Layout, w *benchdb.OLTPWorkload, duration, warmup float64, opt Options) (*OLTPResult, error) {
	opt = opt.withDefaults()
	r, _, err := newRunner(sys, l, opt)
	if err != nil {
		return nil, err
	}
	d, err := newOLTPDriver(r, w, warmup, func() bool { return r.eng.Now() >= duration })
	if err != nil {
		return nil, err
	}
	for t := 0; t < w.Terminals; t++ {
		d.startTerminal(t)
	}
	end := r.eng.Run(duration)
	res := d.result(end)
	res.Utilizations, res.DeviceStats, res.ObjectLatency = r.observe(end)
	return res, nil
}

// RunConsolidated replays the paper's consolidation scenario (Sec. 6.3): an
// OLAP workload and an OLTP workload share the same storage system. The
// OLTP terminals run until the OLAP workload completes; tpmC is averaged
// over that interval minus the warm-up period.
func RunConsolidated(sys *System, l *layout.Layout, olap *benchdb.OLAPWorkload, oltp *benchdb.OLTPWorkload, warmup float64, opt Options) (*OLAPResult, *OLTPResult, error) {
	opt = opt.withDefaults()
	r, tr, err := newRunner(sys, l, opt)
	if err != nil {
		return nil, nil, err
	}
	if err := benchdb.ValidateQueries(olap.Catalog, olap.Queries); err != nil {
		return nil, nil, err
	}

	olapDone := false
	d, err := newOLTPDriver(r, oltp, warmup, func() bool { return olapDone })
	if err != nil {
		return nil, nil, err
	}

	// OLAP sessions.
	queries := make([]*benchdb.Query, len(olap.Queries))
	for i := range olap.Queries {
		queries[i] = &olap.Queries[i]
	}
	r.rng.Shuffle(len(queries), func(i, j int) { queries[i], queries[j] = queries[j], queries[i] })
	next, active := 0, 0
	var qerr error
	var olapEnd float64
	var sessionLoop func()
	sessionLoop = func() {
		if next >= len(queries) {
			if active == 0 && !olapDone {
				olapDone = true
				olapEnd = r.eng.Now()
			}
			return
		}
		q := queries[next]
		next++
		active++
		if err := r.runQuery(q, func() {
			active--
			sessionLoop()
		}); err != nil && qerr == nil {
			qerr = err
		}
	}
	conc := olap.Concurrency
	if conc < 1 {
		conc = 1
	}
	for s := 0; s < conc && s < len(queries); s++ {
		sessionLoop()
	}
	if qerr != nil {
		return nil, nil, qerr
	}

	for t := 0; t < oltp.Terminals; t++ {
		d.startTerminal(t)
	}

	r.eng.Run(opt.MaxSimTime)
	if !olapDone {
		return nil, nil, fmt.Errorf("replay: consolidated OLAP did not finish within %g simulated seconds", opt.MaxSimTime)
	}

	olapRes := &OLAPResult{
		Elapsed:  olapEnd,
		Queries:  len(queries),
		Requests: r.eng.Submitted(),
		Trace:    tr,
	}
	// The two workloads share one storage system, so the instrumentation is
	// observed (and published) exactly once and shared between the results.
	oltpRes := d.result(olapEnd)
	olapRes.Utilizations, olapRes.DeviceStats, olapRes.ObjectLatency = r.observe(olapEnd)
	oltpRes.Utilizations = olapRes.Utilizations
	oltpRes.DeviceStats = olapRes.DeviceStats
	oltpRes.ObjectLatency = olapRes.ObjectLatency
	return olapRes, oltpRes, nil
}
