package replay

import (
	"testing"

	"dblayout/internal/benchdb"
	"dblayout/internal/layout"
	"dblayout/internal/storage"
)

// TestReplayRAID5DegradedMode replays the OLAP1-21 workload on a single
// 3-disk RAID5 target, healthy and with one member dead from the start. The
// degraded run must finish every query through parity reconstruction —
// paying reconstruction reads and elapsed time, but failing nothing.
func TestReplayRAID5DegradedMode(t *testing.T) {
	w := benchdb.OLAP121()
	system := func(faults map[int]storage.FaultSchedule) *System {
		spec := RAID5Disks("raid5", 3)
		spec.RAID.MemberFaults = faults
		return &System{Objects: w.Catalog.Objects, Devices: []DeviceSpec{spec}}
	}
	l := layout.SEE(len(w.Catalog.Objects), 1)

	healthy, err := RunOLAP(system(nil), l, w, Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if n := healthy.DeviceStats[0].ReconstructReads; n != 0 {
		t.Fatalf("healthy replay issued %d reconstruction reads", n)
	}

	degraded, err := RunOLAP(system(map[int]storage.FaultSchedule{
		0: {Fail: &storage.FailFault{At: 0}},
	}), l, w, Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	ds := degraded.DeviceStats[0]
	if ds.ReconstructReads == 0 {
		t.Fatal("degraded replay issued no reconstruction reads")
	}
	if ds.FailedRequests != 0 {
		t.Fatalf("%d logical requests failed despite single-member redundancy", ds.FailedRequests)
	}
	if degraded.Queries != healthy.Queries {
		t.Fatalf("degraded run completed %d queries, healthy %d", degraded.Queries, healthy.Queries)
	}
	// No elapsed-time ordering is asserted: reconstruction adds member
	// reads, but they land at contiguous member offsets on the survivors
	// (good sequentiality) while the dead member answers at fail latency,
	// so degraded replays can run either slower or slightly faster.
	if degraded.Elapsed <= 0 {
		t.Fatalf("degraded elapsed = %g", degraded.Elapsed)
	}
}

func TestDeviceSpecFaultValidation(t *testing.T) {
	// Faults belong on members, not RAID groups.
	bad := RAID0Disks("g", 2)
	bad.Faults = &storage.FaultSchedule{Fail: &storage.FailFault{At: 0}}
	if err := bad.Validate(); err == nil {
		t.Fatal("fault schedule on a RAID group accepted")
	}
	// Member fault indices must be in range.
	oob := RAID5Disks("g", 3)
	oob.RAID.MemberFaults = map[int]storage.FaultSchedule{3: {Fail: &storage.FailFault{At: 0}}}
	if err := oob.Validate(); err == nil {
		t.Fatal("out-of-range member fault accepted")
	}
	// Invalid schedules are rejected through the spec.
	d := Disk15K("d")
	d.Faults = &storage.FaultSchedule{Slow: &storage.SlowFault{At: 0, Factor: 0.1}}
	if err := d.Validate(); err == nil {
		t.Fatal("invalid schedule accepted")
	}
	// RAID5 needs 3+ members.
	small := RAID5Disks("g", 2)
	if err := small.Validate(); err == nil {
		t.Fatal("2-member RAID5 accepted")
	}
}
