package replay

import (
	"testing"

	"dblayout/internal/benchdb"
	"dblayout/internal/layout"
	"dblayout/internal/obs"
)

// TestReplayWindowSeries runs a small OLAP replay with the window observer
// enabled and checks the observed-utilization and prediction-error series
// come out populated, plausible, and wired into the drift detector.
func TestReplayWindowSeries(t *testing.T) {
	w := benchdb.OLAP121()
	w.Queries = w.Queries[:3]
	sys := fourDisks(w.Catalog)
	see := layout.SEE(len(sys.Objects), len(sys.Devices))

	reg := obs.NewRegistry()
	// Predict zero utilization everywhere: the prediction error then equals
	// the observed utilization, so a busy replay must trip the detector.
	pred := make([]float64, len(sys.Devices))
	det := obs.NewDetector(obs.DriftConfig{Threshold: 0.05, Trigger: 2}, nil, nil, reg)
	res, err := RunOLAP(sys, see, w, Options{
		Seed:    1,
		Metrics: reg,
		Windows: &WindowConfig{Size: 0.5, Predicted: pred, Detector: det},
	})
	if err != nil {
		t.Fatal(err)
	}

	wantWindows := int(res.Elapsed / 0.5)
	for _, dev := range []string{"d0", "d1", "d2", "d3"} {
		util := reg.Series(obs.Name("replay_device_window_utilization", "device", dev), 0)
		snap := util.Snapshot()
		if snap.Count == 0 {
			t.Fatalf("device %s: no utilization windows recorded (elapsed %g)", dev, res.Elapsed)
		}
		// Count is total windows seen; the ring retains only the newest
		// DefaultSeriesCapacity of them.
		if wantWindows >= 2 && snap.Count < int64(wantWindows-1) {
			t.Errorf("device %s: %d windows recorded, want ~%d", dev, snap.Count, wantWindows)
		}
		for _, s := range snap.Samples {
			if s.V < 0 || s.V > 1.000001 {
				t.Errorf("device %s: window utilization %g out of [0,1]", dev, s.V)
			}
		}
		errs := reg.Series(obs.Name("model_prediction_error", "device", dev), 0)
		if got := errs.Snapshot().Count; got != snap.Count {
			t.Errorf("device %s: %d error windows vs %d utilization windows", dev, got, snap.Count)
		}
		if g := reg.Gauge(obs.Name("model_predicted_utilization", "device", dev)); g.Value() != 0 {
			t.Errorf("device %s: predicted gauge = %g, want 0", dev, g.Value())
		}
	}
	if len(det.Events()) == 0 {
		t.Fatal("drift detector saw every window above threshold but never fired")
	}
	if got := reg.Counter("drift_detected_total").Value(); got != int64(len(det.Events())) {
		t.Errorf("drift_detected_total = %d, want %d", got, len(det.Events()))
	}
}

// TestReplayWindowConfigValidation pins the two misconfiguration errors.
func TestReplayWindowConfigValidation(t *testing.T) {
	w := benchdb.OLAP121()
	w.Queries = w.Queries[:1]
	sys := fourDisks(w.Catalog)
	see := layout.SEE(len(sys.Objects), len(sys.Devices))

	if _, err := RunOLAP(sys, see, w, Options{
		Windows: &WindowConfig{Predicted: []float64{0.5}}, // wrong length
	}); err == nil {
		t.Error("mismatched Predicted length accepted")
	}
	if _, err := RunOLAP(sys, see, w, Options{
		Windows: &WindowConfig{Detector: obs.NewDetector(obs.DriftConfig{Threshold: 1}, nil, nil, nil)},
	}); err == nil {
		t.Error("detector without predictions accepted")
	}
}

// TestReplayWindowNoRegistry checks the observer runs without a registry: the
// detector still sees every window.
func TestReplayWindowNoRegistry(t *testing.T) {
	w := benchdb.OLAP121()
	w.Queries = w.Queries[:2]
	sys := fourDisks(w.Catalog)
	see := layout.SEE(len(sys.Objects), len(sys.Devices))
	det := obs.NewDetector(obs.DriftConfig{Threshold: 0.05, Trigger: 1}, nil, nil, nil)
	if _, err := RunOLAP(sys, see, w, Options{
		Seed:    1,
		Windows: &WindowConfig{Size: 0.5, Predicted: make([]float64, len(sys.Devices)), Detector: det},
	}); err != nil {
		t.Fatal(err)
	}
	if len(det.Events()) == 0 {
		t.Fatal("detector silent on a registry-less run")
	}
}
