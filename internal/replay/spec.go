// Package replay executes SQL-level workloads (package benchdb) against the
// storage simulator (package storage) under a concrete, regular layout. It
// plays the role of the paper's physical testbed: it produces the elapsed
// workload times and tpmC rates of the evaluation tables, and the I/O traces
// from which workload models are fitted.
package replay

import (
	"fmt"

	"dblayout/internal/costmodel"
	"dblayout/internal/layout"
	"dblayout/internal/storage"
)

// RAIDSpec describes a RAID group target.
type RAIDSpec struct {
	Members int
	Member  storage.DiskConfig
	Unit    int64 // stripe unit; 0 selects storage.DefaultStripeUnit
	// Level selects the RAID level: 0 (striping, the paper's PERC setup)
	// or 5 (rotating parity with degraded-mode reconstruction).
	Level int
	// MemberFaults optionally injects a fault schedule into individual
	// members, keyed by member index. Use it to replay degraded-mode
	// scenarios (a dead disk inside a healthy-looking group).
	MemberFaults map[int]storage.FaultSchedule
}

// DeviceSpec declares one storage target of the system under test. Exactly
// one of Disk, SSD, RAID must be set.
type DeviceSpec struct {
	Name string
	Disk *storage.DiskConfig
	SSD  *storage.SSDConfig
	RAID *RAIDSpec
	// Faults optionally injects a deterministic fault schedule into the
	// device (Disk and SSD targets; for RAID groups use
	// RAIDSpec.MemberFaults — the group itself never fails, its members
	// do).
	Faults *storage.FaultSchedule
}

// Disk15K returns a single-15K-disk target spec, the paper's basic target.
func Disk15K(name string) DeviceSpec {
	cfg := storage.Disk15KConfig()
	return DeviceSpec{Name: name, Disk: &cfg}
}

// SSD returns an SSD target spec with the given capacity (0 = full 32 GB).
func SSD(name string, capacity int64) DeviceSpec {
	cfg := storage.SSD32Config()
	if capacity > 0 {
		cfg.CapacityBytes = capacity
	}
	return DeviceSpec{Name: name, SSD: &cfg}
}

// RAID0Disks returns a RAID0 group of n 15K disks, as built by the paper's
// PERC controller for the heterogeneous configurations.
func RAID0Disks(name string, n int) DeviceSpec {
	return DeviceSpec{Name: name, RAID: &RAIDSpec{Members: n, Member: storage.Disk15KConfig()}}
}

// RAID5Disks returns a RAID5 group of n 15K disks (n >= 3), for the
// degraded-mode experiments.
func RAID5Disks(name string, n int) DeviceSpec {
	return DeviceSpec{Name: name, RAID: &RAIDSpec{Members: n, Member: storage.Disk15KConfig(), Level: 5}}
}

// Validate checks the spec declares exactly one device type.
func (s DeviceSpec) Validate() error {
	n := 0
	if s.Disk != nil {
		n++
	}
	if s.SSD != nil {
		n++
	}
	if s.RAID != nil {
		n++
	}
	if n != 1 {
		return fmt.Errorf("replay: device %q declares %d device types, want 1", s.Name, n)
	}
	if r := s.RAID; r != nil {
		if r.Members <= 0 {
			return fmt.Errorf("replay: device %q: RAID with %d members", s.Name, r.Members)
		}
		switch r.Level {
		case 0:
			// striping, no redundancy
		case 5:
			if r.Members < 3 {
				return fmt.Errorf("replay: device %q: RAID5 needs at least 3 members, got %d", s.Name, r.Members)
			}
		default:
			return fmt.Errorf("replay: device %q: unsupported RAID level %d", s.Name, r.Level)
		}
		for i, f := range r.MemberFaults {
			if i < 0 || i >= r.Members {
				return fmt.Errorf("replay: device %q: fault schedule for member %d outside [0,%d)", s.Name, i, r.Members)
			}
			if err := f.Validate(); err != nil {
				return fmt.Errorf("replay: device %q member %d: %w", s.Name, i, err)
			}
		}
	}
	if s.Faults != nil {
		if s.RAID != nil {
			return fmt.Errorf("replay: device %q: inject faults into RAID members, not the group", s.Name)
		}
		if err := s.Faults.Validate(); err != nil {
			return fmt.Errorf("replay: device %q: %w", s.Name, err)
		}
	}
	return nil
}

// Capacity returns the target's capacity without instantiating it.
func (s DeviceSpec) Capacity() int64 {
	switch {
	case s.Disk != nil:
		return s.Disk.CapacityBytes
	case s.SSD != nil:
		return s.SSD.CapacityBytes
	case s.RAID != nil:
		members := int64(s.RAID.Members)
		if s.RAID.Level == 5 {
			members-- // one member's worth of each stripe row is parity
		}
		return s.RAID.Member.CapacityBytes * members
	}
	return 0
}

// ModelKey identifies the target's performance class for cost-model
// calibration caching. Targets with the same key share a calibrated model.
func (s DeviceSpec) ModelKey() string {
	switch {
	case s.Disk != nil:
		return fmt.Sprintf("disk-rpm%.0fms-%.0fMBps", s.Disk.AvgSeek*1e3, s.Disk.TransferRate/(1<<20))
	case s.SSD != nil:
		return fmt.Sprintf("ssd-%.2fms-%.0fMBps", s.SSD.ReadLatency*1e3, s.SSD.ReadRate/(1<<20))
	case s.RAID != nil:
		return fmt.Sprintf("raid%dx%d-%.0fms-%.0fMBps", s.RAID.Level, s.RAID.Members,
			s.RAID.Member.AvgSeek*1e3, s.RAID.Member.TransferRate/(1<<20))
	}
	return "invalid"
}

// Build instantiates the target on the engine, applying any fault schedules.
func (s DeviceSpec) Build(e *storage.Engine) storage.Device {
	inject := func(d storage.Device, f *storage.FaultSchedule) storage.Device {
		if f != nil {
			// Validate() vetted the schedule; a failure here is a spec
			// that skipped validation.
			if err := d.(storage.FaultInjector).InjectFaults(*f); err != nil {
				panic(fmt.Sprintf("replay: device %q: %v", d.Name(), err))
			}
		}
		return d
	}
	switch {
	case s.Disk != nil:
		return inject(storage.NewDisk(e, s.Name, *s.Disk), s.Faults)
	case s.SSD != nil:
		return inject(storage.NewSSD(e, s.Name, *s.SSD), s.Faults)
	case s.RAID != nil:
		unit := s.RAID.Unit
		if unit <= 0 {
			unit = storage.DefaultStripeUnit
		}
		members := make([]storage.Device, s.RAID.Members)
		for i := range members {
			members[i] = storage.NewDisk(e, fmt.Sprintf("%s.m%d", s.Name, i), s.RAID.Member)
			if f, ok := s.RAID.MemberFaults[i]; ok {
				inject(members[i], &f)
			}
		}
		if s.RAID.Level == 5 {
			return storage.NewRAID5(e, s.Name, unit, members...)
		}
		return storage.NewRAID0(e, s.Name, unit, members...)
	}
	panic("replay: invalid device spec")
}

// Factory returns a costmodel.TargetFactory building fresh instances of this
// target type for calibration.
func (s DeviceSpec) Factory() costmodel.TargetFactory {
	return func(e *storage.Engine) storage.Device { return s.Build(e) }
}

// System is the machine under test: the merged database object list and the
// storage targets.
type System struct {
	Objects []layout.Object
	Devices []DeviceSpec
	// StripeSize is the LVM stripe size (default layout.DefaultStripeSize).
	StripeSize int64
}

// Validate checks the system description.
func (sys *System) Validate() error {
	if len(sys.Objects) == 0 || len(sys.Devices) == 0 {
		return fmt.Errorf("replay: system needs objects and devices")
	}
	seen := map[string]bool{}
	for _, o := range sys.Objects {
		if o.Size <= 0 {
			return fmt.Errorf("replay: object %q has size %d", o.Name, o.Size)
		}
		if seen[o.Name] {
			return fmt.Errorf("replay: duplicate object %q", o.Name)
		}
		seen[o.Name] = true
	}
	for _, d := range sys.Devices {
		if err := d.Validate(); err != nil {
			return err
		}
	}
	return nil
}

func (sys *System) stripeSize() int64 {
	if sys.StripeSize > 0 {
		return sys.StripeSize
	}
	return layout.DefaultStripeSize
}

// objectIndex builds the name -> global index map.
func (sys *System) objectIndex() map[string]int {
	m := make(map[string]int, len(sys.Objects))
	for i, o := range sys.Objects {
		m[o.Name] = i
	}
	return m
}

// Targets builds the layout.Target list for the advisor, attaching
// calibrated cost models from the cache.
func (sys *System) Targets(cache *costmodel.Cache, grid costmodel.Grid) []*layout.Target {
	ts := make([]*layout.Target, len(sys.Devices))
	for j, d := range sys.Devices {
		ts[j] = &layout.Target{
			Name:     d.Name,
			Capacity: d.Capacity(),
			Model:    cache.Get(d.ModelKey(), d.Factory(), grid),
		}
	}
	return ts
}
