// Package replay executes SQL-level workloads (package benchdb) against the
// storage simulator (package storage) under a concrete, regular layout. It
// plays the role of the paper's physical testbed: it produces the elapsed
// workload times and tpmC rates of the evaluation tables, and the I/O traces
// from which workload models are fitted.
package replay

import (
	"fmt"

	"dblayout/internal/costmodel"
	"dblayout/internal/layout"
	"dblayout/internal/storage"
)

// RAIDSpec describes a RAID0 group target.
type RAIDSpec struct {
	Members int
	Member  storage.DiskConfig
	Unit    int64 // stripe unit; 0 selects storage.DefaultStripeUnit
}

// DeviceSpec declares one storage target of the system under test. Exactly
// one of Disk, SSD, RAID must be set.
type DeviceSpec struct {
	Name string
	Disk *storage.DiskConfig
	SSD  *storage.SSDConfig
	RAID *RAIDSpec
}

// Disk15K returns a single-15K-disk target spec, the paper's basic target.
func Disk15K(name string) DeviceSpec {
	cfg := storage.Disk15KConfig()
	return DeviceSpec{Name: name, Disk: &cfg}
}

// SSD returns an SSD target spec with the given capacity (0 = full 32 GB).
func SSD(name string, capacity int64) DeviceSpec {
	cfg := storage.SSD32Config()
	if capacity > 0 {
		cfg.CapacityBytes = capacity
	}
	return DeviceSpec{Name: name, SSD: &cfg}
}

// RAID0Disks returns a RAID0 group of n 15K disks, as built by the paper's
// PERC controller for the heterogeneous configurations.
func RAID0Disks(name string, n int) DeviceSpec {
	return DeviceSpec{Name: name, RAID: &RAIDSpec{Members: n, Member: storage.Disk15KConfig()}}
}

// Validate checks the spec declares exactly one device type.
func (s DeviceSpec) Validate() error {
	n := 0
	if s.Disk != nil {
		n++
	}
	if s.SSD != nil {
		n++
	}
	if s.RAID != nil {
		n++
	}
	if n != 1 {
		return fmt.Errorf("replay: device %q declares %d device types, want 1", s.Name, n)
	}
	if s.RAID != nil && s.RAID.Members <= 0 {
		return fmt.Errorf("replay: device %q: RAID with %d members", s.Name, s.RAID.Members)
	}
	return nil
}

// Capacity returns the target's capacity without instantiating it.
func (s DeviceSpec) Capacity() int64 {
	switch {
	case s.Disk != nil:
		return s.Disk.CapacityBytes
	case s.SSD != nil:
		return s.SSD.CapacityBytes
	case s.RAID != nil:
		return s.RAID.Member.CapacityBytes * int64(s.RAID.Members)
	}
	return 0
}

// ModelKey identifies the target's performance class for cost-model
// calibration caching. Targets with the same key share a calibrated model.
func (s DeviceSpec) ModelKey() string {
	switch {
	case s.Disk != nil:
		return fmt.Sprintf("disk-rpm%.0fms-%.0fMBps", s.Disk.AvgSeek*1e3, s.Disk.TransferRate/(1<<20))
	case s.SSD != nil:
		return fmt.Sprintf("ssd-%.2fms-%.0fMBps", s.SSD.ReadLatency*1e3, s.SSD.ReadRate/(1<<20))
	case s.RAID != nil:
		return fmt.Sprintf("raid0x%d-%.0fms-%.0fMBps", s.RAID.Members,
			s.RAID.Member.AvgSeek*1e3, s.RAID.Member.TransferRate/(1<<20))
	}
	return "invalid"
}

// Build instantiates the target on the engine.
func (s DeviceSpec) Build(e *storage.Engine) storage.Device {
	switch {
	case s.Disk != nil:
		return storage.NewDisk(e, s.Name, *s.Disk)
	case s.SSD != nil:
		return storage.NewSSD(e, s.Name, *s.SSD)
	case s.RAID != nil:
		unit := s.RAID.Unit
		if unit <= 0 {
			unit = storage.DefaultStripeUnit
		}
		members := make([]storage.Device, s.RAID.Members)
		for i := range members {
			members[i] = storage.NewDisk(e, fmt.Sprintf("%s.m%d", s.Name, i), s.RAID.Member)
		}
		return storage.NewRAID0(e, s.Name, unit, members...)
	}
	panic("replay: invalid device spec")
}

// Factory returns a costmodel.TargetFactory building fresh instances of this
// target type for calibration.
func (s DeviceSpec) Factory() costmodel.TargetFactory {
	return func(e *storage.Engine) storage.Device { return s.Build(e) }
}

// System is the machine under test: the merged database object list and the
// storage targets.
type System struct {
	Objects []layout.Object
	Devices []DeviceSpec
	// StripeSize is the LVM stripe size (default layout.DefaultStripeSize).
	StripeSize int64
}

// Validate checks the system description.
func (sys *System) Validate() error {
	if len(sys.Objects) == 0 || len(sys.Devices) == 0 {
		return fmt.Errorf("replay: system needs objects and devices")
	}
	seen := map[string]bool{}
	for _, o := range sys.Objects {
		if o.Size <= 0 {
			return fmt.Errorf("replay: object %q has size %d", o.Name, o.Size)
		}
		if seen[o.Name] {
			return fmt.Errorf("replay: duplicate object %q", o.Name)
		}
		seen[o.Name] = true
	}
	for _, d := range sys.Devices {
		if err := d.Validate(); err != nil {
			return err
		}
	}
	return nil
}

func (sys *System) stripeSize() int64 {
	if sys.StripeSize > 0 {
		return sys.StripeSize
	}
	return layout.DefaultStripeSize
}

// objectIndex builds the name -> global index map.
func (sys *System) objectIndex() map[string]int {
	m := make(map[string]int, len(sys.Objects))
	for i, o := range sys.Objects {
		m[o.Name] = i
	}
	return m
}

// Targets builds the layout.Target list for the advisor, attaching
// calibrated cost models from the cache.
func (sys *System) Targets(cache *costmodel.Cache, grid costmodel.Grid) []*layout.Target {
	ts := make([]*layout.Target, len(sys.Devices))
	for j, d := range sys.Devices {
		ts[j] = &layout.Target{
			Name:     d.Name,
			Capacity: d.Capacity(),
			Model:    cache.Get(d.ModelKey(), d.Factory(), grid),
		}
	}
	return ts
}
