package replay

import (
	"fmt"

	"dblayout/internal/obs"
	"dblayout/internal/storage"
)

// WindowConfig enables windowed model-validation instrumentation on a replay:
// the run is cut into fixed-width windows of simulated time and, at each
// window boundary, the observer records every device's busy fraction over the
// window as a time series and — when predictions are supplied — the
// prediction error (observed minus predicted utilization), feeding an
// optional drift detector. This is the predicted-vs-observed comparison the
// paper's validation rests on, maintained online instead of once at the end
// of a run.
type WindowConfig struct {
	// Size is the window width in simulated seconds (default 1).
	Size float64
	// Predicted holds the cost model's predicted steady-state utilization
	// per device, in System.Devices order (e.g. layout.Evaluator
	// Utilizations for the replayed layout). When set, the observer
	// maintains a model_prediction_error series per device; when nil only
	// observed utilizations are recorded.
	Predicted []float64
	// Detector, when non-nil, receives one prediction-error observation
	// per device per window (signal prediction_error{device=...}), firing
	// drift events per its hysteresis configuration. Requires Predicted.
	Detector *obs.Detector
	// Capacity is the series ring capacity (default
	// obs.DefaultSeriesCapacity).
	Capacity int
}

func (c WindowConfig) withDefaults() WindowConfig {
	if c.Size <= 0 {
		c.Size = 1
	}
	return c
}

// windowObserver ticks as an engine daemon once per window, differencing
// device busy time to get the per-window busy fraction. Daemon events never
// extend the run, so the observer is free to reschedule itself forever.
type windowObserver struct {
	eng      *storage.Engine
	devices  []storage.Device
	cfg      WindowConfig
	util     []*obs.Series // observed busy fraction per window
	errs     []*obs.Series // observed minus predicted (nil without predictions)
	lastBusy []float64
	lastT    float64
	window   int64
	closed   bool
}

// newWindowObserver validates cfg against the run and registers the window
// series. A nil registry is fine: the series degrade to no-ops while the
// detector still sees every observation.
func newWindowObserver(eng *storage.Engine, devices []storage.Device, names []string, reg *obs.Registry, cfg WindowConfig) (*windowObserver, error) {
	cfg = cfg.withDefaults()
	if cfg.Predicted != nil && len(cfg.Predicted) != len(devices) {
		return nil, fmt.Errorf("replay: %d predicted utilizations for %d devices", len(cfg.Predicted), len(devices))
	}
	if cfg.Detector != nil && cfg.Predicted == nil {
		return nil, fmt.Errorf("replay: window drift detector requires predicted utilizations")
	}
	o := &windowObserver{
		eng:      eng,
		devices:  devices,
		cfg:      cfg,
		util:     make([]*obs.Series, len(devices)),
		lastBusy: make([]float64, len(devices)),
	}
	if cfg.Predicted != nil {
		o.errs = make([]*obs.Series, len(devices))
	}
	for j, name := range names {
		o.util[j] = reg.Series(obs.Name("replay_device_window_utilization", "device", name), cfg.Capacity)
		if o.errs != nil {
			o.errs[j] = reg.Series(obs.Name("model_prediction_error", "device", name), cfg.Capacity)
			reg.Gauge(obs.Name("model_predicted_utilization", "device", name)).Set(cfg.Predicted[j])
		}
	}
	eng.ScheduleDaemon(cfg.Size, o.tick)
	return o, nil
}

// tick closes the window ending now and schedules the next one.
func (o *windowObserver) tick() {
	o.flush(o.eng.Now())
	o.eng.ScheduleDaemon(o.eng.Now()+o.cfg.Size, o.tick)
}

// flush records one window [lastT, t) if it has positive width.
func (o *windowObserver) flush(t float64) {
	dt := t - o.lastT
	if dt <= 0 {
		return
	}
	for j, d := range o.devices {
		busy := d.Stats().BusyTime
		u := (busy - o.lastBusy[j]) / dt
		o.lastBusy[j] = busy
		o.util[j].Record(t, u)
		if o.errs != nil {
			e := u - o.cfg.Predicted[j]
			o.errs[j].Record(t, e)
			o.cfg.Detector.Observe(
				obs.Name("prediction_error", "device", d.Name()),
				o.window, t, e)
		}
	}
	o.window++
	o.lastT = t
}

// finish closes the observer at the end of the run, emitting the trailing
// partial window only when it spans at least half a window — a sliver of a
// window measures noise, not utilization.
func (o *windowObserver) finish(elapsed float64) {
	if o == nil || o.closed {
		return
	}
	o.closed = true
	if elapsed-o.lastT >= o.cfg.Size/2 {
		o.flush(elapsed)
	}
}
