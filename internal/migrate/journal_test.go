package migrate

import (
	"bytes"
	"errors"
	"testing"

	"dblayout/internal/layout"
)

func sampleSteps() []Step {
	return []Step{
		{Kind: StepStageIn, Move: layout.Move{Object: 0, From: 0, To: 3, Fraction: 1, Bytes: 8 << 20}, MoveIndex: 0},
		{Kind: StepDirect, Move: layout.Move{Object: 2, From: 2, To: 0, Fraction: 1, Bytes: 8 << 20}, MoveIndex: 2},
		{Kind: StepStageOut, Move: layout.Move{Object: 0, From: 3, To: 1, Fraction: 1, Bytes: 8 << 20}, MoveIndex: 0},
	}
}

func sampleJournal(t *testing.T) []byte {
	t.Helper()
	var buf bytes.Buffer
	jw := &journalWriter{w: &buf}
	scratch := ScratchSpec{Target: 3, Bytes: 8 << 20}
	for _, r := range []Record{
		{T: "plan", Steps: sampleSteps(), Scratch: &scratch},
		{T: "state", Step: 0, State: "copying"},
		{T: "progress", Step: 0, Done: 4 << 20},
		{T: "state", Step: 0, State: "copied"},
		{T: "state", Step: 0, State: "committed"},
		{T: "state", Step: 1, State: "copying"},
	} {
		if err := jw.append(r); err != nil {
			t.Fatal(err)
		}
	}
	return buf.Bytes()
}

func TestJournalRoundTrip(t *testing.T) {
	data := sampleJournal(t)
	records, err := DecodeJournal(data)
	if err != nil {
		t.Fatal(err)
	}
	if len(records) != 6 {
		t.Fatalf("decoded %d records, want 6", len(records))
	}
	if records[0].T != "plan" || len(records[0].Steps) != 3 {
		t.Fatalf("plan record mangled: %+v", records[0])
	}
	if records[0].Steps[0] != sampleSteps()[0] {
		t.Fatalf("step did not roundtrip: %+v", records[0].Steps[0])
	}
	ck, err := Recover(records)
	if err != nil {
		t.Fatal(err)
	}
	if ck.State[0] != StateCommitted || ck.State[1] != StateCopying || ck.State[2] != StatePlanned {
		t.Fatalf("recovered states %v", ck.State)
	}
	if ck.CommittedSteps() != 1 || ck.CommittedBytes() != 8<<20 {
		t.Fatalf("committed %d steps / %d bytes", ck.CommittedSteps(), ck.CommittedBytes())
	}
}

func TestDecodeJournalIgnoresTornTail(t *testing.T) {
	data := sampleJournal(t)
	for cut := 1; cut < 40; cut++ {
		torn := data[:len(data)-cut]
		records, err := DecodeJournal(torn)
		if err != nil {
			t.Fatalf("cut %d: %v", cut, err)
		}
		if len(records) != 5 {
			t.Fatalf("cut %d: decoded %d records, want 5", cut, len(records))
		}
		if got := TruncateTorn(torn); got[len(got)-1] != '\n' {
			t.Fatalf("cut %d: TruncateTorn kept a torn tail", cut)
		}
	}
	if TruncateTorn([]byte("no newline at all")) != nil {
		t.Error("TruncateTorn of a single torn line should be empty")
	}
}

func TestDecodeJournalRejectsCorruption(t *testing.T) {
	data := sampleJournal(t)
	// Flip one byte in every position of a complete line: every flip must
	// surface as ErrJournalCorrupt, never a panic or silent acceptance.
	firstLine := bytes.IndexByte(data, '\n')
	for i := 0; i <= firstLine; i++ {
		mut := append([]byte(nil), data...)
		if mut[i] == '\n' {
			continue // shortening a line is the torn-tail case
		}
		mut[i] ^= 0x01
		if mut[i] == '\n' {
			continue
		}
		_, err := DecodeJournal(mut)
		if err == nil {
			t.Fatalf("flip at %d accepted", i)
		}
		if !errors.Is(err, ErrJournalCorrupt) {
			t.Fatalf("flip at %d: %v is not ErrJournalCorrupt", i, err)
		}
	}
	if _, err := DecodeJournal([]byte("tiny\n")); !errors.Is(err, ErrJournalCorrupt) {
		t.Errorf("short line: %v", err)
	}
	if _, err := DecodeJournal([]byte("zzzzzzzz {\"t\":\"done\"}\n")); !errors.Is(err, ErrJournalCorrupt) {
		t.Errorf("non-hex checksum: %v", err)
	}
}

func TestRecoverRejectsImpossibleHistories(t *testing.T) {
	steps := sampleSteps()
	scratch := &ScratchSpec{Target: 3, Bytes: 8 << 20}
	plan := Record{T: "plan", Steps: steps, Scratch: scratch}
	cases := []struct {
		name    string
		records []Record
	}{
		{"empty", nil},
		{"no plan first", []Record{{T: "done"}}},
		{"double plan", []Record{plan, plan}},
		{"skip copying", []Record{plan, {T: "state", Step: 0, State: "committed"}}},
		{"commit twice", []Record{plan,
			{T: "state", Step: 0, State: "copying"},
			{T: "state", Step: 0, State: "copied"},
			{T: "state", Step: 0, State: "committed"},
			{T: "state", Step: 0, State: "committed"}}},
		{"progress before copy", []Record{plan, {T: "progress", Step: 0, Done: 1}}},
		{"progress beyond step", []Record{plan,
			{T: "state", Step: 0, State: "copying"},
			{T: "progress", Step: 0, Done: 9 << 20}}},
		{"progress backwards", []Record{plan,
			{T: "state", Step: 0, State: "copying"},
			{T: "progress", Step: 0, Done: 4 << 20},
			{T: "progress", Step: 0, Done: 2 << 20}}},
		{"step out of range", []Record{plan, {T: "state", Step: 9, State: "copying"}}},
		{"record after done", []Record{plan, {T: "abort"}, {T: "done"}}},
		{"premature done", []Record{plan, {T: "done"}}},
		{"state after rollback", []Record{plan,
			{T: "state", Step: 0, State: "copying"},
			{T: "state", Step: 0, State: "rolledback", Failed: []int{1}},
			{T: "state", Step: 1, State: "copying"}}},
		{"done after rollback", []Record{plan,
			{T: "state", Step: 0, State: "copying"},
			{T: "state", Step: 0, State: "rolledback", Failed: []int{1}},
			{T: "done"}}},
	}
	for _, tc := range cases {
		if _, err := Recover(tc.records); !errors.Is(err, ErrJournalCorrupt) {
			t.Errorf("%s: Recover = %v, want ErrJournalCorrupt", tc.name, err)
		}
	}
}

// TestRecoverPendingAbort: a journal ending right after a rollback record —
// the crash landed before the fault's abort record — recovers with the abort
// decision intact, and the abort record clears it.
func TestRecoverPendingAbort(t *testing.T) {
	steps := sampleSteps()
	plan := Record{T: "plan", Steps: steps}
	pending := []Record{plan,
		{T: "state", Step: 0, State: "copying"},
		{T: "state", Step: 0, State: "rolledback", Failed: []int{2}, Reason: "write failed"}}

	ck, err := Recover(pending)
	if err != nil {
		t.Fatal(err)
	}
	if !ck.PendingAbort || ck.Aborted {
		t.Fatalf("checkpoint = %+v, want pending abort, not aborted", ck)
	}
	if len(ck.Failed) != 1 || ck.Failed[0] != 2 || ck.PendingAbortReason != "write failed" {
		t.Fatalf("pending abort lost the fault: failed=%v reason=%q", ck.Failed, ck.PendingAbortReason)
	}

	ck, err = Recover(append(pending, Record{T: "abort", Failed: []int{2}, Reason: "write failed"}))
	if err != nil {
		t.Fatal(err)
	}
	if ck.PendingAbort || !ck.Aborted {
		t.Fatalf("checkpoint = %+v, want aborted with no pending abort", ck)
	}
}

// FuzzJournalDecode asserts the decode and recovery paths never panic and
// classify arbitrary input as either a valid journal or ErrJournalCorrupt.
func FuzzJournalDecode(f *testing.F) {
	var buf bytes.Buffer
	jw := &journalWriter{w: &buf}
	scratch := ScratchSpec{Target: 3, Bytes: 8 << 20}
	_ = jw.append(Record{T: "plan", Steps: sampleSteps(), Scratch: &scratch})
	_ = jw.append(Record{T: "state", Step: 0, State: "copying"})
	_ = jw.append(Record{T: "progress", Step: 0, Done: 1 << 20})
	f.Add(buf.Bytes())
	f.Add([]byte(""))
	f.Add([]byte("00000000 {}\n"))
	f.Add([]byte("deadbeef {\"t\":\"plan\"}\ntrailing garbage"))
	f.Fuzz(func(t *testing.T, data []byte) {
		records, err := DecodeJournal(data)
		if err != nil {
			if !errors.Is(err, ErrJournalCorrupt) {
				t.Fatalf("decode error %v does not wrap ErrJournalCorrupt", err)
			}
			return
		}
		if ck, err := Recover(records); err == nil {
			// A recoverable journal must be internally consistent.
			if len(ck.State) != len(ck.Steps) || len(ck.Progress) != len(ck.Steps) {
				t.Fatalf("checkpoint shape mismatch: %d steps, %d states", len(ck.Steps), len(ck.State))
			}
		} else if !errors.Is(err, ErrJournalCorrupt) {
			t.Fatalf("recover error %v does not wrap ErrJournalCorrupt", err)
		}
	})
}
