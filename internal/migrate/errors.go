package migrate

import (
	"errors"
	"fmt"

	"dblayout/internal/layout"
)

// Sentinel errors. Callers (cmd/advisor) match these with errors.Is to map
// migration outcomes to exit codes.
var (
	// ErrMigrationAborted reports that a migration stopped because a
	// device failed mid-flight. The engine rolled the in-flight move back
	// and left the system in a consistent layout (base plus committed
	// moves); recovery proceeds by replanning, not by resuming.
	ErrMigrationAborted = errors.New("migration aborted")

	// ErrScratchExhausted reports that a plan's capacity cycles cannot be
	// broken within the configured scratch-space budget.
	ErrScratchExhausted = errors.New("migration scratch space exhausted")

	// ErrJournalCorrupt reports that a migration journal failed
	// validation (bad checksum, malformed record, or impossible state
	// transition) somewhere other than a torn final line.
	ErrJournalCorrupt = errors.New("migration journal corrupt")
)

// AbortError carries the detail of a fault-triggered abort. It unwraps to
// ErrMigrationAborted.
type AbortError struct {
	Failed []int  // targets that failed
	Reason string // what the engine observed
}

func (e *AbortError) Error() string {
	return fmt.Sprintf("migrate: aborted, targets %v failed: %s", e.Failed, e.Reason)
}

func (e *AbortError) Unwrap() error { return ErrMigrationAborted }

// ScratchError reports the scratch shortfall that made a capacity cycle
// unbreakable. It unwraps to ErrScratchExhausted.
type ScratchError struct {
	Cycle     *layout.CycleError // the deadlock needing staging (nil when the stall is acyclic)
	NeedBytes int64              // smallest stage that would make progress
	FreeBytes int64              // unused scratch reservation at the stall
}

func (e *ScratchError) Error() string {
	return fmt.Sprintf("migrate: breaking the capacity cycle needs %d scratch bytes but only %d remain", e.NeedBytes, e.FreeBytes)
}

func (e *ScratchError) Unwrap() error { return ErrScratchExhausted }

// CorruptError pinpoints a corrupt journal record. It unwraps to
// ErrJournalCorrupt.
type CorruptError struct {
	Record int // zero-based index of the bad record
	Reason string
}

func (e *CorruptError) Error() string {
	return fmt.Sprintf("migrate: journal record %d: %s", e.Record, e.Reason)
}

func (e *CorruptError) Unwrap() error { return ErrJournalCorrupt }
