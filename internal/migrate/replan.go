package migrate

import (
	"context"
	"fmt"

	"dblayout/internal/core"
	"dblayout/internal/layout"
)

// Replan turns an aborted migration into a repair: it feeds the consistent
// mid-migration layout the engine stopped in (base plus committed moves)
// and the failed targets into core.RecommendRepair, then builds an
// executable script for the repair plan. The script's moves may source from
// failed targets; execute it with Options.FailedSources set to res.FailedTargets
// so those reads become reconstruction writes.
func Replan(ctx context.Context, inst *layout.Instance, res *Result, opt core.Options, scratch ScratchSpec) (*core.Repair, []Step, error) {
	if res == nil || !res.Aborted {
		return nil, nil, fmt.Errorf("migrate: replan needs an aborted migration result")
	}
	rep, err := core.RecommendRepair(ctx, inst, res.Layout, res.FailedTargets, opt)
	if err != nil {
		return rep, nil, err
	}
	steps, err := BuildScript(res.Layout, rep.Plan, inst.Sizes(), inst.Capacities(), scratch)
	if err != nil {
		return rep, nil, err
	}
	return rep, steps, nil
}
