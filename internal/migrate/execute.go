package migrate

import (
	"fmt"

	"dblayout/internal/benchdb"
	"dblayout/internal/layout"
	"dblayout/internal/replay"
)

// ExecuteResult bundles the migration outcome with the replay run it was
// interleaved with.
type ExecuteResult struct {
	Migration *Result
	Replay    *replay.OLAPResult
	Plan      []layout.Move
	Script    []Step
}

// Execute runs the online migration from current to target against the
// simulated system: it computes the plan, builds a capacity-safe script
// (staging through opt.Scratch where cycles demand it), and drives the copy
// stream as throttled background I/O interleaved with the foreground
// workload w (nil w runs the migration against an idle system).
//
// When opt.Resume holds a prior journal, Execute recovers it, verifies the
// script matches, and continues from the checkpoint; opt.Journal should
// then be the same journal opened for append, so the combined file remains
// a single replayable history.
//
// Execute returns the partial result alongside the error when the
// migration aborts on a device fault (errors.Is(err, ErrMigrationAborted))
// or crashes on a journal write failure.
func Execute(sys *replay.System, current, target *layout.Layout, w *benchdb.OLAPWorkload, ropt replay.Options, opt Options) (*ExecuteResult, error) {
	opt = opt.withDefaults()
	sizes := make([]int64, len(sys.Objects))
	for i, o := range sys.Objects {
		sizes[i] = o.Size
	}
	caps := make([]int64, len(sys.Devices))
	for j := range sys.Devices {
		caps[j] = sys.Devices[j].Capacity()
	}
	plan, err := layout.MigrationPlan(current, target, sizes)
	if err != nil {
		return nil, err
	}
	steps, err := BuildScript(current, plan, sizes, caps, opt.Scratch)
	if err != nil {
		return nil, err
	}
	if len(steps) == 0 {
		// Layouts already agree: nothing to move, nothing to journal.
		return &ExecuteResult{
			Migration: &Result{Done: true, Layout: current.Clone()},
			Plan:      plan,
		}, nil
	}

	if records, derr := DecodeJournal(TruncateTorn(opt.Resume)); derr != nil {
		return nil, derr
	} else if len(records) > 0 {
		ck, err := Recover(records)
		if err != nil {
			return nil, err
		}
		if err := checkResumable(ck, steps); err != nil {
			return nil, err
		}
		if ck.Aborted {
			return nil, fmt.Errorf("migrate: journal records an abort on targets %v; replan with RecommendRepair instead of resuming: %w",
				ck.Failed, ErrMigrationAborted)
		}
		if ck.Done {
			// Nothing left to execute; report the completed state.
			res := &Result{
				Steps: ck.Steps, State: ck.State, Done: true,
				Committed:      ck.CommittedSteps(),
				CommittedBytes: ck.CommittedBytes(),
				Layout:         current.Clone(),
			}
			for i, st := range ck.State {
				if st == StateCommitted {
					applyStep(res.Layout, ck.Steps[i])
				}
			}
			return &ExecuteResult{Migration: res, Plan: plan, Script: steps}, nil
		}
		opt.Checkpoint = ck
	}

	mapper := opt.MapperLayout
	if mapper == nil {
		mapper = current
	}
	var mres *Result
	ropt.Background = func(sim *replay.BackgroundIO) {
		eng, err := NewEngine(sim, current, steps, opt, func(r *Result) { mres = r })
		if err != nil {
			// NewEngine's validations all depend only on inputs checked
			// above; reaching this is a bug, not an input error.
			panic(err)
		}
		eng.Start()
	}
	var rres *replay.OLAPResult
	if w == nil {
		rres, err = replay.RunIdle(sys, mapper, ropt)
	} else {
		rres, err = replay.RunOLAP(sys, mapper, w, ropt)
	}
	out := &ExecuteResult{Migration: mres, Replay: rres, Plan: plan, Script: steps}
	if err != nil {
		// A crashed or aborted engine stops scheduling events, so the
		// replay layer may report its own error for the same incident
		// (e.g. RunIdle with nothing pending); prefer the engine's.
		if mres != nil && mres.Err != nil {
			return out, mres.Err
		}
		return out, err
	}
	if mres == nil {
		return out, fmt.Errorf("migrate: foreground workload finished before the migration (raise replay MaxSimTime?)")
	}
	if mres.Err != nil {
		return out, mres.Err
	}
	return out, nil
}

// checkResumable verifies a recovered checkpoint belongs to the script we
// are about to execute.
func checkResumable(ck *Checkpoint, steps []Step) error {
	if len(ck.Steps) != len(steps) {
		return fmt.Errorf("migrate: journal plans %d steps, current problem needs %d: %w",
			len(ck.Steps), len(steps), ErrJournalCorrupt)
	}
	for i := range steps {
		if ck.Steps[i] != steps[i] {
			return fmt.Errorf("migrate: journal step %d (%s %+v) does not match the current plan (%s %+v): %w",
				i, ck.Steps[i].Kind, ck.Steps[i].Move, steps[i].Kind, steps[i].Move, ErrJournalCorrupt)
		}
	}
	return nil
}
