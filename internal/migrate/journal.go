package migrate

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"

	"dblayout/internal/layout"
	"dblayout/internal/wal"
)

// StepState is the write-ahead state machine each step advances through.
// Transitions are journaled before they take effect, so a journal replay
// reconstructs exactly how far the migration got:
//
//	planned -> copying -> copied -> committed
//	                   -> rolledback            (on a device fault)
//
// A rollback is always followed by the fault's abort record; the rollback
// record carries the failed targets so a crash between the two can be
// completed on resume (see Checkpoint.PendingAbort). The only records legal
// after a rollback are that abort or nothing (the crash).
type StepState uint8

const (
	StatePlanned StepState = iota
	StateCopying
	StateCopied
	StateCommitted
	StateRolledBack
)

var stepStateNames = [...]string{"planned", "copying", "copied", "committed", "rolledback"}

func (s StepState) String() string {
	if int(s) < len(stepStateNames) {
		return stepStateNames[s]
	}
	return fmt.Sprintf("StepState(%d)", uint8(s))
}

func parseStepState(name string) (StepState, bool) {
	for i, n := range stepStateNames {
		if n == name {
			return StepState(i), true
		}
	}
	return 0, false
}

// Record is one journal entry. The journal uses the CRC-framed line protocol
// of internal/wal: a record is durable only once its newline is written, so a
// torn final line is ignored on decode; corruption anywhere else is an error.
type Record struct {
	// T is the record type: "plan", "state", "progress", "abort", "done".
	T string `json:"t"`

	// plan: the full script this journal executes, written first.
	Steps   []Step       `json:"steps,omitempty"`
	Scratch *ScratchSpec `json:"scratch,omitempty"`

	// state and progress records address a step by index.
	Step  int    `json:"step,omitempty"`
	State string `json:"state,omitempty"` // state: the new StepState
	Done  int64  `json:"done,omitempty"`  // progress: bytes copied so far for Step

	// abort: the migration stopped on a device fault. A rolledback state
	// record carries the same fields, so the abort decision survives a
	// crash landing between the rollback and the abort record.
	Failed []int  `json:"failed,omitempty"`
	Reason string `json:"reason,omitempty"`
}

// journalWriter appends CRC-framed records to a sink. A nil writer (no
// journal configured) accepts everything silently.
//
// Durability: state-transition records (plan, state, abort, done) are
// fsynced before append returns, so the "journal before transition"
// protocol holds across power loss, not just process crashes. Progress
// records may batch syncs (syncEvery > 1): losing one only costs a recopy
// from the previous durable mark, never correctness.
type journalWriter struct {
	w         io.Writer
	syncEvery int // progress records per forced sync; <= 1 syncs every record
	unsynced  int // progress records appended since the last sync
}

// append journals one record. Any write or sync error — including a short
// write, which leaves a torn line — is a crash from the engine's point of
// view.
func (j *journalWriter) append(r Record) error {
	if j == nil || j.w == nil {
		return nil
	}
	body, err := json.Marshal(r)
	if err != nil {
		return err
	}
	if err := wal.Append(j.w, body); err != nil {
		return err
	}
	if r.T == "progress" {
		j.unsynced++
		if j.syncEvery > 1 && j.unsynced < j.syncEvery {
			return nil
		}
	}
	if err := wal.Sync(j.w); err != nil {
		return err
	}
	j.unsynced = 0
	return nil
}

// DecodeJournal parses journal bytes into records. A torn final line (no
// trailing newline, e.g. after a crash mid-write) is ignored; any other
// malformation returns a *CorruptError wrapping ErrJournalCorrupt. It never
// panics, regardless of input.
func DecodeJournal(data []byte) ([]Record, error) {
	bodies, err := wal.Frames(data)
	if err != nil {
		var fe *wal.FrameError
		if errors.As(err, &fe) {
			return nil, &CorruptError{Record: fe.Index, Reason: fe.Reason}
		}
		return nil, &CorruptError{Reason: err.Error()}
	}
	out := make([]Record, 0, len(bodies))
	for i, body := range bodies {
		rec, err := DecodeRecordBody(body)
		if err != nil {
			var ce *CorruptError
			if errors.As(err, &ce) {
				ce.Record = i
			}
			return nil, err
		}
		out = append(out, rec)
	}
	return out, nil
}

// TruncateTorn returns the journal prefix ending at the last newline — the
// durable records — discarding a torn final line left by a crash mid-write.
// Resuming callers truncate the journal file likewise before appending, so
// new records are never glued onto a torn line.
func TruncateTorn(data []byte) []byte {
	return wal.TruncateTorn(data)
}

// DecodeRecordBody parses one CRC-validated frame body into a migration
// Record, rejecting unknown fields and unknown record types. Journals that
// interleave migration records with their own (internal/control) route frames
// here after inspecting the type tag. The returned *CorruptError has Record 0;
// callers that know the frame index fill it in.
func DecodeRecordBody(body []byte) (Record, error) {
	corrupt := func(format string, args ...interface{}) (Record, error) {
		return Record{}, &CorruptError{Reason: fmt.Sprintf(format, args...)}
	}
	var rec Record
	dec := json.NewDecoder(bytes.NewReader(body))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&rec); err != nil {
		return corrupt("bad JSON body: %v", err)
	}
	switch rec.T {
	case "plan", "state", "progress", "abort", "done":
	default:
		return corrupt("unknown record type %q", rec.T)
	}
	return rec, nil
}

// Checkpoint is the durable state recovered from a journal: the script being
// executed and how far each step got. An engine given a Checkpoint resumes
// exactly there — committed steps are skipped, a copied step is re-committed
// without recopying, and a copying step restarts from its last journaled
// progress mark.
type Checkpoint struct {
	Steps    []Step
	Scratch  ScratchSpec
	State    []StepState
	Progress []int64 // journaled copied-bytes per step (only meaningful while copying)
	Aborted  bool
	Failed   []int // failed targets, when Aborted or PendingAbort
	Done     bool

	// PendingAbort marks a journal that ends after a step rollback but
	// before the abort record the fault handler writes next: the crash
	// landed between the two. The rolled-back step must not be skipped as
	// if the migration could still succeed — a resumed engine completes
	// the abort (using Failed and PendingAbortReason from the rollback
	// record) before doing anything else, making the abort exactly-once.
	PendingAbort       bool
	PendingAbortReason string
}

// CommittedSteps counts steps that reached StateCommitted.
func (c *Checkpoint) CommittedSteps() int {
	n := 0
	for _, s := range c.State {
		if s == StateCommitted {
			n++
		}
	}
	return n
}

// ApplyCommitted applies every committed step to l, reconstructing the
// consistent layout a journal left behind (base plus committed moves).
// Journal-replaying callers (internal/control) use it to roll closed
// migration epochs forward.
func (c *Checkpoint) ApplyCommitted(l *layout.Layout) {
	for i, s := range c.State {
		if s == StateCommitted {
			applyStep(l, c.Steps[i])
		}
	}
}

// CommittedBytes sums the bytes of committed steps.
func (c *Checkpoint) CommittedBytes() int64 {
	var b int64
	for i, s := range c.State {
		if s == StateCommitted {
			b += c.Steps[i].Move.Bytes
		}
	}
	return b
}

// Recover replays decoded journal records into a Checkpoint, validating that
// the record sequence is one the engine could have produced: a plan record
// first, then monotone per-step state transitions with progress only while
// copying, and nothing after an abort or done record. Violations return a
// *CorruptError wrapping ErrJournalCorrupt.
func Recover(records []Record) (*Checkpoint, error) {
	corrupt := func(idx int, format string, args ...interface{}) (*Checkpoint, error) {
		return nil, &CorruptError{Record: idx, Reason: fmt.Sprintf(format, args...)}
	}
	if len(records) == 0 {
		return corrupt(0, "journal is empty (no plan record)")
	}
	var ck *Checkpoint
	for i, r := range records {
		if ck != nil && (ck.Aborted || ck.Done) {
			return corrupt(i, "record after terminal %s", records[i-1].T)
		}
		if ck != nil && ck.PendingAbort && r.T != "abort" {
			return corrupt(i, "%s record after a rollback; only its abort may follow", r.T)
		}
		if ck == nil {
			if r.T != "plan" {
				return corrupt(i, "journal starts with %q, want plan", r.T)
			}
			if err := validateSteps(r.Steps); err != nil {
				return corrupt(i, "plan: %v", err)
			}
			ck = &Checkpoint{
				Steps:    r.Steps,
				State:    make([]StepState, len(r.Steps)),
				Progress: make([]int64, len(r.Steps)),
			}
			if r.Scratch != nil {
				ck.Scratch = *r.Scratch
			}
			continue
		}
		switch r.T {
		case "plan":
			return corrupt(i, "second plan record")
		case "state":
			if r.Step < 0 || r.Step >= len(ck.Steps) {
				return corrupt(i, "state for step %d of %d", r.Step, len(ck.Steps))
			}
			next, ok := parseStepState(r.State)
			if !ok {
				return corrupt(i, "unknown state %q", r.State)
			}
			cur := ck.State[r.Step]
			ok = (cur == StatePlanned && next == StateCopying) ||
				(cur == StateCopying && (next == StateCopied || next == StateRolledBack)) ||
				(cur == StateCopied && next == StateCommitted)
			if !ok {
				return corrupt(i, "step %d cannot go %v -> %v", r.Step, cur, next)
			}
			ck.State[r.Step] = next
			if next == StateRolledBack {
				ck.PendingAbort = true
				ck.Failed = r.Failed
				ck.PendingAbortReason = r.Reason
			}
		case "progress":
			if r.Step < 0 || r.Step >= len(ck.Steps) {
				return corrupt(i, "progress for step %d of %d", r.Step, len(ck.Steps))
			}
			if ck.State[r.Step] != StateCopying {
				return corrupt(i, "progress for step %d in state %v", r.Step, ck.State[r.Step])
			}
			if r.Done <= ck.Progress[r.Step] || r.Done > ck.Steps[r.Step].Move.Bytes {
				return corrupt(i, "progress for step %d is %d, have %d of %d bytes",
					r.Step, r.Done, ck.Progress[r.Step], ck.Steps[r.Step].Move.Bytes)
			}
			ck.Progress[r.Step] = r.Done
		case "abort":
			ck.Aborted = true
			ck.Failed = r.Failed
			ck.PendingAbort = false
			ck.PendingAbortReason = ""
		case "done":
			// A fault always ends in an abort, so a rolled-back step can
			// never be part of a completed migration.
			for s, st := range ck.State {
				if st != StateCommitted {
					return corrupt(i, "done with step %d still %v", s, st)
				}
			}
			ck.Done = true
		}
	}
	return ck, nil
}

// validateSteps sanity-checks a journaled script so a corrupt plan record
// cannot drive the engine out of bounds.
func validateSteps(steps []Step) error {
	if len(steps) == 0 {
		return fmt.Errorf("empty script")
	}
	for i, s := range steps {
		if s.Kind > StepStageOut {
			return fmt.Errorf("step %d has unknown kind %d", i, s.Kind)
		}
		m := s.Move
		if m.Object < 0 || m.From < 0 || m.To < 0 || m.From == m.To {
			return fmt.Errorf("step %d has degenerate move %+v", i, m)
		}
		if m.Bytes < 0 || m.Fraction < 0 || m.Fraction > 1+1e-6 {
			return fmt.Errorf("step %d moves impossible volume (%d bytes, fraction %g)", i, m.Bytes, m.Fraction)
		}
		if s.MoveIndex < 0 {
			return fmt.Errorf("step %d has negative move index", i)
		}
	}
	return nil
}
