package migrate

import (
	"errors"
	"testing"

	"dblayout/internal/layout"
)

// checkScriptSafe simulates a script under copy-then-commit semantics and
// fails the test if any intermediate state exceeds a target's capacity or
// the final occupancies disagree with applying every step.
func checkScriptSafe(t *testing.T, from *layout.Layout, steps []Step, sizes, caps []int64) {
	t.Helper()
	occ := make([]float64, from.M)
	for j := 0; j < from.M; j++ {
		occ[j] = from.TargetBytes(j, sizes)
	}
	for i, s := range steps {
		m := s.Move
		if float64(m.Bytes) > float64(caps[m.To])-occ[m.To]+planSlack {
			t.Fatalf("step %d (%s %+v) transiently overflows target %d", i, s.Kind, m, m.To)
		}
		occ[m.To] += float64(m.Bytes)
		occ[m.From] -= float64(m.Bytes)
	}
	for j := range occ {
		if occ[j] > float64(caps[j])+planSlack || occ[j] < -planSlack {
			t.Fatalf("final occupancy of target %d is %g of %d", j, occ[j], caps[j])
		}
	}
}

// rotation builds the 3-object full-capacity rotation (a pure capacity
// cycle) plus a fourth, roomier target usable as scratch.
func rotation(t *testing.T) (from *layout.Layout, plan []layout.Move, sizes, caps []int64) {
	t.Helper()
	const sz = 100
	sizes = []int64{sz, sz, sz}
	caps = []int64{sz, sz, sz, 250}
	from = layout.New(3, 4)
	to := layout.New(3, 4)
	for i := 0; i < 3; i++ {
		from.Set(i, i, 1)
		to.Set(i, (i+1)%3, 1)
	}
	plan, err := layout.MigrationPlan(from, to, sizes)
	if err != nil {
		t.Fatal(err)
	}
	return from, plan, sizes, caps
}

func TestBuildScriptDirectWhenOrderable(t *testing.T) {
	from, plan, sizes, caps := rotation(t)
	caps[0] = 300 // target 0 roomy: plain reordering suffices
	steps, err := BuildScript(from, plan, sizes, caps, ScratchSpec{})
	if err != nil {
		t.Fatal(err)
	}
	if len(steps) != len(plan) {
		t.Fatalf("%d steps for %d moves", len(steps), len(plan))
	}
	for _, s := range steps {
		if s.Kind != StepDirect {
			t.Fatalf("reorderable plan produced %s step", s.Kind)
		}
	}
	checkScriptSafe(t, from, steps, sizes, caps)
}

func TestBuildScriptStagesCycle(t *testing.T) {
	from, plan, sizes, caps := rotation(t)
	steps, err := BuildScript(from, plan, sizes, caps, ScratchSpec{Target: 3, Bytes: 100})
	if err != nil {
		t.Fatal(err)
	}
	if len(steps) != len(plan)+1 {
		t.Fatalf("staged script has %d steps, want %d (one staged pair)", len(steps), len(plan)+1)
	}
	ins, outs := 0, 0
	var inIdx, outIdx, inPos, outPos int
	for i, s := range steps {
		switch s.Kind {
		case StepStageIn:
			ins++
			inIdx, inPos = s.MoveIndex, i
			if s.Move.To != 3 {
				t.Fatalf("stage-in targets %d, want scratch target 3", s.Move.To)
			}
		case StepStageOut:
			outs++
			outIdx, outPos = s.MoveIndex, i
			if s.Move.From != 3 {
				t.Fatalf("stage-out reads from %d, want scratch target 3", s.Move.From)
			}
		}
	}
	if ins != 1 || outs != 1 || inIdx != outIdx || inPos >= outPos {
		t.Fatalf("staging malformed: %d ins (move %d at %d), %d outs (move %d at %d)",
			ins, inIdx, inPos, outs, outIdx, outPos)
	}
	checkScriptSafe(t, from, steps, sizes, caps)
}

func TestBuildScriptWithoutScratchReportsCycle(t *testing.T) {
	from, plan, sizes, caps := rotation(t)
	_, err := BuildScript(from, plan, sizes, caps, ScratchSpec{})
	var cyc *layout.CycleError
	if !errors.As(err, &cyc) {
		t.Fatalf("BuildScript = %v, want *layout.CycleError", err)
	}
	if len(cyc.Objects) != 3 {
		t.Fatalf("cycle names %v, want all 3 objects", cyc.Objects)
	}
}

func TestBuildScriptScratchExhausted(t *testing.T) {
	from, plan, sizes, caps := rotation(t)
	_, err := BuildScript(from, plan, sizes, caps, ScratchSpec{Target: 3, Bytes: 60})
	if !errors.Is(err, ErrScratchExhausted) {
		t.Fatalf("BuildScript = %v, want ErrScratchExhausted", err)
	}
	var se *ScratchError
	if !errors.As(err, &se) || se.NeedBytes != 100 || se.FreeBytes != 60 {
		t.Fatalf("shortfall detail wrong: %+v", se)
	}
	if se.Cycle == nil {
		t.Fatal("scratch error lost the cycle diagnosis")
	}
}

func TestBuildScriptScratchMustFit(t *testing.T) {
	from, plan, sizes, caps := rotation(t)
	// Target 3 has 250 capacity and is empty; a 300-byte reservation
	// cannot be honoured.
	if _, err := BuildScript(from, plan, sizes, caps, ScratchSpec{Target: 3, Bytes: 300}); err == nil {
		t.Fatal("oversized scratch reservation accepted")
	}
	if _, err := BuildScript(from, plan, sizes, caps, ScratchSpec{Target: 9, Bytes: 10}); err == nil {
		t.Fatal("out-of-range scratch target accepted")
	}
}

func TestAutoScratch(t *testing.T) {
	from, plan, sizes, caps := rotation(t)
	to := layout.New(3, 4)
	for i := 0; i < 3; i++ {
		to.Set(i, (i+1)%3, 1)
	}
	spec := AutoScratch(from, to, sizes, caps)
	if spec.Target != 3 {
		t.Fatalf("AutoScratch picked target %d, want the empty target 3", spec.Target)
	}
	if spec.Bytes != 125 {
		t.Fatalf("AutoScratch reserved %d bytes, want half the 250-byte headroom", spec.Bytes)
	}
	steps, err := BuildScript(from, plan, sizes, caps, spec)
	if err != nil {
		t.Fatalf("BuildScript with auto scratch: %v", err)
	}
	checkScriptSafe(t, from, steps, sizes, caps)

	// No headroom anywhere: AutoScratch must admit defeat.
	if spec := AutoScratch(from, to, sizes, caps[:3]); spec.Bytes != 0 {
		t.Fatalf("AutoScratch invented scratch space: %+v", spec)
	}
}
