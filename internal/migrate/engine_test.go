package migrate

import (
	"bytes"
	"context"
	"errors"
	"testing"

	"dblayout/internal/core"
	"dblayout/internal/layout"
	"dblayout/internal/layouttest"
	"dblayout/internal/nlp"
	"dblayout/internal/obs"
	"dblayout/internal/replay"
	"dblayout/internal/rome"
	"dblayout/internal/storage"
)

const mib = int64(1 << 20)

// migrationFixture builds a 6-object, 5-disk system whose migration needs
// six moves, three of which form a capacity cycle: A, B, C fill disks d0-d2
// exactly and rotate one disk over, while D, E swap homes with F between
// the roomier d3 and d4. d3 has enough headroom to host an 8 MiB scratch
// reservation.
func migrationFixture() (*replay.System, *layout.Layout, *layout.Layout) {
	mkDisk := func(capMiB int64) *storage.DiskConfig {
		cfg := storage.Disk15KConfig()
		cfg.CapacityBytes = capMiB * mib
		return &cfg
	}
	sys := &replay.System{
		Objects: []layout.Object{
			{Name: "A", Size: 8 * mib}, {Name: "B", Size: 8 * mib}, {Name: "C", Size: 8 * mib},
			{Name: "D", Size: 4 * mib}, {Name: "E", Size: 4 * mib}, {Name: "F", Size: 4 * mib},
		},
		Devices: []replay.DeviceSpec{
			{Name: "d0", Disk: mkDisk(8)},
			{Name: "d1", Disk: mkDisk(8)},
			{Name: "d2", Disk: mkDisk(8)},
			{Name: "d3", Disk: mkDisk(32)},
			{Name: "d4", Disk: mkDisk(16)},
		},
	}
	from := layout.New(6, 5)
	to := layout.New(6, 5)
	for i := 0; i < 3; i++ {
		from.Set(i, i, 1)
		to.Set(i, (i+1)%3, 1)
	}
	from.Set(3, 3, 1)
	from.Set(4, 3, 1)
	from.Set(5, 4, 1)
	to.Set(3, 4, 1)
	to.Set(4, 4, 1)
	to.Set(5, 3, 1)
	return sys, from, to
}

func fixtureScratch() ScratchSpec { return ScratchSpec{Target: 3, Bytes: 8 * mib} }

func fixtureSizesCaps(sys *replay.System) (sizes, caps []int64) {
	sizes = make([]int64, len(sys.Objects))
	for i, o := range sys.Objects {
		sizes[i] = o.Size
	}
	caps = make([]int64, len(sys.Devices))
	for j := range sys.Devices {
		caps[j] = sys.Devices[j].Capacity()
	}
	return sizes, caps
}

func layoutsEqual(a, b *layout.Layout) bool {
	if a.N != b.N || a.M != b.M {
		return false
	}
	for i := 0; i < a.N; i++ {
		for j := 0; j < a.M; j++ {
			if d := a.At(i, j) - b.At(i, j); d > 1e-9 || d < -1e-9 {
				return false
			}
		}
	}
	return true
}

func TestMigrationExecutesCleanly(t *testing.T) {
	sys, from, to := migrationFixture()
	var journal bytes.Buffer
	reg := obs.NewRegistry()
	res, err := Execute(sys, from, to, nil, replay.Options{Seed: 1}, Options{
		Scratch:         fixtureScratch(),
		CheckpointBytes: 2 * mib,
		Journal:         &journal,
		Metrics:         reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	m := res.Migration
	if !m.Done || m.Aborted || m.Crashed {
		t.Fatalf("migration did not finish cleanly: %+v", m)
	}
	if len(res.Plan) != 6 {
		t.Fatalf("plan has %d moves, want 6", len(res.Plan))
	}
	if len(res.Script) != 7 {
		t.Fatalf("script has %d steps, want 7 (6 moves, one staged)", len(res.Script))
	}
	if m.Committed != len(res.Script) || m.CommittedBytes != ScriptBytes(res.Script) {
		t.Fatalf("committed %d steps / %d bytes, want %d / %d",
			m.Committed, m.CommittedBytes, len(res.Script), ScriptBytes(res.Script))
	}
	if m.DeviceBytes != 2*ScriptBytes(res.Script) {
		t.Fatalf("device I/O %d bytes, want read+write of every chunk = %d",
			m.DeviceBytes, 2*ScriptBytes(res.Script))
	}
	if !layoutsEqual(m.Layout, to) {
		t.Fatalf("final layout differs from target:\n%v\nvs\n%v", m.Layout, to)
	}
	sizes, caps := fixtureSizesCaps(sys)
	if err := m.Layout.CheckCapacity(sizes, caps); err != nil {
		t.Fatalf("final layout violates capacity: %v", err)
	}
	records, err := DecodeJournal(journal.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	ck, err := Recover(records)
	if err != nil {
		t.Fatal(err)
	}
	if !ck.Done {
		t.Fatal("journal does not record completion")
	}
	if got := reg.Counter(obs.Name("migration_committed_bytes_total")).Value(); got != m.CommittedBytes {
		t.Errorf("metrics committed bytes = %d, want %d", got, m.CommittedBytes)
	}
	// The copy I/O must be visible in per-object latency histograms.
	for i := range sys.Objects {
		if res.Replay.ObjectLatency[i].Count == 0 {
			t.Errorf("object %d saw no attributed copy I/O", i)
		}
	}
}

func TestMigrationThrottleStretchesCopy(t *testing.T) {
	sys, from, to := migrationFixture()
	run := func(rate float64) float64 {
		res, err := Execute(sys, from, to, nil, replay.Options{Seed: 1}, Options{
			Scratch:     fixtureScratch(),
			BytesPerSec: rate,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res.Migration.Elapsed
	}
	unthrottled := run(0)
	throttled := run(8 * float64(mib)) // 44 MiB of copy at 8 MiB/s ≥ 5 s
	if throttled < 5.0 {
		t.Errorf("throttled migration took %.2fs, want >= 5s at 8 MiB/s", throttled)
	}
	if throttled < 2*unthrottled {
		t.Errorf("throttle had no effect: %.2fs vs %.2fs unthrottled", throttled, unthrottled)
	}
}

// crashWriter is a journal sink that fails after a fixed number of appends,
// optionally leaving a torn (half-written, newline-less) final line like a
// real crash mid-write.
type crashWriter struct {
	buf       *bytes.Buffer
	remaining int
	torn      bool
}

func (w *crashWriter) Write(p []byte) (int, error) {
	if w.remaining <= 0 {
		if w.torn && len(p) > 1 {
			n := len(p) / 2
			w.buf.Write(p[:n])
			return n, errors.New("injected crash (torn write)")
		}
		return 0, errors.New("injected crash")
	}
	w.remaining--
	return w.buf.Write(p)
}

// TestCrashAtEveryJournalRecord kills the migration after every single
// journal record and restarts it from the surviving journal, asserting the
// stacked runs converge to the target layout with every step committed
// exactly once and capacity invariants intact throughout.
func TestCrashAtEveryJournalRecord(t *testing.T) {
	for _, torn := range []bool{false, true} {
		name := "clean-cut"
		if torn {
			name = "torn-final-line"
		}
		t.Run(name, func(t *testing.T) {
			sys, from, to := migrationFixture()
			sizes, caps := fixtureSizesCaps(sys)
			var journal []byte
			var final *ExecuteResult
			crashes := 0
			for iter := 0; iter < 200; iter++ {
				durable := append([]byte(nil), TruncateTorn(journal)...)
				buf := bytes.NewBuffer(append([]byte(nil), durable...))
				w := &crashWriter{buf: buf, remaining: 1, torn: torn}
				res, err := Execute(sys, from, to, nil, replay.Options{Seed: 1}, Options{
					Scratch:         fixtureScratch(),
					CheckpointBytes: 2 * mib,
					Journal:         w,
					Resume:          durable,
				})
				journal = buf.Bytes()
				if err == nil {
					final = res
					break
				}
				crashes++
				if res == nil || res.Migration == nil || !res.Migration.Crashed {
					t.Fatalf("iteration %d: error %v without a crashed result", iter, err)
				}
				// The surviving journal must recover to a consistent,
				// capacity-respecting intermediate layout.
				live := TruncateTorn(journal)
				if len(live) == 0 {
					continue // crashed before the plan record became durable
				}
				records, derr := DecodeJournal(live)
				if derr != nil {
					t.Fatalf("iteration %d: surviving journal corrupt: %v", iter, derr)
				}
				ck, rerr := Recover(records)
				if rerr != nil {
					t.Fatalf("iteration %d: surviving journal unrecoverable: %v", iter, rerr)
				}
				mid := from.Clone()
				for i, st := range ck.State {
					if st == StateCommitted {
						applyStep(mid, ck.Steps[i])
					}
				}
				if err := mid.CheckIntegrity(); err != nil {
					t.Fatalf("iteration %d: mid-migration layout inconsistent: %v", iter, err)
				}
				if err := mid.CheckCapacity(sizes, caps); err != nil {
					t.Fatalf("iteration %d: mid-migration layout overflows: %v", iter, err)
				}
			}
			if final == nil {
				t.Fatal("migration never completed within 200 crash-resume cycles")
			}
			m := final.Migration
			if !m.Done {
				t.Fatal("final run did not report Done")
			}
			if m.CommittedBytes != ScriptBytes(final.Script) {
				t.Fatalf("committed %d bytes across all runs, want %d (no lost or double-counted bytes)",
					m.CommittedBytes, ScriptBytes(final.Script))
			}
			if !layoutsEqual(m.Layout, to) {
				t.Fatalf("converged layout differs from target:\n%v\nvs\n%v", m.Layout, to)
			}
			// Each step needs >= 3 records, so the crash loop must have
			// bitten many times; a low count means crashes were skipped.
			if minCrashes := 3 * len(final.Script); crashes < minCrashes {
				t.Fatalf("only %d crash-resume cycles for a %d-step script (want >= %d)",
					crashes, len(final.Script), minCrashes)
			}
			// The combined journal commits every step exactly once.
			records, err := DecodeJournal(journal)
			if err != nil {
				t.Fatal(err)
			}
			commits := make([]int, len(final.Script))
			plans, dones := 0, 0
			for _, r := range records {
				switch {
				case r.T == "plan":
					plans++
				case r.T == "done":
					dones++
				case r.T == "state" && r.State == StateCommitted.String():
					commits[r.Step]++
				}
			}
			if plans != 1 || dones != 1 {
				t.Fatalf("journal has %d plan and %d done records, want 1 and 1", plans, dones)
			}
			for i, n := range commits {
				if n != 1 {
					t.Fatalf("step %d committed %d times", i, n)
				}
			}
		})
	}
}

// powerLossWriter models a journal file on a real disk: Write lands in an
// OS buffer and only Sync makes it durable. A crash discards the unsynced
// suffix — the failure mode the fsync-at-commit-point protocol exists for
// (a plain process crash never loses acknowledged writes; a power loss
// does).
type powerLossWriter struct {
	buf       bytes.Buffer
	synced    int // durable prefix length
	remaining int // appends before the injected power loss
}

func (w *powerLossWriter) Write(p []byte) (int, error) {
	if w.remaining <= 0 {
		return 0, errors.New("injected power loss")
	}
	w.remaining--
	return w.buf.Write(p)
}

func (w *powerLossWriter) Sync() error {
	w.synced = w.buf.Len()
	return nil
}

// durable returns what survives the power loss: the synced prefix only.
func (w *powerLossWriter) durable() []byte {
	return append([]byte(nil), w.buf.Bytes()[:w.synced]...)
}

// TestCrashAtSyncBoundary extends the crash-at-every-record torture test
// with power-loss semantics under batched syncs: with SyncEvery=3 a crash
// can land after a progress record was written but before it was synced,
// so the record vanishes even though the engine's append succeeded. The
// stacked runs must still converge with every step committed exactly once
// — lost progress records may only cost recopied bytes, never correctness.
func TestCrashAtSyncBoundary(t *testing.T) {
	sys, from, to := migrationFixture()
	sizes, caps := fixtureSizesCaps(sys)
	var durable []byte
	var final *ExecuteResult
	crashes, discards := 0, 0
	allow := 1
	for iter := 0; iter < 400; iter++ {
		w := &powerLossWriter{remaining: allow}
		w.buf.Write(durable)
		w.synced = len(durable)
		res, err := Execute(sys, from, to, nil, replay.Options{Seed: 1}, Options{
			Scratch:         fixtureScratch(),
			CheckpointBytes: 2 * mib,
			SyncEvery:       3,
			Journal:         w,
			Resume:          durable,
		})
		if err == nil {
			final = res
			break
		}
		crashes++
		if res == nil || res.Migration == nil || !res.Migration.Crashed {
			t.Fatalf("iteration %d: error %v without a crashed result", iter, err)
		}
		if w.buf.Len() > w.synced {
			discards++ // the crash really did swallow an unsynced suffix
		}
		next := w.durable()
		if len(next) > len(durable) {
			allow = 1 // durable progress: go back to crashing ASAP
		} else {
			// No record became durable (the appends since the last sync
			// were all unsynced progress records). Allow one more append
			// next time so the run eventually reaches a forced sync.
			allow++
		}
		durable = next
		if len(durable) == 0 {
			continue
		}
		records, derr := DecodeJournal(durable)
		if derr != nil {
			t.Fatalf("iteration %d: durable journal corrupt: %v", iter, derr)
		}
		ck, rerr := Recover(records)
		if rerr != nil {
			t.Fatalf("iteration %d: durable journal unrecoverable: %v", iter, rerr)
		}
		mid := from.Clone()
		for i, st := range ck.State {
			if st == StateCommitted {
				applyStep(mid, ck.Steps[i])
			}
		}
		if err := mid.CheckIntegrity(); err != nil {
			t.Fatalf("iteration %d: mid-migration layout inconsistent: %v", iter, err)
		}
		if err := mid.CheckCapacity(sizes, caps); err != nil {
			t.Fatalf("iteration %d: mid-migration layout overflows: %v", iter, err)
		}
	}
	if final == nil {
		t.Fatal("migration never completed within 400 power-loss-resume cycles")
	}
	m := final.Migration
	if !m.Done {
		t.Fatal("final run did not report Done")
	}
	if m.CommittedBytes != ScriptBytes(final.Script) {
		t.Fatalf("committed %d bytes across all runs, want %d (no lost or double-counted bytes)",
			m.CommittedBytes, ScriptBytes(final.Script))
	}
	if !layoutsEqual(m.Layout, to) {
		t.Fatalf("converged layout differs from target:\n%v\nvs\n%v", m.Layout, to)
	}
	if crashes < 2*len(final.Script) {
		t.Fatalf("only %d power-loss cycles for a %d-step script", crashes, len(final.Script))
	}
	if discards == 0 {
		t.Fatal("no crash ever discarded an unsynced suffix; the sync boundary was never exercised")
	}
}

// TestJournalWriterSyncBatching pins the sync policy: transition records
// always sync, progress records sync every syncEvery-th append.
func TestJournalWriterSyncBatching(t *testing.T) {
	w := &powerLossWriter{remaining: 1 << 20}
	jw := &journalWriter{w: w, syncEvery: 3}
	must := func(r Record) {
		t.Helper()
		if err := jw.append(r); err != nil {
			t.Fatal(err)
		}
	}
	must(Record{T: "state", Step: 0, State: StateCopying.String()})
	if w.synced != w.buf.Len() {
		t.Fatal("state record not synced immediately")
	}
	must(Record{T: "progress", Step: 0, Done: 1})
	must(Record{T: "progress", Step: 0, Done: 2})
	if w.synced == w.buf.Len() {
		t.Fatal("progress records synced before the batch filled")
	}
	must(Record{T: "progress", Step: 0, Done: 3})
	if w.synced != w.buf.Len() {
		t.Fatal("third progress record did not force a sync")
	}
	must(Record{T: "progress", Step: 0, Done: 4})
	if w.synced == w.buf.Len() {
		t.Fatal("batch counter did not reset after the forced sync")
	}
	must(Record{T: "state", Step: 0, State: StateCopied.String()})
	if w.synced != w.buf.Len() {
		t.Fatal("transition record after unsynced progress not synced")
	}
}

// fixtureInstance mirrors migrationFixture as a solvable layout.Instance so
// RecommendRepair can replan an aborted migration of it.
func fixtureInstance(sys *replay.System) *layout.Instance {
	names := []string{"d0", "d1", "d2", "d3", "d4"}
	model := layouttest.DiskModel()
	targets := make([]*layout.Target, len(names))
	for j, n := range names {
		targets[j] = &layout.Target{Name: n, Capacity: sys.Devices[j].Capacity(), Model: model}
	}
	ws := make([]*rome.Workload, len(sys.Objects))
	for i, o := range sys.Objects {
		overlap := make([]float64, len(sys.Objects))
		for k := range overlap {
			overlap[k] = 0.1
		}
		overlap[i] = 1
		ws[i] = &rome.Workload{
			Name: o.Name, ReadSize: 8192, ReadRate: 5 + float64(i),
			RunCount: 1, Overlap: overlap,
		}
	}
	set, err := rome.NewSet(ws...)
	if err != nil {
		panic(err)
	}
	inst := &layout.Instance{Objects: sys.Objects, Targets: targets, Workloads: set}
	if err := inst.Validate(); err != nil {
		panic(err)
	}
	return inst
}

// TestDestinationFailureAbortsRollsBackAndReplans drives the acceptance
// scenario end to end: a destination disk fails mid-copy, the engine rolls
// the in-flight move back and aborts into a consistent layout, and
// RecommendRepair plus a reconstruction-mode execution evacuate the dead
// disk.
func TestDestinationFailureAbortsRollsBackAndReplans(t *testing.T) {
	sys, from, to := migrationFixture()
	// d4 is the destination of the first script steps (D and E move to
	// it); fail it a few dozen milliseconds in, mid-copy.
	sys.Devices[4].Faults = &storage.FaultSchedule{Fail: &storage.FailFault{At: 0.05}}
	var journal bytes.Buffer
	res, err := Execute(sys, from, to, nil, replay.Options{Seed: 1}, Options{
		Scratch: fixtureScratch(),
		Journal: &journal,
	})
	if !errors.Is(err, ErrMigrationAborted) {
		t.Fatalf("Execute = %v, want ErrMigrationAborted", err)
	}
	m := res.Migration
	if !m.Aborted || m.Done {
		t.Fatalf("result not aborted: %+v", m)
	}
	if len(m.FailedTargets) != 1 || m.FailedTargets[0] != 4 {
		t.Fatalf("failed targets %v, want [4]", m.FailedTargets)
	}
	if m.Committed >= len(res.Script) {
		t.Fatal("abort after every step committed — fault came too late")
	}

	// The journal must record the rollback of the in-flight step and the
	// abort, and recover to the same consistent layout.
	records, err := DecodeJournal(journal.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	ck, err := Recover(records)
	if err != nil {
		t.Fatal(err)
	}
	if !ck.Aborted {
		t.Fatal("journal does not record the abort")
	}
	rolledBack := 0
	for _, st := range ck.State {
		if st == StateRolledBack {
			rolledBack++
		}
	}
	if rolledBack != 1 {
		t.Fatalf("%d steps rolled back, want exactly the in-flight one", rolledBack)
	}
	sizes, caps := fixtureSizesCaps(sys)
	if err := m.Layout.CheckIntegrity(); err != nil {
		t.Fatalf("aborted layout inconsistent: %v", err)
	}
	if err := m.Layout.CheckCapacity(sizes, caps); err != nil {
		t.Fatalf("aborted layout overflows: %v", err)
	}
	// Resuming an aborted journal must be refused.
	if _, err := Execute(sys, from, to, nil, replay.Options{Seed: 1}, Options{
		Scratch: fixtureScratch(),
		Resume:  journal.Bytes(),
	}); !errors.Is(err, ErrMigrationAborted) {
		t.Fatalf("resume of aborted journal = %v, want ErrMigrationAborted", err)
	}

	// Replan the remainder around the dead disk.
	inst := fixtureInstance(sys)
	rep, steps, err := Replan(context.Background(), inst, m, core.Options{NLP: nlp.Options{Seed: 1}}, fixtureScratch())
	if err != nil {
		t.Fatalf("Replan: %v", err)
	}
	for i := 0; i < rep.Layout.N; i++ {
		if rep.Layout.At(i, 4) != 0 {
			t.Fatalf("repair leaves object %d on the failed disk", i)
		}
	}
	if len(steps) == 0 {
		t.Fatal("repair needs data movement but the script is empty")
	}

	// Execute the repair in reconstruction mode on the degraded system.
	sys2, _, _ := migrationFixture()
	sys2.Devices[4].Faults = &storage.FaultSchedule{Fail: &storage.FailFault{At: 0}}
	var journal2 bytes.Buffer
	res2, err := Execute(sys2, m.Layout, rep.Layout, nil, replay.Options{Seed: 1}, Options{
		Scratch:       fixtureScratch(),
		Journal:       &journal2,
		FailedSources: m.FailedTargets,
	})
	if err != nil {
		t.Fatalf("repair execution: %v", err)
	}
	if !res2.Migration.Done {
		t.Fatal("repair migration did not finish")
	}
	if res2.Migration.ReconstructedBytes == 0 {
		t.Fatal("evacuating a dead disk must reconstruct data (no source reads possible)")
	}
	if !layoutsEqual(res2.Migration.Layout, rep.Layout) {
		t.Fatalf("repair converged to the wrong layout:\n%v\nvs\n%v", res2.Migration.Layout, rep.Layout)
	}
}

// TestCrashBetweenRollbackAndAbortCompletesOnResume pins the fault-crash
// protocol: the fault handler journals the step rollback and then the abort
// record, and a crash landing exactly between the two must not let a resume
// skip the rolled-back step and run the rest of the script — that path can
// turn a device fault into a silent "done" that committed nothing. The
// rollback record carries the failed target, and the resumed engine's first
// act is to complete the abort.
func TestCrashBetweenRollbackAndAbortCompletesOnResume(t *testing.T) {
	for budget := 1; budget < 200; budget++ {
		sys, from, to := migrationFixture()
		sys.Devices[4].Faults = &storage.FaultSchedule{Fail: &storage.FailFault{At: 0.05}}
		buf := &bytes.Buffer{}
		w := &crashWriter{buf: buf, remaining: budget}
		_, _ = Execute(sys, from, to, nil, replay.Options{Seed: 1}, Options{
			Scratch: fixtureScratch(),
			Journal: w,
		})
		durable := TruncateTorn(buf.Bytes())
		records, err := DecodeJournal(durable)
		if err != nil {
			t.Fatalf("budget %d: surviving journal corrupt: %v", budget, err)
		}
		ck, err := Recover(records)
		if err != nil {
			t.Fatalf("budget %d: surviving journal unrecoverable: %v", budget, err)
		}
		if !ck.PendingAbort {
			continue // crash landed elsewhere; not the window under test
		}
		if len(ck.Failed) != 1 || ck.Failed[0] != 4 {
			t.Fatalf("pending abort lost the failed target: %v", ck.Failed)
		}

		// Resume on the still-degraded system: the engine must finish the
		// abort as its very first record and report the fault upward.
		sys2, from2, to2 := migrationFixture()
		sys2.Devices[4].Faults = &storage.FaultSchedule{Fail: &storage.FailFault{At: 0}}
		buf2 := bytes.NewBuffer(append([]byte(nil), durable...))
		res, err := Execute(sys2, from2, to2, nil, replay.Options{Seed: 1}, Options{
			Scratch: fixtureScratch(),
			Journal: buf2,
			Resume:  durable,
		})
		if !errors.Is(err, ErrMigrationAborted) {
			t.Fatalf("resume = %v, want ErrMigrationAborted", err)
		}
		m := res.Migration
		if !m.Aborted || m.Done {
			t.Fatalf("resumed result not aborted: %+v", m)
		}
		if len(m.FailedTargets) != 1 || m.FailedTargets[0] != 4 {
			t.Fatalf("resumed abort reports targets %v, want [4]", m.FailedTargets)
		}
		if m.JournalRecords != 1 {
			t.Fatalf("resume appended %d records, want exactly the abort", m.JournalRecords)
		}
		if m.DeviceBytes != 0 {
			t.Fatalf("resume issued %d bytes of device I/O while completing an abort", m.DeviceBytes)
		}
		records, err = DecodeJournal(buf2.Bytes())
		if err != nil {
			t.Fatal(err)
		}
		ck, err = Recover(records)
		if err != nil {
			t.Fatal(err)
		}
		if !ck.Aborted || ck.PendingAbort {
			t.Fatalf("completed journal = %+v, want aborted", ck)
		}
		return
	}
	t.Fatal("no crash budget landed between the rollback and abort records")
}

func TestExecuteResumeRejectsMismatchedPlan(t *testing.T) {
	sys, from, to := migrationFixture()
	var journal bytes.Buffer
	if _, err := Execute(sys, from, to, nil, replay.Options{Seed: 1}, Options{
		Scratch: fixtureScratch(),
		Journal: &journal,
	}); err != nil {
		t.Fatal(err)
	}
	// Shrink one object: the rebuilt script no longer matches the journal.
	sys.Objects[0].Size = 4 * mib
	_, err := Execute(sys, from, to, nil, replay.Options{Seed: 1}, Options{
		Scratch: fixtureScratch(),
		Resume:  journal.Bytes(),
		Journal: &journal,
	})
	if !errors.Is(err, ErrJournalCorrupt) {
		t.Fatalf("mismatched resume = %v, want ErrJournalCorrupt", err)
	}
}

// TestExecuteResumeOfFinishedJournal re-runs a completed migration and gets
// the completed result back without any new simulation work.
func TestExecuteResumeOfFinishedJournal(t *testing.T) {
	sys, from, to := migrationFixture()
	var journal bytes.Buffer
	if _, err := Execute(sys, from, to, nil, replay.Options{Seed: 1}, Options{
		Scratch: fixtureScratch(),
		Journal: &journal,
	}); err != nil {
		t.Fatal(err)
	}
	before := journal.Len()
	res, err := Execute(sys, from, to, nil, replay.Options{Seed: 1}, Options{
		Scratch: fixtureScratch(),
		Resume:  journal.Bytes(),
		Journal: &journal,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Migration.Done || res.Migration.DeviceBytes != 0 {
		t.Fatalf("finished journal re-executed work: %+v", res.Migration)
	}
	if journal.Len() != before {
		t.Error("re-run of a finished journal appended records")
	}
	if !layoutsEqual(res.Migration.Layout, to) {
		t.Error("finished-journal result lost the final layout")
	}
}

// Compile-time check that the replay simulation surface satisfies the
// engine's IO dependency without adapters.
var _ IO = (*replay.BackgroundIO)(nil)
