package migrate

import (
	"fmt"
	"io"
	"strings"

	"dblayout/internal/layout"
	"dblayout/internal/obs"
)

// IO is the simulation surface the engine drives. *replay.BackgroundIO
// satisfies it; tests substitute deterministic fakes.
type IO interface {
	// Now returns the current simulated time in seconds.
	Now() float64
	// After schedules fn to run delay simulated seconds from now.
	After(delay float64, fn func())
	// Devices returns the number of storage targets.
	Devices() int
	// DeviceName returns the name of target j.
	DeviceName(j int) string
	// Capacity returns the capacity of target j in bytes.
	Capacity(j int) int64
	// QueueDepth returns the number of requests waiting on target j.
	QueueDepth(j int) int
	// NewStream allocates a logical stream identifier for sequential I/O.
	NewStream() uint64
	// Submit issues one block request; done receives true when the
	// request failed because the device had failed.
	Submit(dev, obj int, stream uint64, off, size int64, write bool, done func(failed bool))
}

// Options configures a migration run.
type Options struct {
	// BytesPerSec throttles the background copy rate (0 = unthrottled).
	BytesPerSec float64
	// MaxQueueShare bounds the copy stream's share of a device queue: a
	// chunk is deferred while either endpoint's queue is deeper than
	// share/(1-share) outstanding requests. 0 defaults to 0.5 (copy I/O
	// never outnumbers foreground I/O); 1 disables gating.
	MaxQueueShare float64
	// ChunkBytes is the copy granularity (default 1 MiB).
	ChunkBytes int64
	// CheckpointBytes is the journaling granularity for copy progress
	// within a step (default 16 MiB). Smaller values lose less work to a
	// crash at the cost of more journal records.
	CheckpointBytes int64
	// Scratch is the staging reservation BuildScript may use to break
	// capacity cycles.
	Scratch ScratchSpec
	// Journal receives write-ahead records. A nil journal still executes
	// correctly but cannot be resumed after a crash. When the writer is
	// sync-capable (implements Sync() error, e.g. *os.File) every
	// state-transition record is fsynced before the transition applies.
	Journal io.Writer
	// SyncEvery batches journal fsyncs of progress records: up to
	// SyncEvery-1 consecutive progress records may stay unsynced before a
	// sync is forced (0 or 1 syncs after every record). Transition
	// records (plan, state, abort, done) always sync regardless — losing
	// a progress record only costs a recopy from the previous durable
	// mark, losing a transition record would break exactly-once resume.
	SyncEvery int
	// Resume holds the contents of a prior journal for crash recovery.
	// Execute decodes and recovers it, verifies the script matches, and
	// continues from the checkpoint, appending new records to Journal —
	// which should therefore be the same journal opened for append.
	Resume []byte
	// Checkpoint resumes an engine directly from recovered state
	// (normally set by Execute from Resume).
	Checkpoint *Checkpoint
	// FailedSources lists targets known to have failed. Steps reading
	// from them skip the source read and model reconstruction from
	// redundancy or backup as a destination-only write. Used when
	// executing a repair plan, whose moves source from dead targets.
	FailedSources []int
	// MapperLayout, when set, is the regular layout used to place
	// foreground I/O during Execute. It exists because a migration's
	// `current` layout may be non-regular mid-plan (after an abort), but
	// the volume mapper needs a regular one. Defaults to `current`.
	MapperLayout *layout.Layout
	// Metrics, when non-nil, receives migration_* counters, gauges and
	// histograms.
	Metrics *obs.Registry
}

func (o Options) withDefaults() Options {
	if o.ChunkBytes <= 0 {
		o.ChunkBytes = 1 << 20
	}
	if o.CheckpointBytes <= 0 {
		o.CheckpointBytes = 16 << 20
	}
	if o.MaxQueueShare == 0 {
		o.MaxQueueShare = 0.5
	}
	return o
}

// Result reports how a migration run ended. Exactly one of Done, Aborted or
// Crashed is set; Layout is always the consistent layout implied by the
// journal (base plus committed steps).
type Result struct {
	Steps     []Step
	State     []StepState // final state of every step
	Committed int         // steps committed over the whole migration (including before a resume)
	// CommittedBytes counts each committed step's bytes exactly once
	// across all runs of the migration — the "no lost or double-counted
	// bytes" invariant crash tests assert on.
	CommittedBytes int64
	// DeviceBytes counts device I/O issued by this run only (reads +
	// writes, including any recopied span after a resume).
	DeviceBytes int64
	// ReconstructedBytes counts destination writes whose source read was
	// skipped because the source target had failed.
	ReconstructedBytes int64
	JournalRecords     int // records this run appended
	Done               bool
	Aborted            bool
	Crashed            bool
	FailedTargets      []int
	Err                error // detail for Aborted (AbortError) or Crashed
	Start, End         float64
	Elapsed            float64
	Layout             *layout.Layout
}

// Engine executes a migration script against a live simulation, one step at
// a time, one chunk in flight. Every state transition is journaled before
// it takes effect; see Checkpoint for the resume semantics.
type Engine struct {
	io    IO
	steps []Step
	opt   Options
	jw    *journalWriter

	state    []StepState
	progress []int64 // copied bytes per step (authoritative for the live run)
	ckMark   int64   // last journaled progress for the current step
	cur      int

	layout     *layout.Layout
	writeBase  int64 // destination write offset base for the current step
	readStream uint64
	wrStream   uint64

	throttleAt float64 // simulated time the next chunk's tokens are available
	chunkStart float64
	gateDepth  int // max tolerated queue depth, -1 = no gating
	failedSrc  map[int]bool

	// pendingAbort, when non-nil, holds the failed targets of an abort
	// decision recovered from a rollback record whose abort record the
	// crash swallowed; Start completes it before any other work.
	pendingAbort       []int
	pendingAbortReason string

	stopped bool
	res     Result
	onDone  func(*Result)

	copied int64 // bytes written to destinations this run (series feed)

	mCommitted    *obs.Counter
	mBytes        *obs.Counter
	mDeviceBytes  *obs.Counter
	mRecon        *obs.Counter
	mAborts       *obs.Counter
	mJournal      *obs.Counter
	mProgress     *obs.Gauge
	mState        *obs.Gauge
	mStep         *obs.Gauge
	mRate         *obs.Gauge
	mETA          *obs.Gauge
	mCopied       *obs.Series
	mChunkLatency *obs.Histogram
	mMoveBytes    *obs.Histogram
}

// migration_state gauge values: the engine's lifecycle as a scrapeable enum.
const (
	stateIdle    = 0
	stateRunning = 1
	stateDone    = 2
	stateAborted = 3
	stateCrashed = 4
)

// gatePoll is how long (simulated seconds) a queue-gated chunk waits before
// re-checking the device queues.
const gatePoll = 2e-3

// NewEngine prepares an engine over sim for the given script, starting from
// base (the layout before any uncommitted work) or, when opt.Checkpoint is
// set, from the recovered state. done is invoked exactly once with the
// result when the migration completes, aborts, or crashes.
func NewEngine(sim IO, base *layout.Layout, steps []Step, opt Options, done func(*Result)) (*Engine, error) {
	opt = opt.withDefaults()
	if opt.MaxQueueShare < 0 || opt.MaxQueueShare > 1 {
		return nil, fmt.Errorf("migrate: MaxQueueShare %g outside [0,1]", opt.MaxQueueShare)
	}
	if err := validateSteps(steps); err != nil {
		return nil, fmt.Errorf("migrate: bad script: %w", err)
	}
	for i, s := range steps {
		if s.Move.Object >= base.N || s.Move.From >= base.M || s.Move.To >= base.M {
			return nil, fmt.Errorf("migrate: step %d (%+v) outside %dx%d layout", i, s.Move, base.N, base.M)
		}
		if s.Move.From >= sim.Devices() || s.Move.To >= sim.Devices() {
			return nil, fmt.Errorf("migrate: step %d references device %d of %d", i, s.Move.To, sim.Devices())
		}
	}
	e := &Engine{
		io:        sim,
		steps:     steps,
		opt:       opt,
		jw:        &journalWriter{w: opt.Journal, syncEvery: opt.SyncEvery},
		state:     make([]StepState, len(steps)),
		progress:  make([]int64, len(steps)),
		layout:    base.Clone(),
		gateDepth: -1,
		failedSrc: map[int]bool{},
		onDone:    done,
	}
	if opt.MaxQueueShare < 1 {
		e.gateDepth = int(opt.MaxQueueShare / (1 - opt.MaxQueueShare))
	}
	for _, j := range opt.FailedSources {
		e.failedSrc[j] = true
	}
	if ck := opt.Checkpoint; ck != nil {
		if ck.Aborted {
			return nil, fmt.Errorf("migrate: journal records an abort; aborted migrations are replanned, not resumed: %w", ErrMigrationAborted)
		}
		if len(ck.State) != len(steps) {
			return nil, fmt.Errorf("migrate: checkpoint covers %d steps, script has %d", len(ck.State), len(steps))
		}
		if ck.PendingAbort {
			e.pendingAbort = append([]int{}, ck.Failed...)
			e.pendingAbortReason = ck.PendingAbortReason
			if e.pendingAbortReason == "" {
				e.pendingAbortReason = "device fault (recovered rollback)"
			}
		}
		copy(e.state, ck.State)
		copy(e.progress, ck.Progress)
		for i, st := range e.state {
			if st == StateCommitted {
				applyStep(e.layout, steps[i])
				e.res.Committed++
				e.res.CommittedBytes += steps[i].Move.Bytes
			}
		}
	}
	if r := opt.Metrics; r != nil {
		e.mCommitted = r.Counter(obs.Name("migration_committed_moves_total"))
		e.mBytes = r.Counter(obs.Name("migration_committed_bytes_total"))
		e.mDeviceBytes = r.Counter(obs.Name("migration_device_bytes_total"))
		e.mRecon = r.Counter(obs.Name("migration_reconstructed_bytes_total"))
		e.mAborts = r.Counter(obs.Name("migration_aborts_total"))
		e.mJournal = r.Counter(obs.Name("migration_journal_records_total"))
		e.mProgress = r.Gauge(obs.Name("migration_progress_ratio"))
		e.mState = r.Gauge(obs.Name("migration_state"))
		e.mStep = r.Gauge(obs.Name("migration_current_step"))
		e.mRate = r.Gauge(obs.Name("migration_copy_rate_bytes_per_second"))
		e.mETA = r.Gauge(obs.Name("migration_eta_seconds"))
		e.mCopied = r.Series(obs.Name("migration_copied_bytes"), 0)
		e.mChunkLatency = r.Histogram(obs.Name("migration_chunk_latency_seconds"), obs.LatencyBuckets())
		e.mMoveBytes = r.Histogram(obs.Name("migration_move_bytes"), obs.ByteBuckets())
		e.mState.Set(stateIdle)
	}
	return e, nil
}

// Start begins (or resumes) execution. For a fresh run it journals the plan
// record first; a resumed run appends to a journal that already has one.
func (e *Engine) Start() {
	e.res.Start = e.io.Now()
	e.res.Steps = e.steps
	e.mState.Set(stateRunning)
	if e.opt.Checkpoint == nil {
		scratch := e.opt.Scratch
		if !e.journal(Record{T: "plan", Steps: e.steps, Scratch: &scratch}) {
			return
		}
	} else if e.pendingAbort != nil {
		// The previous run decided to abort (it rolled a step back on a
		// device fault) but crashed before the abort record. Complete
		// that decision now, exactly once.
		e.completeAbort(e.pendingAbort, e.pendingAbortReason)
		return
	}
	e.next()
}

// next advances to the first step that still needs work.
func (e *Engine) next() {
	if e.stopped {
		return
	}
	for e.cur < len(e.steps) && (e.state[e.cur] == StateCommitted || e.state[e.cur] == StateRolledBack) {
		e.cur++
	}
	if e.cur >= len(e.steps) {
		e.complete()
		return
	}
	e.mStep.Set(float64(e.cur))
	s := e.steps[e.cur]
	e.writeBase = e.occupied(s.Move.To)
	e.readStream = e.io.NewStream()
	e.wrStream = e.io.NewStream()
	e.ckMark = e.progress[e.cur]
	switch e.state[e.cur] {
	case StatePlanned:
		if !e.journal(Record{T: "state", Step: e.cur, State: StateCopying.String()}) {
			return
		}
		e.state[e.cur] = StateCopying
		e.copyLoop()
	case StateCopying:
		// Resumed mid-copy: the copy restarts at the last journaled
		// progress mark; anything past it was not durable.
		e.copyLoop()
	case StateCopied:
		// Resumed after the copy finished but before the commit record:
		// re-commit without recopying.
		e.commit()
	}
}

// occupied returns target j's committed byte occupancy, the base offset new
// copies write at.
func (e *Engine) occupied(j int) int64 {
	var b int64
	for i := 0; i < e.layout.N; i++ {
		b += int64(e.layout.At(i, j) * float64(e.sizeOf(i)))
	}
	return b
}

func (e *Engine) sizeOf(obj int) int64 {
	s := e.steps
	for i := range s {
		if s[i].Move.Object == obj && s[i].Move.Fraction > 0 {
			return int64(float64(s[i].Move.Bytes) / s[i].Move.Fraction)
		}
	}
	return 0
}

// copyLoop issues the next chunk of the current step, honouring the
// byte-rate throttle, or finishes the copy phase when all bytes are moved.
func (e *Engine) copyLoop() {
	if e.stopped {
		return
	}
	s := e.steps[e.cur]
	if e.progress[e.cur] >= s.Move.Bytes {
		if !e.journal(Record{T: "state", Step: e.cur, State: StateCopied.String()}) {
			return
		}
		e.state[e.cur] = StateCopied
		e.commit()
		return
	}
	chunk := e.opt.ChunkBytes
	if rem := s.Move.Bytes - e.progress[e.cur]; rem < chunk {
		chunk = rem
	}
	now := e.io.Now()
	at := now
	if e.opt.BytesPerSec > 0 {
		if e.throttleAt < now {
			e.throttleAt = now
		}
		at = e.throttleAt
		e.throttleAt += float64(chunk) / e.opt.BytesPerSec
	}
	if at > now {
		e.io.After(at-now, func() { e.issueChunk(chunk) })
	} else {
		e.issueChunk(chunk)
	}
}

// issueChunk performs one read-then-write chunk copy, deferring while either
// endpoint's queue is busier than the configured share allows.
func (e *Engine) issueChunk(chunk int64) {
	if e.stopped {
		return
	}
	s := e.steps[e.cur]
	src, dst := s.Move.From, s.Move.To
	if e.gateDepth >= 0 && (e.io.QueueDepth(src) > e.gateDepth || e.io.QueueDepth(dst) > e.gateDepth) {
		e.io.After(gatePoll, func() { e.issueChunk(chunk) })
		return
	}
	readOff := clampOffset(e.progress[e.cur], chunk, e.io.Capacity(src))
	writeOff := clampOffset(e.writeBase+e.progress[e.cur], chunk, e.io.Capacity(dst))
	e.chunkStart = e.io.Now()
	if e.failedSrc[src] {
		// The source is gone: model reconstruction from redundancy or
		// backup as a destination-only write.
		e.res.ReconstructedBytes += chunk
		e.mRecon.Add(chunk)
		e.io.Submit(dst, s.Move.Object, e.wrStream, writeOff, chunk, true, func(failed bool) {
			e.chunkWritten(chunk, dst, failed)
		})
		return
	}
	e.io.Submit(src, s.Move.Object, e.readStream, readOff, chunk, false, func(failed bool) {
		if e.stopped {
			return
		}
		if failed {
			e.fault(src, "source read failed")
			return
		}
		e.res.DeviceBytes += chunk
		e.io.Submit(dst, s.Move.Object, e.wrStream, writeOff, chunk, true, func(failed bool) {
			e.chunkWritten(chunk, dst, failed)
		})
	})
}

func clampOffset(off, size, capacity int64) int64 {
	if max := capacity - size; off > max && max >= 0 {
		return max
	}
	if off < 0 {
		return 0
	}
	return off
}

func (e *Engine) chunkWritten(chunk int64, dst int, failed bool) {
	if e.stopped {
		return
	}
	if failed {
		e.fault(dst, "destination write failed")
		return
	}
	e.res.DeviceBytes += chunk
	e.mDeviceBytes.Add(chunk)
	e.mChunkLatency.Observe(e.io.Now() - e.chunkStart)
	e.progress[e.cur] += chunk
	e.copied += chunk
	e.mCopied.Record(e.io.Now(), float64(e.copied))
	if rate := e.mCopied.Rate(); rate > 0 {
		e.mRate.Set(rate)
		remain := ScriptBytes(e.steps) - e.res.CommittedBytes - e.progress[e.cur]
		if remain < 0 {
			remain = 0
		}
		e.mETA.Set(float64(remain) / rate)
	}
	if e.progress[e.cur]-e.ckMark >= e.opt.CheckpointBytes && e.progress[e.cur] < e.steps[e.cur].Move.Bytes {
		if !e.journal(Record{T: "progress", Step: e.cur, Done: e.progress[e.cur]}) {
			return
		}
		e.ckMark = e.progress[e.cur]
	}
	e.copyLoop()
}

// commit journals the commit record and applies the step to the layout.
func (e *Engine) commit() {
	if !e.journal(Record{T: "state", Step: e.cur, State: StateCommitted.String()}) {
		return
	}
	s := e.steps[e.cur]
	e.state[e.cur] = StateCommitted
	applyStep(e.layout, s)
	e.res.Committed++
	e.res.CommittedBytes += s.Move.Bytes
	e.mCommitted.Inc()
	e.mBytes.Add(s.Move.Bytes)
	e.mMoveBytes.Observe(float64(s.Move.Bytes))
	e.mProgress.Set(float64(e.res.CommittedBytes) / float64(ScriptBytes(e.steps)))
	e.cur++
	e.next()
}

// fault reacts to a failed device: the in-flight step rolls back (its
// partial destination copy is abandoned; the source copy, if the source
// survives, remains authoritative), the abort is journaled, and the engine
// stops in a consistent layout for RecommendRepair to replan from. The
// rollback record carries the failed targets so a crash between it and the
// abort record can still complete the abort on resume — without that, the
// resume would skip the rolled-back step and a repeatedly faulting device
// could turn an abort into a silent no-op "done".
func (e *Engine) fault(dev int, reason string) {
	if e.state[e.cur] == StateCopying {
		if !e.journal(Record{T: "state", Step: e.cur, State: StateRolledBack.String(),
			Failed: []int{dev}, Reason: reason}) {
			return
		}
		e.state[e.cur] = StateRolledBack
		e.progress[e.cur] = 0
	}
	e.completeAbort([]int{dev}, reason)
}

// completeAbort journals the abort record and finishes the migration as
// aborted. Called from fault and from a resume whose checkpoint rolled a step
// back but crashed before this record landed.
func (e *Engine) completeAbort(failed []int, reason string) {
	if !e.journal(Record{T: "abort", Failed: failed, Reason: reason}) {
		return
	}
	names := make([]string, len(failed))
	for i, dev := range failed {
		names[i] = e.io.DeviceName(dev)
	}
	e.res.Aborted = true
	e.res.FailedTargets = failed
	e.res.Err = &AbortError{Failed: failed, Reason: fmt.Sprintf("%s (%s)", reason, strings.Join(names, ", "))}
	e.mAborts.Inc()
	e.finish()
}

func (e *Engine) complete() {
	if !e.journal(Record{T: "done"}) {
		return
	}
	e.res.Done = true
	e.finish()
}

// journal appends one record, treating any write failure as a crash: the
// engine stops immediately without applying the transition the record
// announced. Returns false when the engine crashed.
func (e *Engine) journal(r Record) bool {
	if err := e.jw.append(r); err != nil {
		e.res.Crashed = true
		e.res.Err = fmt.Errorf("migrate: journal write failed: %w", err)
		e.finish()
		return false
	}
	if e.jw.w != nil {
		e.res.JournalRecords++
		e.mJournal.Inc()
	}
	return true
}

// finish freezes the result and reports it. Idempotent.
func (e *Engine) finish() {
	if e.stopped {
		return
	}
	e.stopped = true
	e.res.End = e.io.Now()
	e.res.Elapsed = e.res.End - e.res.Start
	switch {
	case e.res.Done:
		e.mState.Set(stateDone)
		e.mETA.Set(0)
	case e.res.Aborted:
		e.mState.Set(stateAborted)
	case e.res.Crashed:
		e.mState.Set(stateCrashed)
	}
	e.res.Layout = e.layout.Clone()
	e.res.State = append([]StepState(nil), e.state...)
	if e.onDone != nil {
		e.onDone(&e.res)
	}
}

// Result returns the result so far; definitive once the engine has stopped.
func (e *Engine) Result() *Result { return &e.res }
