package migrate

import (
	"fmt"

	"dblayout/internal/layout"
)

// StepKind classifies an executable migration step.
type StepKind uint8

const (
	// StepDirect copies data straight from its plan source to its plan
	// destination.
	StepDirect StepKind = iota
	// StepStageIn parks data on the scratch target to break a capacity
	// cycle; a later StepStageOut for the same plan move completes it.
	StepStageIn
	// StepStageOut moves previously staged data from the scratch target
	// to its plan destination.
	StepStageOut
)

func (k StepKind) String() string {
	switch k {
	case StepDirect:
		return "direct"
	case StepStageIn:
		return "stage-in"
	case StepStageOut:
		return "stage-out"
	}
	return fmt.Sprintf("StepKind(%d)", uint8(k))
}

// Step is one executable unit of a migration script. Each step is a single
// copy-then-commit data movement; staged plan moves expand into a StageIn /
// StageOut pair sharing the same MoveIndex.
type Step struct {
	Kind      StepKind    `json:"k"`
	Move      layout.Move `json:"m"` // the movement this step performs (From/To already resolved for staging)
	MoveIndex int         `json:"i"` // index of the originating move in the source plan
}

// ScratchSpec reserves part of a real target as staging space for breaking
// capacity cycles. The reservation is modeled honestly: while data is
// staged it occupies the scratch target in the layout matrix, so every
// intermediate state of a migration is a valid, capacity-checked layout.
type ScratchSpec struct {
	Target int   `json:"target"`
	Bytes  int64 `json:"bytes"`
}

// AutoScratch picks a scratch reservation for migrating between the two
// layouts: half the largest byte headroom that exists on some target under
// both endpoint layouts. A zero-Bytes spec means no target has slack — a
// deadlocked plan between such layouts is unexecutable.
func AutoScratch(from, to *layout.Layout, sizes, capacities []int64) ScratchSpec {
	best, bestBytes := -1, int64(0)
	for j := 0; j < len(capacities); j++ {
		free := float64(capacities[j]) - from.TargetBytes(j, sizes)
		if f := float64(capacities[j]) - to.TargetBytes(j, sizes); f < free {
			free = f
		}
		if b := int64(free); b > bestBytes {
			best, bestBytes = j, b
		}
	}
	if best < 0 {
		return ScratchSpec{}
	}
	return ScratchSpec{Target: best, Bytes: bestBytes / 2}
}

// BuildScript turns a migration plan into an executable step sequence whose
// intermediate states never exceed any target's capacity under
// copy-then-commit semantics. Plans with a safe order become direct steps in
// that order; capacity cycles are broken by staging the smallest deadlocked
// move through the scratch reservation. It returns a *layout.CycleError when
// a cycle exists but no scratch was configured, a *ScratchError (unwrapping
// to ErrScratchExhausted) when the reservation is too small, and a
// *layout.PlanOverflowError when some move can never fit regardless of
// order.
func BuildScript(from *layout.Layout, plan []layout.Move, sizes, capacities []int64, scratch ScratchSpec) ([]Step, error) {
	ordered, err := layout.OrderPlan(from, plan, sizes, capacities)
	if err == nil {
		steps := make([]Step, len(ordered))
		at := indexPlan(plan)
		for i, m := range ordered {
			steps[i] = Step{Kind: StepDirect, Move: m, MoveIndex: at[m]}
		}
		return steps, nil
	}
	var cyc *layout.CycleError
	if !asCycle(err, &cyc) {
		return nil, err
	}
	if scratch.Bytes <= 0 {
		return nil, cyc
	}
	return stageScript(from, plan, sizes, capacities, scratch)
}

// indexPlan maps each move back to its index in the plan. Duplicate moves
// (identical in every field) are interchangeable, so first-wins is fine.
func indexPlan(plan []layout.Move) map[layout.Move]int {
	at := make(map[layout.Move]int, len(plan))
	for i := len(plan) - 1; i >= 0; i-- {
		at[plan[i]] = i
	}
	return at
}

func asCycle(err error, out **layout.CycleError) bool {
	c, ok := err.(*layout.CycleError)
	if ok {
		*out = c
	}
	return ok
}

// stageScript runs the greedy ordering with scratch staging: prefer
// completing staged moves (frees scratch), then direct moves, and on a
// deadlock stage the smallest stalled move that fits the remaining scratch
// reservation.
func stageScript(from *layout.Layout, plan []layout.Move, sizes, capacities []int64, scratch ScratchSpec) ([]Step, error) {
	if scratch.Target < 0 || scratch.Target >= from.M {
		return nil, fmt.Errorf("migrate: scratch target %d outside [0,%d)", scratch.Target, from.M)
	}
	occ := make([]float64, from.M)
	for j := 0; j < from.M; j++ {
		occ[j] = from.TargetBytes(j, sizes)
	}
	scratchFree := scratch.Bytes
	if occ[scratch.Target]+float64(scratch.Bytes) > float64(capacities[scratch.Target])+planSlack {
		return nil, fmt.Errorf("migrate: scratch reservation of %d bytes does not fit on target %d (%d of %d bytes used)",
			scratch.Bytes, scratch.Target, int64(occ[scratch.Target]), capacities[scratch.Target])
	}
	// free reports placeable bytes on target j for ordinary copies; the
	// unused part of the scratch reservation is off-limits to them.
	free := func(j int) float64 {
		f := float64(capacities[j]) - occ[j]
		if j == scratch.Target {
			f -= float64(scratchFree)
		}
		return f
	}

	pending := make([]int, len(plan)) // plan indices not yet started
	for i := range pending {
		pending[i] = i
	}
	var parked []int // plan indices staged on scratch, awaiting stage-out
	var script []Step
	for len(pending)+len(parked) > 0 {
		// 1. Complete a staged move whose destination now has room.
		staged := -1
		for pi, idx := range parked {
			if float64(plan[idx].Bytes) <= free(plan[idx].To)+planSlack {
				staged = pi
				break
			}
		}
		if staged >= 0 {
			idx := parked[staged]
			m := plan[idx]
			script = append(script, Step{
				Kind:      StepStageOut,
				Move:      layout.Move{Object: m.Object, From: scratch.Target, To: m.To, Fraction: m.Fraction, Bytes: m.Bytes},
				MoveIndex: idx,
			})
			occ[m.To] += float64(m.Bytes)
			occ[scratch.Target] -= float64(m.Bytes)
			scratchFree += m.Bytes
			parked = append(parked[:staged], parked[staged+1:]...)
			continue
		}
		// 2. Run a direct move that fits.
		direct := -1
		for pi, idx := range pending {
			if float64(plan[idx].Bytes) <= free(plan[idx].To)+planSlack {
				direct = pi
				break
			}
		}
		if direct >= 0 {
			idx := pending[direct]
			m := plan[idx]
			script = append(script, Step{Kind: StepDirect, Move: m, MoveIndex: idx})
			occ[m.To] += float64(m.Bytes)
			occ[m.From] -= float64(m.Bytes)
			pending = append(pending[:direct], pending[direct+1:]...)
			continue
		}
		// 3. Deadlock: stage the smallest stalled move that fits the
		// remaining reservation. The staged copy always fits physically
		// because staged bytes only ever consume the reservation.
		cyc := layout.PlanCycle(plan, pending)
		stage, need := -1, int64(0)
		for pi, idx := range pending {
			b := plan[idx].Bytes
			if need == 0 || b < need {
				need = b
			}
			if b <= scratchFree && (stage < 0 || b < plan[pending[stage]].Bytes) {
				stage = pi
			}
		}
		if stage < 0 {
			if cyc == nil && len(pending) > 0 {
				m := plan[pending[0]]
				return nil, &layout.PlanOverflowError{
					Step: pending[0], Move: m, NeedBytes: m.Bytes,
					FreeBytes: int64(free(m.To)),
				}
			}
			return nil, &ScratchError{Cycle: cyc, NeedBytes: need, FreeBytes: scratchFree}
		}
		idx := pending[stage]
		m := plan[idx]
		script = append(script, Step{
			Kind:      StepStageIn,
			Move:      layout.Move{Object: m.Object, From: m.From, To: scratch.Target, Fraction: m.Fraction, Bytes: m.Bytes},
			MoveIndex: idx,
		})
		occ[scratch.Target] += float64(m.Bytes)
		occ[m.From] -= float64(m.Bytes)
		scratchFree -= m.Bytes
		pending = append(pending[:stage], pending[stage+1:]...)
		parked = append(parked, idx)
	}
	return script, nil
}

// planSlack is the byte tolerance used when comparing float occupancies
// against integer capacities, mirroring the one in package layout.
const planSlack = 0.5

// ScriptBytes sums the data volume a script copies, counting staged moves
// twice (once into scratch, once out).
func ScriptBytes(steps []Step) int64 {
	var total int64
	for _, s := range steps {
		total += s.Move.Bytes
	}
	return total
}

// applyStep commits a step's movement to the layout matrix.
func applyStep(l *layout.Layout, s Step) {
	m := s.Move
	l.Set(m.Object, m.From, clampFrac(l.At(m.Object, m.From)-m.Fraction))
	l.Set(m.Object, m.To, l.At(m.Object, m.To)+m.Fraction)
}

func clampFrac(v float64) float64 {
	if v < 0 {
		return 0
	}
	return v
}
