package costmodel

import (
	"bytes"
	"math"
	"testing"
	"testing/quick"

	"dblayout/internal/storage"
)

func TestCurveAt(t *testing.T) {
	c := Curve{Contention: []float64{0, 2, 4}, Cost: []float64{1e-3, 3e-3, 5e-3}}
	cases := []struct{ chi, want float64 }{
		{-1, 1e-3}, {0, 1e-3}, {1, 2e-3}, {2, 3e-3}, {3, 4e-3}, {4, 5e-3}, {10, 5e-3},
	}
	for _, tc := range cases {
		if got := c.At(tc.chi); math.Abs(got-tc.want) > 1e-12 {
			t.Errorf("At(%g) = %g, want %g", tc.chi, got, tc.want)
		}
	}
}

func TestCurveValid(t *testing.T) {
	bad := []Curve{
		{},
		{Contention: []float64{0, 1}, Cost: []float64{1e-3}},
		{Contention: []float64{0, 0}, Cost: []float64{1e-3, 2e-3}},
		{Contention: []float64{0, 1}, Cost: []float64{1e-3, -1}},
	}
	for i, c := range bad {
		if c.Valid() == nil {
			t.Errorf("curve %d should be invalid", i)
		}
	}
	good := Curve{Contention: []float64{0, 1}, Cost: []float64{1e-3, 2e-3}}
	if err := good.Valid(); err != nil {
		t.Errorf("good curve rejected: %v", err)
	}
}

// flatTable builds a table whose cost equals a known separable function so
// interpolation can be checked analytically.
func flatTable() Table {
	sizes := []float64{4096, 16384, 65536}
	runs := []float64{1, 8, 64}
	t := Table{Sizes: sizes, RunCounts: runs}
	t.Curves = make([][]Curve, len(sizes))
	for si := range sizes {
		t.Curves[si] = make([]Curve, len(runs))
		for ri := range runs {
			base := 1e-3 * float64(si+1) * float64(ri+1)
			t.Curves[si][ri] = Curve{
				Contention: []float64{0, 4},
				Cost:       []float64{base, 2 * base},
			}
		}
	}
	return t
}

func TestTableLookupAtGridPoints(t *testing.T) {
	tab := flatTable()
	for si, s := range tab.Sizes {
		for ri, r := range tab.RunCounts {
			want := 1e-3 * float64(si+1) * float64(ri+1)
			if got := tab.Lookup(s, r, 0); math.Abs(got-want) > 1e-12 {
				t.Errorf("Lookup(%g,%g,0) = %g, want %g", s, r, got, want)
			}
		}
	}
}

func TestTableLookupClamps(t *testing.T) {
	tab := flatTable()
	if got := tab.Lookup(1024, 0.5, -3); got != tab.Lookup(4096, 1, 0) {
		t.Errorf("below-range lookup not clamped: %g", got)
	}
	if got := tab.Lookup(1<<30, 1e6, 100); got != tab.Lookup(65536, 64, 4) {
		t.Errorf("above-range lookup not clamped: %g", got)
	}
}

func TestTableLookupInterpolatesMonotonically(t *testing.T) {
	tab := flatTable()
	prev := 0.0
	for s := 4096.0; s <= 65536; s *= 1.3 {
		got := tab.Lookup(s, 1, 0)
		if got < prev {
			t.Fatalf("interpolation not monotone in size at %g", s)
		}
		prev = got
	}
}

// Property: lookups are always within the min/max cost of the table.
func TestLookupBoundsProperty(t *testing.T) {
	tab := flatTable()
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, row := range tab.Curves {
		for _, c := range row {
			for _, v := range c.Cost {
				lo = math.Min(lo, v)
				hi = math.Max(hi, v)
			}
		}
	}
	f := func(s, r, chi uint32) bool {
		size := 1000 + float64(s%100000)
		run := 0.5 + float64(r%200)
		c := float64(chi%16) - 2
		got := tab.Lookup(size, run, c)
		return got >= lo-1e-12 && got <= hi+1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func diskFactory(e *storage.Engine) storage.Device {
	return storage.NewDisk(e, "cal-disk", storage.Disk15KConfig())
}

func ssdFactory(e *storage.Engine) storage.Device {
	return storage.NewSSD(e, "cal-ssd", storage.SSD32Config())
}

func TestCalibrateDiskShape(t *testing.T) {
	m := Calibrate("disk15k", diskFactory, FastGrid())
	if err := m.Valid(); err != nil {
		t.Fatal(err)
	}

	// Sequential requests must be much cheaper than random at zero
	// contention...
	seq := m.Cost(false, 8192, 64, 0)
	rnd := m.Cost(false, 8192, 1, 0)
	if seq >= rnd/4 {
		t.Errorf("sequential cost %.3gms not ≪ random %.3gms at chi=0", seq*1e3, rnd*1e3)
	}
	// ...and the advantage must collapse under heavy contention (Fig. 8).
	seqHi := m.Cost(false, 8192, 64, 6)
	if seqHi < 2*seq {
		t.Errorf("no interference collapse: chi=0 %.3gms vs chi=6 %.3gms", seq*1e3, seqHi*1e3)
	}
	// Random request cost should not *increase* much with contention
	// (scheduling gains; Fig. 8 shows it gently decreasing).
	rndHi := m.Cost(false, 8192, 1, 6)
	if rndHi > rnd*1.1 {
		t.Errorf("random cost grew with contention: %.3gms -> %.3gms", rnd*1e3, rndHi*1e3)
	}
	// Bigger requests cost more (transfer component).
	if m.Cost(false, 65536, 1, 0) <= m.Cost(false, 8192, 1, 0) {
		t.Errorf("64K random not costlier than 8K")
	}
}

func TestCalibrateSSDShape(t *testing.T) {
	m := Calibrate("ssd", ssdFactory, FastGrid())
	if err := m.Valid(); err != nil {
		t.Fatal(err)
	}
	// Flat with respect to sequentiality and contention.
	r1 := m.Cost(false, 8192, 1, 0)
	r64 := m.Cost(false, 8192, 64, 0)
	rHi := m.Cost(false, 8192, 1, 6)
	if math.Abs(r1-r64)/r1 > 0.05 || math.Abs(r1-rHi)/r1 > 0.05 {
		t.Errorf("SSD model not flat: %.4g / %.4g / %.4g ms", r1*1e3, r64*1e3, rHi*1e3)
	}
	// Writes slower than reads.
	if m.Cost(true, 8192, 1, 0) <= r1 {
		t.Errorf("SSD write not slower than read")
	}
}

func TestModelSaveLoad(t *testing.T) {
	m := Calibrate("disk15k", diskFactory, Grid{
		Sizes: []int64{8192}, RunCounts: []int64{1, 8},
		Competitors: []int{0, 2}, RequestsPerCell: 200,
	})
	var buf bytes.Buffer
	if err := m.Save(&buf); err != nil {
		t.Fatal(err)
	}
	m2, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if m2.Target != "disk15k" {
		t.Errorf("target = %q", m2.Target)
	}
	if a, b := m.Cost(false, 8192, 4, 1), m2.Cost(false, 8192, 4, 1); a != b {
		t.Errorf("loaded model differs: %g vs %g", a, b)
	}
}

func TestLoadRejectsInvalid(t *testing.T) {
	if _, err := Load(bytes.NewReader([]byte(`{"target":"x"}`))); err == nil {
		t.Error("empty model accepted")
	}
	if _, err := Load(bytes.NewReader([]byte(`not json`))); err == nil {
		t.Error("malformed JSON accepted")
	}
}

func TestCacheMemoizes(t *testing.T) {
	c := NewCache()
	calls := 0
	factory := func(e *storage.Engine) storage.Device {
		calls++
		return diskFactory(e)
	}
	g := Grid{Sizes: []int64{8192}, RunCounts: []int64{1}, Competitors: []int{0}, RequestsPerCell: 100}
	m1 := c.Get("d", factory, g)
	m2 := c.Get("d", factory, g)
	if m1 != m2 {
		t.Error("cache returned different models")
	}
	if calls == 0 {
		t.Error("factory never called")
	}
	first := calls
	c.Get("d", factory, g)
	if calls != first {
		t.Error("cache recalibrated")
	}
}

func TestCalibrationDeterminism(t *testing.T) {
	g := Grid{Sizes: []int64{8192}, RunCounts: []int64{8}, Competitors: []int{2}, RequestsPerCell: 300}
	a := Calibrate("d", diskFactory, g)
	b := Calibrate("d", diskFactory, g)
	if a.Read.Curves[0][0].Cost[0] != b.Read.Curves[0][0].Cost[0] {
		t.Error("calibration not deterministic")
	}
}
