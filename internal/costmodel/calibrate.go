package costmodel

import (
	"math/rand"
	"sync"

	"dblayout/internal/seed"
	"dblayout/internal/storage"
)

// TargetFactory constructs a fresh instance of the target type being
// calibrated, attached to the given engine. Each calibration cell runs
// against a fresh device so cells are independent.
type TargetFactory func(e *storage.Engine) storage.Device

// Grid describes the calibration sweep: the controlled request sizes, run
// counts, and contention levels (expressed as the number of closed-loop
// competing random streams; the *measured* contention factor of each run is
// what gets recorded on the curve's axis).
type Grid struct {
	Sizes           []int64
	RunCounts       []int64
	Competitors     []int
	RequestsPerCell int
	// CompetitorSize is the request size of the competing streams
	// (default 8 KiB). Per the paper's simplification, interference
	// depends on the competing request *rate*, not on the competitors'
	// own properties.
	CompetitorSize int64
	// WarmupFraction of the primary stream's requests is excluded from
	// measurement (default 0.15).
	WarmupFraction float64
	Seed           int64
}

// DefaultGrid returns the full calibration sweep used by the experiments.
func DefaultGrid() Grid {
	return Grid{
		Sizes:           []int64{4 << 10, 8 << 10, 16 << 10, 32 << 10, 64 << 10, 128 << 10},
		RunCounts:       []int64{1, 2, 4, 8, 16, 32, 64, 128},
		Competitors:     []int{0, 1, 2, 3, 4, 6, 8, 12},
		RequestsPerCell: 1200,
		CompetitorSize:  8 << 10,
		WarmupFraction:  0.15,
		Seed:            1,
	}
}

// FastGrid returns a reduced sweep for tests: coarse but covering the same
// phenomena.
func FastGrid() Grid {
	g := DefaultGrid()
	g.Sizes = []int64{8 << 10, 64 << 10}
	g.RunCounts = []int64{1, 8, 64}
	g.Competitors = []int{0, 2, 6}
	g.RequestsPerCell = 400
	return g
}

func (g Grid) withDefaults() Grid {
	if g.CompetitorSize <= 0 {
		g.CompetitorSize = 8 << 10
	}
	if g.WarmupFraction <= 0 || g.WarmupFraction >= 0.9 {
		g.WarmupFraction = 0.15
	}
	if g.RequestsPerCell <= 0 {
		g.RequestsPerCell = 1200
	}
	return g
}

// Calibrate builds a complete cost model for the target type by measuring
// per-request service costs under every grid cell, exactly as the paper's
// Sec. 5.2.2 describes for physical devices.
func Calibrate(name string, factory TargetFactory, grid Grid) *Model {
	grid = grid.withDefaults()
	m := &Model{Target: name}
	m.Read = calibrateTable(factory, grid, false)
	m.Write = calibrateTable(factory, grid, true)
	return m
}

func calibrateTable(factory TargetFactory, grid Grid, write bool) Table {
	t := Table{}
	for _, s := range grid.Sizes {
		t.Sizes = append(t.Sizes, float64(s))
	}
	for _, rc := range grid.RunCounts {
		t.RunCounts = append(t.RunCounts, float64(rc))
	}
	t.Curves = make([][]Curve, len(grid.Sizes))
	for si, size := range grid.Sizes {
		t.Curves[si] = make([]Curve, len(grid.RunCounts))
		for ri, run := range grid.RunCounts {
			curve := Curve{}
			for _, comp := range grid.Competitors {
				chi, cost := calibrateCell(factory, grid, size, run, comp, write)
				// The measured contention axis must be strictly
				// increasing for interpolation.
				if n := len(curve.Contention); n > 0 && chi <= curve.Contention[n-1] {
					chi = curve.Contention[n-1] + 1e-6
				}
				curve.Contention = append(curve.Contention, chi)
				curve.Cost = append(curve.Cost, cost)
			}
			t.Curves[si][ri] = curve
		}
	}
	return t
}

// calibrateCell runs one controlled workload and returns the measured
// contention factor and the mean per-request service cost of the primary
// stream after warmup.
func calibrateCell(factory TargetFactory, grid Grid, size, run int64, competitors int, write bool) (chi, cost float64) {
	e := storage.NewEngine()
	dev := factory(e)

	// Every cell (and every competitor within it) draws from its own
	// derived stream, so no two cells of the sweep share a sequence.
	cellSeed := seed.Sub(grid.Seed, seed.StreamCalibrate, size, run, int64(competitors))
	extent := dev.Capacity() / 4
	if extent < 64<<20 {
		extent = 64 << 20
	}

	warmup := int64(float64(grid.RequestsPerCell) * grid.WarmupFraction)
	var primaryDone bool
	var measured int64
	var serviceSum float64
	var compCompleted, compAtWarmup int64
	wf := 0.0
	if write {
		wf = 1.0
	}

	primary := &storage.ClosedSource{
		Engine: e,
		Device: dev,
		Stream: 1,
		Pattern: &storage.RunPattern{
			Rng:       rand.New(rand.NewSource(cellSeed)),
			Base:      0,
			Extent:    extent,
			Size:      size,
			RunLen:    run,
			Count:     int64(grid.RequestsPerCell),
			WriteFrac: wf,
		},
		OnDone: func(float64) { primaryDone = true },
	}
	var completedPrimary int64
	primary.OnComplete = func(r *storage.Request) {
		completedPrimary++
		if completedPrimary == warmup {
			compAtWarmup = compCompleted
		}
		if completedPrimary > warmup {
			measured++
			serviceSum += r.ServiceTime()
		}
	}

	for c := 0; c < competitors; c++ {
		comp := &storage.ClosedSource{
			Engine: e,
			Device: dev,
			Stream: uint64(100 + c),
			Pattern: &storage.RunPattern{
				Rng:    rand.New(rand.NewSource(seed.Sub(cellSeed, int64(c)+1))),
				Base:   extent * 2,
				Extent: extent,
				Size:   grid.CompetitorSize,
				RunLen: 1,
				Count:  -1,
			},
			OnComplete: func(*storage.Request) { compCompleted++ },
		}
		comp.Start()
	}
	primary.Start()

	for !primaryDone && e.Step() {
	}

	if measured == 0 {
		return float64(competitors), 1e-3
	}
	chi = float64(compCompleted-compAtWarmup) / float64(measured)
	cost = serviceSum / float64(measured)
	return chi, cost
}

// Cache memoizes calibrated models by name so experiments that share a
// device type calibrate it once.
type Cache struct {
	mu     sync.Mutex
	models map[string]*Model
}

// NewCache returns an empty model cache.
func NewCache() *Cache { return &Cache{models: make(map[string]*Model)} }

// Get returns the cached model for name, calibrating it on first use.
func (c *Cache) Get(name string, factory TargetFactory, grid Grid) *Model {
	c.mu.Lock()
	defer c.mu.Unlock()
	if m, ok := c.models[name]; ok {
		return m
	}
	m := Calibrate(name, factory, grid)
	c.models[name] = m
	return m
}

// Put stores a pre-built model (e.g. one loaded from disk).
func (c *Cache) Put(m *Model) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.models[m.Target] = m
}
