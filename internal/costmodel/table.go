// Package costmodel implements the paper's black-box storage target models.
//
// A target model predicts the per-request service cost on a storage target as
// a function of three workload parameters: request size, run count
// (sequentiality), and the contention factor (temporally-correlated competing
// requests per own request, Eq. 2 of the paper). Following Sec. 5.2.2, the
// models are not analytic: they are tables of measured costs obtained by
// subjecting the target to calibration workloads with known parameters, with
// interpolation between calibration points at lookup time.
package costmodel

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sort"
)

// Curve is the measured cost (seconds per request) as a function of the
// contention factor, for one (request size, run count) calibration cell.
// Contention values are the *measured* contention factors of the calibration
// runs and are strictly increasing.
type Curve struct {
	Contention []float64 `json:"contention"`
	Cost       []float64 `json:"cost"`
}

// At returns the cost at contention chi, linearly interpolating between
// calibration points and clamping beyond the measured range.
func (c *Curve) At(chi float64) float64 {
	n := len(c.Contention)
	if n == 0 {
		return 0
	}
	if chi <= c.Contention[0] {
		return c.Cost[0]
	}
	if chi >= c.Contention[n-1] {
		return c.Cost[n-1]
	}
	i := sort.SearchFloat64s(c.Contention, chi)
	// c.Contention[i-1] < chi <= c.Contention[i]
	lo, hi := c.Contention[i-1], c.Contention[i]
	f := (chi - lo) / (hi - lo)
	return c.Cost[i-1]*(1-f) + c.Cost[i]*f
}

// Valid reports whether the curve is well-formed.
func (c *Curve) Valid() error {
	if len(c.Contention) == 0 || len(c.Contention) != len(c.Cost) {
		return fmt.Errorf("costmodel: curve with %d contention points, %d costs",
			len(c.Contention), len(c.Cost))
	}
	for i := range c.Contention {
		if i > 0 && c.Contention[i] <= c.Contention[i-1] {
			return fmt.Errorf("costmodel: contention axis not increasing at %d", i)
		}
		if c.Cost[i] <= 0 || math.IsNaN(c.Cost[i]) {
			return fmt.Errorf("costmodel: non-positive cost at %d", i)
		}
	}
	return nil
}

// Table is the full cost model for one request direction (read or write) on
// one target type: a grid of contention curves indexed by request size and
// run count.
type Table struct {
	// Sizes are the calibrated request sizes in bytes, increasing.
	Sizes []float64 `json:"sizes"`
	// RunCounts are the calibrated run counts, increasing.
	RunCounts []float64 `json:"run_counts"`
	// Curves[si][ri] is the contention curve for Sizes[si], RunCounts[ri].
	Curves [][]Curve `json:"curves"`
}

// Valid reports whether the table is well-formed.
func (t *Table) Valid() error {
	if len(t.Sizes) == 0 || len(t.RunCounts) == 0 {
		return fmt.Errorf("costmodel: empty table axes")
	}
	if len(t.Curves) != len(t.Sizes) {
		return fmt.Errorf("costmodel: %d curve rows, want %d", len(t.Curves), len(t.Sizes))
	}
	for si := range t.Curves {
		if len(t.Curves[si]) != len(t.RunCounts) {
			return fmt.Errorf("costmodel: row %d has %d curves, want %d",
				si, len(t.Curves[si]), len(t.RunCounts))
		}
		for ri := range t.Curves[si] {
			if err := t.Curves[si][ri].Valid(); err != nil {
				return fmt.Errorf("cell (%d,%d): %w", si, ri, err)
			}
		}
	}
	for i := 1; i < len(t.Sizes); i++ {
		if t.Sizes[i] <= t.Sizes[i-1] {
			return fmt.Errorf("costmodel: size axis not increasing")
		}
	}
	for i := 1; i < len(t.RunCounts); i++ {
		if t.RunCounts[i] <= t.RunCounts[i-1] {
			return fmt.Errorf("costmodel: run-count axis not increasing")
		}
	}
	return nil
}

// bracket returns indices (i, j) and weight f such that axis[i] and axis[j]
// bracket v with interpolation weight f toward j, clamping outside the range.
// Interpolation is performed in log space because both the size and run-count
// axes are geometric.
func bracket(axis []float64, v float64) (int, int, float64) {
	n := len(axis)
	if v <= axis[0] {
		return 0, 0, 0
	}
	if v >= axis[n-1] {
		return n - 1, n - 1, 0
	}
	i := sort.SearchFloat64s(axis, v)
	lo, hi := axis[i-1], axis[i]
	f := (math.Log(v) - math.Log(lo)) / (math.Log(hi) - math.Log(lo))
	return i - 1, i, f
}

// Lookup returns the interpolated per-request cost in seconds for the given
// request size (bytes), run count, and contention factor. Values outside the
// calibrated ranges are clamped to the nearest calibrated point.
func (t *Table) Lookup(size, runCount, chi float64) float64 {
	s0, s1, sf := bracket(t.Sizes, size)
	r0, r1, rf := bracket(t.RunCounts, runCount)
	c00 := t.Curves[s0][r0].At(chi)
	c01 := t.Curves[s0][r1].At(chi)
	c10 := t.Curves[s1][r0].At(chi)
	c11 := t.Curves[s1][r1].At(chi)
	low := c00*(1-rf) + c01*rf
	high := c10*(1-rf) + c11*rf
	return low*(1-sf) + high*sf
}

// Model is the complete per-target-type cost model: one table for reads and
// one for writes, as Sec. 5.2.2 prescribes.
type Model struct {
	// Target names the device type the model was calibrated against.
	Target string `json:"target"`
	Read   Table  `json:"read"`
	Write  Table  `json:"write"`
}

// Cost returns the per-request cost for the given direction and workload
// parameters.
func (m *Model) Cost(write bool, size, runCount, chi float64) float64 {
	if write {
		return m.Write.Lookup(size, runCount, chi)
	}
	return m.Read.Lookup(size, runCount, chi)
}

// Valid reports whether both tables are well-formed.
func (m *Model) Valid() error {
	if err := m.Read.Valid(); err != nil {
		return fmt.Errorf("read table: %w", err)
	}
	if err := m.Write.Valid(); err != nil {
		return fmt.Errorf("write table: %w", err)
	}
	return nil
}

// Save writes the model as JSON.
func (m *Model) Save(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(m)
}

// Load parses a model saved by Save and validates it.
func Load(r io.Reader) (*Model, error) {
	var m Model
	if err := json.NewDecoder(r).Decode(&m); err != nil {
		return nil, fmt.Errorf("costmodel: decoding model: %w", err)
	}
	if err := m.Valid(); err != nil {
		return nil, err
	}
	return &m, nil
}
