package rome

import (
	"encoding/json"
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func validWorkload(name string) *Workload {
	return &Workload{
		Name:      name,
		ReadSize:  8192,
		WriteSize: 8192,
		ReadRate:  100,
		WriteRate: 25,
		RunCount:  16,
	}
}

func TestWorkloadDerivedQuantities(t *testing.T) {
	w := validWorkload("A")
	if got := w.TotalRate(); got != 125 {
		t.Fatalf("TotalRate = %g, want 125", got)
	}
	if got := w.MeanSize(); got != 8192 {
		t.Fatalf("MeanSize = %g, want 8192", got)
	}
	if got := w.Bandwidth(); got != 125*8192 {
		t.Fatalf("Bandwidth = %g, want %g", got, 125.0*8192)
	}
	w2 := &Workload{Name: "B", ReadSize: 4096, WriteSize: 16384, ReadRate: 10, WriteRate: 30, RunCount: 1}
	want := (10.0*4096 + 30.0*16384) / 40.0
	if got := w2.MeanSize(); math.Abs(got-want) > 1e-9 {
		t.Fatalf("MeanSize = %g, want %g", got, want)
	}
}

func TestWorkloadIdle(t *testing.T) {
	w := &Workload{Name: "idle"}
	if !w.Idle() {
		t.Fatal("zero workload should be idle")
	}
	if w.MeanSize() != 0 {
		t.Fatal("idle MeanSize should be 0")
	}
	if err := w.Validate(); err != nil {
		t.Fatalf("idle workload should validate: %v", err)
	}
}

func TestWorkloadValidateRejects(t *testing.T) {
	cases := []Workload{
		{Name: "neg-size", ReadSize: -1},
		{Name: "neg-rate", ReadRate: -5, ReadSize: 8192, RunCount: 1},
		{Name: "rate-no-size", ReadRate: 10, RunCount: 1},
		{Name: "bad-run", ReadRate: 10, ReadSize: 8192, RunCount: 0.5},
		{Name: "bad-overlap", ReadRate: 10, ReadSize: 8192, RunCount: 1, Overlap: []float64{1.5}},
		{Name: "nan", ReadRate: math.NaN(), ReadSize: 8192, RunCount: 1},
	}
	for _, w := range cases {
		if err := w.Validate(); err == nil {
			t.Errorf("workload %q should fail validation", w.Name)
		}
	}
}

func TestWorkloadScaleAndClone(t *testing.T) {
	w := validWorkload("A")
	w.Overlap = []float64{1, 0.5}
	s := w.Scale(2)
	if s.ReadRate != 200 || s.WriteRate != 50 {
		t.Fatalf("scaled rates %g/%g, want 200/50", s.ReadRate, s.WriteRate)
	}
	if s.ReadSize != w.ReadSize || s.RunCount != w.RunCount {
		t.Fatal("Scale must not change sizes or run count")
	}
	s.Overlap[1] = 0.9
	if w.Overlap[1] != 0.5 {
		t.Fatal("Scale must deep-copy the overlap vector")
	}
}

func TestSetValidation(t *testing.T) {
	a, b := validWorkload("A"), validWorkload("B")
	if _, err := NewSet(a, b); err != nil {
		t.Fatalf("valid set rejected: %v", err)
	}
	if _, err := NewSet(); err == nil {
		t.Fatal("empty set accepted")
	}
	if _, err := NewSet(a, validWorkload("A")); err == nil {
		t.Fatal("duplicate names accepted")
	}
	c := validWorkload("C")
	c.Overlap = []float64{1} // wrong length (set has 3)
	if _, err := NewSet(a, b, c); err == nil {
		t.Fatal("wrong overlap length accepted")
	}
}

func TestSetOverlapDefaults(t *testing.T) {
	a, b := validWorkload("A"), validWorkload("B")
	a.Overlap = []float64{1, 0.7}
	b.Overlap = []float64{0.7, 1}
	s, err := NewSet(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if got := s.Overlap(0, 1); got != 0.7 {
		t.Fatalf("Overlap(0,1) = %g, want 0.7", got)
	}
	if got := s.Overlap(1, 0); got != 0.7 {
		t.Fatalf("Overlap(1,0) = %g, want 0.7", got)
	}
	if got := s.Overlap(1, 1); got != 1 {
		t.Fatalf("self overlap = %g, want 1", got)
	}
	// A workload without a vector reads as 0 against everyone, which is
	// symmetric as long as nobody claims a non-zero overlap with it.
	c, d := validWorkload("C"), validWorkload("D")
	s2, err := NewSet(c, d)
	if err != nil {
		t.Fatal(err)
	}
	if got := s2.Overlap(0, 1); got != 0 {
		t.Fatalf("Overlap(0,1) = %g, want 0 (no vectors)", got)
	}
}

func TestSetValidateRejectsAsymmetricOverlap(t *testing.T) {
	// Mismatched values in the two directions.
	a, b := validWorkload("A"), validWorkload("B")
	a.Overlap = []float64{1, 0.7}
	b.Overlap = []float64{0.2, 1}
	_, err := NewSet(a, b)
	if err == nil {
		t.Fatal("asymmetric overlap accepted")
	}
	for _, want := range []string{"line 0", "line 1", `"A"`, `"B"`, "0.7", "0.2"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("error %q does not mention %s", err, want)
		}
	}

	// A one-sided vector: A claims overlap with B, but B carries no vector,
	// so Overlap(1,0) would read 0 — the contention factor (Eq. 2) would be
	// direction-dependent.
	a, b = validWorkload("A"), validWorkload("B")
	a.Overlap = []float64{1, 0.7}
	if _, err := NewSet(a, b); err == nil {
		t.Fatal("one-sided overlap vector accepted")
	}

	// Asymmetry within the 1e-9 tolerance (round-off from independent
	// fitting passes) is accepted.
	a, b = validWorkload("A"), validWorkload("B")
	a.Overlap = []float64{1, 0.7}
	b.Overlap = []float64{0.7 + 1e-12, 1}
	if _, err := NewSet(a, b); err != nil {
		t.Fatalf("round-off asymmetry rejected: %v", err)
	}
}

func TestSetIndexAndNames(t *testing.T) {
	s, _ := NewSet(validWorkload("A"), validWorkload("B"))
	if s.Index("B") != 1 || s.Index("missing") != -1 {
		t.Fatal("Index lookup broken")
	}
	names := s.Names()
	if names[0] != "A" || names[1] != "B" {
		t.Fatalf("Names = %v", names)
	}
}

func TestSetJSONRoundTrip(t *testing.T) {
	a, b := validWorkload("A"), validWorkload("B")
	a.Overlap = []float64{1, 0.25}
	b.Overlap = []float64{0.25, 1}
	s, _ := NewSet(a, b)
	data, err := json.Marshal(s)
	if err != nil {
		t.Fatal(err)
	}
	var out Set
	if err := json.Unmarshal(data, &out); err != nil {
		t.Fatal(err)
	}
	if out.Len() != 2 || out.Workloads[0].Overlap[1] != 0.25 {
		t.Fatalf("round trip lost data: %+v", out)
	}
	// Unmarshal validates.
	if err := json.Unmarshal([]byte(`{"workloads":[{"name":"X","read_rate":-1}]}`), &out); err == nil {
		t.Fatal("invalid set unmarshalled without error")
	}
}

func TestReplicate(t *testing.T) {
	a, b := validWorkload("A"), validWorkload("B")
	a.Overlap = []float64{1, 0.5}
	b.Overlap = []float64{0.5, 1}
	s, _ := NewSet(a, b)
	r := s.Replicate(3)
	if r.Len() != 6 {
		t.Fatalf("replicated len = %d, want 6", r.Len())
	}
	if err := r.Validate(); err != nil {
		t.Fatalf("replicated set invalid: %v", err)
	}
	if r.Workloads[2].Name != "A#2" || r.Workloads[5].Name != "B#3" {
		t.Fatalf("replica names wrong: %v", r.Names())
	}
	// Within-replica overlap preserved; cross-replica overlap zero.
	if got := r.Overlap(2, 3); got != 0.5 {
		t.Fatalf("within-replica overlap = %g, want 0.5", got)
	}
	if got := r.Overlap(0, 3); got != 0 {
		t.Fatalf("cross-replica overlap = %g, want 0", got)
	}
}

func TestMerge(t *testing.T) {
	a := validWorkload("A")
	a.Overlap = []float64{1}
	s1, _ := NewSet(a)
	b, c := validWorkload("B"), validWorkload("C")
	b.Overlap = []float64{1, 0.8}
	c.Overlap = []float64{0.8, 1}
	s2, _ := NewSet(b, c)
	m := Merge(s1, s2)
	if m.Len() != 3 {
		t.Fatalf("merged len = %d", m.Len())
	}
	if err := m.Validate(); err != nil {
		t.Fatalf("merged set invalid: %v", err)
	}
	if got := m.Overlap(1, 2); got != 0.8 {
		t.Fatalf("intra-set overlap lost: %g", got)
	}
	if got := m.Overlap(0, 1); got != 0 {
		t.Fatalf("cross-set overlap = %g, want 0", got)
	}
}

// Property: scaling by f multiplies TotalRate and Bandwidth by f and leaves
// MeanSize unchanged.
func TestScaleProperties(t *testing.T) {
	f := func(rr, wr, f uint16) bool {
		w := &Workload{Name: "P", ReadSize: 8192, WriteSize: 4096,
			ReadRate: float64(rr), WriteRate: float64(wr), RunCount: 4}
		fac := 1 + float64(f%100)/10
		s := w.Scale(fac)
		if math.Abs(s.TotalRate()-fac*w.TotalRate()) > 1e-6*(1+w.TotalRate()) {
			return false
		}
		if w.TotalRate() > 0 && math.Abs(s.MeanSize()-w.MeanSize()) > 1e-9 {
			return false
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: Replicate(n) always yields a valid set of n*len workloads whose
// total rate is n times the original.
func TestReplicateProperties(t *testing.T) {
	f := func(n uint8) bool {
		k := int(n%4) + 1
		a, b := validWorkload("A"), validWorkload("B")
		a.Overlap = []float64{1, 0.3}
		b.Overlap = []float64{0.3, 1}
		s, _ := NewSet(a, b)
		r := s.Replicate(k)
		if r.Len() != 2*k {
			return false
		}
		if r.Validate() != nil {
			return false
		}
		return math.Abs(r.TotalRate()-float64(k)*s.TotalRate()) < 1e-6
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
