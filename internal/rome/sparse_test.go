package rome

import (
	"encoding/json"
	"strings"
	"testing"
)

// sparsePair builds a two-workload set where w0 carries a dense vector and
// w1 the sparse equivalent, so every accessor can be checked across the
// representation boundary.
func sparsePair(t *testing.T) *Set {
	t.Helper()
	set, err := NewSet(
		&Workload{Name: "A", ReadSize: 8192, ReadRate: 10, RunCount: 1,
			Overlap: []float64{1, 0.25, 0}},
		&Workload{Name: "B", ReadSize: 8192, ReadRate: 20, RunCount: 1,
			SparseOverlap: []OverlapEntry{{Index: 0, Value: 0.25}}},
		&Workload{Name: "C", ReadSize: 8192, ReadRate: 30, RunCount: 1},
	)
	if err != nil {
		t.Fatal(err)
	}
	return set
}

func TestSparseOverlapLookup(t *testing.T) {
	set := sparsePair(t)
	cases := []struct {
		i, k int
		want float64
	}{
		{0, 1, 0.25}, {1, 0, 0.25}, // cross-representation symmetry
		{0, 2, 0}, {2, 0, 0}, // absent entries read as 0
		{1, 2, 0},            // index past the sparse entries
		{1, 1, 1}, {2, 2, 1}, // self-overlap
	}
	for _, c := range cases {
		if got := set.Overlap(c.i, c.k); got != c.want {
			t.Errorf("Overlap(%d, %d) = %g, want %g", c.i, c.k, got, c.want)
		}
	}
}

func TestForEachOverlapEquivalence(t *testing.T) {
	// A dense vector and its sparse conversion must yield identical
	// iteration sequences.
	dense := &Workload{Name: "D", ReadSize: 8192, ReadRate: 1, RunCount: 1,
		Overlap: []float64{0.5, 1, 0, 0.75, 0}}
	var sp []OverlapEntry
	for k, v := range dense.Overlap {
		if k != 1 && v != 0 {
			sp = append(sp, OverlapEntry{Index: k, Value: v})
		}
	}
	sparse := &Workload{Name: "D", ReadSize: 8192, ReadRate: 1, RunCount: 1,
		SparseOverlap: sp}

	collect := func(s *Set) []float64 {
		var got []float64
		s.ForEachOverlap(1, func(k int, v float64) {
			got = append(got, float64(k), v)
		})
		return got
	}
	pad := func(w *Workload) *Set {
		ws := []*Workload{
			{Name: "X0", ReadSize: 8192, ReadRate: 1, RunCount: 1},
			w,
			{Name: "X2", ReadSize: 8192, ReadRate: 1, RunCount: 1},
			{Name: "X3", ReadSize: 8192, ReadRate: 1, RunCount: 1},
			{Name: "X4", ReadSize: 8192, ReadRate: 1, RunCount: 1},
		}
		return &Set{Workloads: ws}
	}
	dg, sg := collect(pad(dense)), collect(pad(sparse))
	if len(dg) != len(sg) {
		t.Fatalf("dense iteration yielded %d values, sparse %d", len(dg), len(sg))
	}
	for i := range dg {
		if dg[i] != sg[i] {
			t.Fatalf("iteration diverges at %d: dense %v, sparse %v", i, dg, sg)
		}
	}
}

func TestSparseOverlapValidation(t *testing.T) {
	base := func() *Workload {
		return &Workload{Name: "W", ReadSize: 8192, ReadRate: 1, RunCount: 1}
	}
	partner := &Workload{Name: "P", ReadSize: 8192, ReadRate: 1, RunCount: 1,
		SparseOverlap: []OverlapEntry{{Index: 0, Value: 0.5}}}

	cases := []struct {
		name string
		mut  func(w *Workload)
		want string
	}{
		{"both representations", func(w *Workload) {
			w.Overlap = []float64{1, 0.5}
			w.SparseOverlap = []OverlapEntry{{Index: 1, Value: 0.5}}
		}, "both dense and sparse"},
		{"negative index", func(w *Workload) {
			w.SparseOverlap = []OverlapEntry{{Index: -1, Value: 0.5}}
		}, "negative index"},
		{"unsorted", func(w *Workload) {
			w.SparseOverlap = []OverlapEntry{{Index: 1, Value: 0.5}, {Index: 1, Value: 0.5}}
		}, "strictly ascending"},
		{"out of range value", func(w *Workload) {
			w.SparseOverlap = []OverlapEntry{{Index: 1, Value: 1.5}}
		}, "outside [0,1]"},
		{"index past set", func(w *Workload) {
			w.SparseOverlap = []OverlapEntry{{Index: 7, Value: 0.5}}
		}, "for a 2-workload set"},
		{"asymmetric", func(w *Workload) {
			w.SparseOverlap = []OverlapEntry{{Index: 1, Value: 0.9}}
		}, "asymmetric"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			w := base()
			c.mut(w)
			_, err := NewSet(w, partner)
			if err == nil || !strings.Contains(err.Error(), c.want) {
				t.Fatalf("NewSet error = %v, want substring %q", err, c.want)
			}
		})
	}
}

func TestSparseOverlapCloneReplicateMerge(t *testing.T) {
	set := sparsePair(t)

	c := set.Clone()
	c.Workloads[1].SparseOverlap[0].Value = 0.99
	if set.Workloads[1].SparseOverlap[0].Value != 0.25 {
		t.Fatal("Clone aliases the sparse overlap slice")
	}

	rep := set.Replicate(2)
	if err := rep.Validate(); err != nil {
		t.Fatalf("replicated sparse set invalid: %v", err)
	}
	base := set.Len()
	// Copy 2's B overlaps copy 2's A, not copy 1's.
	if got := rep.Overlap(base+1, base); got != 0.25 {
		t.Errorf("replica sparse overlap within block = %g, want 0.25", got)
	}
	if got := rep.Overlap(base+1, 0); got != 0 {
		t.Errorf("replica sparse overlap across blocks = %g, want 0", got)
	}
	// The sparse representation survives replication (no dense blow-up).
	if rep.Workloads[base+1].Overlap != nil {
		t.Error("Replicate densified a sparse workload")
	}

	other := set.Clone()
	for _, w := range other.Workloads {
		w.Name += "'"
	}
	mg := Merge(set, other)
	if err := mg.Validate(); err != nil {
		t.Fatalf("merged sparse set invalid: %v", err)
	}
	if got := mg.Overlap(base+1, base); got != 0.25 {
		t.Errorf("merged sparse overlap within block = %g, want 0.25", got)
	}
	if got := mg.Overlap(base+1, 1); got != 0 {
		t.Errorf("merged sparse overlap across blocks = %g, want 0", got)
	}
}

func TestSparseOverlapJSONRoundTrip(t *testing.T) {
	set := sparsePair(t)
	data, err := json.Marshal(set)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), `"sparse_overlap"`) {
		t.Fatalf("sparse overlap not serialized: %s", data)
	}
	var back Set
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if got := back.Overlap(1, 0); got != 0.25 {
		t.Fatalf("round-tripped sparse overlap = %g, want 0.25", got)
	}
}
