package autoadmin

import (
	"testing"
)

// workload: two big tables co-accessed by a join query, an index co-accessed
// with table 0, and a cold object nothing touches together.
func testQueries() []Query {
	return []Query{
		{Name: "join", Weight: 3, Accesses: []Access{
			{Object: 0, Volume: 4e9}, {Object: 1, Volume: 1e9},
		}},
		{Name: "scan0", Weight: 2, Accesses: []Access{
			{Object: 0, Volume: 4e9}, {Object: 2, Volume: 0.5e9},
		}},
		{Name: "lookup", Weight: 5, Accesses: []Access{
			{Object: 2, Volume: 0.2e9},
		}},
		{Name: "cold", Weight: 1, Accesses: []Access{
			{Object: 3, Volume: 0.1e9},
		}},
	}
}

func testConfig(m int) Config {
	caps := make([]int64, m)
	for j := range caps {
		caps[j] = 20 << 30
	}
	return Config{
		Sizes:      []int64{4 << 30, 2 << 30, 1 << 30, 1 << 30},
		Capacities: caps,
	}
}

func TestRecommendBasics(t *testing.T) {
	l, err := Recommend(testQueries(), 4, 4, testConfig(4))
	if err != nil {
		t.Fatal(err)
	}
	if err := l.CheckIntegrity(); err != nil {
		t.Fatal(err)
	}
	if !l.IsRegular() {
		t.Fatal("AutoAdmin layout must be regular")
	}
	// The heavily co-accessed pair (0,1) must not share any target.
	for j := 0; j < 4; j++ {
		if l.At(0, j) > 0 && l.At(1, j) > 0 {
			t.Fatalf("co-accessed objects share target %d:\n%s", j, l)
		}
	}
}

func TestRecommendObliviousToWeightScaling(t *testing.T) {
	// Scaling all query weights (e.g. running the same queries at
	// concurrency 8) must not change the layout: AutoAdmin is oblivious
	// to concurrency, exactly the limitation the paper points out.
	qs := testQueries()
	l1, err := Recommend(qs, 4, 4, testConfig(4))
	if err != nil {
		t.Fatal(err)
	}
	for i := range qs {
		qs[i].Weight *= 8
	}
	l8, err := Recommend(qs, 4, 4, testConfig(4))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		for j := 0; j < 4; j++ {
			if l1.At(i, j) != l8.At(i, j) {
				t.Fatalf("layout changed with concurrency at (%d,%d)", i, j)
			}
		}
	}
}

func TestRecommendCardinalityError(t *testing.T) {
	// Inflating the cold object's estimated volume by 1000x (an optimizer
	// misestimate, like PostgreSQL on Q18) must change its placement
	// priority — it becomes the heaviest node.
	cfg := testConfig(4)
	cfg.VolumeMultipliers = []float64{1, 1, 1, 20000}
	l, err := Recommend(testQueries(), 4, 4, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := l.CheckIntegrity(); err != nil {
		t.Fatal(err)
	}
	// The misestimated object should now be spread for parallelism at
	// least as widely as anything else.
	spreadCold := len(l.Targets(3))
	spreadHot := len(l.Targets(0))
	if spreadCold < spreadHot {
		t.Fatalf("misestimated object spread %d < true-hot spread %d", spreadCold, spreadHot)
	}
}

func TestRecommendCapacity(t *testing.T) {
	cfg := testConfig(2)
	cfg.Capacities = []int64{5 << 30, 5 << 30}
	l, err := Recommend(testQueries(), 4, 2, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := l.CheckCapacity(cfg.Sizes, cfg.Capacities); err != nil {
		t.Fatal(err)
	}
	// Impossible case errors out.
	cfg.Capacities = []int64{1 << 30, 1 << 30}
	if _, err := Recommend(testQueries(), 4, 2, cfg); err == nil {
		t.Fatal("impossible capacity accepted")
	}
}

func TestRecommendErrors(t *testing.T) {
	if _, err := Recommend(nil, 0, 4, Config{}); err == nil {
		t.Fatal("zero objects accepted")
	}
	cfg := testConfig(4)
	if _, err := Recommend([]Query{{Name: "bad", Accesses: []Access{{Object: 9}}}}, 4, 4, cfg); err == nil {
		t.Fatal("out-of-range object accepted")
	}
	cfg.Sizes = cfg.Sizes[:2]
	if _, err := Recommend(testQueries(), 4, 4, cfg); err == nil {
		t.Fatal("mismatched sizes accepted")
	}
}

func TestParallelismSpreadsHotObjects(t *testing.T) {
	// With MaxSpread unrestricted, the hot object should end up on more
	// than one target (I/O parallelism), given spare targets exist.
	l, err := Recommend(testQueries(), 4, 8, testConfig(8))
	if err != nil {
		t.Fatal(err)
	}
	if n := len(l.Targets(0)); n < 2 {
		t.Fatalf("hot object on %d targets, want >= 2", n)
	}
}

func TestMaxSpreadRespected(t *testing.T) {
	cfg := testConfig(8)
	cfg.MaxSpread = 2
	l, err := Recommend(testQueries(), 4, 8, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		if n := len(l.Targets(i)); n > 2 {
			t.Fatalf("object %d on %d targets, max 2", i, n)
		}
	}
}
