// Package autoadmin re-implements the Microsoft AutoAdmin database layout
// technique (Agrawal, Chaudhuri, Das, Narasayya, ICDE 2003) that the paper
// compares against in Sec. 6.6.
//
// Unlike the paper's advisor, AutoAdmin consumes a SQL-level workload
// description rather than per-object I/O statistics. It builds a graph whose
// nodes are database objects (weighted by estimated I/O volume) and whose
// edges connect objects that are accessed concurrently by the same query
// (weighted by co-access intensity). Layout proceeds in two steps:
//
//  1. partitioning: each object is placed on a single target so that
//     heavily co-accessed objects are separated and node weights stay
//     balanced across targets;
//  2. parallelism: objects are spread over additional targets, in decreasing
//     weight order, as long as the spread does not co-locate them with
//     objects they are heavily co-accessed with.
//
// The resulting layout is regular. The technique models neither workload
// concurrency nor target heterogeneity — the properties the paper shows
// limit it — and its I/O estimates come from optimizer cardinalities, whose
// errors can be injected here via Config.VolumeMultipliers to reproduce the
// paper's PostgreSQL Q18 observation.
package autoadmin

import (
	"fmt"
	"sort"

	"dblayout/internal/layout"
)

// Access records one query's estimated I/O volume (bytes) against an object.
type Access struct {
	Object int
	Volume float64
}

// Query is one statement of the SQL workload with its execution frequency.
type Query struct {
	Name     string
	Weight   float64
	Accesses []Access
}

// Config tunes the layout heuristic.
type Config struct {
	// Sizes are object sizes in bytes; Capacities are target capacities.
	Sizes      []int64
	Capacities []int64
	// VolumeMultipliers optionally scales each object's estimated volume,
	// modelling query-optimizer cardinality estimation errors. Empty
	// means exact estimates.
	VolumeMultipliers []float64
	// BalanceWeight trades off co-access separation against load balance
	// in the partitioning step (default 0.5).
	BalanceWeight float64
	// SpreadThreshold is the fraction of an object's own weight above
	// which an edge is "heavy" and blocks co-location during the
	// parallelism step (default 0.3).
	SpreadThreshold float64
	// MaxSpread bounds how many targets one object may be spread over in
	// the parallelism step (default: all).
	MaxSpread int
}

func (c Config) withDefaults(m int) Config {
	if c.BalanceWeight <= 0 {
		c.BalanceWeight = 0.5
	}
	if c.SpreadThreshold <= 0 {
		c.SpreadThreshold = 0.3
	}
	if c.MaxSpread <= 0 || c.MaxSpread > m {
		c.MaxSpread = m
	}
	return c
}

// graph is the weighted co-access graph.
type graph struct {
	n    int
	node []float64   // estimated I/O volume per object
	edge [][]float64 // co-access weight, symmetric
}

// buildGraph constructs the co-access graph from the SQL workload.
func buildGraph(queries []Query, n int, mult []float64) (*graph, error) {
	g := &graph{n: n, node: make([]float64, n), edge: make([][]float64, n)}
	for i := range g.edge {
		g.edge[i] = make([]float64, n)
	}
	scale := func(obj int, v float64) float64 {
		if len(mult) > obj && mult[obj] > 0 {
			return v * mult[obj]
		}
		return v
	}
	for _, q := range queries {
		w := q.Weight
		if w <= 0 {
			w = 1
		}
		for _, a := range q.Accesses {
			if a.Object < 0 || a.Object >= n {
				return nil, fmt.Errorf("autoadmin: query %q references object %d of %d", q.Name, a.Object, n)
			}
			g.node[a.Object] += w * scale(a.Object, a.Volume)
		}
		for x := 0; x < len(q.Accesses); x++ {
			for y := x + 1; y < len(q.Accesses); y++ {
				ax, ay := q.Accesses[x], q.Accesses[y]
				vx, vy := scale(ax.Object, ax.Volume), scale(ay.Object, ay.Volume)
				co := w * min(vx, vy)
				g.edge[ax.Object][ay.Object] += co
				g.edge[ay.Object][ax.Object] += co
			}
		}
	}
	return g, nil
}

func min(a, b float64) float64 {
	if a < b {
		return a
	}
	return b
}

// Recommend produces a regular layout of n objects over m targets from the
// SQL workload description.
func Recommend(queries []Query, n, m int, cfg Config) (*layout.Layout, error) {
	if n <= 0 || m <= 0 {
		return nil, fmt.Errorf("autoadmin: invalid problem size %dx%d", n, m)
	}
	if len(cfg.Sizes) != n || len(cfg.Capacities) != m {
		return nil, fmt.Errorf("autoadmin: got %d sizes, %d capacities for %dx%d",
			len(cfg.Sizes), len(cfg.Capacities), n, m)
	}
	cfg = cfg.withDefaults(m)
	g, err := buildGraph(queries, n, cfg.VolumeMultipliers)
	if err != nil {
		return nil, err
	}

	assign, err := partition(g, m, cfg)
	if err != nil {
		return nil, err
	}
	spread := parallelize(g, assign, m, cfg)

	l := layout.New(n, m)
	for i := 0; i < n; i++ {
		l.SetRow(i, layout.RegularRow(m, spread[i]))
	}
	return l, nil
}

// greedyAssign is the shared core of the partitioning step and of
// co-access clustering: it places n weighted nodes into m groups in
// decreasing node-weight order (stable, so ties keep ascending node id),
// sending each node to the admissible group with the lowest score
//
//	score(i, g) = sign * aff(i, g)/norm + balance * load(g)/norm
//
// where aff(i, g) is the summed co-access edge weight between i and the
// nodes already placed in g. sign is +1 to separate co-accessed nodes
// (AutoAdmin's partitioning) and -1 to attract them into the same group
// (cluster decomposition). Affinities are maintained incrementally —
// forEachEdge is invoked once per placed node, so the whole assignment is
// O(n*m + edges) rather than the O(n^2 * m) of rescanning placed nodes per
// candidate. admissible (optional) vetoes groups, e.g. on capacity; onPlace
// (optional) observes each placement. Ties on score keep the lowest group
// id, which makes the result deterministic for a fixed input.
func greedyAssign(n, m int, node []float64, forEachEdge func(i int, f func(k int, w float64)), attract bool, balance float64, admissible func(i, g int) bool, onPlace func(i, g int)) ([]int, error) {
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool { return node[order[a]] > node[order[b]] })

	var totalLoad float64
	for _, w := range node {
		totalLoad += w
	}
	norm := totalLoad/float64(m) + 1
	sign := 1.0
	if attract {
		sign = -1
	}

	assign := make([]int, n)
	for i := range assign {
		assign[i] = -1
	}
	load := make([]float64, m)
	aff := make([]float64, n*m)

	for _, i := range order {
		best, bestScore := -1, 0.0
		for g := 0; g < m; g++ {
			if admissible != nil && !admissible(i, g) {
				continue
			}
			score := sign*aff[i*m+g]/norm + balance*load[g]/norm
			if best < 0 || score < bestScore {
				best, bestScore = g, score
			}
		}
		if best < 0 {
			return nil, fmt.Errorf("autoadmin: no admissible group for node %d", i)
		}
		assign[i] = best
		load[best] += node[i]
		forEachEdge(i, func(k int, w float64) {
			if assign[k] < 0 {
				aff[k*m+best] += w
			}
		})
		if onPlace != nil {
			onPlace(i, best)
		}
	}
	return assign, nil
}

// CoAccessClusters groups n objects into at most k clusters by co-access
// affinity: heavily co-accessed objects are attracted into the same cluster
// while the balance term keeps cluster weights roughly even. weight[i] is
// object i's total load (e.g. its request rate); forEachEdge iterates i's
// non-zero co-access partners with their edge weights. balance <= 0 selects
// the default (0.5). The result is deterministic for a fixed input; k must
// be at least 1.
//
// This is AutoAdmin's partitioning greedy run in attract mode — the
// hierarchical fleet-scale solver uses it to decompose a problem into
// near-independent subproblems (objects that never co-run land in clusters
// by load balance alone).
func CoAccessClusters(n, k int, weight []float64, forEachEdge func(i int, f func(k int, w float64)), balance float64) []int {
	if balance <= 0 {
		balance = 0.5
	}
	assign, err := greedyAssign(n, k, weight, forEachEdge, true, balance, nil, nil)
	if err != nil {
		// Unreachable: with no admissibility predicate every group is
		// admissible, so the greedy always places every node.
		panic(err)
	}
	return assign
}

// partition implements step 1: single-target placement that separates
// heavily co-accessed objects while balancing estimated load, respecting
// capacity. Objects are placed in decreasing node-weight order.
func partition(g *graph, m int, cfg Config) ([]int, error) {
	free := make([]float64, m)
	for j := range free {
		free[j] = float64(cfg.Capacities[j])
	}
	assign, err := greedyAssign(g.n, m, g.node,
		func(i int, f func(k int, w float64)) {
			for k, w := range g.edge[i] {
				if w > 0 {
					f(k, w)
				}
			}
		},
		false, cfg.BalanceWeight,
		func(i, j int) bool { return free[j] >= float64(cfg.Sizes[i]) },
		func(i, j int) { free[j] -= float64(cfg.Sizes[i]) },
	)
	if err != nil {
		return nil, fmt.Errorf("autoadmin: no target has capacity for every object (%w)", err)
	}
	return assign, nil
}

// parallelize implements step 2: widen each object's target set for I/O
// parallelism, in decreasing weight order, skipping targets that hold
// objects the candidate is heavily co-accessed with. Capacity is respected
// throughout.
func parallelize(g *graph, assign []int, m int, cfg Config) [][]int {
	spread := make([][]int, g.n)
	used := make([]float64, m)
	for i, j := range assign {
		spread[i] = []int{j}
		used[j] += float64(cfg.Sizes[i])
	}

	order := make([]int, g.n)
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool { return g.node[order[a]] > g.node[order[b]] })

	for _, i := range order {
		if g.node[i] <= 0 {
			continue
		}
		for j := 0; j < m && len(spread[i]) < cfg.MaxSpread; j++ {
			if contains(spread[i], j) {
				continue
			}
			heavy := false
			for k, ts := range spread {
				if k == i || !contains(ts, j) {
					continue
				}
				// An edge is heavy relative to the smaller of the
				// two objects' weights, so a hot object cannot
				// invade the target of a partner for which the
				// co-access is significant.
				if g.edge[i][k] > cfg.SpreadThreshold*min(g.node[i], g.node[k]) {
					heavy = true
					break
				}
			}
			if heavy {
				continue
			}
			// Adding target j redistributes the object evenly over
			// one more target; check capacity with the new share.
			newShare := float64(cfg.Sizes[i]) / float64(len(spread[i])+1)
			oldShare := float64(cfg.Sizes[i]) / float64(len(spread[i]))
			if used[j]+newShare > float64(cfg.Capacities[j]) {
				continue
			}
			for _, t := range spread[i] {
				used[t] -= oldShare - newShare
			}
			used[j] += newShare
			spread[i] = append(spread[i], j)
			sort.Ints(spread[i])
		}
	}
	return spread
}

func contains(ts []int, j int) bool {
	for _, t := range ts {
		if t == j {
			return true
		}
	}
	return false
}
