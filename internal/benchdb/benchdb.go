// Package benchdb defines the synthetic TPC-H and TPC-C databases and SQL
// workloads used by the paper's evaluation (Sec. 6.1, Figs. 9-10).
//
// The paper ran PostgreSQL 8.0.6 against a scale-factor-5 TPC-H database and
// a 90-warehouse TPC-C database. This package substitutes declarative
// catalogs (object names, sizes and kinds matching paper Fig. 9) and
// block-level access specifications for each query and transaction type,
// reflecting the plans a PostgreSQL of that era produces: mostly sequential
// scans feeding hash joins, sort spills to the temporary tablespace, and
// occasional index-driven random access. Small relations that fit in the
// 2 GB shared buffer generate no repeated I/O and are omitted from the
// specs.
//
// The replay engine (package replay) executes these specifications against
// the storage simulator; the advisor never sees them — it works from trace
// fits, exactly as in the paper.
package benchdb

import (
	"fmt"

	"dblayout/internal/autoadmin"
	"dblayout/internal/layout"
)

// Common request sizes: PostgreSQL issues 8 KiB pages; the kernel coalesces
// sequential scans into larger requests.
const (
	PageSize = 8 << 10
	ScanSize = 128 << 10
)

// Stream is one I/O stream a query phase drives against a database object.
type Stream struct {
	// Object names the database object.
	Object string
	// Bytes is the total volume the stream transfers.
	Bytes int64
	// ReqSize is the request size (defaults: ScanSize when Sequential,
	// PageSize otherwise).
	ReqSize int64
	// Sequential selects one long scan; otherwise accesses are random
	// single-request runs.
	Sequential bool
	// Write makes the stream a write stream.
	Write bool
	// ThinkPerReq is CPU time consumed between consecutive requests; for
	// multi-outstanding streams it is the production pacing interval.
	ThinkPerReq float64
	// Depth is the number of requests kept in flight (0 selects 1 for
	// synchronous reads; spill writes use larger depths because the page
	// cache flushes them asynchronously).
	Depth int
}

// Phase is a set of streams a query drives concurrently; the phase completes
// when all of its streams do.
type Phase struct {
	Streams []Stream
}

// Query is one SQL statement: an ordered list of I/O phases plus pure CPU
// time not overlapped with I/O.
type Query struct {
	Name       string
	CPUSeconds float64
	Phases     []Phase
}

// TotalBytes sums the I/O volume of the query against one object.
func (q *Query) TotalBytes(object string) int64 {
	var b int64
	for _, p := range q.Phases {
		for _, s := range p.Streams {
			if s.Object == object {
				b += s.Bytes
			}
		}
	}
	return b
}

// Objects returns the names of all objects the query touches.
func (q *Query) Objects() []string {
	seen := map[string]bool{}
	var out []string
	for _, p := range q.Phases {
		for _, s := range p.Streams {
			if !seen[s.Object] {
				seen[s.Object] = true
				out = append(out, s.Object)
			}
		}
	}
	return out
}

// Catalog is a database's object inventory.
type Catalog struct {
	Name    string
	Objects []layout.Object
}

// Index returns the position of the named object, or -1.
func (c *Catalog) Index(name string) int {
	for i, o := range c.Objects {
		if o.Name == name {
			return i
		}
	}
	return -1
}

// SizeOf returns the named object's size; it panics on unknown names, which
// indicates a workload-spec typo.
func (c *Catalog) SizeOf(name string) int64 {
	i := c.Index(name)
	if i < 0 {
		panic(fmt.Sprintf("benchdb: unknown object %q in catalog %s", name, c.Name))
	}
	return c.Objects[i].Size
}

// TotalSize returns the database size in bytes.
func (c *Catalog) TotalSize() int64 {
	var t int64
	for _, o := range c.Objects {
		t += o.Size
	}
	return t
}

// CountKind returns how many objects have the given kind.
func (c *Catalog) CountKind(k layout.ObjectKind) int {
	n := 0
	for _, o := range c.Objects {
		if o.Kind == k {
			n++
		}
	}
	return n
}

// Validate checks the workload references only cataloged objects.
func ValidateQueries(c *Catalog, qs []Query) error {
	for _, q := range qs {
		for pi, p := range q.Phases {
			if len(p.Streams) == 0 {
				return fmt.Errorf("benchdb: query %s phase %d has no streams", q.Name, pi)
			}
			for _, s := range p.Streams {
				if c.Index(s.Object) < 0 {
					return fmt.Errorf("benchdb: query %s references unknown object %q", q.Name, s.Object)
				}
				if s.Bytes <= 0 {
					return fmt.Errorf("benchdb: query %s has non-positive volume on %q", q.Name, s.Object)
				}
			}
		}
	}
	return nil
}

// OLAPWorkload is a sequence of queries executed at a fixed concurrency
// level (paper Fig. 10: OLAP1-21, OLAP1-63, OLAP8-63).
type OLAPWorkload struct {
	Name        string
	Catalog     *Catalog
	Queries     []Query
	Concurrency int
}

// TxnAccess is a batch of random page accesses one transaction performs
// against an object.
type TxnAccess struct {
	Object string
	Pages  int
}

// Transaction is one TPC-C transaction type.
type Transaction struct {
	Name       string
	Weight     float64 // share in the transaction mix
	Reads      []TxnAccess
	Writes     []TxnAccess
	LogBytes   int64 // sequential log write volume per execution
	CPUSeconds float64
}

// OLTPWorkload is a closed-loop transaction mix driven by simulated
// terminals with no think time (paper Sec. 6.1).
type OLTPWorkload struct {
	Name         string
	Catalog      *Catalog
	Transactions []Transaction
	Terminals    int
	LogObject    string
}

// AutoAdminQueries converts an OLAP workload into the SQL-level co-access
// description the AutoAdmin baseline consumes, resolving object names
// against the catalog with the given index offset (non-zero when the
// catalog is embedded in a larger consolidated object list).
func AutoAdminQueries(c *Catalog, qs []Query, offset int) ([]autoadmin.Query, error) {
	out := make([]autoadmin.Query, 0, len(qs))
	for _, q := range qs {
		aq := autoadmin.Query{Name: q.Name, Weight: 1}
		for _, name := range q.Objects() {
			i := c.Index(name)
			if i < 0 {
				return nil, fmt.Errorf("benchdb: unknown object %q", name)
			}
			aq.Accesses = append(aq.Accesses, autoadmin.Access{
				Object: offset + i,
				Volume: float64(q.TotalBytes(name)),
			})
		}
		out = append(out, aq)
	}
	return out, nil
}
