package benchdb

import (
	"testing"

	"dblayout/internal/layout"
)

func TestTPCHCatalogMatchesPaper(t *testing.T) {
	c := TPCH()
	if got := len(c.Objects); got != 20 {
		t.Fatalf("TPC-H has %d objects, want 20", got)
	}
	if got := c.CountKind(layout.KindTable); got != 8 {
		t.Errorf("tables = %d, want 8 (paper Fig. 9)", got)
	}
	if got := c.CountKind(layout.KindIndex); got != 11 {
		t.Errorf("indexes = %d, want 11", got)
	}
	if got := c.CountKind(layout.KindTemp); got != 1 {
		t.Errorf("temp spaces = %d, want 1", got)
	}
	// Total size ~9.4 GB.
	total := float64(c.TotalSize()) / gb
	if total < 9.0 || total > 9.8 {
		t.Errorf("TPC-H total = %.2f GB, want ~9.4", total)
	}
	// LINEITEM is the largest object.
	for _, o := range c.Objects {
		if o.Name != Lineitem && o.Size >= c.SizeOf(Lineitem) {
			t.Errorf("%s (%d) >= LINEITEM", o.Name, o.Size)
		}
	}
}

func TestTPCCCatalogMatchesPaper(t *testing.T) {
	c := TPCC()
	if got := len(c.Objects); got != 20 {
		t.Fatalf("TPC-C has %d objects, want 20", got)
	}
	if got := c.CountKind(layout.KindTable); got != 9 {
		t.Errorf("tables = %d, want 9 (paper Fig. 9)", got)
	}
	if got := c.CountKind(layout.KindIndex); got != 10 {
		t.Errorf("indexes = %d, want 10", got)
	}
	if got := c.CountKind(layout.KindLog); got != 1 {
		t.Errorf("logs = %d, want 1", got)
	}
	total := float64(c.TotalSize()) / gb
	if total < 8.7 || total > 9.5 {
		t.Errorf("TPC-C total = %.2f GB, want ~9.1", total)
	}
}

func TestTPCHQueriesValid(t *testing.T) {
	c := TPCH()
	qs := TPCHQueries()
	if len(qs) != 21 {
		t.Fatalf("%d queries, want 21 (Q9 excluded)", len(qs))
	}
	if err := ValidateQueries(c, qs); err != nil {
		t.Fatal(err)
	}
	for _, q := range qs {
		if q.Name == "Q9" {
			t.Fatal("Q9 must be excluded")
		}
		if q.CPUSeconds <= 0 {
			t.Errorf("%s has no CPU component", q.Name)
		}
	}
}

func TestTPCHWorkloadShapes(t *testing.T) {
	qs := TPCHQueries()
	// Aggregate I/O volume per object; LINEITEM must dominate, ORDERS
	// second among tables — matching the "most heavily accessed objects"
	// ordering in paper Figs. 1 and 12.
	vol := map[string]int64{}
	for _, q := range qs {
		for _, obj := range q.Objects() {
			vol[obj] += q.TotalBytes(obj)
		}
	}
	if vol[Lineitem] <= vol[Orders] {
		t.Errorf("LINEITEM volume %d not > ORDERS %d", vol[Lineitem], vol[Orders])
	}
	if vol[Orders] <= vol[Part] {
		t.Errorf("ORDERS volume %d not > PART %d", vol[Orders], vol[Part])
	}
	if vol[TempSpace] == 0 {
		t.Error("no temp-space traffic")
	}
	if vol[ILOrderkey] == 0 {
		t.Error("no I_L_ORDERKEY traffic")
	}
}

func TestOLAPWorkloads(t *testing.T) {
	cases := []struct {
		w    *OLAPWorkload
		n    int
		conc int
		name string
	}{
		{OLAP121(), 21, 1, "OLAP1-21"},
		{OLAP163(), 63, 1, "OLAP1-63"},
		{OLAP863(), 63, 8, "OLAP8-63"},
	}
	for _, tc := range cases {
		if len(tc.w.Queries) != tc.n {
			t.Errorf("%s: %d queries, want %d", tc.name, len(tc.w.Queries), tc.n)
		}
		if tc.w.Concurrency != tc.conc {
			t.Errorf("%s: concurrency %d, want %d", tc.name, tc.w.Concurrency, tc.conc)
		}
		if tc.w.Name != tc.name {
			t.Errorf("workload name %q, want %q", tc.w.Name, tc.name)
		}
	}
}

func TestOLTPWorkload(t *testing.T) {
	w := OLTP()
	if w.Terminals != 9 {
		t.Errorf("terminals = %d, want 9", w.Terminals)
	}
	var weight float64
	c := w.Catalog
	for _, txn := range w.Transactions {
		weight += txn.Weight
		for _, a := range append(append([]TxnAccess{}, txn.Reads...), txn.Writes...) {
			if c.Index(a.Object) < 0 {
				t.Errorf("%s references unknown object %q", txn.Name, a.Object)
			}
			if a.Pages <= 0 {
				t.Errorf("%s has non-positive page count on %q", txn.Name, a.Object)
			}
		}
	}
	if weight < 0.999 || weight > 1.001 {
		t.Errorf("mix weights sum to %g, want 1", weight)
	}
	if c.Index(w.LogObject) < 0 {
		t.Errorf("log object %q not in catalog", w.LogObject)
	}
}

func TestValidateQueriesRejects(t *testing.T) {
	c := TPCH()
	bad := []Query{{Name: "X", Phases: []Phase{{Streams: []Stream{{Object: "NOPE", Bytes: 1}}}}}}
	if err := ValidateQueries(c, bad); err == nil {
		t.Error("unknown object accepted")
	}
	bad = []Query{{Name: "X", Phases: []Phase{{}}}}
	if err := ValidateQueries(c, bad); err == nil {
		t.Error("empty phase accepted")
	}
	bad = []Query{{Name: "X", Phases: []Phase{{Streams: []Stream{{Object: Lineitem, Bytes: 0}}}}}}
	if err := ValidateQueries(c, bad); err == nil {
		t.Error("zero volume accepted")
	}
}

func TestAutoAdminQueries(t *testing.T) {
	c := TPCH()
	aq, err := AutoAdminQueries(c, TPCHQueries(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(aq) != 21 {
		t.Fatalf("%d queries, want 21", len(aq))
	}
	// Q3 touches ORDERS, CUSTOMER, LINEITEM and TEMP.
	for _, q := range aq {
		if q.Name != "Q3" {
			continue
		}
		if len(q.Accesses) != 4 {
			t.Fatalf("Q3 has %d accesses, want 4", len(q.Accesses))
		}
		for _, a := range q.Accesses {
			if a.Object < 0 || a.Object >= 20 || a.Volume <= 0 {
				t.Fatalf("bad access %+v", a)
			}
		}
	}
	// Offset shifts indices for consolidated catalogs.
	aqOff, err := AutoAdminQueries(c, TPCHQueries()[:1], 20)
	if err != nil {
		t.Fatal(err)
	}
	if aqOff[0].Accesses[0].Object < 20 {
		t.Error("offset not applied")
	}
}

func TestNoNameCollisionsAcrossCatalogs(t *testing.T) {
	h, c := TPCH(), TPCC()
	seen := map[string]bool{}
	for _, o := range h.Objects {
		seen[o.Name] = true
	}
	for _, o := range c.Objects {
		if seen[o.Name] {
			t.Errorf("object name %q appears in both catalogs", o.Name)
		}
	}
}
