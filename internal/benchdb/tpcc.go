package benchdb

import "dblayout/internal/layout"

// Object names of the TPC-C database (9 tables, 10 indexes, 1 log — paper
// Fig. 9). Names are prefixed with "C_" where they would otherwise collide
// with TPC-H objects in the consolidation scenario.
const (
	Stock       = "STOCK"
	COrderLine  = "ORDER_LINE"
	CCustomer   = "C_CUSTOMER"
	CHistory    = "HISTORY"
	COrders     = "C_ORDERS"
	CNewOrder   = "NEW_ORDER"
	CItem       = "ITEM"
	CWarehouse  = "WAREHOUSE"
	CDistrict   = "DISTRICT"
	PkStock     = "PK_STOCK"
	PkCustomer  = "PK_CUSTOMER"
	ICustomer   = "I_CUSTOMER"
	PkOrderLine = "PK_ORDER_LINE"
	PkOrders    = "PK_ORDERS"
	IOrders     = "I_ORDERS"
	PkNewOrder  = "PK_NEW_ORDER"
	PkItem      = "PK_ITEM"
	PkWarehouse = "PK_WAREHOUSE"
	PkDistrict  = "PK_DISTRICT"
	XactionLog  = "XactionLOG"
)

// TPCC returns the 90-warehouse TPC-C catalog: 9.1 GB over 20 objects.
func TPCC() *Catalog {
	return &Catalog{
		Name: "TPC-C",
		Objects: []layout.Object{
			{Name: Stock, Size: 2800 * mb, Kind: layout.KindTable},
			{Name: COrderLine, Size: 1900 * mb, Kind: layout.KindTable},
			{Name: CCustomer, Size: 1760 * mb, Kind: layout.KindTable},
			{Name: CHistory, Size: 200 * mb, Kind: layout.KindTable},
			{Name: COrders, Size: 350 * mb, Kind: layout.KindTable},
			{Name: CNewOrder, Size: 40 * mb, Kind: layout.KindTable},
			{Name: CItem, Size: 35 * mb, Kind: layout.KindTable},
			{Name: CWarehouse, Size: 2 * mb, Kind: layout.KindTable},
			{Name: CDistrict, Size: 2 * mb, Kind: layout.KindTable},
			{Name: PkStock, Size: 250 * mb, Kind: layout.KindIndex},
			{Name: PkCustomer, Size: 120 * mb, Kind: layout.KindIndex},
			{Name: ICustomer, Size: 140 * mb, Kind: layout.KindIndex},
			{Name: PkOrderLine, Size: 600 * mb, Kind: layout.KindIndex},
			{Name: PkOrders, Size: 70 * mb, Kind: layout.KindIndex},
			{Name: IOrders, Size: 70 * mb, Kind: layout.KindIndex},
			{Name: PkNewOrder, Size: 10 * mb, Kind: layout.KindIndex},
			{Name: PkItem, Size: 5 * mb, Kind: layout.KindIndex},
			{Name: PkWarehouse, Size: 1 * mb, Kind: layout.KindIndex},
			{Name: PkDistrict, Size: 1 * mb, Kind: layout.KindIndex},
			{Name: XactionLog, Size: 700 * mb, Kind: layout.KindLog},
		},
	}
}

// TPCCTransactions returns the five-transaction TPC-C mix. Page counts are
// the *uncached* accesses per execution given the paper's 1.5 GB shared
// buffer against the 9.1 GB database: the small hot relations (WAREHOUSE,
// DISTRICT, ITEM, NEW_ORDER and most index upper levels) stay resident, so
// the surviving I/O is dominated by random pages of STOCK, C_CUSTOMER and
// ORDER_LINE plus index leaves, with every transaction appending
// sequentially to the log. CPU seconds include the era's commit costs
// (WAL flush, lock waits); they are calibrated so the nine-terminal rate
// lands near the paper's ~300 tpmC scale.
func TPCCTransactions() []Transaction {
	return []Transaction{
		{
			Name:   "NewOrder",
			Weight: 0.45,
			Reads: []TxnAccess{
				{Object: Stock, Pages: 9},
				{Object: PkStock, Pages: 2},
				{Object: CCustomer, Pages: 1},
			},
			Writes: []TxnAccess{
				{Object: Stock, Pages: 5},
				{Object: COrderLine, Pages: 2},
				{Object: PkOrderLine, Pages: 1},
				{Object: COrders, Pages: 1},
			},
			LogBytes:   8 << 10,
			CPUSeconds: 0.45,
		},
		{
			Name:   "Payment",
			Weight: 0.43,
			Reads: []TxnAccess{
				{Object: CCustomer, Pages: 2},
				{Object: ICustomer, Pages: 1},
			},
			Writes: []TxnAccess{
				{Object: CCustomer, Pages: 1},
				{Object: CHistory, Pages: 1},
			},
			LogBytes:   4 << 10,
			CPUSeconds: 0.30,
		},
		{
			Name:   "OrderStatus",
			Weight: 0.04,
			Reads: []TxnAccess{
				{Object: CCustomer, Pages: 2},
				{Object: IOrders, Pages: 1},
				{Object: COrders, Pages: 1},
				{Object: COrderLine, Pages: 2},
			},
			CPUSeconds: 0.25,
		},
		{
			Name:   "Delivery",
			Weight: 0.04,
			Reads: []TxnAccess{
				{Object: COrders, Pages: 10},
				{Object: COrderLine, Pages: 12},
				{Object: CCustomer, Pages: 10},
			},
			Writes: []TxnAccess{
				{Object: COrders, Pages: 10},
				{Object: COrderLine, Pages: 12},
				{Object: CCustomer, Pages: 10},
			},
			LogBytes:   16 << 10,
			CPUSeconds: 1.2,
		},
		{
			Name:   "StockLevel",
			Weight: 0.04,
			Reads: []TxnAccess{
				{Object: COrderLine, Pages: 40},
				{Object: PkOrderLine, Pages: 4},
				{Object: Stock, Pages: 40},
			},
			CPUSeconds: 0.9,
		},
	}
}

// OLTP returns the nine-terminal, no-think-time TPC-C workload of paper
// Fig. 10.
func OLTP() *OLTPWorkload {
	return &OLTPWorkload{
		Name:         "OLTP",
		Catalog:      TPCC(),
		Transactions: TPCCTransactions(),
		Terminals:    9,
		LogObject:    XactionLog,
	}
}
