package benchdb

import "dblayout/internal/layout"

// Object names of the TPC-H database (8 tables, 11 indexes, 1 temporary
// tablespace — paper Fig. 9).
const (
	Lineitem    = "LINEITEM"
	Orders      = "ORDERS"
	Partsupp    = "PARTSUPP"
	Part        = "PART"
	Customer    = "CUSTOMER"
	Supplier    = "SUPPLIER"
	Nation      = "NATION"
	Region      = "REGION"
	ILOrderkey  = "I_L_ORDERKEY"
	ILSuppkPk   = "I_L_SUPPK_PARTK"
	ILShipdate  = "I_L_SHIPDATE"
	OrdersPkey  = "ORDERS_PKEY"
	IOCustkey   = "I_O_CUSTKEY"
	IOOrderdate = "I_O_ORDERDATE"
	PartsuppPk  = "PARTSUPP_PKEY"
	PartPk      = "PART_PKEY"
	CustomerPk  = "CUSTOMER_PKEY"
	SupplierPk  = "SUPPLIER_PKEY"
	NationPk    = "NATION_PKEY"
	TempSpace   = "TEMP SPACE"
)

const (
	mb = 1 << 20
	gb = 1 << 30
)

// TPCH returns the scale-factor-5 TPC-H catalog: 9.4 GB over 20 objects,
// sized after PostgreSQL's on-disk representation.
func TPCH() *Catalog {
	return &Catalog{
		Name: "TPC-H",
		Objects: []layout.Object{
			{Name: Lineitem, Size: 3900 * mb, Kind: layout.KindTable},
			{Name: Orders, Size: 850 * mb, Kind: layout.KindTable},
			{Name: Partsupp, Size: 640 * mb, Kind: layout.KindTable},
			{Name: Part, Size: 165 * mb, Kind: layout.KindTable},
			{Name: Customer, Size: 130 * mb, Kind: layout.KindTable},
			{Name: Supplier, Size: 8 * mb, Kind: layout.KindTable},
			{Name: Nation, Size: 1 * mb, Kind: layout.KindTable},
			{Name: Region, Size: 1 * mb, Kind: layout.KindTable},
			{Name: ILOrderkey, Size: 700 * mb, Kind: layout.KindIndex},
			{Name: ILSuppkPk, Size: 800 * mb, Kind: layout.KindIndex},
			{Name: ILShipdate, Size: 650 * mb, Kind: layout.KindIndex},
			{Name: OrdersPkey, Size: 160 * mb, Kind: layout.KindIndex},
			{Name: IOCustkey, Size: 160 * mb, Kind: layout.KindIndex},
			{Name: IOOrderdate, Size: 160 * mb, Kind: layout.KindIndex},
			{Name: PartsuppPk, Size: 90 * mb, Kind: layout.KindIndex},
			{Name: PartPk, Size: 25 * mb, Kind: layout.KindIndex},
			{Name: CustomerPk, Size: 20 * mb, Kind: layout.KindIndex},
			{Name: SupplierPk, Size: 3 * mb, Kind: layout.KindIndex},
			{Name: NationPk, Size: 1 * mb, Kind: layout.KindIndex},
			{Name: TempSpace, Size: 1024 * mb, Kind: layout.KindTemp},
		},
	}
}

// seq builds a sequential read stream over a fraction of an object.
func seq(c *Catalog, obj string, frac float64) Stream {
	return Stream{Object: obj, Bytes: int64(frac * float64(c.SizeOf(obj))), ReqSize: ScanSize, Sequential: true}
}

// rnd builds a random page-read stream covering a fraction of an object,
// with a little CPU work per page (index traversal, tuple processing).
func rnd(c *Catalog, obj string, frac float64) Stream {
	return Stream{Object: obj, Bytes: int64(frac * float64(c.SizeOf(obj))), ReqSize: PageSize, ThinkPerReq: 0.2e-3}
}

// tmpW builds a sequential temporary-space spill write. Spills are produced
// at roughly the feeding scan's row rate and flushed asynchronously by the
// page cache, so the stream is paced (~70 MB/s production) but keeps several
// requests in flight across the volume's targets.
func tmpW(bytes int64) Stream {
	return Stream{Object: TempSpace, Bytes: bytes, ReqSize: ScanSize, Sequential: true, Write: true,
		ThinkPerReq: 1.7e-3, Depth: 8}
}
func tmpR(bytes int64) Stream {
	return Stream{Object: TempSpace, Bytes: bytes, ReqSize: ScanSize, Sequential: true}
}

// TPCHQueries returns the 21 usable TPC-H queries (Q9 is excluded, as in the
// paper, for its excessive runtime). Each spec reflects the dominant I/O of
// the PostgreSQL 8.0 plan: sequential scans feeding hash joins and
// aggregations, sort spills to TEMP SPACE, and index-driven random access
// where a plan demands it. CPU seconds approximate the non-I/O portion on
// the paper's 2.4 GHz Xeon server.
func TPCHQueries() []Query {
	c := TPCH()
	return []Query{
		{Name: "Q1", CPUSeconds: 70, Phases: []Phase{
			{Streams: []Stream{seq(c, Lineitem, 1)}},
		}},
		{Name: "Q2", CPUSeconds: 12, Phases: []Phase{
			{Streams: []Stream{seq(c, Partsupp, 1), seq(c, Part, 1)}},
		}},
		{Name: "Q3", CPUSeconds: 35, Phases: []Phase{
			{Streams: []Stream{seq(c, Orders, 1), seq(c, Customer, 1)}},
			{Streams: []Stream{seq(c, Lineitem, 1), tmpW(600 * mb)}},
			{Streams: []Stream{tmpR(600 * mb)}},
		}},
		{Name: "Q4", CPUSeconds: 28, Phases: []Phase{
			{Streams: []Stream{seq(c, Orders, 1)}},
			{Streams: []Stream{seq(c, Lineitem, 1)}},
		}},
		{Name: "Q5", CPUSeconds: 32, Phases: []Phase{
			{Streams: []Stream{seq(c, Orders, 1), seq(c, Customer, 1)}},
			{Streams: []Stream{seq(c, Lineitem, 1)}},
		}},
		{Name: "Q6", CPUSeconds: 18, Phases: []Phase{
			{Streams: []Stream{seq(c, Lineitem, 1)}},
		}},
		{Name: "Q7", CPUSeconds: 38, Phases: []Phase{
			{Streams: []Stream{seq(c, Orders, 1)}},
			{Streams: []Stream{seq(c, Lineitem, 1), tmpW(1200 * mb)}},
			{Streams: []Stream{tmpR(1200 * mb)}},
		}},
		{Name: "Q8", CPUSeconds: 30, Phases: []Phase{
			{Streams: []Stream{seq(c, Part, 1), seq(c, Orders, 1)}},
			{Streams: []Stream{seq(c, Lineitem, 1)}},
		}},
		{Name: "Q10", CPUSeconds: 32, Phases: []Phase{
			{Streams: []Stream{seq(c, Orders, 1)}},
			{Streams: []Stream{seq(c, Lineitem, 1), tmpW(800 * mb)}},
			{Streams: []Stream{tmpR(800 * mb), seq(c, Customer, 1)}},
		}},
		{Name: "Q11", CPUSeconds: 10, Phases: []Phase{
			{Streams: []Stream{seq(c, Partsupp, 1)}},
		}},
		{Name: "Q12", CPUSeconds: 26, Phases: []Phase{
			{Streams: []Stream{seq(c, Orders, 1)}},
			{Streams: []Stream{seq(c, Lineitem, 1)}},
		}},
		{Name: "Q13", CPUSeconds: 34, Phases: []Phase{
			{Streams: []Stream{seq(c, Orders, 1), tmpW(500 * mb)}},
			{Streams: []Stream{tmpR(500 * mb), seq(c, Customer, 1)}},
		}},
		{Name: "Q14", CPUSeconds: 18, Phases: []Phase{
			{Streams: []Stream{seq(c, Lineitem, 1), seq(c, Part, 1)}},
		}},
		{Name: "Q15", CPUSeconds: 28, Phases: []Phase{
			{Streams: []Stream{seq(c, Lineitem, 1)}},
			{Streams: []Stream{seq(c, Lineitem, 1)}},
		}},
		{Name: "Q16", CPUSeconds: 16, Phases: []Phase{
			{Streams: []Stream{seq(c, Partsupp, 1), seq(c, Part, 1)}},
		}},
		{Name: "Q17", CPUSeconds: 22, Phases: []Phase{
			{Streams: []Stream{seq(c, Part, 0.1), rnd(c, ILSuppkPk, 0.3), rnd(c, Lineitem, 0.02)}},
		}},
		{Name: "Q18", CPUSeconds: 45, Phases: []Phase{
			{Streams: []Stream{seq(c, Lineitem, 1), tmpW(2500 * mb)}},
			{Streams: []Stream{tmpR(2500 * mb), rnd(c, ILOrderkey, 0.35), rnd(c, OrdersPkey, 0.45)}},
		}},
		{Name: "Q19", CPUSeconds: 22, Phases: []Phase{
			{Streams: []Stream{seq(c, Lineitem, 1), seq(c, Part, 1)}},
		}},
		{Name: "Q20", CPUSeconds: 26, Phases: []Phase{
			{Streams: []Stream{seq(c, Lineitem, 1)}},
			{Streams: []Stream{seq(c, Partsupp, 1), rnd(c, ILSuppkPk, 0.2)}},
		}},
		{Name: "Q21", CPUSeconds: 48, Phases: []Phase{
			{Streams: []Stream{seq(c, Lineitem, 1), tmpW(1200 * mb)}},
			{Streams: []Stream{rnd(c, ILOrderkey, 0.4), rnd(c, Lineitem, 0.03)}},
			{Streams: []Stream{tmpR(1200 * mb), seq(c, Orders, 1)}},
		}},
		{Name: "Q22", CPUSeconds: 14, Phases: []Phase{
			{Streams: []Stream{seq(c, Customer, 1), rnd(c, IOCustkey, 0.35)}},
		}},
	}
}

// olapMix repeats each query `repeat` times, yielding the paper's
// OLAP1-21 / OLAP1-63 / OLAP8-63 query mixes. The run-time permutation of
// the mix is done by the replay engine with its seed.
func olapMix(repeat int) []Query {
	base := TPCHQueries()
	out := make([]Query, 0, len(base)*repeat)
	for r := 0; r < repeat; r++ {
		out = append(out, base...)
	}
	return out
}

// OLAP121 is the 21-query, concurrency-1 workload (paper Fig. 10).
func OLAP121() *OLAPWorkload {
	return &OLAPWorkload{Name: "OLAP1-21", Catalog: TPCH(), Queries: olapMix(1), Concurrency: 1}
}

// OLAP163 is the 63-query, concurrency-1 workload.
func OLAP163() *OLAPWorkload {
	return &OLAPWorkload{Name: "OLAP1-63", Catalog: TPCH(), Queries: olapMix(3), Concurrency: 1}
}

// OLAP863 is the 63-query, concurrency-8 workload.
func OLAP863() *OLAPWorkload {
	return &OLAPWorkload{Name: "OLAP8-63", Catalog: TPCH(), Queries: olapMix(3), Concurrency: 8}
}
