// Package rubicon fits Rome-style workload descriptions to block I/O traces.
//
// It plays the role of the Rubicon trace-characterization tool (Veitch &
// Keeton, HP Labs) used by the paper: given a trace of the operational
// database system, isolate the requests belonging to each database object and
// fit the workload parameters of paper Fig. 5 — read/write request sizes and
// rates, the sequential run count, and the pairwise temporal overlap matrix.
package rubicon

import (
	"fmt"
	"sort"

	"dblayout/internal/rome"
	"dblayout/internal/storage"
)

// Options controls parameter fitting.
type Options struct {
	// WindowSize is the width in seconds of the co-activity windows used
	// to estimate temporal overlap. Zero selects a default of 1 s.
	WindowSize float64
	// MaxRunCount caps the fitted run count. Calibrated cost models cover
	// a bounded run-count range; fitting beyond it adds no information.
	// Zero selects a default of 512.
	MaxRunCount float64
	// ActiveRates, when true, computes request rates over each object's
	// active windows rather than the whole trace duration. The paper's
	// models use whole-trace averages (the default).
	ActiveRates bool
}

func (o Options) withDefaults() Options {
	if o.WindowSize <= 0 {
		o.WindowSize = 1.0
	}
	if o.MaxRunCount <= 0 {
		o.MaxRunCount = 512
	}
	return o
}

// FitSet analyses a stored trace and returns one fitted workload per object
// name. Objects are identified in the trace by their index into names;
// objects with no trace activity yield idle workloads. The returned set
// carries a full overlap matrix.
//
// FitSet is a convenience wrapper over Fitter, which fits the same
// parameters online from a live simulation.
func FitSet(tr *storage.Trace, names []string, opts Options) (*rome.Set, error) {
	if len(names) == 0 {
		return nil, fmt.Errorf("rubicon: no object names")
	}
	f := NewFitter(names, opts)
	for _, rec := range tr.Records {
		f.Record(rec)
	}
	return f.Fit()
}

// ObjectActivity summarizes when an object was active, for reporting.
type ObjectActivity struct {
	Object        int
	Name          string
	Requests      int64
	Bytes         int64
	FirstSeen     float64
	LastSeen      float64
	ActiveWindows int
}

// Activity returns per-object activity summaries sorted by descending
// request count, handy for the "most heavily accessed objects" views the
// paper's layout figures use.
func Activity(tr *storage.Trace, names []string, windowSize float64) []ObjectActivity {
	if windowSize <= 0 {
		windowSize = 1.0
	}
	acts := make([]ObjectActivity, len(names))
	windows := make([]map[int64]bool, len(names))
	for i := range acts {
		acts[i] = ObjectActivity{Object: i, Name: names[i], FirstSeen: -1}
		windows[i] = make(map[int64]bool)
	}
	for _, rec := range tr.Records {
		if rec.Object < 0 || rec.Object >= len(names) {
			continue
		}
		a := &acts[rec.Object]
		a.Requests++
		a.Bytes += rec.Size
		if a.FirstSeen < 0 {
			a.FirstSeen = rec.Time
		}
		a.LastSeen = rec.Time
		windows[rec.Object][int64(rec.Time/windowSize)] = true
	}
	for i := range acts {
		acts[i].ActiveWindows = len(windows[i])
	}
	sort.SliceStable(acts, func(i, j int) bool { return acts[i].Requests > acts[j].Requests })
	return acts
}
