package rubicon

import (
	"testing"

	"dblayout/internal/storage"
)

// interleavedTrace builds a trace where `streams` sequential scans of the
// same object interleave round-robin on one target.
func interleavedTrace(streams int, perStream int) *storage.Trace {
	tr := &storage.Trace{}
	offsets := make([]int64, streams)
	for s := range offsets {
		offsets[s] = int64(s) << 30
	}
	t := 0.0
	for k := 0; k < perStream; k++ {
		for s := 0; s < streams; s++ {
			tr.Record(storage.TraceRecord{
				Time: t, Object: 0, Target: "d",
				Offset: offsets[s], Size: 8192,
			})
			offsets[s] += 8192
			t += 0.001
		}
	}
	return tr
}

func TestFitConcurrencySingleStream(t *testing.T) {
	set, err := FitSet(interleavedTrace(1, 200), []string{"A"}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	w := set.Workloads[0]
	if w.Concurrency > 1.2 {
		t.Errorf("single stream fitted concurrency %.2f, want ~1", w.Concurrency)
	}
	if w.RunCount < 100 {
		t.Errorf("single stream run count %.1f, want long", w.RunCount)
	}
}

func TestFitConcurrencyInterleavedStreams(t *testing.T) {
	set, err := FitSet(interleavedTrace(3, 200), []string{"A"}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	w := set.Workloads[0]
	if w.Concurrency < 2.2 {
		t.Errorf("3 interleaved streams fitted concurrency %.2f, want ~3", w.Concurrency)
	}
	// Three streams still fit the open-run tracker: runs stay long.
	if w.RunCount < 50 {
		t.Errorf("3 tracked streams run count %.1f, want long", w.RunCount)
	}
}

func TestFitConcurrencyBeyondTracking(t *testing.T) {
	// Eight interleaved streams exceed the device-like tracker: the run
	// count collapses (the paper's "LINEITEM is less sequential under
	// OLAP8-63") and the concurrency estimate saturates near the tracker
	// capacity.
	set, err := FitSet(interleavedTrace(8, 100), []string{"A"}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	w := set.Workloads[0]
	if w.RunCount > 4 {
		t.Errorf("8 interleaved streams run count %.1f, want collapsed", w.RunCount)
	}
	if w.Concurrency < 3 {
		t.Errorf("8 interleaved streams fitted concurrency %.2f, want saturated", w.Concurrency)
	}
}

func TestFitConcurrencyRandomWorkload(t *testing.T) {
	// A purely random workload opens a new "run" per request; the
	// concurrency sample should not explode beyond the tracker bound.
	tr := &storage.Trace{}
	for k := 0; k < 500; k++ {
		tr.Record(storage.TraceRecord{
			Time: float64(k) * 0.001, Object: 0, Target: "d",
			Offset: int64((k * 7919) % 100000 * 8192), Size: 8192,
		})
	}
	set, err := FitSet(tr, []string{"A"}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	w := set.Workloads[0]
	if w.RunCount > 1.5 {
		t.Errorf("random workload run count %.1f", w.RunCount)
	}
	if w.Concurrency > maxOpenRuns+1 {
		t.Errorf("random workload concurrency %.2f exceeds tracker bound", w.Concurrency)
	}
}
