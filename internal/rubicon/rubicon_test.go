package rubicon

import (
	"math"
	"math/rand"
	"testing"

	"dblayout/internal/storage"
)

// synthTrace builds a trace by simulating known workloads so the fitter's
// recovery can be checked against ground truth.
func synthTrace(t *testing.T) *storage.Trace {
	t.Helper()
	e := storage.NewEngine()
	tr := &storage.Trace{}
	e.SetTracer(tr)
	d := storage.NewDisk(e, "d0", storage.Disk15KConfig())

	// Object 0: sequential scan, 8 KB requests, runs of 32.
	s0 := &storage.ClosedSource{Engine: e, Device: d, Object: 0, Stream: 1,
		Pattern: &storage.RunPattern{Rng: rand.New(rand.NewSource(1)), Base: 0, Extent: 1 << 30,
			Size: 8192, RunLen: 32, Count: 640}}
	// Object 1: random reads+writes, 4 KB.
	s1 := &storage.ClosedSource{Engine: e, Device: d, Object: 1, Stream: 2,
		Pattern: &storage.RunPattern{Rng: rand.New(rand.NewSource(2)), Base: 2 << 30, Extent: 1 << 30,
			Size: 4096, RunLen: 1, Count: 500, WriteFrac: 0.4}}
	s0.Start()
	s1.Start()
	e.Run(0)
	return tr
}

func TestFitSetRecoversParameters(t *testing.T) {
	tr := synthTrace(t)
	set, err := FitSet(tr, []string{"SCAN", "RANDOM", "IDLE"}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	scan, random, idle := set.Workloads[0], set.Workloads[1], set.Workloads[2]

	if math.Abs(scan.ReadSize-8192) > 1 {
		t.Errorf("scan read size %g, want 8192", scan.ReadSize)
	}
	if scan.WriteRate != 0 {
		t.Errorf("scan write rate %g, want 0", scan.WriteRate)
	}
	// Interleaving with the random stream can split some runs; the fitted
	// run count should still be clearly sequential.
	if scan.RunCount < 8 {
		t.Errorf("scan run count %g, want >= 8", scan.RunCount)
	}
	if random.RunCount > 1.5 {
		t.Errorf("random run count %g, want ~1", random.RunCount)
	}
	if math.Abs(random.ReadSize-4096) > 1 || math.Abs(random.WriteSize-4096) > 1 {
		t.Errorf("random sizes %g/%g, want 4096", random.ReadSize, random.WriteSize)
	}
	wf := random.WriteRate / random.TotalRate()
	if wf < 0.3 || wf > 0.5 {
		t.Errorf("random write fraction %.2f, want ~0.4", wf)
	}
	if !idle.Idle() {
		t.Errorf("idle object fitted non-idle: %v", idle)
	}

	// Both active objects run concurrently from t=0, so overlap is high.
	if o := set.Overlap(0, 1); o < 0.5 {
		t.Errorf("overlap(scan,random) = %g, want high", o)
	}
	if o := set.Overlap(0, 2); o != 0 {
		t.Errorf("overlap with idle object = %g, want 0", o)
	}
}

func TestFitSetRates(t *testing.T) {
	tr := synthTrace(t)
	set, err := FitSet(tr, []string{"SCAN", "RANDOM", "IDLE"}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	dur := tr.Duration()
	reads := 0
	for _, r := range tr.Records {
		if r.Object == 0 && !r.Write {
			reads++
		}
	}
	want := float64(reads) / dur
	if got := set.Workloads[0].ReadRate; math.Abs(got-want)/want > 0.01 {
		t.Errorf("scan read rate %g, want %g", got, want)
	}
}

func TestFitSetDisjointInTime(t *testing.T) {
	// Two objects active in disjoint periods must have zero overlap.
	tr := &storage.Trace{}
	for i := 0; i < 50; i++ {
		tr.Record(storage.TraceRecord{Time: float64(i) * 0.1, Object: 0, Target: "d", Offset: int64(i) * 8192, Size: 8192})
	}
	for i := 0; i < 50; i++ {
		tr.Record(storage.TraceRecord{Time: 100 + float64(i)*0.1, Object: 1, Target: "d", Offset: int64(i) * 8192, Size: 8192})
	}
	set, err := FitSet(tr, []string{"A", "B"}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if o := set.Overlap(0, 1); o != 0 {
		t.Errorf("disjoint workloads overlap = %g, want 0", o)
	}
	// Both are perfectly sequential single streams: run count should cap
	// at the request count or the configured maximum.
	if rc := set.Workloads[0].RunCount; rc < 49 {
		t.Errorf("run count %g, want 50", rc)
	}
}

func TestFitSetActiveRates(t *testing.T) {
	// Object active for 5 s within a 100 s trace: whole-trace rate is 20x
	// lower than active rate.
	tr := &storage.Trace{}
	for i := 0; i < 500; i++ {
		tr.Record(storage.TraceRecord{Time: float64(i) * 0.01, Object: 0, Target: "d", Offset: int64(i) * 4096, Size: 4096})
	}
	tr.Record(storage.TraceRecord{Time: 100, Object: 1, Target: "d", Offset: 0, Size: 4096})

	whole, err := FitSet(tr, []string{"A", "B"}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	active, err := FitSet(tr, []string{"A", "B"}, Options{ActiveRates: true})
	if err != nil {
		t.Fatal(err)
	}
	if wr, ar := whole.Workloads[0].ReadRate, active.Workloads[0].ReadRate; ar < 10*wr {
		t.Errorf("active rate %g not ≫ whole-trace rate %g", ar, wr)
	}
}

func TestFitSetMaxRunCountCap(t *testing.T) {
	tr := &storage.Trace{}
	for i := 0; i < 5000; i++ {
		tr.Record(storage.TraceRecord{Time: float64(i) * 0.001, Object: 0, Target: "d", Offset: int64(i) * 8192, Size: 8192})
	}
	set, err := FitSet(tr, []string{"A"}, Options{MaxRunCount: 64})
	if err != nil {
		t.Fatal(err)
	}
	if rc := set.Workloads[0].RunCount; rc != 64 {
		t.Errorf("run count %g, want capped at 64", rc)
	}
}

func TestFitSetErrors(t *testing.T) {
	if _, err := FitSet(&storage.Trace{}, nil, Options{}); err == nil {
		t.Error("no names accepted")
	}
	tr := &storage.Trace{}
	tr.Record(storage.TraceRecord{Object: 5})
	if _, err := FitSet(tr, []string{"A"}, Options{}); err == nil {
		t.Error("out-of-range object index accepted")
	}
}

func TestFitSetEmptyTrace(t *testing.T) {
	set, err := FitSet(&storage.Trace{}, []string{"A", "B"}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range set.Workloads {
		if !w.Idle() {
			t.Errorf("workload %s not idle on empty trace", w.Name)
		}
	}
}

func TestActivityOrdering(t *testing.T) {
	tr := synthTrace(t)
	acts := Activity(tr, []string{"SCAN", "RANDOM", "IDLE"}, 1.0)
	if acts[0].Name != "SCAN" {
		t.Errorf("most active object = %s, want SCAN", acts[0].Name)
	}
	if acts[len(acts)-1].Requests != 0 {
		t.Errorf("idle object should sort last")
	}
	if acts[0].Requests != 640 {
		t.Errorf("scan requests = %d, want 640", acts[0].Requests)
	}
}
