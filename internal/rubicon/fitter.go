package rubicon

import (
	"fmt"

	"dblayout/internal/rome"
	"dblayout/internal/storage"
)

// Fitter accumulates workload statistics from trace records as they are
// produced. It implements storage.Tracer, so it can be attached directly to
// a simulation engine and fit workload descriptions online without ever
// materializing the trace — the practical deployment mode for long traces.
type Fitter struct {
	opts  Options
	names []string
	stats []fitStats

	started     bool
	first, last float64
	err         error
}

// maxOpenRuns bounds the number of concurrent sequential positions tracked
// per (object, target). The bound is deliberately small — on the order of a
// disk's read-ahead tracking ability — so the fitted run count reflects the
// sequentiality a *device* could actually exploit: a handful of concurrent
// scans of one object still fit long runs, but heavy query concurrency
// (OLAP8-63) degrades the object's fitted run count, which is exactly the
// "LINEITEM is less sequential under OLAP8-63" effect the paper reports in
// Sec. 6.2.
const maxOpenRuns = 4

type fitStats struct {
	reads, writes         int64
	readBytes, writeBytes int64
	runs                  int64
	openRuns              map[string][]openRun // per-target open runs, MRU first
	accesses              map[string]int64     // per-target access counter
	concSum               float64              // accumulated concurrency samples
	concN                 int64
	activeWindows         map[int64]bool
}

// openRun is one concurrent sequential position on a target.
type openRun struct {
	end  int64 // offset the run's next request would have
	seen int64 // target access counter at the run's last extension
}

// concWindow is how many recent accesses of the (object, target) pair a run
// may be idle for and still count as concurrently active.
const concWindow = 8

// extendRun continues an open run on the target if the request matches one,
// or opens a new run. It reports whether a new run started, and samples the
// number of concurrently active runs (the workload's stream concurrency).
func (s *fitStats) extendRun(target string, offset, size int64) bool {
	s.accesses[target]++
	now := s.accesses[target]
	ends := s.openRuns[target]

	active := 0
	for _, r := range ends {
		if now-r.seen <= concWindow {
			active++
		}
	}
	if active < 1 {
		active = 1
	}
	s.concSum += float64(active)
	s.concN++

	for k, r := range ends {
		if r.end == offset {
			// Continue this run; move it to the front (MRU).
			copy(ends[1:k+1], ends[:k])
			ends[0] = openRun{end: offset + size, seen: now}
			return false
		}
	}
	if len(ends) >= maxOpenRuns {
		ends = ends[:maxOpenRuns-1]
	}
	s.openRuns[target] = append([]openRun{{end: offset + size, seen: now}}, ends...)
	return true
}

// NewFitter prepares an online fitter for the named objects.
func NewFitter(names []string, opts Options) *Fitter {
	f := &Fitter{opts: opts.withDefaults(), names: names, stats: make([]fitStats, len(names))}
	for i := range f.stats {
		f.stats[i].openRuns = make(map[string][]openRun)
		f.stats[i].accesses = make(map[string]int64)
		f.stats[i].activeWindows = make(map[int64]bool)
	}
	return f
}

// Record implements storage.Tracer. A record for an object outside the
// known range poisons the fitter; Fit reports the error.
func (f *Fitter) Record(rec storage.TraceRecord) {
	if rec.Object < 0 || rec.Object >= len(f.stats) {
		if f.err == nil {
			f.err = fmt.Errorf("rubicon: trace object index %d outside [0,%d)", rec.Object, len(f.stats))
		}
		return
	}
	if !f.started {
		f.started = true
		f.first = rec.Time
	}
	f.last = rec.Time

	s := &f.stats[rec.Object]
	if rec.Write {
		s.writes++
		s.writeBytes += rec.Size
	} else {
		s.reads++
		s.readBytes += rec.Size
	}
	if s.extendRun(rec.Target, rec.Offset, rec.Size) {
		s.runs++
	}
	s.activeWindows[int64((rec.Time-f.first)/f.opts.WindowSize)] = true
}

// Fit finalizes the accumulated statistics into a workload set.
func (f *Fitter) Fit() (*rome.Set, error) {
	if f.err != nil {
		return nil, f.err
	}
	n := len(f.names)
	if n == 0 {
		return nil, fmt.Errorf("rubicon: no object names")
	}
	ws := make([]*rome.Workload, n)
	for i, name := range f.names {
		ws[i] = &rome.Workload{Name: name, RunCount: 1, Overlap: make([]float64, n)}
		ws[i].Overlap[i] = 1
	}
	if !f.started {
		return rome.NewSet(ws...)
	}
	duration := f.last - f.first
	if duration <= 0 {
		duration = 1e-9
	}

	for i := range f.stats {
		s := &f.stats[i]
		w := ws[i]
		div := duration
		if f.opts.ActiveRates {
			if aw := float64(len(s.activeWindows)) * f.opts.WindowSize; aw > 0 {
				div = aw
			}
		}
		w.ReadRate = float64(s.reads) / div
		w.WriteRate = float64(s.writes) / div
		if s.reads > 0 {
			w.ReadSize = float64(s.readBytes) / float64(s.reads)
		}
		if s.writes > 0 {
			w.WriteSize = float64(s.writeBytes) / float64(s.writes)
		}
		if s.concN > 0 {
			w.Concurrency = s.concSum / float64(s.concN)
		}
		if total := s.reads + s.writes; total > 0 && s.runs > 0 {
			w.RunCount = float64(total) / float64(s.runs)
			if w.RunCount > f.opts.MaxRunCount {
				w.RunCount = f.opts.MaxRunCount
			}
			if w.RunCount < 1 {
				w.RunCount = 1
			}
		}
	}

	// Overlap is normalized by the busier object's active-window count and
	// both matrix entries are assigned from the one computation, so the
	// fitted matrix is symmetric by construction (rome.Set rejects
	// asymmetric matrices: they would make Eq. 2 direction-dependent).
	// Normalizing each row by its own window count — the previous
	// behaviour — inflated the overlap seen by the rarely-active object of
	// an unbalanced pair.
	for i := range f.stats {
		ai := f.stats[i].activeWindows
		if len(ai) == 0 {
			continue
		}
		for j := i + 1; j < n; j++ {
			aj := f.stats[j].activeWindows
			if len(aj) == 0 {
				continue
			}
			both := 0
			for wnd := range ai {
				if aj[wnd] {
					both++
				}
			}
			denom := len(ai)
			if len(aj) > denom {
				denom = len(aj)
			}
			ov := float64(both) / float64(denom)
			ws[i].Overlap[j] = ov
			ws[j].Overlap[i] = ov
		}
	}
	return rome.NewSet(ws...)
}
