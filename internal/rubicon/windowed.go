package rubicon

import (
	"math"

	"dblayout/internal/rome"
	"dblayout/internal/storage"
)

// WindowFit is the workload model fitted over one refit window of the trace
// stream.
type WindowFit struct {
	// Window is the refit window index (0-based, counted from the first
	// record; empty windows are skipped and do not appear as fits).
	Window int64
	// Start and End bound the window in trace time.
	Start, End float64
	// Set is the workload model fitted from this window's records alone.
	Set *rome.Set
	// Requests is the number of records the window saw.
	Requests int64
	// OverlapDistance is the distance between this window's fitted overlap
	// matrix and the previous fitted window's (0 for the first fit) — the
	// workload-composition drift signal: a workload whose rates merely
	// scale keeps its overlap structure, while a phase change (OLTP
	// daytime giving way to OLAP reporting) reshapes which objects are
	// co-active and moves this distance.
	OverlapDistance float64
}

// Windowed cuts the trace stream into fixed-width refit windows and fits an
// independent workload model per window, exposing the distance between
// successive fitted overlap matrices as a drift signal. It implements
// storage.Tracer, so it can ride the same engine hook as a whole-run Fitter.
//
// Records must arrive in non-decreasing time order (the order a simulation
// produces them). The final, partial window is fitted by Flush.
type Windowed struct {
	// OnFit, when non-nil, is invoked synchronously as each window's fit
	// completes — the hook a drift detector observes.
	OnFit func(WindowFit)

	names []string
	opts  Options
	size  float64

	cur      *Fitter
	started  bool
	first    float64 // time of the very first record (window origin)
	curIdx   int64   // index of the window cur accumulates
	curReqs  int64
	prev     *rome.Set
	fits     []WindowFit
	firstErr error
}

// NewWindowed prepares a windowed fitter over the named objects. size is the
// refit window width in trace seconds (values <= 0 select 16× the per-fitter
// overlap window, a span wide enough for stable rate estimates).
func NewWindowed(names []string, size float64, opts Options) *Windowed {
	opts = opts.withDefaults()
	if size <= 0 {
		size = 16 * opts.WindowSize
	}
	return &Windowed{names: names, opts: opts, size: size}
}

// Size returns the refit window width in trace seconds.
func (w *Windowed) Size() float64 { return w.size }

// Record implements storage.Tracer, rolling the refit window forward as the
// trace time crosses window boundaries.
func (w *Windowed) Record(rec storage.TraceRecord) {
	if !w.started {
		w.started = true
		w.first = rec.Time
		w.cur = NewFitter(w.names, w.opts)
	}
	idx := int64((rec.Time - w.first) / w.size)
	if idx > w.curIdx {
		w.finalize()
		w.curIdx = idx
		w.cur = NewFitter(w.names, w.opts)
	}
	w.cur.Record(rec)
	w.curReqs++
}

// finalize fits the current window (if it saw any records) and resets the
// per-window counters.
func (w *Windowed) finalize() {
	if w.cur == nil || w.curReqs == 0 {
		return
	}
	set, err := w.cur.Fit()
	if err != nil {
		if w.firstErr == nil {
			w.firstErr = err
		}
		w.curReqs = 0
		return
	}
	fit := WindowFit{
		Window:   w.curIdx,
		Start:    w.first + float64(w.curIdx)*w.size,
		End:      w.first + float64(w.curIdx+1)*w.size,
		Set:      set,
		Requests: w.curReqs,
	}
	if w.prev != nil {
		fit.OverlapDistance = OverlapDistance(w.prev, set)
	}
	w.prev = set
	w.curReqs = 0
	w.fits = append(w.fits, fit)
	if w.OnFit != nil {
		w.OnFit(fit)
	}
}

// Flush fits the trailing partial window and returns every fit in window
// order, or the first error any window's fit reported.
func (w *Windowed) Flush() ([]WindowFit, error) {
	w.finalize()
	w.cur = nil
	if w.firstErr != nil {
		return nil, w.firstErr
	}
	return w.fits, nil
}

// OverlapDistance measures how far apart two fitted workload sets' overlap
// matrices are: the mean absolute difference over the distinct pairs (i < j),
// in [0, 1]. Sets of different sizes compare over their common prefix; sets
// with fewer than two common workloads are at distance 0.
func OverlapDistance(a, b *rome.Set) float64 {
	if a == nil || b == nil {
		return 0
	}
	n := len(a.Workloads)
	if len(b.Workloads) < n {
		n = len(b.Workloads)
	}
	if n < 2 {
		return 0
	}
	var sum float64
	var pairs int
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			sum += math.Abs(a.Overlap(i, j) - b.Overlap(i, j))
			pairs++
		}
	}
	return sum / float64(pairs)
}
