package rubicon

import (
	"math"
	"testing"

	"dblayout/internal/rome"
	"dblayout/internal/storage"
)

// phaseTrace feeds w a hand-built two-phase trace: objects A(0)+B(1)
// co-active over [0,10), then A(0)+C(2) over [10,20). Each active object
// issues one sequential 8 KB read every 0.1 s.
func phaseTrace(w *Windowed) {
	rec := func(t float64, obj int, i int) {
		w.Record(storage.TraceRecord{Time: t, Object: obj, Stream: uint64(obj + 1),
			Target: "d", Offset: int64(i) * 8192, Size: 8192})
	}
	for i := 0; i < 100; i++ {
		t := float64(i) * 0.1
		rec(t, 0, i)
		rec(t, 1, i)
	}
	for i := 0; i < 100; i++ {
		t := 10 + float64(i)*0.1
		rec(t, 0, 100+i)
		rec(t, 2, i)
	}
}

func TestWindowedPhaseChangeMovesOverlapDistance(t *testing.T) {
	w := NewWindowed([]string{"A", "B", "C"}, 10, Options{WindowSize: 1})
	var seen []WindowFit
	w.OnFit = func(f WindowFit) { seen = append(seen, f) }
	phaseTrace(w)
	fits, err := w.Flush()
	if err != nil {
		t.Fatal(err)
	}
	if len(fits) != 2 {
		t.Fatalf("got %d fits, want 2 (one per phase)", len(fits))
	}
	if len(seen) != len(fits) {
		t.Fatalf("OnFit saw %d fits, Flush returned %d", len(seen), len(fits))
	}
	f0, f1 := fits[0], fits[1]
	if f0.Window != 0 || f1.Window != 1 {
		t.Fatalf("window indices %d/%d, want 0/1", f0.Window, f1.Window)
	}
	if f0.Requests != 200 || f1.Requests != 200 {
		t.Fatalf("window requests %d/%d, want 200/200", f0.Requests, f1.Requests)
	}
	if f0.Start != 0 || f0.End != 10 || f1.Start != 10 || f1.End != 20 {
		t.Fatalf("window bounds [%g,%g)/[%g,%g)", f0.Start, f0.End, f1.Start, f1.End)
	}
	// Phase 1: A and B co-active, C idle.
	if o := f0.Set.Overlap(0, 1); o < 0.5 {
		t.Errorf("phase-1 overlap(A,B) = %g, want high", o)
	}
	if o := f0.Set.Overlap(0, 2); o != 0 {
		t.Errorf("phase-1 overlap(A,C) = %g, want 0", o)
	}
	// Phase 2 swaps B for C, reshaping the overlap matrix: the (A,B) and
	// (A,C) entries both move by ~1, so the mean over the 3 pairs is ~2/3.
	if f0.OverlapDistance != 0 {
		t.Errorf("first fit distance = %g, want 0 (no predecessor)", f0.OverlapDistance)
	}
	if f1.OverlapDistance < 0.5 {
		t.Errorf("phase-change distance = %g, want >= 0.5", f1.OverlapDistance)
	}
}

func TestWindowedSkipsEmptyWindows(t *testing.T) {
	w := NewWindowed([]string{"A"}, 1, Options{WindowSize: 0.1})
	// Records only in windows 0 and 3; windows 1-2 see nothing.
	for _, tm := range []float64{0.1, 0.5, 3.2, 3.7} {
		w.Record(storage.TraceRecord{Time: tm, Object: 0, Stream: 1, Target: "d", Size: 8192})
	}
	fits, err := w.Flush()
	if err != nil {
		t.Fatal(err)
	}
	if len(fits) != 2 || fits[0].Window != 0 || fits[1].Window != 3 {
		t.Fatalf("fits = %+v, want windows 0 and 3 only", fits)
	}
}

func TestWindowedDefaultSize(t *testing.T) {
	w := NewWindowed([]string{"A"}, 0, Options{WindowSize: 2})
	if got := w.Size(); got != 32 {
		t.Fatalf("default refit size = %g, want 16x overlap window = 32", got)
	}
}

func TestOverlapDistanceCases(t *testing.T) {
	mk := func(rows ...[]float64) *rome.Set {
		s := &rome.Set{}
		for i, row := range rows {
			s.Workloads = append(s.Workloads, &rome.Workload{Name: string(rune('a' + i)), Overlap: row})
		}
		return s
	}
	a := mk([]float64{1, 0.8}, []float64{0.8, 1})
	b := mk([]float64{1, 0.2}, []float64{0.2, 1})
	if got := OverlapDistance(a, b); math.Abs(got-0.6) > 1e-12 {
		t.Errorf("distance = %g, want 0.6", got)
	}
	if got := OverlapDistance(a, a); got != 0 {
		t.Errorf("self distance = %g, want 0", got)
	}
	if got := OverlapDistance(nil, a); got != 0 {
		t.Errorf("nil distance = %g, want 0", got)
	}
	single := mk([]float64{1})
	if got := OverlapDistance(single, single); got != 0 {
		t.Errorf("single-workload distance = %g, want 0", got)
	}
	// Different sizes compare over the common prefix: a 3-object set vs a
	// 2-object set uses only the (0,1) pair.
	big := mk([]float64{1, 0.8, 0.5}, []float64{0.8, 1, 0.5}, []float64{0.5, 0.5, 1})
	if got := OverlapDistance(big, b); math.Abs(got-0.6) > 1e-12 {
		t.Errorf("mixed-size distance = %g, want 0.6", got)
	}
}
