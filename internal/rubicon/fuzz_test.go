package rubicon

import (
	"testing"

	"dblayout/internal/storage"
)

// FuzzFitWorkloads drives the workload fitter with arbitrary trace records.
// Whatever the trace looks like — hostile times, offsets, object indices —
// the fitter must either report an error or produce a workload set that
// passes rome's validation (finite, non-negative parameters), because that
// set feeds straight into the advisor.
func FuzzFitWorkloads(f *testing.F) {
	f.Add(int64(0), int64(8192), 0.0, uint8(0), false)
	f.Add(int64(4096), int64(131072), 1.5, uint8(1), true)
	f.Add(int64(-1), int64(-5), -2.0, uint8(200), false)
	f.Add(int64(1<<40), int64(1), 1e12, uint8(3), true)
	f.Fuzz(func(t *testing.T, off, size int64, tm float64, obj uint8, write bool) {
		names := []string{"A", "B", "C"}
		tr := &storage.Trace{}
		// A deterministic base pattern plus the fuzzed record, so the
		// fitter sees both sane and hostile data in one trace.
		for i := 0; i < 8; i++ {
			tr.Records = append(tr.Records, storage.TraceRecord{
				Time: float64(i) * 0.1, Object: i % 3, Stream: uint64(i),
				Target: "d0", Offset: int64(i) * 8192, Size: 8192,
			})
		}
		tr.Records = append(tr.Records, storage.TraceRecord{
			Time: tm, Object: int(obj), Stream: 7, Target: "d0",
			Offset: off, Size: size, Write: write,
		})
		set, err := FitSet(tr, names, Options{})
		if err != nil {
			return
		}
		if verr := set.Validate(); verr != nil {
			t.Fatalf("fitted set fails validation: %v", verr)
		}
	})
}
