package estimator

import (
	"testing"

	"dblayout/internal/benchdb"
	"dblayout/internal/core"
	"dblayout/internal/layout"
	"dblayout/internal/layouttest"
	"dblayout/internal/nlp"
	"dblayout/internal/replay"
	"dblayout/internal/rubicon"
)

func TestEstimateOLAPBasics(t *testing.T) {
	w := benchdb.OLAP163()
	set, err := EstimateOLAP(w, DefaultAssumptions(4))
	if err != nil {
		t.Fatal(err)
	}
	if set.Len() != 20 {
		t.Fatalf("estimated %d workloads, want 20", set.Len())
	}
	idx := func(name string) int { return set.Index(name) }
	l := set.Workloads[idx(benchdb.Lineitem)]
	o := set.Workloads[idx(benchdb.Orders)]
	nation := set.Workloads[idx(benchdb.Nation)]

	if l.Idle() || o.Idle() {
		t.Fatal("hot objects estimated idle")
	}
	if !nation.Idle() {
		t.Error("untouched object estimated active")
	}
	// LINEITEM streams at scan bandwidth while active and is sequential.
	// (Rates are per-active-window, so they are not directly comparable
	// across objects with different duty cycles.)
	if l.Bandwidth() < 20<<20 {
		t.Errorf("LINEITEM active bandwidth %.0f B/s, want scan-class", l.Bandwidth())
	}
	if l.RunCount < 8 {
		t.Errorf("LINEITEM run count %.1f, want sequential", l.RunCount)
	}
	// The mean read size is scan-dominated (a little 8 KB random access
	// from the index-driven plans pulls it slightly below ScanSize).
	if l.ReadSize < 64<<10 || l.ReadSize > benchdb.ScanSize {
		t.Errorf("LINEITEM read size %.0f, want scan-dominated", l.ReadSize)
	}
	// Temp space sees both reads and writes.
	tmp := set.Workloads[idx(benchdb.TempSpace)]
	if tmp.ReadRate <= 0 || tmp.WriteRate <= 0 {
		t.Errorf("temp space rates %g/%g", tmp.ReadRate, tmp.WriteRate)
	}
	// LINEITEM and TEMP SPACE are co-active (spills during scans).
	if ov := set.Overlap(idx(benchdb.Lineitem), idx(benchdb.TempSpace)); ov <= 0.2 {
		t.Errorf("LINEITEM/TEMP overlap %.2f, want substantial", ov)
	}
}

func TestEstimateOLAPConcurrencyScaling(t *testing.T) {
	w1, w8 := benchdb.OLAP163(), benchdb.OLAP863()
	s1, err := EstimateOLAP(w1, DefaultAssumptions(4))
	if err != nil {
		t.Fatal(err)
	}
	s8, err := EstimateOLAP(w8, DefaultAssumptions(4))
	if err != nil {
		t.Fatal(err)
	}
	i := s1.Index(benchdb.Lineitem)
	// Concurrency raises both the rate and the stream concurrency.
	if s8.Workloads[i].TotalRate() <= s1.Workloads[i].TotalRate() {
		t.Error("concurrency did not raise estimated rates")
	}
	if s8.Workloads[i].Concurrency <= s1.Workloads[i].Concurrency {
		t.Error("concurrency did not raise estimated stream concurrency")
	}
}

// TestEstimateAgreesWithTraceFit compares the estimator's descriptions with
// trace-fitted ones, the comparison the paper draws between its two input
// paths. The estimates should identify the same hot objects and the same
// sequential/random classification, though rates may differ by a modest
// factor ("may be less accurate").
func TestEstimateAgreesWithTraceFit(t *testing.T) {
	w := benchdb.OLAP163()
	est, err := EstimateOLAP(w, DefaultAssumptions(4))
	if err != nil {
		t.Fatal(err)
	}

	sys := &replay.System{
		Objects: w.Catalog.Objects,
		Devices: []replay.DeviceSpec{
			replay.Disk15K("d0"), replay.Disk15K("d1"),
			replay.Disk15K("d2"), replay.Disk15K("d3"),
		},
	}
	fitter := rubicon.NewFitter(names(sys), rubicon.Options{ActiveRates: true})
	if _, err := replay.RunOLAP(sys, layout.SEE(20, 4), w, replay.Options{Seed: 1, Tracer: fitter}); err != nil {
		t.Fatal(err)
	}
	fit, err := fitter.Fit()
	if err != nil {
		t.Fatal(err)
	}

	for i, ew := range est.Workloads {
		fw := fit.Workloads[i]
		if ew.Idle() != fw.Idle() {
			t.Errorf("%s: estimate idle=%v, fit idle=%v", ew.Name, ew.Idle(), fw.Idle())
			continue
		}
		if ew.Idle() {
			continue
		}
		// Same sequential/random classification.
		if (ew.RunCount > 4) != (fw.RunCount > 4) {
			t.Errorf("%s: estimate run %.1f vs fit run %.1f disagree on class",
				ew.Name, ew.RunCount, fw.RunCount)
		}
		// Rates within an order of magnitude.
		ratio := ew.TotalRate() / fw.TotalRate()
		if ratio < 0.1 || ratio > 10 {
			t.Errorf("%s: estimated rate %.1f vs fitted %.1f (ratio %.2f)",
				ew.Name, ew.TotalRate(), fw.TotalRate(), ratio)
		}
	}
}

// TestAdviseFromEstimates drives the advisor entirely from estimated
// workloads — the trace-free deployment mode — and checks it produces a
// valid layout that separates the hot co-active pairs.
func TestAdviseFromEstimates(t *testing.T) {
	w := benchdb.OLAP163()
	est, err := EstimateOLAP(w, DefaultAssumptions(4))
	if err != nil {
		t.Fatal(err)
	}
	inst := &layout.Instance{
		Objects:   w.Catalog.Objects,
		Targets:   layouttest.Targets(4, 20<<30),
		Workloads: est,
	}
	if err := inst.Validate(); err != nil {
		t.Fatal(err)
	}
	heuristic, err := layout.InitialLayout(inst)
	if err != nil {
		t.Fatal(err)
	}
	adv, err := core.New(inst, core.Options{
		NLP:            nlp.Options{Seed: 1},
		InitialLayouts: []*layout.Layout{heuristic, layout.SEE(20, 4)},
	})
	if err != nil {
		t.Fatal(err)
	}
	rec, err := adv.Recommend()
	if err != nil {
		t.Fatal(err)
	}
	if err := inst.ValidateLayout(rec.Final); err != nil {
		t.Fatal(err)
	}
	ev := adv.Evaluator()
	if see := ev.MaxUtilization(layout.SEE(20, 4)); rec.FinalObjective > see*(1+1e-9) {
		t.Errorf("estimate-driven advice %.3f worse than SEE %.3f", rec.FinalObjective, see)
	}
}

func TestEstimateOLTP(t *testing.T) {
	w := benchdb.OLTP()
	set, err := EstimateOLTP(w, DefaultAssumptions(4))
	if err != nil {
		t.Fatal(err)
	}
	if set.Len() != 20 {
		t.Fatalf("estimated %d workloads, want 20", set.Len())
	}
	stock := set.Workloads[set.Index(benchdb.Stock)]
	log := set.Workloads[set.Index(benchdb.XactionLog)]
	item := set.Workloads[set.Index(benchdb.CItem)]
	if stock.Idle() || stock.RunCount > 2 {
		t.Errorf("STOCK should be hot and random: %v", stock)
	}
	if log.WriteRate <= 0 || log.RunCount < 8 {
		t.Errorf("log should be sequential writes: %v", log)
	}
	if !item.Idle() {
		t.Errorf("fully-cached ITEM should estimate idle: %v", item)
	}
	// Continuous mix: hot objects overlap fully.
	if ov := set.Overlap(set.Index(benchdb.Stock), set.Index(benchdb.CCustomer)); ov != 1 {
		t.Errorf("STOCK/C_CUSTOMER overlap %.2f, want 1", ov)
	}
	// ...but not with idle ones.
	if ov := set.Overlap(set.Index(benchdb.Stock), set.Index(benchdb.CItem)); ov != 0 {
		t.Errorf("overlap with idle object %.2f, want 0", ov)
	}
}

func TestMergeConsolidation(t *testing.T) {
	olap, err := EstimateOLAP(benchdb.OLAP121(), DefaultAssumptions(4))
	if err != nil {
		t.Fatal(err)
	}
	oltp, err := EstimateOLTP(benchdb.OLTP(), DefaultAssumptions(4))
	if err != nil {
		t.Fatal(err)
	}
	merged := Merge(olap, oltp)
	if merged.Len() != 40 {
		t.Fatalf("merged %d workloads, want 40", merged.Len())
	}
	if err := merged.Validate(); err != nil {
		t.Fatal(err)
	}
	li := merged.Index(benchdb.Lineitem)
	st := merged.Index(benchdb.Stock)
	if ov := merged.Overlap(li, st); ov < 0.5 {
		t.Errorf("cross-set overlap %.2f, want high (OLTP always on)", ov)
	}
}

func TestEstimatorErrors(t *testing.T) {
	w := benchdb.OLAP121()
	w.Queries[0].Phases[0].Streams[0].Object = "NOPE"
	if _, err := EstimateOLAP(w, DefaultAssumptions(4)); err == nil {
		t.Error("unknown object accepted")
	}
	oltp := benchdb.OLTP()
	oltp.Transactions = nil
	if _, err := EstimateOLTP(oltp, DefaultAssumptions(4)); err == nil {
		t.Error("empty mix accepted")
	}
}

func names(sys *replay.System) []string {
	out := make([]string, len(sys.Objects))
	for i, o := range sys.Objects {
		out[i] = o.Name
	}
	return out
}
