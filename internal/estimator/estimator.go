// Package estimator infers Rome-style storage workload descriptions directly
// from SQL-level workload knowledge, without running the workload or
// collecting traces.
//
// This implements the alternative input path the paper describes in
// Sec. 5.1: "directly infer the storage workload descriptions using
// knowledge of the database system and its workload and a tool called a
// storage workload estimator [Ozmen et al., SIGMOD 2007]. This allows
// storage workload descriptions to be generated without actually running the
// workload and collecting traces. However, the resulting descriptions may be
// less accurate than those obtained using the trace-based method."
//
// The estimator consumes the same declarative query specifications the
// replay engine executes (package benchdb): per-query phases of sequential
// and random streams. From those it derives, per object, the request sizes
// and rates, the run count, the stream concurrency, and the pairwise
// temporal-overlap matrix — using a simple nominal device model to estimate
// phase durations.
package estimator

import (
	"fmt"

	"dblayout/internal/benchdb"
	"dblayout/internal/rome"
)

// DeviceAssumptions are the nominal target speeds used to estimate phase
// durations. They need only be roughly right: rates scale uniformly with
// the duration estimate, and the advisor's objective is scale-free.
type DeviceAssumptions struct {
	// SequentialBps is the streaming throughput of one target.
	SequentialBps float64
	// RandomIOPS is the random-request throughput of one target.
	RandomIOPS float64
	// Targets is the number of storage targets sharing the load.
	Targets int
}

// DefaultAssumptions models one mid-2000s enterprise disk per target.
func DefaultAssumptions(targets int) DeviceAssumptions {
	return DeviceAssumptions{SequentialBps: 70 << 20, RandomIOPS: 180, Targets: targets}
}

func (d DeviceAssumptions) withDefaults() DeviceAssumptions {
	if d.SequentialBps <= 0 {
		d.SequentialBps = 70 << 20
	}
	if d.RandomIOPS <= 0 {
		d.RandomIOPS = 180
	}
	if d.Targets <= 0 {
		d.Targets = 1
	}
	return d
}

// streamTime estimates how long one stream takes on the assumed devices.
func (d DeviceAssumptions) streamTime(s benchdb.Stream) float64 {
	if s.Sequential {
		return float64(s.Bytes) / d.SequentialBps
	}
	size := s.ReqSize
	if size <= 0 {
		size = benchdb.PageSize
	}
	reqs := float64(s.Bytes) / float64(size)
	return reqs*(1/d.RandomIOPS) + reqs*s.ThinkPerReq
}

// objAccum accumulates per-object estimates.
type objAccum struct {
	reads, writes         float64
	readBytes, writeBytes float64
	runs                  float64
	activeTime            float64
	coActive              []float64
	maxStreams            float64
}

// EstimateOLAP produces a workload set for an OLAP workload: each query in
// the mix executes once per appearance, `Concurrency` sessions run the mix
// in parallel, and objects' request rates are spread over the estimated
// total busy time.
func EstimateOLAP(w *benchdb.OLAPWorkload, d DeviceAssumptions) (*rome.Set, error) {
	if err := benchdb.ValidateQueries(w.Catalog, w.Queries); err != nil {
		return nil, err
	}
	d = d.withDefaults()
	n := len(w.Catalog.Objects)
	acc := make([]objAccum, n)
	for i := range acc {
		acc[i].coActive = make([]float64, n)
	}

	var totalTime float64
	for qi := range w.Queries {
		q := &w.Queries[qi]
		totalTime += q.CPUSeconds
		for _, p := range q.Phases {
			// Phase duration: the slowest stream, assuming each
			// stream gets one target's worth of bandwidth.
			var phaseTime float64
			for _, s := range p.Streams {
				if t := d.streamTime(s); t > phaseTime {
					phaseTime = t
				}
			}
			totalTime += phaseTime

			// Per-object traffic and activity within the phase.
			active := map[int]bool{}
			for _, s := range p.Streams {
				i := w.Catalog.Index(s.Object)
				a := &acc[i]
				size := s.ReqSize
				if size <= 0 {
					if s.Sequential {
						size = benchdb.ScanSize
					} else {
						size = benchdb.PageSize
					}
				}
				reqs := float64(s.Bytes) / float64(size)
				if s.Write {
					a.writes += reqs
					a.writeBytes += float64(s.Bytes)
				} else {
					a.reads += reqs
					a.readBytes += float64(s.Bytes)
				}
				if s.Sequential {
					a.runs++ // one long run per scan
				} else {
					a.runs += reqs // every random request is a run
				}
				if !active[i] {
					active[i] = true
					a.activeTime += phaseTime
				}
			}
			for i := range active {
				for k := range active {
					if i != k {
						acc[i].coActive[k] += phaseTime
					}
				}
			}
		}
	}
	if totalTime <= 0 {
		return nil, fmt.Errorf("estimator: workload has no estimated run time")
	}

	conc := float64(w.Concurrency)
	if conc < 1 {
		conc = 1
	}
	// Concurrency overlaps sessions: wall-clock shrinks, per-object rates
	// and stream concurrency rise.
	wallTime := totalTime / conc

	ws := make([]*rome.Workload, n)
	for i, o := range w.Catalog.Objects {
		a := &acc[i]
		wl := &rome.Workload{Name: o.Name, RunCount: 1, Overlap: make([]float64, n)}
		wl.Overlap[i] = 1
		if a.reads+a.writes > 0 {
			// Rates over the object's own (estimated) active time,
			// matching the trace fitter's active-window rates.
			activeWall := a.activeTime / conc
			if activeWall <= 0 {
				activeWall = wallTime
			}
			wl.ReadRate = a.reads / activeWall
			wl.WriteRate = a.writes / activeWall
			if a.reads > 0 {
				wl.ReadSize = a.readBytes / a.reads
			}
			if a.writes > 0 {
				wl.WriteSize = a.writeBytes / a.writes
			}
			if a.runs > 0 {
				wl.RunCount = (a.reads + a.writes) / a.runs
				if wl.RunCount < 1 {
					wl.RunCount = 1
				}
				if wl.RunCount > 512 {
					wl.RunCount = 512
				}
			}
			wl.Concurrency = conc * (a.activeTime / totalTime)
			if wl.Concurrency < 1 {
				wl.Concurrency = 1
			}
		}
		ws[i] = wl
	}
	// Overlap is a property of the *pair*, so normalize the shared co-active
	// time by the longer of the two active times and assign both matrix
	// entries from the one computation. Normalizing each row by its own
	// active time (the previous behaviour) made Overlap(i,k) != Overlap(k,i)
	// whenever the objects' activity durations differed, which rome.Set now
	// rejects as it would make the Eq. 2 contention factor
	// direction-dependent.
	for i := range acc {
		if acc[i].reads+acc[i].writes <= 0 {
			continue
		}
		for k := i + 1; k < n; k++ {
			if acc[k].reads+acc[k].writes <= 0 {
				continue
			}
			at := acc[i].activeTime
			if acc[k].activeTime > at {
				at = acc[k].activeTime
			}
			if at <= 0 {
				continue
			}
			ov := acc[i].coActive[k] / at
			if ov > 1 {
				ov = 1
			}
			ws[i].Overlap[k] = ov
			ws[k].Overlap[i] = ov
		}
	}
	return rome.NewSet(ws...)
}

// EstimateOLTP produces a workload set for a TPC-C-style transaction mix:
// per-transaction page counts and the terminal count give request rates; all
// objects of the mix are assumed co-active (the mix runs continuously).
func EstimateOLTP(w *benchdb.OLTPWorkload, d DeviceAssumptions) (*rome.Set, error) {
	d = d.withDefaults()
	n := len(w.Catalog.Objects)

	// Estimated transaction cycle time per terminal: CPU plus dependent
	// random page accesses at the assumed IOPS.
	var cycle, weight float64
	type traffic struct{ reads, writes, writeBytes float64 }
	perTxn := make([]map[int]traffic, len(w.Transactions))
	for ti, txn := range w.Transactions {
		perTxn[ti] = map[int]traffic{}
		pages := 0
		for _, a := range txn.Reads {
			i := w.Catalog.Index(a.Object)
			if i < 0 {
				return nil, fmt.Errorf("estimator: unknown object %q", a.Object)
			}
			tr := perTxn[ti][i]
			tr.reads += float64(a.Pages)
			perTxn[ti][i] = tr
			pages += a.Pages
		}
		for _, a := range txn.Writes {
			i := w.Catalog.Index(a.Object)
			if i < 0 {
				return nil, fmt.Errorf("estimator: unknown object %q", a.Object)
			}
			tr := perTxn[ti][i]
			tr.writes += float64(a.Pages)
			perTxn[ti][i] = tr
			pages += a.Pages
		}
		if txn.LogBytes > 0 {
			i := w.Catalog.Index(w.LogObject)
			tr := perTxn[ti][i]
			tr.writes++
			tr.writeBytes += float64(txn.LogBytes)
			perTxn[ti][i] = tr
			pages++
		}
		cycle += txn.Weight * (txn.CPUSeconds + float64(pages)/d.RandomIOPS)
		weight += txn.Weight
	}
	if weight <= 0 || cycle <= 0 {
		return nil, fmt.Errorf("estimator: empty transaction mix")
	}
	txnRate := float64(w.Terminals) / (cycle / weight)

	ws := make([]*rome.Workload, n)
	logIdx := w.Catalog.Index(w.LogObject)
	for i, o := range w.Catalog.Objects {
		wl := &rome.Workload{Name: o.Name, RunCount: 1, Overlap: make([]float64, n)}
		wl.Overlap[i] = 1
		var reads, writes, writeBytes float64
		for ti, txn := range w.Transactions {
			share := txn.Weight / weight
			tr := perTxn[ti][i]
			reads += share * tr.reads
			writes += share * tr.writes
			writeBytes += share * tr.writeBytes
		}
		wl.ReadRate = txnRate * reads
		wl.WriteRate = txnRate * writes
		if reads > 0 {
			wl.ReadSize = benchdb.PageSize
		}
		if writes > 0 {
			wl.WriteSize = benchdb.PageSize
			if i == logIdx && writes > 0 {
				wl.WriteSize = writeBytes / writes
				wl.RunCount = 64 // appends are sequential
			}
		}
		if wl.TotalRate() > 0 {
			wl.Concurrency = float64(w.Terminals)
			for k := range ws {
				if k != i {
					wl.Overlap[k] = 1 // the mix runs continuously
				}
			}
		}
		ws[i] = wl
	}
	// Zero out overlaps against idle objects (before validation: an idle
	// object's vector is all zero, so a non-zero entry pointing at it would
	// be rejected as asymmetric).
	for i, wl := range ws {
		for k := range ws {
			if ws[k].Idle() && i != k {
				wl.Overlap[k] = 0
			}
		}
	}
	return rome.NewSet(ws...)
}

// Merge combines estimates for workloads that run concurrently on the same
// system (e.g. the consolidation scenario): cross-set overlaps are the
// fraction of time both sides are active, approximated as full overlap for a
// continuously-running OLTP side.
func Merge(olap *rome.Set, oltp *rome.Set) *rome.Set {
	merged := rome.Merge(olap, oltp)
	nOLAP := olap.Len()
	for i, w := range merged.Workloads {
		if w.Idle() {
			continue
		}
		for k, other := range merged.Workloads {
			if i == k || other.Idle() {
				continue
			}
			// Cross-set pairs: the OLTP mix is always on, so an
			// OLAP object overlaps it whenever the OLAP object is
			// active, and vice versa proportionally.
			if (i < nOLAP) != (k < nOLAP) {
				w.Overlap[k] = 0.8
			}
		}
	}
	return merged
}
