// Package layout implements the paper's layout problem formulation: layout
// matrices with their validity and regularity constraints (Sec. 3), the LVM
// striping layout model (Fig. 7), the contention factor (Eq. 2), and the
// storage target utilization predictor (Eq. 1) built on black-box cost
// models. It also provides the heuristic baseline layouts the paper compares
// against (SEE, isolate-tables, …).
package layout

import (
	"fmt"
	"math"
	"strings"
)

// Epsilon is the tolerance used when comparing layout fractions.
const Epsilon = 1e-9

// Layout is an N x M matrix L where L[i][j] is the fraction of object i
// assigned to target j (Sec. 3). A valid layout satisfies the integrity
// constraint (each row sums to 1) and the capacity constraint (assigned bytes
// fit every target).
type Layout struct {
	N, M int
	frac []float64 // row-major
}

// New returns an all-zero N x M layout (not yet valid: rows sum to 0).
func New(n, m int) *Layout {
	if n <= 0 || m <= 0 {
		panic(fmt.Sprintf("layout: invalid dimensions %dx%d", n, m))
	}
	return &Layout{N: n, M: m, frac: make([]float64, n*m)}
}

// At returns L[i][j].
func (l *Layout) At(i, j int) float64 { return l.frac[i*l.M+j] }

// Set assigns L[i][j] = v.
func (l *Layout) Set(i, j int, v float64) { l.frac[i*l.M+j] = v }

// Row returns a copy of object i's row.
func (l *Layout) Row(i int) []float64 {
	return append([]float64(nil), l.frac[i*l.M:(i+1)*l.M]...)
}

// SetRow replaces object i's row.
func (l *Layout) SetRow(i int, row []float64) {
	if len(row) != l.M {
		panic(fmt.Sprintf("layout: row length %d, want %d", len(row), l.M))
	}
	copy(l.frac[i*l.M:(i+1)*l.M], row)
}

// Clone returns a deep copy.
func (l *Layout) Clone() *Layout {
	c := New(l.N, l.M)
	copy(c.frac, l.frac)
	return c
}

// RowSum returns the sum of object i's fractions.
func (l *Layout) RowSum(i int) float64 {
	var s float64
	for j := 0; j < l.M; j++ {
		s += l.At(i, j)
	}
	return s
}

// TargetBytes returns the bytes assigned to target j given object sizes.
func (l *Layout) TargetBytes(j int, sizes []int64) float64 {
	var b float64
	for i := 0; i < l.N; i++ {
		b += float64(sizes[i]) * l.At(i, j)
	}
	return b
}

// CheckIntegrity verifies every row sums to 1 and all entries lie in [0,1].
func (l *Layout) CheckIntegrity() error {
	for i := 0; i < l.N; i++ {
		for j := 0; j < l.M; j++ {
			v := l.At(i, j)
			if v < -Epsilon || v > 1+Epsilon || math.IsNaN(v) {
				return fmt.Errorf("layout: L[%d][%d]=%g outside [0,1]", i, j, v)
			}
		}
		if s := l.RowSum(i); math.Abs(s-1) > 1e-6 {
			return fmt.Errorf("layout: row %d sums to %g, want 1", i, s)
		}
	}
	return nil
}

// CheckCapacity verifies the capacity constraint against the given object
// sizes and target capacities.
func (l *Layout) CheckCapacity(sizes []int64, capacities []int64) error {
	if len(sizes) != l.N || len(capacities) != l.M {
		return fmt.Errorf("layout: got %d sizes and %d capacities for a %dx%d layout",
			len(sizes), len(capacities), l.N, l.M)
	}
	for j := 0; j < l.M; j++ {
		if b := l.TargetBytes(j, sizes); b > float64(capacities[j])*(1+1e-9) {
			return fmt.Errorf("layout: target %d assigned %.0f bytes, capacity %d", j, b, capacities[j])
		}
	}
	return nil
}

// IsRegular reports whether the layout is regular per Definition 2: within
// each row, every non-zero entry is equal (each object is spread evenly over
// a subset of targets).
func (l *Layout) IsRegular() bool {
	for i := 0; i < l.N; i++ {
		if !l.RowRegular(i) {
			return false
		}
	}
	return true
}

// RowRegular reports whether object i's row is regular.
func (l *Layout) RowRegular(i int) bool {
	var nz float64
	for j := 0; j < l.M; j++ {
		if v := l.At(i, j); v > Epsilon {
			if nz == 0 {
				nz = v
			} else if math.Abs(v-nz) > 1e-6 {
				return false
			}
		}
	}
	return true
}

// Targets returns the indices of the targets holding a non-zero fraction of
// object i, in ascending order.
func (l *Layout) Targets(i int) []int {
	var ts []int
	for j := 0; j < l.M; j++ {
		if l.At(i, j) > Epsilon {
			ts = append(ts, j)
		}
	}
	return ts
}

// String renders the layout as a compact percentage table.
func (l *Layout) String() string {
	var sb strings.Builder
	for i := 0; i < l.N; i++ {
		for j := 0; j < l.M; j++ {
			fmt.Fprintf(&sb, "%5.1f%%", 100*l.At(i, j))
			if j < l.M-1 {
				sb.WriteByte(' ')
			}
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}

// RegularRow builds a regular row spreading an object evenly over the given
// targets.
func RegularRow(m int, targets []int) []float64 {
	row := make([]float64, m)
	if len(targets) == 0 {
		return row
	}
	f := 1 / float64(len(targets))
	for _, j := range targets {
		row[j] = f
	}
	return row
}
