package layout

import (
	"math"
	"testing"
	"testing/quick"

	"dblayout/internal/costmodel"
	"dblayout/internal/rome"
)

// testModel builds a hand-authored disk-like cost model: random requests
// cost ~5 ms, sequential ~0.2 ms, with the sequential advantage collapsing
// as contention grows.
func testModel() *costmodel.Model {
	sizes := []float64{4096, 131072}
	runs := []float64{1, 64}
	mk := func(base float64) costmodel.Table {
		t := costmodel.Table{Sizes: sizes, RunCounts: runs}
		t.Curves = make([][]costmodel.Curve, len(sizes))
		for si := range sizes {
			t.Curves[si] = make([]costmodel.Curve, len(runs))
			for ri := range runs {
				xfer := base * sizes[si] / 65536
				var c costmodel.Curve
				if ri == 0 { // random: flat-ish, slight scheduling gain
					c = costmodel.Curve{
						Contention: []float64{0, 2, 8},
						Cost:       []float64{5e-3 + xfer, 4.6e-3 + xfer, 4.2e-3 + xfer},
					}
				} else { // sequential: cheap, collapses by chi ~ 2
					c = costmodel.Curve{
						Contention: []float64{0, 1, 2, 8},
						Cost:       []float64{0.2e-3 + xfer, 1.5e-3 + xfer, 4.5e-3 + xfer, 4.8e-3 + xfer},
					}
				}
				t.Curves[si][ri] = c
			}
		}
		return t
	}
	return &costmodel.Model{Target: "testdisk", Read: mk(1e-3), Write: mk(1.2e-3)}
}

// ssdTestModel builds a flat, fast model.
func ssdTestModel() *costmodel.Model {
	sizes := []float64{4096, 131072}
	runs := []float64{1, 64}
	mk := func(lat float64) costmodel.Table {
		t := costmodel.Table{Sizes: sizes, RunCounts: runs}
		t.Curves = make([][]costmodel.Curve, len(sizes))
		for si := range sizes {
			t.Curves[si] = make([]costmodel.Curve, len(runs))
			for ri := range runs {
				cost := lat + 0.4e-3*sizes[si]/65536
				t.Curves[si][ri] = costmodel.Curve{Contention: []float64{0, 8}, Cost: []float64{cost, cost}}
			}
		}
		return t
	}
	return &costmodel.Model{Target: "testssd", Read: mk(0.2e-3), Write: mk(0.4e-3)}
}

func testTargets(m int) []*Target {
	model := testModel()
	ts := make([]*Target, m)
	for j := range ts {
		ts[j] = &Target{Name: string(rune('A' + j)), Capacity: 20 << 30, Model: model}
	}
	return ts
}

// testInstance builds a small instance: two hot sequential tables that fully
// overlap, one warm random index, one cold object.
func testInstance(t *testing.T, m int) *Instance {
	t.Helper()
	ws := []*rome.Workload{
		{Name: "T1", ReadSize: 131072, ReadRate: 300, RunCount: 64, Overlap: []float64{1, 0.9, 0.5, 0.1}},
		{Name: "T2", ReadSize: 131072, ReadRate: 200, RunCount: 64, Overlap: []float64{0.9, 1, 0.5, 0.1}},
		{Name: "IX", ReadSize: 8192, ReadRate: 120, WriteSize: 8192, WriteRate: 30, RunCount: 1, Overlap: []float64{0.5, 0.5, 1, 0.1}},
		{Name: "COLD", ReadSize: 8192, ReadRate: 2, RunCount: 1, Overlap: []float64{0.1, 0.1, 0.1, 1}},
	}
	set, err := rome.NewSet(ws...)
	if err != nil {
		t.Fatal(err)
	}
	inst := &Instance{
		Objects: []Object{
			{Name: "T1", Size: 4 << 30, Kind: KindTable},
			{Name: "T2", Size: 2 << 30, Kind: KindTable},
			{Name: "IX", Size: 1 << 30, Kind: KindIndex},
			{Name: "COLD", Size: 1 << 30, Kind: KindTable},
		},
		Targets:   testTargets(m),
		Workloads: set,
	}
	if err := inst.Validate(); err != nil {
		t.Fatal(err)
	}
	return inst
}

func TestLayoutBasics(t *testing.T) {
	l := New(2, 3)
	l.Set(0, 1, 0.5)
	l.Set(0, 2, 0.5)
	l.Set(1, 0, 1)
	if err := l.CheckIntegrity(); err != nil {
		t.Fatal(err)
	}
	if !l.IsRegular() {
		t.Fatal("even split should be regular")
	}
	if got := l.Targets(0); len(got) != 2 || got[0] != 1 || got[1] != 2 {
		t.Fatalf("Targets(0) = %v", got)
	}
	l.Set(0, 1, 0.3)
	l.Set(0, 2, 0.7)
	if l.IsRegular() {
		t.Fatal("uneven split should not be regular")
	}
	if err := l.CheckIntegrity(); err != nil {
		t.Fatal(err)
	}
	l.Set(0, 2, 0.5)
	if err := l.CheckIntegrity(); err == nil {
		t.Fatal("row summing to 0.8 passed integrity")
	}
}

func TestLayoutCapacity(t *testing.T) {
	l := New(1, 2)
	l.Set(0, 0, 1)
	sizes := []int64{100}
	if err := l.CheckCapacity(sizes, []int64{50, 500}); err == nil {
		t.Fatal("overfull target accepted")
	}
	if err := l.CheckCapacity(sizes, []int64{100, 1}); err != nil {
		t.Fatalf("exact fit rejected: %v", err)
	}
}

func TestSEEIsValidAndRegular(t *testing.T) {
	inst := testInstance(t, 4)
	l := SEE(inst.N(), inst.M())
	if err := inst.ValidateLayout(l); err != nil {
		t.Fatal(err)
	}
	if !l.IsRegular() {
		t.Fatal("SEE not regular")
	}
}

func TestInitialLayoutProperties(t *testing.T) {
	inst := testInstance(t, 4)
	l, err := InitialLayout(inst)
	if err != nil {
		t.Fatal(err)
	}
	if err := inst.ValidateLayout(l); err != nil {
		t.Fatal(err)
	}
	// Every object on exactly one target.
	for i := 0; i < l.N; i++ {
		if ts := l.Targets(i); len(ts) != 1 {
			t.Fatalf("object %d on %d targets", i, len(ts))
		}
	}
	// The two hottest objects must land on different targets (least-loaded
	// rule with 4 empty targets).
	if l.Targets(0)[0] == l.Targets(1)[0] {
		t.Fatal("two hottest objects on the same target")
	}
}

func TestInitialLayoutRespectsCapacity(t *testing.T) {
	inst := testInstance(t, 2)
	// Tiny first target: the big table must avoid it.
	inst.Targets[0].Capacity = 1 << 30
	l, err := InitialLayout(inst)
	if err != nil {
		t.Fatal(err)
	}
	if err := inst.ValidateLayout(l); err != nil {
		t.Fatal(err)
	}
	if l.At(0, 0) != 0 {
		t.Fatal("4 GB object placed on 1 GB target")
	}
}

func TestInitialLayoutImpossible(t *testing.T) {
	inst := testInstance(t, 2)
	inst.Targets[0].Capacity = 1 << 20
	inst.Targets[1].Capacity = 1 << 20
	if _, err := InitialLayout(inst); err == nil {
		t.Fatal("impossible instance produced a layout")
	}
}

func TestByKindBaseline(t *testing.T) {
	inst := testInstance(t, 3)
	l, err := ByKind(inst, KindAssignment{
		ByKind:  map[ObjectKind][]int{KindTable: {0, 1}, KindIndex: {2}},
		Default: []int{2},
	})
	if err != nil {
		t.Fatal(err)
	}
	if l.At(0, 0) != 0.5 || l.At(0, 1) != 0.5 || l.At(0, 2) != 0 {
		t.Fatalf("table row = %v", l.Row(0))
	}
	if l.At(2, 2) != 1 {
		t.Fatalf("index row = %v", l.Row(2))
	}
	if _, err := ByKind(inst, KindAssignment{}); err == nil {
		t.Fatal("empty assignment accepted")
	}
}

func TestRunCountOn(t *testing.T) {
	inst := testInstance(t, 4)
	ev := NewEvaluator(inst)
	// T1: runCount 64, size 128 KB -> run of 8 MB >> 1 MB stripe.
	// Full assignment: run stays whole.
	if q := ev.runCountOn(0, 1.0); q != 64 {
		t.Fatalf("Q(full) = %g, want 64", q)
	}
	// Quarter assignment: run spans > 4 stripes, so the target sees its
	// proportional share.
	if q := ev.runCountOn(0, 0.25); q != 16 {
		t.Fatalf("Q(1/4) = %g, want 16", q)
	}
	// IX: runCount 1 -> always 1.
	if q := ev.runCountOn(2, 0.25); q != 1 {
		t.Fatalf("Q(random) = %g, want 1", q)
	}
}

func TestRunCountOnMiddleRegime(t *testing.T) {
	// A run of 4 x 16 KB = 64 KB with 128 KB stripes: shorter than a
	// stripe -> stays whole regardless of the fraction.
	ws := []*rome.Workload{{Name: "A", ReadSize: 16384, ReadRate: 10, RunCount: 4}}
	set, _ := rome.NewSet(ws...)
	inst := &Instance{
		Objects:   []Object{{Name: "A", Size: 1 << 30}},
		Targets:   testTargets(2),
		Workloads: set,
	}
	ev := NewEvaluator(inst)
	if q := ev.runCountOn(0, 0.5); q != 4 {
		t.Fatalf("sub-stripe run Q = %g, want 4", q)
	}
	// A run of 32 x 16 KB = 512 KB with 128 KB stripes and fraction 0.1:
	// longer than a stripe but shorter than StripeSize/L = 1.28 MB ->
	// middle regime: the target sees one stripe's worth of requests.
	ws2 := []*rome.Workload{{Name: "A", ReadSize: 16384, ReadRate: 10, RunCount: 32}}
	set2, _ := rome.NewSet(ws2...)
	inst2 := &Instance{
		Objects:   []Object{{Name: "A", Size: 1 << 30}},
		Targets:   testTargets(2),
		Workloads: set2,
	}
	ev2 := NewEvaluator(inst2)
	if q := ev2.runCountOn(0, 0.1); q != 8 {
		t.Fatalf("middle regime Q = %g, want StripeSize/B = 8", q)
	}
}

func TestContentionZeroWhenIsolated(t *testing.T) {
	inst := testInstance(t, 4)
	ev := NewEvaluator(inst)
	l := New(4, 4)
	for i := 0; i < 4; i++ {
		l.Set(i, i, 1)
	}
	rates := make([]float64, 4)
	for j := 0; j < 4; j++ {
		ev.targetRates(l, j, rates)
		if chi := ev.contention(j, rates, rates[j]); chi != 0 {
			t.Fatalf("isolated object %d has contention %g", j, chi)
		}
	}
}

func TestContentionReflectsOverlapAndRates(t *testing.T) {
	inst := testInstance(t, 2)
	ev := NewEvaluator(inst)
	// T1 and T2 together on target 0.
	l := New(4, 2)
	l.Set(0, 0, 1)
	l.Set(1, 0, 1)
	l.Set(2, 1, 1)
	l.Set(3, 1, 1)
	rates := make([]float64, 4)
	ev.targetRates(l, 0, rates)
	// chi for T1: rate(T2)*O(T1,T2)/rate(T1) = 200*0.9/300 = 0.6
	if chi := ev.contention(0, rates, rates[0]); math.Abs(chi-0.6) > 1e-9 {
		t.Fatalf("chi(T1) = %g, want 0.6", chi)
	}
	// chi for T2: 300*0.9/200 = 1.35
	if chi := ev.contention(1, rates, rates[1]); math.Abs(chi-1.35) > 1e-9 {
		t.Fatalf("chi(T2) = %g, want 1.35", chi)
	}
}

func TestSeparatingSequentialTablesBeatsColocating(t *testing.T) {
	inst := testInstance(t, 2)
	ev := NewEvaluator(inst)

	together := New(4, 2)
	together.Set(0, 0, 1)
	together.Set(1, 0, 1)
	together.Set(2, 1, 1)
	together.Set(3, 1, 1)

	apart := New(4, 2)
	apart.Set(0, 0, 1)
	apart.Set(1, 1, 1)
	apart.Set(2, 1, 1)
	apart.Set(3, 0, 1)

	if mt, ma := ev.MaxUtilization(together), ev.MaxUtilization(apart); ma >= mt {
		t.Fatalf("separating overlapping sequential tables did not help: together %.3f, apart %.3f", mt, ma)
	}
}

func TestUtilizationsAdditive(t *testing.T) {
	inst := testInstance(t, 3)
	ev := NewEvaluator(inst)
	l := SEE(4, 3)
	us := ev.Utilizations(l)
	for j := range us {
		var sum float64
		for i := 0; i < 4; i++ {
			sum += ev.ObjectUtilization(l, i, j)
		}
		if math.Abs(sum-us[j]) > 1e-12 {
			t.Fatalf("target %d: sum of object utils %g != %g", j, sum, us[j])
		}
	}
	bd := ev.BreakdownAll(l)
	for j := range bd {
		if math.Abs(bd[j].Utilization-us[j]) > 1e-12 {
			t.Fatalf("breakdown mismatch on target %d", j)
		}
	}
}

func TestObjectLoadOrdering(t *testing.T) {
	inst := testInstance(t, 4)
	ev := NewEvaluator(inst)
	l := SEE(4, 4)
	// The hottest object should impose the largest total load; the cold
	// object the smallest.
	l0, l3 := ev.ObjectLoad(l, 0), ev.ObjectLoad(l, 3)
	if l0 <= l3 {
		t.Fatalf("hot object load %g <= cold %g", l0, l3)
	}
}

func TestInstanceValidateErrors(t *testing.T) {
	inst := testInstance(t, 2)
	inst.Objects[0].Size = 0
	if inst.Validate() == nil {
		t.Fatal("zero-size object accepted")
	}
	inst = testInstance(t, 2)
	inst.Objects[0].Name = "WRONG"
	if inst.Validate() == nil {
		t.Fatal("name mismatch accepted")
	}
	inst = testInstance(t, 2)
	inst.Targets[0].Model = nil
	if inst.Validate() == nil {
		t.Fatal("missing cost model accepted")
	}
	inst = testInstance(t, 2)
	inst.Targets[0].Capacity = 1
	inst.Targets[1].Capacity = 1
	if inst.Validate() == nil {
		t.Fatal("insufficient total capacity accepted")
	}
}

// Property: RegularRow always builds regular rows that pass integrity.
func TestRegularRowProperty(t *testing.T) {
	f := func(mRaw, pick uint8) bool {
		m := int(mRaw%6) + 1
		var ts []int
		for j := 0; j < m; j++ {
			if pick&(1<<uint(j)) != 0 {
				ts = append(ts, j)
			}
		}
		if len(ts) == 0 {
			ts = []int{0}
		}
		l := New(1, m)
		l.SetRow(0, RegularRow(m, ts))
		return l.CheckIntegrity() == nil && l.IsRegular() && len(l.Targets(0)) == len(ts)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: contention is always non-negative and zero when overlaps are 0.
func TestContentionNonNegativeProperty(t *testing.T) {
	inst := testInstance(t, 4)
	ev := NewEvaluator(inst)
	f := func(a, b, c, d uint8) bool {
		l := New(4, 4)
		vals := []uint8{a, b, c, d}
		for i := 0; i < 4; i++ {
			j := int(vals[i]) % 4
			l.Set(i, j, 1)
		}
		rates := make([]float64, 4)
		for j := 0; j < 4; j++ {
			ev.targetRates(l, j, rates)
			for i := 0; i < 4; i++ {
				if rates[i] <= 0 {
					continue
				}
				if chi := ev.contention(i, rates, rates[i]); chi < 0 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
