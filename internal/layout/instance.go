package layout

import (
	"fmt"

	"dblayout/internal/costmodel"
	"dblayout/internal/rome"
)

// ObjectKind classifies database objects, which some baseline heuristics
// (isolate tables, isolate tables and indexes) need.
type ObjectKind int

// Object kinds.
const (
	KindTable ObjectKind = iota
	KindIndex
	KindLog
	KindTemp
)

// String returns the kind name.
func (k ObjectKind) String() string {
	switch k {
	case KindTable:
		return "table"
	case KindIndex:
		return "index"
	case KindLog:
		return "log"
	case KindTemp:
		return "temp"
	}
	return fmt.Sprintf("kind(%d)", int(k))
}

// Object is a database object to be laid out: a table, index, log, or
// temporary tablespace.
type Object struct {
	Name string
	Size int64 // bytes
	Kind ObjectKind
}

// CostModel is the black-box per-request cost predictor a Target carries:
// it returns the predicted device seconds one request of the given direction,
// size (bytes), run count, and contention factor consumes (paper Eq. 1).
//
// *costmodel.Model — a calibrated interpolation table — is the standard
// implementation; the interface admits externally supplied models. The
// advisor treats implementations as untrusted: evaluations are guarded
// against panics and non-finite results (see ErrModelFailure).
type CostModel interface {
	Cost(write bool, size, runCount, chi float64) float64
}

// The calibrated table model must satisfy the interface.
var _ CostModel = (*costmodel.Model)(nil)

// Target is a storage target: an independent container (device or RAID
// group) with a capacity and a calibrated cost model.
type Target struct {
	Name     string
	Capacity int64
	Model    CostModel
}

// DefaultStripeSize is the LVM stripe size assumed by the layout model and
// by the replay engine's logical volumes (128 KiB).
const DefaultStripeSize = 128 << 10

// Instance is one layout problem: N objects with workload descriptions to be
// laid out on M targets (paper Fig. 3).
type Instance struct {
	Objects []Object
	Targets []*Target
	// Workloads holds one description per object, in object order.
	Workloads *rome.Set
	// StripeSize is the stripe size of the LVM implementing layouts.
	// Zero selects DefaultStripeSize.
	StripeSize int64
	// Constraints are optional administrative placement restrictions.
	Constraints *Constraints
}

// N returns the number of objects.
func (in *Instance) N() int { return len(in.Objects) }

// M returns the number of targets.
func (in *Instance) M() int { return len(in.Targets) }

// Sizes returns object sizes in object order.
func (in *Instance) Sizes() []int64 {
	s := make([]int64, len(in.Objects))
	for i, o := range in.Objects {
		s[i] = o.Size
	}
	return s
}

// Capacities returns target capacities in target order.
func (in *Instance) Capacities() []int64 {
	c := make([]int64, len(in.Targets))
	for j, t := range in.Targets {
		c[j] = t.Capacity
	}
	return c
}

func (in *Instance) stripeSize() float64 {
	if in.StripeSize > 0 {
		return float64(in.StripeSize)
	}
	return DefaultStripeSize
}

// Validate checks the instance for consistency.
func (in *Instance) Validate() error {
	if len(in.Objects) == 0 {
		return fmt.Errorf("layout: instance with no objects")
	}
	if len(in.Targets) == 0 {
		return fmt.Errorf("layout: instance with no targets")
	}
	if in.StripeSize < 0 {
		return fmt.Errorf("layout: negative stripe size %d", in.StripeSize)
	}
	if in.Workloads == nil || in.Workloads.Len() != len(in.Objects) {
		return fmt.Errorf("layout: instance with %d objects but %d workloads",
			len(in.Objects), workloadLen(in.Workloads))
	}
	if err := in.Workloads.Validate(); err != nil {
		return err
	}
	var total, cap int64
	for i, o := range in.Objects {
		if o.Size <= 0 {
			return fmt.Errorf("layout: object %q has size %d", o.Name, o.Size)
		}
		if o.Name != in.Workloads.Workloads[i].Name {
			return fmt.Errorf("layout: object %d is %q but workload %d is %q",
				i, o.Name, i, in.Workloads.Workloads[i].Name)
		}
		total += o.Size
	}
	for _, t := range in.Targets {
		if t.Capacity <= 0 {
			return fmt.Errorf("layout: target %q has capacity %d", t.Name, t.Capacity)
		}
		if t.Model == nil {
			return fmt.Errorf("layout: target %q has no cost model", t.Name)
		}
		cap += t.Capacity
	}
	if total > cap {
		return fmt.Errorf("layout: objects need %d bytes but targets provide %d: %w", total, cap, ErrInfeasible)
	}
	return in.Constraints.Validate(in.N(), in.M())
}

func workloadLen(s *rome.Set) int {
	if s == nil {
		return 0
	}
	return s.Len()
}

// ValidateLayout checks that l is a valid layout for this instance.
func (in *Instance) ValidateLayout(l *Layout) error {
	if l.N != in.N() || l.M != in.M() {
		return fmt.Errorf("layout: %dx%d layout for a %dx%d instance", l.N, l.M, in.N(), in.M())
	}
	if err := l.CheckIntegrity(); err != nil {
		return err
	}
	if err := l.CheckCapacity(in.Sizes(), in.Capacities()); err != nil {
		return err
	}
	return in.Constraints.Check(l)
}
