package layout

import "fmt"

// IncrementalEvaluator is a delta-evaluation kernel for the utilization model
// of Eq. 1/Eq. 2, bound to one live Layout. Where the naive Evaluator prices a
// candidate move with two full target evaluations — each O(N) in per-object
// rates plus an O(N) contention scan per active object — the kernel caches,
// per target j:
//
//   - the request-rate vector lambda_kj = totalRate_k * L[k][j],
//   - the contention sums S_ij = sum_{k != i} lambda_kj * Overlap(i, k),
//   - the list of active objects (non-zero assignment), kept in ascending
//     object order so summation order is reproducible,
//   - the current utilization mu_j,
//
// and scores a candidate move against the cached state in O(active objects on
// the two affected targets), with zero allocations. The transfer formulation's
// promise that "a move only requires re-evaluating the two affected targets"
// thus drops from O(N^2) to O(active) per move.
//
// The kernel agrees with the naive Evaluator to within 1e-9 on every target
// utilization (see DESIGN.md, "Evaluation-kernel tolerance contract"): exact
// agreement is impossible because the incremental contention sums accumulate
// in move order rather than object order, but the drift is bounded by a few
// ULPs per applied move and the differential property test in
// incremental_test.go pins the tolerance.
//
// An IncrementalEvaluator owns its Layout's mutations: callers must route all
// changes through Apply/SetObjectRow and must not modify the layout directly
// while the kernel is live. It is not safe for concurrent use.
type IncrementalEvaluator struct {
	ev *Evaluator
	l  *Layout
	n  int
	m  int

	// ov is the dense row-major overlap matrix: ov[i*n+k] = Overlap(i, k),
	// shared with the parent evaluator (read-only).
	ov []float64

	lam [][]float64 // lam[j][i] = totalRate[i] * L[i][j]; 0 when inactive
	con [][]float64 // con[j][i] = S_ij; stale while i is inactive on j
	act [][]int     // act[j]: objects with L[i][j] != 0, ascending
	pos [][]int     // pos[j][i]: index of i in act[j], or -1
	mu  []float64   // mu[j]: cached utilization of target j
}

// NewIncremental binds a delta-evaluation kernel to l, building the cached
// per-target state in one full O(M*N + M*A^2) pass (A = active objects per
// target). The layout's dimensions must match the evaluator's instance; the
// kernel owns l's mutations from here on.
func (ev *Evaluator) NewIncremental(l *Layout) *IncrementalEvaluator {
	n, m := ev.inst.N(), ev.inst.M()
	if l.N != n || l.M != m {
		panic(fmt.Sprintf("layout: %dx%d layout for a %dx%d incremental evaluator", l.N, l.M, n, m))
	}
	q := &IncrementalEvaluator{
		ev:  ev,
		l:   l,
		n:   n,
		m:   m,
		ov:  ev.overlapMatrix(),
		lam: make([][]float64, m),
		con: make([][]float64, m),
		act: make([][]int, m),
		pos: make([][]int, m),
		mu:  make([]float64, m),
	}
	for j := 0; j < m; j++ {
		q.lam[j] = make([]float64, n)
		q.con[j] = make([]float64, n)
		q.pos[j] = make([]int, n)
		q.act[j] = make([]int, 0, n)
		q.rebuildTarget(j)
	}
	return q
}

// Layout returns the live layout the kernel is bound to. Callers may read it
// freely but must route mutations through the kernel.
func (q *IncrementalEvaluator) Layout() *Layout { return q.l }

// rebuildTarget recomputes target j's cached state from the layout alone.
func (q *IncrementalEvaluator) rebuildTarget(j int) {
	ev := q.ev
	q.act[j] = q.act[j][:0]
	for i := 0; i < q.n; i++ {
		q.pos[j][i] = -1
		q.lam[j][i] = 0
	}
	for i := 0; i < q.n; i++ {
		if q.l.At(i, j) != 0 {
			q.pos[j][i] = len(q.act[j])
			q.act[j] = append(q.act[j], i)
			q.lam[j][i] = ev.totalRate[i] * q.l.At(i, j)
		}
	}
	for _, i := range q.act[j] {
		q.con[j][i] = q.freshCon(j, i)
	}
	q.mu[j] = q.scoreWith(j, -1, 0)
}

// freshCon computes S_ij from scratch over target j's active list.
func (q *IncrementalEvaluator) freshCon(j, i int) float64 {
	var s float64
	row := q.ov[i*q.n:]
	for _, k := range q.act[j] {
		if k != i {
			s += q.lam[j][k] * row[k]
		}
	}
	return s
}

// objTerm computes mu_ij exactly as Evaluator.objectUtil does, given the
// object's assigned fraction and contention factor. The caller has already
// established lij > Epsilon and totalRate[i] > 0.
func (q *IncrementalEvaluator) objTerm(j, i int, lij, chi float64) float64 {
	ev := q.ev
	model := ev.inst.Targets[j].Model
	run := ev.runCountOn(i, lij)
	var mu float64
	if rr := ev.readRate[i] * lij; rr > 0 {
		mu += rr * ev.cost(j, model, false, ev.readSize[i], run, chi)
	}
	if wr := ev.writeRate[i] * lij; wr > 0 {
		mu += wr * ev.cost(j, model, true, ev.writeSize[i], run, chi)
	}
	return mu
}

// scoreWith computes mu_j as if L[obj][j] were frac, against the cached state
// and without mutating anything. obj = -1 scores the target as-is. This is
// the kernel's single scoring primitive: TryMove, Apply, ScoreObjectFrac and
// SetObjectRow all price targets through it, so a probed score and the cached
// utilization after the corresponding mutation are bit-identical.
func (q *IncrementalEvaluator) scoreWith(j, obj int, frac float64) float64 {
	ev := q.ev
	var lamObj, dLam float64
	if obj >= 0 {
		lamObj = ev.totalRate[obj] * frac
		dLam = lamObj - q.lam[j][obj]
	}
	var mu float64
	for _, i := range q.act[j] {
		if i == obj {
			continue
		}
		lij := q.l.At(i, j)
		if lij <= Epsilon || ev.totalRate[i] <= 0 {
			continue
		}
		s := q.con[j][i]
		if dLam != 0 {
			s += dLam * q.ov[i*q.n+obj]
		}
		chi := s/q.lam[j][i] + ev.selfChi[i]
		mu += q.objTerm(j, i, lij, chi)
	}
	if obj >= 0 && frac > Epsilon && ev.totalRate[obj] > 0 {
		s := q.con[j][obj]
		if q.pos[j][obj] < 0 {
			s = q.freshCon(j, obj)
		}
		chi := s/lamObj + ev.selfChi[obj]
		mu += q.objTerm(j, obj, frac, chi)
	}
	return mu
}

// EffectiveDelta folds a sub-Epsilon source residual into the moved fraction:
// a move that would leave less than Epsilon of obj on target from is promoted
// to a whole-assignment move, so no row mass is ever dropped by the dust
// clamp (the rows-sum-to-1 invariant is preserved exactly, and byte
// accounting downstream sees the true moved size).
func (q *IncrementalEvaluator) EffectiveDelta(obj, from int, delta float64) float64 {
	if have := q.l.At(obj, from); have-delta < Epsilon {
		return have
	}
	return delta
}

// TryMove scores the transfer of delta of obj from one target to another
// without performing it, returning the two affected targets' would-be
// utilizations. All other targets are unaffected by a transfer move (the
// paper's argument for the formulation), so the caller combines these with
// the cached Utilization values. delta is normalized via EffectiveDelta.
// from and to must differ.
func (q *IncrementalEvaluator) TryMove(obj, from, to int, delta float64) (muFrom, muTo float64) {
	delta = q.EffectiveDelta(obj, from, delta)
	muFrom = q.scoreWith(from, obj, q.l.At(obj, from)-delta)
	muTo = q.scoreWith(to, obj, q.l.At(obj, to)+delta)
	return muFrom, muTo
}

// Apply performs the transfer and updates the cached state of the two
// affected targets in O(active objects). It returns the effective moved
// fraction after dust-clamp folding (see EffectiveDelta), which is what byte
// accounting must use. The cached utilizations after Apply are bit-identical
// to the values TryMove returned for the same move.
func (q *IncrementalEvaluator) Apply(obj, from, to int, delta float64) float64 {
	if from == to {
		panic("layout: incremental move with from == to")
	}
	delta = q.EffectiveDelta(obj, from, delta)
	newFrom := q.l.At(obj, from) - delta
	if delta == q.l.At(obj, from) {
		newFrom = 0 // exact, however the subtraction rounds
	}
	newTo := q.l.At(obj, to) + delta
	q.mu[from] = q.scoreWith(from, obj, newFrom)
	q.mu[to] = q.scoreWith(to, obj, newTo)
	q.setFrac(from, obj, newFrom)
	q.setFrac(to, obj, newTo)
	return delta
}

// setFrac updates L[obj][j] and target j's cached state: the lambda entry is
// recomputed exactly, the active list membership is adjusted, and every other
// active object's contention sum shifts by dLam * Overlap(i, obj).
func (q *IncrementalEvaluator) setFrac(j, obj int, frac float64) {
	lamNew := q.ev.totalRate[obj] * frac
	dLam := lamNew - q.lam[j][obj]
	if dLam != 0 {
		for _, i := range q.act[j] {
			if i != obj {
				q.con[j][i] += dLam * q.ov[i*q.n+obj]
			}
		}
	}
	wasActive := q.pos[j][obj] >= 0
	switch {
	case frac != 0 && !wasActive:
		// S_obj was stale while obj was inactive; rebuild it before the
		// object joins the active list.
		q.con[j][obj] = q.freshCon(j, obj)
		q.insertActive(j, obj)
	case frac == 0 && wasActive:
		q.removeActive(j, obj)
	}
	q.lam[j][obj] = lamNew
	q.l.Set(obj, j, frac)
}

// insertActive adds obj to target j's active list, keeping ascending order so
// that scoreWith's summation order depends only on the set of active objects,
// never on the history of moves that produced it.
func (q *IncrementalEvaluator) insertActive(j, obj int) {
	a := q.act[j]
	k := len(a)
	for k > 0 && a[k-1] > obj {
		k--
	}
	a = append(a, 0)
	copy(a[k+1:], a[k:])
	a[k] = obj
	q.act[j] = a
	for ; k < len(a); k++ {
		q.pos[j][a[k]] = k
	}
}

// removeActive drops obj from target j's active list.
func (q *IncrementalEvaluator) removeActive(j, obj int) {
	a := q.act[j]
	k := q.pos[j][obj]
	copy(a[k:], a[k+1:])
	q.act[j] = a[:len(a)-1]
	q.pos[j][obj] = -1
	for ; k < len(q.act[j]); k++ {
		q.pos[j][q.act[j][k]] = k
	}
}

// ScoreObjectFrac returns mu_j as if L[obj][j] were frac, leaving the layout
// and cached state untouched. It prices one cell of a row replacement — a
// row change only affects targets whose own cell changed, so a full candidate
// row is priced by calling this per changed target (the regularizer's and
// polish pass's pattern).
func (q *IncrementalEvaluator) ScoreObjectFrac(j, obj int, frac float64) float64 {
	return q.scoreWith(j, obj, frac)
}

// SetObjectRow replaces object obj's row and updates every affected target's
// cached state. Unchanged cells cost nothing; each changed target is repriced
// through the same primitive ScoreObjectFrac uses, so previously probed
// scores match the cached utilizations bit-for-bit.
func (q *IncrementalEvaluator) SetObjectRow(obj int, row []float64) {
	if len(row) != q.m {
		panic(fmt.Sprintf("layout: row length %d, want %d", len(row), q.m))
	}
	for j := 0; j < q.m; j++ {
		if row[j] == q.l.At(obj, j) {
			continue
		}
		q.mu[j] = q.scoreWith(j, obj, row[j])
		q.setFrac(j, obj, row[j])
	}
}

// Utilization returns the cached mu_j.
func (q *IncrementalEvaluator) Utilization(j int) float64 { return q.mu[j] }

// Utilizations appends the cached per-target utilizations to dst and returns
// the extended slice. Pass dst[:0] to reuse a buffer, or nil to allocate.
func (q *IncrementalEvaluator) Utilizations(dst []float64) []float64 {
	return append(dst, q.mu...)
}

// MaxUtilization returns the cached optimization objective max_j mu_j.
func (q *IncrementalEvaluator) MaxUtilization() float64 {
	var max float64
	for _, u := range q.mu {
		if u > max {
			max = u
		}
	}
	return max
}
