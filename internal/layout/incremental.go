package layout

import "fmt"

// IncrementalEvaluator is a delta-evaluation kernel for the utilization model
// of Eq. 1/Eq. 2, bound to one live Layout. Where the naive Evaluator prices a
// candidate move with two full target evaluations, the kernel caches, per
// target j and per *active* object (non-zero assignment) on it:
//
//   - the request-rate entry lambda_ij = totalRate_i * L[i][j],
//   - the contention sum S_ij = sum_{k != i} lambda_kj * Overlap(i, k),
//   - the current utilization mu_j,
//
// held in three parallel slices ordered by ascending object id, so summation
// order is reproducible and lookup is a binary search. State is sized by
// active entries, not by N: construction walks the layout once and allocates
// O(total active entries), so an almost-empty fleet-scale target costs
// almost nothing (the dense predecessor allocated four O(N) rows per target
// and scanned every target twice regardless of occupancy). Scoring a
// candidate move is a merge-walk of the target's active list with the moved
// object's sparse overlap row — O(active + degree) with zero allocations.
//
// The kernel agrees with the naive Evaluator to within 1e-9 on every target
// utilization (see DESIGN.md, "Evaluation-kernel tolerance contract"): exact
// agreement is impossible because the incremental contention sums accumulate
// in move order rather than object order, but the drift is bounded by a few
// ULPs per applied move and the differential property test in
// incremental_test.go pins the tolerance.
//
// An IncrementalEvaluator owns its Layout's mutations: callers must route all
// changes through Apply/SetObjectRow and must not modify the layout directly
// while the kernel is live. It is not safe for concurrent use.
type IncrementalEvaluator struct {
	ev *Evaluator
	l  *Layout
	n  int
	m  int

	// ov is the sparse overlap matrix, shared read-only with the parent
	// evaluator.
	ov *overlapCSR

	act [][]int32   // act[j]: objects with L[i][j] != 0, ascending
	lam [][]float64 // lam[j][t] = totalRate[act[j][t]] * L[act[j][t]][j]
	con [][]float64 // con[j][t] = S_ij for i = act[j][t]
	mu  []float64   // mu[j]: cached utilization of target j
}

// NewIncremental binds a delta-evaluation kernel to l. Construction is one
// row-major pass over the layout plus one contention merge-walk per active
// entry — O(N*M) time to read the layout but memory proportional to the
// active entries only. The layout's dimensions must match the evaluator's
// instance; the kernel owns l's mutations from here on.
func (ev *Evaluator) NewIncremental(l *Layout) *IncrementalEvaluator {
	n, m := ev.inst.N(), ev.inst.M()
	if l.N != n || l.M != m {
		panic(fmt.Sprintf("layout: %dx%d layout for a %dx%d incremental evaluator", l.N, l.M, n, m))
	}
	q := &IncrementalEvaluator{
		ev:  ev,
		l:   l,
		n:   n,
		m:   m,
		ov:  ev.ov,
		act: make([][]int32, m),
		lam: make([][]float64, m),
		con: make([][]float64, m),
		mu:  make([]float64, m),
	}
	// One pass in row-major (layout storage) order: each target's active
	// list comes out ascending for free.
	for i := 0; i < n; i++ {
		for j := 0; j < m; j++ {
			if f := l.At(i, j); f != 0 {
				q.act[j] = append(q.act[j], int32(i))
				q.lam[j] = append(q.lam[j], ev.totalRate[i]*f)
			}
		}
	}
	for j := 0; j < m; j++ {
		q.con[j] = make([]float64, len(q.act[j]))
		for t, i := range q.act[j] {
			q.con[j][t] = q.freshCon(j, int(i))
		}
		q.mu[j] = q.scoreWith(j, -1, 0)
	}
	return q
}

// Layout returns the live layout the kernel is bound to. Callers may read it
// freely but must route mutations through the kernel.
func (q *IncrementalEvaluator) Layout() *Layout { return q.l }

// findActive locates obj in target j's active list: a result >= 0 is its
// position, a negative result r encodes the insertion point as -(r+1).
func (q *IncrementalEvaluator) findActive(j, obj int) int {
	a := q.act[j]
	o := int32(obj)
	lo, hi := 0, len(a)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if a[mid] < o {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < len(a) && a[lo] == o {
		return lo
	}
	return -(lo + 1)
}

// freshCon computes S_ij from scratch: a merge-walk of target j's active
// list with object i's sparse overlap row. Only co-access partners of i can
// contribute; the walk visits them in ascending order, exactly the non-zero
// terms the dense active-list scan accumulated.
func (q *IncrementalEvaluator) freshCon(j, i int) float64 {
	var s float64
	idx, val, _ := q.ov.row(i)
	act, lam := q.act[j], q.lam[j]
	e, t := 0, 0
	for e < len(idx) && t < len(act) {
		switch {
		case idx[e] < act[t]:
			e++
		case idx[e] > act[t]:
			t++
		default:
			s += lam[t] * val[e]
			e++
			t++
		}
	}
	return s
}

// objTerm computes mu_ij exactly as Evaluator.objectUtil does, given the
// object's assigned fraction and contention factor. The caller has already
// established lij > Epsilon and totalRate[i] > 0.
func (q *IncrementalEvaluator) objTerm(j, i int, lij, chi float64) float64 {
	ev := q.ev
	model := ev.inst.Targets[j].Model
	run := ev.runCountOn(i, lij)
	var mu float64
	if rr := ev.readRate[i] * lij; rr > 0 {
		mu += rr * ev.cost(j, model, false, ev.readSize[i], run, chi)
	}
	if wr := ev.writeRate[i] * lij; wr > 0 {
		mu += wr * ev.cost(j, model, true, ev.writeSize[i], run, chi)
	}
	return mu
}

// scoreWith computes mu_j as if L[obj][j] were frac, against the cached state
// and without mutating anything. obj = -1 scores the target as-is. This is
// the kernel's single scoring primitive: TryMove, Apply, ScoreObjectFrac and
// SetObjectRow all price targets through it, so a probed score and the cached
// utilization after the corresponding mutation are bit-identical.
//
// The active-list walk carries a merge pointer into obj's sparse overlap row
// (tval, the Overlap(i, obj) direction): only obj's co-access partners see
// their contention sums shift by dLam, every other active object reuses its
// cached sum untouched.
func (q *IncrementalEvaluator) scoreWith(j, obj int, frac float64) float64 {
	ev := q.ev
	var lamObj, dLam float64
	objPos := -1
	var oIdx []int32
	var oTval []float64
	if obj >= 0 {
		lamObj = ev.totalRate[obj] * frac
		p := q.findActive(j, obj)
		var lamOld float64
		if p >= 0 {
			lamOld = q.lam[j][p]
			objPos = p
		}
		dLam = lamObj - lamOld
		oIdx, _, oTval = q.ov.row(obj)
	}
	var mu float64
	e := 0
	act := q.act[j]
	for t, i32 := range act {
		for e < len(oIdx) && oIdx[e] < i32 {
			e++
		}
		i := int(i32)
		if i == obj {
			continue
		}
		lij := q.l.At(i, j)
		if lij <= Epsilon || ev.totalRate[i] <= 0 {
			continue
		}
		s := q.con[j][t]
		if dLam != 0 && e < len(oIdx) && oIdx[e] == i32 {
			s += dLam * oTval[e]
		}
		chi := s/q.lam[j][t] + ev.selfChi[i]
		mu += q.objTerm(j, i, lij, chi)
	}
	if obj >= 0 && frac > Epsilon && ev.totalRate[obj] > 0 {
		var s float64
		if objPos >= 0 {
			s = q.con[j][objPos]
		} else {
			// S_obj is not cached while obj is inactive on j.
			s = q.freshCon(j, obj)
		}
		chi := s/lamObj + ev.selfChi[obj]
		mu += q.objTerm(j, obj, frac, chi)
	}
	return mu
}

// EffectiveDelta folds a sub-Epsilon source residual into the moved fraction:
// a move that would leave less than Epsilon of obj on target from is promoted
// to a whole-assignment move, so no row mass is ever dropped by the dust
// clamp (the rows-sum-to-1 invariant is preserved exactly, and byte
// accounting downstream sees the true moved size).
func (q *IncrementalEvaluator) EffectiveDelta(obj, from int, delta float64) float64 {
	if have := q.l.At(obj, from); have-delta < Epsilon {
		return have
	}
	return delta
}

// checkMove rejects the degenerate moves that would corrupt the cached
// contention sums if they slipped through: a from == to transfer would
// double-apply the dLam shift to one target, and a negative delta inverts
// the dust clamp (have - delta < Epsilon promotes to a whole-assignment
// move in the wrong direction). Both are caller bugs, so they panic.
func checkMove(from, to int, delta float64) {
	if from == to {
		panic("layout: incremental move with from == to")
	}
	if delta < 0 {
		panic(fmt.Sprintf("layout: incremental move with negative delta %g", delta))
	}
}

// TryMove scores the transfer of delta of obj from one target to another
// without performing it, returning the two affected targets' would-be
// utilizations. All other targets are unaffected by a transfer move (the
// paper's argument for the formulation), so the caller combines these with
// the cached Utilization values. delta is normalized via EffectiveDelta.
// from and to must differ and delta must be non-negative.
func (q *IncrementalEvaluator) TryMove(obj, from, to int, delta float64) (muFrom, muTo float64) {
	checkMove(from, to, delta)
	delta = q.EffectiveDelta(obj, from, delta)
	muFrom = q.scoreWith(from, obj, q.l.At(obj, from)-delta)
	muTo = q.scoreWith(to, obj, q.l.At(obj, to)+delta)
	return muFrom, muTo
}

// Apply performs the transfer and updates the cached state of the two
// affected targets in O(active objects + overlap degree). It returns the
// effective moved fraction after dust-clamp folding (see EffectiveDelta),
// which is what byte accounting must use. The cached utilizations after
// Apply are bit-identical to the values TryMove returned for the same move.
func (q *IncrementalEvaluator) Apply(obj, from, to int, delta float64) float64 {
	checkMove(from, to, delta)
	delta = q.EffectiveDelta(obj, from, delta)
	newFrom := q.l.At(obj, from) - delta
	if delta == q.l.At(obj, from) {
		newFrom = 0 // exact, however the subtraction rounds
	}
	newTo := q.l.At(obj, to) + delta
	q.mu[from] = q.scoreWith(from, obj, newFrom)
	q.mu[to] = q.scoreWith(to, obj, newTo)
	q.setFrac(from, obj, newFrom)
	q.setFrac(to, obj, newTo)
	return delta
}

// setFrac updates L[obj][j] and target j's cached state: the lambda entry is
// recomputed exactly, the active list membership is adjusted, and every
// active co-access partner's contention sum shifts by dLam * Overlap(i, obj)
// (non-partners are untouched — their sums never contained an obj term).
func (q *IncrementalEvaluator) setFrac(j, obj int, frac float64) {
	lamNew := q.ev.totalRate[obj] * frac
	p := q.findActive(j, obj)
	var lamOld float64
	if p >= 0 {
		lamOld = q.lam[j][p]
	}
	if dLam := lamNew - lamOld; dLam != 0 {
		oIdx, _, oTval := q.ov.row(obj)
		act := q.act[j]
		e := 0
		for t, i32 := range act {
			for e < len(oIdx) && oIdx[e] < i32 {
				e++
			}
			if e < len(oIdx) && oIdx[e] == i32 && int(i32) != obj {
				q.con[j][t] += dLam * oTval[e]
			}
		}
	}
	switch {
	case frac != 0 && p < 0:
		// S_obj was not cached while obj was inactive; build it before
		// the object joins the active list.
		q.insertActive(j, -(p + 1), obj, lamNew, q.freshCon(j, obj))
	case frac == 0 && p >= 0:
		q.removeActive(j, p)
	case p >= 0:
		q.lam[j][p] = lamNew
	}
	q.l.Set(obj, j, frac)
}

// insertActive splices obj into target j's active list at position t,
// keeping ascending order so that scoreWith's summation order depends only
// on the set of active objects, never on the history of moves that produced
// it. Steady-state insertions reuse the capacity earlier removals left
// behind, keeping the Apply hot loop allocation-free.
func (q *IncrementalEvaluator) insertActive(j, t, obj int, lam, con float64) {
	q.act[j] = append(q.act[j], 0)
	copy(q.act[j][t+1:], q.act[j][t:])
	q.act[j][t] = int32(obj)
	q.lam[j] = append(q.lam[j], 0)
	copy(q.lam[j][t+1:], q.lam[j][t:])
	q.lam[j][t] = lam
	q.con[j] = append(q.con[j], 0)
	copy(q.con[j][t+1:], q.con[j][t:])
	q.con[j][t] = con
}

// removeActive drops the entry at position t from target j's active list.
// The slices are truncated, not reallocated, so their capacity survives for
// the next insertion.
func (q *IncrementalEvaluator) removeActive(j, t int) {
	a := q.act[j]
	copy(a[t:], a[t+1:])
	q.act[j] = a[:len(a)-1]
	lam := q.lam[j]
	copy(lam[t:], lam[t+1:])
	q.lam[j] = lam[:len(lam)-1]
	con := q.con[j]
	copy(con[t:], con[t+1:])
	q.con[j] = con[:len(con)-1]
}

// ForEachActive calls f for every object with a non-zero assignment on
// target j, in ascending object order, with its cached per-target request
// rate lambda_ij. It is the candidate-enumeration primitive the pruned
// transfer search uses to find the hottest objects on the most-utilized
// target without an O(N) column scan.
func (q *IncrementalEvaluator) ForEachActive(j int, f func(obj int, lam float64)) {
	for t, i := range q.act[j] {
		f(int(i), q.lam[j][t])
	}
}

// ActiveCount returns the number of objects with a non-zero assignment on
// target j.
func (q *IncrementalEvaluator) ActiveCount(j int) int { return len(q.act[j]) }

// ScoreObjectFrac returns mu_j as if L[obj][j] were frac, leaving the layout
// and cached state untouched. It prices one cell of a row replacement — a
// row change only affects targets whose own cell changed, so a full candidate
// row is priced by calling this per changed target (the regularizer's and
// polish pass's pattern).
func (q *IncrementalEvaluator) ScoreObjectFrac(j, obj int, frac float64) float64 {
	return q.scoreWith(j, obj, frac)
}

// SetObjectRow replaces object obj's row and updates every affected target's
// cached state. Unchanged cells cost nothing; each changed target is repriced
// through the same primitive ScoreObjectFrac uses, so previously probed
// scores match the cached utilizations bit-for-bit.
func (q *IncrementalEvaluator) SetObjectRow(obj int, row []float64) {
	if len(row) != q.m {
		panic(fmt.Sprintf("layout: row length %d, want %d", len(row), q.m))
	}
	for j := 0; j < q.m; j++ {
		if row[j] == q.l.At(obj, j) {
			continue
		}
		q.mu[j] = q.scoreWith(j, obj, row[j])
		q.setFrac(j, obj, row[j])
	}
}

// Utilization returns the cached mu_j.
func (q *IncrementalEvaluator) Utilization(j int) float64 { return q.mu[j] }

// Utilizations appends the cached per-target utilizations to dst and returns
// the extended slice. Pass dst[:0] to reuse a buffer, or nil to allocate.
func (q *IncrementalEvaluator) Utilizations(dst []float64) []float64 {
	return append(dst, q.mu...)
}

// MaxUtilization returns the cached optimization objective max_j mu_j.
func (q *IncrementalEvaluator) MaxUtilization() float64 {
	var max float64
	for _, u := range q.mu {
		if u > max {
			max = u
		}
	}
	return max
}
