package layout

import (
	"fmt"
	"sort"
)

// SEE returns the stripe-everything-everywhere baseline: every object spread
// evenly across all targets (Sec. 1). It is regular by construction.
func SEE(n, m int) *Layout {
	l := New(n, m)
	f := 1 / float64(m)
	for i := 0; i < n; i++ {
		for j := 0; j < m; j++ {
			l.Set(i, j, f)
		}
	}
	return l
}

// AllOnOne places every object on a single target. Used for the paper's
// "all objects on the SSD" baseline (Fig. 18).
func AllOnOne(n, m, target int) *Layout {
	l := New(n, m)
	for i := 0; i < n; i++ {
		l.Set(i, target, 1)
	}
	return l
}

// KindAssignment maps object kinds to the target set each kind should be
// striped across. Kinds without an entry fall back to Default.
type KindAssignment struct {
	ByKind  map[ObjectKind][]int
	Default []int
}

// ByKind builds a baseline layout that stripes each object evenly across the
// targets assigned to its kind — the "isolate tables", "isolate tables and
// indexes" style of administrator heuristic the paper uses as additional
// baselines for heterogeneous configurations (Sec. 6.4).
func ByKind(inst *Instance, a KindAssignment) (*Layout, error) {
	l := New(inst.N(), inst.M())
	for i, o := range inst.Objects {
		ts, ok := a.ByKind[o.Kind]
		if !ok {
			ts = a.Default
		}
		if len(ts) == 0 {
			return nil, fmt.Errorf("layout: no targets assigned for object %q (kind %s)", o.Name, o.Kind)
		}
		for _, j := range ts {
			if j < 0 || j >= inst.M() {
				return nil, fmt.Errorf("layout: kind assignment references target %d of %d", j, inst.M())
			}
		}
		l.SetRow(i, RegularRow(inst.M(), ts))
	}
	if err := inst.ValidateLayout(l); err != nil {
		return nil, err
	}
	return l, nil
}

// sharesSeparated reports whether placing object i on target j would
// co-locate it with an object it must be separated from.
func sharesSeparated(c *Constraints, l *Layout, i, j int) bool {
	for _, k := range c.SeparatedFrom(i) {
		if l.At(k, j) > Epsilon {
			return true
		}
	}
	return false
}

// InitialLayout implements the paper's heuristic for choosing the solver's
// starting point (Sec. 4.2): objects are placed one at a time in decreasing
// order of total request rate; each object goes, in its entirety, to the
// target with the lowest total assigned request rate among those with enough
// remaining capacity. The heuristic ignores interference and target
// performance — that is the solver's job.
func InitialLayout(inst *Instance) (*Layout, error) {
	n, m := inst.N(), inst.M()
	l := New(n, m)

	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	ws := inst.Workloads.Workloads
	sort.SliceStable(order, func(a, b int) bool {
		return ws[order[a]].TotalRate() > ws[order[b]].TotalRate()
	})

	assignedRate := make([]float64, m)
	remaining := make([]float64, m)
	for j, t := range inst.Targets {
		remaining[j] = float64(t.Capacity)
	}

	for _, i := range order {
		size := float64(inst.Objects[i].Size)
		best := -1
		for j := 0; j < m; j++ {
			if remaining[j] < size || !inst.Constraints.Permits(i, j) {
				continue
			}
			if sharesSeparated(inst.Constraints, l, i, j) {
				continue
			}
			if best < 0 || assignedRate[j] < assignedRate[best] {
				best = j
			}
		}
		if best < 0 {
			return nil, fmt.Errorf("layout: no target can hold object %q (%d bytes): %w",
				inst.Objects[i].Name, inst.Objects[i].Size, ErrInfeasible)
		}
		l.Set(i, best, 1)
		assignedRate[best] += ws[i].TotalRate()
		remaining[best] -= size
	}
	return l, nil
}
