package layout

import (
	"errors"
	"fmt"
)

// Sentinel errors classifying advisor failures. Callers match them with
// errors.Is to branch on the outcome; the wrapping errors carry the detail.
var (
	// ErrInfeasible marks problems with no valid layout: the objects do not
	// fit in the targets' aggregate capacity, or administrative constraints
	// leave some object with no permitted target. A recommendation carrying
	// this error comes with no layout at all.
	ErrInfeasible = errors.New("problem infeasible")

	// ErrModelFailure marks a black-box cost model that panicked or
	// returned a non-finite or negative per-request cost. The advisor
	// recovers by falling back to model-free layouts (the heuristic initial
	// layout, then SEE); a recommendation degraded by this error still
	// holds a capacity- and constraint-valid layout, but its predicted
	// objectives are untrustworthy.
	ErrModelFailure = errors.New("cost model failure")
)

// modelFailure is the panic value raised by the Evaluator when a cost model
// misbehaves, and the error the advisor's recovery layer reports.
type modelFailure struct {
	target string
	detail string
}

func (e *modelFailure) Error() string {
	return fmt.Sprintf("layout: target %q: %s: %s", e.target, ErrModelFailure, e.detail)
}

func (e *modelFailure) Unwrap() error { return ErrModelFailure }

// AsModelFailure converts a value recovered from a panic during layout
// evaluation or solving into an ErrModelFailure-classified error. Model
// misbehaviour detected by the Evaluator (non-finite or negative costs)
// arrives pre-classified; any other panic in the solve path is attributed to
// the only black-box code that runs there — the cost model — and wrapped the
// same way, so a misbehaving model can never take the advisor down.
func AsModelFailure(recovered interface{}) error {
	if v, ok := recovered.(*modelFailure); ok {
		return v
	}
	return fmt.Errorf("layout: %w: panic during evaluation: %v", ErrModelFailure, recovered)
}
