package layout

import (
	"fmt"
	"math/rand"
	"testing"

	"dblayout/internal/rome"
)

// utilTol is the agreement contract between the incremental kernel and the
// naive evaluator (see DESIGN.md, "Evaluation-kernel tolerance contract").
const utilTol = 1e-9

func utilClose(a, b float64) bool {
	d := a - b
	if d < 0 {
		d = -d
	}
	scale := 1.0
	if a > scale {
		scale = a
	}
	if b > scale {
		scale = b
	}
	return d <= utilTol*scale
}

// randInstance builds a random valid instance: n objects with random rates,
// sizes, run counts, concurrency and a random symmetric overlap matrix, on m
// targets alternating between the disk-like and SSD-like test models.
func randInstance(tb testing.TB, rng *rand.Rand, n, m int) *Instance {
	ws := make([]*rome.Workload, n)
	for i := range ws {
		w := &rome.Workload{
			Name:      fmt.Sprintf("O%d", i),
			ReadSize:  8192 * float64(1+rng.Intn(16)),
			WriteSize: 8192,
			ReadRate:  rng.Float64() * 300,
			WriteRate: rng.Float64() * 50,
			RunCount:  1 + rng.Float64()*63,
			Overlap:   make([]float64, n),
		}
		if rng.Intn(4) == 0 {
			w.Concurrency = 1 + rng.Float64()*4
		}
		if rng.Intn(8) == 0 {
			// Idle object: exercises the totalRate == 0 paths.
			w.ReadRate, w.WriteRate = 0, 0
		}
		w.Overlap[i] = 1
		ws[i] = w
	}
	for i := 0; i < n; i++ {
		for k := i + 1; k < n; k++ {
			ov := rng.Float64()
			if rng.Intn(3) == 0 {
				ov = 0
			}
			ws[i].Overlap[k] = ov
			ws[k].Overlap[i] = ov
		}
	}
	set, err := rome.NewSet(ws...)
	if err != nil {
		tb.Fatal(err)
	}

	disk, ssd := testModel(), ssdTestModel()
	targets := make([]*Target, m)
	for j := range targets {
		model := CostModel(disk)
		if j%2 == 1 {
			model = ssd
		}
		targets[j] = &Target{Name: fmt.Sprintf("t%d", j), Capacity: 1 << 40, Model: model}
	}
	objects := make([]Object, n)
	for i := range objects {
		objects[i] = Object{Name: ws[i].Name, Size: int64(1+rng.Intn(8)) << 28}
	}
	inst := &Instance{Objects: objects, Targets: targets, Workloads: set}
	if err := inst.Validate(); err != nil {
		tb.Fatal(err)
	}
	return inst
}

// randLayout builds a random valid layout: each row spreads over 1..m random
// targets with normalized random weights.
func randLayout(rng *rand.Rand, n, m int) *Layout {
	l := New(n, m)
	for i := 0; i < n; i++ {
		k := 1 + rng.Intn(m)
		perm := rng.Perm(m)[:k]
		row := make([]float64, m)
		var sum float64
		for _, j := range perm {
			row[j] = 0.1 + rng.Float64()
			sum += row[j]
		}
		for j := range row {
			row[j] /= sum
		}
		l.SetRow(i, row)
	}
	return l
}

// randMove picks a random candidate transfer for the differential drive,
// including dust-clamp (delta just shy of the whole assignment) and
// whole-assignment moves.
func randMove(rng *rand.Rand, l *Layout) (obj, from, to int, delta float64, ok bool) {
	obj = rng.Intn(l.N)
	froms := l.Targets(obj)
	if len(froms) == 0 {
		return 0, 0, 0, 0, false
	}
	from = froms[rng.Intn(len(froms))]
	to = rng.Intn(l.M)
	if to == from {
		to = (to + 1) % l.M
	}
	have := l.At(obj, from)
	if have <= Epsilon {
		return 0, 0, 0, 0, false
	}
	switch rng.Intn(5) {
	case 0:
		delta = have // whole assignment
	case 1:
		delta = have * (1 - 5e-10) // sub-Epsilon residual: dust clamp folds it
	case 2:
		delta = have * 0.5
	case 3:
		delta = have * 0.125
	default:
		delta = have * rng.Float64()
	}
	if delta <= Epsilon {
		return 0, 0, 0, 0, false
	}
	return obj, from, to, delta, true
}

// checkAgainstNaive compares every cached kernel utilization against a fresh
// naive evaluation of the kernel's layout.
func checkAgainstNaive(tb testing.TB, q *IncrementalEvaluator, ev *Evaluator, step int) {
	tb.Helper()
	want := ev.Utilizations(q.Layout())
	got := q.Utilizations(nil)
	for j := range want {
		if !utilClose(got[j], want[j]) {
			tb.Fatalf("step %d: target %d: incremental mu = %.17g, naive mu = %.17g (diff %g)",
				step, j, got[j], want[j], got[j]-want[j])
		}
	}
}

// driveDifferential runs `moves` random transfers through the kernel,
// checking every TryMove probe against a naive mutate-evaluate pass on a
// clone and periodically checking the full cached state against a fresh
// naive evaluation.
func driveDifferential(tb testing.TB, seed int64, n, m, moves int) {
	rng := rand.New(rand.NewSource(seed))
	inst := randInstance(tb, rng, n, m)
	ev := NewEvaluator(inst)
	l := randLayout(rng, n, m)
	q := ev.NewIncremental(l)
	checkAgainstNaive(tb, q, ev, -1)

	applied := 0
	for step := 0; step < moves; step++ {
		obj, from, to, delta, ok := randMove(rng, l)
		if !ok {
			continue
		}
		muF, muT := q.TryMove(obj, from, to, delta)

		// Naive reference: apply the effective move to a clone, evaluate.
		eff := q.EffectiveDelta(obj, from, delta)
		have := l.At(obj, from)
		c := l.Clone()
		newFrom := have - eff
		if eff == have {
			newFrom = 0
		}
		c.Set(obj, from, newFrom)
		c.Set(obj, to, c.At(obj, to)+eff)
		if wantF := ev.TargetUtilization(c, from); !utilClose(muF, wantF) {
			tb.Fatalf("step %d: TryMove muFrom = %.17g, naive = %.17g", step, muF, wantF)
		}
		if wantT := ev.TargetUtilization(c, to); !utilClose(muT, wantT) {
			tb.Fatalf("step %d: TryMove muTo = %.17g, naive = %.17g", step, muT, wantT)
		}

		if rng.Intn(3) > 0 {
			if got := q.Apply(obj, from, to, delta); got != eff {
				tb.Fatalf("step %d: Apply returned %g, EffectiveDelta %g", step, got, eff)
			}
			applied++
			// Apply's cached state must reproduce TryMove's probes exactly:
			// both go through the same scoring primitive.
			if q.Utilization(from) != muF || q.Utilization(to) != muT {
				tb.Fatalf("step %d: Apply utilizations (%.17g, %.17g) differ from TryMove probes (%.17g, %.17g)",
					step, q.Utilization(from), q.Utilization(to), muF, muT)
			}
			if eff == have && l.At(obj, from) != 0 {
				tb.Fatalf("step %d: whole-assignment move left %g on source", step, l.At(obj, from))
			}
		}
		if step%25 == 0 {
			checkAgainstNaive(tb, q, ev, step)
		}
	}
	checkAgainstNaive(tb, q, ev, moves)
	if err := l.CheckIntegrity(); err != nil {
		tb.Fatalf("after %d applied moves: %v", applied, err)
	}
}

// TestIncrementalMatchesNaive is the differential property test of the
// kernel's move path: random instances, random valid layouts, random move
// sequences, with every probe and every cached utilization compared against
// the naive evaluator within the 1e-9 contract.
func TestIncrementalMatchesNaive(t *testing.T) {
	for seed := int64(1); seed <= 6; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			rng := rand.New(rand.NewSource(seed * 977))
			n := 4 + rng.Intn(9)
			m := 2 + rng.Intn(5)
			driveDifferential(t, seed, n, m, 200)
		})
	}
}

// TestIncrementalRowReplacement checks the regularizer's pattern: probing
// single cells of a candidate row with ScoreObjectFrac, then committing it
// with SetObjectRow, must match naive evaluation of the replaced row.
func TestIncrementalRowReplacement(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	inst := randInstance(t, rng, 10, 5)
	ev := NewEvaluator(inst)
	l := randLayout(rng, 10, 5)
	q := ev.NewIncremental(l)

	for step := 0; step < 120; step++ {
		i := rng.Intn(l.N)
		row := randLayout(rng, 1, l.M).Row(0)
		if rng.Intn(4) == 0 {
			// Regular row concentrated on one target: exercises activation
			// and deactivation of the remaining cells.
			for j := range row {
				row[j] = 0
			}
			row[rng.Intn(l.M)] = 1
		}
		c := l.Clone()
		c.SetRow(i, row)
		probes := make([]float64, l.M)
		for j := range row {
			probes[j] = q.ScoreObjectFrac(j, i, row[j])
			if want := ev.TargetUtilization(c, j); !utilClose(probes[j], want) {
				t.Fatalf("step %d: ScoreObjectFrac(%d, %d, %g) = %.17g, naive = %.17g",
					step, j, i, row[j], probes[j], want)
			}
		}
		q.SetObjectRow(i, row)
		for j := range row {
			if row[j] != c.At(i, j) {
				continue
			}
			if q.Utilization(j) != probes[j] && row[j] != l.At(i, j) {
				t.Fatalf("step %d: SetObjectRow utilization %.17g differs from probe %.17g",
					step, q.Utilization(j), probes[j])
			}
		}
		checkAgainstNaive(t, q, ev, step)
	}
}

// TestIncrementalLongSequenceDrift pins the accumulated floating-point drift
// of the incrementally-maintained contention sums: after thousands of applied
// moves the kernel must still agree with a fresh naive evaluation within the
// 1e-9 contract, with no periodic rebuild.
func TestIncrementalLongSequenceDrift(t *testing.T) {
	if testing.Short() {
		t.Skip("long drift check skipped in -short mode")
	}
	rng := rand.New(rand.NewSource(7))
	inst := randInstance(t, rng, 20, 6)
	ev := NewEvaluator(inst)
	l := randLayout(rng, 20, 6)
	q := ev.NewIncremental(l)

	for step := 0; step < 4000; step++ {
		obj, from, to, delta, ok := randMove(rng, l)
		if !ok {
			continue
		}
		q.Apply(obj, from, to, delta)
		if step%500 == 0 {
			checkAgainstNaive(t, q, ev, step)
		}
	}
	checkAgainstNaive(t, q, ev, 4000)
	if err := l.CheckIntegrity(); err != nil {
		t.Fatal(err)
	}
}

// TestIncrementalMoveScoringAllocFree pins the kernel's zero-allocation
// contract for the move-scoring loop: TryMove and Apply must not allocate
// once the kernel is built.
func TestIncrementalMoveScoringAllocFree(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	inst := randInstance(t, rng, 12, 4)
	ev := NewEvaluator(inst)
	l := randLayout(rng, 12, 4)
	q := ev.NewIncremental(l)

	from := 0
	for l.At(0, from) <= Epsilon {
		from++
	}
	to := (from + 1) % l.M
	if allocs := testing.AllocsPerRun(200, func() {
		q.TryMove(0, from, to, l.At(0, from)*0.25)
	}); allocs != 0 {
		t.Fatalf("TryMove allocates %g objects per call, want 0", allocs)
	}
	// Bounce the whole assignment between two targets: every Apply
	// activates one target and deactivates the other, the worst case for
	// the active-list bookkeeping.
	row := make([]float64, l.M)
	row[0] = 1
	q.SetObjectRow(1, row)
	side := 0
	if allocs := testing.AllocsPerRun(200, func() {
		q.Apply(1, side, 1-side, l.At(1, side))
		side = 1 - side
	}); allocs != 0 {
		t.Fatalf("Apply allocates %g objects per call, want 0", allocs)
	}
}

// TestIncrementalDimensionMismatch checks the constructor's guard.
func TestIncrementalDimensionMismatch(t *testing.T) {
	inst := testInstance(t, 2)
	ev := NewEvaluator(inst)
	defer func() {
		if recover() == nil {
			t.Fatal("mismatched layout dimensions not rejected")
		}
	}()
	ev.NewIncremental(New(2, 2)) // instance has 4 objects
}

// FuzzIncrementalKernel fuzzes the differential property: whatever the
// instance shape, layout, and move sequence, the kernel must agree with the
// naive evaluator within the tolerance contract and preserve layout
// integrity.
func FuzzIncrementalKernel(f *testing.F) {
	f.Add(int64(1), uint8(6), uint8(3), uint16(60))
	f.Add(int64(2), uint8(2), uint8(2), uint16(10))
	f.Add(int64(99), uint8(16), uint8(8), uint16(200))
	f.Fuzz(func(t *testing.T, seed int64, n, m uint8, moves uint16) {
		nn := 2 + int(n%15)
		mm := 2 + int(m%7)
		steps := int(moves % 256)
		driveDifferential(t, seed, nn, mm, steps)
	})
}
