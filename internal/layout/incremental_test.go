package layout

import (
	"fmt"
	"math/rand"
	"runtime"
	"testing"

	"dblayout/internal/rome"
)

// utilTol is the agreement contract between the incremental kernel and the
// naive evaluator (see DESIGN.md, "Evaluation-kernel tolerance contract").
const utilTol = 1e-9

func utilClose(a, b float64) bool {
	d := a - b
	if d < 0 {
		d = -d
	}
	scale := 1.0
	if a > scale {
		scale = a
	}
	if b > scale {
		scale = b
	}
	return d <= utilTol*scale
}

// randInstance builds a random valid instance: n objects with random rates,
// sizes, run counts, concurrency and a random symmetric overlap matrix with
// ~1/3 zero pairs, all in the dense representation, on m targets alternating
// between the disk-like and SSD-like test models.
func randInstance(tb testing.TB, rng *rand.Rand, n, m int) *Instance {
	return randInstanceWith(tb, rng, n, m, 1.0/3, false)
}

// randInstanceWith generalizes randInstance: each overlap pair is zeroed
// with probability drop (the sparsity level), and with mixRep set each
// workload's vector is stored in a randomly chosen representation — dense
// or rome.SparseOverlap carrying the exact same values — so differential
// drives cover representation mixing at every sparsity level.
func randInstanceWith(tb testing.TB, rng *rand.Rand, n, m int, drop float64, mixRep bool) *Instance {
	ws := make([]*rome.Workload, n)
	for i := range ws {
		w := &rome.Workload{
			Name:      fmt.Sprintf("O%d", i),
			ReadSize:  8192 * float64(1+rng.Intn(16)),
			WriteSize: 8192,
			ReadRate:  rng.Float64() * 300,
			WriteRate: rng.Float64() * 50,
			RunCount:  1 + rng.Float64()*63,
			Overlap:   make([]float64, n),
		}
		if rng.Intn(4) == 0 {
			w.Concurrency = 1 + rng.Float64()*4
		}
		if rng.Intn(8) == 0 {
			// Idle object: exercises the totalRate == 0 paths.
			w.ReadRate, w.WriteRate = 0, 0
		}
		w.Overlap[i] = 1
		ws[i] = w
	}
	for i := 0; i < n; i++ {
		for k := i + 1; k < n; k++ {
			ov := rng.Float64()
			if rng.Float64() < drop {
				ov = 0
			}
			ws[i].Overlap[k] = ov
			ws[k].Overlap[i] = ov
		}
	}
	if mixRep {
		for i, w := range ws {
			if rng.Intn(2) == 0 {
				continue
			}
			var sp []rome.OverlapEntry
			for k, v := range w.Overlap {
				if k != i && v != 0 {
					sp = append(sp, rome.OverlapEntry{Index: k, Value: v})
				}
			}
			w.Overlap = nil
			w.SparseOverlap = sp
		}
	}
	set, err := rome.NewSet(ws...)
	if err != nil {
		tb.Fatal(err)
	}

	disk, ssd := testModel(), ssdTestModel()
	targets := make([]*Target, m)
	for j := range targets {
		model := CostModel(disk)
		if j%2 == 1 {
			model = ssd
		}
		targets[j] = &Target{Name: fmt.Sprintf("t%d", j), Capacity: 1 << 40, Model: model}
	}
	objects := make([]Object, n)
	for i := range objects {
		objects[i] = Object{Name: ws[i].Name, Size: int64(1+rng.Intn(8)) << 28}
	}
	inst := &Instance{Objects: objects, Targets: targets, Workloads: set}
	if err := inst.Validate(); err != nil {
		tb.Fatal(err)
	}
	return inst
}

// randLayout builds a random valid layout: each row spreads over 1..m random
// targets with normalized random weights.
func randLayout(rng *rand.Rand, n, m int) *Layout {
	l := New(n, m)
	for i := 0; i < n; i++ {
		k := 1 + rng.Intn(m)
		perm := rng.Perm(m)[:k]
		row := make([]float64, m)
		var sum float64
		for _, j := range perm {
			row[j] = 0.1 + rng.Float64()
			sum += row[j]
		}
		for j := range row {
			row[j] /= sum
		}
		l.SetRow(i, row)
	}
	return l
}

// randMove picks a random candidate transfer for the differential drive,
// including dust-clamp (delta just shy of the whole assignment) and
// whole-assignment moves.
func randMove(rng *rand.Rand, l *Layout) (obj, from, to int, delta float64, ok bool) {
	obj = rng.Intn(l.N)
	froms := l.Targets(obj)
	if len(froms) == 0 {
		return 0, 0, 0, 0, false
	}
	from = froms[rng.Intn(len(froms))]
	to = rng.Intn(l.M)
	if to == from {
		to = (to + 1) % l.M
	}
	have := l.At(obj, from)
	if have <= Epsilon {
		return 0, 0, 0, 0, false
	}
	switch rng.Intn(5) {
	case 0:
		delta = have // whole assignment
	case 1:
		delta = have * (1 - 5e-10) // sub-Epsilon residual: dust clamp folds it
	case 2:
		delta = have * 0.5
	case 3:
		delta = have * 0.125
	default:
		delta = have * rng.Float64()
	}
	if delta <= Epsilon {
		return 0, 0, 0, 0, false
	}
	return obj, from, to, delta, true
}

// checkAgainstNaive compares every cached kernel utilization against a fresh
// naive evaluation of the kernel's layout.
func checkAgainstNaive(tb testing.TB, q *IncrementalEvaluator, ev *Evaluator, step int) {
	tb.Helper()
	want := ev.Utilizations(q.Layout())
	got := q.Utilizations(nil)
	for j := range want {
		if !utilClose(got[j], want[j]) {
			tb.Fatalf("step %d: target %d: incremental mu = %.17g, naive mu = %.17g (diff %g)",
				step, j, got[j], want[j], got[j]-want[j])
		}
	}
}

// driveDifferential runs `moves` random transfers through the kernel,
// checking every TryMove probe against a naive mutate-evaluate pass on a
// clone and periodically checking the full cached state against a fresh
// naive evaluation. drop sets the overlap sparsity (fraction of zero
// pairs); pass -1 for the legacy dense 1/3-zero generator, any other value
// also mixes dense and sparse overlap representations across workloads.
func driveDifferential(tb testing.TB, seed int64, n, m, moves int, drop float64) {
	rng := rand.New(rand.NewSource(seed))
	var inst *Instance
	if drop < 0 {
		inst = randInstance(tb, rng, n, m)
	} else {
		inst = randInstanceWith(tb, rng, n, m, drop, true)
	}
	ev := NewEvaluator(inst)
	l := randLayout(rng, n, m)
	q := ev.NewIncremental(l)
	checkAgainstNaive(tb, q, ev, -1)

	applied := 0
	for step := 0; step < moves; step++ {
		obj, from, to, delta, ok := randMove(rng, l)
		if !ok {
			continue
		}
		muF, muT := q.TryMove(obj, from, to, delta)

		// Naive reference: apply the effective move to a clone, evaluate.
		eff := q.EffectiveDelta(obj, from, delta)
		have := l.At(obj, from)
		c := l.Clone()
		newFrom := have - eff
		if eff == have {
			newFrom = 0
		}
		c.Set(obj, from, newFrom)
		c.Set(obj, to, c.At(obj, to)+eff)
		if wantF := ev.TargetUtilization(c, from); !utilClose(muF, wantF) {
			tb.Fatalf("step %d: TryMove muFrom = %.17g, naive = %.17g", step, muF, wantF)
		}
		if wantT := ev.TargetUtilization(c, to); !utilClose(muT, wantT) {
			tb.Fatalf("step %d: TryMove muTo = %.17g, naive = %.17g", step, muT, wantT)
		}

		if rng.Intn(3) > 0 {
			if got := q.Apply(obj, from, to, delta); got != eff {
				tb.Fatalf("step %d: Apply returned %g, EffectiveDelta %g", step, got, eff)
			}
			applied++
			// Apply's cached state must reproduce TryMove's probes exactly:
			// both go through the same scoring primitive.
			if q.Utilization(from) != muF || q.Utilization(to) != muT {
				tb.Fatalf("step %d: Apply utilizations (%.17g, %.17g) differ from TryMove probes (%.17g, %.17g)",
					step, q.Utilization(from), q.Utilization(to), muF, muT)
			}
			if eff == have && l.At(obj, from) != 0 {
				tb.Fatalf("step %d: whole-assignment move left %g on source", step, l.At(obj, from))
			}
		}
		if step%25 == 0 {
			checkAgainstNaive(tb, q, ev, step)
		}
	}
	checkAgainstNaive(tb, q, ev, moves)
	if err := l.CheckIntegrity(); err != nil {
		tb.Fatalf("after %d applied moves: %v", applied, err)
	}
}

// TestIncrementalMatchesNaive is the differential property test of the
// kernel's move path: random instances, random valid layouts, random move
// sequences, with every probe and every cached utilization compared against
// the naive evaluator within the 1e-9 contract.
func TestIncrementalMatchesNaive(t *testing.T) {
	for seed := int64(1); seed <= 6; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			rng := rand.New(rand.NewSource(seed * 977))
			n := 4 + rng.Intn(9)
			m := 2 + rng.Intn(5)
			driveDifferential(t, seed, n, m, 200, -1)
		})
	}
}

// TestIncrementalMatchesNaiveSparse runs the same differential property over
// the sparse overlap representation at several sparsity levels, with dense
// and sparse vectors mixed within one set.
func TestIncrementalMatchesNaiveSparse(t *testing.T) {
	for _, drop := range []float64{0, 0.5, 0.9, 1} {
		drop := drop
		t.Run(fmt.Sprintf("drop=%g", drop), func(t *testing.T) {
			driveDifferential(t, int64(1000*drop)+13, 12, 5, 200, drop)
		})
	}
}

// TestIncrementalRowReplacement checks the regularizer's pattern: probing
// single cells of a candidate row with ScoreObjectFrac, then committing it
// with SetObjectRow, must match naive evaluation of the replaced row.
func TestIncrementalRowReplacement(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	inst := randInstance(t, rng, 10, 5)
	ev := NewEvaluator(inst)
	l := randLayout(rng, 10, 5)
	q := ev.NewIncremental(l)

	for step := 0; step < 120; step++ {
		i := rng.Intn(l.N)
		row := randLayout(rng, 1, l.M).Row(0)
		if rng.Intn(4) == 0 {
			// Regular row concentrated on one target: exercises activation
			// and deactivation of the remaining cells.
			for j := range row {
				row[j] = 0
			}
			row[rng.Intn(l.M)] = 1
		}
		c := l.Clone()
		c.SetRow(i, row)
		probes := make([]float64, l.M)
		for j := range row {
			probes[j] = q.ScoreObjectFrac(j, i, row[j])
			if want := ev.TargetUtilization(c, j); !utilClose(probes[j], want) {
				t.Fatalf("step %d: ScoreObjectFrac(%d, %d, %g) = %.17g, naive = %.17g",
					step, j, i, row[j], probes[j], want)
			}
		}
		q.SetObjectRow(i, row)
		for j := range row {
			if row[j] != c.At(i, j) {
				continue
			}
			if q.Utilization(j) != probes[j] && row[j] != l.At(i, j) {
				t.Fatalf("step %d: SetObjectRow utilization %.17g differs from probe %.17g",
					step, q.Utilization(j), probes[j])
			}
		}
		checkAgainstNaive(t, q, ev, step)
	}
}

// TestIncrementalLongSequenceDrift pins the accumulated floating-point drift
// of the incrementally-maintained contention sums: after thousands of applied
// moves the kernel must still agree with a fresh naive evaluation within the
// 1e-9 contract, with no periodic rebuild.
func TestIncrementalLongSequenceDrift(t *testing.T) {
	if testing.Short() {
		t.Skip("long drift check skipped in -short mode")
	}
	rng := rand.New(rand.NewSource(7))
	inst := randInstance(t, rng, 20, 6)
	ev := NewEvaluator(inst)
	l := randLayout(rng, 20, 6)
	q := ev.NewIncremental(l)

	for step := 0; step < 4000; step++ {
		obj, from, to, delta, ok := randMove(rng, l)
		if !ok {
			continue
		}
		q.Apply(obj, from, to, delta)
		if step%500 == 0 {
			checkAgainstNaive(t, q, ev, step)
		}
	}
	checkAgainstNaive(t, q, ev, 4000)
	if err := l.CheckIntegrity(); err != nil {
		t.Fatal(err)
	}
}

// TestIncrementalMoveScoringAllocFree pins the kernel's zero-allocation
// contract for the move-scoring loop: TryMove and Apply must not allocate
// once the kernel is built.
func TestIncrementalMoveScoringAllocFree(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	inst := randInstance(t, rng, 12, 4)
	ev := NewEvaluator(inst)
	l := randLayout(rng, 12, 4)
	q := ev.NewIncremental(l)

	from := 0
	for l.At(0, from) <= Epsilon {
		from++
	}
	to := (from + 1) % l.M
	if allocs := testing.AllocsPerRun(200, func() {
		q.TryMove(0, from, to, l.At(0, from)*0.25)
	}); allocs != 0 {
		t.Fatalf("TryMove allocates %g objects per call, want 0", allocs)
	}
	// Bounce the whole assignment between two targets: every Apply
	// activates one target and deactivates the other, the worst case for
	// the active-list bookkeeping.
	row := make([]float64, l.M)
	row[0] = 1
	q.SetObjectRow(1, row)
	side := 0
	if allocs := testing.AllocsPerRun(200, func() {
		q.Apply(1, side, 1-side, l.At(1, side))
		side = 1 - side
	}); allocs != 0 {
		t.Fatalf("Apply allocates %g objects per call, want 0", allocs)
	}
}

// TestIncrementalDegenerateMoves pins the guards and the no-op behaviour of
// the degenerate move shapes: from == to and negative deltas are caller bugs
// and panic on both TryMove and Apply; zero-delta moves are harmless —
// probes and applies leave the layout bit-identical, never activate the
// destination, and keep the cached contention state consistent with naive
// evaluation.
func TestIncrementalDegenerateMoves(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	inst := randInstance(t, rng, 8, 4)
	ev := NewEvaluator(inst)
	l := randLayout(rng, 8, 4)
	q := ev.NewIncremental(l)

	mustPanic := func(name string, fn func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Fatalf("%s: expected panic", name)
			}
		}()
		fn()
	}
	// Force a known row so the destination below is guaranteed inactive.
	obj, from, to := 0, 0, 1
	row := make([]float64, l.M)
	row[from] = 1
	q.SetObjectRow(obj, row)
	mustPanic("TryMove from==to", func() { q.TryMove(obj, from, from, 0.5) })
	mustPanic("Apply from==to", func() { q.Apply(obj, from, from, 0.5) })
	mustPanic("TryMove negative delta", func() { q.TryMove(obj, from, to, -0.25) })
	mustPanic("Apply negative delta", func() { q.Apply(obj, from, to, -0.25) })

	// Zero-delta moves onto an inactive destination: a corrupt path would
	// show up as a spurious activation.
	beforeRow := append([]float64(nil), l.Row(obj)...)
	beforeActive := q.ActiveCount(to)
	muF, muT := q.TryMove(obj, from, to, 0)
	if eff := q.Apply(obj, from, to, 0); eff != 0 {
		t.Fatalf("zero-delta Apply moved %g", eff)
	}
	if q.Utilization(from) != muF || q.Utilization(to) != muT {
		t.Fatalf("zero-delta Apply utilizations (%.17g, %.17g) differ from TryMove probes (%.17g, %.17g)",
			q.Utilization(from), q.Utilization(to), muF, muT)
	}
	for j, v := range beforeRow {
		if l.At(obj, j) != v {
			t.Fatalf("zero-delta move changed L[%d][%d]: %g -> %g", obj, j, v, l.At(obj, j))
		}
	}
	if got := q.ActiveCount(to); got != beforeActive {
		t.Fatalf("zero-delta move activated the destination: %d -> %d active objects", beforeActive, got)
	}
	checkAgainstNaive(t, q, ev, 0)

	// A longer mix of zero-delta and real moves must not corrupt the cached
	// contention sums.
	for step := 0; step < 100; step++ {
		o, f, tt, delta, ok := randMove(rng, l)
		if !ok {
			continue
		}
		if step%3 == 0 {
			delta = 0
		}
		q.Apply(o, f, tt, delta)
	}
	checkAgainstNaive(t, q, ev, 100)
	if err := l.CheckIntegrity(); err != nil {
		t.Fatal(err)
	}
}

// blockSparseInstance builds an n-object instance whose overlap structure is
// block-diagonal with blocks of `span` co-accessed objects, stored in the
// sparse representation — the fleet shape: many databases, each internally
// correlated, mutually independent.
func blockSparseInstance(tb testing.TB, n, m, span int) *Instance {
	rng := rand.New(rand.NewSource(31))
	ws := make([]*rome.Workload, n)
	for i := range ws {
		ws[i] = &rome.Workload{
			Name:     fmt.Sprintf("O%d", i),
			ReadSize: 65536,
			ReadRate: 10 + rng.Float64()*200,
			RunCount: 1 + rng.Float64()*63,
		}
	}
	for b := 0; b < n; b += span {
		end := b + span
		if end > n {
			end = n
		}
		for i := b; i < end; i++ {
			for k := b; k < end; k++ {
				if k == i {
					continue
				}
				lo, hi := i, k
				if lo > hi {
					lo, hi = hi, lo
				}
				// Deterministic symmetric value per unordered pair.
				v := 0.2 + 0.7*float64((lo*31+hi*17)%100)/100
				ws[i].SparseOverlap = append(ws[i].SparseOverlap,
					rome.OverlapEntry{Index: k, Value: v})
			}
		}
	}
	set, err := rome.NewSet(ws...)
	if err != nil {
		tb.Fatal(err)
	}
	disk, ssd := testModel(), ssdTestModel()
	targets := make([]*Target, m)
	for j := range targets {
		model := CostModel(disk)
		if j%2 == 1 {
			model = ssd
		}
		targets[j] = &Target{Name: fmt.Sprintf("t%d", j), Capacity: 1 << 42, Model: model}
	}
	objects := make([]Object, n)
	for i := range objects {
		objects[i] = Object{Name: ws[i].Name, Size: 1 << 28}
	}
	inst := &Instance{Objects: objects, Targets: targets, Workloads: set}
	if err := inst.Validate(); err != nil {
		tb.Fatal(err)
	}
	return inst
}

// TestIncrementalFleetScaleConstruction is the regression test for the
// dense-construction bug: NewIncremental used to allocate four O(N) rows per
// target (O(M*N) memory however sparse the layout), and NewEvaluator a dense
// O(N^2) overlap matrix. At N=4096 x M=256 those were ~40 MB and ~130 MB;
// the sparse representations must stay proportional to non-zero co-access
// pairs and active layout entries — a couple of MB here — while still
// agreeing with naive evaluation.
func TestIncrementalFleetScaleConstruction(t *testing.T) {
	const n, m, span = 4096, 256, 8
	inst := blockSparseInstance(t, n, m, span)

	allocBytes := func(fn func()) uint64 {
		var before, after runtime.MemStats
		runtime.GC()
		runtime.ReadMemStats(&before)
		fn()
		runtime.ReadMemStats(&after)
		return after.TotalAlloc - before.TotalAlloc
	}

	var ev *Evaluator
	if got := allocBytes(func() { ev = NewEvaluator(inst) }); got > 8<<20 {
		t.Fatalf("NewEvaluator allocated %d bytes at N=%d; the dense matrix is back", got, n)
	}

	l := New(n, m)
	for i := 0; i < n; i++ {
		l.Set(i, i%m, 1)
	}
	var q *IncrementalEvaluator
	if got := allocBytes(func() { q = ev.NewIncremental(l) }); got > 8<<20 {
		t.Fatalf("NewIncremental allocated %d bytes for %d active entries; per-target state is dense again", got, n)
	}
	checkAgainstNaive(t, q, ev, 0)

	// Steady-state moves at fleet scale stay allocation-free.
	if allocs := testing.AllocsPerRun(100, func() {
		q.TryMove(0, 0, 1, l.At(0, 0)*0.5)
	}); allocs != 0 {
		t.Fatalf("fleet-scale TryMove allocates %g objects per call, want 0", allocs)
	}
}

// TestIncrementalDimensionMismatch checks the constructor's guard.
func TestIncrementalDimensionMismatch(t *testing.T) {
	inst := testInstance(t, 2)
	ev := NewEvaluator(inst)
	defer func() {
		if recover() == nil {
			t.Fatal("mismatched layout dimensions not rejected")
		}
	}()
	ev.NewIncremental(New(2, 2)) // instance has 4 objects
}

// FuzzIncrementalKernel fuzzes the differential property: whatever the
// instance shape, overlap sparsity level, representation mix (dense vectors
// vs rome.SparseOverlap), layout, and move sequence, the kernel must agree
// with the naive evaluator within the tolerance contract and preserve
// layout integrity. sparsity = 255 selects the legacy dense-only generator;
// anything else maps to a zero-pair probability in [0, 1] with mixed
// representations.
func FuzzIncrementalKernel(f *testing.F) {
	f.Add(int64(1), uint8(6), uint8(3), uint16(60), uint8(255))
	f.Add(int64(2), uint8(2), uint8(2), uint16(10), uint8(0))
	f.Add(int64(99), uint8(16), uint8(8), uint16(200), uint8(128))
	f.Add(int64(7), uint8(10), uint8(4), uint16(120), uint8(230))
	f.Fuzz(func(t *testing.T, seed int64, n, m uint8, moves uint16, sparsity uint8) {
		nn := 2 + int(n%15)
		mm := 2 + int(m%7)
		steps := int(moves % 256)
		drop := -1.0
		if sparsity != 255 {
			drop = float64(sparsity) / 254
		}
		driveDifferential(t, seed, nn, mm, steps, drop)
	})
}
