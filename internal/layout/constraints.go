package layout

import "fmt"

// Constraints are administrative placement restrictions. The paper (Sec. 4)
// highlights that the NLP formulation makes such constraints easy to add —
// "if administrative constraints require certain objects to be laid out onto
// particular targets, we can easily add such constraints to the NLP problem
// before solving it." All solvers, the regularizer and the polish pass
// honour them.
type Constraints struct {
	// Allow restricts an object to the listed targets. Objects without
	// an entry may use any target.
	Allow map[int][]int
	// Deny forbids an object from the listed targets.
	Deny map[int][]int
	// Separate lists object pairs that must never share a target (e.g. a
	// table and its write-ahead log, for failure isolation).
	Separate [][2]int
}

// Permits reports whether object i may be placed (in part) on target j.
func (c *Constraints) Permits(i, j int) bool {
	if c == nil {
		return true
	}
	if allowed, ok := c.Allow[i]; ok {
		found := false
		for _, t := range allowed {
			if t == j {
				found = true
				break
			}
		}
		if !found {
			return false
		}
	}
	for _, t := range c.Deny[i] {
		if t == j {
			return false
		}
	}
	return true
}

// SeparatedFrom returns the objects that must not share a target with i.
func (c *Constraints) SeparatedFrom(i int) []int {
	if c == nil {
		return nil
	}
	var out []int
	for _, p := range c.Separate {
		switch i {
		case p[0]:
			out = append(out, p[1])
		case p[1]:
			out = append(out, p[0])
		}
	}
	return out
}

// Validate checks index ranges and satisfiability of the Allow/Deny sets.
func (c *Constraints) Validate(n, m int) error {
	if c == nil {
		return nil
	}
	checkIdx := func(kind string, i, limit int) error {
		if i < 0 || i >= limit {
			return fmt.Errorf("layout: constraint %s index %d outside [0,%d)", kind, i, limit)
		}
		return nil
	}
	for i, ts := range c.Allow {
		if err := checkIdx("object", i, n); err != nil {
			return err
		}
		if len(ts) == 0 {
			return fmt.Errorf("layout: object %d allowed on no targets", i)
		}
		for _, j := range ts {
			if err := checkIdx("target", j, m); err != nil {
				return err
			}
		}
	}
	for i, ts := range c.Deny {
		if err := checkIdx("object", i, n); err != nil {
			return err
		}
		for _, j := range ts {
			if err := checkIdx("target", j, m); err != nil {
				return err
			}
		}
	}
	for i := 0; i < n; i++ {
		any := false
		for j := 0; j < m; j++ {
			if c.Permits(i, j) {
				any = true
				break
			}
		}
		if !any {
			return fmt.Errorf("layout: object %d has no permitted target: %w", i, ErrInfeasible)
		}
	}
	for _, p := range c.Separate {
		if err := checkIdx("object", p[0], n); err != nil {
			return err
		}
		if err := checkIdx("object", p[1], n); err != nil {
			return err
		}
		if p[0] == p[1] {
			return fmt.Errorf("layout: object %d separated from itself", p[0])
		}
	}
	return nil
}

// Check verifies that a layout satisfies the constraints.
func (c *Constraints) Check(l *Layout) error {
	if c == nil {
		return nil
	}
	for i := 0; i < l.N; i++ {
		for j := 0; j < l.M; j++ {
			if l.At(i, j) > Epsilon && !c.Permits(i, j) {
				return fmt.Errorf("layout: object %d placed on forbidden target %d", i, j)
			}
		}
	}
	for _, p := range c.Separate {
		for j := 0; j < l.M; j++ {
			if l.At(p[0], j) > Epsilon && l.At(p[1], j) > Epsilon {
				return fmt.Errorf("layout: separated objects %d and %d share target %d", p[0], p[1], j)
			}
		}
	}
	return nil
}
