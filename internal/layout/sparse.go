package layout

import (
	"sort"

	"dblayout/internal/rome"
)

// overlapCSR is the sparse overlap matrix shared by the Evaluator and every
// IncrementalEvaluator: one CSR-style row per object holding its non-zero
// co-access pairs. Row i's entry for partner k stores both directions of the
// pair — val = Overlap(i, k) (what the contention factor of Eq. 2 reads when
// pricing object i) and tval = Overlap(k, i) (what it reads when pricing the
// partner) — because the set only guarantees symmetry to 1e-9, and the two
// ULP-distinct readings must stay exactly what the dense path would have
// read. The pattern is the symmetric union of both directions' non-zeros, so
// walking row i visits every k the dense O(N) scan would have found a
// non-zero for, in the same ascending order.
//
// At the paper's densities this costs about the same as the dense matrix; at
// fleet scale (N=10k objects with ~10 partners each) it replaces an 800 MB
// allocation with a few megabytes, and turns every contention scan from O(N)
// into O(degree).
type overlapCSR struct {
	n     int
	start []int32 // row i spans entries start[i]..start[i+1]
	idx   []int32 // partner object ids, ascending within each row
	val   []float64
	tval  []float64
}

// buildOverlapCSR extracts the sparse overlap structure from a validated
// workload set in O(nnz log nnz).
func buildOverlapCSR(set *rome.Set) *overlapCSR {
	n := set.Len()
	neigh := make([][]int32, n)
	for i := 0; i < n; i++ {
		set.ForEachOverlap(i, func(k int, v float64) {
			neigh[i] = append(neigh[i], int32(k))
			neigh[k] = append(neigh[k], int32(i))
		})
	}
	c := &overlapCSR{n: n, start: make([]int32, n+1)}
	var nnz int32
	for i := 0; i < n; i++ {
		row := neigh[i]
		sort.Slice(row, func(a, b int) bool { return row[a] < row[b] })
		// Dedupe in place: a pair appears twice when both directions are
		// non-zero.
		w := 0
		for r, k := range row {
			if r == 0 || k != row[r-1] {
				row[w] = k
				w++
			}
		}
		neigh[i] = row[:w]
		nnz += int32(w)
		c.start[i+1] = nnz
	}
	c.idx = make([]int32, nnz)
	c.val = make([]float64, nnz)
	c.tval = make([]float64, nnz)
	for i := 0; i < n; i++ {
		e := c.start[i]
		for _, k := range neigh[i] {
			c.idx[e] = k
			c.val[e] = set.Overlap(i, int(k))
			c.tval[e] = set.Overlap(int(k), i)
			e++
		}
	}
	return c
}

// row returns object i's partners with both directed overlap readings.
func (c *overlapCSR) row(i int) (idx []int32, val, tval []float64) {
	a, b := c.start[i], c.start[i+1]
	return c.idx[a:b], c.val[a:b], c.tval[a:b]
}

// degree returns the number of non-zero co-access partners of object i.
func (c *overlapCSR) degree(i int) int {
	return int(c.start[i+1] - c.start[i])
}

// nonzeros returns the total number of stored entries.
func (c *overlapCSR) nonzeros() int { return len(c.idx) }
