package layout

import (
	"math"
	"strings"
	"testing"

	"dblayout/internal/rome"
)

func TestAllOnOne(t *testing.T) {
	l := AllOnOne(3, 4, 2)
	if err := l.CheckIntegrity(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if l.At(i, 2) != 1 {
			t.Fatalf("object %d not on target 2", i)
		}
	}
	if !l.IsRegular() {
		t.Fatal("all-on-one should be regular")
	}
}

func TestLayoutString(t *testing.T) {
	l := New(1, 2)
	l.SetRow(0, []float64{0.25, 0.75})
	s := l.String()
	if !strings.Contains(s, "25.0%") || !strings.Contains(s, "75.0%") {
		t.Fatalf("unexpected rendering: %q", s)
	}
}

func TestSelfInterferenceRaisesCost(t *testing.T) {
	// Two otherwise-identical sequential workloads, one with stream
	// concurrency 8: the concurrent one must predict higher utilization
	// on an isolated target (its own streams interfere).
	mk := func(conc float64) *Instance {
		ws := []*rome.Workload{
			{Name: "A", ReadSize: 131072, ReadRate: 100, RunCount: 64, Concurrency: conc},
		}
		set, err := rome.NewSet(ws...)
		if err != nil {
			t.Fatal(err)
		}
		inst := &Instance{
			Objects:   []Object{{Name: "A", Size: 1 << 30}},
			Targets:   testTargets(1),
			Workloads: set,
		}
		if err := inst.Validate(); err != nil {
			t.Fatal(err)
		}
		return inst
	}
	solo := NewEvaluator(mk(1))
	concurrent := NewEvaluator(mk(8))
	l := AllOnOne(1, 1, 0)
	u1 := solo.MaxUtilization(l)
	u8 := concurrent.MaxUtilization(l)
	if u8 <= u1*1.5 {
		t.Fatalf("self-interference not reflected: conc=1 util %.4f, conc=8 util %.4f", u1, u8)
	}
}

func TestBreakdownNamesAndComposition(t *testing.T) {
	inst := testInstance(t, 2)
	ev := NewEvaluator(inst)
	l := SEE(4, 2)
	bd := ev.BreakdownAll(l)
	if len(bd) != 2 {
		t.Fatalf("breakdown for %d targets", len(bd))
	}
	for j, b := range bd {
		if b.Target != inst.Targets[j].Name {
			t.Errorf("breakdown target %q, want %q", b.Target, inst.Targets[j].Name)
		}
		var sum float64
		for _, v := range b.PerObject {
			sum += v
		}
		if math.Abs(sum-b.Utilization) > 1e-12 {
			t.Errorf("per-object composition %.6f != total %.6f", sum, b.Utilization)
		}
	}
}

func TestEvaluatorIdleObjectContributesNothing(t *testing.T) {
	ws := []*rome.Workload{
		{Name: "HOT", ReadSize: 8192, ReadRate: 100, RunCount: 1},
		{Name: "IDLE"},
	}
	set, err := rome.NewSet(ws...)
	if err != nil {
		t.Fatal(err)
	}
	inst := &Instance{
		Objects:   []Object{{Name: "HOT", Size: 1 << 30}, {Name: "IDLE", Size: 1 << 30}},
		Targets:   testTargets(2),
		Workloads: set,
	}
	ev := NewEvaluator(inst)
	l := New(2, 2)
	l.Set(0, 0, 1)
	l.Set(1, 0, 1)
	if mu := ev.ObjectUtilization(l, 1, 0); mu != 0 {
		t.Fatalf("idle object utilization %g", mu)
	}
	// The idle co-located object adds no contention either.
	solo := New(2, 2)
	solo.Set(0, 0, 1)
	solo.Set(1, 1, 1)
	if a, b := ev.TargetUtilization(l, 0), ev.TargetUtilization(solo, 0); math.Abs(a-b) > 1e-12 {
		t.Fatalf("idle object changed contention: %g vs %g", a, b)
	}
}

func TestObjectLoadsBitIdenticalToObjectLoad(t *testing.T) {
	inst := testInstance(t, 4)
	ev := NewEvaluator(inst)
	frac := New(4, 4)
	frac.SetRow(0, []float64{0.4, 0.3, 0.2, 0.1})
	frac.SetRow(1, []float64{0, 0.7, 0.3, 0})
	frac.SetRow(2, []float64{0.5, 0, 0, 0.5})
	frac.SetRow(3, []float64{1, 0, 0, 0})
	for name, l := range map[string]*Layout{
		"see":      SEE(4, 4),
		"allonone": AllOnOne(4, 4, 1),
		"frac":     frac,
	} {
		loads := ev.ObjectLoads(l)
		for i := 0; i < 4; i++ {
			if want := ev.ObjectLoad(l, i); loads[i] != want {
				t.Errorf("%s: ObjectLoads[%d] = %v, ObjectLoad = %v (not bit-identical)",
					name, i, loads[i], want)
			}
		}
	}
}

func TestInstanceStripeSizeOverride(t *testing.T) {
	inst := testInstance(t, 2)
	inst.StripeSize = 1 << 20
	ev := NewEvaluator(inst)
	// T1: runCount 64 x 128 KB = 8 MB run >> 1 MB stripe; quarter
	// assignment divides the run proportionally.
	if q := ev.runCountOn(0, 0.25); q != 16 {
		t.Fatalf("custom stripe Q = %g, want 16", q)
	}
}
