package layout

import (
	"fmt"
	"math"

	"dblayout/internal/rome"
)

// Evaluator predicts storage target utilizations for candidate layouts using
// the model structure of paper Fig. 6: the layout model (Fig. 7) transforms
// each object's workload into per-target workloads, the contention factor
// (Eq. 2) summarizes interference from co-located temporally-correlated
// workloads, and the per-target black-box cost model converts request rates
// into utilization (Eq. 1).
//
// An Evaluator is immutable after construction and safe for concurrent use
// with distinct Layout values.
type Evaluator struct {
	inst *Instance

	// Cached per-object workload scalars.
	readRate, writeRate []float64
	readSize, writeSize []float64
	meanSize            []float64
	runCount            []float64
	totalRate           []float64
	selfChi             []float64

	// ov is the sparse overlap matrix (CSR rows of non-zero co-access
	// pairs), built once and shared read-only with every
	// IncrementalEvaluator. See overlapCSR.
	ov *overlapCSR
}

// NewEvaluator prepares an evaluator for the instance. The instance must
// already be validated.
func NewEvaluator(inst *Instance) *Evaluator {
	n := inst.N()
	ev := &Evaluator{
		inst:      inst,
		readRate:  make([]float64, n),
		writeRate: make([]float64, n),
		readSize:  make([]float64, n),
		writeSize: make([]float64, n),
		meanSize:  make([]float64, n),
		runCount:  make([]float64, n),
		totalRate: make([]float64, n),
		selfChi:   make([]float64, n),
	}
	for i, w := range inst.Workloads.Workloads {
		ev.readRate[i] = w.ReadRate
		ev.writeRate[i] = w.WriteRate
		ev.readSize[i] = w.ReadSize
		ev.writeSize[i] = w.WriteSize
		ev.meanSize[i] = w.MeanSize()
		ev.runCount[i] = w.RunCount
		ev.totalRate[i] = w.TotalRate()
		// Self-interference extension to Eq. 2: a workload made of c
		// concurrent streams interferes with itself — per stream, the
		// other c-1 streams' requests are temporally-correlated
		// competitors on every target holding the object, regardless
		// of the layout.
		if c := w.Concurrency; c > 1 {
			ev.selfChi[i] = c - 1
		}
	}
	ev.ov = buildOverlapCSR(inst.Workloads)
	return ev
}

// Instance returns the instance the evaluator was built for.
func (ev *Evaluator) Instance() *Instance { return ev.inst }

// Workloads returns the instance's workload set.
func (ev *Evaluator) Workloads() *rome.Set { return ev.inst.Workloads }

// runCountOn computes Q_ij, the run count object i exhibits on a target
// holding fraction lij of it, per the striping layout model of Fig. 7:
//
//   - a run shorter than one stripe lands on a single target intact;
//   - a run spanning at least 1/lij stripes is divided so the target sees
//     its proportional, physically-contiguous share;
//   - in between, the target sees about one stripe's worth of requests.
func (ev *Evaluator) runCountOn(i int, lij float64) float64 {
	qi, bi := ev.runCount[i], ev.meanSize[i]
	if bi <= 0 || lij <= 0 {
		return 1
	}
	stripe := ev.inst.stripeSize()
	runBytes := qi * bi
	var q float64
	switch {
	case runBytes < stripe:
		q = qi
	case runBytes > stripe/lij:
		q = qi * lij
	default:
		q = stripe / bi
	}
	if q < 1 {
		q = 1
	}
	return q
}

// contention computes the contention factor chi_ij of Eq. 2 for object i on
// target j: the rate of temporally-correlated requests from other workloads
// on the same target, per request of object i's own per-target workload.
// rates[k] must hold lambda_kj = (read+write rate of k) * L[k][j].
//
// Only object i's co-access partners can contribute (every other k has
// Overlap(i, k) = 0), so the scan walks i's CSR row instead of all N rates.
// The row is ascending and carries exactly the non-zero entries the dense
// scan would have admitted past its o > 0 guard, so the summation visits
// the same terms in the same order and the result is bit-identical.
func (ev *Evaluator) contention(i int, rates []float64, ownRate float64) float64 {
	if ownRate <= 0 {
		return 0
	}
	var sum float64
	idx, val, _ := ev.ov.row(i)
	for e, k := range idx {
		if rk := rates[k]; rk > 0 {
			if o := val[e]; o > 0 {
				sum += rk * o
			}
		}
	}
	return sum/ownRate + ev.selfChi[i]
}

// targetRates fills rates[k] = total request rate of object k on target j.
func (ev *Evaluator) targetRates(l *Layout, j int, rates []float64) {
	for k := 0; k < l.N; k++ {
		rates[k] = ev.totalRate[k] * l.At(k, j)
	}
}

// objectUtil computes mu_ij (Eq. 1) given precomputed per-target rates.
func (ev *Evaluator) objectUtil(l *Layout, i, j int, rates []float64) float64 {
	lij := l.At(i, j)
	if lij <= Epsilon || ev.totalRate[i] <= 0 {
		return 0
	}
	model := ev.inst.Targets[j].Model
	q := ev.runCountOn(i, lij)
	chi := ev.contention(i, rates, rates[i])
	var mu float64
	if rr := ev.readRate[i] * lij; rr > 0 {
		mu += rr * ev.cost(j, model, false, ev.readSize[i], q, chi)
	}
	if wr := ev.writeRate[i] * lij; wr > 0 {
		mu += wr * ev.cost(j, model, true, ev.writeSize[i], q, chi)
	}
	return mu
}

// cost guards one black-box model evaluation: a NaN, infinite, or negative
// per-request cost is a model defect that would silently corrupt every
// utilization derived from it, so it raises a typed model-failure panic for
// the advisor's recovery layer (see AsModelFailure) instead of propagating
// garbage into the solver.
func (ev *Evaluator) cost(j int, model CostModel, write bool, size, runCount, chi float64) float64 {
	c := model.Cost(write, size, runCount, chi)
	if math.IsNaN(c) || math.IsInf(c, 0) || c < 0 {
		dir := "read"
		if write {
			dir = "write"
		}
		panic(&modelFailure{
			target: ev.inst.Targets[j].Name,
			detail: fmt.Sprintf("%s cost(size=%g, run=%g, chi=%g) = %g", dir, size, runCount, chi, c),
		})
	}
	return c
}

// TargetUtilization returns mu_j, the predicted utilization of target j
// under layout l: the sum over objects of mu_ij.
func (ev *Evaluator) TargetUtilization(l *Layout, j int) float64 {
	rates := make([]float64, l.N)
	return ev.targetUtilization(l, j, rates)
}

func (ev *Evaluator) targetUtilization(l *Layout, j int, rates []float64) float64 {
	ev.targetRates(l, j, rates)
	var mu float64
	for i := 0; i < l.N; i++ {
		mu += ev.objectUtil(l, i, j, rates)
	}
	return mu
}

// Utilizations returns mu_j for every target.
func (ev *Evaluator) Utilizations(l *Layout) []float64 {
	us := make([]float64, l.M)
	rates := make([]float64, l.N)
	for j := 0; j < l.M; j++ {
		us[j] = ev.targetUtilization(l, j, rates)
	}
	return us
}

// MaxUtilization returns the optimization objective of Definition 1:
// max_j mu_j.
func (ev *Evaluator) MaxUtilization(l *Layout) float64 {
	var max float64
	rates := make([]float64, l.N)
	for j := 0; j < l.M; j++ {
		if u := ev.targetUtilization(l, j, rates); u > max {
			max = u
		}
	}
	return max
}

// ObjectUtilization returns mu_ij for one object-target pair.
func (ev *Evaluator) ObjectUtilization(l *Layout, i, j int) float64 {
	rates := make([]float64, l.N)
	ev.targetRates(l, j, rates)
	return ev.objectUtil(l, i, j, rates)
}

// ObjectLoad returns sum_j mu_ij, the total storage system load imposed by
// object i — the ordering key of the regularization algorithm (Sec. 4.3).
func (ev *Evaluator) ObjectLoad(l *Layout, i int) float64 {
	var load float64
	rates := make([]float64, l.N)
	for j := 0; j < l.M; j++ {
		ev.targetRates(l, j, rates)
		load += ev.objectUtil(l, i, j, rates)
	}
	return load
}

// ObjectLoads returns ObjectLoad for every object in a single pass over the
// targets: each target's request rates are computed once and charged to all
// objects, so the whole vector costs what one ObjectLoad call does instead
// of N of them. Every object accumulates its per-target terms in the same
// ascending-j order as ObjectLoad, so the results are bit-identical to the
// per-object path.
func (ev *Evaluator) ObjectLoads(l *Layout) []float64 {
	loads := make([]float64, l.N)
	rates := make([]float64, l.N)
	for j := 0; j < l.M; j++ {
		ev.targetRates(l, j, rates)
		for i := 0; i < l.N; i++ {
			loads[i] += ev.objectUtil(l, i, j, rates)
		}
	}
	return loads
}

// Breakdown describes one target's predicted utilization and its per-object
// composition, used by the reporting code behind paper Fig. 13.
type Breakdown struct {
	Target      string
	Utilization float64
	PerObject   []float64
}

// BreakdownAll returns the utilization breakdown of every target.
func (ev *Evaluator) BreakdownAll(l *Layout) []Breakdown {
	out := make([]Breakdown, l.M)
	rates := make([]float64, l.N)
	for j := 0; j < l.M; j++ {
		ev.targetRates(l, j, rates)
		b := Breakdown{Target: ev.inst.Targets[j].Name, PerObject: make([]float64, l.N)}
		for i := 0; i < l.N; i++ {
			mu := ev.objectUtil(l, i, j, rates)
			b.PerObject[i] = mu
			b.Utilization += mu
		}
		out[j] = b
	}
	return out
}
