package layout

import "testing"

func TestConstraintsPermits(t *testing.T) {
	c := &Constraints{
		Allow: map[int][]int{0: {1, 2}},
		Deny:  map[int][]int{1: {0}},
	}
	if c.Permits(0, 0) {
		t.Error("allow-list violated")
	}
	if !c.Permits(0, 1) || !c.Permits(0, 2) {
		t.Error("allow-listed targets rejected")
	}
	if c.Permits(1, 0) {
		t.Error("deny-list violated")
	}
	if !c.Permits(1, 3) || !c.Permits(2, 0) {
		t.Error("unconstrained placements rejected")
	}
	var nilC *Constraints
	if !nilC.Permits(5, 5) {
		t.Error("nil constraints must permit everything")
	}
}

func TestConstraintsSeparatedFrom(t *testing.T) {
	c := &Constraints{Separate: [][2]int{{0, 1}, {2, 0}}}
	got := c.SeparatedFrom(0)
	if len(got) != 2 {
		t.Fatalf("SeparatedFrom(0) = %v", got)
	}
	if got := c.SeparatedFrom(3); got != nil {
		t.Fatalf("SeparatedFrom(3) = %v, want nil", got)
	}
	var nilC *Constraints
	if nilC.SeparatedFrom(0) != nil {
		t.Error("nil constraints separate nothing")
	}
}

func TestConstraintsValidate(t *testing.T) {
	cases := []struct {
		name string
		c    *Constraints
		ok   bool
	}{
		{"nil", nil, true},
		{"valid", &Constraints{Allow: map[int][]int{0: {1}}, Separate: [][2]int{{0, 1}}}, true},
		{"object-range", &Constraints{Allow: map[int][]int{9: {0}}}, false},
		{"target-range", &Constraints{Allow: map[int][]int{0: {9}}}, false},
		{"empty-allow", &Constraints{Allow: map[int][]int{0: {}}}, false},
		{"deny-all", &Constraints{Deny: map[int][]int{0: {0, 1, 2}}}, false},
		{"self-separate", &Constraints{Separate: [][2]int{{1, 1}}}, false},
		{"separate-range", &Constraints{Separate: [][2]int{{0, 7}}}, false},
		{"allow-deny-conflict", &Constraints{Allow: map[int][]int{0: {1}}, Deny: map[int][]int{0: {1}}}, false},
	}
	for _, tc := range cases {
		err := tc.c.Validate(3, 3)
		if tc.ok && err != nil {
			t.Errorf("%s: unexpected error %v", tc.name, err)
		}
		if !tc.ok && err == nil {
			t.Errorf("%s: invalid constraints accepted", tc.name)
		}
	}
}

func TestConstraintsCheck(t *testing.T) {
	c := &Constraints{
		Deny:     map[int][]int{0: {0}},
		Separate: [][2]int{{1, 2}},
	}
	l := New(3, 2)
	l.SetRow(0, []float64{0, 1})
	l.SetRow(1, []float64{1, 0})
	l.SetRow(2, []float64{0, 1})
	if err := c.Check(l); err != nil {
		t.Fatalf("valid layout rejected: %v", err)
	}
	l.SetRow(0, []float64{1, 0})
	if err := c.Check(l); err == nil {
		t.Error("deny violation accepted")
	}
	l.SetRow(0, []float64{0, 1})
	l.SetRow(2, []float64{0.5, 0.5})
	if err := c.Check(l); err == nil {
		t.Error("separation violation accepted")
	}
}

func TestInitialLayoutHonorsConstraints(t *testing.T) {
	inst := testInstance(t, 4)
	inst.Constraints = &Constraints{
		Allow:    map[int][]int{0: {2}}, // T1 pinned to target 2
		Deny:     map[int][]int{2: {0}}, // IX never on target 0
		Separate: [][2]int{{0, 1}},      // T1 and T2 apart
	}
	if err := inst.Validate(); err != nil {
		t.Fatal(err)
	}
	l, err := InitialLayout(inst)
	if err != nil {
		t.Fatal(err)
	}
	if err := inst.ValidateLayout(l); err != nil {
		t.Fatalf("initial layout violates constraints: %v", err)
	}
	if l.At(0, 2) != 1 {
		t.Errorf("pinned object not on target 2: %v", l.Row(0))
	}
}

func TestValidateLayoutChecksConstraints(t *testing.T) {
	inst := testInstance(t, 4)
	inst.Constraints = &Constraints{Deny: map[int][]int{0: {0}}}
	l := SEE(4, 4) // places object 0 on target 0
	if err := inst.ValidateLayout(l); err == nil {
		t.Fatal("constraint-violating layout accepted")
	}
}
