package layout

import (
	"errors"
	"strings"
	"testing"
)

// rotationFixture builds a 3-object / 3-target problem whose migration is a
// pure capacity rotation: every object fills its target entirely and the
// target layout shifts each object to the next target, so no move can run
// before another frees its destination.
func rotationFixture() (from, to *Layout, sizes, caps []int64) {
	const sz = 100
	sizes = []int64{sz, sz, sz}
	caps = []int64{sz, sz, sz}
	from = New(3, 3)
	to = New(3, 3)
	for i := 0; i < 3; i++ {
		from.Set(i, i, 1)
		to.Set(i, (i+1)%3, 1)
	}
	return from, to, sizes, caps
}

func TestCheckPlanOrderDetectsTransientOverflow(t *testing.T) {
	// Two targets, each full; swapping the residents is impossible in any
	// naive order because the first move's destination is occupied.
	sizes := []int64{100, 100}
	caps := []int64{100, 100}
	from := New(2, 2)
	from.Set(0, 0, 1)
	from.Set(1, 1, 1)
	to := New(2, 2)
	to.Set(0, 1, 1)
	to.Set(1, 0, 1)
	plan, err := MigrationPlan(from, to, sizes)
	if err != nil {
		t.Fatal(err)
	}
	err = CheckPlanOrder(from, plan, sizes, caps)
	var ov *PlanOverflowError
	if !errors.As(err, &ov) {
		t.Fatalf("CheckPlanOrder = %v, want *PlanOverflowError", err)
	}
	if ov.NeedBytes != 100 || ov.FreeBytes != 0 {
		t.Errorf("overflow detail need=%d free=%d, want 100/0", ov.NeedBytes, ov.FreeBytes)
	}
	if !strings.Contains(ov.Error(), "bytes free") {
		t.Errorf("unhelpful error: %v", ov)
	}
}

func TestCheckPlanOrderAcceptsSafeOrder(t *testing.T) {
	// Same swap but with one target double-sized: moving the resident of
	// the big target first is safe.
	sizes := []int64{100, 100}
	caps := []int64{200, 100}
	from := New(2, 2)
	from.Set(0, 0, 1)
	from.Set(1, 1, 1)
	to := New(2, 2)
	to.Set(0, 1, 1)
	to.Set(1, 0, 1)
	plan, err := MigrationPlan(from, to, sizes)
	if err != nil {
		t.Fatal(err)
	}
	ordered, err := OrderPlan(from, plan, sizes, caps)
	if err != nil {
		t.Fatalf("OrderPlan: %v", err)
	}
	if len(ordered) != len(plan) {
		t.Fatalf("ordered plan has %d moves, want %d", len(ordered), len(plan))
	}
	if err := CheckPlanOrder(from, ordered, sizes, caps); err != nil {
		t.Fatalf("ordered plan still overflows: %v", err)
	}
	// The safe order must move object 1 (into the roomy target 0) first.
	if ordered[0].Object != 1 || ordered[0].To != 0 {
		t.Errorf("first move %+v, want object 1 -> target 0", ordered[0])
	}
}

func TestOrderPlanDetectsCycle(t *testing.T) {
	from, to, sizes, caps := rotationFixture()
	plan, err := MigrationPlan(from, to, sizes)
	if err != nil {
		t.Fatal(err)
	}
	_, err = OrderPlan(from, plan, sizes, caps)
	var cyc *CycleError
	if !errors.As(err, &cyc) {
		t.Fatalf("OrderPlan = %v, want *CycleError", err)
	}
	if len(cyc.Moves) != 3 || len(cyc.Objects) != 3 {
		t.Fatalf("cycle %+v, want all 3 moves", cyc)
	}
	seen := map[int]bool{}
	for _, o := range cyc.Objects {
		seen[o] = true
	}
	for i := 0; i < 3; i++ {
		if !seen[i] {
			t.Errorf("cycle error does not name object %d: %v", i, cyc)
		}
	}
	if !strings.Contains(cyc.Error(), "capacity cycle") {
		t.Errorf("unhelpful cycle error: %v", cyc)
	}
}

func TestSafePlanReordersAndRejects(t *testing.T) {
	// Reorderable: rotation with one roomy target.
	from, to, sizes, caps := rotationFixture()
	caps[2] = 200
	plan, err := SafePlan(from, to, sizes, caps)
	if err != nil {
		t.Fatalf("SafePlan on reorderable rotation: %v", err)
	}
	if err := CheckPlanOrder(from, plan, sizes, caps); err != nil {
		t.Fatalf("SafePlan emitted unsafe order: %v", err)
	}

	// Deadlocked: the pure rotation must be rejected with a cycle error.
	from, to, sizes, caps = rotationFixture()
	_, err = SafePlan(from, to, sizes, caps)
	var cyc *CycleError
	if !errors.As(err, &cyc) {
		t.Fatalf("SafePlan on deadlocked rotation = %v, want *CycleError", err)
	}
}

func TestOrderPlanValidatesReferences(t *testing.T) {
	from := New(2, 2)
	from.Set(0, 0, 1)
	from.Set(1, 1, 1)
	sizes := []int64{10, 10}
	caps := []int64{100, 100}
	bad := []Move{{Object: 5, From: 0, To: 1, Fraction: 1, Bytes: 10}}
	if _, err := OrderPlan(from, bad, sizes, caps); err == nil {
		t.Error("OrderPlan accepted an out-of-range object")
	}
	if err := CheckPlanOrder(from, bad, sizes, caps); err == nil {
		t.Error("CheckPlanOrder accepted an out-of-range object")
	}
	loop := []Move{{Object: 0, From: 1, To: 1, Fraction: 1, Bytes: 10}}
	if err := CheckPlanOrder(from, loop, sizes, caps); err == nil {
		t.Error("CheckPlanOrder accepted a self-move")
	}
}
