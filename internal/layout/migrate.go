package layout

import (
	"fmt"
	"sort"
	"strings"
)

// Move is one step of a migration plan: relocate a fraction of an object
// from one target to another.
type Move struct {
	Object   int
	From, To int
	Fraction float64
	Bytes    int64
}

// MigrationPlan computes the data movements needed to convert layout `from`
// into layout `to`: for each object, per-target decreases are greedily
// matched with increases (largest first), which minimizes the number of
// moves per object. Layout recommendations are only useful if an
// administrator can act on them; the plan quantifies the cost of doing so.
func MigrationPlan(from, to *Layout, sizes []int64) ([]Move, error) {
	if from.N != to.N || from.M != to.M {
		return nil, fmt.Errorf("layout: migrating between %dx%d and %dx%d layouts", from.N, from.M, to.N, to.M)
	}
	if len(sizes) != from.N {
		return nil, fmt.Errorf("layout: %d sizes for %d objects", len(sizes), from.N)
	}
	var plan []Move
	for i := 0; i < from.N; i++ {
		type delta struct {
			target int
			amount float64
		}
		var dec, inc []delta
		for j := 0; j < from.M; j++ {
			d := to.At(i, j) - from.At(i, j)
			switch {
			case d > Epsilon:
				inc = append(inc, delta{j, d})
			case d < -Epsilon:
				dec = append(dec, delta{j, -d})
			}
		}
		sort.Slice(dec, func(a, b int) bool { return dec[a].amount > dec[b].amount })
		sort.Slice(inc, func(a, b int) bool { return inc[a].amount > inc[b].amount })

		di, ii := 0, 0
		for di < len(dec) && ii < len(inc) {
			amount := dec[di].amount
			if inc[ii].amount < amount {
				amount = inc[ii].amount
			}
			plan = append(plan, Move{
				Object:   i,
				From:     dec[di].target,
				To:       inc[ii].target,
				Fraction: amount,
				Bytes:    int64(amount * float64(sizes[i])),
			})
			dec[di].amount -= amount
			inc[ii].amount -= amount
			if dec[di].amount <= Epsilon {
				di++
			}
			if inc[ii].amount <= Epsilon {
				ii++
			}
		}
	}
	return plan, nil
}

// PlanBytes sums the data volume a migration plan moves.
func PlanBytes(plan []Move) int64 {
	var total int64
	for _, m := range plan {
		total += m.Bytes
	}
	return total
}

// FormatPlan renders a migration plan using the instance's object and
// target names.
func FormatPlan(inst *Instance, plan []Move) string {
	var sb strings.Builder
	for _, m := range plan {
		fmt.Fprintf(&sb, "move %5.1f%% of %-18s (%6.1f MB) from %s to %s\n",
			100*m.Fraction, inst.Objects[m.Object].Name,
			float64(m.Bytes)/(1<<20), inst.Targets[m.From].Name, inst.Targets[m.To].Name)
	}
	if len(plan) == 0 {
		sb.WriteString("no movement required\n")
	}
	return sb.String()
}
