package layout

import (
	"fmt"
	"sort"
	"strings"
)

// Move is one step of a migration plan: relocate a fraction of an object
// from one target to another.
type Move struct {
	Object   int
	From, To int
	Fraction float64
	Bytes    int64
}

// MigrationPlan computes the data movements needed to convert layout `from`
// into layout `to`: for each object, per-target decreases are greedily
// matched with increases (largest first), which minimizes the number of
// moves per object. Layout recommendations are only useful if an
// administrator can act on them; the plan quantifies the cost of doing so.
//
// The returned moves are in object order, which is NOT necessarily a safe
// execution order: under copy-then-commit semantics a move may transiently
// need destination space that a later move frees. Executors must order the
// plan with SafePlan or OrderPlan (which detect overflows and capacity
// deadlocks) rather than running it as returned.
func MigrationPlan(from, to *Layout, sizes []int64) ([]Move, error) {
	if from.N != to.N || from.M != to.M {
		return nil, fmt.Errorf("layout: migrating between %dx%d and %dx%d layouts", from.N, from.M, to.N, to.M)
	}
	if len(sizes) != from.N {
		return nil, fmt.Errorf("layout: %d sizes for %d objects", len(sizes), from.N)
	}
	var plan []Move
	for i := 0; i < from.N; i++ {
		type delta struct {
			target int
			amount float64
		}
		var dec, inc []delta
		for j := 0; j < from.M; j++ {
			d := to.At(i, j) - from.At(i, j)
			switch {
			case d > Epsilon:
				inc = append(inc, delta{j, d})
			case d < -Epsilon:
				dec = append(dec, delta{j, -d})
			}
		}
		sort.Slice(dec, func(a, b int) bool { return dec[a].amount > dec[b].amount })
		sort.Slice(inc, func(a, b int) bool { return inc[a].amount > inc[b].amount })

		di, ii := 0, 0
		for di < len(dec) && ii < len(inc) {
			amount := dec[di].amount
			if inc[ii].amount < amount {
				amount = inc[ii].amount
			}
			plan = append(plan, Move{
				Object:   i,
				From:     dec[di].target,
				To:       inc[ii].target,
				Fraction: amount,
				Bytes:    int64(amount * float64(sizes[i])),
			})
			dec[di].amount -= amount
			inc[ii].amount -= amount
			if dec[di].amount <= Epsilon {
				di++
			}
			if inc[ii].amount <= Epsilon {
				ii++
			}
		}
	}
	return plan, nil
}

// SafePlan computes the migration plan from `from` to `to` and returns it in
// an execution order that never transiently exceeds a target's capacity
// under copy-then-commit semantics. Plans whose naive order would overflow
// are reordered; plans deadlocked by a capacity cycle are rejected with a
// *CycleError naming the objects involved (break such cycles by staging
// through scratch space, see package migrate).
func SafePlan(from, to *Layout, sizes, capacities []int64) ([]Move, error) {
	plan, err := MigrationPlan(from, to, sizes)
	if err != nil {
		return nil, err
	}
	if err := CheckPlanOrder(from, plan, sizes, capacities); err == nil {
		return plan, nil
	}
	return OrderPlan(from, plan, sizes, capacities)
}

// byteSlack is the tolerance (in bytes) used when comparing occupancies
// derived from float fractions against integer capacities.
const byteSlack = 0.5

// PlanOverflowError reports that executing a migration plan in a given order
// would transiently exceed a target's capacity: the offending move's
// destination lacks room for the copy while the source still holds the data
// (migration is copy-then-commit, so both sides are occupied until the move
// commits). Callers reorder with OrderPlan or stage through scratch space.
type PlanOverflowError struct {
	Step      int  // index of the offending move in the plan
	Move      Move // the move that does not fit
	NeedBytes int64
	FreeBytes int64 // free bytes on Move.To when the move would execute
}

func (e *PlanOverflowError) Error() string {
	return fmt.Sprintf("layout: plan step %d moves %d bytes of object %d from target %d to target %d, but target %d has only %d bytes free at that point",
		e.Step, e.NeedBytes, e.Move.Object, e.Move.From, e.Move.To, e.Move.To, e.FreeBytes)
}

// CycleError reports a capacity deadlock in a migration plan: a set of moves
// each waiting for destination space that only another move in the set can
// free. No execution order completes such a plan without staging part of it
// through scratch space (see package migrate).
type CycleError struct {
	Objects []int  // objects of the deadlocked moves, in cycle order
	Targets []int  // targets whose capacity is contended, in cycle order
	Moves   []Move // the moves forming the cycle
}

func (e *CycleError) Error() string {
	return fmt.Sprintf("layout: migration deadlock: objects %v form a capacity cycle over targets %v; the plan needs scratch-space staging",
		e.Objects, e.Targets)
}

// Describe renders the cycle with the instance's object and target names.
func (e *CycleError) Describe(inst *Instance) string {
	var sb strings.Builder
	sb.WriteString("migration deadlock cycle:")
	for _, m := range e.Moves {
		fmt.Fprintf(&sb, " [%s: %s -> %s]",
			inst.Objects[m.Object].Name, inst.Targets[m.From].Name, inst.Targets[m.To].Name)
	}
	return sb.String()
}

// checkPlanRefs validates plan indices and slice lengths against the layout.
func checkPlanRefs(from *Layout, plan []Move, sizes, capacities []int64) error {
	if len(sizes) != from.N || len(capacities) != from.M {
		return fmt.Errorf("layout: got %d sizes and %d capacities for a %dx%d layout",
			len(sizes), len(capacities), from.N, from.M)
	}
	for s, m := range plan {
		if m.Object < 0 || m.Object >= from.N {
			return fmt.Errorf("layout: plan step %d references object %d outside [0,%d)", s, m.Object, from.N)
		}
		if m.From < 0 || m.From >= from.M || m.To < 0 || m.To >= from.M {
			return fmt.Errorf("layout: plan step %d references targets %d->%d outside [0,%d)", s, m.From, m.To, from.M)
		}
		if m.From == m.To || m.Bytes < 0 {
			return fmt.Errorf("layout: plan step %d is degenerate (targets %d->%d, %d bytes)", s, m.From, m.To, m.Bytes)
		}
	}
	return nil
}

// occupancies returns the byte occupancy of every target under the layout.
func occupancies(l *Layout, sizes []int64) []float64 {
	occ := make([]float64, l.M)
	for j := 0; j < l.M; j++ {
		occ[j] = l.TargetBytes(j, sizes)
	}
	return occ
}

// CheckPlanOrder verifies that executing the plan in the given order never
// transiently exceeds a target's capacity under copy-then-commit semantics:
// before each move, the destination must have room for the moved bytes on
// top of everything it currently holds (the source keeps its copy until the
// move commits). It returns a *PlanOverflowError naming the first violating
// move, or nil when the order is safe.
func CheckPlanOrder(from *Layout, plan []Move, sizes, capacities []int64) error {
	if err := checkPlanRefs(from, plan, sizes, capacities); err != nil {
		return err
	}
	occ := occupancies(from, sizes)
	for s, m := range plan {
		free := float64(capacities[m.To]) - occ[m.To]
		if float64(m.Bytes) > free+byteSlack {
			return &PlanOverflowError{Step: s, Move: m, NeedBytes: m.Bytes, FreeBytes: int64(free)}
		}
		occ[m.To] += float64(m.Bytes)
		occ[m.From] -= float64(m.Bytes)
	}
	return nil
}

// OrderPlan reorders a migration plan so that no move transiently exceeds
// its destination's capacity, greedily executing whichever pending move fits
// first. When no safe order exists it returns a *CycleError describing the
// capacity deadlock (breakable only by scratch-space staging), or a
// *PlanOverflowError when a move can never fit regardless of order.
func OrderPlan(from *Layout, plan []Move, sizes, capacities []int64) ([]Move, error) {
	if err := checkPlanRefs(from, plan, sizes, capacities); err != nil {
		return nil, err
	}
	occ := occupancies(from, sizes)
	pending := make([]int, len(plan))
	for i := range pending {
		pending[i] = i
	}
	out := make([]Move, 0, len(plan))
	for len(pending) > 0 {
		picked := -1
		for pi, idx := range pending {
			m := plan[idx]
			if float64(m.Bytes) <= float64(capacities[m.To])-occ[m.To]+byteSlack {
				picked = pi
				break
			}
		}
		if picked < 0 {
			if cyc := findPlanCycle(plan, pending); cyc != nil {
				return nil, cyc
			}
			m := plan[pending[0]]
			return nil, &PlanOverflowError{
				Step: pending[0], Move: m, NeedBytes: m.Bytes,
				FreeBytes: int64(float64(capacities[m.To]) - occ[m.To]),
			}
		}
		m := plan[pending[picked]]
		occ[m.To] += float64(m.Bytes)
		occ[m.From] -= float64(m.Bytes)
		out = append(out, m)
		pending = append(pending[:picked], pending[picked+1:]...)
	}
	return out, nil
}

// PlanCycle reports a capacity-deadlock cycle among the stalled moves
// (indices into plan), or nil when the stall is acyclic. It is used by
// executors (package migrate) that break cycles with scratch-space staging.
func PlanCycle(plan []Move, stalled []int) *CycleError {
	return findPlanCycle(plan, stalled)
}

// findPlanCycle looks for a dependency cycle among stalled moves: move m
// waits for space on m.To, which only stalled moves departing m.To can free.
// It returns a *CycleError for the first cycle found, or nil when the stall
// is acyclic (a plain overflow).
func findPlanCycle(plan []Move, pending []int) *CycleError {
	byFrom := map[int][]int{} // source target -> stalled move indices
	for _, idx := range pending {
		byFrom[plan[idx].From] = append(byFrom[plan[idx].From], idx)
	}
	const (
		white = 0
		grey  = 1
		black = 2
	)
	color := map[int]int{}
	var path []int
	var cycle []int
	var dfs func(idx int) bool
	dfs = func(idx int) bool {
		color[idx] = grey
		path = append(path, idx)
		for _, next := range byFrom[plan[idx].To] {
			switch color[next] {
			case white:
				if dfs(next) {
					return true
				}
			case grey:
				// Unwind the path back to the first occurrence of next.
				start := 0
				for i, p := range path {
					if p == next {
						start = i
						break
					}
				}
				cycle = append([]int(nil), path[start:]...)
				return true
			}
		}
		path = path[:len(path)-1]
		color[idx] = black
		return false
	}
	for _, idx := range pending {
		if color[idx] == white && dfs(idx) {
			break
		}
	}
	if cycle == nil {
		return nil
	}
	e := &CycleError{}
	for _, idx := range cycle {
		m := plan[idx]
		e.Moves = append(e.Moves, m)
		e.Objects = append(e.Objects, m.Object)
		e.Targets = append(e.Targets, m.To)
	}
	return e
}

// PlanBytes sums the data volume a migration plan moves.
func PlanBytes(plan []Move) int64 {
	var total int64
	for _, m := range plan {
		total += m.Bytes
	}
	return total
}

// FormatPlan renders a migration plan using the instance's object and
// target names.
func FormatPlan(inst *Instance, plan []Move) string {
	var sb strings.Builder
	for _, m := range plan {
		fmt.Fprintf(&sb, "move %5.1f%% of %-18s (%6.1f MB) from %s to %s\n",
			100*m.Fraction, inst.Objects[m.Object].Name,
			float64(m.Bytes)/(1<<20), inst.Targets[m.From].Name, inst.Targets[m.To].Name)
	}
	if len(plan) == 0 {
		sb.WriteString("no movement required\n")
	}
	return sb.String()
}
