package nlp

import (
	"context"
	"math"
	"math/rand"
	"time"

	"dblayout/internal/layout"
)

// ProjectedGradient minimizes the maximum target utilization by
// finite-difference gradient descent on a softmax-smoothed objective, with
// Euclidean projection of every row onto the probability simplex after each
// step and a capacity-repair pass. It evaluates O(N*M) target utilizations
// per gradient, so it is intended for small and mid-size instances and as a
// cross-check on TransferSearch.
//
// The base descent is fully deterministic. Options.Restarts re-descends from
// that many randomly perturbed copies of the initial layout (each from its
// own seed stream, fanned across Options.Workers goroutines) and keeps the
// best layout, so the result does not depend on the worker count.
//
// The descents honour ctx and Options.Budget: each checks for cancellation
// or budget exhaustion between gradient iterations and stops with the best
// layout so far, classifying the reason in Result.Stop. A nil ctx is treated
// as context.Background().
func ProjectedGradient(ctx context.Context, ev Evaluator, inst *layout.Instance, init *layout.Layout, opt Options) Result {
	opt = opt.withDefaults()
	start := time.Now()
	deadline := budgetDeadline(opt.Budget)
	lim := newLimiterAt(ctx, deadline)

	l := init.Clone()
	utils := ev.Utilizations(l)
	_, cur := maxOf(utils)
	tk := newTracker("projected-gradient", opt.Trace, cur)
	res := Result{Workers: opt.workers()}

	best, bestObj, iters, evals := gradientDescend(ev, inst, l, utils, cur, opt, tk, lim, 0)
	res.Iters = iters
	res.Evals = evals + l.M
	res.Stop = lim.stopped

	var outs []restartOutcome
	if lim.stopped == nil {
		outs = runRestarts(ctx, deadline, opt, func(r int, rlim *limiter) restartOutcome {
			rng := rand.New(rand.NewSource(SubSeed(opt.Seed, StreamProjGrad, int64(r))))
			rs := newTransferState(ev, inst, init.Clone())
			rs.perturb(rng, opt)
			_, rcur := maxOf(rs.utils)
			rtk := newRestartTracker("projected-gradient", rcur, opt.Trace != nil)
			rutils := append([]float64(nil), rs.utils...)
			lay, obj, it, ev2 := gradientDescend(ev, inst, rs.l, rutils, rcur, opt, rtk, rlim, r)
			return restartOutcome{
				layout: lay, obj: obj,
				iters: it, evals: ev2 + rs.evals,
				tk: rtk, stop: rlim.stopped,
			}
		})
	}
	best, bestObj = mergeOutcomes(&res, tk, outs, best, bestObj, lim.stopped)

	res.Layout = best
	res.Objective = bestObj
	res.Elapsed = time.Since(start)
	tk.finish(&res)
	return res
}

// gradientDescend runs the projected-gradient descent from l (whose current
// utilizations and max the caller supplies) until convergence, the iteration
// bound, or a limiter stop. It owns l and returns the final layout, its
// objective, and the iteration/evaluation effort spent.
//
// When the evaluator vends an incremental kernel, every finite-difference
// probe is an O(active objects) delta-score instead of a full O(N) target
// evaluation; the kernel is rebuilt whenever the line search accepts a new
// layout (one rebuild per accepted step versus N*M probes per gradient).
func gradientDescend(ev Evaluator, inst *layout.Instance, l *layout.Layout, utils []float64, cur float64, opt Options, tk *tracker, lim *limiter, restart int) (*layout.Layout, float64, int, int) {
	sizes := inst.Sizes()
	caps := inst.Capacities()
	step := 0.25
	const h = 1e-4
	iters, evals := 0, 0

	src, _ := ev.(IncrementalSource)
	var inc *layout.IncrementalEvaluator
	if src != nil {
		inc = src.NewIncremental(l)
		// Align the probe baseline with the kernel's summation order so
		// finite differences subtract like from like.
		utils = inc.Utilizations(utils[:0])
	}

	for iter := 0; iter < opt.MaxIters; iter++ {
		if lim.stop() != nil {
			break
		}
		// Softmax weights sharpen around the most utilized targets.
		beta := 25.0
		if cur > 0 {
			beta /= cur
		}
		var wsum float64
		w := make([]float64, l.M)
		_, umax := maxOf(utils)
		for j, u := range utils {
			w[j] = math.Exp(beta * (u - umax))
			wsum += w[j]
		}
		for j := range w {
			w[j] /= wsum
		}

		// Finite-difference gradient: bumping L[i][j] changes only
		// target j's utilization.
		grad := make([]float64, l.N*l.M)
		for j := 0; j < l.M; j++ {
			if lim.stop() != nil {
				break // abandon this gradient; the iteration check exits
			}
			if w[j] < 1e-6 {
				continue // negligible contribution to the softmax
			}
			for i := 0; i < l.N; i++ {
				old := l.At(i, j)
				var up float64
				if inc != nil {
					up = inc.ScoreObjectFrac(j, i, old+h)
				} else {
					l.Set(i, j, old+h)
					up = ev.TargetUtilization(l, j)
					l.Set(i, j, old)
				}
				evals++
				grad[i*l.M+j] = w[j] * (up - utils[j]) / h
			}
		}

		improved := false
		for try := 0; try < 8; try++ {
			if lim.stop() != nil {
				break // abandon the line search; the iteration check exits
			}
			cand := l.Clone()
			for i := 0; i < cand.N; i++ {
				row := cand.Row(i)
				for j := 0; j < cand.M; j++ {
					row[j] -= step * grad[i*cand.M+j]
				}
				ProjectSimplex(row)
				cand.SetRow(i, row)
			}
			if !repairCapacity(cand, sizes, caps) {
				step /= 2
				continue
			}
			cu := ev.Utilizations(cand)
			evals += cand.M
			if _, cv := maxOf(cu); cv < cur-1e-12 {
				l = cand
				utils = cu
				if src != nil {
					inc = src.NewIncremental(l)
					utils = inc.Utilizations(utils[:0])
				}
				if cur-cv < opt.Tolerance*cur {
					cur = cv
					iter = opt.MaxIters // converged
				} else {
					cur = cv
				}
				improved = true
				step *= 1.2
				break
			}
			step /= 2
		}
		iters++
		tk.note(restart, cur, improved, 0, evals)
		if !improved || step < 1e-6 {
			break
		}
	}
	return l, cur, iters, evals
}

// repairCapacity rescales assignments so no target is over capacity,
// redistributing the displaced fractions to targets with free space. It
// returns false if no feasible redistribution was found.
func repairCapacity(l *layout.Layout, sizes, caps []int64) bool {
	for pass := 0; pass < 2*l.M; pass++ {
		worst, worstRatio := -1, 1.0
		bytes := make([]float64, l.M)
		for j := 0; j < l.M; j++ {
			bytes[j] = l.TargetBytes(j, sizes)
			if r := bytes[j] / float64(caps[j]); r > worstRatio*(1+1e-12) {
				worst, worstRatio = j, r
			}
		}
		if worst < 0 {
			return true
		}
		scale := 1 / worstRatio
		for i := 0; i < l.N; i++ {
			v := l.At(i, worst)
			if v <= layout.Epsilon {
				continue
			}
			removed := v * (1 - scale)
			l.Set(i, worst, v*scale)
			// Redistribute to the target with the most free bytes.
			best, bestFree := -1, 0.0
			for j := 0; j < l.M; j++ {
				if j == worst {
					continue
				}
				free := float64(caps[j]) - l.TargetBytes(j, sizes)
				if free > bestFree {
					best, bestFree = j, free
				}
			}
			if best < 0 || bestFree < removed*float64(sizes[i]) {
				return false
			}
			l.Set(i, best, l.At(i, best)+removed)
		}
	}
	// Verify.
	for j := 0; j < l.M; j++ {
		if l.TargetBytes(j, sizes) > float64(caps[j])*(1+1e-9) {
			return false
		}
	}
	return true
}
