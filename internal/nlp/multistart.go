package nlp

import (
	"context"
	"errors"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"dblayout/internal/layout"
)

// This file implements the parallel multi-start machinery shared by the
// three solvers. The contract, documented on Options.Workers and in
// DESIGN.md, is that the chosen layout is bit-identical for a given
// (Seed, Restarts) at any worker count:
//
//   - restart r draws every random decision from its own generator, seeded
//     SubSeed(Seed, Stream<solver>, r), so no stream depends on scheduling;
//   - every restart starts from a layout fully determined by the serial
//     first descent (never from another restart's output);
//   - outcomes are merged in restart-index order, and ties on the objective
//     are broken toward the lower restart index.
//
// Parallelism therefore changes wall-clock time only. The one exception is
// a Budget or cancellation cutting the search short: which restarts complete
// before the deadline depends on the scheduler, so truncated solves keep
// only the weaker guarantee that the result is the best of the restarts
// that ran.

// restartOutcome is the result of one restart's independent search.
type restartOutcome struct {
	restart int
	layout  *layout.Layout
	obj     float64
	iters   int
	evals   int
	tk      *tracker
	stop    error
}

// workers resolves Options.Workers: non-positive selects
// min(Restarts+1, GOMAXPROCS), and the pool is never wider than the number
// of restart tasks.
func (o Options) workers() int {
	w := o.Workers
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
		if r := o.Restarts + 1; r < w {
			w = r
		}
	}
	if w > o.Restarts {
		w = o.Restarts
	}
	if w < 1 {
		w = 1
	}
	return w
}

// runRestarts fans restarts 1..opt.Restarts over a worker pool and returns
// their outcomes sorted by restart index. Each worker pulls the next restart
// index from a shared counter, so restart identities (and with them the
// per-restart seed streams) never depend on which worker runs them. Once any
// restart observes a stop (budget or cancellation), no further restarts are
// started; in-flight ones stop at their own limiter's next poll.
//
// A panic on a worker goroutine (a cost model misbehaving mid-restart) is
// captured and re-raised on the calling goroutine after the pool drains, so
// callers' recover-based classification (core.safeSolve) keeps working.
func runRestarts(ctx context.Context, deadline time.Time, opt Options, one func(r int, lim *limiter) restartOutcome) []restartOutcome {
	total := opt.Restarts
	if total <= 0 {
		return nil
	}
	workers := opt.workers()

	var (
		next     atomic.Int64
		stopped  atomic.Bool
		mu       sync.Mutex
		outs     []restartOutcome
		panicked any
		wg       sync.WaitGroup
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				if stopped.Load() {
					return
				}
				r := int(next.Add(1))
				if r > total {
					return
				}
				out, p := runOne(one, r, newLimiterAt(ctx, deadline))
				mu.Lock()
				if p != nil {
					if panicked == nil {
						panicked = p
					}
					stopped.Store(true)
					mu.Unlock()
					return
				}
				outs = append(outs, out)
				mu.Unlock()
				if out.stop != nil {
					stopped.Store(true)
				}
			}
		}()
	}
	wg.Wait()
	if panicked != nil {
		panic(panicked)
	}
	sort.Slice(outs, func(i, j int) bool { return outs[i].restart < outs[j].restart })
	return outs
}

// runOne executes one restart, converting a panic into a value so the worker
// loop can shut the pool down cleanly before re-raising it.
func runOne(one func(r int, lim *limiter) restartOutcome, r int, lim *limiter) (out restartOutcome, p any) {
	defer func() {
		if rec := recover(); rec != nil {
			p = rec
		}
	}()
	out = one(r, lim)
	out.restart = r
	return out, nil
}

// mergeOutcomes folds restart outcomes (already sorted by restart index)
// into the main tracker and result: trace/trajectory merging, effort
// accounting, deterministic best selection (strictly lower objective wins,
// so ties keep the earliest restart), and stop classification.
func mergeOutcomes(res *Result, tk *tracker, outs []restartOutcome, best *layout.Layout, bestObj float64, firstStop error) (*layout.Layout, float64) {
	tk.evals = res.Evals // restart evaluation counts continue after phase 0's
	stops := []error{firstStop}
	for _, out := range outs {
		tk.merge(out.tk, out.evals)
		res.Evals += out.evals
		res.Restarts++
		stops = append(stops, out.stop)
		if out.obj < bestObj {
			bestObj = out.obj
			best = out.layout
		}
	}
	res.Iters = tk.iter
	res.Stop = combineStop(stops)
	return best, bestObj
}

// combineStop merges the stop reasons of concurrent workers into one
// classification: a context error dominates (the caller asked the whole
// solve to stop), then budget exhaustion; nil means every consulted worker
// ran to convergence or iteration exhaustion.
func combineStop(stops []error) error {
	var budget error
	for _, s := range stops {
		if s == nil {
			continue
		}
		if errors.Is(s, context.Canceled) || errors.Is(s, context.DeadlineExceeded) {
			return s
		}
		budget = s
	}
	return budget
}
