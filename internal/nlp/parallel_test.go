package nlp

import (
	"context"
	"errors"
	"reflect"
	"testing"
	"time"

	"dblayout/internal/layout"
	"dblayout/internal/layouttest"
)

// sameLayout compares two layouts for bit-exact equality.
func sameLayout(a, b *layout.Layout) bool {
	if a.N != b.N || a.M != b.M {
		return false
	}
	for i := 0; i < a.N; i++ {
		for j := 0; j < a.M; j++ {
			if a.At(i, j) != b.At(i, j) {
				return false
			}
		}
	}
	return true
}

// TestSolversDeterministicAcrossWorkers is the determinism contract of
// Options.Workers: the chosen layout, the effort counters, and the full
// delivered trace stream are bit-identical whether the restarts run serially
// or fanned across eight goroutines.
func TestSolversDeterministicAcrossWorkers(t *testing.T) {
	inst := layouttest.Instance(4)
	ev := layout.NewEvaluator(inst)
	init, err := layout.InitialLayout(inst)
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range solverCases() {
		run := func(workers int) (Result, []TraceEvent) {
			var events []TraceEvent
			opt := Options{Seed: 7, Restarts: 6, Workers: workers,
				Trace: func(e TraceEvent) { events = append(events, e) }}
			return c.solve(context.Background(), ev, inst, init, opt), events
		}
		serial, serialEvents := run(1)
		wide, wideEvents := run(8)

		if !sameLayout(serial.Layout, wide.Layout) {
			t.Errorf("%s: layouts differ between workers=1 and workers=8", c.name)
		}
		if serial.Objective != wide.Objective {
			t.Errorf("%s: objective %v (serial) != %v (parallel)", c.name, serial.Objective, wide.Objective)
		}
		if serial.Iters != wide.Iters || serial.Evals != wide.Evals || serial.Restarts != wide.Restarts {
			t.Errorf("%s: effort differs: serial iters=%d evals=%d restarts=%d, parallel iters=%d evals=%d restarts=%d",
				c.name, serial.Iters, serial.Evals, serial.Restarts, wide.Iters, wide.Evals, wide.Restarts)
		}
		if !reflect.DeepEqual(serialEvents, wideEvents) {
			t.Errorf("%s: trace streams differ between worker counts (%d vs %d events)",
				c.name, len(serialEvents), len(wideEvents))
		}
		checkTrace(t, wideEvents)
		if serial.Workers != 1 {
			t.Errorf("%s: Result.Workers = %d for a serial solve", c.name, serial.Workers)
		}
		if wide.Workers < 2 && testing.Short() == false {
			// min(Restarts+1, GOMAXPROCS) clamp: on a single-CPU machine
			// the pool legitimately resolves to one worker.
			t.Logf("%s: parallel solve resolved to %d workers (single-CPU machine?)", c.name, wide.Workers)
		}
	}
}

// TestSolversPerformRestarts is the regression for the silently-ignored
// Restarts option: with Restarts=5, every solver must actually perform five
// restart rounds, visible both in Result.Restarts and as distinct restart
// tags in the trace stream.
func TestSolversPerformRestarts(t *testing.T) {
	inst := layouttest.Instance(4)
	ev := layout.NewEvaluator(inst)
	init, err := layout.InitialLayout(inst)
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range solverCases() {
		rounds := map[int]bool{}
		opt := Options{Seed: 3, Restarts: 5,
			Trace: func(e TraceEvent) { rounds[e.Restart] = true }}
		res := c.solve(context.Background(), ev, inst, init, opt)
		if res.Restarts != 5 {
			t.Errorf("%s: Result.Restarts = %d, want 5", c.name, res.Restarts)
		}
		for r := range rounds {
			if r < 0 || r > 5 {
				t.Errorf("%s: trace event tagged restart %d, outside [0, 5]", c.name, r)
			}
		}
		if len(rounds) < 2 {
			t.Errorf("%s: trace shows no restart rounds beyond the first descent: %v", c.name, rounds)
		}
		// The descent solvers may converge a perturbed restart in zero
		// iterations (no events for that round); annealing chains always
		// run their full schedule, so every round must appear.
		if c.name == "anneal" {
			for r := 1; r <= 5; r++ {
				if !rounds[r] {
					t.Errorf("anneal: no trace events tagged restart %d; rounds seen: %v", r, rounds)
				}
			}
		}
	}
}

// TestParallelCancelPrompt cancels a wide parallel solve mid-run and
// requires every worker to stop promptly, hand back a valid best-so-far
// layout, and classify the stop as a cancellation. Run under -race this also
// exercises the worker pool's merge path for data races.
func TestParallelCancelPrompt(t *testing.T) {
	inst := layouttest.Replicated(2, 8)
	ev := layout.NewEvaluator(inst)
	init, err := layout.InitialLayout(inst)
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range solverCases() {
		var sev Evaluator = ev
		if c.slow {
			sev = slowEval{inner: ev, d: 100 * time.Microsecond}
		}
		ok := false
		var last time.Duration
		for attempt := 0; attempt < 3 && !ok; attempt++ {
			ctx, cancel := context.WithCancel(context.Background())
			opt := endless(1)
			opt.Workers = 8
			done := make(chan Result, 1)
			go func() { done <- c.solve(ctx, sev, inst, init, opt) }()
			time.Sleep(4 * checkInterval) // let the workers get going
			cancelled := time.Now()
			cancel()
			res := <-done
			last = time.Since(cancelled)
			if !errors.Is(res.Stop, context.Canceled) {
				t.Fatalf("%s: Stop = %v, want context.Canceled", c.name, res.Stop)
			}
			if err := inst.ValidateLayout(res.Layout); err != nil {
				t.Fatalf("%s: best-so-far layout invalid: %v", c.name, err)
			}
			ok = last < 4*checkInterval
		}
		if !ok {
			t.Errorf("%s: parallel cancellation took %v, want < %v", c.name, last, 4*checkInterval)
		}
	}
}

// TestSubSeedStreams pins the independence properties the seed registry is
// for: same path same stream, any differing element a different stream.
func TestSubSeedStreams(t *testing.T) {
	if SubSeed(1, StreamTransfer, 0) != SubSeed(1, StreamTransfer, 0) {
		t.Fatal("SubSeed is not deterministic")
	}
	seen := map[int64][]int64{}
	for base := int64(0); base < 3; base++ {
		for stream := StreamTransfer; stream <= StreamRepair; stream++ {
			for r := int64(0); r < 4; r++ {
				s := SubSeed(base, stream, r)
				if prev, dup := seen[s]; dup {
					t.Fatalf("stream collision: (%d,%d,%d) and %v both derive %d",
						base, stream, r, prev, s)
				}
				seen[s] = []int64{base, stream, r}
			}
		}
	}
	// Path structure matters: (a,b) must not collide with (b,a) or (a+b).
	if SubSeed(1, 2, 3) == SubSeed(1, 3, 2) || SubSeed(1, 2, 3) == SubSeed(1, 5) {
		t.Fatal("SubSeed collapses structurally different paths")
	}
}
