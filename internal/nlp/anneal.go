package nlp

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"time"

	"dblayout/internal/layout"
)

// AnnealOptions extends Options with the annealing schedule.
type AnnealOptions struct {
	Options
	// StartTemp is the initial temperature as a fraction of the initial
	// objective. Zero selects the default (0.10); NaN or negative values
	// are rejected by Anneal.
	StartTemp float64
	// Cooling is the geometric cooling factor per iteration. Zero selects
	// the default (0.999); values that are NaN, negative, or >= 1 (a
	// schedule that never cools) are rejected by Anneal.
	Cooling float64
}

// withDefaults fills zero fields with the defaults and rejects out-of-range
// schedules instead of silently clamping them: a NaN or negative temperature
// and a cooling factor outside (0, 1) are configuration bugs the caller
// should hear about, not values to be quietly repaired.
func (o AnnealOptions) withDefaults() (AnnealOptions, error) {
	o.Options = o.Options.withDefaults()
	switch {
	case math.IsNaN(o.StartTemp) || o.StartTemp < 0:
		return o, fmt.Errorf("nlp: anneal StartTemp %g out of range [0, inf): 0 selects the default", o.StartTemp)
	case o.StartTemp == 0:
		o.StartTemp = 0.10
	}
	switch {
	case math.IsNaN(o.Cooling) || o.Cooling < 0 || o.Cooling >= 1:
		return o, fmt.Errorf("nlp: anneal Cooling %g out of range [0, 1): 0 selects the default", o.Cooling)
	case o.Cooling == 0:
		o.Cooling = 0.999
	}
	return o, nil
}

// Anneal runs simulated annealing over random transfer moves. It explores
// more aggressively than TransferSearch at the cost of more evaluations, and
// exists mainly for the ablation study comparing solver strategies (the
// related-work Rubio et al. system used simulated annealing for a similar
// placement problem).
//
// Options.Restarts adds that many further full annealing chains, each from a
// randomly perturbed copy of the initial layout with a fresh cooling
// schedule, fanned across Options.Workers goroutines; the best layout over
// all chains wins. Each chain draws from its own seed stream, so the run is
// reproducible from Options.Seed alone at any worker count (Seed 0 is the
// deterministic default seed; the global math/rand state is never
// consulted). An error is returned for out-of-range annealing schedules; see
// AnnealOptions.
//
// The annealing loops honour ctx and Options.Budget, polling every few dozen
// moves (annealing moves are two evaluations each, so per-move checks would
// dominate); on cancellation or budget exhaustion the solve stops and
// returns the best layout so far with Result.Stop set. A nil ctx is treated
// as context.Background().
func Anneal(ctx context.Context, ev Evaluator, inst *layout.Instance, init *layout.Layout, opt AnnealOptions) (Result, error) {
	opt, err := opt.withDefaults()
	if err != nil {
		return Result{}, err
	}
	start := time.Now()
	deadline := budgetDeadline(opt.Budget)
	lim := newLimiterAt(ctx, deadline).every(64)

	s := newTransferState(ev, inst, init.Clone())
	tk := newTracker("anneal", opt.Trace, s.objective())
	rng := rand.New(rand.NewSource(SubSeed(opt.Seed, StreamAnneal, 0)))
	res := Result{Workers: opt.workers()}
	best, bestObj := annealChain(s, rng, opt, tk, lim, 0, &res)
	res.Evals = s.evals
	res.Stop = lim.stopped

	var outs []restartOutcome
	if lim.stopped == nil {
		outs = runRestarts(ctx, deadline, opt.Options, func(r int, rlim *limiter) restartOutcome {
			rlim.every(64)
			rng := rand.New(rand.NewSource(SubSeed(opt.Seed, StreamAnneal, int64(r))))
			rs := newTransferState(ev, inst, init.Clone())
			rs.perturb(rng, opt.Options)
			rtk := newRestartTracker("anneal", rs.objective(), opt.Trace != nil)
			var rr Result
			bl, bo := annealChain(rs, rng, opt, rtk, rlim, r, &rr)
			return restartOutcome{
				layout: bl, obj: bo,
				iters: rr.Iters, evals: rs.evals,
				tk: rtk, stop: rlim.stopped,
			}
		})
	}
	best, bestObj = mergeOutcomes(&res, tk, outs, best, bestObj, lim.stopped)

	res.Layout = best
	res.Objective = bestObj
	res.Elapsed = time.Since(start)
	tk.finish(&res)
	return res, nil
}

// annealChain runs one full annealing schedule on s, recording iterations on
// tk (tagged with the restart index) and effort on res. It returns the best
// layout the chain visited and its objective.
func annealChain(s *transferState, rng *rand.Rand, opt AnnealOptions, tk *tracker, lim *limiter, restart int, res *Result) (*layout.Layout, float64) {
	cur := s.objective()
	best := s.l.Clone()
	bestObj := cur
	temp := opt.StartTemp * cur

	movable := opt.movableSet(s.l.N)
	for iter := 0; iter < opt.MaxIters; iter++ {
		if lim.stop() != nil {
			break
		}
		m, ok := s.randomMove(rng, movable)
		if !ok {
			continue
		}
		obj, _ := s.tryMove(m)
		res.Iters++
		delta := obj - cur
		accepted := delta <= 0 || (temp > 0 && rng.Float64() < math.Exp(-delta/temp))
		if accepted {
			s.apply(m)
			cur = obj
			if cur < bestObj {
				bestObj = cur
				best = s.l.Clone()
			}
		}
		tk.note(restart, cur, accepted, temp, s.evals)
		temp *= opt.Cooling
	}
	return best, bestObj
}

// randomMove proposes a feasible random transfer of part of a random
// object's assignment between two targets.
func (s *transferState) randomMove(rng *rand.Rand, movable func(int) bool) (move, bool) {
	for attempt := 0; attempt < 16; attempt++ {
		i := rng.Intn(s.l.N)
		if !movable(i) {
			continue
		}
		ts := s.l.Targets(i)
		if len(ts) == 0 {
			continue
		}
		from := ts[rng.Intn(len(ts))]
		to := rng.Intn(s.l.M)
		if to == from {
			continue
		}
		frac := []float64{1, 0.5, 0.25}[rng.Intn(3)]
		delta := s.l.At(i, from) * frac
		if s.l.At(i, from)-delta < 1e-3 {
			delta = s.l.At(i, from)
		}
		if delta <= layout.Epsilon || !s.fits(i, to, delta) {
			continue
		}
		return move{obj: i, from: from, to: to, delta: delta}, true
	}
	return move{}, false
}
