package nlp

import (
	"math"
	"math/rand"

	"dblayout/internal/layout"
)

// AnnealOptions extends Options with the annealing schedule.
type AnnealOptions struct {
	Options
	// StartTemp is the initial temperature as a fraction of the initial
	// objective (default 0.10).
	StartTemp float64
	// Cooling is the geometric cooling factor per iteration (default
	// 0.999).
	Cooling float64
}

func (o AnnealOptions) withDefaults() AnnealOptions {
	o.Options = o.Options.withDefaults()
	if o.StartTemp <= 0 {
		o.StartTemp = 0.10
	}
	if o.Cooling <= 0 || o.Cooling >= 1 {
		o.Cooling = 0.999
	}
	return o
}

// Anneal runs simulated annealing over random transfer moves. It explores
// more aggressively than TransferSearch at the cost of more evaluations, and
// exists mainly for the ablation study comparing solver strategies (the
// related-work Rubio et al. system used simulated annealing for a similar
// placement problem).
func Anneal(ev Evaluator, inst *layout.Instance, init *layout.Layout, opt AnnealOptions) Result {
	opt = opt.withDefaults()
	rng := rand.New(rand.NewSource(opt.Seed + 2))

	s := newTransferState(ev, inst, init.Clone())
	res := Result{}
	cur := s.objective()
	best := s.l.Clone()
	bestObj := cur
	temp := opt.StartTemp * cur

	movable := opt.movableSet(s.l.N)
	for iter := 0; iter < opt.MaxIters; iter++ {
		m, ok := s.randomMove(rng, movable)
		if !ok {
			continue
		}
		obj, _ := s.tryMove(m)
		res.Iters++
		delta := obj - cur
		if delta <= 0 || (temp > 0 && rng.Float64() < math.Exp(-delta/temp)) {
			s.apply(m)
			cur = obj
			if cur < bestObj {
				bestObj = cur
				best = s.l.Clone()
			}
		}
		temp *= opt.Cooling
	}

	res.Layout = best
	res.Objective = bestObj
	res.Evals = s.evals
	return res
}

// randomMove proposes a feasible random transfer of part of a random
// object's assignment between two targets.
func (s *transferState) randomMove(rng *rand.Rand, movable func(int) bool) (move, bool) {
	for attempt := 0; attempt < 16; attempt++ {
		i := rng.Intn(s.l.N)
		if !movable(i) {
			continue
		}
		ts := s.l.Targets(i)
		if len(ts) == 0 {
			continue
		}
		from := ts[rng.Intn(len(ts))]
		to := rng.Intn(s.l.M)
		if to == from {
			continue
		}
		frac := []float64{1, 0.5, 0.25}[rng.Intn(3)]
		delta := s.l.At(i, from) * frac
		if s.l.At(i, from)-delta < 1e-3 {
			delta = s.l.At(i, from)
		}
		if delta <= layout.Epsilon || !s.fits(i, to, delta) {
			continue
		}
		return move{obj: i, from: from, to: to, delta: delta}, true
	}
	return move{}, false
}
