package nlp

import (
	"context"
	"math/rand"
	"sort"
	"time"

	"dblayout/internal/layout"
)

// TransferSearch minimizes the maximum target utilization by hill descent on
// mass-transfer moves: shift a fraction of one object's assignment from the
// most utilized target to another target. A move changes only two columns of
// the layout, so only two target utilizations are re-evaluated; all others
// are cached. After the descent converges, the search restarts from randomly
// perturbed copies of the descent's result (Options.Restarts independent
// rounds, fanned across Options.Workers goroutines) and keeps the best
// layout — mirroring the multi-start iteration of the paper's Fig. 4. Each
// restart draws its perturbation from its own seed stream, so the chosen
// layout does not depend on the worker count.
//
// The initial layout must be valid; the returned layout always is.
//
// The search honours ctx and Options.Budget: between iterations every worker
// periodically checks for cancellation or budget exhaustion and, when either
// fires, the solve stops and returns the best layout found so far with
// Result.Stop classifying the reason. A nil ctx is treated as
// context.Background().
func TransferSearch(ctx context.Context, ev Evaluator, inst *layout.Instance, init *layout.Layout, opt Options) Result {
	opt = opt.withDefaults()
	start := time.Now()
	deadline := budgetDeadline(opt.Budget)
	lim := newLimiterAt(ctx, deadline)

	s := newTransferState(ev, inst, init.Clone())
	tk := newTracker("transfer", opt.Trace, s.objective())
	res := Result{Workers: opt.workers()}
	s.descend(&res, opt, tk, lim, 0)

	base := s.l.Clone()
	_, bestObj := maxOf(s.utils)
	best := base
	res.Stop = lim.stopped

	var outs []restartOutcome
	if lim.stopped == nil {
		outs = runRestarts(ctx, deadline, opt, func(r int, rlim *limiter) restartOutcome {
			rng := rand.New(rand.NewSource(SubSeed(opt.Seed, StreamTransfer, int64(r))))
			rs := newTransferState(ev, inst, base.Clone())
			rtk := newRestartTracker("transfer", rs.objective(), opt.Trace != nil)
			rs.perturb(rng, opt)
			var rr Result
			rs.descend(&rr, opt, rtk, rlim, r)
			_, obj := maxOf(rs.utils)
			return restartOutcome{
				layout: rs.l.Clone(), obj: obj,
				iters: rr.Iters, evals: rs.evals,
				tk: rtk, stop: rlim.stopped,
			}
		})
	}
	best, bestObj = mergeOutcomes(&res, tk, outs, best, bestObj, lim.stopped)

	res.Layout = best
	res.Objective = bestObj
	res.Elapsed = time.Since(start)
	tk.finish(&res)
	return res
}

// transferState caches per-target utilizations and assigned bytes for the
// current layout so that a candidate move costs two target evaluations.
//
// When the evaluator can vend an incremental kernel (see IncrementalSource),
// the two evaluations are O(active objects) delta-scores with zero
// allocations; otherwise each is a full O(N) naive evaluation. Both paths
// fold sub-Epsilon source residuals into the moved fraction (the dust clamp),
// so rows never lose mass and the bytes cache never drifts from
// Layout.TargetBytes.
type transferState struct {
	ev    Evaluator
	inc   *layout.IncrementalEvaluator // nil selects the naive path
	inst  *layout.Instance
	l     *layout.Layout
	utils []float64
	bytes []float64
	sizes []int64
	caps  []int64
	evals int

	// Scratch slices for the pruned candidate scan, reused across
	// bestMove calls to keep the steady-state search allocation-free.
	hot  []hotObject
	cand []int
}

// hotObject ranks an object active on the scan's source target by the
// kernel's cached request rate there.
type hotObject struct {
	obj int
	lam float64
}

func newTransferState(ev Evaluator, inst *layout.Instance, l *layout.Layout) *transferState {
	s := &transferState{
		ev:    ev,
		inst:  inst,
		sizes: inst.Sizes(),
		caps:  inst.Capacities(),
	}
	s.reset(l)
	return s
}

func (s *transferState) reset(l *layout.Layout) {
	s.l = l
	if src, ok := s.ev.(IncrementalSource); ok {
		s.inc = src.NewIncremental(l)
		s.utils = s.inc.Utilizations(nil)
	} else {
		s.utils = s.ev.Utilizations(l)
	}
	s.evals += l.M
	s.bytes = make([]float64, l.M)
	for j := 0; j < l.M; j++ {
		s.bytes[j] = l.TargetBytes(j, s.sizes)
	}
}

// effectiveDelta folds a sub-Epsilon source residual into the moved fraction,
// promoting the move to a whole-assignment transfer. Dropping the residual
// instead (the pre-kernel behaviour) leaked row mass on every clamped move
// and let the bytes cache drift from the layout's true byte assignment.
func (s *transferState) effectiveDelta(m move) float64 {
	if have := s.l.At(m.obj, m.from); have-m.delta < layout.Epsilon {
		return have
	}
	return m.delta
}

// objective returns the current max utilization.
func (s *transferState) objective() float64 {
	_, v := maxOf(s.utils)
	return v
}

// objectivePair returns (max, sum) of the cached utilizations. The sum is a
// lexicographic tie-breaker: symmetric layouts such as SEE are plateaus of
// the pure max objective (any single move leaves another equally-loaded
// target on top), and draining total load toward cheaper targets is what
// lets the search descend off them. MINOS-style continuous solvers do not
// need this because their interior steps move all coordinates at once.
func (s *transferState) objectivePair() (float64, float64) {
	var sum float64
	for _, u := range s.utils {
		sum += u
	}
	_, v := maxOf(s.utils)
	return v, sum
}

// move describes a candidate transfer.
type move struct {
	obj      int
	from, to int
	delta    float64 // fraction of the object to shift
}

// apply performs the move and refreshes the two affected columns.
func (s *transferState) apply(m move) {
	var eff float64
	if s.inc != nil {
		eff = s.inc.Apply(m.obj, m.from, m.to, m.delta)
		s.utils[m.from] = s.inc.Utilization(m.from)
		s.utils[m.to] = s.inc.Utilization(m.to)
	} else {
		eff = s.effectiveDelta(m)
		newFrom := s.l.At(m.obj, m.from) - eff
		if eff == s.l.At(m.obj, m.from) {
			newFrom = 0 // exact, however the subtraction rounds
		}
		s.l.Set(m.obj, m.from, newFrom)
		s.l.Set(m.obj, m.to, s.l.At(m.obj, m.to)+eff)
		s.utils[m.from] = s.ev.TargetUtilization(s.l, m.from)
		s.utils[m.to] = s.ev.TargetUtilization(s.l, m.to)
	}
	s.bytes[m.from] -= eff * float64(s.sizes[m.obj])
	s.bytes[m.to] += eff * float64(s.sizes[m.obj])
	s.evals += 2
}

// tryMove evaluates the (max, sum) objective after m without keeping it. On
// the incremental path the two affected targets are delta-scored against the
// kernel's cached state with no mutation and no allocation; the naive
// fallback applies the move, reads the two new utilizations, and reverts.
func (s *transferState) tryMove(m move) (float64, float64) {
	var nf, nt float64
	if s.inc != nil {
		nf, nt = s.inc.TryMove(m.obj, m.from, m.to, m.delta)
	} else {
		eff := s.effectiveDelta(m)
		fromOld, toOld := s.l.At(m.obj, m.from), s.l.At(m.obj, m.to)
		newFrom := fromOld - eff
		if eff == fromOld {
			newFrom = 0
		}
		s.l.Set(m.obj, m.from, newFrom)
		s.l.Set(m.obj, m.to, toOld+eff)
		nf = s.ev.TargetUtilization(s.l, m.from)
		nt = s.ev.TargetUtilization(s.l, m.to)
		s.l.Set(m.obj, m.from, fromOld)
		s.l.Set(m.obj, m.to, toOld)
	}
	s.evals += 2

	obj, sum := 0.0, 0.0
	for j, u := range s.utils {
		switch j {
		case m.from:
			u = nf
		case m.to:
			u = nt
		}
		sum += u
		if u > obj {
			obj = u
		}
	}
	return obj, sum
}

// fits reports whether moving delta of object obj onto target to respects
// the capacity constraint and any administrative constraints.
func (s *transferState) fits(obj, to int, delta float64) bool {
	if s.bytes[to]+delta*float64(s.sizes[obj]) > float64(s.caps[to])*(1+1e-12) {
		return false
	}
	c := s.inst.Constraints
	if !c.Permits(obj, to) {
		return false
	}
	for _, k := range c.SeparatedFrom(obj) {
		if s.l.At(k, to) > layout.Epsilon {
			return false
		}
	}
	return true
}

// descend performs greedy improvement until convergence, cancellation, or
// exhaustion of the iteration budget.
func (s *transferState) descend(res *Result, opt Options, tk *tracker, lim *limiter, restart int) {
	stall := 0
	for iter := 0; iter < opt.MaxIters; iter++ {
		if lim.stop() != nil {
			break
		}
		curMax, curSum := s.objectivePair()
		best, ok := s.bestMove(curMax, curSum, opt, lim)
		if !ok {
			break
		}
		s.apply(best)
		res.Iters++
		tk.note(restart, s.objective(), true, 0, s.evals)
		// Tie-breaker (sum-only) improvements are allowed to run for a
		// while to escape plateaus, but must eventually pay off on the
		// primary objective.
		if newMax, _ := s.objectivePair(); curMax-newMax < opt.Tolerance*curMax {
			stall++
			if stall > 4*s.l.M {
				break
			}
		} else {
			stall = 0
		}
	}
	res.Evals = s.evals
}

// moveScan accumulates the lexicographically best improving move found by a
// candidate scan (full or pruned) against a fixed baseline (max, sum)
// objective.
type moveScan struct {
	s                *transferState
	bestMax, bestSum float64
	best             move
	found            bool
}

// consider prices one candidate move and keeps it if it improves the
// running best under the lexicographic (max, sum) order.
func (sc *moveScan) consider(m move) {
	if m.delta <= layout.Epsilon || !sc.s.fits(m.obj, m.to, m.delta) {
		return
	}
	max, sum := sc.s.tryMove(m)
	if max < sc.bestMax-1e-15 || (max < sc.bestMax+1e-12 && sum < sc.bestSum-1e-12) {
		sc.bestMax, sc.bestSum = max, sum
		sc.best = m
		sc.found = true
	}
}

// tryPair prices every step fraction of moving object i from src to to,
// deduplicating whole-assignment transfers promoted by the dust clamp.
func (sc *moveScan) tryPair(i, src, to int, have float64, opt Options) {
	fullTried := false
	for _, f := range opt.StepFractions {
		delta := have * f
		if have-delta < 1e-3 {
			delta = have // avoid leaving dust fractions behind
		}
		if delta == have {
			if fullTried {
				continue
			}
			fullTried = true
		}
		sc.consider(move{obj: i, from: src, to: to, delta: delta})
	}
}

// bestMove scans candidate transfers off the most utilized target and
// returns the one with the lexicographically lowest resulting (max, sum)
// objective, if it improves on the current one. The scan itself checks the
// limiter between objects so that cancellation interrupts even a single
// iteration on very large instances; an interrupted scan reports no move,
// which makes the caller stop with the pre-iteration layout intact.
//
// When Options.pruneBounds engages (fleet-scale problems, or pruning forced
// by the caller), a bounded hottest-objects x least-utilized-targets scan
// runs first; a full scan runs only when the pruned scan finds nothing, so
// the search can declare convergence only in states the unpruned search
// would also accept.
func (s *transferState) bestMove(curMax, curSum float64, opt Options, lim *limiter) (move, bool) {
	src, _ := maxOf(s.utils)
	movable := opt.movableSet(s.l.N)
	if po, pt := opt.pruneBounds(s.l.N, s.l.M, s.inc != nil); po > 0 {
		mv, found, interrupted := s.scanPruned(src, curMax, curSum, opt, movable, lim, po, pt)
		if found || interrupted {
			return mv, found
		}
		// Pruning-soundness fallback: the bounded scan is dry, so pay
		// for one exhaustive scan before letting the descent stop here.
	}
	return s.scanFull(src, curMax, curSum, opt, movable, lim)
}

// scanFull prices every (object on src) x (other target) x (step fraction)
// candidate.
func (s *transferState) scanFull(src int, curMax, curSum float64, opt Options, movable func(int) bool, lim *limiter) (move, bool) {
	sc := moveScan{s: s, bestMax: curMax, bestSum: curSum}
	for i := 0; i < s.l.N; i++ {
		if lim.stop() != nil {
			return move{}, false
		}
		have := s.l.At(i, src)
		if have <= layout.Epsilon || !movable(i) {
			continue
		}
		for to := 0; to < s.l.M; to++ {
			if to == src {
				continue
			}
			sc.tryPair(i, src, to, have, opt)
		}
	}
	return sc.best, sc.found
}

// scanPruned prices only the po hottest movable objects on src against the
// pt least-utilized other targets. Both rankings are deterministic: stable
// sorts over ascending-id inputs break rate and utilization ties toward the
// lower id, so pruned solves stay bit-identical at any worker count. The
// third return distinguishes a dry scan (fall through to scanFull) from a
// limiter interrupt (stop immediately).
func (s *transferState) scanPruned(src int, curMax, curSum float64, opt Options, movable func(int) bool, lim *limiter, po, pt int) (mv move, found, interrupted bool) {
	s.hot = s.hot[:0]
	s.inc.ForEachActive(src, func(obj int, lam float64) {
		if s.l.At(obj, src) > layout.Epsilon && movable(obj) {
			s.hot = append(s.hot, hotObject{obj: obj, lam: lam})
		}
	})
	sort.SliceStable(s.hot, func(a, b int) bool { return s.hot[a].lam > s.hot[b].lam })
	if len(s.hot) > po {
		s.hot = s.hot[:po]
	}

	s.cand = s.cand[:0]
	for j := range s.utils {
		if j != src {
			s.cand = append(s.cand, j)
		}
	}
	sort.SliceStable(s.cand, func(a, b int) bool { return s.utils[s.cand[a]] < s.utils[s.cand[b]] })
	if len(s.cand) > pt {
		s.cand = s.cand[:pt]
	}

	sc := moveScan{s: s, bestMax: curMax, bestSum: curSum}
	for _, h := range s.hot {
		if lim.stop() != nil {
			return move{}, false, true
		}
		have := s.l.At(h.obj, src)
		for _, to := range s.cand {
			sc.tryPair(h.obj, src, to, have, opt)
		}
	}
	return sc.best, sc.found, false
}

// perturb randomly reassigns a few objects' placements to escape local
// minima between restarts. Capacity is respected; integrity is preserved
// because whole-row fractions are moved.
func (s *transferState) perturb(rng *rand.Rand, opt Options) {
	n := s.l.N
	movable := opt.movableSet(n)
	kicks := 1 + n/8
	for k := 0; k < kicks; k++ {
		i := rng.Intn(n)
		if !movable(i) {
			continue
		}
		from := -1
		for _, j := range s.l.Targets(i) {
			if from < 0 || s.l.At(i, j) > s.l.At(i, from) {
				from = j
			}
		}
		if from < 0 {
			continue
		}
		to := rng.Intn(s.l.M)
		if to == from {
			continue
		}
		delta := s.l.At(i, from)
		if !s.fits(i, to, delta) {
			continue
		}
		s.apply(move{obj: i, from: from, to: to, delta: delta})
	}
}
