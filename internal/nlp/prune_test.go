package nlp

import (
	"context"
	"math/rand"
	"testing"
	"time"

	"dblayout/internal/layout"
	"dblayout/internal/layouttest"
)

func TestPruneBounds(t *testing.T) {
	cases := []struct {
		name         string
		opt          Options
		n, m         int
		kernel       bool
		wantO, wantT int
	}{
		{"paper scale stays dense", Options{}, 160, 40, true, 0, 0},
		{"auto engages at threshold", Options{}, 1 << 10, 1 << 8, true,
			defaultPruneObjects, defaultPruneTargets},
		{"no kernel never prunes", Options{}, 1 << 10, 1 << 8, false, 0, 0},
		{"negative disables", Options{PruneObjects: -1}, 1 << 10, 1 << 8, true, 0, 0},
		{"negative targets disables", Options{PruneTargets: -1}, 1 << 10, 1 << 8, true, 0, 0},
		{"explicit forces on small problems", Options{PruneObjects: 4, PruneTargets: 2}, 6, 6, true, 4, 2},
		{"explicit objects defaults targets", Options{PruneObjects: 8}, 6, 6, true, 8, defaultPruneTargets},
		{"explicit targets defaults objects", Options{PruneTargets: 3}, 6, 6, true, defaultPruneObjects, 3},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			po, pt := c.opt.pruneBounds(c.n, c.m, c.kernel)
			if po != c.wantO || pt != c.wantT {
				t.Fatalf("pruneBounds(%d, %d, %v) = (%d, %d), want (%d, %d)",
					c.n, c.m, c.kernel, po, pt, c.wantO, c.wantT)
			}
		})
	}
}

// TestPrunedConvergenceSoundness drives pruned descents to convergence and
// checks the termination contract: whenever the pruned bestMove reports no
// improving move, a fully unpruned scan from the same state must agree —
// the fallback guarantees pruning can tighten the search, never wedge it
// early.
func TestPrunedConvergenceSoundness(t *testing.T) {
	pruned := Options{PruneObjects: 3, PruneTargets: 2}.withDefaults()
	dense := Options{PruneObjects: -1}.withDefaults()
	lim := newLimiterAt(context.Background(), time.Time{})

	for trial := 0; trial < 4; trial++ {
		inst := layouttest.Replicated(3+trial, 6)
		ev := layout.NewEvaluator(inst)
		init, err := layout.InitialLayout(inst)
		if err != nil {
			t.Fatal(err)
		}
		// Scramble the start a little so trials converge from different
		// basins.
		s := newTransferState(ev, inst, init.Clone())
		s.perturb(rand.New(rand.NewSource(int64(trial))), pruned)

		converged := false
		for iter := 0; iter < 4000; iter++ {
			curMax, curSum := s.objectivePair()
			mv, ok := s.bestMove(curMax, curSum, pruned, lim)
			if !ok {
				if _, denseOK := s.bestMove(curMax, curSum, dense, lim); denseOK {
					t.Fatalf("trial %d: pruned search converged but a dense scan still improves", trial)
				}
				converged = true
				break
			}
			newMax, newSum := s.tryMove(mv)
			if newMax >= curMax+1e-12 && newSum >= curSum {
				t.Fatalf("trial %d: accepted non-improving move %+v", trial, mv)
			}
			s.apply(mv)
		}
		if !converged {
			t.Fatalf("trial %d: pruned descent did not converge", trial)
		}
	}
}

// TestPrunedDeterminismAcrossWorkers pins the workers-independence contract
// with pruning forced on: the restart rounds all descend through the pruned
// scan, and the chosen layout must still be bit-identical at any worker
// count.
func TestPrunedDeterminismAcrossWorkers(t *testing.T) {
	inst := layouttest.Replicated(6, 6)
	ev := layout.NewEvaluator(inst)
	init, err := layout.InitialLayout(inst)
	if err != nil {
		t.Fatal(err)
	}
	solve := func(workers int) Result {
		return TransferSearch(context.Background(), ev, inst, init, Options{
			Seed: 42, Restarts: 6, Workers: workers,
			PruneObjects: 4, PruneTargets: 2,
		})
	}
	r1, r8 := solve(1), solve(8)
	if r1.Objective != r8.Objective {
		t.Fatalf("objective differs across workers: %v vs %v", r1.Objective, r8.Objective)
	}
	for i := 0; i < inst.N(); i++ {
		for j := 0; j < len(inst.Targets); j++ {
			if a, b := r1.Layout.At(i, j), r8.Layout.At(i, j); a != b {
				t.Fatalf("layout[%d][%d] differs across workers: %v vs %v", i, j, a, b)
			}
		}
	}
}

// TestPrunedSolveMatchesDenseOnAuto checks the auto threshold end to end: a
// paper-scale solve with default options must be bit-identical to one with
// pruning explicitly disabled, because automatic pruning must not engage
// below pruneAutoPairs.
func TestPrunedSolveMatchesDenseOnAuto(t *testing.T) {
	inst := layouttest.Replicated(8, 8)
	ev := layout.NewEvaluator(inst)
	init, err := layout.InitialLayout(inst)
	if err != nil {
		t.Fatal(err)
	}
	base := Options{Seed: 7, Restarts: 2, MaxIters: 300}
	off := base
	off.PruneObjects, off.PruneTargets = -1, -1
	ra := TransferSearch(context.Background(), ev, inst, init, base)
	rb := TransferSearch(context.Background(), ev, inst, init, off)
	if ra.Objective != rb.Objective {
		t.Fatalf("auto pruning changed a paper-scale solve: %v vs %v", ra.Objective, rb.Objective)
	}
	for i := 0; i < inst.N(); i++ {
		for j := 0; j < len(inst.Targets); j++ {
			if a, b := ra.Layout.At(i, j), rb.Layout.At(i, j); a != b {
				t.Fatalf("layout[%d][%d] differs with pruning auto vs off: %v vs %v", i, j, a, b)
			}
		}
	}
}
