package nlp

import (
	"context"
	"fmt"
	"testing"

	"dblayout/internal/layout"
	"dblayout/internal/layouttest"
)

// benchSolve runs one multi-restart solve of the named strategy at the given
// worker count. The restart count is high enough that the worker pool, not
// the first descent, dominates the run — the configuration the ≥2x speedup
// acceptance criterion is measured on (compare the workers=1 and workers=4
// lines of the same solver, e.g. `go test -bench=Solve ./internal/nlp/`).
func benchSolve(b *testing.B, c solverCase, workers int) {
	inst := layouttest.Replicated(4, 8)
	ev := layout.NewEvaluator(inst)
	init, err := layout.InitialLayout(inst)
	if err != nil {
		b.Fatal(err)
	}
	opt := Options{Seed: 1, Restarts: 8, Workers: workers, MaxIters: 400}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := c.solve(context.Background(), ev, inst, init, opt)
		if res.Layout == nil {
			b.Fatal("no layout")
		}
	}
}

func BenchmarkSolve(b *testing.B) {
	for _, c := range solverCases() {
		for _, workers := range []int{1, 4} {
			b.Run(fmt.Sprintf("%s/workers=%d", c.name, workers), func(b *testing.B) {
				benchSolve(b, c, workers)
			})
		}
	}
}

// paperScale builds the paper's largest problem shape: Replicated(40, 40) is
// N=160 objects on M=40 targets (cf. the scaling experiment of Fig. 12).
func paperScale(b *testing.B) (*layout.Instance, *layout.Evaluator, *layout.Layout) {
	b.Helper()
	inst := layouttest.Replicated(40, 40)
	ev := layout.NewEvaluator(inst)
	init, err := layout.InitialLayout(inst)
	if err != nil {
		b.Fatal(err)
	}
	return inst, ev, init
}

// evalPaths pairs the incremental kernel against the naive evaluation path
// (naiveEval hides IncrementalSource) for A/B benchmarks. The ≥3x ns/op
// speedup acceptance criterion compares the incremental and naive lines of
// the same benchmark.
func evalPaths(ev *layout.Evaluator) []struct {
	name string
	ev   Evaluator
} {
	return []struct {
		name string
		ev   Evaluator
	}{
		{"incremental", ev},
		{"naive", naiveEval{inner: ev}},
	}
}

// BenchmarkSolvePaperScale runs a single-descent transfer solve at paper
// scale on both evaluation paths. MaxIters is capped so the naive line stays
// CI-feasible; both lines do identical solver work, so the ratio is the
// kernel's end-to-end speedup.
func BenchmarkSolvePaperScale(b *testing.B) {
	inst, ev, init := paperScale(b)
	opt := Options{Seed: 1, Restarts: NoRestarts, MaxIters: 8}
	for _, p := range evalPaths(ev) {
		b.Run("transfer/"+p.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				res := TransferSearch(context.Background(), p.ev, inst, init, opt)
				if res.Layout == nil {
					b.Fatal("no layout")
				}
			}
		})
	}
}

// BenchmarkSolveFleetScale runs a single-descent transfer solve at fleet
// scale — N=10000 objects on M=1000 targets, three orders of magnitude more
// object-target pairs than the paper's largest study. The sparse overlap
// representation, the sparse incremental kernel, and automatic candidate
// pruning (engaged here by the problem size) together keep one solve in
// seconds; the dense pre-sparse code path exhausted memory building the
// evaluator alone. Run with -benchtime=1x for a smoke reading.
func BenchmarkSolveFleetScale(b *testing.B) {
	inst := layouttest.Fleet(10000, 1000)
	ev := layout.NewEvaluator(inst)
	init, err := layout.InitialLayout(inst)
	if err != nil {
		b.Fatal(err)
	}
	opt := Options{Seed: 1, Restarts: NoRestarts, MaxIters: 256}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := TransferSearch(context.Background(), ev, inst, init, opt)
		if res.Layout == nil {
			b.Fatal("no layout")
		}
	}
}

// BenchmarkMoveScoring measures the move-scoring primitive itself at paper
// scale: one tryMove per iteration. The incremental line must report
// 0 allocs/op — the kernel's zero-allocation contract for the hot loop.
func BenchmarkMoveScoring(b *testing.B) {
	inst, ev, init := paperScale(b)
	for _, p := range evalPaths(ev) {
		b.Run(p.name, func(b *testing.B) {
			s := newTransferState(p.ev, inst, init.Clone())
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				obj := i % s.l.N
				from := -1
				for j := 0; j < s.l.M; j++ {
					if s.l.At(obj, j) > layout.Epsilon {
						from = j
						break
					}
				}
				if from < 0 {
					b.Fatalf("object %d has no active target", obj)
				}
				to := (from + 1 + i%(s.l.M-1)) % s.l.M
				if to == from {
					to = (to + 1) % s.l.M
				}
				s.tryMove(move{obj: obj, from: from, to: to, delta: s.l.At(obj, from) * 0.5})
			}
		})
	}
}
