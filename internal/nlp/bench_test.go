package nlp

import (
	"context"
	"fmt"
	"testing"

	"dblayout/internal/layout"
	"dblayout/internal/layouttest"
)

// benchSolve runs one multi-restart solve of the named strategy at the given
// worker count. The restart count is high enough that the worker pool, not
// the first descent, dominates the run — the configuration the ≥2x speedup
// acceptance criterion is measured on (compare the workers=1 and workers=4
// lines of the same solver, e.g. `go test -bench=Solve ./internal/nlp/`).
func benchSolve(b *testing.B, c solverCase, workers int) {
	inst := layouttest.Replicated(4, 8)
	ev := layout.NewEvaluator(inst)
	init, err := layout.InitialLayout(inst)
	if err != nil {
		b.Fatal(err)
	}
	opt := Options{Seed: 1, Restarts: 8, Workers: workers, MaxIters: 400}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := c.solve(context.Background(), ev, inst, init, opt)
		if res.Layout == nil {
			b.Fatal("no layout")
		}
	}
}

func BenchmarkSolve(b *testing.B) {
	for _, c := range solverCases() {
		for _, workers := range []int{1, 4} {
			b.Run(fmt.Sprintf("%s/workers=%d", c.name, workers), func(b *testing.B) {
				benchSolve(b, c, workers)
			})
		}
	}
}
