package nlp

import (
	"context"
	"errors"
	"testing"
	"time"

	"dblayout/internal/layout"
	"dblayout/internal/layouttest"
)

// endless returns options that keep a solver searching far longer than any
// test timeout, so cancellation and budget checks are what actually stop it.
func endless(seed int64) Options {
	return Options{Seed: seed, MaxIters: 1 << 30, Restarts: 1 << 20}
}

// slowEval delays every evaluation, standing in for the expensive cost-model
// lookups of production-sized instances. It keeps the projected-gradient
// solver (which otherwise converges in milliseconds on test instances) busy
// long enough for cancellation and budget checks to be what stops it.
type slowEval struct {
	inner Evaluator
	d     time.Duration
}

func (s slowEval) TargetUtilization(l *layout.Layout, j int) float64 {
	time.Sleep(s.d)
	return s.inner.TargetUtilization(l, j)
}

func (s slowEval) Utilizations(l *layout.Layout) []float64 {
	time.Sleep(s.d)
	return s.inner.Utilizations(l)
}

type solverCase struct {
	name  string
	slow  bool // wrap the evaluator so the solver cannot converge early
	solve func(ctx context.Context, ev Evaluator, inst *layout.Instance, init *layout.Layout, opt Options) Result
}

// solverCases enumerates the three search strategies behind one call shape.
// Transfer and anneal never converge under endless(); projected gradient
// does, so it runs against the slowed evaluator in the timing tests.
func solverCases() []solverCase {
	return []solverCase{
		{name: "transfer", solve: TransferSearch},
		{name: "projgrad", slow: true, solve: ProjectedGradient},
		{name: "anneal", solve: func(ctx context.Context, ev Evaluator, inst *layout.Instance, init *layout.Layout, opt Options) Result {
			res, err := Anneal(ctx, ev, inst, init, AnnealOptions{Options: opt})
			if err != nil {
				panic(err)
			}
			return res
		}},
	}
}

func TestSolversPreCancelled(t *testing.T) {
	inst := layouttest.Instance(4)
	ev := layout.NewEvaluator(inst)
	init, err := layout.InitialLayout(inst)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, c := range solverCases() {
		res := c.solve(ctx, ev, inst, init, endless(1))
		if !errors.Is(res.Stop, context.Canceled) {
			t.Errorf("%s: Stop = %v, want context.Canceled", c.name, res.Stop)
		}
		if res.Layout == nil {
			t.Errorf("%s: no layout returned", c.name)
			continue
		}
		if err := inst.ValidateLayout(res.Layout); err != nil {
			t.Errorf("%s: invalid layout: %v", c.name, err)
		}
	}
}

func TestSolversBudget(t *testing.T) {
	inst := layouttest.Instance(4)
	ev := layout.NewEvaluator(inst)
	init, err := layout.InitialLayout(inst)
	if err != nil {
		t.Fatal(err)
	}
	const budget = 30 * time.Millisecond
	for _, c := range solverCases() {
		var sev Evaluator = ev
		if c.slow {
			sev = slowEval{inner: ev, d: 100 * time.Microsecond}
		}
		opt := endless(1)
		opt.Budget = budget
		start := time.Now()
		res := c.solve(context.Background(), sev, inst, init, opt)
		elapsed := time.Since(start)
		if !errors.Is(res.Stop, ErrBudgetExceeded) {
			t.Errorf("%s: Stop = %v, want ErrBudgetExceeded", c.name, res.Stop)
		}
		if err := inst.ValidateLayout(res.Layout); err != nil {
			t.Errorf("%s: invalid layout: %v", c.name, err)
		}
		// Generous wall-clock bound: the budget plus several check
		// intervals of slack for slow CI machines.
		if elapsed > budget+20*checkInterval {
			t.Errorf("%s: ran %v past a %v budget", c.name, elapsed, budget)
		}
	}
}

// TestSolversCancelPrompt cancels mid-solve and requires the solver to hand
// back its best-so-far layout within two check intervals — the
// responsiveness contract the advisor's callers rely on. Timing assertions
// are retried to tolerate scheduler hiccups on loaded machines.
func TestSolversCancelPrompt(t *testing.T) {
	inst := layouttest.Replicated(2, 8)
	ev := layout.NewEvaluator(inst)
	init, err := layout.InitialLayout(inst)
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range solverCases() {
		var sev Evaluator = ev
		if c.slow {
			sev = slowEval{inner: ev, d: 100 * time.Microsecond}
		}
		ok := false
		var last time.Duration
		for attempt := 0; attempt < 3 && !ok; attempt++ {
			ctx, cancel := context.WithCancel(context.Background())
			done := make(chan Result, 1)
			go func() { done <- c.solve(ctx, sev, inst, init, endless(1)) }()
			time.Sleep(4 * checkInterval) // let the search get going
			cancelled := time.Now()
			cancel()
			res := <-done
			last = time.Since(cancelled)
			if !errors.Is(res.Stop, context.Canceled) {
				t.Fatalf("%s: Stop = %v, want context.Canceled", c.name, res.Stop)
			}
			if err := inst.ValidateLayout(res.Layout); err != nil {
				t.Fatalf("%s: best-so-far layout invalid: %v", c.name, err)
			}
			ok = last < 2*checkInterval
		}
		if !ok {
			t.Errorf("%s: cancellation took %v, want < %v", c.name, last, 2*checkInterval)
		}
	}
}
