package nlp

import (
	"context"
	"math"
	"testing"
	"testing/quick"

	"dblayout/internal/layout"
	"dblayout/internal/layouttest"
)

func TestProjectSimplexKnownCases(t *testing.T) {
	cases := []struct{ in, want []float64 }{
		{[]float64{0.5, 0.5}, []float64{0.5, 0.5}},
		{[]float64{2, 0}, []float64{1, 0}},
		{[]float64{0, 0}, []float64{0.5, 0.5}},
		{[]float64{1, 1}, []float64{0.5, 0.5}},
		{[]float64{-1, -1, -1}, []float64{1.0 / 3, 1.0 / 3, 1.0 / 3}},
		{[]float64{0.8, 0.4}, []float64{0.7, 0.3}},
	}
	for _, tc := range cases {
		v := append([]float64(nil), tc.in...)
		ProjectSimplex(v)
		for i := range v {
			if math.Abs(v[i]-tc.want[i]) > 1e-9 {
				t.Errorf("ProjectSimplex(%v) = %v, want %v", tc.in, v, tc.want)
				break
			}
		}
	}
}

func TestProjectSimplexProperties(t *testing.T) {
	f := func(raw []float64) bool {
		if len(raw) == 0 {
			return true
		}
		v := make([]float64, len(raw))
		for i, x := range raw {
			// Bound inputs to keep the check numerically meaningful.
			v[i] = math.Mod(x, 100)
			if math.IsNaN(v[i]) || math.IsInf(v[i], 0) {
				v[i] = 0
			}
		}
		ProjectSimplex(v)
		var sum float64
		for _, x := range v {
			if x < 0 {
				return false
			}
			sum += x
		}
		if math.Abs(sum-1) > 1e-6 {
			return false
		}
		// Idempotence.
		w := append([]float64(nil), v...)
		ProjectSimplex(w)
		for i := range v {
			if math.Abs(v[i]-w[i]) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// solveCheck verifies a solver result against the instance and the starting
// objective.
func solveCheck(t *testing.T, inst *layout.Instance, res Result, startObj float64) {
	t.Helper()
	if res.Layout == nil {
		t.Fatal("no layout returned")
	}
	if err := inst.ValidateLayout(res.Layout); err != nil {
		t.Fatalf("solver produced invalid layout: %v", err)
	}
	if res.Objective > startObj*(1+1e-9) {
		t.Fatalf("solver worsened the objective: %g -> %g", startObj, res.Objective)
	}
}

func TestTransferSearchImprovesOnInitial(t *testing.T) {
	inst := layouttest.Instance(4)
	ev := layout.NewEvaluator(inst)
	init, err := layout.InitialLayout(inst)
	if err != nil {
		t.Fatal(err)
	}
	start := ev.MaxUtilization(init)
	res := TransferSearch(context.Background(), ev, inst, init, Options{Seed: 1})
	solveCheck(t, inst, res, start)
	if res.Objective > 0.9*start {
		t.Fatalf("little improvement: %g -> %g", start, res.Objective)
	}
	// The solver must also beat SEE, which co-locates the two hot
	// overlapping sequential tables on every target.
	see := ev.MaxUtilization(layout.SEE(inst.N(), inst.M()))
	if res.Objective >= see {
		t.Fatalf("solver (%.4f) did not beat SEE (%.4f)", res.Objective, see)
	}
}

func TestTransferSearchSeparatesHotTables(t *testing.T) {
	inst := layouttest.Instance(4)
	ev := layout.NewEvaluator(inst)
	init, _ := layout.InitialLayout(inst)
	res := TransferSearch(context.Background(), ev, inst, init, Options{Seed: 1})
	l := res.Layout
	// T1 and T2 overlap 0.9 and are both sequential: sharing a target
	// would be costly. Verify they share no target with significant mass.
	for j := 0; j < l.M; j++ {
		if l.At(0, j) > 0.05 && l.At(1, j) > 0.05 {
			t.Fatalf("hot tables share target %d: %v / %v", j, l.Row(0), l.Row(1))
		}
	}
}

func TestTransferSearchRespectsCapacity(t *testing.T) {
	inst := layouttest.Instance(2)
	// Make target 1 too small for the 4 GB table.
	inst.Targets[1].Capacity = 2 << 30
	ev := layout.NewEvaluator(inst)
	init, err := layout.InitialLayout(inst)
	if err != nil {
		t.Fatal(err)
	}
	res := TransferSearch(context.Background(), ev, inst, init, Options{Seed: 1})
	solveCheck(t, inst, res, ev.MaxUtilization(init)+1)
}

func TestTransferSearchDeterministic(t *testing.T) {
	inst := layouttest.Instance(4)
	ev := layout.NewEvaluator(inst)
	init, _ := layout.InitialLayout(inst)
	a := TransferSearch(context.Background(), ev, inst, init, Options{Seed: 7})
	b := TransferSearch(context.Background(), ev, inst, init, Options{Seed: 7})
	if a.Objective != b.Objective {
		t.Fatalf("non-deterministic: %g vs %g", a.Objective, b.Objective)
	}
}

func TestTransferSearchScales(t *testing.T) {
	inst := layouttest.Replicated(8, 10) // 32 objects, 10 targets
	ev := layout.NewEvaluator(inst)
	init, err := layout.InitialLayout(inst)
	if err != nil {
		t.Fatal(err)
	}
	start := ev.MaxUtilization(init)
	res := TransferSearch(context.Background(), ev, inst, init, Options{Seed: 1, Restarts: 1})
	solveCheck(t, inst, res, start)
}

func TestProjectedGradientImproves(t *testing.T) {
	inst := layouttest.Instance(4)
	ev := layout.NewEvaluator(inst)
	init, _ := layout.InitialLayout(inst)
	start := ev.MaxUtilization(init)
	res := ProjectedGradient(context.Background(), ev, inst, init, Options{MaxIters: 60})
	solveCheck(t, inst, res, start)
	if res.Objective >= start {
		t.Fatalf("no improvement: %g -> %g", start, res.Objective)
	}
}

func TestProjectedGradientAgreesWithTransfer(t *testing.T) {
	inst := layouttest.Instance(3)
	ev := layout.NewEvaluator(inst)
	init, _ := layout.InitialLayout(inst)
	pg := ProjectedGradient(context.Background(), ev, inst, init, Options{MaxIters: 80})
	ts := TransferSearch(context.Background(), ev, inst, init, Options{Seed: 1})
	// Local optimizers on a non-convex problem: require rough agreement,
	// not equality.
	if pg.Objective > 2*ts.Objective && pg.Objective-ts.Objective > 0.05 {
		t.Fatalf("solvers disagree badly: PG %.4f vs TS %.4f", pg.Objective, ts.Objective)
	}
}

func TestAnnealImproves(t *testing.T) {
	inst := layouttest.Instance(4)
	ev := layout.NewEvaluator(inst)
	init, _ := layout.InitialLayout(inst)
	start := ev.MaxUtilization(init)
	res, err := Anneal(context.Background(), ev, inst, init, AnnealOptions{Options: Options{Seed: 3, MaxIters: 4000}})
	if err != nil {
		t.Fatal(err)
	}
	solveCheck(t, inst, res, start)
	if res.Objective >= start {
		t.Fatalf("no improvement: %g -> %g", start, res.Objective)
	}
}

func TestRepairCapacity(t *testing.T) {
	// Two objects of 10 GB each; target 0 can hold 12 GB, target 1 can
	// hold 20 GB. Start with everything on target 0.
	l := layout.New(2, 2)
	l.Set(0, 0, 1)
	l.Set(1, 0, 1)
	sizes := []int64{10 << 30, 10 << 30}
	caps := []int64{12 << 30, 20 << 30}
	if !repairCapacity(l, sizes, caps) {
		t.Fatal("repair failed on a feasible instance")
	}
	if err := l.CheckIntegrity(); err != nil {
		t.Fatal(err)
	}
	if err := l.CheckCapacity(sizes, caps); err != nil {
		t.Fatal(err)
	}
	// Infeasible: both targets too small.
	l2 := layout.New(1, 2)
	l2.Set(0, 0, 1)
	if repairCapacity(l2, []int64{100 << 30}, []int64{1 << 30, 1 << 30}) {
		t.Fatal("repair claimed success on an infeasible instance")
	}
}
