// Package nlp provides continuous optimizers for the database object layout
// problem (paper Definition 1): minimize the maximum predicted storage
// target utilization over the polytope of valid layouts.
//
// The paper formulates the problem in AMPL and solves it with the MINOS
// non-linear programming solver. MINOS is a *local* solver — the paper notes
// it is not guaranteed to find a global optimum and is sensitive to the
// initial layout. This package fills the same contract with two from-scratch
// solvers:
//
//   - TransferSearch: a mass-transfer local search that repeatedly shifts
//     fractions of objects off the most utilized target. It scales to the
//     paper's largest problems (N=160 objects, M=40 targets) because a move
//     only requires re-evaluating the two affected targets.
//   - ProjectedGradient: finite-difference projected gradient descent on a
//     softmax-smoothed objective, with per-row simplex projection. Useful as
//     a cross-check on small problems.
//
// Both honour the integrity constraint exactly (rows always sum to 1) and
// the capacity constraint by construction (moves that would overfill a
// target are rejected; the gradient path repairs violations after each
// projection step).
package nlp

import (
	"time"

	"dblayout/internal/layout"
)

// Evaluator supplies per-target utilization predictions for candidate
// layouts. *layout.Evaluator implements it.
type Evaluator interface {
	// TargetUtilization returns mu_j under layout l.
	TargetUtilization(l *layout.Layout, j int) float64
	// Utilizations returns all mu_j under layout l.
	Utilizations(l *layout.Layout) []float64
}

// IncrementalSource is implemented by evaluators that can vend a
// delta-evaluation kernel for a live layout (*layout.Evaluator does). The
// solvers probe for it and, when present, score candidate moves in O(active
// objects) with zero allocations instead of two full O(N) target
// evaluations; evaluators implementing only Evaluator keep working on the
// naive path. The kernel and the naive evaluator agree on every target
// utilization to within 1e-9 (see DESIGN.md, "Evaluation-kernel tolerance
// contract").
type IncrementalSource interface {
	NewIncremental(l *layout.Layout) *layout.IncrementalEvaluator
}

// NoRestarts is the Options.Restarts sentinel for a single-descent solve:
// no multi-start rounds run and Result.Restarts reports 0. (The zero value
// selects the default restart count, so "none" needs an explicit sentinel.)
const NoRestarts = -1

// Options controls the solvers. The zero value selects sensible defaults.
type Options struct {
	// MaxIters bounds improvement iterations (default 2000).
	MaxIters int
	// Tolerance is the minimum relative objective improvement that keeps
	// the search going (default 1e-4).
	Tolerance float64
	// Restarts is the number of random multi-start rounds after the first
	// search converges; the best layout found is kept. Zero selects the
	// default (3); NoRestarts — or any negative value — requests a
	// single-descent solve with no multi-start rounds at all, which
	// Result.Restarts reports as 0. Every solver honours it:
	// TransferSearch re-descends from perturbations of its first descent's
	// result, ProjectedGradient re-descends from perturbations of the
	// initial layout, and Anneal runs one additional full annealing chain
	// per restart from a perturbed initial layout. Restarts are
	// independent of each other by construction, so they parallelize (see
	// Workers) without changing the chosen layout.
	Restarts int
	// Workers bounds how many restarts run concurrently. Zero selects
	// min(Restarts+1, GOMAXPROCS); 1 forces a fully serial solve. The
	// chosen layout is bit-identical for a given (Seed, Restarts) at any
	// worker count — parallelism changes wall-clock time, never the
	// result — except when Budget or a cancellation truncates the search,
	// in which case the set of restarts that completed in time is
	// scheduler-dependent.
	Workers int
	// Budget bounds the solver's wall-clock search time. When it elapses
	// the solver stops at the next periodic check and returns its best
	// layout so far with Result.Stop = ErrBudgetExceeded. Zero means
	// unbounded.
	Budget time.Duration
	// Seed feeds the perturbation randomness. Zero means "deterministic
	// default": every solver derives its generator from Seed alone (never
	// from the global math/rand state or the clock), so two runs with the
	// same Seed — including the zero value — produce identical results.
	Seed int64
	// Trace, when non-nil, observes every solver iteration. The hook is
	// never invoked concurrently and must be fast; heavyweight sinks
	// should buffer. Events for the first search (restart 0) are delivered
	// live from the solver goroutine; events from restart rounds are
	// recorded per worker and delivered when the solve completes, merged
	// in restart order with globally renumbered Iter values — so the
	// delivered stream is identical at every worker count, Iter is
	// consecutive from 1, and the Best field is non-increasing.
	Trace func(TraceEvent)
	// StepFractions are the fractions of an object's current assignment
	// that a single transfer move may shift (default 1, 1/2, 1/4, 1/8).
	StepFractions []float64
	// MovableObjects, when non-nil, restricts the search to moving only
	// the listed objects; all other rows are frozen. Used for
	// incremental placement (e.g. FlexVol-style growth), where existing
	// data must stay put.
	MovableObjects []int
	// PruneObjects and PruneTargets bound TransferSearch's candidate scan
	// for fleet-scale problems. A full scan prices every (object on the
	// most-utilized target) x (other target) x (step fraction) triple; a
	// pruned scan tries only the PruneObjects hottest objects on the
	// source — ranked by the kernel's cached per-target request rate, ties
	// toward the lower object id — against the PruneTargets least-utilized
	// destinations (ties toward the lower target id). Whenever the pruned
	// scan finds no improving move, one full scan runs before the search
	// may declare convergence, so a pruned descent terminates only in
	// states where the unpruned descent would also stop (the
	// pruning-soundness fallback; see DESIGN.md, "Candidate-move
	// pruning").
	//
	// Zero selects automatic behaviour: pruning engages with defaults (64
	// objects x 16 targets) only when N*M reaches pruneAutoPairs and the
	// evaluator vends an incremental kernel, so paper-scale solves keep
	// their exact dense scans. Any negative value disables pruning
	// outright. Setting either field positive forces pruning at any
	// problem size (the unset field takes its default). Only
	// TransferSearch prunes; the anneal and projected-gradient solvers
	// ignore these fields.
	PruneObjects int
	PruneTargets int
}

// Automatic pruning engages at this many object-target pairs (the paper's
// largest study, N=160 x M=40 = 6400 pairs, stays three orders of magnitude
// below it), with these default scan bounds.
const (
	pruneAutoPairs      = 1 << 18
	defaultPruneObjects = 64
	defaultPruneTargets = 16
)

// pruneBounds resolves the configured pruning policy for an n x m problem.
// A (0, 0) result means "scan everything". Pruning requires the incremental
// kernel: the hottest-object ranking reads its cached per-target rates.
func (o Options) pruneBounds(n, m int, haveKernel bool) (po, pt int) {
	if !haveKernel || o.PruneObjects < 0 || o.PruneTargets < 0 {
		return 0, 0
	}
	po, pt = o.PruneObjects, o.PruneTargets
	if po == 0 && pt == 0 && n*m < pruneAutoPairs {
		return 0, 0
	}
	if po == 0 {
		po = defaultPruneObjects
	}
	if pt == 0 {
		pt = defaultPruneTargets
	}
	return po, pt
}

// movableSet converts MovableObjects into a membership predicate.
func (o Options) movableSet(n int) func(int) bool {
	if o.MovableObjects == nil {
		return func(int) bool { return true }
	}
	set := make(map[int]bool, len(o.MovableObjects))
	for _, i := range o.MovableObjects {
		set[i] = true
	}
	return func(i int) bool { return set[i] }
}

func (o Options) withDefaults() Options {
	if o.MaxIters <= 0 {
		o.MaxIters = 2000
	}
	if o.Tolerance <= 0 {
		o.Tolerance = 1e-4
	}
	if o.Restarts < 0 {
		o.Restarts = 0
	} else if o.Restarts == 0 {
		o.Restarts = 3
	}
	if len(o.StepFractions) == 0 {
		o.StepFractions = []float64{1, 0.5, 0.25, 0.125}
	}
	return o
}

// Result reports a solver outcome.
type Result struct {
	Layout    *layout.Layout
	Objective float64 // max target utilization of Layout
	Iters     int     // improvement iterations performed
	Evals     int     // target utilization evaluations performed
	// Restarts counts the restart rounds actually performed beyond the
	// first search. It equals Options.Restarts unless a budget or
	// cancellation cut the multi-start short.
	Restarts int
	// Workers is the resolved worker-pool width the solve used.
	Workers int

	// Elapsed is the solver's wall-clock search time.
	Elapsed time.Duration
	// Stop classifies why the search ended: nil for normal convergence or
	// iteration-budget exhaustion, ErrBudgetExceeded when Options.Budget
	// ran out, or the context's error when the caller cancelled. In every
	// case Layout holds the best valid layout found before stopping.
	Stop error
	// Trajectory samples the objective over the run at a bounded
	// reservoir of iterations (at most maxTrajPoints entries, spread over
	// the whole run), for convergence plots and regression triage.
	Trajectory []TrajPoint
}

// maxOf returns the maximum value and its index.
func maxOf(vals []float64) (int, float64) {
	bi, bv := 0, vals[0]
	for i, v := range vals[1:] {
		if v > bv {
			bi, bv = i+1, v
		}
	}
	return bi, bv
}
