package nlp

import (
	"context"
	"math"
	"math/rand"
	"testing"

	"dblayout/internal/layout"
	"dblayout/internal/layouttest"
)

// naiveEval hides *layout.Evaluator's IncrementalSource implementation, which
// forces every consumer onto the naive mutate-evaluate-revert path. The
// benchmarks use it to measure the incremental kernel's speedup and the
// regression tests use it to pin both code paths.
type naiveEval struct {
	inner *layout.Evaluator
}

func (e naiveEval) TargetUtilization(l *layout.Layout, j int) float64 {
	return e.inner.TargetUtilization(l, j)
}

func (e naiveEval) Utilizations(l *layout.Layout) []float64 {
	return e.inner.Utilizations(l)
}

// TestTransferStateBytesCacheNoDrift is the regression test for the dust-clamp
// drift bug: apply() used to clamp a sub-Epsilon source residual to zero while
// subtracting only the un-clamped delta from the bytes cache, so every clamped
// move leaked row mass and let the cached per-target bytes drift from the
// layout's true byte assignment. After a long random move sequence heavy in
// clamped and whole-assignment moves, the layout must still pass
// CheckIntegrity and the bytes cache must equal a fresh recomputation — on
// both the incremental-kernel and naive paths.
func TestTransferStateBytesCacheNoDrift(t *testing.T) {
	inst := layouttest.Instance(4)
	ev := layout.NewEvaluator(inst)
	for _, tc := range []struct {
		name string
		ev   Evaluator
	}{
		{"incremental", ev},
		{"naive", naiveEval{inner: ev}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			init, err := layout.InitialLayout(inst)
			if err != nil {
				t.Fatal(err)
			}
			s := newTransferState(tc.ev, inst, init.Clone())
			if tc.name == "incremental" && s.inc == nil {
				t.Fatal("kernel path not selected for *layout.Evaluator")
			}
			if tc.name == "naive" && s.inc != nil {
				t.Fatal("naive wrapper unexpectedly vended a kernel")
			}

			rng := rand.New(rand.NewSource(5))
			applied := 0
			for step := 0; step < 2000; step++ {
				i := rng.Intn(s.l.N)
				targets := s.l.Targets(i)
				if len(targets) == 0 {
					continue
				}
				from := targets[rng.Intn(len(targets))]
				have := s.l.At(i, from)
				if have <= layout.Epsilon {
					continue
				}
				to := rng.Intn(s.l.M)
				if to == from {
					continue
				}
				var delta float64
				switch step % 4 {
				case 0:
					delta = have // whole assignment
				case 1:
					delta = have * (1 - 1e-10) // sub-Epsilon residual: must fold
				case 2:
					delta = have * 0.5
				default:
					delta = have * rng.Float64()
				}
				if delta <= layout.Epsilon || !s.fits(i, to, delta) {
					continue
				}
				s.apply(move{obj: i, from: from, to: to, delta: delta})
				applied++
			}
			if applied < 500 {
				t.Fatalf("only %d moves applied; generator too conservative", applied)
			}

			if err := s.l.CheckIntegrity(); err != nil {
				t.Fatalf("after %d moves: %v", applied, err)
			}
			for j := 0; j < s.l.M; j++ {
				want := s.l.TargetBytes(j, s.sizes)
				if diff := math.Abs(s.bytes[j] - want); diff > 1e-6*(1+want) {
					t.Fatalf("target %d: bytes cache %.6f, recomputed %.6f (drift %g)",
						j, s.bytes[j], want, diff)
				}
			}
			// The cached utilizations must also still match a fresh
			// evaluation within the kernel tolerance contract.
			fresh := ev.Utilizations(s.l)
			for j, u := range s.utils {
				scale := math.Max(1, math.Max(u, fresh[j]))
				if math.Abs(u-fresh[j]) > 1e-9*scale {
					t.Fatalf("target %d: cached mu %.17g, fresh mu %.17g", j, u, fresh[j])
				}
			}
		})
	}
}

// TestNoRestartsSingleDescent pins the Options.Restarts sentinel contract:
// NoRestarts (or any negative value) runs a single descent with no
// multi-start rounds, and Result.Restarts reports 0 — previously there was no
// way to request this, because the zero value maps to the default of 3.
func TestNoRestartsSingleDescent(t *testing.T) {
	inst := layouttest.Instance(3)
	ev := layout.NewEvaluator(inst)
	init, err := layout.InitialLayout(inst)
	if err != nil {
		t.Fatal(err)
	}
	start := ev.MaxUtilization(init)
	for _, c := range solverCases() {
		t.Run(c.name, func(t *testing.T) {
			res := c.solve(context.Background(), ev, inst, init, Options{Seed: 1, Restarts: NoRestarts, MaxIters: 200})
			if res.Restarts != 0 {
				t.Fatalf("Result.Restarts = %d, want 0", res.Restarts)
			}
			solveCheck(t, inst, res, start)

			// And -2 behaves the same as the named sentinel.
			res2 := c.solve(context.Background(), ev, inst, init, Options{Seed: 1, Restarts: -2, MaxIters: 200})
			if res2.Restarts != 0 {
				t.Fatalf("Restarts=-2: Result.Restarts = %d, want 0", res2.Restarts)
			}
			if res2.Objective != res.Objective {
				t.Fatalf("negative restart values disagree: %g vs %g", res.Objective, res2.Objective)
			}
		})
	}
}

// TestTransferSearchKernelMatchesNaivePath checks that the incremental-kernel
// and naive transfer paths not only stay within tolerance on utilizations but
// actually produce valid solves of comparable quality from the same seed.
func TestTransferSearchKernelMatchesNaivePath(t *testing.T) {
	inst := layouttest.Instance(4)
	ev := layout.NewEvaluator(inst)
	init, err := layout.InitialLayout(inst)
	if err != nil {
		t.Fatal(err)
	}
	start := ev.MaxUtilization(init)
	opt := Options{Seed: 3, Restarts: 2, MaxIters: 300}
	fast := TransferSearch(context.Background(), ev, inst, init, opt)
	slow := TransferSearch(context.Background(), naiveEval{inner: ev}, inst, init, opt)
	solveCheck(t, inst, fast, start)
	solveCheck(t, inst, slow, start)
	// Same search from the same seed: the paths may diverge on exact
	// tie-breaks, but neither may be meaningfully worse than the other.
	if fast.Objective > slow.Objective*1.05 || slow.Objective > fast.Objective*1.05 {
		t.Fatalf("kernel path %.6f vs naive path %.6f objectives diverge", fast.Objective, slow.Objective)
	}
}
