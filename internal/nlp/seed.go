package nlp

import "dblayout/internal/seed"

// Seed-stream derivation lives in the dependency-free internal/seed package
// (costmodel and replay sit below this package in the import graph and need
// it too). The aliases below keep solver-facing code reading naturally:
// nlp.SubSeed(opt.Seed, nlp.StreamTransfer, restart).

// Stream identities for SubSeed's first path element; see the registry in
// internal/seed for the full list and the rules for adding new streams.
const (
	StreamTransfer  = seed.StreamTransfer
	StreamAnneal    = seed.StreamAnneal
	StreamProjGrad  = seed.StreamProjGrad
	StreamAdvisor   = seed.StreamAdvisor
	StreamReplay    = seed.StreamReplay
	StreamRepair    = seed.StreamRepair
	StreamHierarchy = seed.StreamHierarchy
)

// SubSeed derives the seed of an independent pseudo-random stream from a
// base seed and a stream identity path; see seed.Sub.
func SubSeed(base int64, path ...int64) int64 {
	return seed.Sub(base, path...)
}
