package nlp

// TraceEvent is one solver-iteration observation, delivered synchronously to
// Options.Trace. Events are emitted after the iteration's accept/reject
// decision, so Objective is the objective the search holds going into the
// next iteration. The JSON field names are the cmd/advisor --trace-out
// JSONL schema.
type TraceEvent struct {
	// Solver names the emitting strategy: "transfer",
	// "projected-gradient", or "anneal".
	Solver string `json:"solver"`
	// Restart is the perturbation round the iteration belongs to
	// (0 = the first descent).
	Restart int `json:"restart"`
	// Iter is the global iteration number across restarts, starting at 1.
	Iter int `json:"iter"`
	// Objective is the current (post-decision) max target utilization.
	Objective float64 `json:"objective"`
	// Best is the lowest objective seen so far, across restarts.
	Best float64 `json:"best"`
	// Accepted reports whether the iteration's move was kept.
	Accepted bool `json:"accepted"`
	// Temp is the annealing temperature (0 for the other solvers).
	Temp float64 `json:"temp,omitempty"`
	// Evals is the cumulative count of target utilization evaluations.
	Evals int `json:"evals"`
}

// TrajPoint is one sample of a solver's objective trajectory.
type TrajPoint struct {
	Iter      int     `json:"iter"`
	Objective float64 `json:"objective"`
	Best      float64 `json:"best"`
}

// maxTrajPoints bounds Result.Trajectory. When the reservoir fills, every
// other retained point is dropped and the sampling stride doubles, so the
// summary stays O(1) in memory regardless of iteration count while keeping
// samples spread across the whole run.
const maxTrajPoints = 256

// trajectory is the bounded deterministic reservoir behind Result.Trajectory.
type trajectory struct {
	points []TrajPoint
	stride int
}

func (t *trajectory) add(p TrajPoint) {
	if t.stride == 0 {
		t.stride = 1
	}
	if p.Iter%t.stride != 0 {
		return
	}
	t.points = append(t.points, p)
	if len(t.points) >= maxTrajPoints {
		kept := t.points[:0]
		for i := 0; i < len(t.points); i += 2 {
			kept = append(kept, t.points[i])
		}
		t.points = kept
		t.stride *= 2
	}
}

// tracker threads tracing and trajectory recording through a solver run. It
// is always active — the trajectory summary is cheap (an integer modulo per
// iteration and a bounded slice) — but only invokes the user hook when one
// was supplied.
type tracker struct {
	solver string
	trace  func(TraceEvent)
	traj   trajectory
	iter   int
	best   float64
}

// newTracker seeds the tracker with the initial objective as iteration 0.
func newTracker(solver string, trace func(TraceEvent), initial float64) *tracker {
	tk := &tracker{solver: solver, trace: trace, best: initial}
	tk.traj.add(TrajPoint{Iter: 0, Objective: initial, Best: initial})
	return tk
}

// note records the outcome of one solver iteration.
func (tk *tracker) note(restart int, objective float64, accepted bool, temp float64, evals int) {
	tk.iter++
	if objective < tk.best {
		tk.best = objective
	}
	tk.traj.add(TrajPoint{Iter: tk.iter, Objective: objective, Best: tk.best})
	if tk.trace != nil {
		tk.trace(TraceEvent{
			Solver:    tk.solver,
			Restart:   restart,
			Iter:      tk.iter,
			Objective: objective,
			Best:      tk.best,
			Accepted:  accepted,
			Temp:      temp,
			Evals:     evals,
		})
	}
}

// finish stores the trajectory summary on the result.
func (tk *tracker) finish(res *Result) {
	res.Trajectory = tk.traj.points
}
