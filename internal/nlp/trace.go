package nlp

// TraceEvent is one solver-iteration observation, delivered synchronously to
// Options.Trace. Events are emitted after the iteration's accept/reject
// decision, so Objective is the objective the search holds going into the
// next iteration. The JSON field names are the cmd/advisor --trace-out
// JSONL schema.
type TraceEvent struct {
	// Solver names the emitting strategy: "transfer",
	// "projected-gradient", or "anneal".
	Solver string `json:"solver"`
	// Restart is the perturbation round the iteration belongs to
	// (0 = the first descent).
	Restart int `json:"restart"`
	// Iter is the global iteration number across restarts, starting at 1.
	Iter int `json:"iter"`
	// Objective is the current (post-decision) max target utilization.
	Objective float64 `json:"objective"`
	// Best is the lowest objective seen so far, across restarts.
	Best float64 `json:"best"`
	// Accepted reports whether the iteration's move was kept.
	Accepted bool `json:"accepted"`
	// Temp is the annealing temperature (0 for the other solvers).
	Temp float64 `json:"temp,omitempty"`
	// Evals is the cumulative count of target utilization evaluations.
	Evals int `json:"evals"`
}

// TrajPoint is one sample of a solver's objective trajectory.
type TrajPoint struct {
	Iter      int     `json:"iter"`
	Objective float64 `json:"objective"`
	Best      float64 `json:"best"`
}

// maxTrajPoints bounds Result.Trajectory. When the reservoir fills, every
// other retained point is dropped and the sampling stride doubles, so the
// summary stays O(1) in memory regardless of iteration count while keeping
// samples spread across the whole run.
const maxTrajPoints = 256

// trajectory is the bounded deterministic reservoir behind Result.Trajectory.
type trajectory struct {
	points []TrajPoint
	stride int
}

func (t *trajectory) add(p TrajPoint) {
	if t.stride == 0 {
		t.stride = 1
	}
	if p.Iter%t.stride != 0 {
		return
	}
	t.points = append(t.points, p)
	if len(t.points) >= maxTrajPoints {
		kept := t.points[:0]
		for i := 0; i < len(t.points); i += 2 {
			kept = append(kept, t.points[i])
		}
		t.points = kept
		t.stride *= 2
	}
}

// tracker threads tracing and trajectory recording through a solver run. It
// is always active — the trajectory summary is cheap (an integer modulo per
// iteration and a bounded slice) — but only invokes the user hook when one
// was supplied.
//
// A tracker comes in two modes. The main tracker (newTracker) observes the
// solver's first descent live and is the merge point for everything else.
// Restart trackers (newRestartTracker) run on worker goroutines: they never
// touch the user hook or the shared trajectory; they record a bounded local
// trajectory plus — only when a user hook exists and the events must
// eventually be delivered — the full event sequence. After all workers
// finish, the main tracker absorbs each restart tracker in restart order
// (see merge), renumbering iterations globally and recomputing the monotone
// Best, so the delivered stream is identical for every worker count.
type tracker struct {
	solver string
	trace  func(TraceEvent)
	traj   trajectory
	iter   int
	best   float64
	evals  int // evaluation count offset applied when merging restarts

	// buffer, when true, makes note record into events instead of
	// delivering to trace (which is nil in that mode).
	buffer bool
	events []TraceEvent
}

// newTracker seeds the tracker with the initial objective as iteration 0.
func newTracker(solver string, trace func(TraceEvent), initial float64) *tracker {
	tk := &tracker{solver: solver, trace: trace, best: initial}
	tk.traj.add(TrajPoint{Iter: 0, Objective: initial, Best: initial})
	return tk
}

// newRestartTracker builds a worker-local tracker for one restart. When
// keepEvents is false (no user hook installed on the main tracker) only the
// bounded trajectory is recorded, so memory stays O(1) per restart.
func newRestartTracker(solver string, initial float64, keepEvents bool) *tracker {
	return &tracker{solver: solver, best: initial, buffer: keepEvents}
}

// note records the outcome of one solver iteration.
func (tk *tracker) note(restart int, objective float64, accepted bool, temp float64, evals int) {
	tk.iter++
	if objective < tk.best {
		tk.best = objective
	}
	tk.traj.add(TrajPoint{Iter: tk.iter, Objective: objective, Best: tk.best})
	if tk.trace == nil && !tk.buffer {
		return
	}
	ev := TraceEvent{
		Solver:    tk.solver,
		Restart:   restart,
		Iter:      tk.iter,
		Objective: objective,
		Best:      tk.best,
		Accepted:  accepted,
		Temp:      temp,
		Evals:     evals,
	}
	if tk.buffer {
		tk.events = append(tk.events, ev)
		return
	}
	tk.trace(ev)
}

// merge absorbs one restart tracker's recording into the main tracker:
// iterations are renumbered to continue the global count, Best is recomputed
// so it stays monotone across the merged stream, evaluation counts are
// shifted to stay cumulative in merge order, and — when a user hook is
// installed — the restart's buffered events are delivered in order. Callers
// must merge restarts in ascending restart order to keep the delivered
// stream deterministic.
func (tk *tracker) merge(rt *tracker, restartEvals int) {
	base := tk.iter
	if rt.buffer && tk.trace != nil {
		for _, ev := range rt.events {
			tk.iter++
			if ev.Objective < tk.best {
				tk.best = ev.Objective
			}
			ev.Iter = tk.iter
			ev.Best = tk.best
			ev.Evals += tk.evals
			tk.traj.add(TrajPoint{Iter: ev.Iter, Objective: ev.Objective, Best: tk.best})
			tk.trace(ev)
		}
	} else {
		// No event stream to replay: fold the restart's bounded
		// trajectory into the shared one with shifted iteration numbers.
		for _, p := range rt.traj.points {
			b := p.Best
			if tk.best < b {
				b = tk.best
			}
			tk.traj.add(TrajPoint{Iter: base + p.Iter, Objective: p.Objective, Best: b})
		}
		tk.iter += rt.iter
		if rt.best < tk.best {
			tk.best = rt.best
		}
	}
	tk.evals += restartEvals
}

// finish stores the trajectory summary on the result.
func (tk *tracker) finish(res *Result) {
	res.Trajectory = tk.traj.points
}
