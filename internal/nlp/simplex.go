package nlp

import "sort"

// ProjectSimplex projects v in place onto the probability simplex
// { x : x_i >= 0, sum x_i = 1 } in Euclidean distance, using the O(n log n)
// sort-based algorithm of Held/Wolfe/Crowder (popularized by Duchi et al.).
// Rows of a layout matrix projected this way satisfy the integrity
// constraint exactly.
func ProjectSimplex(v []float64) {
	n := len(v)
	if n == 0 {
		return
	}
	if n == 1 {
		v[0] = 1
		return
	}
	u := append([]float64(nil), v...)
	sort.Sort(sort.Reverse(sort.Float64Slice(u)))

	var cum, theta float64
	rho := -1
	for i := 0; i < n; i++ {
		cum += u[i]
		t := (cum - 1) / float64(i+1)
		if u[i]-t > 0 {
			rho = i
			theta = t
		}
	}
	if rho < 0 {
		// All mass would be clipped; fall back to uniform.
		for i := range v {
			v[i] = 1 / float64(n)
		}
		return
	}
	for i := range v {
		v[i] -= theta
		if v[i] < 0 {
			v[i] = 0
		}
	}
}
