package nlp

import (
	"context"
	"errors"
	"time"
)

// ErrBudgetExceeded reports that a solver stopped because its time budget
// (Options.Budget) ran out before the search converged. The solver still
// returns its best layout found so far; the error only classifies why the
// search ended (Result.Stop).
var ErrBudgetExceeded = errors.New("solve budget exceeded")

// checkInterval is how often the solvers consult the wall clock and the
// context between iterations. Improvement iterations on large instances cost
// far more than this, so the interval — not the iteration granularity —
// bounds how promptly a cancellation is observed.
const checkInterval = 5 * time.Millisecond

// limiter implements the solvers' periodic cancellation and budget checks.
// Consulting a context and the wall clock on every iteration would be wasted
// work for cheap iterations (annealing moves cost two evaluations), so the
// limiter polls time only every `stride` calls and remembers a stop decision
// once made.
type limiter struct {
	ctx      context.Context
	deadline time.Time // zero = no budget
	stride   int
	calls    int
	lastPoll time.Time
	stopped  error
}

// newLimiter captures the context and converts a budget into a deadline.
// A nil context is treated as context.Background(); a zero budget means
// unbounded.
func newLimiter(ctx context.Context, budget time.Duration) *limiter {
	return newLimiterAt(ctx, budgetDeadline(budget))
}

// budgetDeadline converts a budget into the absolute deadline shared by
// every limiter of one solve. Deriving it once up front matters for the
// parallel path: worker limiters are created as restarts are scheduled, and
// computing now+budget at each creation would silently extend the budget.
// A zero budget returns the zero time (unbounded).
func budgetDeadline(budget time.Duration) time.Time {
	if budget <= 0 {
		return time.Time{}
	}
	return time.Now().Add(budget)
}

// newLimiterAt builds a limiter against an absolute deadline (zero =
// unbounded). Limiters are single-goroutine state; concurrent workers each
// get their own against the same deadline.
func newLimiterAt(ctx context.Context, deadline time.Time) *limiter {
	if ctx == nil {
		ctx = context.Background()
	}
	return &limiter{ctx: ctx, stride: 1, deadline: deadline}
}

// every sets the polling stride for solvers with very cheap iterations.
func (l *limiter) every(stride int) *limiter {
	if stride > 1 {
		l.stride = stride
	}
	return l
}

// stop returns the reason the solver must stop (context error or
// ErrBudgetExceeded), or nil to continue. The decision is sticky. The
// context and the deadline are consulted at most once per checkInterval
// (and, for strided limiters, at most once per stride calls), so the cost
// of the checks is bounded regardless of iteration granularity while a
// cancellation is still observed within one check interval.
func (l *limiter) stop() error {
	if l.stopped != nil {
		return l.stopped
	}
	l.calls++
	if l.calls%l.stride != 0 {
		return nil
	}
	now := time.Now()
	if !l.lastPoll.IsZero() && now.Sub(l.lastPoll) < checkInterval {
		return nil
	}
	l.lastPoll = now
	if err := l.ctx.Err(); err != nil {
		l.stopped = err
		return err
	}
	if !l.deadline.IsZero() && !now.Before(l.deadline) {
		l.stopped = ErrBudgetExceeded
		return ErrBudgetExceeded
	}
	return nil
}
