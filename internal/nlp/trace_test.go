package nlp

import (
	"context"
	"math"
	"testing"

	"dblayout/internal/layout"
	"dblayout/internal/layouttest"
)

// checkTrace asserts the trace invariants shared by all solvers: iterations
// are consecutive, Best is monotone non-increasing, and Best never exceeds
// the running minimum of the observed objectives.
func checkTrace(t *testing.T, events []TraceEvent) {
	t.Helper()
	if len(events) == 0 {
		t.Fatal("trace hook observed no events")
	}
	runMin := math.Inf(1)
	for i, ev := range events {
		if ev.Iter != i+1 {
			t.Fatalf("event %d has Iter %d, want %d", i, ev.Iter, i+1)
		}
		if ev.Objective < runMin {
			runMin = ev.Objective
		}
		if i > 0 && ev.Best > events[i-1].Best+1e-15 {
			t.Fatalf("best objective increased at iter %d: %g -> %g", ev.Iter, events[i-1].Best, ev.Best)
		}
		if ev.Best > runMin+1e-15 {
			t.Fatalf("iter %d: best %g above running min objective %g", ev.Iter, ev.Best, runMin)
		}
		if ev.Evals <= 0 {
			t.Fatalf("iter %d: no evals reported", ev.Iter)
		}
	}
}

func TestTransferSearchTrace(t *testing.T) {
	inst := layouttest.Instance(4)
	ev := layout.NewEvaluator(inst)
	init, _ := layout.InitialLayout(inst)

	var events []TraceEvent
	res := TransferSearch(context.Background(), ev, inst, init, Options{Seed: 1, Trace: func(e TraceEvent) {
		if e.Solver != "transfer" {
			t.Fatalf("solver = %q", e.Solver)
		}
		events = append(events, e)
	}})
	checkTrace(t, events)
	if len(events) != res.Iters {
		t.Fatalf("observed %d events for %d iterations", len(events), res.Iters)
	}
	last := events[len(events)-1]
	if math.Abs(last.Best-res.Objective) > 1e-12 {
		t.Fatalf("final traced best %g != result objective %g", last.Best, res.Objective)
	}
	if res.Elapsed <= 0 {
		t.Fatal("Elapsed not recorded")
	}
}

func TestAnnealTrace(t *testing.T) {
	inst := layouttest.Instance(4)
	ev := layout.NewEvaluator(inst)
	init, _ := layout.InitialLayout(inst)

	var events []TraceEvent
	res, err := Anneal(context.Background(), ev, inst, init, AnnealOptions{Options: Options{Seed: 3, MaxIters: 3000,
		Trace: func(e TraceEvent) { events = append(events, e) }}})
	if err != nil {
		t.Fatal(err)
	}
	checkTrace(t, events)
	// Annealing must report its temperature, and the schedule must cool.
	if events[0].Temp <= 0 {
		t.Fatalf("first event temperature %g", events[0].Temp)
	}
	last := events[len(events)-1]
	if last.Temp >= events[0].Temp {
		t.Fatalf("temperature did not cool: %g -> %g", events[0].Temp, last.Temp)
	}
	if math.Abs(last.Best-res.Objective) > 1e-12 {
		t.Fatalf("final traced best %g != result objective %g", last.Best, res.Objective)
	}
}

func TestProjectedGradientTrace(t *testing.T) {
	inst := layouttest.Instance(3)
	ev := layout.NewEvaluator(inst)
	init, _ := layout.InitialLayout(inst)

	var events []TraceEvent
	ProjectedGradient(context.Background(), ev, inst, init, Options{MaxIters: 40,
		Trace: func(e TraceEvent) { events = append(events, e) }})
	checkTrace(t, events)
}

func TestTrajectoryBounded(t *testing.T) {
	var tr trajectory
	for i := 0; i <= 100000; i++ {
		tr.add(TrajPoint{Iter: i, Objective: 1, Best: 1})
	}
	if len(tr.points) == 0 || len(tr.points) >= maxTrajPoints {
		t.Fatalf("trajectory has %d points, want (0, %d)", len(tr.points), maxTrajPoints)
	}
	// Samples must stay ordered and span the run.
	for i := 1; i < len(tr.points); i++ {
		if tr.points[i].Iter <= tr.points[i-1].Iter {
			t.Fatalf("trajectory out of order at %d", i)
		}
	}
	if first := tr.points[0].Iter; first != 0 {
		t.Fatalf("first sample at iter %d, want 0", first)
	}
	if last := tr.points[len(tr.points)-1].Iter; last < 50000 {
		t.Fatalf("last sample at iter %d: reservoir lost the tail", last)
	}
}

func TestResultTrajectoryRecorded(t *testing.T) {
	inst := layouttest.Instance(4)
	ev := layout.NewEvaluator(inst)
	init, _ := layout.InitialLayout(inst)
	res := TransferSearch(context.Background(), ev, inst, init, Options{Seed: 1})
	if len(res.Trajectory) < 2 {
		t.Fatalf("trajectory has %d points", len(res.Trajectory))
	}
	if res.Trajectory[0].Iter != 0 {
		t.Fatal("trajectory missing the initial objective sample")
	}
	for i := 1; i < len(res.Trajectory); i++ {
		if res.Trajectory[i].Best > res.Trajectory[i-1].Best+1e-15 {
			t.Fatal("trajectory best not monotone")
		}
	}
}

func TestAnnealOptionValidation(t *testing.T) {
	inst := layouttest.Instance(3)
	ev := layout.NewEvaluator(inst)
	init, _ := layout.InitialLayout(inst)
	for _, bad := range []AnnealOptions{
		{StartTemp: math.NaN()},
		{StartTemp: -0.1},
		{Cooling: math.NaN()},
		{Cooling: -0.5},
		{Cooling: 1.0},
		{Cooling: 2.0},
	} {
		if _, err := Anneal(context.Background(), ev, inst, init, bad); err == nil {
			t.Fatalf("invalid schedule accepted: %+v", bad)
		}
	}
	// Zero values still select the documented defaults.
	if _, err := Anneal(context.Background(), ev, inst, init, AnnealOptions{Options: Options{MaxIters: 10}}); err != nil {
		t.Fatal(err)
	}
}

// TestAnnealSeedZeroDeterministic pins the documented contract that Seed 0
// is a deterministic default, not a time- or global-rng-derived seed.
func TestAnnealSeedZeroDeterministic(t *testing.T) {
	inst := layouttest.Instance(4)
	ev := layout.NewEvaluator(inst)
	init, _ := layout.InitialLayout(inst)
	a, err := Anneal(context.Background(), ev, inst, init, AnnealOptions{Options: Options{MaxIters: 500}})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Anneal(context.Background(), ev, inst, init, AnnealOptions{Options: Options{MaxIters: 500}})
	if err != nil {
		t.Fatal(err)
	}
	if a.Objective != b.Objective || a.Iters != b.Iters || a.Evals != b.Evals {
		t.Fatalf("seed-0 runs diverge: %+v vs %+v", a, b)
	}
}
