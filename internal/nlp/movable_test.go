package nlp

import (
	"context"
	"testing"

	"dblayout/internal/layout"
	"dblayout/internal/layouttest"
)

func TestTransferSearchMovableObjects(t *testing.T) {
	inst := layouttest.Instance(4)
	ev := layout.NewEvaluator(inst)
	init, err := layout.InitialLayout(inst)
	if err != nil {
		t.Fatal(err)
	}
	// Freeze everything except the index (object 2).
	res := TransferSearch(context.Background(), ev, inst, init, Options{Seed: 1, MovableObjects: []int{2}})
	for _, i := range []int{0, 1, 3} {
		for j := 0; j < 4; j++ {
			if res.Layout.At(i, j) != init.At(i, j) {
				t.Fatalf("frozen object %d moved: %v -> %v", i, init.Row(i), res.Layout.Row(i))
			}
		}
	}
	if err := inst.ValidateLayout(res.Layout); err != nil {
		t.Fatal(err)
	}
	// An empty (non-nil) movable set freezes the whole layout.
	res = TransferSearch(context.Background(), ev, inst, init, Options{Seed: 1, MovableObjects: []int{}, Restarts: 1})
	for i := 0; i < 4; i++ {
		for j := 0; j < 4; j++ {
			if res.Layout.At(i, j) != init.At(i, j) {
				t.Fatal("fully-frozen layout changed")
			}
		}
	}
}

func TestAnnealMovableObjects(t *testing.T) {
	inst := layouttest.Instance(4)
	ev := layout.NewEvaluator(inst)
	init, _ := layout.InitialLayout(inst)
	res, err := Anneal(context.Background(), ev, inst, init, AnnealOptions{Options: Options{Seed: 3, MaxIters: 2000, MovableObjects: []int{2, 3}}})
	if err != nil {
		t.Fatal(err)
	}
	for _, i := range []int{0, 1} {
		for j := 0; j < 4; j++ {
			if res.Layout.At(i, j) != init.At(i, j) {
				t.Fatalf("frozen object %d moved under annealing", i)
			}
		}
	}
}

func TestOptionsDefaults(t *testing.T) {
	o := Options{}.withDefaults()
	if o.MaxIters <= 0 || o.Tolerance <= 0 || o.Restarts <= 0 || len(o.StepFractions) == 0 {
		t.Fatalf("defaults not applied: %+v", o)
	}
	// Explicit negative restarts mean "no restarts", not the default.
	if o := (Options{Restarts: -1}).withDefaults(); o.Restarts != 0 {
		t.Fatalf("Restarts=-1 should mean none, got %d", o.Restarts)
	}
}

func TestAnnealOptionsDefaults(t *testing.T) {
	o, err := AnnealOptions{}.withDefaults()
	if err != nil {
		t.Fatal(err)
	}
	if o.StartTemp <= 0 || o.Cooling <= 0 || o.Cooling >= 1 {
		t.Fatalf("anneal defaults not applied: %+v", o)
	}
}
