package control

import (
	"bytes"
	"errors"
	"math"
	"testing"

	"dblayout/internal/layout"
	"dblayout/internal/rome"
	"dblayout/internal/rubicon"
)

// ctFixture bundles the chaos fixture for direct controller tests.
type ctFixture struct {
	inst    *layout.Instance
	steady  *rome.Set
	drifted *rome.Set
	initial *layout.Layout
	sim     *SimIO
}

func newCtFixture(t *testing.T) *ctFixture {
	t.Helper()
	steady, drifted := chaosSets()
	inst := chaosInstance(steady)
	initial, err := layout.InitialLayout(inst)
	if err != nil {
		t.Fatalf("initial layout: %v", err)
	}
	devs := make([]SimDevice, inst.M())
	caps := inst.Capacities()
	for j := range devs {
		devs[j] = SimDevice{Name: inst.Targets[j].Name, Capacity: caps[j], BytesPerSec: 64 << 20, FailAt: -1}
	}
	return &ctFixture{inst: inst, steady: steady, drifted: drifted, initial: initial,
		sim: NewSimIO(devs, 0)}
}

func (f *ctFixture) config(journal *bytes.Buffer, resume []byte) Config {
	run := &chaosRun{inst: f.inst, steady: f.steady, drifted: f.drifted, initial: f.initial}
	run.calibrate()
	cfg := run.config(f.sim, &chaosWriter{buf: journal, remaining: 1 << 30}, resume)
	cfg.Journal = journal // crash-free unless a test swaps the writer in
	return cfg
}

// fit synthesizes a window fit over the given set, with the overlap distance
// to the previous window's set.
func (f *ctFixture) fit(w int64, set, prev *rome.Set) rubicon.WindowFit {
	dist := 0.0
	if prev != nil {
		dist = rubicon.OverlapDistance(prev, set)
	}
	return rubicon.WindowFit{Window: w, Start: float64(w), End: float64(w + 1),
		Set: set, Requests: 1000, OverlapDistance: dist}
}

// feed pushes n windows of set through the controller, advancing simulated
// time one second per window. The first window's overlap distance is taken
// against prev (nil = no transition).
func (f *ctFixture) feed(t *testing.T, c *Controller, start int64, n int, set, prev *rome.Set) int64 {
	t.Helper()
	for i := 0; i < n; i++ {
		p := set
		if i == 0 && prev != nil {
			p = prev
		}
		if err := c.ObserveFit(f.fit(start, set, p)); err != nil && !errors.Is(err, ErrRetriesExhausted) {
			t.Fatalf("window %d: ObserveFit: %v", start, err)
		}
		start++
		f.sim.Advance(1)
	}
	return start
}

func kinds(actions []Action) []string {
	out := make([]string, len(actions))
	for i, a := range actions {
		out[i] = a.Kind
	}
	return out
}

func hasKind(actions []Action, kind string) bool {
	for _, a := range actions {
		if a.Kind == kind {
			return true
		}
	}
	return false
}

func layoutsClose(a, b *layout.Layout) bool {
	if a.N != b.N || a.M != b.M {
		return false
	}
	for i := 0; i < a.N; i++ {
		for j := 0; j < a.M; j++ {
			if math.Abs(a.At(i, j)-b.At(i, j)) > 1e-9 {
				return false
			}
		}
	}
	return true
}

// TestSteadyWorkloadZeroActions: under an unchanging workload the controller
// does nothing at all — no detections, no migrations, no journal growth past
// the cbegin record.
func TestSteadyWorkloadZeroActions(t *testing.T) {
	f := newCtFixture(t)
	var journal bytes.Buffer
	c, err := New(f.config(&journal, nil))
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	afterBegin := journal.Len()
	f.feed(t, c, 0, 40, f.steady, nil)
	if got := c.Actions(); len(got) != 0 {
		t.Fatalf("steady workload produced actions: %v", kinds(got))
	}
	if st := c.Status(); st.Phase != PhaseObserving || st.Epoch != 0 {
		t.Fatalf("steady workload moved the controller: %+v", st)
	}
	if journal.Len() != afterBegin {
		t.Fatalf("steady workload grew the journal by %d bytes", journal.Len()-afterBegin)
	}
	if !layoutsClose(c.CurrentLayout(), f.initial) {
		t.Fatal("steady workload changed the layout")
	}
}

// TestDriftDetectMigrateCooldown drives the full loop once: steady → drift →
// detect → migrate → cooldown → observing, and cross-checks the journal
// recovers to the controller's own final state.
func TestDriftDetectMigrateCooldown(t *testing.T) {
	f := newCtFixture(t)
	var journal bytes.Buffer
	c, err := New(f.config(&journal, nil))
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	w := f.feed(t, c, 0, 3, f.steady, nil)
	w = f.feed(t, c, w, 1, f.drifted, f.steady)
	if !hasKind(c.Actions(), "detect") {
		t.Fatalf("drift transition not detected: %v", kinds(c.Actions()))
	}
	if !hasKind(c.Actions(), "migrate-start") {
		t.Fatalf("detection did not start a migration: %v", kinds(c.Actions()))
	}
	if st := c.Status(); st.Phase != PhaseMigrating {
		t.Fatalf("phase after migrate-start: %v", st.Phase)
	}
	// Feed drifted windows until the migration completes and cools down.
	for i := 0; i < 40 && c.Status().Phase != PhaseObserving; i++ {
		w = f.feed(t, c, w, 1, f.drifted, nil)
	}
	acts := c.Actions()
	if !hasKind(acts, "migrate-done") || !hasKind(acts, "cooldown-end") {
		t.Fatalf("loop did not complete: %v", kinds(acts))
	}
	if layoutsClose(c.CurrentLayout(), f.initial) {
		t.Fatal("migration did not change the layout")
	}
	// The cooldown windows between migrate-done and cooldown-end must match
	// the configured hysteresis.
	var doneW, endW int64
	for _, a := range acts {
		switch a.Kind {
		case "migrate-done":
			doneW = int64(a.Time)
		case "cooldown-end":
			endW = a.Window
		}
	}
	if endW <= doneW {
		t.Fatalf("cooldown-end window %d not after migrate-done at t=%d", endW, doneW)
	}

	ck, err := Recover(journal.Bytes())
	if err != nil {
		t.Fatalf("journal does not recover: %v", err)
	}
	if !layoutsClose(ck.Current, c.CurrentLayout()) {
		t.Fatal("journal recovers a different layout than the live controller")
	}
	if ck.Open != nil {
		t.Fatal("journal recovers an open epoch after completion")
	}
}

// TestResumeMidMigrationMatchesUninterrupted: crash the controller mid-copy,
// resume from the journal, and require the exact final layout of an
// uninterrupted run — exactly-once, no lost or duplicated work.
func TestResumeMidMigrationMatchesUninterrupted(t *testing.T) {
	runOnce := func(crashAfter int) (*layout.Layout, int) {
		f := newCtFixture(t)
		buf := &bytes.Buffer{}
		w := &chaosWriter{buf: buf, remaining: crashAfter}
		cfg := f.config(buf, nil)
		cfg.Journal = w
		c, err := New(cfg)
		if err != nil {
			t.Fatalf("New: %v", err)
		}
		win := f.feed(t, c, 0, 3, f.steady, nil)
		win = f.feed(t, c, win, 1, f.drifted, f.steady)
		crashes := 0
		for i := 0; i < 120; i++ {
			if c.Crashed() {
				crashes++
				w2 := &chaosWriter{buf: buf, remaining: 1 << 30}
				cfg2 := f.config(buf, TruncateTorn(buf.Bytes()))
				cfg2.Journal = w2
				c, err = New(cfg2)
				if err != nil {
					t.Fatalf("resume: %v", err)
				}
			}
			if st := c.Status(); st.Phase == PhaseObserving && st.Epoch > 0 {
				break
			}
			win = f.feed(t, c, win, 1, f.drifted, nil)
		}
		if st := c.Status(); st.Phase != PhaseObserving || st.Epoch == 0 {
			t.Fatalf("crashAfter=%d: loop did not complete: %+v", crashAfter, st)
		}
		return c.CurrentLayout(), crashes
	}

	reference, crashes := runOnce(1 << 30)
	if crashes != 0 {
		t.Fatalf("reference run crashed %d times", crashes)
	}
	// Crash after 4 records: cbegin + cplan + the engine's first records —
	// squarely mid-migration.
	resumed, crashes := runOnce(4)
	if crashes == 0 {
		t.Fatal("crash injection did not fire")
	}
	if !layoutsClose(reference, resumed) {
		t.Fatalf("resumed run diverged from uninterrupted run:\n%v\nvs\n%v", reference, resumed)
	}
}

// TestCooldownDefersDetection: drift events during cooldown are logged as
// deferred and must not start a migration until the cooldown elapses.
func TestCooldownDefersDetection(t *testing.T) {
	f := newCtFixture(t)
	var journal bytes.Buffer
	c, err := New(f.config(&journal, nil))
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	w := f.feed(t, c, 0, 3, f.steady, nil)
	w = f.feed(t, c, w, 1, f.drifted, f.steady)
	for i := 0; i < 40 && c.Status().Phase != PhaseCooldown; i++ {
		w = f.feed(t, c, w, 1, f.drifted, nil)
	}
	if c.Status().Phase != PhaseCooldown {
		t.Fatalf("migration never completed: %+v", c.Status())
	}
	before := len(c.Actions())
	// Shift the workload back mid-cooldown: a fresh transition.
	w = f.feed(t, c, w, 1, f.steady, f.drifted)
	deferred := false
	for _, a := range c.Actions()[before:] {
		if a.Kind == "migrate-start" {
			t.Fatal("migration started during cooldown")
		}
		if a.Kind == "detect" && a.Detail == "deferred: cooldown" {
			deferred = true
		}
	}
	if !deferred {
		t.Fatalf("cooldown detection not logged as deferred: %v", kinds(c.Actions()[before:]))
	}
}

// TestAllDevicesFailGivesUp: with every device failing once the migration
// starts, each attempt aborts (or each re-advise fails) until the retry
// budget is spent; the controller journals the give-up and keeps running.
func TestAllDevicesFailGivesUp(t *testing.T) {
	f := newCtFixture(t)
	for j := range f.sim.devs {
		f.sim.devs[j].FailAt = 3.5 // after the steady prefix, before the migration
	}
	var journal bytes.Buffer
	c, err := New(f.config(&journal, nil))
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	w := f.feed(t, c, 0, 3, f.steady, nil)
	w = f.feed(t, c, w, 1, f.drifted, f.steady)
	for i := 0; i < 80 && !hasKind(c.Actions(), "give-up"); i++ {
		w = f.feed(t, c, w, 1, f.drifted, nil)
	}
	if !hasKind(c.Actions(), "give-up") {
		t.Fatalf("retry budget never exhausted: %v", kinds(c.Actions()))
	}
	if c.Crashed() {
		t.Fatalf("give-up crashed the controller: %v", c.Err())
	}
	if st := c.Status(); st.Attempt != 1 {
		t.Fatalf("attempt counter not reset after give-up: %+v", st)
	}
	// The journal must still recover cleanly after the failed episode.
	if _, err := Recover(TruncateTorn(journal.Bytes())); err != nil {
		t.Fatalf("journal after give-up: %v", err)
	}
}

// TestSkipReturnsToObserving: a gated re-advise returns the loop to the
// observing phase, in particular out of a zeroed backoff.
func TestSkipReturnsToObserving(t *testing.T) {
	f := newCtFixture(t)
	var journal bytes.Buffer
	c, err := New(f.config(&journal, nil))
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	c.setPhase(PhaseBackoff)
	c.skip(f.fit(0, f.steady, nil), "retry", 0, "test")
	if c.phase != PhaseObserving {
		t.Fatalf("skip left phase %v", c.phase)
	}
}

// TestBackoffDelayShape: deterministic, nondecreasing in the attempt number,
// capped, and jittered within [0, base].
func TestBackoffDelayShape(t *testing.T) {
	f := newCtFixture(t)
	var journal bytes.Buffer
	c, err := New(f.config(&journal, nil))
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	base := c.cfg.BaseBackoffWindows
	cap := c.cfg.MaxBackoffWindows
	prevFloor := 0
	for attempt := 2; attempt <= 8; attempt++ {
		d := c.backoffDelay(attempt)
		if d2 := c.backoffDelay(attempt); d2 != d {
			t.Fatalf("attempt %d: backoff not deterministic (%d vs %d)", attempt, d, d2)
		}
		floor := base
		for i := 2; i < attempt && floor < cap; i++ {
			floor *= 2
		}
		if floor > cap {
			floor = cap
		}
		if d < floor || d > floor+base {
			t.Fatalf("attempt %d: delay %d outside [%d, %d]", attempt, d, floor, floor+base)
		}
		if floor < prevFloor {
			t.Fatalf("attempt %d: backoff floor decreased", attempt)
		}
		prevFloor = floor
	}
}

// TestNewValidation: required config and resume identity checks.
func TestNewValidation(t *testing.T) {
	f := newCtFixture(t)
	var journal bytes.Buffer
	good := f.config(&journal, nil)

	c := good
	c.Instance = nil
	if _, err := New(c); err == nil {
		t.Fatal("nil Instance accepted")
	}
	c = good
	c.IO = nil
	if _, err := New(c); err == nil {
		t.Fatal("nil IO accepted")
	}
	c = good
	c.Current = nil
	if _, err := New(c); err == nil {
		t.Fatal("fresh start without Current accepted")
	}

	// Valid fresh start, then resume under a different seed must refuse.
	ctrl, err := New(good)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	_ = ctrl
	c = good
	c.Resume = append([]byte(nil), journal.Bytes()...)
	c.Seed = good.Seed + 1
	if _, err := New(c); err == nil {
		t.Fatal("resume with mismatched seed accepted")
	}
}
