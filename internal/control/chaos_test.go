package control

import (
	"reflect"
	"testing"
)

// TestChaosScenarioQuiet: no fault injection beyond random crash budgets —
// the drift episode must detect, migrate once and settle.
func TestChaosScenarioQuiet(t *testing.T) {
	rep, err := RunChaosScenario(ChaosScenario{Seed: 1})
	if err != nil {
		t.Fatalf("scenario: %v (report %+v)", err, rep)
	}
	if rep.Epochs < 1 {
		t.Fatalf("no migration epoch completed: %+v", rep)
	}
	if !rep.ReachedSteadyState {
		t.Fatalf("no steady state: %+v", rep)
	}
}

// TestChaosScenarioCrashEveryRecord is the exhaustive crash schedule: every
// session is allowed exactly one more journal record, so the controller
// crash-restarts at every single record boundary of its own journal and must
// still converge with exactly one migration.
func TestChaosScenarioCrashEveryRecord(t *testing.T) {
	rep, err := RunChaosScenario(ChaosScenario{Seed: 7, CrashEveryRecord: true, TornWrites: true})
	if err != nil {
		t.Fatalf("scenario: %v (report %+v)", err, rep)
	}
	if rep.Crashes < 20 {
		t.Fatalf("crash-at-every-record schedule crashed only %d times: %+v", rep.Crashes, rep)
	}
	if rep.Epochs != 1 {
		t.Fatalf("want exactly 1 completed epoch across all crashes, got %d: %+v", rep.Epochs, rep)
	}
}

// TestChaosScenarioDeviceFault: a device dies mid-episode; the loop must
// abort, retry into the repair path, and settle on a layout off the dead
// device.
func TestChaosScenarioDeviceFault(t *testing.T) {
	for s := int64(1); s <= 6; s++ {
		rep, err := RunChaosScenario(ChaosScenario{Seed: s, DeviceFault: true})
		if err != nil {
			t.Fatalf("seed %d: %v (report %+v)", s, err, rep)
		}
		if rep.Aborts > 0 && !rep.FinalLayoutIsRepair {
			t.Fatalf("seed %d: aborted but never repaired: %+v", s, rep)
		}
	}
}

// TestChaosScenarioDriftBack: the workload shifts back right after the first
// migration — during cooldown. The detection must be deferred (never acted
// on mid-cooldown) and then serviced, for two completed epochs total.
func TestChaosScenarioDriftBack(t *testing.T) {
	rep, err := RunChaosScenario(ChaosScenario{Seed: 3, DriftBack: true})
	if err != nil {
		t.Fatalf("scenario: %v (report %+v)", err, rep)
	}
	if rep.Epochs < 2 {
		t.Fatalf("drift-back expected 2 epochs, got %d: %+v", rep.Epochs, rep)
	}
}

// TestChaosScenarioCorruptTail: a flipped byte in the durable journal must be
// detected as ErrControllerCorrupt, never silently acted on.
func TestChaosScenarioCorruptTail(t *testing.T) {
	rep, err := RunChaosScenario(ChaosScenario{Seed: 11, CorruptTail: true})
	if err != nil {
		t.Fatalf("scenario: %v (report %+v)", err, rep)
	}
	if rep.CorruptionsCaught != 1 {
		t.Fatalf("corruption was injected but not caught: %+v", rep)
	}
}

// TestChaosScenarioDeterminism: a scenario is a pure function of its seed.
func TestChaosScenarioDeterminism(t *testing.T) {
	sc := ChaosScenario{Seed: 5, TornWrites: true, DeviceFault: true, DriftBack: true}
	a, errA := RunChaosScenario(sc)
	b, errB := RunChaosScenario(sc)
	if (errA == nil) != (errB == nil) {
		t.Fatalf("determinism: errors diverge: %v vs %v", errA, errB)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("determinism: reports diverge:\n%+v\nvs\n%+v", a, b)
	}
}

// TestChaosCampaign is the acceptance campaign: 50 seeded scenarios cycling
// through every fault combination — crash-at-every-record schedules, torn
// writes, corrupt tails, device faults, drift during cooldown — with zero
// invariant violations.
func TestChaosCampaign(t *testing.T) {
	n := 50
	if testing.Short() {
		n = 12
	}
	rep, err := RunChaosCampaign(ChaosCampaignConfig{Scenarios: n, BaseSeed: 42})
	if err != nil {
		t.Fatalf("campaign: %v", err)
	}
	if len(rep.Scenarios) != n {
		t.Fatalf("ran %d of %d scenarios", len(rep.Scenarios), n)
	}
	if rep.Crashes == 0 || rep.Epochs < n {
		t.Fatalf("campaign exercised too little: %d crashes, %d epochs over %d scenarios",
			rep.Crashes, rep.Epochs, n)
	}
	for i, r := range rep.Scenarios {
		if !r.ReachedSteadyState {
			t.Fatalf("scenario %d (seed %d) did not reach steady state: %+v", i, r.Seed, r)
		}
	}
	t.Logf("campaign: %d sessions, %d crashes survived, %d epochs, %d aborts, %d give-ups",
		rep.Sessions, rep.Crashes, rep.Epochs, rep.Aborts, rep.GiveUps)
}
