package control

import (
	"testing"
)

// FuzzControllerJournalDecode: Recover must never panic and never accept a
// journal whose recovered layout is inconsistent, whatever the bytes.
func FuzzControllerJournalDecode(f *testing.F) {
	valid := encodeJournalFuzz()
	f.Add(valid)
	f.Add(TruncateTorn(valid[:len(valid)/2]))
	corrupted := append([]byte(nil), valid...)
	if len(corrupted) > 20 {
		corrupted[20] ^= 0x5a
	}
	f.Add(corrupted)
	f.Add([]byte(""))
	f.Add([]byte("deadbeef {\"t\":\"cbegin\"}\n"))
	f.Add([]byte("00000000 \n"))
	f.Fuzz(func(t *testing.T, data []byte) {
		ck, err := Recover(data)
		if err != nil {
			return
		}
		if err := ck.Current.CheckIntegrity(); err != nil {
			t.Fatalf("accepted journal recovers inconsistent layout: %v", err)
		}
		if err := ck.Base.CheckIntegrity(); err != nil {
			t.Fatalf("accepted journal has inconsistent base layout: %v", err)
		}
		if ck.Attempt < 1 {
			t.Fatalf("accepted journal yields attempt %d", ck.Attempt)
		}
	})
}

// encodeJournalFuzz builds a valid one-epoch journal for fuzz seeding.
func encodeJournalFuzz() []byte {
	steps := testSteps()
	return mustEncodeJournal(
		Record{T: recBegin, N: 2, M: 2, Rows: [][]float64{{1, 0}, {0, 1}}, Seed: 9},
		Record{T: recPlan, Epoch: 1, Attempt: 1, Steps: steps, Reason: "fuzz"},
		segPlan(),
		segState(0, "copying"), segState(0, "copied"), segState(0, "committed"),
		segDone(),
		Record{T: recOutcome, Epoch: 1, Outcome: outcomeDone, Cooldown: 3},
	)
}
